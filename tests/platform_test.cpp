// Unit tests for the cluster platform model and the Grid'5000 presets.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "platform/grid5000.hpp"

namespace rats {
namespace {

TEST(Cluster, FlatClusterBasics) {
  const Cluster c = Cluster::flat("test", 4, 1e9, 1e-4, 125e6);
  EXPECT_EQ(c.num_nodes(), 4);
  EXPECT_DOUBLE_EQ(c.node_speed(), 1e9);
  EXPECT_FALSE(c.hierarchical_topology());
  EXPECT_EQ(c.cabinets(), 1);
  EXPECT_EQ(c.num_links(), 8);  // up + down per node
}

TEST(Cluster, FlatRouteUsesTwoLinks) {
  const Cluster c = Cluster::flat("test", 4, 1e9, 1e-4, 125e6);
  const auto route = c.route(0, 3);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(route[0], c.nic_up(0));
  EXPECT_EQ(route[1], c.nic_down(3));
}

TEST(Cluster, LoopbackRouteIsEmpty) {
  const Cluster c = Cluster::flat("test", 4, 1e9, 1e-4, 125e6);
  EXPECT_TRUE(c.route(2, 2).empty());
  EXPECT_DOUBLE_EQ(c.route_latency(2, 2), 0.0);
}

TEST(Cluster, RouteLatencyIsSumOfLinkLatencies) {
  const Cluster c = Cluster::flat("test", 4, 1e9, 1e-4, 125e6);
  EXPECT_DOUBLE_EQ(c.route_latency(0, 1), 2e-4);
}

TEST(Cluster, NicLinkIdsAreDistinctPerNode) {
  const Cluster c = Cluster::flat("test", 5, 1e9, 1e-4, 125e6);
  std::set<LinkId> ids;
  for (NodeId n = 0; n < 5; ++n) {
    ids.insert(c.nic_up(n));
    ids.insert(c.nic_down(n));
  }
  EXPECT_EQ(ids.size(), 10u);
}

TEST(Cluster, RejectsInvalidConstruction) {
  EXPECT_THROW(Cluster::flat("x", 0, 1e9, 1e-4, 125e6), Error);
  EXPECT_THROW(Cluster::flat("x", 4, 0, 1e-4, 125e6), Error);
  EXPECT_THROW(Cluster::flat("x", 4, 1e9, 1e-4, 0), Error);
}

TEST(Cluster, RejectsOutOfRangeNodes) {
  const Cluster c = Cluster::flat("test", 4, 1e9, 1e-4, 125e6);
  EXPECT_THROW(c.route(0, 4), Error);
  EXPECT_THROW(c.nic_up(-1), Error);
  EXPECT_THROW((void)c.link(99), Error);
}

TEST(Cluster, HierarchicalCabinets) {
  const Cluster c = Cluster::hierarchical("h", 3, 4, 1e9, 1e-4, 125e6,
                                          1e-4, 125e6);
  EXPECT_EQ(c.num_nodes(), 12);
  EXPECT_TRUE(c.hierarchical_topology());
  EXPECT_EQ(c.cabinets(), 3);
  EXPECT_EQ(c.cabinet_of(0), 0);
  EXPECT_EQ(c.cabinet_of(3), 0);
  EXPECT_EQ(c.cabinet_of(4), 1);
  EXPECT_EQ(c.cabinet_of(11), 2);
  // 24 NIC links + 6 cabinet links
  EXPECT_EQ(c.num_links(), 30);
}

TEST(Cluster, IntraCabinetRouteSkipsUplinks) {
  const Cluster c = Cluster::hierarchical("h", 3, 4, 1e9, 1e-4, 125e6,
                                          1e-4, 125e6);
  const auto route = c.route(0, 3);  // same cabinet
  EXPECT_EQ(route.size(), 2u);
}

TEST(Cluster, CrossCabinetRouteUsesUplinks) {
  const Cluster c = Cluster::hierarchical("h", 3, 4, 1e9, 1e-4, 125e6,
                                          1e-4, 125e6);
  const auto route = c.route(0, 4);  // cabinet 0 -> 1
  ASSERT_EQ(route.size(), 4u);
  EXPECT_EQ(route[0], c.nic_up(0));
  EXPECT_EQ(route[1], c.cabinet_up(0));
  EXPECT_EQ(route[2], c.cabinet_down(1));
  EXPECT_EQ(route[3], c.nic_down(4));
  EXPECT_DOUBLE_EQ(c.route_latency(0, 4), 4e-4);
}

TEST(Cluster, FlatClusterHasNoCabinetLinks) {
  const Cluster c = Cluster::flat("test", 4, 1e9, 1e-4, 125e6);
  EXPECT_THROW(c.cabinet_up(0), Error);
}

TEST(Cluster, TcpWindowDefaultAndOverride) {
  Cluster c = Cluster::flat("test", 2, 1e9, 1e-4, 125e6);
  EXPECT_DOUBLE_EQ(c.tcp_window(), 4.0 * 1024 * 1024);
  c.set_tcp_window(1e6);
  EXPECT_DOUBLE_EQ(c.tcp_window(), 1e6);
}

// ------------------------------------------------ Grid'5000 (Table II)

TEST(Grid5000, ChtiMatchesTableII) {
  const Cluster c = grid5000::chti();
  EXPECT_EQ(c.name(), "chti");
  EXPECT_EQ(c.num_nodes(), 20);
  EXPECT_DOUBLE_EQ(c.node_speed(), 4.311e9);
  EXPECT_FALSE(c.hierarchical_topology());
}

TEST(Grid5000, GrillonMatchesTableII) {
  const Cluster c = grid5000::grillon();
  EXPECT_EQ(c.num_nodes(), 47);
  EXPECT_DOUBLE_EQ(c.node_speed(), 3.379e9);
  EXPECT_FALSE(c.hierarchical_topology());
}

TEST(Grid5000, GrelonMatchesTableII) {
  const Cluster c = grid5000::grelon();
  EXPECT_EQ(c.num_nodes(), 120);
  EXPECT_DOUBLE_EQ(c.node_speed(), 3.185e9);
  EXPECT_TRUE(c.hierarchical_topology());
  EXPECT_EQ(c.cabinets(), 5);
  EXPECT_EQ(c.cabinet_of(119), 4);
}

TEST(Grid5000, GigabitLinksEverywhere) {
  for (const Cluster& c : grid5000::all()) {
    for (LinkId l = 0; l < c.num_links(); ++l) {
      EXPECT_DOUBLE_EQ(c.link(l).bandwidth, 125e6) << c.name();
      EXPECT_DOUBLE_EQ(c.link(l).latency, 100e-6) << c.name();
    }
  }
}

TEST(Grid5000, AllReturnsThreeClusters) {
  const auto clusters = grid5000::all();
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_EQ(clusters[0].name(), "chti");
  EXPECT_EQ(clusters[1].name(), "grillon");
  EXPECT_EQ(clusters[2].name(), "grelon");
}

// Property: the flat-topology predicate (`flat_routes`, the bipartite
// waterfilling dispatch condition) must agree with per-flow route
// inspection — every src != dst route is exactly {src uplink, dst
// downlink} — on randomly shaped platforms.
TEST(Cluster, FlatRoutesPredicateMatchesRouteInspection) {
  std::uint64_t state = 0xF1A7;
  const auto next_u32 = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  };
  std::vector<Cluster> platforms;
  for (int i = 0; i < 12; ++i)
    platforms.push_back(Cluster::flat(
        "rand-flat", 1 + static_cast<int>(next_u32() % 60), 1e9, 100e-6,
        125e6));
  for (int i = 0; i < 12; ++i)
    platforms.push_back(Cluster::hierarchical(
        "rand-hier", 1 + static_cast<int>(next_u32() % 5),
        1 + static_cast<int>(next_u32() % 12), 1e9, 100e-6, 125e6, 100e-6,
        125e6));
  for (const Cluster& c : platforms) {
    bool all_two_link = true;
    for (NodeId s = 0; s < c.num_nodes() && all_two_link; ++s)
      for (NodeId d = 0; d < c.num_nodes(); ++d) {
        if (s == d) continue;
        const auto route = c.route(s, d);
        if (route.size() != 2 || route[0] != c.nic_up(s) ||
            route[1] != c.nic_down(d)) {
          all_two_link = false;
          break;
        }
      }
    EXPECT_EQ(c.flat_routes(), all_two_link)
        << c.name() << " nodes=" << c.num_nodes()
        << " hierarchical=" << c.hierarchical_topology();
  }
}

}  // namespace
}  // namespace rats
