// Tests for the `rats fuzz` subsystem (src/fuzz): deterministic spec
// generation, the invariant oracle battery on generated specs, the
// delta-debugging minimizer, the forked watchdog driver, and the
// injected-bug minimize→pin loop end to end.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>

#include "fuzz/driver.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/oracles.hpp"
#include "scenario/parser.hpp"

namespace rats::fuzz {
namespace {

/// Scoped RATS_FUZZ_INJECT so a failing test never leaks the knob into
/// later tests (the battery reads it on every run).
struct Inject {
  explicit Inject(const char* what) { setenv("RATS_FUZZ_INJECT", what, 1); }
  ~Inject() { unsetenv("RATS_FUZZ_INJECT"); }
};

/// A small spec with a fail/restart pair plus decoy events, used by
/// the minimizer tests.
scenario::ScenarioSpec spec_with_fail() {
  scenario::ScenarioSpec spec;
  spec.name = "minimize-me";
  spec.kind = "experiment";
  spec.threads = 1;
  spec.platform.name = "mini";
  spec.platform.nodes = 4;
  spec.workload.source = scenario::WorkloadSpec::Source::Generate;
  spec.workload.generator = "strassen";
  spec.workload.count = 2;
  AlgoSpec hcpa;
  hcpa.name = "HCPA";
  hcpa.options.kind = SchedulerKind::Hcpa;
  AlgoSpec cpa;
  cpa.name = "CPA";
  cpa.options.kind = SchedulerKind::Cpa;
  spec.algorithms.preset.clear();
  spec.algorithms.algos = {hcpa, cpa};
  auto& ev = spec.events.timeline.events;
  PlatformEvent slow;
  slow.at = 0.5;
  slow.kind = PlatformEventKind::NodeSlowdown;
  slow.node = 1;
  slow.factor = 0.5;
  PlatformEvent traffic;
  traffic.at = 1.0;
  traffic.kind = PlatformEventKind::LinkCapacity;
  traffic.node = 2;
  traffic.factor = 0.25;
  PlatformEvent fail;
  fail.at = 2.0;
  fail.kind = PlatformEventKind::NodeFail;
  fail.node = 3;
  PlatformEvent restart = fail;
  restart.kind = PlatformEventKind::NodeRestart;
  restart.at = 3.0;
  ev = {slow, traffic, fail, restart};
  return spec;
}

bool has_fail_event(const scenario::ScenarioSpec& spec) {
  for (const PlatformEvent& e : spec.events.timeline.events)
    if (e.kind == PlatformEventKind::NodeFail) return true;
  return false;
}

TEST(FuzzGenerator, DeterministicPerSeedAndSeedSensitive) {
  const std::string a = scenario::emit_scenario(generate_spec(42));
  const std::string b = scenario::emit_scenario(generate_spec(42));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, scenario::emit_scenario(generate_spec(43)));
  EXPECT_NE(spec_seed(1, 0), spec_seed(1, 1));
  EXPECT_NE(spec_seed(1, 0), spec_seed(2, 0));
}

TEST(FuzzGenerator, SpecsAreValidByConstruction) {
  for (int i = 0; i < 50; ++i) {
    const scenario::ScenarioSpec spec = generate_spec(spec_seed(11, i));
    SCOPED_TRACE(spec.name);
    // Byte-stable through the text form.
    const std::string e1 = scenario::emit_scenario(spec);
    const scenario::ScenarioSpec reparsed =
        scenario::parse_scenario_string(e1, "<gen>");
    EXPECT_EQ(scenario::emit_scenario(reparsed), e1);
    // Resolvable platform, timeline valid against every cluster, and
    // every fail paired with a restart (the no-stall guarantee).
    const std::vector<Cluster> clusters = spec.platform.resolve();
    ASSERT_GE(clusters.size(), 1u);
    for (const Cluster& cluster : clusters)
      if (!spec.events.empty())
        EXPECT_NO_THROW(spec.events.resolve(cluster));
    int open_fails = 0;
    for (const PlatformEvent& e : spec.events.timeline.events) {
      if (e.kind == PlatformEventKind::NodeFail) ++open_fails;
      if (e.kind == PlatformEventKind::NodeRestart) --open_fails;
    }
    EXPECT_EQ(open_fails, 0);
  }
}

TEST(FuzzGenerator, CoversMultiClusterAndSweepShapes) {
  bool multi_cluster = false, sweep = false, single_cluster = false;
  for (int i = 0; i < 80; ++i) {
    const scenario::ScenarioSpec spec = generate_spec(spec_seed(11, i));
    SCOPED_TRACE(spec.name);
    const std::vector<Cluster> clusters = spec.platform.resolve();
    if (clusters.size() > 1) {
      multi_cluster = true;
      // Multi-cluster platforms pair with the table kinds only.
      EXPECT_TRUE(spec.kind == "table5" || spec.kind == "table6");
      EXPECT_TRUE(spec.platform.presets.size() >= 2);
    } else {
      single_cluster = true;
    }
    if (spec.kind == "sweep") {
      sweep = true;
      EXPECT_FALSE(spec.sweep.empty());
      EXPECT_TRUE(!spec.sweep.sweeps_events() || !spec.events.empty());
    }
  }
  EXPECT_TRUE(multi_cluster) << "no multi-cluster platform in 80 specs";
  EXPECT_TRUE(sweep) << "no sweep kind in 80 specs";
  EXPECT_TRUE(single_cluster);
}

TEST(FuzzOracles, GeneratedSpecsPassTheBattery) {
  for (int i = 0; i < 12; ++i) {
    const scenario::ScenarioSpec spec = generate_spec(spec_seed(5, i));
    SCOPED_TRACE(spec.name);
    const OracleReport report = run_battery(spec);
    EXPECT_TRUE(report.ok) << report.diagnosis;
  }
}

TEST(FuzzOracles, InjectedOracleFlagsFailTimelines) {
  const scenario::ScenarioSpec spec = spec_with_fail();
  EXPECT_TRUE(run_battery(spec).ok);
  const Inject inject("node-fail");
  const OracleReport report = run_battery(spec);
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.diagnosis.find("injected-oracle"), std::string::npos);
}

TEST(FuzzMinimize, ReducesToTheFailingIngredient) {
  const scenario::ScenarioSpec minimal =
      minimize_spec(spec_with_fail(), has_fail_event);
  // Everything irrelevant to "has a node-fail event" is gone: decoy
  // events, the extra graph, the second algorithm; the platform shrank.
  EXPECT_EQ(minimal.events.timeline.events.size(), 1u);
  EXPECT_TRUE(has_fail_event(minimal));
  EXPECT_EQ(minimal.workload.count, 1);
  EXPECT_EQ(minimal.algorithms.algos.size(), 1u);
  // The surviving event names node 3, so the validity probe must stop
  // the platform from shrinking below 4 nodes.
  EXPECT_EQ(minimal.platform.nodes, 4);
}

TEST(FuzzMinimize, CandidatesStayWellFormed) {
  // The probe must refuse shrinks that break the spec for a different
  // reason, e.g. dropping nodes below an event's node id.
  scenario::ScenarioSpec spec = spec_with_fail();
  const scenario::ScenarioSpec minimal = minimize_spec(
      spec, [](const scenario::ScenarioSpec& s) { return has_fail_event(s); });
  // The surviving fail event names node 3, so the platform cannot
  // shrink below 4 nodes while the event is still present... unless the
  // minimizer legitimately found an even smaller repro by dropping the
  // restart first.  Either way the result must resolve cleanly.
  const std::vector<Cluster> clusters = minimal.platform.resolve();
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_NO_THROW(minimal.events.resolve(clusters.front()));
}

TEST(FuzzDriver, CleanCampaignIsDeterministic) {
  FuzzOptions options;
  options.count = 8;
  options.seed = 21;
  options.regress_dir = testing::TempDir() + "rats-fuzz-clean";
  std::ostringstream out1, out2;
  const FuzzResult r1 = run_fuzz(options, out1);
  const FuzzResult r2 = run_fuzz(options, out2);
  EXPECT_EQ(r1.ran, 8);
  EXPECT_EQ(r1.failed, 0) << out1.str();
  EXPECT_EQ(out1.str(), out2.str());
  // A clean campaign writes nothing into the regression corpus.
  EXPECT_FALSE(std::filesystem::exists(options.regress_dir));
}

TEST(FuzzDriver, EmitOnlyPrintsTheSpecs) {
  FuzzOptions options;
  options.count = 2;
  options.seed = 3;
  options.emit_only = true;
  std::ostringstream out;
  run_fuzz(options, out);
  EXPECT_NE(out.str().find("[scenario]"), std::string::npos);
  EXPECT_NE(out.str().find(scenario::emit_scenario(generate_spec(
                spec_seed(3, 0)))),
            std::string::npos);
}

// The acceptance loop: a deliberately broken oracle must fuzz into a
// minimized repro on disk that the regression runner then fails on —
// and passes once the "bug" is fixed (the injection removed).
TEST(FuzzEndToEnd, InjectedBugIsMinimizedAndPinned) {
  const std::string dir = testing::TempDir() + "rats-fuzz-pin";
  std::filesystem::remove_all(dir);
  FuzzOptions options;
  options.count = 40;
  options.seed = 1;
  options.regress_dir = dir;
  std::ostringstream out;
  FuzzResult result;
  {
    const Inject inject("node-fail");
    result = run_fuzz(options, out);
  }
  ASSERT_GT(result.failed, 0) << "no generated timeline had a node-fail";
  ASSERT_FALSE(result.repro_paths.empty());

  const scenario::ScenarioSpec repro =
      scenario::load_scenario(result.repro_paths.front());
  // Minimized: exactly the failing ingredient survives.
  EXPECT_EQ(repro.events.timeline.events.size(), 1u);
  EXPECT_TRUE(has_fail_event(repro));
  EXPECT_EQ(repro.workload.count, 1);
  {
    // Bug still present: the pinned repro fails the battery — this is
    // what the regress corpus runner would report.
    const Inject inject("node-fail");
    EXPECT_FALSE(run_battery(repro).ok);
  }
  // Bug "fixed": the pinned repro passes and guards against regression.
  EXPECT_TRUE(run_battery(repro).ok) << "repro should pass once fixed";
  std::filesystem::remove_all(dir);
}

#if defined(__unix__) || defined(__APPLE__)
TEST(FuzzDriver, WatchdogKillsHungSpecs) {
  const Inject inject("hang");
  const SpecOutcome outcome =
      run_spec_isolated(generate_spec(spec_seed(1, 0)), 0.5);
  EXPECT_EQ(outcome.kind, SpecOutcome::Timeout);
  EXPECT_NE(outcome.diagnosis.find("watchdog"), std::string::npos);
}

TEST(FuzzDriver, IsolationSurvivesACrashingChild) {
  // A spec whose forked battery dies from a signal must come back as a
  // crash finding, not take the campaign down.
  const Inject inject("hang");  // the child never exits on its own
  const SpecOutcome outcome =
      run_spec_isolated(generate_spec(spec_seed(1, 1)), 0.2);
  EXPECT_NE(outcome.kind, SpecOutcome::Pass);
}
#endif

}  // namespace
}  // namespace rats::fuzz
