// Unit tests for the experiment harness: parallel execution, relative
// series, pairwise comparison and degradation-from-best aggregations.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/error.hpp"
#include "exp/experiment.hpp"
#include "exp/parallel.hpp"
#include "exp/tuning.hpp"
#include "platform/grid5000.hpp"

namespace rats {
namespace {

// ------------------------------------------------------------ parallel

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { ++hits[i]; }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(10, [](std::size_t i) {
        if (i == 3) throw Error("boom");
      }, 2),
      Error);
}

TEST(ParallelFor, ReusesThePersistentPool) {
  // Consecutive calls share one process-wide pool: the worker count
  // reaches the requested size once and stays there instead of
  // re-spawning per call.
  std::atomic<int> sink{0};
  parallel_for(64, [&](std::size_t) { ++sink; }, 3);
  const unsigned after_first = worker_pool_size();
  EXPECT_GE(after_first, 2u);  // 3 workers = caller + 2 pool threads
  for (int round = 0; round < 5; ++round)
    parallel_for(64, [&](std::size_t) { ++sink; }, 3);
  EXPECT_EQ(worker_pool_size(), after_first);
  EXPECT_EQ(sink.load(), 64 * 6);
}

TEST(ParallelFor, NestedCallsRunInline) {
  // A body that itself calls parallel_for must not deadlock on the
  // shared pool; the inner loop runs inline on the claiming worker.
  std::vector<std::atomic<int>> hits(100);
  parallel_for(10, [&](std::size_t outer) {
    parallel_for(10, [&](std::size_t inner) {
      ++hits[outer * 10 + inner];
    }, 4);
  }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ------------------------------------------------- synthetic aggregation

ExperimentData synthetic() {
  // 4 entries x 3 algos with hand-picked makespans.
  ExperimentData d;
  d.cluster_name = "synthetic";
  d.algo_names = {"ref", "good", "bad"};
  d.families.assign(4, DagFamily::Layered);
  d.entry_names = {"e0", "e1", "e2", "e3"};
  const double mk[4][3] = {
      {10.0, 8.0, 12.0},
      {10.0, 10.0, 15.0},
      {10.0, 9.0, 10.0},
      {10.0, 12.0, 20.0},
  };
  for (int e = 0; e < 4; ++e) {
    std::vector<RunOutcome> row;
    for (int a = 0; a < 3; ++a)
      row.push_back(RunOutcome{mk[e][a], 100.0 + a});
    d.outcome.push_back(std::move(row));
  }
  return d;
}

TEST(Experiment, RelativeSeriesAgainstReference) {
  const auto d = synthetic();
  const auto rel = relative_series(d, 1, 0, true);
  EXPECT_EQ(rel.size(), 4u);
  EXPECT_DOUBLE_EQ(rel[0], 0.8);
  EXPECT_DOUBLE_EQ(rel[1], 1.0);
  EXPECT_DOUBLE_EQ(rel[3], 1.2);
}

TEST(Experiment, RelativeSeriesOnWork) {
  const auto d = synthetic();
  const auto rel = relative_series(d, 2, 0, false);
  for (double r : rel) EXPECT_DOUBLE_EQ(r, 102.0 / 100.0);
}

TEST(Experiment, SummarizeRelativeCountsFractions) {
  const auto d = synthetic();
  const auto s = summarize_relative(relative_series(d, 1, 0, true));
  EXPECT_NEAR(s.mean_ratio, (0.8 + 1.0 + 0.9 + 1.2) / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.fraction_better, 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_equal, 0.25);
}

TEST(Experiment, PairwiseCountsAreAntisymmetric) {
  const auto d = synthetic();
  const auto ab = pairwise_compare(d, 1, 2);
  const auto ba = pairwise_compare(d, 2, 1);
  EXPECT_EQ(ab.better, ba.worse);
  EXPECT_EQ(ab.worse, ba.better);
  EXPECT_EQ(ab.equal, ba.equal);
  EXPECT_EQ(ab.better + ab.equal + ab.worse, 4);
}

TEST(Experiment, PairwiseAgainstSynthetic) {
  const auto d = synthetic();
  const auto c = pairwise_compare(d, 1, 0);  // good vs ref
  EXPECT_EQ(c.better, 2);
  EXPECT_EQ(c.equal, 1);
  EXPECT_EQ(c.worse, 1);
}

TEST(Experiment, CombinedFractionsSumToOne) {
  const auto d = synthetic();
  for (std::size_t a = 0; a < 3; ++a) {
    const auto f = combined_compare(d, a);
    EXPECT_NEAR(f.better + f.equal + f.worse, 1.0, 1e-12);
  }
}

TEST(Experiment, DegradationFromBestSynthetic) {
  const auto d = synthetic();
  const auto deg = degradation_from_best(d, 0);  // "ref"
  // Per-entry bests: 8, 10, 9, 10.  ref degradations: 2/8, 0, 1/9, 0.
  EXPECT_EQ(deg.not_best, 2);
  EXPECT_NEAR(deg.avg_over_all, (0.25 + 0.0 + 1.0 / 9.0 + 0.0) / 4.0, 1e-12);
  EXPECT_NEAR(deg.avg_over_not_best, (0.25 + 1.0 / 9.0) / 2.0, 1e-12);
}

TEST(Experiment, BestAlgorithmHasZeroDegradation) {
  const auto d = synthetic();
  // Per entry the best algo has degradation 0; check algo 1 on entry 0.
  const auto deg = degradation_from_best(d, 1);
  EXPECT_EQ(deg.not_best, 1);  // only entry 3
  EXPECT_NEAR(deg.avg_over_not_best, 0.2, 1e-12);
}

TEST(Experiment, SortedCurveIsMonotone) {
  const auto curve = sorted_curve({5.0, 1.0, 3.0, 2.0, 4.0}, 11);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front(), 1.0);
  EXPECT_DOUBLE_EQ(curve.back(), 5.0);
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LE(curve[i - 1], curve[i]);
}

TEST(Experiment, SortedCurveRejectsBadPointCount) {
  EXPECT_THROW(sorted_curve({1.0}, 1), Error);
}

TEST(Experiment, RejectsBadIndices) {
  const auto d = synthetic();
  EXPECT_THROW(relative_series(d, 7, 0, true), Error);
}

// ------------------------------------------------- small real experiment

TEST(Experiment, EndToEndOnTinyCorpus) {
  CorpusOptions o;
  o.random_samples = 1;
  o.kernel_samples = 1;
  const auto corpus = build_family(DagFamily::Strassen, o);
  ASSERT_EQ(corpus.size(), 1u);
  const std::vector<AlgoSpec> algos = {
      {"HCPA", SchedulerOptions{SchedulerKind::Hcpa, {}, true}},
      {"delta", SchedulerOptions{SchedulerKind::RatsDelta, {}, true}},
  };
  const auto data = run_experiment(corpus, grid5000::chti(), algos);
  EXPECT_EQ(data.entries(), 1u);
  EXPECT_EQ(data.algos(), 2u);
  for (const auto& row : data.outcome)
    for (const auto& out : row) {
      EXPECT_GT(out.makespan, 0.0);
      EXPECT_GT(out.work, 0.0);
    }
}

TEST(Tuning, ParameterListsMatchPaper) {
  EXPECT_EQ(tuning_mindeltas(), (std::vector<double>{0.0, -0.25, -0.5, -0.75}));
  EXPECT_EQ(tuning_maxdeltas(),
            (std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0}));
  EXPECT_EQ(tuning_minrhos(),
            (std::vector<double>{0.2, 0.4, 0.5, 0.6, 0.8, 1.0}));
}

TEST(Tuning, ReferenceMakespansArePositive) {
  CorpusOptions o;
  o.random_samples = 1;
  o.kernel_samples = 1;
  const auto corpus = build_family(DagFamily::Strassen, o);
  const auto ref = reference_makespans(corpus, grid5000::chti());
  ASSERT_EQ(ref.size(), 1u);
  EXPECT_GT(ref[0], 0.0);
}

TEST(Tuning, AverageRelativeOfReferenceIsOne) {
  CorpusOptions o;
  o.random_samples = 1;
  o.kernel_samples = 1;
  const auto corpus = build_family(DagFamily::Strassen, o);
  const Cluster c = grid5000::chti();
  const auto ref = reference_makespans(corpus, c);
  SchedulerOptions hcpa;
  hcpa.kind = SchedulerKind::Hcpa;
  EXPECT_NEAR(average_relative_makespan(corpus, c, hcpa, ref), 1.0, 1e-12);
}

}  // namespace
}  // namespace rats
