// Unit and property tests for the Amdahl performance model.
#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "model/amdahl.hpp"

namespace rats {
namespace {

Task make_task(double flops, double alpha) {
  return Task{"t", 0.0, flops, alpha};
}

TEST(AmdahlModel, SequentialTimeIsFlopsOverRate) {
  const AmdahlModel model(2e9);
  EXPECT_DOUBLE_EQ(model.sequential_time(make_task(4e9, 0.1)), 2.0);
}

TEST(AmdahlModel, OneProcessorEqualsSequential) {
  const AmdahlModel model(1e9);
  const Task t = make_task(3e9, 0.2);
  EXPECT_DOUBLE_EQ(model.execution_time(t, 1), model.sequential_time(t));
}

TEST(AmdahlModel, FullyParallelScalesPerfectly) {
  const AmdahlModel model(1e9);
  const Task t = make_task(8e9, 0.0);
  EXPECT_DOUBLE_EQ(model.execution_time(t, 8), 1.0);
}

TEST(AmdahlModel, FullySerialNeverImproves) {
  const AmdahlModel model(1e9);
  const Task t = make_task(5e9, 1.0);
  EXPECT_DOUBLE_EQ(model.execution_time(t, 64), 5.0);
}

TEST(AmdahlModel, KnownMidpoint) {
  // T = 10 * (0.25 + 0.75/4) = 10 * 0.4375
  const AmdahlModel model(1e9);
  const Task t = make_task(10e9, 0.25);
  EXPECT_DOUBLE_EQ(model.execution_time(t, 4), 4.375);
}

TEST(AmdahlModel, WorkAtOneProcessorEqualsSequentialTime) {
  const AmdahlModel model(1e9);
  const Task t = make_task(6e9, 0.15);
  EXPECT_DOUBLE_EQ(model.work(t, 1), model.sequential_time(t));
}

TEST(AmdahlModel, RejectsNonPositiveSpeed) {
  EXPECT_THROW(AmdahlModel(0), Error);
  EXPECT_THROW(AmdahlModel(-5), Error);
}

TEST(AmdahlModel, RejectsZeroProcessors) {
  const AmdahlModel model(1e9);
  EXPECT_THROW(model.execution_time(make_task(1e9, 0.1), 0), Error);
}

// Property sweep over (alpha, procs): the paper's model assumptions.
class AmdahlProperties
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(AmdahlProperties, ExecutionTimeMonotonicallyDecreasing) {
  const auto [alpha, procs] = GetParam();
  const AmdahlModel model(3.2e9);
  const Task t = make_task(7.3e12, alpha);
  if (alpha < 1.0) {
    EXPECT_GT(model.execution_time(t, procs),
              model.execution_time(t, procs + 1));
  } else {
    EXPECT_DOUBLE_EQ(model.execution_time(t, procs),
                     model.execution_time(t, procs + 1));
  }
}

TEST_P(AmdahlProperties, WorkNonDecreasingInProcessors) {
  const auto [alpha, procs] = GetParam();
  const AmdahlModel model(3.2e9);
  const Task t = make_task(7.3e12, alpha);
  EXPECT_LE(model.work(t, procs), model.work(t, procs + 1) + 1e-9);
}

TEST_P(AmdahlProperties, GainOfOneMoreIsNonNegative) {
  const auto [alpha, procs] = GetParam();
  const AmdahlModel model(3.2e9);
  const Task t = make_task(7.3e12, alpha);
  EXPECT_GE(model.gain_of_one_more(t, procs), 0.0);
}

TEST_P(AmdahlProperties, TimeBoundedBelowBySerialFraction) {
  const auto [alpha, procs] = GetParam();
  const AmdahlModel model(3.2e9);
  const Task t = make_task(7.3e12, alpha);
  EXPECT_GE(model.execution_time(t, procs),
            alpha * model.sequential_time(t) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaProcGrid, AmdahlProperties,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.125, 0.25, 0.5, 1.0),
                       ::testing::Values(1, 2, 3, 7, 16, 47, 119)));

}  // namespace
}  // namespace rats
