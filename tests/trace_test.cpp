// Unit tests for structured simulation tracing (src/trace): event
// capture through the simulator and fluid network, the JSON-lines and
// Gantt exporters, and the deterministic replay checker.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "daggen/kernels.hpp"
#include "scenario/registry.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace rats {
namespace {

struct Traced {
  TaskGraph graph;
  TraceSink sink;
  SimulationResult result;
};

Traced traced_fft_run() {
  Traced t;
  Rng rng(7);
  t.graph = generate_fft_dag(4, rng);
  const Cluster cluster =
      Cluster::flat("flat8", 8, 3e9, 100e-6, kGigabitPerSecond);
  const Schedule schedule = build_schedule(t.graph, cluster, {});
  SimulatorOptions options;
  options.trace = &t.sink;
  t.result = simulate(t.graph, schedule, cluster, options);
  return t;
}

TEST(TraceSinkTest, CapturesTaskAndRedistributionIntervals) {
  const Traced t = traced_fft_run();
  const auto& events = t.sink.events();
  ASSERT_FALSE(events.empty());

  int starts = 0, finishes = 0, redist_open = 0, redist_done = 0, solves = 0,
      rates = 0;
  Seconds last = 0;
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.time, last - 1e-12);  // non-decreasing stream
    last = std::max(last, e.time);
    switch (e.kind) {
      case TraceEventKind::TaskStart: ++starts; break;
      case TraceEventKind::TaskFinish: ++finishes; break;
      case TraceEventKind::RedistStart: ++redist_open; break;
      case TraceEventKind::RedistDone: ++redist_done; break;
      case TraceEventKind::SolveComponent: ++solves; break;
      case TraceEventKind::RateChange: ++rates; break;
    }
  }
  EXPECT_EQ(starts, t.graph.num_tasks());
  EXPECT_EQ(finishes, t.graph.num_tasks());
  EXPECT_EQ(redist_open, t.graph.num_edges());
  EXPECT_EQ(redist_done, t.graph.num_edges());
  EXPECT_GT(solves, 0);
  EXPECT_GT(rates, 0);

  // Untraced simulation is unaffected (and the sink is opt-in).
  Traced again = traced_fft_run();
  EXPECT_DOUBLE_EQ(again.result.makespan, t.result.makespan);
}

TEST(TraceSinkTest, EventLineFormat) {
  TraceEvent e;
  e.time = 0.5;
  e.kind = TraceEventKind::TaskStart;
  e.a = 3;
  e.b = 2;
  EXPECT_EQ(trace_event_line(e),
            "{\"t\":0.5,\"ev\":\"task_start\",\"a\":3,\"b\":2,\"v\":0}");
  e.kind = TraceEventKind::RateChange;
  e.value = 1.0 / 3.0;
  EXPECT_NE(trace_event_line(e).find("\"v\":0.33333333333333331"),
            std::string::npos);
}

TEST(TraceSinkTest, JsonEscaping) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ---- delta encoding ----------------------------------------------------

TEST(TraceEncodingTest, RateRecordsDropRepeatedFields) {
  TraceLineEncoder encoder;
  std::string out;
  TraceEvent solve;
  solve.time = 1.5;
  solve.kind = TraceEventKind::SolveComponent;
  solve.a = 0;
  solve.b = 4;
  encoder.append(solve, out);

  TraceEvent rate;
  rate.kind = TraceEventKind::RateChange;
  rate.time = 1.5;  // same instant as the solve
  rate.a = 7;
  rate.value = 125e6;
  encoder.append(rate, out);
  rate.a = 8;  // same time, same fair share
  encoder.append(rate, out);
  rate.a = 9;
  rate.time = 2.0;  // rate flush at a later event
  rate.value = 62.5e6;
  encoder.append(rate, out);

  const std::string expected_tail =
      "{\"r\":7,\"v\":125000000}\n"
      "{\"r\":8}\n"
      "{\"r\":9,\"t\":2,\"v\":62500000}\n";
  EXPECT_NE(out.find(expected_tail), std::string::npos) << out;
}

TEST(TraceEncodingTest, EncodeDecodeRoundTripsARealRunBitExactly) {
  const Traced t = traced_fft_run();
  TraceLineEncoder encoder;
  std::string encoded;
  std::string plain;
  for (const TraceEvent& e : t.sink.events()) {
    encoder.append(e, encoded);
    plain += trace_event_line(e);
    plain += '\n';
  }
  // The stream that dominates trace size shrinks.
  EXPECT_LT(encoded.size(), plain.size());

  TraceLineDecoder decoder;
  std::size_t index = 0;
  std::size_t at = 0;
  while (at < encoded.size()) {
    const std::size_t end = encoded.find('\n', at);
    ASSERT_NE(end, std::string::npos);
    const std::string line = encoded.substr(at, end - at);
    at = end + 1;
    TraceEvent decoded;
    ASSERT_TRUE(decoder.decode(line, decoded)) << line;
    ASSERT_LT(index, t.sink.events().size());
    const TraceEvent& original = t.sink.events()[index++];
    EXPECT_EQ(std::memcmp(&decoded.time, &original.time, sizeof(double)), 0);
    EXPECT_EQ(decoded.kind, original.kind);
    EXPECT_EQ(decoded.a, original.a);
    EXPECT_EQ(decoded.b, original.b);
    EXPECT_EQ(std::memcmp(&decoded.value, &original.value, sizeof(double)),
              0);
  }
  EXPECT_EQ(index, t.sink.events().size());
}

TEST(TraceEncodingTest, DecoderRejectsMalformedAndOrphanLines) {
  TraceLineDecoder decoder;
  TraceEvent out;
  // A bare {"r":...} with no prior time/value has nothing to inherit.
  EXPECT_FALSE(decoder.decode("{\"r\":3}", out));
  EXPECT_FALSE(decoder.decode("{\"r\":3,\"v\":1}", out));  // still no time
  EXPECT_FALSE(decoder.decode("not json", out));
  EXPECT_FALSE(decoder.decode("{\"t\":1,\"ev\":\"nope\",\"a\":1,\"b\":1,\"v\":0}",
                              out));
  EXPECT_TRUE(
      decoder.decode("{\"t\":1,\"ev\":\"rate\",\"a\":1,\"b\":-1,\"v\":5}", out));
  EXPECT_TRUE(decoder.decode("{\"r\":3}", out));  // now it inherits
  EXPECT_EQ(out.a, 3);
  EXPECT_EQ(out.time, 1.0);
  EXPECT_EQ(out.value, 5.0);
}

// ---- streaming writer --------------------------------------------------

TEST(TraceWriterTest, OutOfOrderCompletionsFlushInRunOrder) {
  std::ostringstream out;
  TraceWriter writer(out, "w", "experiment", "[scenario]\nkind=...\n");
  writer.begin_matrix(3);
  TraceSink* s0 = writer.begin_run(0, "e0", "HCPA", "c");
  TraceSink* s1 = writer.begin_run(1, "e0", "delta", "c");
  TraceSink* s2 = writer.begin_run(2, "e0", "time-cost", "c");
  s0->record(0.5, TraceEventKind::TaskStart, 0, 1);
  s1->record(1.5, TraceEventKind::TaskStart, 0, 1);
  s2->record(2.5, TraceEventKind::TaskStart, 0, 1);
  // Complete out of order: nothing before run 0 ends may flush.
  writer.end_run(2, 30.0);
  writer.end_run(0, 10.0);
  writer.end_run(1, 20.0);
  writer.finish();
  const std::string text = out.str();
  const std::size_t r0 = text.find("{\"run\":0,");
  const std::size_t r1 = text.find("{\"run\":1,");
  const std::size_t r2 = text.find("{\"run\":2,");
  ASSERT_NE(r0, std::string::npos);
  ASSERT_NE(r1, std::string::npos);
  ASSERT_NE(r2, std::string::npos);
  EXPECT_LT(r0, r1);
  EXPECT_LT(r1, r2);
  EXPECT_EQ(writer.total_events(), 3u);
  EXPECT_NE(text.find("\"makespan\":30"), std::string::npos);
  EXPECT_EQ(text.rfind("{\"rats_trace\":2,", 0), 0u);
}

TEST(TraceWriterTest, FinishRejectsUnendedRuns) {
  std::ostringstream out;
  TraceWriter writer(out, "w", "experiment", "spec");
  writer.begin_matrix(1);
  writer.begin_run(0, "e", "a", "c");
  EXPECT_THROW(writer.finish(), Error);
}

TEST(TraceGanttTest, RendersSortedIntervals) {
  const Traced t = traced_fft_run();
  std::vector<std::string> names;
  for (TaskId id = 0; id < t.graph.num_tasks(); ++id)
    names.push_back(t.graph.task(id).name);
  const std::string gantt = trace_gantt(t.sink.events(), &names);
  EXPECT_NE(gantt.find("interval"), std::string::npos);
  EXPECT_NE(gantt.find("duration"), std::string::npos);
  EXPECT_NE(gantt.find(names.front()), std::string::npos);
  EXPECT_NE(gantt.find("edge 0"), std::string::npos);
}

// ---- replay ------------------------------------------------------------

scenario::ScenarioSpec tiny_experiment_spec() {
  scenario::ScenarioSpec spec = scenario::default_spec("experiment");
  spec.name = "tiny";
  spec.workload.count = 1;
  spec.workload.dag.num_tasks = 20;
  spec.platform.presets.clear();
  spec.platform.name = "flat6";
  spec.platform.nodes = 6;
  spec.platform.gflops = 3.0;
  return spec;
}

scenario::ScenarioSpec tiny_hierarchical_spec() {
  scenario::ScenarioSpec spec = tiny_experiment_spec();
  spec.name = "tiny-hier";
  spec.platform.nodes = 0;
  spec.platform.name = "hier";
  spec.platform.cabinet_nodes = {2, 4, 3};
  return spec;
}

std::string write_temp_trace(const scenario::ScenarioSpec& spec,
                             const char* filename) {
  const std::string path = testing::TempDir() + filename;
  std::ofstream out(path, std::ios::binary);
  out << scenario::render_trace(spec, 1);
  out.close();
  return path;
}

TEST(TraceReplayTest, RenderIsThreadCountIndependent) {
  const auto spec = tiny_experiment_spec();
  EXPECT_EQ(scenario::render_trace(spec, 1), scenario::render_trace(spec, 4));
}

TEST(TraceReplayTest, VerifiesItsOwnRender) {
  const std::string path =
      write_temp_trace(tiny_experiment_spec(), "tiny_trace.jsonl");
  const ReplayReport report = verify_trace(path, 2);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.runs, 3u);  // 1 workload x naive's 3 algorithms
  EXPECT_GT(report.events, 0u);
  std::remove(path.c_str());
}

TEST(TraceReplayTest, VerifiesHierarchicalScenario) {
  const std::string path =
      write_temp_trace(tiny_hierarchical_spec(), "hier_trace.jsonl");
  const ReplayReport report = verify_trace(path, 2);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.runs, 3u);
  std::remove(path.c_str());
}

TEST(TraceReplayTest, DetectsTampering) {
  const std::string path =
      write_temp_trace(tiny_experiment_spec(), "tampered_trace.jsonl");
  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  // Flip the first task_start event into a task id that never ran.
  const std::size_t at = text.find("\"ev\":\"task_start\",\"a\":");
  ASSERT_NE(at, std::string::npos);
  text[at + 22] = text[at + 22] == '9' ? '8' : '9';
  std::ofstream out(path, std::ios::binary);
  out << text;
  out.close();
  const ReplayReport report = verify_trace(path, 1);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("diverges from replay"), std::string::npos)
      << report.error;
  std::remove(path.c_str());
}

TEST(TraceReplayTest, RejectsNonTraces) {
  const std::string path = testing::TempDir() + "not_a_trace.jsonl";
  std::ofstream out(path);
  out << "{\"something\":\"else\"}\n";
  out.close();
  const ReplayReport report = verify_trace(path, 1);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("not a RATS trace"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_FALSE(verify_trace("/nonexistent/trace.jsonl").ok);
}

TEST(TraceReplayTest, UntraceableKindsRefuse) {
  auto spec = scenario::default_spec("table4");
  EXPECT_THROW(scenario::render_trace(spec, 1), Error);
}

}  // namespace
}  // namespace rats
