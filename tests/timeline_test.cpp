// Tests for the platform event timeline: [events] parsing and
// validation, the simulator's fault semantics (fail-stop kills,
// hold/reschedule recovery, slowdown re-timing, same-instant batches),
// the empty-timeline identity the healthy goldens rely on, and the
// robustness kind's Table VI parity.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "platform/timeline.hpp"
#include "scenario/parser.hpp"
#include "scenario/registry.hpp"
#include "sim/simulator.hpp"
#include "trace/replay.hpp"

namespace rats {
namespace {

Cluster cluster4() { return Cluster::flat("tl-test", 4, 1e9, 100e-6, 125e6); }

Schedule place(std::vector<std::vector<NodeId>> procs) {
  Schedule s;
  std::int64_t seq = 0;
  for (auto& p : procs) {
    TaskPlacement tp;
    tp.procs = std::move(p);
    tp.seq = seq++;
    s.placements.push_back(std::move(tp));
  }
  return s;
}

/// a -> b chain across two nodes (125 MB over one NIC pair).
TaskGraph chain_graph() {
  TaskGraph g;
  const TaskId a = g.add_task(Task{"a", 1e6, 1e9, 0.0});
  const TaskId b = g.add_task(Task{"b", 1e6, 1e9, 0.0});
  g.add_edge(a, b, 125e6);
  return g;
}

SimulationResult sim_with(const TaskGraph& g, const Schedule& s,
                          const Cluster& c, const PlatformTimeline* tl) {
  SimulatorOptions o;
  o.timeline = tl;
  return simulate(g, s, c, o);
}

PlatformEvent event(Seconds at, PlatformEventKind kind, NodeId node,
                    double factor = 1.0) {
  PlatformEvent e;
  e.at = at;
  e.kind = kind;
  e.node = node;
  e.factor = factor;
  return e;
}

// ---- wire names --------------------------------------------------------

TEST(TimelineNames, EventKindsRoundTrip) {
  for (PlatformEventKind kind :
       {PlatformEventKind::LinkCapacity, PlatformEventKind::NodeSlowdown,
        PlatformEventKind::NodeFail, PlatformEventKind::NodeRestart}) {
    bool ok = false;
    EXPECT_EQ(platform_event_kind_from(to_string(kind), ok), kind);
    EXPECT_TRUE(ok);
  }
  bool ok = true;
  platform_event_kind_from("node-explode", ok);
  EXPECT_FALSE(ok);
}

// ---- simulator semantics -----------------------------------------------

TEST(TimelineSim, NullAndEmptyTimelinesAreBitIdenticalToHealthy) {
  const TaskGraph g = chain_graph();
  const Cluster c = cluster4();
  const Schedule s = place({{0}, {1}});
  const auto healthy = simulate(g, s, c);
  const PlatformTimeline empty;
  const auto with_empty = sim_with(g, s, c, &empty);
  EXPECT_EQ(healthy.makespan, with_empty.makespan);
  EXPECT_EQ(healthy.total_work, with_empty.total_work);
  EXPECT_EQ(healthy.network_bytes, with_empty.network_bytes);
  EXPECT_EQ(with_empty.faults.tasks_killed, 0);
}

TEST(TimelineSim, SameInstantFailRestartIsANoOp) {
  const TaskGraph g = chain_graph();
  const Cluster c = cluster4();
  const Schedule s = place({{0}, {1}});
  const auto healthy = simulate(g, s, c);
  PlatformTimeline tl;
  tl.events = {event(0.5, PlatformEventKind::NodeFail, 0),
               event(0.5, PlatformEventKind::NodeRestart, 0)};
  const auto r = sim_with(g, s, c, &tl);
  // Same-timestamp events apply as one batch before any consequence is
  // drawn, so the restart cancels the failure bit-exactly.
  EXPECT_EQ(healthy.makespan, r.makespan);
  EXPECT_EQ(r.faults.tasks_killed, 0);
  EXPECT_EQ(r.faults.tasks_remapped, 0);
}

TEST(TimelineSim, SlowdownRetimesTheRunningTask) {
  TaskGraph g;
  g.add_task(Task{"solo", 1e6, 4e9, 0.0});
  const Cluster c = cluster4();
  const Schedule s = place({{0, 1}});
  // Healthy: 4e9 flops on 2 x 1e9 -> 2 s.  Node 0 at half speed from
  // t=1: the remaining 1 s of work takes 2 s -> makespan 3 s.
  PlatformTimeline tl;
  tl.events = {event(1.0, PlatformEventKind::NodeSlowdown, 0, 0.5)};
  const auto r = sim_with(g, s, c, &tl);
  EXPECT_NEAR(r.makespan, 3.0, 1e-9);
  EXPECT_EQ(r.faults.tasks_killed, 0);
}

TEST(TimelineSim, FactorOneSlowdownIsBitIdenticalToHealthy) {
  const TaskGraph g = chain_graph();
  const Cluster c = cluster4();
  const Schedule s = place({{0}, {1}});
  const auto healthy = simulate(g, s, c);
  PlatformTimeline tl;
  tl.events = {event(0.25, PlatformEventKind::NodeSlowdown, 0, 1.0)};
  const auto r = sim_with(g, s, c, &tl);
  EXPECT_EQ(healthy.makespan, r.makespan);
}

TEST(TimelineSim, RescheduleKillsAndRemapsOffTheFailedNode) {
  const TaskGraph g = chain_graph();
  const Cluster c = cluster4();
  const Schedule s = place({{0}, {1}});
  const auto healthy = simulate(g, s, c);
  PlatformTimeline tl;
  tl.on_fail = FailPolicy::Reschedule;
  tl.events = {event(0.5, PlatformEventKind::NodeFail, 0)};
  const auto r = sim_with(g, s, c, &tl);
  // Task a loses 0.5 s of progress and re-runs on a surviving node.
  EXPECT_GT(r.makespan, healthy.makespan);
  EXPECT_EQ(r.faults.tasks_killed, 1);
  EXPECT_EQ(r.faults.tasks_remapped, 1);
  EXPECT_GT(r.faults.capacity_seconds_lost, 0.0);
}

TEST(TimelineSim, HoldWaitsForTheRestart) {
  const TaskGraph g = chain_graph();
  const Cluster c = cluster4();
  const Schedule s = place({{0}, {1}});
  const auto healthy = simulate(g, s, c);
  PlatformTimeline tl;
  tl.on_fail = FailPolicy::Hold;
  tl.events = {event(0.5, PlatformEventKind::NodeFail, 0),
               event(2.0, PlatformEventKind::NodeRestart, 0)};
  const auto r = sim_with(g, s, c, &tl);
  // a re-runs on its original node after the restart: 2.0 + 1 s for a,
  // then the healthy transfer + b tail.
  EXPECT_NEAR(r.makespan, 2.0 + healthy.makespan, 1e-9);
  EXPECT_EQ(r.faults.tasks_killed, 1);
  EXPECT_EQ(r.faults.tasks_remapped, 0);
}

TEST(TimelineSim, HoldWithoutRestartStallsWithDiagnostic) {
  const TaskGraph g = chain_graph();
  const Cluster c = cluster4();
  const Schedule s = place({{0}, {1}});
  PlatformTimeline tl;
  tl.on_fail = FailPolicy::Hold;
  tl.events = {event(0.5, PlatformEventKind::NodeFail, 0)};
  try {
    sim_with(g, s, c, &tl);
    FAIL() << "expected a stall error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no scheduled restart"),
              std::string::npos)
        << e.what();
  }
}

TEST(TimelineSim, ValidateRejectsBadSelectors) {
  const Cluster c = cluster4();
  PlatformTimeline tl;
  tl.events = {event(1.0, PlatformEventKind::NodeFail, 99)};
  EXPECT_THROW(tl.validate(c), Error);
  tl.events = {event(1.0, PlatformEventKind::NodeSlowdown, 0, -2.0)};
  EXPECT_THROW(tl.validate(c), Error);
  tl.events = {event(1.0, PlatformEventKind::NodeRestart, 0)};
  EXPECT_THROW(tl.validate(c), Error);  // restart without a failure
}

// ---- scenario integration ----------------------------------------------

const char* kDegradedSingle =
    "[scenario]\n"
    "name = \"tl\"\n"
    "kind = \"experiment\"\n"
    "[platform]\n"
    "nodes = 6\n"
    "gflops = 3.0\n"
    "[workload]\n"
    "source = \"generate\"\n"
    "generator = \"layered\"\n"
    "count = 1\n"
    "tasks = 20\n"
    "[events]\n"
    "on-fail = \"reschedule\"\n"
    "[event]\n"
    "at = 0.5\n"
    "kind = \"node-fail\"\n"
    "node = 0\n"
    "[event]\n"
    "at = 2\n"
    "kind = \"node-restart\"\n"
    "node = 0\n"
    "[event]\n"
    "at = 1\n"
    "kind = \"link-capacity\"\n"
    "node = 2\n"
    "factor = 0.25\n";

TEST(TimelineScenario, EventsSectionRoundTripsByteStable) {
  const scenario::ScenarioSpec spec =
      scenario::parse_scenario_string(kDegradedSingle);
  ASSERT_EQ(spec.events.timeline.events.size(), 3u);
  EXPECT_EQ(spec.events.timeline.on_fail, FailPolicy::Reschedule);
  const std::string once = scenario::emit_scenario(spec);
  EXPECT_EQ(once,
            scenario::emit_scenario(scenario::parse_scenario_string(once)));
}

TEST(TimelineScenario, BareEventsSectionIsIdenticalToNoSection) {
  std::string healthy_text;
  std::string bare_text;
  for (const char* line : {"[scenario]\n", "kind = \"experiment\"\n",
                           "[platform]\n", "nodes = 6\n", "gflops = 3.0\n",
                           "[workload]\n", "source = \"generate\"\n",
                           "generator = \"layered\"\n", "count = 1\n",
                           "tasks = 20\n"}) {
    healthy_text += line;
    bare_text += line;
  }
  bare_text += "[events]\non-fail = \"hold\"\n";  // section, zero events
  const scenario::ScenarioSpec healthy =
      scenario::parse_scenario_string(healthy_text);
  const scenario::ScenarioSpec bare =
      scenario::parse_scenario_string(bare_text);
  // Canonical emission drops the empty section entirely...
  EXPECT_EQ(scenario::emit_scenario(healthy), scenario::emit_scenario(bare));
  // ...so trace headers and every simulated byte stay identical.
  EXPECT_EQ(scenario::render_trace(healthy, 1),
            scenario::render_trace(bare, 1));
}

TEST(TimelineScenario, EventInjectedTraceReplayVerifies) {
  const scenario::ScenarioSpec spec =
      scenario::parse_scenario_string(kDegradedSingle);
  const std::string path = testing::TempDir() + "degraded_trace.jsonl";
  std::ofstream out(path, std::ios::binary);
  out << scenario::render_trace(spec, 1);
  out.close();
  const ReplayReport report = verify_trace(path, 2);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.runs, 3u);  // 1 workload x naive's 3 algorithms
  std::remove(path.c_str());
}

TEST(TimelineScenario, RobustnessHealthyHalfMatchesTable6) {
  const char* kShared =
      "[platform]\n"
      "cluster = \"chti\"\n"
      "[workload]\n"
      "source = \"corpus\"\n"
      "samples-kernel = 2\n"
      "cap-per-family = 2\n"
      "[algorithms]\n"
      "preset = \"tuned\"\n";
  const scenario::ScenarioSpec table6 = scenario::parse_scenario_string(
      std::string("[scenario]\nkind = \"table6\"\n") + kShared);
  const scenario::ScenarioSpec robustness = scenario::parse_scenario_string(
      std::string("[scenario]\nkind = \"robustness\"\n") + kShared +
      "[events]\n[event]\nat = 2\nkind = \"node-slowdown\"\nnode = 0\n"
      "factor = 0.5\n");
  const auto find_degradation = [](const report::ReportModel& model)
      -> const report::TableModel* {
    for (const auto& item : model.items)
      if (item.kind == report::Item::Kind::Table &&
          item.table.id == "degradation")
        return &item.table;
    return nullptr;
  };
  const report::ReportModel a = scenario::build_report(table6);
  const report::ReportModel b = scenario::build_report(robustness);
  const report::TableModel* ta = find_degradation(a);
  const report::TableModel* tb = find_degradation(b);
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  // The healthy half of the robustness report IS Table VI: same rows,
  // same formatted cells — the paper's numbers as a robustness preset.
  ASSERT_EQ(ta->rows.size(), tb->rows.size());
  for (std::size_t r = 0; r < ta->rows.size(); ++r) {
    ASSERT_EQ(ta->rows[r].size(), tb->rows[r].size());
    for (std::size_t col = 0; col < ta->rows[r].size(); ++col)
      EXPECT_EQ(ta->rows[r][col].text, tb->rows[r][col].text)
          << "row " << r << " col " << col;
  }
}

TEST(TimelineScenario, StaticKindsRejectEvents) {
  const scenario::ScenarioSpec spec = scenario::parse_scenario_string(
      "[scenario]\nkind = \"table1\"\n"
      "[events]\n[event]\nat = 1\nkind = \"node-fail\"\nnode = 0\n");
  EXPECT_THROW(scenario::build_report(spec), Error);
}

TEST(TimelineScenario, RobustnessRequiresEvents) {
  const scenario::ScenarioSpec spec = scenario::parse_scenario_string(
      "[scenario]\nkind = \"robustness\"\n"
      "[platform]\ncluster = \"chti\"\n"
      "[workload]\nsource = \"corpus\"\nsamples-kernel = 2\n"
      "cap-per-family = 1\n"
      "[algorithms]\npreset = \"tuned\"\n");
  EXPECT_THROW(scenario::build_report(spec), Error);
}

// ---- fault accounting invariants ---------------------------------------

// Hand-computed capacity·s and node·s integrals.  cluster4's links all
// carry 125e6 B/s; events on unused nodes never perturb the makespan,
// so the integration window is the healthy makespan.
TEST(TimelineFaults, IntegralsMatchHandComputedWindows) {
  const TaskGraph g = chain_graph();
  const Cluster c = cluster4();
  const Schedule s = place({{0}, {1}});
  const double m = simulate(g, s, c).makespan;
  PlatformTimeline tl;
  // Overlapping windows on distinct resources: node 3's NIC pair at
  // factor 0.5 from t=1, node 2 down over [0.5, 1.5).
  tl.events = {event(1.0, PlatformEventKind::LinkCapacity, 3, 0.5),
               event(0.5, PlatformEventKind::NodeFail, 2),
               event(1.5, PlatformEventKind::NodeRestart, 2)};
  tl.sort();
  const auto r = sim_with(g, s, c, &tl);
  EXPECT_EQ(r.makespan, m);  // events touch only idle nodes
  EXPECT_NEAR(r.faults.node_seconds_down, 1.0, 1e-9);
  const double link = 125e6;
  const double want = 2 * link * 0.5 * (m - 1.0)  // traffic on node 3
                      + 2 * link * 1.0;           // node 2 down for 1 s
  EXPECT_NEAR(r.faults.capacity_seconds_lost, want, want * 1e-9);
}

TEST(TimelineFaults, DownOverridesTrafficOnTheSameLink) {
  // Node 2 carries background traffic (factor 0.25) from t=0 and is
  // down over [1, 2): while down the lost capacity is the full link,
  // not the 75% the traffic factor alone would account for.
  const TaskGraph g = chain_graph();
  const Cluster c = cluster4();
  const Schedule s = place({{0}, {1}});
  const double m = simulate(g, s, c).makespan;
  PlatformTimeline tl;
  tl.events = {event(0.0, PlatformEventKind::LinkCapacity, 2, 0.25),
               event(1.0, PlatformEventKind::NodeFail, 2),
               event(2.0, PlatformEventKind::NodeRestart, 2)};
  const auto r = sim_with(g, s, c, &tl);
  const double link = 125e6;
  const double want = 2 * link * (0.75 * (m - 1.0) + 1.0 * 1.0);
  EXPECT_NEAR(r.faults.capacity_seconds_lost, want, want * 1e-9);
  EXPECT_NEAR(r.faults.node_seconds_down, 1.0, 1e-9);
}

TEST(TimelineFaults, AccountingIsBitIdenticalAcrossRepeats) {
  // The invariant `rats run --check N` leans on: repeated simulation
  // reproduces the fault counters bit-exactly, not just approximately.
  const TaskGraph g = chain_graph();
  const Cluster c = cluster4();
  const Schedule s = place({{0}, {1}});
  PlatformTimeline tl;
  tl.on_fail = FailPolicy::Hold;
  tl.events = {event(0.25, PlatformEventKind::LinkCapacity, 3, 0.5),
               event(0.5, PlatformEventKind::NodeFail, 0),
               event(2.0, PlatformEventKind::NodeRestart, 0)};
  const auto first = sim_with(g, s, c, &tl);
  for (int i = 0; i < 3; ++i) {
    const auto again = sim_with(g, s, c, &tl);
    EXPECT_EQ(first.makespan, again.makespan);
    EXPECT_EQ(first.faults.tasks_killed, again.faults.tasks_killed);
    EXPECT_EQ(first.faults.capacity_seconds_lost,
              again.faults.capacity_seconds_lost);
    EXPECT_EQ(first.faults.node_seconds_down, again.faults.node_seconds_down);
  }
}

TEST(TimelineFaults, ValidationHooksKeepResultsByteIdentical) {
  // SimulatorOptions::validate adds the fluid network's conservation
  // and warm≡cold checks but must never change a result byte — the
  // healthy goldens depend on it.
  const TaskGraph g = chain_graph();
  const Cluster c = cluster4();
  const Schedule s = place({{0}, {1}});
  PlatformTimeline tl;
  tl.events = {event(0.25, PlatformEventKind::LinkCapacity, 1, 0.5),
               event(0.5, PlatformEventKind::NodeFail, 3),
               event(1.0, PlatformEventKind::NodeRestart, 3)};
  const PlatformTimeline* const timelines[] = {nullptr, &tl};
  for (const PlatformTimeline* timeline : timelines) {
    SimulatorOptions plain, checked;
    plain.timeline = checked.timeline = timeline;
    checked.validate = true;
    const auto a = simulate(g, s, c, plain);
    const auto b = simulate(g, s, c, checked);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.total_work, b.total_work);
    EXPECT_EQ(a.network_bytes, b.network_bytes);
    EXPECT_EQ(a.faults.capacity_seconds_lost, b.faults.capacity_seconds_lost);
  }
}

}  // namespace
}  // namespace rats
