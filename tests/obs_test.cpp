// Tests for the unified observability layer (src/obs): registry
// semantics (gating, one-name-one-kind, stability split), run-to-run
// determinism of the stable counter section, byte-neutrality of the
// report renderers when metrics are off, Chrome trace-event export
// well-formedness (every B has an E, timestamps monotonic per tid),
// the heartbeat line format, and the metrics snapshot JSON shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "report/model.hpp"
#include "report/render.hpp"
#include "scenario/parser.hpp"
#include "scenario/registry.hpp"

namespace rats {
namespace {

/// Restores the process-wide obs switches on scope exit so tests never
/// leak enablement into suites that expect the byte-neutral default.
struct ObsGuard {
  ObsGuard()
      : metrics(obs::metrics_enabled()),
        profiling(obs::profiling_enabled()) {}
  ~ObsGuard() {
    obs::set_metrics_enabled(metrics);
    obs::set_profiling_enabled(profiling);
  }
  bool metrics;
  bool profiling;
};

std::uint64_t stable_counter(const obs::Snapshot& snap,
                             const std::string& name) {
  for (const auto& v : snap.counters)
    if (v.name == name) return v.value;
  return 0;
}

scenario::ScenarioSpec tiny_fig2_spec() {
  scenario::ScenarioSpec spec = scenario::default_spec("fig2");
  spec.workload.corpus.samples_random = 0;
  spec.workload.corpus.samples_kernel = 1;
  spec.workload.cap_per_family = 2;
  spec.threads = 1;
  return spec;
}

// ---- registry semantics ------------------------------------------------

TEST(ObsRegistryTest, InstrumentsAreGatedOnTheEnableFlag) {
  ObsGuard guard;
  obs::Counter& c = obs::counter("test/gated_counter");
  obs::Gauge& g = obs::gauge("test/gated_gauge");
  obs::Timer& t = obs::timer("test/gated_timer");
  obs::Histogram& h = obs::histogram("test/gated_hist", 4);
  c.reset();
  g.reset();
  t.reset();
  h.reset();

  obs::set_metrics_enabled(false);
  c.inc();
  g.set(7);
  t.add_ns(1000);
  h.record(2);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(t.total_ns(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
  // add_always bypasses the gate (the simulated_run_count contract).
  c.add_always(3);
  EXPECT_EQ(c.value(), 3u);

  obs::set_metrics_enabled(true);
  c.add(2);
  g.set(7);
  t.add_ns(1000);
  h.record(2);
  h.record(99);  // out of range: dropped, not UB
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(g.value(), 7);
  EXPECT_EQ(t.total_ns(), 1000u);
  EXPECT_EQ(t.count(), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
}

TEST(ObsRegistryTest, RegistrationIsIdempotentPerName) {
  obs::Counter& a = obs::counter("test/same_counter");
  obs::Counter& b = obs::counter("test/same_counter");
  EXPECT_EQ(&a, &b);
  obs::Histogram& ha = obs::histogram("test/same_hist", 8);
  obs::Histogram& hb = obs::histogram("test/same_hist", 8);
  EXPECT_EQ(&ha, &hb);
}

TEST(ObsRegistryTest, OneNameRegistersAsExactlyOneKind) {
  obs::counter("test/kind_clash");
  EXPECT_THROW(obs::gauge("test/kind_clash"), Error);
  EXPECT_THROW(obs::timer("test/kind_clash"), Error);
  EXPECT_THROW(obs::histogram("test/kind_clash", 4), Error);
  obs::histogram("test/bucket_clash", 4);
  EXPECT_THROW(obs::histogram("test/bucket_clash", 5), Error);
}

TEST(ObsRegistryTest, SnapshotSplitsByStabilityAndSortsByName) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::counter("test/stable_b").add(1);
  obs::counter("test/stable_a").add(2);
  obs::counter("test/volatile_a", obs::Stability::Volatile).add(3);
  const obs::Snapshot snap = obs::snapshot();

  EXPECT_EQ(stable_counter(snap, "test/stable_a"), 2u);
  for (const auto& v : snap.counters) EXPECT_NE(v.name, "test/volatile_a");
  bool found_volatile = false;
  for (const auto& v : snap.volatile_counters)
    if (v.name == "test/volatile_a") found_volatile = true;
  EXPECT_TRUE(found_volatile);

  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
}

// ---- determinism of the stable section ---------------------------------

TEST(ObsRegistryTest, StableCountersAreRunToRunDeterministic) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  const auto spec = tiny_fig2_spec();

  const auto deltas = [&] {
    const obs::Snapshot before = obs::snapshot();
    (void)scenario::build_report(spec);
    const obs::Snapshot after = obs::snapshot();
    std::map<std::string, std::uint64_t> d;
    for (const auto& v : after.counters)
      d[v.name] = v.value - stable_counter(before, v.name);
    return d;
  };

  const auto first = deltas();
  const auto second = deltas();
  EXPECT_EQ(first, second)
      << "stable counters must pin byte-for-byte across identical runs";
  EXPECT_GT(first.at("exp/runs_simulated"), 0u);
  EXPECT_GT(first.at("sim/tasks_executed"), 0u);
}

// ---- byte-neutrality of the report renderers ---------------------------

TEST(ObsReportTest, RenderersIgnoreMetricsWhenSectionIsEmpty) {
  ObsGuard guard;
  obs::set_metrics_enabled(false);
  const report::ReportModel model = scenario::build_report(tiny_fig2_spec());
  EXPECT_TRUE(model.metrics.empty());
  const std::string json = report::render_json(model);
  const std::string csv = report::render_csv(model);
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
  EXPECT_EQ(csv.find("# metrics"), std::string::npos);
}

TEST(ObsReportTest, RenderersCarryMetricsWhenPresent) {
  report::ReportModel model = scenario::build_report(tiny_fig2_spec());
  const std::string json_without = report::render_json(model);
  const std::string csv_without = report::render_csv(model);

  model.metrics.push_back({"exp/runs_simulated", 9, true});
  model.metrics.push_back({"redist/plan/hits", 42, false});
  const std::string json = report::render_json(model);
  const std::string csv = report::render_csv(model);

  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(json.find("\"exp/runs_simulated\":9"), std::string::npos);
  EXPECT_NE(json.find("\"volatile_metrics\":{"), std::string::npos);
  EXPECT_NE(json.find("\"redist/plan/hits\":42"), std::string::npos);
  EXPECT_NE(csv.find("# metrics"), std::string::npos);
  EXPECT_NE(csv.find("exp/runs_simulated,9,1"), std::string::npos);
  EXPECT_NE(csv.find("redist/plan/hits,42,0"), std::string::npos);

  // The metrics section is strictly additive: everything before it is
  // the byte-identical metrics-off document.
  EXPECT_EQ(json.compare(0, json_without.size() - std::string("}\n").size(),
                         json_without, 0,
                         json_without.size() - std::string("}\n").size()),
            0);
  EXPECT_EQ(csv.compare(0, csv_without.size(), csv_without), 0);
}

// ---- Chrome trace-event export -----------------------------------------

/// Minimal line-oriented reader for the one-event-per-line trace JSON.
struct TraceEvent {
  char ph = '?';
  std::uint64_t tid = 0;
  double ts = 0;
  std::string name;
};

std::vector<TraceEvent> parse_trace_events(const std::string& json) {
  std::vector<TraceEvent> events;
  std::istringstream in(json);
  std::string line;
  const auto field = [&](const std::string& key) -> std::string {
    const auto at = line.find("\"" + key + "\":");
    EXPECT_NE(at, std::string::npos) << key << " missing in: " << line;
    std::size_t begin = at + key.size() + 3;
    if (line[begin] == '"') {
      ++begin;
      return line.substr(begin, line.find('"', begin) - begin);
    }
    return line.substr(begin, line.find_first_of(",}", begin) - begin);
  };
  while (std::getline(in, line)) {
    if (line.find("\"ph\":") == std::string::npos) continue;
    TraceEvent e;
    e.ph = field("ph")[0];
    e.tid = std::stoull(field("tid"));
    e.ts = std::stod(field("ts"));
    e.name = field("name");
    events.push_back(e);
  }
  return events;
}

TEST(ObsSpanTest, ExportIsBalancedAndMonotonicPerThread) {
  ObsGuard guard;
  obs::set_profiling_enabled(true);
  obs::clear_spans();
  {
    obs::PhaseTimer outer("outer");
    {
      obs::PhaseTimer inner("inner");
    }
    std::thread worker([] {
      obs::PhaseTimer span("worker_span");
    });
    worker.join();
  }
  EXPECT_EQ(obs::span_count(), 3u);

  const std::string json = obs::spans_json();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",", 0), 0u);
  const auto events = parse_trace_events(json);
  ASSERT_EQ(events.size(), 6u);

  std::map<std::uint64_t, std::vector<std::string>> stacks;
  std::map<std::uint64_t, double> last_ts;
  double min_ts = 1e18;
  for (const auto& e : events) {
    min_ts = std::min(min_ts, e.ts);
    auto it = last_ts.find(e.tid);
    if (it != last_ts.end())
      EXPECT_GE(e.ts, it->second) << "timestamps must be monotonic per tid";
    last_ts[e.tid] = e.ts;
    if (e.ph == 'B') {
      stacks[e.tid].push_back(e.name);
    } else {
      ASSERT_EQ(e.ph, 'E');
      ASSERT_FALSE(stacks[e.tid].empty()) << "E without matching B";
      EXPECT_EQ(stacks[e.tid].back(), e.name);
      stacks[e.tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks)
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  EXPECT_EQ(min_ts, 0.0) << "timestamps must be rebased to the earliest event";
  EXPECT_EQ(last_ts.size(), 2u) << "worker thread must export its own tid";

  obs::clear_spans();
  EXPECT_EQ(obs::span_count(), 0u);
}

TEST(ObsSpanTest, DisabledSpansRecordNothing) {
  ObsGuard guard;
  obs::set_profiling_enabled(false);
  obs::clear_spans();
  {
    obs::PhaseTimer span("never_recorded");
  }
  EXPECT_EQ(obs::span_count(), 0u);
}

TEST(ObsSpanTest, OpenSpansAreClosedAtExportTime) {
  ObsGuard guard;
  obs::set_profiling_enabled(true);
  obs::clear_spans();
  obs::span_begin("still_open");
  const auto events = parse_trace_events(obs::spans_json());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 'B');
  EXPECT_EQ(events[1].ph, 'E');
  EXPECT_EQ(events[1].name, "still_open");
  obs::span_end();
  obs::clear_spans();
}

// ---- heartbeat line format ---------------------------------------------

TEST(ObsProgressTest, LineFormatIsPinned) {
  EXPECT_EQ(obs::ProgressMeter::line("runs", 142, 900, 2.3162),
            "rats: 142/900 runs (15.8%) | 61.3/s | eta 12s");
  EXPECT_EQ(obs::ProgressMeter::line("runs", 0, 900, 0.0),
            "rats: 0/900 runs (0.0%) | 0.0/s");
  EXPECT_EQ(obs::ProgressMeter::line("runs", 900, 900, 10.0),
            "rats: 900/900 runs (100.0%) | 90.0/s");
  // Unknown total: no percentage, no ETA.
  EXPECT_EQ(obs::ProgressMeter::line("specs", 5, 0, 2.0),
            "rats: 5 specs | 2.5/s");
  // Long ETAs switch to m/h units.
  EXPECT_EQ(obs::ProgressMeter::line("runs", 1, 241, 1.0),
            "rats: 1/241 runs (0.4%) | 1.0/s | eta 4m00s");
  EXPECT_EQ(obs::ProgressMeter::line("runs", 1, 7201, 1.0),
            "rats: 1/7201 runs (0.0%) | 1.0/s | eta 2h00m");
}

// ---- metrics snapshot JSON ---------------------------------------------

TEST(ObsSnapshotJsonTest, ShapeAndMetaAreWellFormed) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::counter("test/snapshot_counter").add(11);
  const std::string json =
      obs::snapshot_json(obs::snapshot(), "fig2-quick", "fig2");

  EXPECT_EQ(json.rfind("{\"rats_metrics\":1,", 0), 0u);
  EXPECT_NE(json.find("\"scenario\":\"fig2-quick\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"fig2\""), std::string::npos);
  for (const char* key : {"\"hostname\":", "\"build\":", "\"git\":",
                          "\"created_unix\":", "\"counters\":{",
                          "\"volatile_counters\":{", "\"histograms\":{",
                          "\"gauges\":{", "\"timers\":{"})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  EXPECT_NE(json.find("\"test/snapshot_counter\":11"), std::string::npos);

  const obs::BuildStamp stamp = obs::build_stamp();
  EXPECT_FALSE(stamp.hostname.empty());
  EXPECT_FALSE(stamp.build_type.empty());
  EXPECT_FALSE(stamp.git_describe.empty());
}

}  // namespace
}  // namespace rats
