// Unit tests for the workflow text format (src/io).
#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "daggen/kernels.hpp"
#include "io/workflow_io.hpp"

namespace rats {
namespace {

constexpr const char* kDiamond = R"(
# a diamond
task a m=4e6 a=128 alpha=0.1
task b m=8e6 a=64  alpha=0.0
task c m=8e6 a=64  alpha=0.25
task d m=4e6 a=256 alpha=0.05

edge a b
edge a c
edge b d bytes=1000
edge c d
)";

TEST(WorkflowIo, ParsesTasksAndEdges) {
  const TaskGraph g = parse_workflow_string(kDiamond);
  ASSERT_EQ(g.num_tasks(), 4);
  ASSERT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.task(0).name, "a");
  EXPECT_DOUBLE_EQ(g.task(0).data_elems, 4e6);
  EXPECT_DOUBLE_EQ(g.task(0).flops, 4e6 * 128);
  EXPECT_DOUBLE_EQ(g.task(2).alpha, 0.25);
}

TEST(WorkflowIo, DefaultEdgeBytesAreSourceDataset) {
  const TaskGraph g = parse_workflow_string(kDiamond);
  EXPECT_DOUBLE_EQ(g.edge(0).bytes, 4e6 * kBytesPerElement);  // a -> b
}

TEST(WorkflowIo, ExplicitEdgeBytesOverride) {
  const TaskGraph g = parse_workflow_string(kDiamond);
  EXPECT_DOUBLE_EQ(g.edge(2).bytes, 1000);  // b -> d
}

TEST(WorkflowIo, CommentsAndBlankLinesIgnored) {
  const TaskGraph g = parse_workflow_string(
      "# only a comment\n\n   \ntask x m=5e6 a=64 alpha=0 # trailing\n");
  EXPECT_EQ(g.num_tasks(), 1);
}

TEST(WorkflowIo, RoundTripsThroughText) {
  Rng rng(9);
  const TaskGraph original = generate_fft_dag(4, rng);
  const TaskGraph copy = parse_workflow_string(to_workflow_text(original));
  ASSERT_EQ(copy.num_tasks(), original.num_tasks());
  ASSERT_EQ(copy.num_edges(), original.num_edges());
  for (TaskId t = 0; t < original.num_tasks(); ++t) {
    EXPECT_EQ(copy.task(t).name, original.task(t).name);
    EXPECT_NEAR(copy.task(t).flops, original.task(t).flops,
                original.task(t).flops * 1e-12);
    EXPECT_DOUBLE_EQ(copy.task(t).alpha, original.task(t).alpha);
  }
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    EXPECT_EQ(copy.edge(e).src, original.edge(e).src);
    EXPECT_EQ(copy.edge(e).dst, original.edge(e).dst);
    EXPECT_DOUBLE_EQ(copy.edge(e).bytes, original.edge(e).bytes);
  }
}

TEST(WorkflowIo, SaveAndLoadFile) {
  Rng rng(10);
  const TaskGraph g = generate_strassen_dag(rng);
  const std::string path = ::testing::TempDir() + "/wf_roundtrip.txt";
  save_workflow(g, path);
  const TaskGraph loaded = load_workflow(path);
  EXPECT_EQ(loaded.num_tasks(), g.num_tasks());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  std::remove(path.c_str());
}

TEST(WorkflowIoErrors, RejectsMalformedInput) {
  EXPECT_THROW(parse_workflow_string("task"), Error);  // missing name
  EXPECT_THROW(parse_workflow_string("task t m=1e6 a=1"), Error);  // no alpha
  EXPECT_THROW(parse_workflow_string("task t m=0 a=1 alpha=0"), Error);
  EXPECT_THROW(parse_workflow_string("task t m=1e6 a=1 alpha=2"), Error);
  EXPECT_THROW(parse_workflow_string("task t m=1e6 a=1 alpha=0 x=1"), Error);
  EXPECT_THROW(parse_workflow_string("task t m=abc a=1 alpha=0"), Error);
  EXPECT_THROW(parse_workflow_string("frobnicate t"), Error);
  EXPECT_THROW(
      parse_workflow_string("task t m=1e6 a=1 alpha=0\n"
                            "task t m=1e6 a=1 alpha=0"),
      Error);  // duplicate
  EXPECT_THROW(parse_workflow_string("edge a b"), Error);  // unknown tasks
  EXPECT_THROW(
      parse_workflow_string("task a m=1e6 a=1 alpha=0\nedge a a"),
      Error);  // self edge
  EXPECT_THROW(
      parse_workflow_string(
          "task a m=1e6 a=1 alpha=0\ntask b m=1e6 a=1 alpha=0\n"
          "edge a b bytes=-5"),
      Error);  // negative bytes
  EXPECT_THROW(load_workflow("/nonexistent/path/wf.txt"), Error);
}

TEST(WorkflowIoErrors, ReportsLineNumbers) {
  try {
    parse_workflow_string("task a m=1e6 a=1 alpha=0\nbogus\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace rats
