// The self-minimizing regression corpus runner: every `.rats` repro
// checked into scenarios/regress/ replays through the full fuzz oracle
// battery.  A repro lands there when `rats fuzz` minimizes a failure;
// once the underlying bug is fixed the battery passes and the file
// pins the fix forever.  An empty (or absent) directory passes —
// that's the healthy steady state.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/oracles.hpp"
#include "scenario/parser.hpp"

namespace rats::fuzz {
namespace {

std::vector<std::string> regress_specs() {
  const std::string dir = std::string(RATS_SOURCE_DIR) + "/scenarios/regress";
  std::vector<std::string> files;
  if (std::filesystem::is_directory(dir))
    for (const auto& entry : std::filesystem::directory_iterator(dir))
      if (entry.path().extension() == ".rats")
        files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(RegressCorpus, EveryCheckedInReproPassesTheBattery) {
  for (const std::string& file : regress_specs()) {
    SCOPED_TRACE(file);
    const scenario::ScenarioSpec spec = scenario::load_scenario(file);
    const OracleReport report = run_battery(spec);
    EXPECT_TRUE(report.ok) << file << ": " << report.diagnosis;
  }
}

TEST(RegressCorpus, ReprosRoundTripByteStable) {
  // Repro files are written in canonical form (below their diagnosis
  // header comments), so emit(parse(file)) must be byte-stable.
  for (const std::string& file : regress_specs()) {
    SCOPED_TRACE(file);
    const std::string e1 =
        scenario::emit_scenario(scenario::load_scenario(file));
    EXPECT_EQ(scenario::emit_scenario(scenario::parse_scenario_string(e1)),
              e1);
  }
}

}  // namespace
}  // namespace rats::fuzz
