// Property tests over the full scheduler matrix: every algorithm on
// every cluster over a diverse corpus sample must produce schedules
// satisfying the structural invariants of the paper's model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "daggen/corpus.hpp"
#include "platform/grid5000.hpp"
#include "sched/allocation.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace rats {
namespace {

struct Case {
  int cluster;    // index into grid5000::all()
  SchedulerKind kind;
};

class ScheduleProperties : public ::testing::TestWithParam<Case> {
 protected:
  static std::vector<CorpusEntry> corpus() {
    CorpusOptions o;
    o.random_samples = 1;
    o.kernel_samples = 1;
    std::vector<CorpusEntry> all;
    for (DagFamily f : {DagFamily::Layered, DagFamily::Irregular,
                        DagFamily::FFT, DagFamily::Strassen}) {
      auto fam = build_family(f, o);
      // Spread over the parameter grid, keep the suite fast.
      for (std::size_t i = 0; i < fam.size(); i += 1 + fam.size() / 3)
        all.push_back(fam[i]);
    }
    return all;
  }
};

TEST_P(ScheduleProperties, StructuralInvariants) {
  const auto [cluster_idx, kind] = GetParam();
  const Cluster cluster =
      grid5000::all()[static_cast<std::size_t>(cluster_idx)];
  SchedulerOptions options;
  options.kind = kind;

  for (const CorpusEntry& entry : corpus()) {
    const Schedule s = build_schedule(entry.graph, cluster, options);
    ASSERT_NO_THROW(s.validate(entry.graph, cluster)) << entry.name;

    for (TaskId t = 0; t < entry.graph.num_tasks(); ++t) {
      const auto& p = s.of(t);
      // Processor sets are non-empty, distinct, in range.
      ASSERT_FALSE(p.procs.empty()) << entry.name;
      std::set<NodeId> uniq(p.procs.begin(), p.procs.end());
      EXPECT_EQ(uniq.size(), p.procs.size()) << entry.name;
      EXPECT_GE(*uniq.begin(), 0);
      EXPECT_LT(*uniq.rbegin(), cluster.num_nodes());
      // Estimates are causally ordered with every predecessor.
      for (TaskId pred : entry.graph.predecessors(t)) {
        EXPECT_GE(p.est_start, s.of(pred).est_finish - 1e-9)
            << entry.name << " task " << t;
        EXPECT_GT(p.seq, s.of(pred).seq) << entry.name;
      }
      EXPECT_GT(p.est_finish, p.est_start) << "tasks take time";
    }
  }
}

TEST_P(ScheduleProperties, RatsAllocationsRespectTheDeltaBounds) {
  const auto [cluster_idx, kind] = GetParam();
  if (kind != SchedulerKind::RatsDelta) GTEST_SKIP();
  const Cluster cluster =
      grid5000::all()[static_cast<std::size_t>(cluster_idx)];

  SchedulerOptions options;
  options.kind = kind;  // defaults: mindelta -0.5, maxdelta 0.5

  for (const CorpusEntry& entry : corpus()) {
    // The delta strategy may only move a task's allocation to a
    // predecessor's size within [np*(1+mindelta), np*(1+maxdelta)] of
    // the HCPA step-one allocation np.
    AllocationOptions ao;
    ao.kind = AllocationKind::Hcpa;
    const Allocation base = allocate(entry.graph, cluster, ao);
    const Schedule s = build_schedule(entry.graph, cluster, options);
    for (TaskId t = 0; t < entry.graph.num_tasks(); ++t) {
      const double np = base[static_cast<std::size_t>(t)];
      const double got = static_cast<double>(s.of(t).procs.size());
      EXPECT_GE(got, np + options.rats.mindelta * np - 1e-9)
          << entry.name << " task " << t;
      EXPECT_LE(got, np + options.rats.maxdelta * np + 1e-9)
          << entry.name << " task " << t;
    }
  }
}

TEST_P(ScheduleProperties, SimulationAgreesOnWorkAndCoversAllTasks) {
  const auto [cluster_idx, kind] = GetParam();
  const Cluster cluster =
      grid5000::all()[static_cast<std::size_t>(cluster_idx)];
  const AmdahlModel model(cluster.node_speed());
  SchedulerOptions options;
  options.kind = kind;

  for (const CorpusEntry& entry : corpus()) {
    const Schedule s = build_schedule(entry.graph, cluster, options);
    const SimulationResult r = simulate(entry.graph, s, cluster);
    // Work is a pure function of the placement.
    double work = 0;
    for (TaskId t = 0; t < entry.graph.num_tasks(); ++t)
      work += model.work(entry.graph.task(t),
                         static_cast<int>(s.of(t).procs.size()));
    EXPECT_NEAR(r.total_work, work, work * 1e-9) << entry.name;
    // Every task ran, in causal order, and the makespan is the last
    // finish.
    Seconds last = 0;
    for (TaskId t = 0; t < entry.graph.num_tasks(); ++t) {
      const auto& tl = r.timeline[static_cast<std::size_t>(t)];
      EXPECT_GT(tl.finish, tl.start) << entry.name;
      for (TaskId pred : entry.graph.predecessors(t))
        EXPECT_GE(tl.start,
                  r.timeline[static_cast<std::size_t>(pred)].finish - 1e-9)
            << entry.name;
      last = std::max(last, tl.finish);
    }
    EXPECT_DOUBLE_EQ(r.makespan, last) << entry.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClustersAllAlgorithms, ScheduleProperties,
    ::testing::Values(Case{0, SchedulerKind::Cpa}, Case{0, SchedulerKind::Mcpa},
                      Case{0, SchedulerKind::Hcpa},
                      Case{0, SchedulerKind::RatsDelta},
                      Case{0, SchedulerKind::RatsTimeCost},
                      Case{1, SchedulerKind::Hcpa},
                      Case{1, SchedulerKind::RatsDelta},
                      Case{1, SchedulerKind::RatsTimeCost},
                      Case{2, SchedulerKind::Hcpa},
                      Case{2, SchedulerKind::RatsDelta},
                      Case{2, SchedulerKind::RatsTimeCost}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = grid5000::all()[static_cast<std::size_t>(
                             info.param.cluster)].name() +
                         "_" + to_string(info.param.kind);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace rats
