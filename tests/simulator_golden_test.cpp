// Makespan regression against the seed simulator.
//
// The golden values below were produced by the pre-rewrite (seed)
// simulator — full O(F x L) Max-Min re-solves, per-event task rescans —
// on a reduced corpus (seed 42, 1 random sample, 2 kernel samples,
// every 8th entry) scheduled on grillon.  The incremental engine
// (lazy-heap solver, event-driven fluid network, ready-queue simulator)
// must reproduce them: the rewrite is a performance change, not a
// semantic one.  Observed agreement at capture time was ~9e-15
// relative; the tolerance leaves two orders of slack for libm/platform
// variation while still catching any behavioural drift.
#include <gtest/gtest.h>

#include <string>

#include "daggen/corpus.hpp"
#include "platform/grid5000.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace rats {
namespace {

struct GoldenCase {
  const char* name;
  SchedulerKind kind;
  double makespan;
};

const GoldenCase kGolden[] = {
    {"layered/n25/w0.2/d0.2/r0.2/s0", SchedulerKind::Hcpa, 20.925822020917582},
    {"layered/n25/w0.2/d0.2/r0.2/s0", SchedulerKind::RatsTimeCost, 20.925822020917582},
    {"layered/n25/w0.8/d0.2/r0.2/s0", SchedulerKind::Hcpa, 10.771588968511924},
    {"layered/n25/w0.8/d0.2/r0.2/s0", SchedulerKind::RatsTimeCost, 10.857503994063858},
    {"layered/n50/w0.5/d0.2/r0.2/s0", SchedulerKind::Hcpa, 25.275762631572086},
    {"layered/n50/w0.5/d0.2/r0.2/s0", SchedulerKind::RatsTimeCost, 25.275762631572086},
    {"layered/n100/w0.2/d0.2/r0.2/s0", SchedulerKind::Hcpa, 79.548103049619158},
    {"layered/n100/w0.2/d0.2/r0.2/s0", SchedulerKind::RatsTimeCost, 79.548103049619158},
    {"layered/n100/w0.8/d0.2/r0.2/s0", SchedulerKind::Hcpa, 42.207651777061059},
    {"layered/n100/w0.8/d0.2/r0.2/s0", SchedulerKind::RatsTimeCost, 40.423747268738353},
    {"irregular/n25/w0.2/d0.2/r0.8/j2/s0", SchedulerKind::Hcpa, 23.70384060286537},
    {"irregular/n25/w0.2/d0.2/r0.8/j2/s0", SchedulerKind::RatsTimeCost, 19.916872696516677},
    {"irregular/n25/w0.5/d0.2/r0.2/j1/s0", SchedulerKind::Hcpa, 45.076001951405544},
    {"irregular/n25/w0.5/d0.2/r0.2/j1/s0", SchedulerKind::RatsTimeCost, 40.835864290359034},
    {"irregular/n25/w0.5/d0.8/r0.2/j4/s0", SchedulerKind::Hcpa, 36.66036514712529},
    {"irregular/n25/w0.5/d0.8/r0.2/j4/s0", SchedulerKind::RatsTimeCost, 31.549386860606184},
    {"irregular/n25/w0.8/d0.2/r0.8/j2/s0", SchedulerKind::Hcpa, 24.930605394048694},
    {"irregular/n25/w0.8/d0.2/r0.8/j2/s0", SchedulerKind::RatsTimeCost, 23.893335404019446},
    {"irregular/n50/w0.2/d0.2/r0.2/j1/s0", SchedulerKind::Hcpa, 104.07583669166684},
    {"irregular/n50/w0.2/d0.2/r0.2/j1/s0", SchedulerKind::RatsTimeCost, 90.522105115811598},
    {"irregular/n50/w0.2/d0.8/r0.2/j4/s0", SchedulerKind::Hcpa, 125.48702112430765},
    {"irregular/n50/w0.2/d0.8/r0.2/j4/s0", SchedulerKind::RatsTimeCost, 93.827652078557122},
    {"irregular/n50/w0.5/d0.2/r0.8/j2/s0", SchedulerKind::Hcpa, 62.161884235520006},
    {"irregular/n50/w0.5/d0.2/r0.8/j2/s0", SchedulerKind::RatsTimeCost, 53.646929120729517},
    {"irregular/n50/w0.8/d0.2/r0.2/j1/s0", SchedulerKind::Hcpa, 60.873674780078765},
    {"irregular/n50/w0.8/d0.2/r0.2/j1/s0", SchedulerKind::RatsTimeCost, 44.090194300513062},
    {"irregular/n50/w0.8/d0.8/r0.2/j4/s0", SchedulerKind::Hcpa, 122.69541814470394},
    {"irregular/n50/w0.8/d0.8/r0.2/j4/s0", SchedulerKind::RatsTimeCost, 112.3650555438725},
    {"irregular/n100/w0.2/d0.2/r0.8/j2/s0", SchedulerKind::Hcpa, 151.49353973549361},
    {"irregular/n100/w0.2/d0.2/r0.8/j2/s0", SchedulerKind::RatsTimeCost, 122.88402815940603},
    {"irregular/n100/w0.5/d0.2/r0.2/j1/s0", SchedulerKind::Hcpa, 108.22050110749892},
    {"irregular/n100/w0.5/d0.2/r0.2/j1/s0", SchedulerKind::RatsTimeCost, 104.03140404574887},
    {"irregular/n100/w0.5/d0.8/r0.2/j4/s0", SchedulerKind::Hcpa, 234.07263037230803},
    {"irregular/n100/w0.5/d0.8/r0.2/j4/s0", SchedulerKind::RatsTimeCost, 212.39543317217985},
    {"irregular/n100/w0.8/d0.2/r0.8/j2/s0", SchedulerKind::Hcpa, 78.570049421943551},
    {"irregular/n100/w0.8/d0.2/r0.8/j2/s0", SchedulerKind::RatsTimeCost, 83.293784058122242},
    {"fft/k2/s0", SchedulerKind::Hcpa, 4.4761236799328872},
    {"fft/k2/s0", SchedulerKind::RatsTimeCost, 3.4020065974275502},
    {"strassen/s0", SchedulerKind::Hcpa, 20.733747356230822},
    {"strassen/s0", SchedulerKind::RatsTimeCost, 20.765733680241464},
};

TEST(SimulatorGolden, MakespansMatchSeedSimulatorOnCorpus) {
  CorpusOptions opt;
  opt.seed = 42;
  opt.random_samples = 1;
  opt.kernel_samples = 2;
  const auto corpus = build_corpus(opt);
  const Cluster cluster = grid5000::grillon();

  std::size_t verified = 0;
  for (const auto& entry : corpus) {
    for (const auto& golden : kGolden) {
      if (entry.name != golden.name) continue;
      SchedulerOptions so;
      so.kind = golden.kind;
      const Schedule s = build_schedule(entry.graph, cluster, so);
      const auto r = simulate(entry.graph, s, cluster);
      EXPECT_NEAR(r.makespan, golden.makespan, 1e-12 * golden.makespan)
          << entry.name << " / " << to_string(golden.kind);
      ++verified;
    }
  }
  // Every golden case must have been found in the corpus — a silently
  // shrunken corpus would make the test pass vacuously.
  EXPECT_EQ(verified, std::size(kGolden));
}

}  // namespace
}  // namespace rats
