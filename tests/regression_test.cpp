// Regression tests for defects found while reproducing the paper's
// evaluation.  Each test pins the corrected behaviour with a scenario
// distilled from the original failure.
#include <gtest/gtest.h>

#include <chrono>

#include "common/rng.hpp"
#include "daggen/kernels.hpp"
#include "daggen/random_dag.hpp"
#include "net/fluid_network.hpp"
#include "platform/grid5000.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace rats {
namespace {

// --- zero-progress event stall -----------------------------------------
//
// A flow left with a byte residue whose drain time underflows double
// precision at a large clock value used to stall the simulation in
// zero-length steps (FFT k=8 ran for hours).  The fluid network must
// complete such flows instead of spinning.

TEST(Regression, TinyResidueFlowsCompleteAtLargeClockValues) {
  const Cluster c = grid5000::grillon();
  FluidNetwork net(c);
  // Drive the clock far from zero first with a normal flow.
  net.open_flow(0, 1, 1e9);
  while (auto t = net.next_event_time()) net.advance_to(*t);
  const Seconds late = net.now() + 1e6;
  net.advance_to(late);
  // A one-byte flow at time ~1e6: latency 2e-4, drain ~1e-8 s, which is
  // below the representable increment of `late` scaled by 1e-12 only in
  // the pathological case; either way this must terminate quickly.
  net.open_flow(2, 3, 1.0);
  int events = 0;
  while (auto t = net.next_event_time()) {
    net.advance_to(*t);
    ASSERT_LT(++events, 100) << "fluid network spinning on tiny residue";
  }
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(Regression, FftSimulationTerminatesQuickly) {
  // The original stall: HCPA on FFT k=8 / grillon never finished.
  Rng rng(3);
  const TaskGraph g = generate_fft_dag(8, rng);
  const Cluster c = grid5000::grillon();
  SchedulerOptions o;
  o.kind = SchedulerKind::Hcpa;
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = simulate(g, build_schedule(g, c, o), c);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_LT(elapsed, 30.0) << "simulation should take well under a second";
}

// --- event cost must not scale with completed flows ---------------------

TEST(Regression, CompletedFlowsLeaveTheActiveSet) {
  const Cluster c = grid5000::chti();
  FluidNetwork net(c);
  for (int i = 0; i < 50; ++i)
    net.open_flow(static_cast<NodeId>(i % 10),
                  static_cast<NodeId>(10 + i % 10), 1e6);
  while (auto t = net.next_event_time()) net.advance_to(*t);
  EXPECT_EQ(net.active_flows(), 0u);
  EXPECT_EQ(net.num_flows(), 50u);  // history is kept, but not scanned
}

// --- delta parent consumption -------------------------------------------
//
// Without consuming an inherited parent allocation, every descendant of
// a narrow task piled onto the same processor set: an FFT graph's whole
// recursion tree executed serially on the entry task's processors
// (makespan 2.5x HCPA).  With consumption, at most one child inherits
// each parent's set.

TEST(Regression, DeltaDoesNotSerializeFftOnEntryProcessors) {
  Rng rng(3);
  const TaskGraph g = generate_fft_dag(8, rng);
  const Cluster c = grid5000::grillon();
  SchedulerOptions hcpa, delta;
  hcpa.kind = SchedulerKind::Hcpa;
  delta.kind = SchedulerKind::RatsDelta;
  const Schedule sd = build_schedule(g, c, delta);

  // The two children of the entry task must not both inherit the entry
  // task's processor set.
  const auto& entry_procs = sd.of(0).procs;
  int inherited = 0;
  for (EdgeId e : g.out_edges(0))
    if (sd.of(g.edge(e).dst).procs == entry_procs) ++inherited;
  EXPECT_LE(inherited, 1);

  // And the overall schedule stays in the same league as HCPA.
  const double mh = simulate(g, build_schedule(g, c, hcpa), c).makespan;
  const double md = simulate(g, sd, c).makespan;
  EXPECT_LT(md, 1.5 * mh);
}

TEST(Regression, DeltaChainInheritanceStillWorks) {
  // Consumption must not break the chain case: each chain task is the
  // sole child of its parent, so the whole chain aligns on one set and
  // pays zero redistribution bytes.
  TaskGraph g;
  TaskId prev = g.add_task("t0", 8e6, 128, 0.05);
  for (int i = 1; i < 5; ++i) {
    const TaskId t = g.add_task("t" + std::to_string(i), 8e6, 128, 0.05);
    g.add_edge(prev, t, 8e6 * kBytesPerElement);
    prev = t;
  }
  const Cluster c = grid5000::chti();
  SchedulerOptions delta;
  delta.kind = SchedulerKind::RatsDelta;
  const Schedule s = build_schedule(g, c, delta);
  const auto r = simulate(g, s, c);
  EXPECT_EQ(r.network_bytes, 0.0)
      << "chain should align allocations and avoid all redistributions";
}

// --- simulator processor order ------------------------------------------

TEST(Regression, SimulatorHonorsEstimatedStartOrderPerProcessor) {
  // Two independent tasks mapped on the same processor must execute in
  // estimated-start order even if their mapping (seq) order differs.
  Rng rng(11);
  RandomDagParams p;
  p.num_tasks = 50;
  p.width = 0.8;
  p.density = 0.8;
  p.regularity = 0.8;
  p.jump = 2;
  const TaskGraph g = generate_irregular_dag(p, rng);
  const Cluster c = grid5000::chti();
  for (SchedulerKind kind : {SchedulerKind::Hcpa, SchedulerKind::RatsDelta,
                             SchedulerKind::RatsTimeCost}) {
    SchedulerOptions o;
    o.kind = kind;
    const Schedule s = build_schedule(g, c, o);
    const auto r = simulate(g, s, c);
    // Every processor's tasks finish in the order the mapper planned
    // to start them.
    for (NodeId node = 0; node < c.num_nodes(); ++node) {
      std::vector<TaskId> on_node;
      for (TaskId t = 0; t < g.num_tasks(); ++t)
        for (NodeId q : s.of(t).procs)
          if (q == node) on_node.push_back(t);
      std::sort(on_node.begin(), on_node.end(), [&](TaskId a, TaskId b) {
        if (s.of(a).est_start != s.of(b).est_start)
          return s.of(a).est_start < s.of(b).est_start;
        return s.of(a).seq < s.of(b).seq;
      });
      for (std::size_t i = 1; i < on_node.size(); ++i)
        EXPECT_LE(r.timeline[static_cast<std::size_t>(on_node[i - 1])].finish,
                  r.timeline[static_cast<std::size_t>(on_node[i])].start +
                      1e-9);
    }
  }
}

}  // namespace
}  // namespace rats
