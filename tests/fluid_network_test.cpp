// Unit tests for the fluid (flow-level) network simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "net/fluid_network.hpp"

namespace rats {
namespace {

// 1 Gb/s = 125 MB/s links, 100 us latency: the paper's interconnect.
Cluster test_cluster(int nodes = 4) {
  return Cluster::flat("net-test", nodes, 1e9, 100e-6, 125e6);
}

TEST(FluidNetwork, SingleFlowTakesLatencyPlusTransferTime) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  const FlowId f = net.open_flow(0, 1, 125e6);  // one second of payload
  net.advance_to(10.0);
  ASSERT_TRUE(net.flow_done(f));
  // Route latency = 2 * 100us; bandwidth 125 MB/s.
  EXPECT_NEAR(net.flow_finish_time(f), 2e-4 + 1.0, 1e-9);
}

TEST(FluidNetwork, LoopbackIsInstant) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  const FlowId f = net.open_flow(2, 2, 1e9);
  EXPECT_TRUE(net.flow_done(f));
  EXPECT_DOUBLE_EQ(net.flow_finish_time(f), 0.0);
}

TEST(FluidNetwork, ZeroByteFlowCompletesAfterLatency) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  const FlowId f = net.open_flow(0, 1, 0);
  EXPECT_TRUE(net.flow_done(f));
  EXPECT_NEAR(net.flow_finish_time(f), 2e-4, 1e-12);
}

TEST(FluidNetwork, TwoFlowsOutOfSameNicShareBandwidth) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  const FlowId f1 = net.open_flow(0, 1, 125e6);
  const FlowId f2 = net.open_flow(0, 2, 125e6);
  net.advance_to(10.0);
  // Both share node 0's uplink: each gets 62.5 MB/s -> ~2s transfers.
  EXPECT_NEAR(net.flow_finish_time(f1), 2.0 + 2e-4, 1e-6);
  EXPECT_NEAR(net.flow_finish_time(f2), 2.0 + 2e-4, 1e-6);
}

TEST(FluidNetwork, DisjointFlowsDoNotInterfere) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  const FlowId f1 = net.open_flow(0, 1, 125e6);
  const FlowId f2 = net.open_flow(2, 3, 125e6);
  net.advance_to(10.0);
  EXPECT_NEAR(net.flow_finish_time(f1), 1.0 + 2e-4, 1e-9);
  EXPECT_NEAR(net.flow_finish_time(f2), 1.0 + 2e-4, 1e-9);
}

TEST(FluidNetwork, DepartureReleasesBandwidthToSurvivors) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  // Short flow (0.5s at half rate) and long flow share node 0's NIC.
  const FlowId short_flow = net.open_flow(0, 1, 31.25e6);
  const FlowId long_flow = net.open_flow(0, 2, 125e6);
  net.advance_to(10.0);
  // Phase 1: both at 62.5 MB/s until short done at ~0.5s.
  EXPECT_NEAR(net.flow_finish_time(short_flow), 0.5 + 2e-4, 1e-6);
  // Long flow: 31.25 MB done in phase 1, remaining 93.75 MB at full
  // 125 MB/s -> 0.75s more.
  EXPECT_NEAR(net.flow_finish_time(long_flow), 0.5 + 0.75 + 2e-4, 1e-6);
}

TEST(FluidNetwork, LateArrivalSlowsExistingFlow) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  const FlowId first = net.open_flow(0, 1, 125e6);
  net.advance_to(0.5);  // ~62.4 MB transferred at full rate
  const FlowId second = net.open_flow(0, 2, 125e6);
  net.advance_to(10.0);
  // First flow needed ~0.5s more alone; sharing doubles that.
  EXPECT_NEAR(net.flow_finish_time(first), 0.5 + 2.0 * (0.5 + 2e-4) - 2e-4,
              1e-3);
  ASSERT_TRUE(net.flow_done(second));
  EXPECT_GT(net.flow_finish_time(second), 1.5);
}

TEST(FluidNetwork, NextEventTimePredictsCompletion) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  net.open_flow(0, 1, 125e6);
  const auto next = net.next_event_time();
  ASSERT_TRUE(next.has_value());
  // First event: latency-phase exit at 200us.
  EXPECT_NEAR(*next, 2e-4, 1e-12);
  net.advance_to(*next);
  const auto completion = net.next_event_time();
  ASSERT_TRUE(completion.has_value());
  EXPECT_NEAR(*completion, 2e-4 + 1.0, 1e-9);
}

TEST(FluidNetwork, NoEventsWhenIdle) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  EXPECT_FALSE(net.next_event_time().has_value());
  net.open_flow(1, 1, 10);  // loopback, done immediately
  EXPECT_FALSE(net.next_event_time().has_value());
}

TEST(FluidNetwork, CannotMoveTimeBackwards) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  net.advance_to(1.0);
  EXPECT_THROW(net.advance_to(0.5), Error);
}

TEST(FluidNetwork, RejectsNegativeVolume) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  EXPECT_THROW(net.open_flow(0, 1, -1), Error);
}

TEST(FluidNetwork, TcpWindowCapsLongRttFlows) {
  // Shrink the TCP window so W/RTT binds below the link bandwidth.
  Cluster c = test_cluster();
  c.set_tcp_window(12500);  // bytes; RTT = 400us -> cap = 31.25 MB/s
  FluidNetwork net(c);
  const FlowId f = net.open_flow(0, 1, 31.25e6);
  net.advance_to(10.0);
  EXPECT_NEAR(net.flow_finish_time(f), 2e-4 + 1.0, 1e-6);
}

TEST(FluidNetwork, HierarchicalUplinkIsTheBottleneck) {
  // Two cabinets of two nodes; all cross-cabinet flows share one uplink.
  const Cluster c = Cluster::hierarchical("h", 2, 2, 1e9, 100e-6, 125e6,
                                          100e-6, 125e6);
  FluidNetwork net(c);
  const FlowId f1 = net.open_flow(0, 2, 125e6);  // cab 0 -> cab 1
  const FlowId f2 = net.open_flow(1, 3, 125e6);  // cab 0 -> cab 1
  net.advance_to(10.0);
  // Each NIC is private but the cabinet uplink is shared: 62.5 MB/s each.
  EXPECT_NEAR(net.flow_finish_time(f1), 2.0 + 4e-4, 1e-6);
  EXPECT_NEAR(net.flow_finish_time(f2), 2.0 + 4e-4, 1e-6);
}

TEST(FluidNetwork, ByteAccountingMatchesOpenedVolume) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  net.open_flow(0, 1, 1000.0);
  net.open_flow(1, 2, 2000.0);
  net.open_flow(3, 3, 500.0);  // loopback still counted as opened
  EXPECT_DOUBLE_EQ(net.total_bytes_opened(), 3500.0);
}

TEST(FluidNetwork, ManySmallFlowsAllComplete) {
  const Cluster c = test_cluster(8);
  FluidNetwork net(c);
  std::vector<FlowId> flows;
  for (int i = 0; i < 64; ++i)
    flows.push_back(net.open_flow(i % 8, (i + 3) % 8, 1e6 * (1 + i % 5)));
  net.advance_to(100.0);
  for (FlowId f : flows) EXPECT_TRUE(net.flow_done(f));
}

TEST(FluidNetwork, AdvanceInSmallStepsMatchesOneBigStep) {
  const Cluster c = test_cluster();
  FluidNetwork a(c);
  FluidNetwork b(c);
  const FlowId fa = a.open_flow(0, 1, 125e6);
  const FlowId fb = b.open_flow(0, 1, 125e6);
  for (int i = 1; i <= 1000; ++i) a.advance_to(2.0 * i / 1000.0);
  b.advance_to(2.0);
  ASSERT_TRUE(a.flow_done(fa));
  ASSERT_TRUE(b.flow_done(fb));
  EXPECT_NEAR(a.flow_finish_time(fa), b.flow_finish_time(fb), 1e-6);
}

}  // namespace
}  // namespace rats
