// Unit tests for the fluid (flow-level) network simulation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "net/fluid_network.hpp"

namespace rats {
namespace {

// 1 Gb/s = 125 MB/s links, 100 us latency: the paper's interconnect.
Cluster test_cluster(int nodes = 4) {
  return Cluster::flat("net-test", nodes, 1e9, 100e-6, 125e6);
}

TEST(FluidNetwork, SingleFlowTakesLatencyPlusTransferTime) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  const FlowId f = net.open_flow(0, 1, 125e6);  // one second of payload
  net.advance_to(10.0);
  ASSERT_TRUE(net.flow_done(f));
  // Route latency = 2 * 100us; bandwidth 125 MB/s.
  EXPECT_NEAR(net.flow_finish_time(f), 2e-4 + 1.0, 1e-9);
}

TEST(FluidNetwork, LoopbackIsInstant) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  const FlowId f = net.open_flow(2, 2, 1e9);
  EXPECT_TRUE(net.flow_done(f));
  EXPECT_DOUBLE_EQ(net.flow_finish_time(f), 0.0);
}

TEST(FluidNetwork, ZeroByteFlowCompletesAfterLatency) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  const FlowId f = net.open_flow(0, 1, 0);
  EXPECT_TRUE(net.flow_done(f));
  EXPECT_NEAR(net.flow_finish_time(f), 2e-4, 1e-12);
}

TEST(FluidNetwork, TwoFlowsOutOfSameNicShareBandwidth) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  const FlowId f1 = net.open_flow(0, 1, 125e6);
  const FlowId f2 = net.open_flow(0, 2, 125e6);
  net.advance_to(10.0);
  // Both share node 0's uplink: each gets 62.5 MB/s -> ~2s transfers.
  EXPECT_NEAR(net.flow_finish_time(f1), 2.0 + 2e-4, 1e-6);
  EXPECT_NEAR(net.flow_finish_time(f2), 2.0 + 2e-4, 1e-6);
}

TEST(FluidNetwork, DisjointFlowsDoNotInterfere) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  const FlowId f1 = net.open_flow(0, 1, 125e6);
  const FlowId f2 = net.open_flow(2, 3, 125e6);
  net.advance_to(10.0);
  EXPECT_NEAR(net.flow_finish_time(f1), 1.0 + 2e-4, 1e-9);
  EXPECT_NEAR(net.flow_finish_time(f2), 1.0 + 2e-4, 1e-9);
}

TEST(FluidNetwork, DepartureReleasesBandwidthToSurvivors) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  // Short flow (0.5s at half rate) and long flow share node 0's NIC.
  const FlowId short_flow = net.open_flow(0, 1, 31.25e6);
  const FlowId long_flow = net.open_flow(0, 2, 125e6);
  net.advance_to(10.0);
  // Phase 1: both at 62.5 MB/s until short done at ~0.5s.
  EXPECT_NEAR(net.flow_finish_time(short_flow), 0.5 + 2e-4, 1e-6);
  // Long flow: 31.25 MB done in phase 1, remaining 93.75 MB at full
  // 125 MB/s -> 0.75s more.
  EXPECT_NEAR(net.flow_finish_time(long_flow), 0.5 + 0.75 + 2e-4, 1e-6);
}

TEST(FluidNetwork, LateArrivalSlowsExistingFlow) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  const FlowId first = net.open_flow(0, 1, 125e6);
  net.advance_to(0.5);  // ~62.4 MB transferred at full rate
  const FlowId second = net.open_flow(0, 2, 125e6);
  net.advance_to(10.0);
  // First flow needed ~0.5s more alone; sharing doubles that.
  EXPECT_NEAR(net.flow_finish_time(first), 0.5 + 2.0 * (0.5 + 2e-4) - 2e-4,
              1e-3);
  ASSERT_TRUE(net.flow_done(second));
  EXPECT_GT(net.flow_finish_time(second), 1.5);
}

TEST(FluidNetwork, NextEventTimePredictsCompletion) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  net.open_flow(0, 1, 125e6);
  const auto next = net.next_event_time();
  ASSERT_TRUE(next.has_value());
  // First event: latency-phase exit at 200us.
  EXPECT_NEAR(*next, 2e-4, 1e-12);
  net.advance_to(*next);
  const auto completion = net.next_event_time();
  ASSERT_TRUE(completion.has_value());
  EXPECT_NEAR(*completion, 2e-4 + 1.0, 1e-9);
}

TEST(FluidNetwork, NoEventsWhenIdle) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  EXPECT_FALSE(net.next_event_time().has_value());
  net.open_flow(1, 1, 10);  // loopback, done immediately
  EXPECT_FALSE(net.next_event_time().has_value());
}

TEST(FluidNetwork, CannotMoveTimeBackwards) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  net.advance_to(1.0);
  EXPECT_THROW(net.advance_to(0.5), Error);
}

TEST(FluidNetwork, RejectsNegativeVolume) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  EXPECT_THROW(net.open_flow(0, 1, -1), Error);
}

TEST(FluidNetwork, TcpWindowCapsLongRttFlows) {
  // Shrink the TCP window so W/RTT binds below the link bandwidth.
  Cluster c = test_cluster();
  c.set_tcp_window(12500);  // bytes; RTT = 400us -> cap = 31.25 MB/s
  FluidNetwork net(c);
  const FlowId f = net.open_flow(0, 1, 31.25e6);
  net.advance_to(10.0);
  EXPECT_NEAR(net.flow_finish_time(f), 2e-4 + 1.0, 1e-6);
}

TEST(FluidNetwork, HierarchicalUplinkIsTheBottleneck) {
  // Two cabinets of two nodes; all cross-cabinet flows share one uplink.
  const Cluster c = Cluster::hierarchical("h", 2, 2, 1e9, 100e-6, 125e6,
                                          100e-6, 125e6);
  FluidNetwork net(c);
  const FlowId f1 = net.open_flow(0, 2, 125e6);  // cab 0 -> cab 1
  const FlowId f2 = net.open_flow(1, 3, 125e6);  // cab 0 -> cab 1
  net.advance_to(10.0);
  // Each NIC is private but the cabinet uplink is shared: 62.5 MB/s each.
  EXPECT_NEAR(net.flow_finish_time(f1), 2.0 + 4e-4, 1e-6);
  EXPECT_NEAR(net.flow_finish_time(f2), 2.0 + 4e-4, 1e-6);
}

// Merge-then-depart churn on a hierarchical cluster with validation
// on: every rate flush re-solves the whole population cold and
// requires bitwise equality with the incremental (cone-warm) rates.
// Staggered sizes make finishes (departures) interleave with arrivals
// while cross-cabinet flows keep merging and splitting the sharing
// components over the uplinks — the deep-cone regime of solve_warm.
TEST(FluidNetwork, HierarchicalMergeThenDepartWarmEqualsCold) {
  const Cluster c = Cluster::hierarchical("h3", 3, 4, 1e9, 100e-6, 125e6,
                                          100e-6, 250e6);
  FluidNetwork net(c);
  net.set_validation(true);
  // Intra-cabinet flows: three separate sharing components.
  net.open_flow(0, 1, 30e6);
  net.open_flow(1, 2, 90e6);
  net.open_flow(4, 5, 45e6);
  net.open_flow(6, 7, 120e6);
  net.open_flow(8, 9, 60e6);
  net.advance_to(0.1);
  // Cross-cabinet bridges merge the components over the uplinks.
  net.open_flow(0, 4, 200e6);
  net.open_flow(4, 8, 150e6);
  net.advance_to(0.4);  // the small intra-cabinet flows finish (depart)
  net.open_flow(1, 9, 80e6);
  net.open_flow(10, 11, 25e6);
  net.advance_to(1.1);
  net.open_flow(9, 2, 50e6);  // re-merge after earlier finishes
  net.advance_to(30.0);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(FluidNetwork, ByteAccountingMatchesOpenedVolume) {
  const Cluster c = test_cluster();
  FluidNetwork net(c);
  net.open_flow(0, 1, 1000.0);
  net.open_flow(1, 2, 2000.0);
  net.open_flow(3, 3, 500.0);  // loopback still counted as opened
  EXPECT_DOUBLE_EQ(net.total_bytes_opened(), 3500.0);
}

TEST(FluidNetwork, ManySmallFlowsAllComplete) {
  const Cluster c = test_cluster(8);
  FluidNetwork net(c);
  std::vector<FlowId> flows;
  for (int i = 0; i < 64; ++i)
    flows.push_back(net.open_flow(i % 8, (i + 3) % 8, 1e6 * (1 + i % 5)));
  net.advance_to(100.0);
  for (FlowId f : flows) EXPECT_TRUE(net.flow_done(f));
}

TEST(FluidNetwork, AdvanceInSmallStepsMatchesOneBigStep) {
  const Cluster c = test_cluster();
  FluidNetwork a(c);
  FluidNetwork b(c);
  const FlowId fa = a.open_flow(0, 1, 125e6);
  const FlowId fb = b.open_flow(0, 1, 125e6);
  for (int i = 1; i <= 1000; ++i) a.advance_to(2.0 * i / 1000.0);
  b.advance_to(2.0);
  ASSERT_TRUE(a.flow_done(fa));
  ASSERT_TRUE(b.flow_done(fb));
  EXPECT_NEAR(a.flow_finish_time(fa), b.flow_finish_time(fb), 1e-6);
}

// -------------------------------------------- sharing-component partition

// Brute-force check that the engine's partition matches the connected
// components of the link-sharing graph over released, unfinished flows.
void expect_exact_partition(const FluidNetwork& net,
                            const std::vector<FlowId>& flows) {
  std::vector<FlowId> alive;
  for (FlowId f : flows)
    if (net.flow(f).released && !net.flow(f).done) alive.push_back(f);

  // Union-find over the alive flows by shared link.
  std::map<FlowId, FlowId> parent;
  for (FlowId f : alive) parent[f] = f;
  std::function<FlowId(FlowId)> find = [&](FlowId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (std::size_t i = 0; i < alive.size(); ++i)
    for (std::size_t j = i + 1; j < alive.size(); ++j) {
      const RouteView a = net.flow_route(alive[i]);
      const RouteView b = net.flow_route(alive[j]);
      const bool share = std::any_of(a.begin(), a.end(), [&](LinkId l) {
        return std::find(b.begin(), b.end(), l) != b.end();
      });
      if (share) parent[find(alive[i])] = find(alive[j]);
    }

  // Same partition: pairs agree, and the component count matches.
  std::set<FlowId> roots;
  std::set<std::int32_t> comps;
  for (FlowId f : alive) {
    roots.insert(find(f));
    ASSERT_GE(net.flow_component(f), 0) << "flow " << f;
    comps.insert(net.flow_component(f));
  }
  for (std::size_t i = 0; i < alive.size(); ++i)
    for (std::size_t j = i + 1; j < alive.size(); ++j)
      EXPECT_EQ(find(alive[i]) == find(alive[j]),
                net.flow_component(alive[i]) == net.flow_component(alive[j]))
          << "flows " << alive[i] << " and " << alive[j];
  EXPECT_EQ(comps.size(), roots.size());
  EXPECT_EQ(net.num_components(), roots.size());
}

TEST(FluidNetworkComponents, PartitionRefinesLinkSharing) {
  const Cluster c = test_cluster(6);
  FluidNetwork net(c);
  // Two sharing pairs and one isolated flow: 0->1 and 0->2 share node
  // 0's uplink; 3->4 and 5->4 share node 4's downlink; 1->5 is alone...
  // no: 1->5 shares 1's uplink with nothing and 5's downlink with
  // nothing else, so it forms its own component.
  std::vector<FlowId> flows;
  flows.push_back(net.open_flow(0, 1, 1e8));
  flows.push_back(net.open_flow(0, 2, 1e8));
  flows.push_back(net.open_flow(3, 4, 1e8));
  flows.push_back(net.open_flow(5, 4, 1e8));
  flows.push_back(net.open_flow(1, 5, 1e8));
  net.advance_to(0.01);  // everyone past the 200us latency phase
  EXPECT_EQ(net.flow_component(flows[0]), net.flow_component(flows[1]));
  EXPECT_EQ(net.flow_component(flows[2]), net.flow_component(flows[3]));
  EXPECT_NE(net.flow_component(flows[0]), net.flow_component(flows[2]));
  EXPECT_NE(net.flow_component(flows[0]), net.flow_component(flows[4]));
  EXPECT_NE(net.flow_component(flows[2]), net.flow_component(flows[4]));
  EXPECT_EQ(net.num_components(), 3u);
  expect_exact_partition(net, flows);
}

TEST(FluidNetworkComponents, ComponentsMergeOnActivate) {
  const Cluster c = test_cluster(6);
  FluidNetwork net(c);
  const FlowId a = net.open_flow(0, 1, 1e9);
  const FlowId b = net.open_flow(2, 3, 1e9);
  net.advance_to(0.01);
  ASSERT_NE(net.flow_component(a), net.flow_component(b));
  ASSERT_EQ(net.num_components(), 2u);
  // 0 -> 3 shares 0's uplink with `a` and 3's downlink with `b`.
  const FlowId bridge = net.open_flow(0, 3, 1e9);
  EXPECT_EQ(net.flow_component(bridge), -1);  // still latent
  net.advance_to(0.02);
  EXPECT_EQ(net.flow_component(a), net.flow_component(bridge));
  EXPECT_EQ(net.flow_component(b), net.flow_component(bridge));
  EXPECT_EQ(net.num_components(), 1u);
  expect_exact_partition(net, {a, b, bridge});
}

TEST(FluidNetworkComponents, ComponentsSplitWhenTheBridgeCompletes) {
  const Cluster c = test_cluster(6);
  FluidNetwork net(c);
  // Bridge 0->1 connects 0->2 (via 0's uplink) and 3->1 (via 1's
  // downlink); it carries far fewer bytes, so it finishes first.
  const FlowId left = net.open_flow(0, 2, 4e8);
  const FlowId right = net.open_flow(3, 1, 4e8);
  const FlowId bridge = net.open_flow(0, 1, 1e7);
  net.advance_to(0.01);
  ASSERT_EQ(net.flow_component(left), net.flow_component(bridge));
  ASSERT_EQ(net.flow_component(right), net.flow_component(bridge));
  ASSERT_EQ(net.num_components(), 1u);
  net.advance_to(1.0);  // bridge done (~0.16s); the others still run
  ASSERT_TRUE(net.flow_done(bridge));
  ASSERT_FALSE(net.flow_done(left));
  ASSERT_FALSE(net.flow_done(right));
  EXPECT_EQ(net.flow_component(bridge), -1);
  EXPECT_NE(net.flow_component(left), net.flow_component(right));
  EXPECT_EQ(net.num_components(), 2u);
  expect_exact_partition(net, {left, right, bridge});
}

// ------------------------------------------------ warm-state exactness
// The component solves dispatch among warm re-solves, the bipartite
// fast path and the general solver; whatever the path — and across
// merges (bulk pending arrivals), splits (trace invalidation) and the
// amortized re-partition of large components — every released flow's
// rate must equal a from-scratch Max-Min solve of the whole released
// population, bit for bit.

void expect_rates_match_full_solve(const Cluster& c, const FluidNetwork& net,
                                   const std::vector<FlowId>& flows,
                                   int step) {
  std::vector<Rate> capacity;
  for (LinkId l = 0; l < c.num_links(); ++l)
    capacity.push_back(c.link(l).bandwidth);
  std::vector<FlowDemand> demands;
  std::vector<FlowId> released;
  for (const FlowId id : flows) {
    const FlowState& f = net.flow(id);
    if (!f.released || f.done) continue;
    released.push_back(id);
    const RouteView route = net.flow_route(id);
    demands.push_back(
        FlowDemand{std::vector<LinkId>(route.begin(), route.end()), f.cap});
  }
  std::vector<Rate> expected;
  MaxMinSolver solver;
  solver.solve(capacity, demands, expected);
  for (std::size_t k = 0; k < released.size(); ++k)
    EXPECT_EQ(net.flow_rate(released[k]), expected[k])
        << "step " << step << " flow " << released[k] << " on " << c.name();
}

TEST(FluidNetworkWarm, RandomTrafficRatesMatchFullSolveBitwise) {
  // Flat (bipartite fast path + warm) and hierarchical (general solver
  // + warm; cross-cabinet routes have four links) clusters.
  const std::vector<Cluster> clusters = {
      test_cluster(10),
      Cluster::hierarchical("h-test", 3, 4, 1e9, 100e-6, 125e6, 100e-6,
                            125e6)};
  for (const Cluster& c : clusters) {
    FluidNetwork net(c);
    const int nodes = c.num_nodes();
    std::uint64_t state = 987654321;
    const auto next_u32 = [&state]() {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<std::uint32_t>(state >> 33);
    };
    std::vector<FlowId> flows;
    Seconds t = 0;
    int step = 0;

    // Phase A: grow one large component (> 64 members, hot node 0) so
    // the amortized split walk is armed, with staggered arrivals taking
    // the warm path.
    for (int i = 0; i < 80; ++i) {
      const int dst = 1 + static_cast<int>(next_u32() % (nodes - 1));
      flows.push_back(net.open_flow(0, dst, 1e6 * (1 + next_u32() % 100)));
      t += 0.0002 * (1 + next_u32() % 5);
      net.advance_to(t);
      expect_rates_match_full_solve(c, net, flows, step++);
    }
    // Phase B: mixed random traffic (merges via bridging flows) while
    // phase A flows drain (departures, splits, re-partitions).
    for (int i = 0; i < 120; ++i) {
      const int src = static_cast<int>(next_u32() % nodes);
      int dst = static_cast<int>(next_u32() % nodes);
      if (dst == src) dst = (dst + 1) % nodes;
      flows.push_back(net.open_flow(src, dst, 1e6 * (1 + next_u32() % 300)));
      t += 0.003 * (1 + next_u32() % 40);
      net.advance_to(t);
      expect_rates_match_full_solve(c, net, flows, step++);
    }
    // Phase C: drain everything, checking along the way.
    while (net.active_flows() > 0) {
      t += 0.05;
      net.advance_to(t);
      expect_rates_match_full_solve(c, net, flows, step++);
    }
    for (FlowId f : flows) EXPECT_TRUE(net.flow_done(f));
  }
}

// ------------------------------------------- capacity-update exactness
// set_link_capacity (the platform-timeline entry point) must leave the
// network in exactly the state a full invalidation would: 200 random
// interleavings of traffic and capacity changes, one network updating
// incrementally, its twin invalidated from scratch after every change.
// Rates and finish times must agree bit for bit throughout.

TEST(FluidNetworkCapacity, TargetedUpdateMatchesFullInvalidationBitwise) {
  const std::vector<Cluster> clusters = {
      test_cluster(6),
      Cluster::hierarchical("h-test", 3, 4, 1e9, 100e-6, 125e6, 100e-6,
                            125e6)};
  for (const Cluster& c : clusters) {
    FluidNetwork incremental(c);
    FluidNetwork oracle(c);
    const int nodes = c.num_nodes();
    std::uint64_t state = 2718281828;
    const auto next_u32 = [&state]() {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<std::uint32_t>(state >> 33);
    };
    std::vector<FlowId> flows;
    Seconds t = 0;
    for (int step = 0; step < 200; ++step) {
      switch (next_u32() % 3) {
        case 0: {  // open a flow on both networks
          const int src = static_cast<int>(next_u32() % nodes);
          int dst = static_cast<int>(next_u32() % nodes);
          if (dst == src) dst = (dst + 1) % nodes;
          const Bytes bytes = 1e6 * (1 + next_u32() % 200);
          const FlowId a = incremental.open_flow(src, dst, bytes);
          const FlowId b = oracle.open_flow(src, dst, bytes);
          ASSERT_EQ(a, b);
          flows.push_back(a);
          break;
        }
        case 1: {  // scale a random link's capacity
          const LinkId link =
              static_cast<LinkId>(next_u32() % c.num_links());
          static const double kFactors[] = {0.25, 0.5, 0.75, 1.0};
          const Rate cap = c.link(link).bandwidth * kFactors[next_u32() % 4];
          incremental.set_link_capacity(link, cap);
          oracle.set_link_capacity(link, cap);
          oracle.invalidate_all_rates();
          oracle.ensure_rates();
          break;
        }
        default: {  // let time pass
          t += 0.001 * (1 + next_u32() % 40);
          incremental.advance_to(t);
          oracle.advance_to(t);
          break;
        }
      }
      for (LinkId l = 0; l < c.num_links(); ++l)
        ASSERT_EQ(incremental.link_capacity(l), oracle.link_capacity(l));
      for (FlowId f : flows) {
        ASSERT_EQ(incremental.flow_done(f), oracle.flow_done(f))
            << "step " << step << " flow " << f << " on " << c.name();
        if (incremental.flow_done(f)) {
          EXPECT_EQ(incremental.flow_finish_time(f),
                    oracle.flow_finish_time(f))
              << "step " << step << " flow " << f << " on " << c.name();
        } else {
          EXPECT_EQ(incremental.flow_rate(f), oracle.flow_rate(f))
              << "step " << step << " flow " << f << " on " << c.name();
        }
      }
    }
    // Restore full capacity and drain: finish order and times agree.
    for (LinkId l = 0; l < c.num_links(); ++l) {
      incremental.set_link_capacity(l, c.link(l).bandwidth);
      oracle.set_link_capacity(l, c.link(l).bandwidth);
    }
    oracle.invalidate_all_rates();
    while (incremental.active_flows() > 0 || oracle.active_flows() > 0) {
      t += 0.05;
      incremental.advance_to(t);
      oracle.advance_to(t);
    }
    for (FlowId f : flows) {
      ASSERT_TRUE(incremental.flow_done(f));
      EXPECT_EQ(incremental.flow_finish_time(f), oracle.flow_finish_time(f));
    }
  }
}

TEST(FluidNetworkComponents, RandomTrafficKeepsPartitionExact) {
  const Cluster c = test_cluster(8);
  FluidNetwork net(c);
  std::uint64_t state = 12345;
  const auto next_u32 = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  };
  std::vector<FlowId> flows;
  Seconds t = 0;
  for (int round = 0; round < 60; ++round) {
    const int src = static_cast<int>(next_u32() % 8);
    int dst = static_cast<int>(next_u32() % 8);
    if (dst == src) dst = (dst + 1) % 8;
    flows.push_back(
        net.open_flow(src, dst, 1e6 * (1 + next_u32() % 200)));
    t += 0.001 * (1 + next_u32() % 50);
    net.advance_to(t);
    expect_exact_partition(net, flows);
  }
  net.advance_to(1e6);
  for (FlowId f : flows) EXPECT_TRUE(net.flow_done(f));
  EXPECT_EQ(net.num_components(), 0u);
}

}  // namespace
}  // namespace rats
