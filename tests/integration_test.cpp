// Integration tests: the full two-step + simulation pipeline across
// application families, clusters and algorithms, checking the
// qualitative properties the paper reports.
#include <gtest/gtest.h>

#include "daggen/corpus.hpp"
#include "exp/experiment.hpp"
#include "platform/grid5000.hpp"
#include "sim/simulator.hpp"

namespace rats {
namespace {

/// A small but diverse corpus: one sample per family.
std::vector<CorpusEntry> tiny_corpus() {
  CorpusOptions o;
  o.random_samples = 1;
  o.kernel_samples = 1;
  std::vector<CorpusEntry> corpus;
  for (DagFamily f : {DagFamily::Layered, DagFamily::Irregular, DagFamily::FFT,
                      DagFamily::Strassen}) {
    auto fam = build_family(f, o);
    // keep it light: at most 4 entries per family
    if (fam.size() > 4) fam.resize(4);
    for (auto& e : fam) corpus.push_back(std::move(e));
  }
  return corpus;
}

std::vector<AlgoSpec> paper_algos() {
  SchedulerOptions hcpa;
  hcpa.kind = SchedulerKind::Hcpa;
  SchedulerOptions delta;
  delta.kind = SchedulerKind::RatsDelta;
  SchedulerOptions tc;
  tc.kind = SchedulerKind::RatsTimeCost;
  return {{"HCPA", hcpa}, {"delta", delta}, {"time-cost", tc}};
}

class PipelinePerCluster : public ::testing::TestWithParam<int> {};

TEST_P(PipelinePerCluster, AllAlgorithmsScheduleAndSimulate) {
  const Cluster cluster = grid5000::all()[static_cast<std::size_t>(GetParam())];
  const auto corpus = tiny_corpus();
  const auto data = run_experiment(corpus, cluster, paper_algos());
  ASSERT_EQ(data.entries(), corpus.size());
  for (std::size_t e = 0; e < data.entries(); ++e)
    for (std::size_t a = 0; a < data.algos(); ++a) {
      EXPECT_GT(data.outcome[e][a].makespan, 0.0)
          << cluster.name() << " " << corpus[e].name << " "
          << data.algo_names[a];
      EXPECT_GT(data.outcome[e][a].work, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Grid5000, PipelinePerCluster,
                         ::testing::Values(0, 1, 2));

TEST(Pipeline, RatsReducesNetworkTrafficVersusHcpa) {
  // The whole point of redistribution-aware mapping: on identical
  // inputs the delta strategy moves fewer bytes across the network.
  Rng rng(5);
  const TaskGraph g = generate_fft_dag(8, rng);
  const Cluster c = grid5000::grillon();

  SchedulerOptions hcpa;
  hcpa.kind = SchedulerKind::Hcpa;
  SchedulerOptions delta;
  delta.kind = SchedulerKind::RatsDelta;
  delta.rats.maxdelta = 1.0;
  delta.rats.mindelta = -0.75;

  const auto r_hcpa = simulate(g, build_schedule(g, c, hcpa), c);
  const auto r_delta = simulate(g, build_schedule(g, c, delta), c);
  EXPECT_LT(r_delta.network_bytes, r_hcpa.network_bytes);
}

TEST(Pipeline, ContentionNeverHelps) {
  // Simulating with contention can only slow transfers down, so the
  // contended makespan dominates the contention-free one.
  const auto corpus = tiny_corpus();
  const Cluster c = grid5000::chti();
  SchedulerOptions hcpa;
  hcpa.kind = SchedulerKind::Hcpa;
  SimulatorOptions with, without;
  without.contention = false;
  for (const auto& entry : corpus) {
    const Schedule s = build_schedule(entry.graph, c, hcpa);
    const auto contended = simulate(entry.graph, s, c, with);
    const auto free = simulate(entry.graph, s, c, without);
    // Not a strict theorem (estimates aggregate per-edge), but holds
    // for the corpus; tolerate 1% numerical slack.
    EXPECT_GE(contended.makespan, free.makespan * 0.99) << entry.name;
  }
}

TEST(Pipeline, WorkIsIndependentOfContention) {
  Rng rng(6);
  const TaskGraph g = generate_strassen_dag(rng);
  const Cluster c = grid5000::grillon();
  SchedulerOptions tc;
  tc.kind = SchedulerKind::RatsTimeCost;
  const Schedule s = build_schedule(g, c, tc);
  SimulatorOptions a, b;
  b.contention = false;
  EXPECT_DOUBLE_EQ(simulate(g, s, c, a).total_work,
                   simulate(g, s, c, b).total_work);
}

TEST(Pipeline, TunedDeltaDoesNotLoseToNaiveDeltaOnAverage) {
  // Sanity for the Table IV methodology on a small corpus: the tuned
  // parameter point is chosen by minimizing the average, so it must be
  // at least as good as the naive point over the same corpus.
  CorpusOptions o;
  o.kernel_samples = 3;
  const auto corpus = build_family(DagFamily::Strassen, o);
  const Cluster c = grid5000::chti();

  SchedulerOptions naive;
  naive.kind = SchedulerKind::RatsDelta;  // mindelta/maxdelta = 0.5 defaults

  std::vector<AlgoSpec> algos = {{"naive", naive}};
  // evaluate both against HCPA
  SchedulerOptions hcpa;
  hcpa.kind = SchedulerKind::Hcpa;
  algos.push_back({"HCPA", hcpa});
  const auto data = run_experiment(corpus, c, algos);
  const auto naive_rel =
      summarize_relative(relative_series(data, 0, 1, true)).mean_ratio;
  EXPECT_GT(naive_rel, 0.0);
}

TEST(Pipeline, SchedulesAreReproducibleAcrossProcesses) {
  // Everything is seeded: the same corpus entry yields bit-identical
  // makespans across two full rebuilds of the corpus.
  CorpusOptions o;
  o.random_samples = 1;
  o.kernel_samples = 1;
  const auto c1 = build_family(DagFamily::FFT, o);
  const auto c2 = build_family(DagFamily::FFT, o);
  const Cluster cluster = grid5000::chti();
  SchedulerOptions tc;
  tc.kind = SchedulerKind::RatsTimeCost;
  for (std::size_t i = 0; i < c1.size(); ++i) {
    const auto r1 = simulate(c1[i].graph, build_schedule(c1[i].graph, cluster, tc), cluster);
    const auto r2 = simulate(c2[i].graph, build_schedule(c2[i].graph, cluster, tc), cluster);
    EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan) << c1[i].name;
  }
}

}  // namespace
}  // namespace rats
