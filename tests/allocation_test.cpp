// Unit and property tests for the allocation step (CPA/HCPA/MCPA).
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "daggen/corpus.hpp"
#include "dag/graph_algorithms.hpp"
#include "platform/grid5000.hpp"
#include "sched/allocation.hpp"

namespace rats {
namespace {

Cluster small_cluster(int nodes = 8) {
  return Cluster::flat("alloc-test", nodes, 1e9, 100e-6, 125e6);
}

/// A chain of `n` identical tasks (flops each, alpha).
TaskGraph chain(int n, double flops = 1e9, double alpha = 0.1) {
  TaskGraph g;
  TaskId prev = kInvalidTask;
  for (int i = 0; i < n; ++i) {
    const TaskId t = g.add_task(Task{"c" + std::to_string(i), 1e6, flops, alpha});
    if (prev != kInvalidTask) g.add_edge(prev, t, 8e6);
    prev = t;
  }
  return g;
}

/// `n` independent tasks wrapped between an entry and an exit.
TaskGraph fork_join(int n, double flops = 1e9, double alpha = 0.1) {
  TaskGraph g;
  const TaskId a = g.add_task(Task{"in", 1e6, flops, alpha});
  const TaskId b = g.add_task(Task{"out", 1e6, flops, alpha});
  for (int i = 0; i < n; ++i) {
    const TaskId t = g.add_task(Task{"w" + std::to_string(i), 1e6, flops, alpha});
    g.add_edge(a, t, 8e6);
    g.add_edge(t, b, 8e6);
  }
  return g;
}

TEST(Allocation, SingleTaskGetsManyProcessors) {
  // With one task the critical path is the whole application: CPA
  // grows the allocation until C = T(t,p) <= W = p*T(t,p)/P, i.e. until
  // p approaches P (for small alpha).
  TaskGraph g;
  g.add_task(Task{"solo", 1e6, 50e9, 0.0});
  const Cluster c = small_cluster(8);
  AllocationOptions o;
  o.kind = AllocationKind::Cpa;
  const Allocation a = allocate(g, c, o);
  EXPECT_EQ(a[0], 8);  // perfectly parallel task takes the machine
}

TEST(Allocation, SerialTaskStaysNarrow) {
  TaskGraph g;
  g.add_task(Task{"serial", 1e6, 50e9, 1.0});
  const Allocation a = allocate(g, small_cluster(8));
  EXPECT_EQ(a[0], 1);  // no benefit, the benefit criterion never fires
}

TEST(Allocation, AllAllocationsWithinPlatform) {
  Rng rng(1);
  const TaskGraph g = generate_fft_dag(8, rng);
  for (auto kind :
       {AllocationKind::Cpa, AllocationKind::Hcpa, AllocationKind::Mcpa}) {
    AllocationOptions o;
    o.kind = kind;
    const Cluster c = grid5000::chti();
    const Allocation a = allocate(g, c, o);
    ASSERT_EQ(a.size(), static_cast<std::size_t>(g.num_tasks()));
    for (int np : a) {
      EXPECT_GE(np, 1);
      EXPECT_LE(np, c.num_nodes());
    }
  }
}

TEST(Allocation, StopCriterionHolds) {
  // After convergence the critical path is no longer above the average
  // area (or every critical task is saturated).
  Rng rng(2);
  const TaskGraph g = generate_strassen_dag(rng);
  const Cluster c = grid5000::grillon();
  const AmdahlModel model(c.node_speed());
  AllocationOptions o;
  o.kind = AllocationKind::Hcpa;
  const Allocation a = allocate(g, c, o);

  const auto cp = critical_path(
      g,
      [&](TaskId t) {
        return model.execution_time(g.task(t), a[static_cast<std::size_t>(t)]);
      },
      [&](EdgeId e) { return allocation_edge_cost(c, g.edge(e).bytes); });
  const double area = average_area(g, c, model, a, AllocationKind::Hcpa);
  bool saturated = true;
  for (TaskId t : cp.tasks)
    if (a[static_cast<std::size_t>(t)] < c.num_nodes()) saturated = false;
  EXPECT_TRUE(cp.length <= area * (1 + 1e-9) || saturated);
}

TEST(Allocation, HcpaAllocatesNoMoreThanCpaOnLargeCluster) {
  // grelon has 120 processors for a 25-task graph: HCPA's modified W
  // stops earlier, so its total allocation is bounded by CPA's.
  Rng rng(3);
  const TaskGraph g = generate_strassen_dag(rng);
  const Cluster c = grid5000::grelon();
  AllocationOptions cpa{AllocationKind::Cpa, 1'000'000};
  AllocationOptions hcpa{AllocationKind::Hcpa, 1'000'000};
  const Allocation a_cpa = allocate(g, c, cpa);
  const Allocation a_hcpa = allocate(g, c, hcpa);
  const auto total = [](const Allocation& a) {
    return std::accumulate(a.begin(), a.end(), 0);
  };
  EXPECT_LE(total(a_hcpa), total(a_cpa));
  EXPECT_LT(total(a_hcpa), total(a_cpa));  // strictly smaller in practice
}

TEST(Allocation, HcpaEqualsCpaWhenTasksExceedProcessors) {
  // min(P, N) == P when N >= P: the two coincide.
  Rng rng(4);
  RandomDagParams p;
  p.num_tasks = 25;
  const TaskGraph g = generate_layered_dag(p, rng);
  const Cluster c = small_cluster(8);
  AllocationOptions cpa{AllocationKind::Cpa, 1'000'000};
  AllocationOptions hcpa{AllocationKind::Hcpa, 1'000'000};
  EXPECT_EQ(allocate(g, c, cpa), allocate(g, c, hcpa));
}

TEST(Allocation, McpaLevelsFitConcurrently) {
  Rng rng(5);
  const TaskGraph g = generate_fft_dag(8, rng);
  const Cluster c = grid5000::chti();
  AllocationOptions o;
  o.kind = AllocationKind::Mcpa;
  const Allocation a = allocate(g, c, o);
  const auto levels = tasks_by_level(g);
  for (const auto& level : levels) {
    int total = 0;
    for (TaskId t : level) total += a[static_cast<std::size_t>(t)];
    EXPECT_LE(total, c.num_nodes());
  }
}

TEST(Allocation, CpaMayViolateLevelConcurrency) {
  // The very limitation MCPA fixes: on a small cluster CPA can allocate
  // a level more processors than exist.
  Rng rng(6);
  const TaskGraph g = generate_fft_dag(16, rng);
  const Cluster c = small_cluster(4);
  AllocationOptions o;
  o.kind = AllocationKind::Cpa;
  const Allocation a = allocate(g, c, o);
  const auto levels = tasks_by_level(g);
  bool violated = false;
  for (const auto& level : levels) {
    int total = 0;
    for (TaskId t : level) total += a[static_cast<std::size_t>(t)];
    if (total > c.num_nodes()) violated = true;
  }
  EXPECT_TRUE(violated);
}

TEST(Allocation, ChainGetsWideAllocations) {
  // A chain's critical path is everything; allocations should grow
  // beyond 1 for parallelizable tasks.
  const TaskGraph g = chain(5, 20e9, 0.05);
  const Allocation a = allocate(g, small_cluster(8));
  for (int np : a) EXPECT_GT(np, 1);
}

TEST(Allocation, ForkJoinSharesProcessorsAcrossWorkers) {
  // Eight identical independent workers on eight processors: the
  // average-area bound keeps per-worker allocations near one.
  const TaskGraph g = fork_join(8, 10e9, 0.05);
  const Allocation a = allocate(g, small_cluster(8));
  double worker_total = 0;
  for (TaskId t = 2; t < g.num_tasks(); ++t)
    worker_total += a[static_cast<std::size_t>(t)];
  EXPECT_LE(worker_total / 8.0, 3.0);  // no worker hogs the cluster
}

TEST(Allocation, EdgeCostEstimateIsLatencyPlusSerialization) {
  const Cluster c = small_cluster();
  EXPECT_NEAR(allocation_edge_cost(c, 125e6), 100e-6 + 1.0, 1e-12);
}

TEST(Allocation, RejectsEmptyGraph) {
  TaskGraph g;
  EXPECT_THROW(allocate(g, small_cluster()), Error);
}

// Property: allocation is deterministic and respects bounds across the
// whole Table III parameter grid (1 sample each to keep runtime low).
class AllocationOnCorpus : public ::testing::TestWithParam<DagFamily> {};

TEST_P(AllocationOnCorpus, BoundsAndDeterminism) {
  CorpusOptions o;
  o.random_samples = 1;
  o.kernel_samples = 2;
  const auto corpus = build_family(GetParam(), o);
  const Cluster c = grid5000::grillon();
  for (const auto& entry : corpus) {
    const Allocation a1 = allocate(entry.graph, c);
    const Allocation a2 = allocate(entry.graph, c);
    EXPECT_EQ(a1, a2) << entry.name;
    for (int np : a1) {
      EXPECT_GE(np, 1) << entry.name;
      EXPECT_LE(np, c.num_nodes()) << entry.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, AllocationOnCorpus,
                         ::testing::Values(DagFamily::Layered,
                                           DagFamily::Irregular,
                                           DagFamily::FFT,
                                           DagFamily::Strassen));

}  // namespace
}  // namespace rats
