// Tests for the structured report pipeline (src/report + the registry
// redesign): ReportModel round-trips — model → text renderer must equal
// the legacy stdout bytes pinned in scenarios/golden/kinds/ for every
// kind — the CSV/JSON renderers, the generic sweep kind, and the
// one-pass property of traced runs (report + trace from a single
// simulation pass, matching render_trace byte for byte).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/table.hpp"
#include "exp/runner.hpp"
#include "exp/session.hpp"
#include "report/render.hpp"
#include "scenario/parser.hpp"
#include "scenario/registry.hpp"
#include "trace/replay.hpp"

namespace rats {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string golden_dir() {
  return std::string(RATS_SOURCE_DIR) + "/scenarios/golden/kinds/";
}

// ---- model → text ≡ legacy stdout, for every kind ----------------------

class ReportGolden : public testing::TestWithParam<const char*> {};

TEST_P(ReportGolden, TextRenderingMatchesLegacyStdout) {
  const std::string kind = GetParam();
  const scenario::ScenarioSpec spec =
      scenario::load_scenario(golden_dir() + kind + ".rats");
  const report::ReportModel model = scenario::build_report(spec);
  EXPECT_EQ(model.kind, spec.kind);
  const std::string text = report::render_text(model, spec.output.csv);
  EXPECT_EQ(text, read_file(golden_dir() + kind + ".txt"))
      << "text rendering drifted from the pre-pipeline bytes for " << kind;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ReportGolden,
                         testing::Values("fig2", "fig3", "fig4", "fig5",
                                         "fig6", "fig7", "table1", "table2",
                                         "table3", "table4", "table5",
                                         "table6", "experiment", "single",
                                         "robustness"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---- structured content ------------------------------------------------

scenario::ScenarioSpec tiny_fig2_spec() {
  scenario::ScenarioSpec spec = scenario::default_spec("fig2");
  spec.workload.corpus.samples_random = 0;
  spec.workload.corpus.samples_kernel = 1;
  spec.workload.cap_per_family = 2;
  spec.threads = 1;
  return spec;
}

TEST(ReportModelTest, Fig2CarriesTypedTablesAndSeries) {
  const report::ReportModel model = scenario::build_report(tiny_fig2_spec());
  const report::TableModel* summary = model.find_table("summary");
  ASSERT_NE(summary, nullptr);
  ASSERT_EQ(summary->columns.size(), 5u);
  EXPECT_EQ(summary->columns[0].name, "strategy");
  EXPECT_EQ(summary->columns[1].type, report::ColumnType::Number);
  ASSERT_EQ(summary->rows.size(), 2u);  // delta, time-cost
  EXPECT_FALSE(summary->rows[0][0].numeric);
  EXPECT_TRUE(summary->rows[0][1].numeric);
  // The typed value matches its legacy rendering.
  EXPECT_EQ(fmt(summary->rows[0][1].num, 3), summary->rows[0][1].text);

  int series = 0;
  for (const auto& item : model.items)
    if (item.kind == report::Item::Kind::Series) {
      ++series;
      EXPECT_FALSE(item.series.values.empty());
    }
  EXPECT_EQ(series, 2);
}

TEST(ReportRenderTest, CsvAndJsonCarryEveryTable) {
  const report::ReportModel model = scenario::build_report(tiny_fig2_spec());
  const std::string csv = report::render_csv(model);
  EXPECT_NE(csv.find("# table summary"), std::string::npos);
  EXPECT_NE(csv.find("# series relative-makespan/delta"), std::string::npos);
  EXPECT_NE(csv.find("percent,value"), std::string::npos);

  const std::string json = report::render_json(model);
  EXPECT_EQ(json.rfind("{\"rats_report\":1,", 0), 0u);
  EXPECT_NE(json.find("\"type\":\"table\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"series\""), std::string::npos);
  // Text notes embed their newlines escaped, never raw.
  EXPECT_EQ(json.find("\n  paper"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

// ---- JSON round trip (parse_json, the serve payload transport) ---------

TEST(ReportJsonRoundTrip, HandBuiltModelSurvivesByteStable) {
  report::ReportModel model;
  model.name = "round \"trip\"\nname";  // escapes in the header fields
  model.kind = "experiment";
  model.heading("A heading");
  model.text("verbatim text\n  with a \"quoted\" tab\there\n");
  report::TableModel& table =
      model.table("cells", {{"label", report::ColumnType::Text},
                            {"value", report::ColumnType::Number}});
  table.rows.push_back({report::cell("plain"), report::cell(1.5, "1.500")});
  table.rows.push_back(
      {report::cell(""), report::cell(-0.0625, "-6.25e-02")});
  table.preformatted = "exact\tlegacy\nbytes\n";
  table.csv_echo = false;
  model.series("curve/one", "one", {0.25, 1.0, 2.0});
  model.scalar("best/x", 0.1);          // not exactly representable
  model.scalar("note", "text payload");
  model.metrics.push_back({"runs", 9, true});
  model.metrics.push_back({"pool/steals", 3, false});

  const std::string once = report::render_json(model);
  const report::ReportModel parsed = report::parse_json(once);
  EXPECT_EQ(report::render_json(parsed), once);
  // The typed content survives, not just the bytes.
  EXPECT_EQ(parsed.name, model.name);
  const report::TableModel* cells = parsed.find_table("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->rows.size(), 2u);
  EXPECT_TRUE(cells->rows[1][1].numeric);
  EXPECT_EQ(cells->rows[1][1].num, -0.0625);
  ASSERT_EQ(parsed.metrics.size(), 2u);
}

TEST(ReportJsonRoundTrip, ScenarioReportSurvivesByteStable) {
  const report::ReportModel model = scenario::build_report(tiny_fig2_spec());
  const std::string once = report::render_json(model);
  EXPECT_EQ(report::render_json(report::parse_json(once)), once);
}

TEST(ReportJsonRoundTrip, RejectsForeignDocuments) {
  EXPECT_THROW(report::parse_json("not json at all"), Error);
  EXPECT_THROW(report::parse_json("{\"rats_report\":2,\"items\":[]}"), Error);
  EXPECT_THROW(report::parse_json("{\"name\":\"x\"}"), Error);
  EXPECT_THROW(report::parse_json(""), Error);
}

TEST(ReportRenderTest, RenderersAreDeterministic) {
  const auto spec = tiny_fig2_spec();
  const report::ReportModel a = scenario::build_report(spec);
  const report::ReportModel b = scenario::build_report(spec);
  EXPECT_EQ(report::render_text(a, true), report::render_text(b, true));
  EXPECT_EQ(report::render_csv(a), report::render_csv(b));
  EXPECT_EQ(report::render_json(a), report::render_json(b));
}

// ---- generic sweep kind ------------------------------------------------

scenario::ScenarioSpec tiny_sweep_spec() {
  scenario::ScenarioSpec spec = scenario::default_spec("sweep");
  spec.name = "tiny-sweep";
  spec.workload.corpus.samples_random = 0;
  spec.workload.corpus.samples_kernel = 1;
  spec.workload.cap_per_family = 1;
  spec.sweep.mindeltas = {-0.5, 0.0};
  spec.sweep.maxdeltas = {1.0};
  spec.sweep.packings = {true, false};
  spec.threads = 1;
  return spec;
}

TEST(SweepKindTest, GridCrossesEveryAxisInOrder) {
  const report::ReportModel model = scenario::build_report(tiny_sweep_spec());
  const report::TableModel* table = model.find_table("sweep");
  ASSERT_NE(table, nullptr);
  // Axes in field order (mindelta, maxdelta, packing) + the metric.
  ASSERT_EQ(table->columns.size(), 4u);
  EXPECT_EQ(table->columns[0].name, "mindelta");
  EXPECT_EQ(table->columns[1].name, "maxdelta");
  EXPECT_EQ(table->columns[2].name, "packing");
  EXPECT_EQ(table->columns[3].name, "avg relative makespan");
  ASSERT_EQ(table->rows.size(), 4u);  // 2 x 1 x 2, last axis fastest
  EXPECT_EQ(table->rows[0][0].text, "-0.50");
  EXPECT_EQ(table->rows[0][2].text, "true");
  EXPECT_EQ(table->rows[1][2].text, "false");
  EXPECT_EQ(table->rows[2][0].text, "0.00");
  for (const auto& row : table->rows) EXPECT_TRUE(row[3].numeric);

  // Best-point scalars cover every axis plus the metric.
  int best_scalars = 0;
  for (const auto& item : model.items)
    if (item.kind == report::Item::Kind::Scalar &&
        item.scalar.id.rfind("best/", 0) == 0)
      ++best_scalars;
  EXPECT_EQ(best_scalars, 4);
}

TEST(SweepKindTest, RegistryRejectsEmptyGrids) {
  scenario::ScenarioSpec spec = scenario::default_spec("sweep");
  spec.sweep = scenario::SweepSpec{};
  EXPECT_THROW(scenario::build_report(spec), Error);
}

// ---- one pass: report + trace from a single simulation ----------------

/// Counts session callbacks and forwards nothing (no tracing).
class CountingSession final : public RunSession {
 public:
  void begin_matrix(std::size_t runs) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++matrices_;
    announced_ = runs;
  }
  TraceSink* begin_run(std::size_t, const RunMeta& meta) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++begun_;
    last_meta_ = meta;
    return nullptr;
  }
  void end_run(std::size_t, const RunOutcome& outcome) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++ended_;
    last_makespan_ = outcome.makespan;
  }

  int matrices_ = 0;
  std::size_t announced_ = 0;
  int begun_ = 0;
  int ended_ = 0;
  RunMeta last_meta_;
  double last_makespan_ = 0;

 private:
  std::mutex mu_;
};

TEST(OnePassTraceTest, SessionSeesEveryRunExactlyOnce) {
  const auto spec = tiny_fig2_spec();
  CountingSession session;
  const std::uint64_t before = simulated_run_count();
  const report::ReportModel traced = scenario::build_report(spec, &session);
  const std::uint64_t simulated = simulated_run_count() - before;

  EXPECT_EQ(session.matrices_, 1);
  EXPECT_EQ(session.announced_, 9u);  // 3 entries x 3 algorithms
  EXPECT_EQ(session.begun_, 9);
  EXPECT_EQ(session.ended_, 9);
  EXPECT_EQ(simulated, 9u) << "the matrix must be simulated exactly once";
  EXPECT_EQ(session.last_meta_.cluster, "grillon");
  EXPECT_GT(session.last_makespan_, 0);

  // Attaching the session does not perturb the report.
  const report::ReportModel untraced = scenario::build_report(spec);
  EXPECT_EQ(report::render_text(traced, true),
            report::render_text(untraced, true));
}

TEST(OnePassTraceTest, RunWithTracePathMatchesRenderTrace) {
  scenario::ScenarioSpec spec = tiny_fig2_spec();
  spec.name = "one-pass";
  const std::string trace_path = testing::TempDir() + "one_pass_trace.jsonl";
  const std::string csv_path = testing::TempDir() + "one_pass.csv";

  scenario::RunOptions options;
  options.trace_path = trace_path;
  options.report_csv_path = csv_path;
  const std::uint64_t before = simulated_run_count();
  scenario::run(spec, options);  // report goes to stdout (tiny)
  EXPECT_EQ(simulated_run_count() - before, 9u)
      << "a traced run must not re-simulate for the trace";

  // The streamed trace is byte-identical to the reference renderer and
  // passes the replay checker.
  EXPECT_EQ(read_file(trace_path), scenario::render_trace(spec, 1));
  const ReplayReport report = verify_trace(trace_path, 1);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.runs, 9u);

  // The CSV artefact is the model's CSV rendering.
  EXPECT_EQ(read_file(csv_path),
            report::render_csv(scenario::build_report(spec)));
  std::remove(trace_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(OnePassTraceTest, SessionOnUntraceableKindThrows) {
  CountingSession session;
  EXPECT_THROW(
      scenario::build_report(scenario::default_spec("table1"), &session),
      Error);
}

}  // namespace
}  // namespace rats
