// Tests for the scenario service (src/serve): shard planning, the
// bitwise outcome payload round trip, deterministic shard-index-order
// merging (arrival-order permutation test), the JobTable state machine
// (backpressure, crash/retry, whole-report jobs), and the daemon end
// to end over a Unix socket — including the worker-crash and
// worker-hang fault-injection hooks, whose merged reports must stay
// byte-identical to a single-process `rats run`.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "exp/session.hpp"
#include "report/render.hpp"
#include "scenario/parser.hpp"
#include "scenario/registry.hpp"
#include "serve/jobs.hpp"
#include "serve/shard.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "serve/client.hpp"
#include "serve/daemon.hpp"
#endif

namespace rats::serve {
namespace {

// A 2 entries x 2 algorithms experiment — 4 runs, enough to split into
// non-trivial shards while staying fast.
const char* kTinyExperiment =
    "[scenario]\n"
    "name = \"serve-tiny\"\n"
    "kind = \"experiment\"\n"
    "[platform]\n"
    "name = \"mini\"\n"
    "nodes = 4\n"
    "[workload]\n"
    "source = \"generate\"\n"
    "generator = \"strassen\"\n"
    "count = 2\n"
    "[algorithm]\n"
    "name = \"HCPA\"\n"
    "kind = \"hcpa\"\n"
    "[algorithm]\n"
    "name = \"CPA\"\n"
    "kind = \"cpa\"\n";

// A generic sweep — its matrix nests per-point batches behind
// OffsetSession, the trickiest inject() forwarding path.
const char* kTinySweep =
    "[scenario]\n"
    "name = \"serve-sweep\"\n"
    "kind = \"sweep\"\n"
    "[platform]\n"
    "name = \"mini\"\n"
    "nodes = 4\n"
    "[workload]\n"
    "source = \"generate\"\n"
    "generator = \"fft\"\n"
    "count = 1\n"
    "fft-k = 4\n"
    "[sweep]\n"
    "base = \"delta\"\n"
    "mindelta = [-0.5, 0]\n"
    "maxdelta = [0.5]\n";

// Kind "single" needs per-task timelines — not shardable, served as
// one whole-report shard through the parse_json round trip.
const char* kTinySingle =
    "[scenario]\n"
    "name = \"serve-single\"\n"
    "kind = \"single\"\n"
    "[platform]\n"
    "name = \"mini\"\n"
    "nodes = 4\n"
    "[workload]\n"
    "source = \"generate\"\n"
    "generator = \"fft\"\n"
    "count = 1\n"
    "fft-k = 2\n"
    "[algorithm]\n"
    "name = \"HCPA\"\n"
    "kind = \"hcpa\"\n";

std::string direct_json(const std::string& text) {
  const scenario::ScenarioSpec spec =
      scenario::parse_scenario_string(text, "<direct>");
  return report::render_json(scenario::build_report(spec));
}

/// Records every outcome of a real (non-injected) matrix pass.
class CaptureSession final : public RunSession {
 public:
  void begin_matrix(std::size_t runs) override { outcomes_.resize(runs); }
  TraceSink* begin_run(std::size_t, const RunMeta&) override {
    return nullptr;
  }
  void end_run(std::size_t run, const RunOutcome& outcome) override {
    outcomes_[run] = outcome;
  }
  const std::vector<RunOutcome>& outcomes() const { return outcomes_; }

 private:
  std::vector<RunOutcome> outcomes_;
};

bool outcomes_bitwise_equal(const RunOutcome& a, const RunOutcome& b) {
  return a.makespan == b.makespan && a.work == b.work &&
         a.faults.tasks_killed == b.faults.tasks_killed &&
         a.faults.tasks_remapped == b.faults.tasks_remapped &&
         a.faults.redists_aborted == b.faults.redists_aborted &&
         a.faults.capacity_seconds_lost == b.faults.capacity_seconds_lost &&
         a.faults.node_seconds_down == b.faults.node_seconds_down;
}

TEST(ServeShard, ShardableKindsAreTheTraceableMatrixKinds) {
  EXPECT_TRUE(kind_shardable("experiment"));
  EXPECT_TRUE(kind_shardable("fig2"));
  EXPECT_TRUE(kind_shardable("sweep"));
  EXPECT_FALSE(kind_shardable("single"));  // needs per-task timelines
  EXPECT_FALSE(kind_shardable("table1"));  // untraceable static report
  EXPECT_FALSE(kind_shardable("no-such-kind"));
}

TEST(ServeShard, PlanPartitionsTheMatrixContiguously) {
  const scenario::ScenarioSpec spec =
      scenario::parse_scenario_string(kTinyExperiment, "<plan>");
  const ShardPlan plan = plan_shards(spec, 3);
  EXPECT_TRUE(plan.sharded);
  EXPECT_EQ(plan.total_runs, 4u);  // 2 entries x 2 algorithms
  ASSERT_EQ(plan.shards.size(), 3u);
  std::size_t expect_begin = 0;
  for (const ShardRange& s : plan.shards) {
    EXPECT_EQ(s.begin, expect_begin);
    EXPECT_LT(s.begin, s.end);
    expect_begin = s.end;
  }
  EXPECT_EQ(expect_begin, plan.total_runs);

  // More shards than runs degrade to one run per shard, never empties.
  const ShardPlan wide = plan_shards(spec, 16);
  EXPECT_EQ(wide.shards.size(), 4u);

  // Non-shardable kinds plan exactly one whole-report shard.
  const ShardPlan whole = plan_shards(
      scenario::parse_scenario_string(kTinySingle, "<plan>"), 3);
  EXPECT_FALSE(whole.sharded);
  EXPECT_EQ(whole.shards.size(), 1u);
}

TEST(ServeShard, PayloadRoundTripIsBitwiseExact) {
  const scenario::ScenarioSpec spec =
      scenario::parse_scenario_string(kTinyExperiment, "<payload>");
  CaptureSession capture;
  scenario::build_report(spec, &capture);
  const std::vector<RunOutcome>& want = capture.outcomes();
  ASSERT_EQ(want.size(), 4u);

  const ShardOutcomes got =
      parse_shard_payload(run_shard_payload(spec, 1, 3, 4));
  EXPECT_EQ(got.begin, 1u);
  ASSERT_EQ(got.outcomes.size(), 2u);
  for (std::size_t i = 0; i < got.outcomes.size(); ++i)
    EXPECT_TRUE(outcomes_bitwise_equal(got.outcomes[i], want[1 + i]))
        << "outcome " << i << " drifted through the payload";

  // Planner/worker matrix-size mismatch (spec drift) must throw.
  EXPECT_THROW(run_shard_payload(spec, 0, 2, 5), Error);
}

TEST(ServeShard, MergedBytesInvariantUnderArrivalOrder) {
  for (const char* text : {kTinyExperiment, kTinySweep}) {
    SCOPED_TRACE(text);
    const std::string want = direct_json(text);
    const scenario::ScenarioSpec spec =
        scenario::parse_scenario_string(text, "<merge>");
    const ShardPlan plan = plan_shards(spec, 3);
    ASSERT_EQ(plan.shards.size(), 3u);

    std::vector<std::string> payloads;
    for (const ShardRange& s : plan.shards)
      payloads.push_back(
          run_shard_payload(spec, s.begin, s.end, plan.total_runs));

    // Every arrival order of the three shards merges to the same bytes
    // as the single-process run: the merge orders by shard index, and
    // outcomes land at absolute run indices.
    std::vector<std::size_t> arrival{0, 1, 2};
    do {
      JobTable table(JobConfig{8, 3, 250});
      const auto submitted = table.submit(text);
      ASSERT_TRUE(submitted.accepted) << submitted.error;
      JobTable::Dispatch d;
      std::vector<JobTable::Dispatch> dispatched;
      while (table.next_dispatch(d)) dispatched.push_back(d);
      ASSERT_EQ(dispatched.size(), 3u);
      for (const std::size_t i : arrival)
        table.shard_done(dispatched[i].job_id, dispatched[i].shard,
                         payloads[dispatched[i].shard]);
      const std::string* merged = table.result(submitted.job_id);
      ASSERT_NE(merged, nullptr);
      EXPECT_EQ(*merged, want);
    } while (std::next_permutation(arrival.begin(), arrival.end()));
  }
}

TEST(ServeJobs, WholeReportJobRoundTripsThroughParseJson) {
  const std::string want = direct_json(kTinySingle);
  JobTable table(JobConfig{8, 4, 250});
  const auto submitted = table.submit(kTinySingle);
  ASSERT_TRUE(submitted.accepted) << submitted.error;
  EXPECT_EQ(submitted.shards, 1u);

  JobTable::Dispatch d;
  ASSERT_TRUE(table.next_dispatch(d));
  EXPECT_FALSE(d.sharded);
  const scenario::ScenarioSpec spec =
      scenario::parse_scenario_string(d.spec_text, "<whole>");
  table.shard_done(d.job_id, d.shard, run_whole_payload(spec));
  const std::string* merged = table.result(submitted.job_id);
  ASSERT_NE(merged, nullptr);
  // parse_json(render_json(model)) re-rendered on the daemon side must
  // reproduce the document byte for byte.
  EXPECT_EQ(*merged, want);
}

TEST(ServeJobs, BoundedQueueRejectsWithRetryHint) {
  JobTable table(JobConfig{1, 2, 123});
  const auto first = table.submit(kTinyExperiment);
  ASSERT_TRUE(first.accepted);

  const auto second = table.submit(kTinyExperiment);
  EXPECT_FALSE(second.accepted);
  EXPECT_EQ(second.retry_after_ms, 123);  // transient: try again
  EXPECT_EQ(table.stats().jobs_rejected, 1);

  // Draining the first job frees the slot.
  const scenario::ScenarioSpec spec =
      scenario::parse_scenario_string(kTinyExperiment, "<queue>");
  JobTable::Dispatch d;
  while (table.next_dispatch(d))
    table.shard_done(d.job_id, d.shard,
                     run_shard_payload(spec, d.begin, d.end, d.total));
  EXPECT_EQ(table.status(first.job_id).state, "done");
  EXPECT_TRUE(table.submit(kTinyExperiment).accepted);
}

TEST(ServeJobs, MalformedSpecRejectedWithoutRetryHint) {
  JobTable table(JobConfig{8, 2, 250});
  const auto r = table.submit("[scenario]\nkind = \"no-such-kind\"\n");
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.retry_after_ms, 0);  // permanent: retrying cannot help
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(table.stats().jobs_rejected, 1);
}

TEST(ServeJobs, CrashedShardRetriedOnceThenJobFails) {
  JobTable table(JobConfig{8, 2, 250});
  const auto submitted = table.submit(kTinyExperiment);
  ASSERT_TRUE(submitted.accepted);

  JobTable::Dispatch d;
  ASSERT_TRUE(table.next_dispatch(d));
  // First failure: requeued for one retry.
  EXPECT_TRUE(table.shard_failed(d.job_id, d.shard, "worker died"));
  EXPECT_EQ(table.stats().shards_retried, 1);
  EXPECT_EQ(table.status(submitted.job_id).state, "running");

  // The retry dispatch hands out the same shard again.
  JobTable::Dispatch retry;
  ASSERT_TRUE(table.next_dispatch(retry));
  EXPECT_EQ(retry.shard, d.shard);

  // Second failure: the job fails with the diagnostic.
  EXPECT_FALSE(table.shard_failed(retry.job_id, retry.shard, "worker died"));
  const auto status = table.status(submitted.job_id);
  EXPECT_EQ(status.state, "failed");
  EXPECT_NE(status.error.find("twice"), std::string::npos);
  EXPECT_NE(status.error.find("worker died"), std::string::npos);
  EXPECT_EQ(table.result(submitted.job_id), nullptr);
}

TEST(ServeJobs, FinishedJobsAreEvictedBeyondBoundedHistory) {
  // finished_keep = 2: a long-lived table must not accumulate every
  // done job's result/payloads forever.
  JobTable table(JobConfig{8, 2, 250, 2});
  const scenario::ScenarioSpec spec =
      scenario::parse_scenario_string(kTinyExperiment, "<evict>");
  std::vector<std::string> ids;
  for (int round = 0; round < 3; ++round) {
    const auto submitted = table.submit(kTinyExperiment);
    ASSERT_TRUE(submitted.accepted) << submitted.error;
    ids.push_back(submitted.job_id);
    JobTable::Dispatch d;
    while (table.next_dispatch(d))
      table.shard_done(d.job_id, d.shard,
                       run_shard_payload(spec, d.begin, d.end, d.total));
    ASSERT_EQ(table.status(submitted.job_id).state, "done");
  }
  // Oldest finished job fell off the history; the two newest survive
  // with fetchable results.  Cumulative stats are unaffected.
  EXPECT_FALSE(table.status(ids[0]).known);
  EXPECT_EQ(table.result(ids[0]), nullptr);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_TRUE(table.status(ids[i]).known);
    EXPECT_NE(table.result(ids[i]), nullptr);
  }
  EXPECT_EQ(table.stats().jobs_done, 3);
  EXPECT_EQ(table.active_jobs(), 0u);

  // A failed job enters the same bounded history (and evicts).
  const auto failing = table.submit(kTinyExperiment);
  ASSERT_TRUE(failing.accepted);
  JobTable::Dispatch d;
  ASSERT_TRUE(table.next_dispatch(d));
  table.shard_failed(d.job_id, d.shard, "boom");
  ASSERT_TRUE(table.next_dispatch(d));
  table.shard_failed(d.job_id, d.shard, "boom");
  EXPECT_EQ(table.status(failing.job_id).state, "failed");
  EXPECT_FALSE(table.status(ids[1]).known);  // pushed out by the new entry
}

TEST(ServeJobs, LateResultForEvictedJobIsIgnored) {
  JobTable table(JobConfig{8, 2, 250, 1});
  const scenario::ScenarioSpec spec =
      scenario::parse_scenario_string(kTinyExperiment, "<late>");
  const auto first = table.submit(kTinyExperiment);
  ASSERT_TRUE(first.accepted);
  std::vector<JobTable::Dispatch> pending;
  JobTable::Dispatch d;
  while (table.next_dispatch(d)) pending.push_back(d);
  for (const JobTable::Dispatch& p : pending)
    table.shard_done(p.job_id, p.shard,
                     run_shard_payload(spec, p.begin, p.end, p.total));

  // Evict `first` by finishing a second job, then deliver a stale
  // shard result for it: must be a silent no-op, not a crash.
  const auto second = table.submit(kTinyExperiment);
  ASSERT_TRUE(second.accepted);
  while (table.next_dispatch(d))
    table.shard_done(d.job_id, d.shard,
                     run_shard_payload(spec, d.begin, d.end, d.total));
  ASSERT_FALSE(table.status(first.job_id).known);
  EXPECT_NO_THROW(table.shard_done(pending.front().job_id,
                                   pending.front().shard, "stale"));
  EXPECT_NO_THROW(table.shard_failed(pending.front().job_id,
                                     pending.front().shard, "stale"));
  EXPECT_EQ(table.status(second.job_id).state, "done");
}

TEST(ServeJobs, CrashHookArmsFirstDispatchOnly) {
  JobTable table(JobConfig{8, 2, 250});
  const auto submitted = table.submit(kTinyExperiment, /*crash_first=*/true);
  ASSERT_TRUE(submitted.accepted);
  JobTable::Dispatch first, second;
  ASSERT_TRUE(table.next_dispatch(first));
  EXPECT_TRUE(first.crash);
  ASSERT_TRUE(table.next_dispatch(second));
  EXPECT_FALSE(second.crash);
  // The retry of the crashed shard runs clean as well.
  EXPECT_TRUE(table.shard_failed(first.job_id, first.shard, "crashed"));
  JobTable::Dispatch retry;
  ASSERT_TRUE(table.next_dispatch(retry));
  EXPECT_EQ(retry.shard, first.shard);
  EXPECT_FALSE(retry.crash);
}

#if defined(__unix__) || defined(__APPLE__)

/// Forks a daemon on `socket_path` and waits until it accepts
/// connections.  Returns the daemon pid.
pid_t spawn_daemon(const DaemonOptions& options) {
  const pid_t pid = fork();
  if (pid == 0) {
    const int null = ::open("/dev/null", O_WRONLY);
    ::dup2(null, 1);
    ::dup2(null, 2);
    _exit(run_daemon(options));
  }
  for (int i = 0; i < 200; ++i) {
    try {
      request(options.socket_path, "{\"cmd\":\"ping\"}");
      return pid;
    } catch (const Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  ADD_FAILURE() << "daemon never came up on " << options.socket_path;
  return pid;
}

int shutdown_daemon(const std::string& socket_path, pid_t pid) {
  request(socket_path, "{\"cmd\":\"shutdown\"}");
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

TEST(ServeDaemon, ServedReportsAreByteIdenticalToDirectRuns) {
  DaemonOptions options;
  options.socket_path = testing::TempDir() + "serve_e2e.sock";
  options.workers = 2;
  const pid_t pid = spawn_daemon(options);

  // Sharded, whole-report, and sweep jobs through real workers.
  for (const char* text : {kTinyExperiment, kTinySingle, kTinySweep})
    EXPECT_EQ(submit_and_wait(options.socket_path, text), direct_json(text));

  const json::Value stats =
      request_json(options.socket_path, "{\"cmd\":\"stats\"}");
  EXPECT_EQ(stats.get_int("jobs_done"), 3);
  EXPECT_EQ(stats.get_int("jobs_failed"), 0);
  EXPECT_EQ(stats.get_int("shards_retried"), 0);

  const int status = shutdown_daemon(options.socket_path, pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "daemon did not shut down cleanly";
}

TEST(ServeDaemon, WorkerCrashMidShardStillMergesIdenticalBytes) {
  DaemonOptions options;
  options.socket_path = testing::TempDir() + "serve_crash.sock";
  options.workers = 2;
  const pid_t pid = spawn_daemon(options);

  SubmitOptions crash;
  crash.crash_test = true;  // first dispatched shard _exit()s its worker
  EXPECT_EQ(submit_and_wait(options.socket_path, kTinyExperiment, crash),
            direct_json(kTinyExperiment));

  const json::Value stats =
      request_json(options.socket_path, "{\"cmd\":\"stats\"}");
  EXPECT_EQ(stats.get_int("shards_retried"), 1);
  EXPECT_EQ(stats.get_int("worker_restarts"), 1);
  EXPECT_EQ(stats.get_int("jobs_failed"), 0);

  const int status = shutdown_daemon(options.socket_path, pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

TEST(ServeDaemon, WatchdogKillsHungWorkerAndTheJobStillSucceeds) {
  DaemonOptions options;
  options.socket_path = testing::TempDir() + "serve_hang.sock";
  options.workers = 2;
  options.shard_timeout = 0.5;  // hung shard is SIGKILLed fast
  const pid_t pid = spawn_daemon(options);

  SubmitOptions hang;
  hang.hang_test = true;  // first dispatched shard wedges its worker
  EXPECT_EQ(submit_and_wait(options.socket_path, kTinyExperiment, hang),
            direct_json(kTinyExperiment));

  const json::Value stats =
      request_json(options.socket_path, "{\"cmd\":\"stats\"}");
  EXPECT_EQ(stats.get_int("shards_retried"), 1);
  EXPECT_EQ(stats.get_int("worker_restarts"), 1);

  const int status = shutdown_daemon(options.socket_path, pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

#endif  // unix

}  // namespace
}  // namespace rats::serve
