// Unit and property tests for the Max-Min fair bandwidth-sharing solver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/maxmin.hpp"

namespace rats {
namespace {

FlowDemand flow(std::vector<std::int32_t> links,
                Rate cap = std::numeric_limits<Rate>::infinity()) {
  return FlowDemand{std::move(links), cap};
}

TEST(MaxMin, SingleFlowGetsFullCapacity) {
  const auto rates = maxmin_fair_rates({100.0}, {flow({0})});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(MaxMin, TwoFlowsShareEvenly) {
  const auto rates = maxmin_fair_rates({100.0}, {flow({0}), flow({0})});
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(MaxMin, MinimumAcrossLinks) {
  // Flow crosses a 100 and a 40 link alone: bottleneck is 40.
  const auto rates = maxmin_fair_rates({100.0, 40.0}, {flow({0, 1})});
  EXPECT_DOUBLE_EQ(rates[0], 40.0);
}

TEST(MaxMin, ClassicParkingLot) {
  // Long flow crosses both links; two short flows cross one each.
  // Max-min: every flow gets 50 on each 100-capacity link.
  const auto rates = maxmin_fair_rates(
      {100.0, 100.0}, {flow({0, 1}), flow({0}), flow({1})});
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
  EXPECT_DOUBLE_EQ(rates[2], 50.0);
}

TEST(MaxMin, UnbalancedBottleneckFreesCapacity) {
  // Link 0 (cap 30) carries flows A,B; link 1 (cap 100) carries B,C.
  // A,B limited to 15 by link 0; C then gets 85 on link 1.
  const auto rates = maxmin_fair_rates(
      {30.0, 100.0}, {flow({0}), flow({0, 1}), flow({1})});
  EXPECT_DOUBLE_EQ(rates[0], 15.0);
  EXPECT_DOUBLE_EQ(rates[1], 15.0);
  EXPECT_DOUBLE_EQ(rates[2], 85.0);
}

TEST(MaxMin, FlowCapRespected) {
  const auto rates = maxmin_fair_rates({100.0}, {flow({0}, 10.0), flow({0})});
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 90.0);  // the uncapped flow picks up the rest
}

TEST(MaxMin, CapAboveShareHasNoEffect) {
  const auto rates =
      maxmin_fair_rates({100.0}, {flow({0}, 80.0), flow({0}, 90.0)});
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(MaxMin, LoopbackFlowGetsItsCap) {
  const auto rates = maxmin_fair_rates({100.0}, {flow({}, 42.0)});
  EXPECT_DOUBLE_EQ(rates[0], 42.0);
}

TEST(MaxMin, LoopbackUncappedIsInfinite) {
  const auto rates = maxmin_fair_rates({}, {flow({})});
  EXPECT_TRUE(std::isinf(rates[0]));
}

TEST(MaxMin, NoFlowsNoRates) {
  EXPECT_TRUE(maxmin_fair_rates({10.0}, {}).empty());
}

TEST(MaxMin, RejectsUnknownLink) {
  EXPECT_THROW(maxmin_fair_rates({10.0}, {flow({3})}), Error);
}

TEST(MaxMin, RejectsZeroCapacityUsedLink) {
  EXPECT_THROW(maxmin_fair_rates({0.0}, {flow({0})}), Error);
}

TEST(MaxMin, ThreeLevelHierarchyOfBottlenecks) {
  // Links: 0 (cap 12, flows A,B,C), 1 (cap 10, flows B), 2 (cap 2, C).
  // C is limited to 2 by link 2; A and B then share the remaining 10
  // of link 0 -> 5 each (B's link 1 is not binding at 5).
  const auto rates = maxmin_fair_rates(
      {12.0, 10.0, 2.0}, {flow({0}), flow({0, 1}), flow({0, 2})});
  EXPECT_DOUBLE_EQ(rates[2], 2.0);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

// ---------------------------------------------------------- properties

struct RandomCase {
  int links;
  int flows;
  std::uint64_t seed;
};

class MaxMinProperties : public ::testing::TestWithParam<RandomCase> {};

TEST_P(MaxMinProperties, FeasibleCapRespectingAndMaxMinOptimal) {
  const auto param = GetParam();
  Rng rng(param.seed);
  std::vector<Rate> capacity;
  for (int l = 0; l < param.links; ++l)
    capacity.push_back(rng.uniform(10.0, 200.0));
  std::vector<FlowDemand> flows;
  for (int f = 0; f < param.flows; ++f) {
    FlowDemand d;
    const int route_len = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < route_len; ++i) {
      const auto link =
          static_cast<std::int32_t>(rng.uniform_int(0, param.links - 1));
      if (std::find(d.links.begin(), d.links.end(), link) == d.links.end())
        d.links.push_back(link);
    }
    if (rng.bernoulli(0.3)) d.cap = rng.uniform(5.0, 100.0);
    flows.push_back(std::move(d));
  }

  const auto rates = maxmin_fair_rates(capacity, flows);
  ASSERT_EQ(rates.size(), flows.size());

  // Feasibility: no link oversubscribed.
  std::vector<double> used(capacity.size(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f)
    for (auto l : flows[f].links) used[static_cast<std::size_t>(l)] += rates[f];
  for (std::size_t l = 0; l < capacity.size(); ++l)
    EXPECT_LE(used[l], capacity[l] * (1 + 1e-9));

  // Cap respect and positivity.
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_LE(rates[f], flows[f].cap * (1 + 1e-9));
    EXPECT_GT(rates[f], 0.0);
  }

  // Max-min optimality: every flow is either at its cap or crosses a
  // saturated link where its rate is maximal among that link's flows.
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (rates[f] >= flows[f].cap * (1 - 1e-9)) continue;
    bool bottlenecked = false;
    for (auto l : flows[f].links) {
      const auto li = static_cast<std::size_t>(l);
      if (used[li] < capacity[li] * (1 - 1e-9)) continue;
      double max_on_link = 0;
      for (std::size_t g = 0; g < flows.size(); ++g)
        if (std::find(flows[g].links.begin(), flows[g].links.end(), l) !=
            flows[g].links.end())
          max_on_link = std::max(max_on_link, rates[g]);
      if (rates[f] >= max_on_link * (1 - 1e-9)) {
        bottlenecked = true;
        break;
      }
    }
    EXPECT_TRUE(bottlenecked) << "flow " << f << " is not bottlenecked";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, MaxMinProperties,
    ::testing::Values(RandomCase{1, 2, 1}, RandomCase{2, 4, 2},
                      RandomCase{3, 8, 3}, RandomCase{5, 16, 4},
                      RandomCase{8, 32, 5}, RandomCase{10, 64, 6},
                      RandomCase{4, 12, 7}, RandomCase{6, 24, 8},
                      RandomCase{12, 48, 9}, RandomCase{16, 100, 10}));

// ------------------------------------------------------- differential
// The incremental heap-driven solver must agree with the reference
// progressive-filling implementation on randomized instances spanning
// degenerate (1 link), sparse, dense, capped and tied configurations.

TEST(MaxMinDifferential, IncrementalMatchesReferenceOnRandomInstances) {
  Rng rng(0xD1FFu);
  for (int instance = 0; instance < 200; ++instance) {
    const int num_links = static_cast<int>(rng.uniform_int(1, 40));
    const int num_flows = static_cast<int>(rng.uniform_int(1, 120));

    std::vector<Rate> capacity;
    for (int l = 0; l < num_links; ++l) {
      // Mix smooth capacities with round ones so exact fair-share ties
      // (the order-dependence trap) actually occur.
      capacity.push_back(rng.bernoulli(0.3)
                             ? 100.0
                             : rng.uniform(1.0, 500.0));
    }

    std::vector<FlowDemand> flows;
    for (int f = 0; f < num_flows; ++f) {
      FlowDemand d;
      const int route_len = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < route_len; ++i) {
        const auto link =
            static_cast<std::int32_t>(rng.uniform_int(0, num_links - 1));
        if (std::find(d.links.begin(), d.links.end(), link) == d.links.end())
          d.links.push_back(link);
      }
      if (rng.bernoulli(0.4)) d.cap = rng.uniform(0.5, 300.0);
      flows.push_back(std::move(d));
    }

    const auto expected = maxmin_fair_rates_reference(capacity, flows);
    const auto actual = maxmin_fair_rates(capacity, flows);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t f = 0; f < expected.size(); ++f) {
      if (std::isinf(expected[f])) {
        EXPECT_TRUE(std::isinf(actual[f]))
            << "instance " << instance << " flow " << f;
        continue;
      }
      const double scale = std::max({1.0, expected[f], actual[f]});
      EXPECT_NEAR(actual[f], expected[f], 1e-9 * scale)
          << "instance " << instance << " flow " << f << " (links="
          << num_links << ", flows=" << num_flows << ")";
    }
  }
}

TEST(MaxMinDifferential, SolverScratchIsReusableAcrossSolves) {
  MaxMinSolver solver;
  Rng rng(77);
  std::vector<Rate> rates;
  for (int round = 0; round < 20; ++round) {
    const int num_links = static_cast<int>(rng.uniform_int(1, 12));
    const int num_flows = static_cast<int>(rng.uniform_int(1, 30));
    std::vector<Rate> capacity;
    for (int l = 0; l < num_links; ++l)
      capacity.push_back(rng.uniform(10.0, 200.0));
    std::vector<FlowDemand> flows;
    for (int f = 0; f < num_flows; ++f) {
      FlowDemand d;
      d.links.push_back(
          static_cast<std::int32_t>(rng.uniform_int(0, num_links - 1)));
      if (rng.bernoulli(0.25)) d.cap = rng.uniform(1.0, 100.0);
      flows.push_back(std::move(d));
    }
    solver.solve(capacity, flows, rates);
    const auto expected = maxmin_fair_rates_reference(capacity, flows);
    ASSERT_EQ(rates.size(), expected.size());
    for (std::size_t f = 0; f < expected.size(); ++f) {
      const double scale = std::max({1.0, expected[f], rates[f]});
      EXPECT_NEAR(rates[f], expected[f], 1e-9 * scale) << "round " << round;
    }
  }
}

// ---------------------------------------------- component decomposition
// Max-Min rates decompose exactly over connected components of the
// flow/link sharing graph: solving one component's flows alone (the
// fluid network's component-scoped re-solve) must reproduce the full
// solve bit for bit.  Exercises both subset entry points: the
// route-view overload and the adjacency-sharing overload.

TEST(MaxMinDifferential, ComponentScopedSolvesMatchFullSolve) {
  Rng rng(0xC04Au);
  MaxMinSolver full_solver;
  MaxMinSolver subset_solver;
  for (int instance = 0; instance < 200; ++instance) {
    const int num_links = static_cast<int>(rng.uniform_int(2, 40));
    const int num_flows = static_cast<int>(rng.uniform_int(1, 120));

    std::vector<Rate> capacity;
    for (int l = 0; l < num_links; ++l)
      capacity.push_back(rng.bernoulli(0.3) ? 100.0 : rng.uniform(1.0, 500.0));

    std::vector<FlowDemand> flows;
    for (int f = 0; f < num_flows; ++f) {
      FlowDemand d;
      const int route_len = static_cast<int>(rng.uniform_int(1, 3));
      for (int i = 0; i < route_len; ++i) {
        const auto link =
            static_cast<std::int32_t>(rng.uniform_int(0, num_links - 1));
        if (std::find(d.links.begin(), d.links.end(), link) == d.links.end())
          d.links.push_back(link);
      }
      // Mix unbindable caps (above any capacity) with binding ones so
      // both the cap-skip and the cap-fixing paths are exercised.
      if (rng.bernoulli(0.3))
        d.cap = rng.bernoulli(0.5) ? rng.uniform(600.0, 1000.0)
                                   : rng.uniform(0.5, 300.0);
      flows.push_back(std::move(d));
    }

    std::vector<Rate> full;
    full_solver.solve(capacity, flows, full);

    // Connected components of the sharing graph via union-find on links.
    std::vector<int> parent(static_cast<std::size_t>(num_links));
    for (int l = 0; l < num_links; ++l) parent[static_cast<std::size_t>(l)] = l;
    std::function<int(int)> find = [&](int x) {
      while (parent[static_cast<std::size_t>(x)] != x)
        x = parent[static_cast<std::size_t>(x)] =
            parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      return x;
    };
    for (const auto& d : flows)
      for (std::size_t i = 1; i < d.links.size(); ++i)
        parent[static_cast<std::size_t>(find(d.links[i]))] = find(d.links[0]);

    std::map<int, std::vector<std::int32_t>> groups;  // root -> flow ids
    for (std::size_t f = 0; f < flows.size(); ++f)
      groups[find(flows[f].links.front())].push_back(
          static_cast<std::int32_t>(f));

    for (const auto& [root, ids] : groups) {
      // Route-view subset solve.
      std::vector<FlowDemandView> views;
      for (const std::int32_t f : ids)
        views.push_back(FlowDemandView{
            flows[static_cast<std::size_t>(f)].links.data(),
            static_cast<std::int32_t>(
                flows[static_cast<std::size_t>(f)].links.size()),
            flows[static_cast<std::size_t>(f)].cap});
      std::vector<Rate> sub(ids.size());
      subset_solver.solve(capacity, views.data(), views.size(), sub.data());
      for (std::size_t k = 0; k < ids.size(); ++k)
        EXPECT_DOUBLE_EQ(sub[k], full[static_cast<std::size_t>(ids[k])])
            << "instance " << instance << " flow " << ids[k];

      // Adjacency-sharing subset solve over the same component.
      std::vector<std::vector<std::int32_t>> link_flows(
          static_cast<std::size_t>(num_links));
      std::vector<std::int32_t> local_of(flows.size(), -1);
      for (std::size_t k = 0; k < ids.size(); ++k) {
        local_of[static_cast<std::size_t>(ids[k])] =
            static_cast<std::int32_t>(k);
        for (const auto l : flows[static_cast<std::size_t>(ids[k])].links)
          link_flows[static_cast<std::size_t>(l)].push_back(ids[k]);
      }
      std::vector<Rate> shared(ids.size());
      subset_solver.solve(capacity, views.data(), views.size(), shared.data(),
                          link_flows, local_of);
      for (std::size_t k = 0; k < ids.size(); ++k)
        EXPECT_DOUBLE_EQ(shared[k], full[static_cast<std::size_t>(ids[k])])
            << "instance " << instance << " flow " << ids[k] << " (adjacency)";
    }
  }
}

// ------------------------------------------------- bipartite fast path
// The two-link waterfilling specialization must reproduce the general
// solver bit for bit on any population where every flow crosses exactly
// two links (flat-cluster traffic, but also arbitrary two-link routes).

TEST(MaxMinDifferential, BipartiteMatchesGeneralBitwise) {
  Rng rng(0xB1Fu);
  MaxMinSolver general;
  BipartiteWaterfillSolver bipartite;
  for (int instance = 0; instance < 200; ++instance) {
    const int num_links = static_cast<int>(rng.uniform_int(2, 64));
    const int num_flows = static_cast<int>(rng.uniform_int(1, 150));
    std::vector<Rate> capacity;
    for (int l = 0; l < num_links; ++l)
      capacity.push_back(rng.bernoulli(0.4) ? 125e6 : rng.uniform(1e6, 5e8));

    std::vector<FlowDemand> flows;
    for (int f = 0; f < num_flows; ++f) {
      FlowDemand d;
      const auto a =
          static_cast<std::int32_t>(rng.uniform_int(0, num_links - 1));
      auto b = static_cast<std::int32_t>(rng.uniform_int(0, num_links - 1));
      if (b == a) b = (b + 1) % num_links;
      d.links = {a, b};
      // Mix unbindable caps (above any capacity) with binding ones so
      // both the cap-skip and the cap-fixing paths are exercised.
      if (rng.bernoulli(0.3))
        d.cap = rng.bernoulli(0.5) ? rng.uniform(6e8, 1e9)
                                   : rng.uniform(1e5, 3e8);
      flows.push_back(std::move(d));
    }
    std::vector<FlowDemandView> views;
    for (const auto& d : flows)
      views.push_back(FlowDemandView{
          d.links.data(), static_cast<std::int32_t>(d.links.size()), d.cap});

    std::vector<Rate> expected(flows.size()), actual(flows.size());
    general.solve(capacity, views.data(), views.size(), expected.data());
    bipartite.solve(capacity, views.data(), views.size(), actual.data());
    for (std::size_t f = 0; f < flows.size(); ++f)
      EXPECT_EQ(actual[f], expected[f])
          << "instance " << instance << " flow " << f;
  }
}

// ----------------------------------------------------- warm re-solves
// A traced solve plus solve_warm over a small population delta must
// reproduce a from-scratch solve of the new population bit for bit —
// whichever solver (general or bipartite) recorded the trace.

TEST(MaxMinDifferential, WarmResolveMatchesColdBitwise) {
  Rng rng(0x3A4Du);
  MaxMinSolver warm_solver;
  MaxMinSolver cold_solver;
  BipartiteWaterfillSolver bipartite;
  int warm_successes = 0;
  for (int instance = 0; instance < 200; ++instance) {
    const bool two_link_only = rng.bernoulli(0.5);
    const int num_links = static_cast<int>(rng.uniform_int(2, 40));
    const int num_flows = static_cast<int>(rng.uniform_int(2, 100));
    std::vector<Rate> capacity;
    for (int l = 0; l < num_links; ++l)
      capacity.push_back(rng.bernoulli(0.4) ? 100.0 : rng.uniform(1.0, 500.0));

    // Population keyed by stable ids.
    std::vector<FlowDemand> flows;
    std::vector<std::int32_t> ids;
    std::int32_t next_id = 0;
    const auto random_flow = [&] {
      FlowDemand d;
      const int route_len =
          two_link_only ? 2 : static_cast<int>(rng.uniform_int(1, 3));
      for (int i = 0; i < route_len; ++i) {
        auto link =
            static_cast<std::int32_t>(rng.uniform_int(0, num_links - 1));
        if (two_link_only && !d.links.empty() && link == d.links.front())
          link = (link + 1) % num_links;
        if (std::find(d.links.begin(), d.links.end(), link) == d.links.end())
          d.links.push_back(link);
      }
      if (rng.bernoulli(0.35))
        d.cap = rng.bernoulli(0.5) ? rng.uniform(600.0, 1000.0)
                                   : rng.uniform(0.5, 300.0);
      return d;
    };
    for (int f = 0; f < num_flows; ++f) {
      flows.push_back(random_flow());
      ids.push_back(next_id++);
    }

    const auto make_views = [&](const std::vector<FlowDemand>& population) {
      std::vector<FlowDemandView> views;
      for (const auto& d : population)
        views.push_back(FlowDemandView{
            d.links.data(), static_cast<std::int32_t>(d.links.size()), d.cap});
      return views;
    };

    // Initial traced solve; rate_of tracks the warm path's view of
    // every live flow's rate.
    MaxMinWarmState state;
    std::map<std::int32_t, Rate> rate_of;
    {
      auto views = make_views(flows);
      std::vector<Rate> rates(flows.size());
      if (two_link_only)
        bipartite.solve(capacity, views.data(), views.size(), rates.data(),
                        &state, ids.data());
      else
        warm_solver.solve(capacity, views.data(), views.size(), rates.data(),
                          &state, ids.data());
      for (std::size_t f = 0; f < flows.size(); ++f)
        rate_of[ids[f]] = rates[f];
    }

    std::vector<std::pair<std::int32_t, Rate>> changed;
    for (int event = 0; event < 8; ++event) {
      // Random small delta: 0-2 departures and 0-2 arrivals (not both
      // empty).
      std::vector<std::int32_t> deps;
      std::vector<FlowDemand> arriving;
      std::vector<std::int32_t> arriving_ids;
      const int nd = flows.empty()
                         ? 0
                         : static_cast<int>(rng.uniform_int(0, 2));
      for (int q = 0; q < nd && !flows.empty(); ++q) {
        const auto victim =
            static_cast<std::size_t>(rng.uniform_int(0, flows.size() - 1));
        deps.push_back(ids[victim]);
        flows.erase(flows.begin() + static_cast<std::ptrdiff_t>(victim));
        ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      int na = static_cast<int>(rng.uniform_int(0, 2));
      if (deps.empty() && na == 0) na = 1;
      for (int q = 0; q < na; ++q) {
        arriving.push_back(random_flow());
        arriving_ids.push_back(next_id++);
      }

      std::vector<FlowArrival> arrivals;
      for (std::size_t a = 0; a < arriving.size(); ++a)
        arrivals.push_back(FlowArrival{
            arriving_ids[a], arriving[a].links.data(),
            static_cast<std::int32_t>(arriving[a].links.size()),
            arriving[a].cap});

      changed.clear();
      const bool ok = warm_solver.solve_warm(
          capacity, state, arrivals.data(), arrivals.size(), deps.data(),
          deps.size(), changed);
      for (std::size_t a = 0; a < arriving.size(); ++a) {
        flows.push_back(std::move(arriving[a]));
        ids.push_back(arriving_ids[a]);
      }
      for (const std::int32_t d : deps) rate_of.erase(d);
      if (ok) {
        ++warm_successes;
        for (const auto& [id, r] : changed) rate_of[id] = r;
      } else {
        // Fallback: traced cold solve, exactly as the fluid network
        // would.
        auto views = make_views(flows);
        std::vector<Rate> rates(flows.size());
        warm_solver.solve(capacity, views.data(), views.size(), rates.data(),
                          &state, ids.data());
        for (std::size_t f = 0; f < flows.size(); ++f)
          rate_of[ids[f]] = rates[f];
      }

      // Oracle: fresh cold solve of the new population.
      auto views = make_views(flows);
      std::vector<Rate> expected(flows.size());
      cold_solver.solve(capacity, views.data(), views.size(), expected.data());
      ASSERT_EQ(rate_of.size(), flows.size());
      for (std::size_t f = 0; f < flows.size(); ++f)
        EXPECT_EQ(rate_of[ids[f]], expected[f])
            << "instance " << instance << " event " << event << " flow id "
            << ids[f] << (two_link_only ? " (bipartite trace)" : "");
    }
  }
  // The point of the test is the warm path: a solid share of the
  // deltas must take it (deep cascades legitimately fall back; these
  // dense random instances cascade far more than cluster traffic).
  EXPECT_GT(warm_successes, 400);
}

// ------------------------------------------------- deep-cone deltas
// Deltas whose divergence round is at (or near) the very start of the
// recorded trace: the historical prefix policy must undo essentially
// the whole trace and hits its decline cap, while the cone policy
// splices the rounds outside the delta's dependency cone straight from
// the record and must still match a cold solve bit for bit.

TEST(MaxMinDifferential, ConeSurvivesEarlyFixedDeparture) {
  MaxMinSolver solver;
  MaxMinSolver cold_solver;
  // Link 0 is a tiny dedicated bottleneck: its flow fixes in round 0,
  // so departing it diverges every later round under the prefix undo.
  std::vector<Rate> capacity{1.0};
  std::vector<FlowDemand> flows{flow({0})};
  for (std::int32_t l = 1; l <= 20; ++l) {
    capacity.push_back(100.0);
    flows.push_back(flow({l}));
    flows.push_back(flow({l}));
  }
  std::vector<std::int32_t> ids(flows.size());
  for (std::size_t f = 0; f < ids.size(); ++f)
    ids[f] = static_cast<std::int32_t>(f);
  std::vector<FlowDemandView> views;
  for (const auto& d : flows)
    views.push_back(FlowDemandView{
        d.links.data(), static_cast<std::int32_t>(d.links.size()), d.cap});
  MaxMinWarmState prefix_state;
  std::vector<Rate> rates(flows.size());
  solver.solve(capacity, views.data(), views.size(), rates.data(),
               &prefix_state, ids.data());
  MaxMinWarmState cone_state = prefix_state;

  const std::int32_t departing = 0;
  std::vector<std::pair<std::int32_t, Rate>> changed;
  EXPECT_FALSE(solver.solve_warm(capacity, prefix_state, nullptr, 0,
                                 &departing, 1, changed, WarmMode::kPrefix));
  changed.clear();
  ASSERT_TRUE(solver.solve_warm(capacity, cone_state, nullptr, 0, &departing,
                                1, changed, WarmMode::kCone));

  std::map<std::int32_t, Rate> rate_of;
  for (std::size_t f = 1; f < flows.size(); ++f) rate_of[ids[f]] = rates[f];
  for (const auto& [id, r] : changed) rate_of[id] = r;
  std::vector<Rate> expected(flows.size() - 1);
  cold_solver.solve(capacity, views.data() + 1, views.size() - 1,
                    expected.data());
  for (std::size_t f = 1; f < flows.size(); ++f)
    EXPECT_EQ(rate_of[ids[f]], expected[f - 1]) << "flow id " << ids[f];
}

// Randomized deep-cone battery: every instance plants an early-fixed
// flow on a private tiny link, loads half the population with binding
// caps (whose early cap rounds used to cascade the prefix undo), and
// replays merge-then-depart sequences — an arrival bridging two link
// groups, departed again two events later.  The cone policy must take
// every delta (it has no trace-fraction decline) and reproduce a cold
// solve of the new population bit for bit.

TEST(MaxMinDifferential, ConeDeepCascadesMatchColdBitwise) {
  Rng rng(0x51CEu);
  MaxMinSolver warm_solver;
  MaxMinSolver cold_solver;
  for (int instance = 0; instance < 100; ++instance) {
    const int num_links = static_cast<int>(rng.uniform_int(6, 30));
    std::vector<Rate> capacity{rng.uniform(0.5, 2.0)};  // the early link
    for (int l = 1; l < num_links; ++l)
      capacity.push_back(rng.bernoulli(0.4) ? 100.0 : rng.uniform(50.0, 200.0));

    std::vector<FlowDemand> flows{flow({0})};  // fixes in round 0
    std::vector<std::int32_t> ids{0};
    std::int32_t next_id = 1;
    const auto random_flow = [&] {
      FlowDemand d;
      const int route_len = static_cast<int>(rng.uniform_int(1, 3));
      for (int i = 0; i < route_len; ++i) {
        const auto link =
            static_cast<std::int32_t>(rng.uniform_int(1, num_links - 1));
        if (std::find(d.links.begin(), d.links.end(), link) == d.links.end())
          d.links.push_back(link);
      }
      if (rng.bernoulli(0.5)) d.cap = rng.uniform(0.5, 30.0);  // binding-ish
      return d;
    };
    const int num_flows = static_cast<int>(rng.uniform_int(20, 60));
    for (int f = 0; f < num_flows; ++f) {
      flows.push_back(random_flow());
      ids.push_back(next_id++);
    }

    const auto make_views = [&](const std::vector<FlowDemand>& population) {
      std::vector<FlowDemandView> views;
      for (const auto& d : population)
        views.push_back(FlowDemandView{
            d.links.data(), static_cast<std::int32_t>(d.links.size()), d.cap});
      return views;
    };

    MaxMinWarmState state;
    std::map<std::int32_t, Rate> rate_of;
    {
      auto views = make_views(flows);
      std::vector<Rate> rates(flows.size());
      warm_solver.solve(capacity, views.data(), views.size(), rates.data(),
                        &state, ids.data());
      for (std::size_t f = 0; f < flows.size(); ++f)
        rate_of[ids[f]] = rates[f];
    }

    std::vector<std::pair<std::int32_t, Rate>> changed;
    std::int32_t bridge_id = -1;  // merge-then-depart in flight
    for (int event = 0; event < 6; ++event) {
      std::vector<std::int32_t> deps;
      std::vector<FlowDemand> arriving;
      std::vector<std::int32_t> arriving_ids;
      if (event == 0) {
        deps.push_back(0);  // the early-fixed flow: deepest cascade
      } else if (bridge_id >= 0 && event % 2 == 0) {
        deps.push_back(bridge_id);  // depart the bridge two events later
        bridge_id = -1;
      } else {
        // Arrival bridging two random links ("merge"), possibly capped.
        FlowDemand d;
        d.links.push_back(
            static_cast<std::int32_t>(rng.uniform_int(1, num_links - 1)));
        auto other =
            static_cast<std::int32_t>(rng.uniform_int(1, num_links - 1));
        if (other == d.links.front()) other = 1 + other % (num_links - 1);
        d.links.push_back(other);
        if (rng.bernoulli(0.5)) d.cap = rng.uniform(0.5, 30.0);
        arriving.push_back(std::move(d));
        arriving_ids.push_back(next_id);
        bridge_id = next_id++;
      }

      for (const std::int32_t dep : deps) {
        const auto it = std::find(ids.begin(), ids.end(), dep);
        ASSERT_NE(it, ids.end());
        const auto at = static_cast<std::size_t>(it - ids.begin());
        flows.erase(flows.begin() + static_cast<std::ptrdiff_t>(at));
        ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(at));
        rate_of.erase(dep);
      }
      std::vector<FlowArrival> arrivals;
      for (std::size_t a = 0; a < arriving.size(); ++a)
        arrivals.push_back(FlowArrival{
            arriving_ids[a], arriving[a].links.data(),
            static_cast<std::int32_t>(arriving[a].links.size()),
            arriving[a].cap});

      changed.clear();
      ASSERT_TRUE(warm_solver.solve_warm(
          capacity, state, arrivals.data(), arrivals.size(), deps.data(),
          deps.size(), changed, WarmMode::kCone))
          << "instance " << instance << " event " << event;
      for (std::size_t a = 0; a < arriving.size(); ++a) {
        flows.push_back(std::move(arriving[a]));
        ids.push_back(arriving_ids[a]);
      }
      for (const auto& [id, r] : changed) rate_of[id] = r;

      auto views = make_views(flows);
      std::vector<Rate> expected(flows.size());
      cold_solver.solve(capacity, views.data(), views.size(), expected.data());
      ASSERT_EQ(rate_of.size(), flows.size());
      for (std::size_t f = 0; f < flows.size(); ++f)
        EXPECT_EQ(rate_of[ids[f]], expected[f])
            << "instance " << instance << " event " << event << " flow id "
            << ids[f];
    }
  }
}

// The seed solver's bottleneck test read remaining/active while the
// same pass mutated them, so which flows counted as bottlenecked could
// depend on flow index order.  The snapshot fix makes the result a
// function of the instance only: permuting flows must permute rates.
TEST(MaxMinDifferential, ReferenceIsFlowOrderIndependent) {
  Rng rng(0x0BDE);
  for (int instance = 0; instance < 50; ++instance) {
    const int num_links = static_cast<int>(rng.uniform_int(2, 10));
    const int num_flows = static_cast<int>(rng.uniform_int(2, 40));
    std::vector<Rate> capacity;
    for (int l = 0; l < num_links; ++l)
      capacity.push_back(rng.bernoulli(0.5) ? 100.0 : rng.uniform(5.0, 300.0));
    std::vector<FlowDemand> flows;
    for (int f = 0; f < num_flows; ++f) {
      FlowDemand d;
      const int route_len = static_cast<int>(rng.uniform_int(1, 3));
      for (int i = 0; i < route_len; ++i) {
        const auto link =
            static_cast<std::int32_t>(rng.uniform_int(0, num_links - 1));
        if (std::find(d.links.begin(), d.links.end(), link) == d.links.end())
          d.links.push_back(link);
      }
      if (rng.bernoulli(0.3)) d.cap = rng.uniform(1.0, 150.0);
      flows.push_back(std::move(d));
    }

    // Reverse permutation: rates must follow their flows.
    std::vector<FlowDemand> reversed(flows.rbegin(), flows.rend());
    const auto forward = maxmin_fair_rates_reference(capacity, flows);
    const auto backward = maxmin_fair_rates_reference(capacity, reversed);
    for (std::size_t f = 0; f < flows.size(); ++f) {
      const double a = forward[f];
      const double b = backward[flows.size() - 1 - f];
      const double scale = std::max({1.0, a, b});
      EXPECT_NEAR(a, b, 1e-9 * scale) << "instance " << instance;
    }
  }
}

}  // namespace
}  // namespace rats
