// Unit and property tests for 1-D block redistribution, including the
// paper's Table I communication matrix.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "redist/block_redistribution.hpp"
#include "redist/estimate.hpp"

namespace rats {
namespace {

std::vector<NodeId> nodes(std::initializer_list<NodeId> ids) { return ids; }

// ------------------------------------------------------------ overlap

TEST(BlockOverlap, IdentityDistribution) {
  EXPECT_DOUBLE_EQ(block_overlap(100, 4, 2, 4, 2), 25.0);
  EXPECT_DOUBLE_EQ(block_overlap(100, 4, 2, 4, 3), 0.0);
}

TEST(BlockOverlap, RejectsBadRanks) {
  EXPECT_THROW(block_overlap(100, 4, 4, 4, 0), Error);
  EXPECT_THROW(block_overlap(100, 0, 0, 4, 0), Error);
}

// The exact communication matrix of Table I: 10 units of data, p = 4
// senders, q = 5 receivers.
TEST(Redistribution, TableOneMatrix) {
  const auto r = Redistribution::plan(10.0, nodes({0, 1, 2, 3}),
                                      nodes({4, 5, 6, 7, 8}));
  const auto m = r.matrix();
  const std::vector<std::vector<double>> expected = {
      {2.0, 0.5, 0.0, 0.0, 0.0},
      {0.0, 1.5, 1.0, 0.0, 0.0},
      {0.0, 0.0, 1.0, 1.5, 0.0},
      {0.0, 0.0, 0.0, 0.5, 2.0},
  };
  ASSERT_EQ(m.size(), 4u);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 5; ++j)
      EXPECT_NEAR(m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                  expected[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)],
                  1e-12)
          << "entry (" << i << "," << j << ")";
}

TEST(Redistribution, DisjointSetsHaveNoSelfBytes) {
  const auto r = Redistribution::plan(10.0, nodes({0, 1, 2, 3}),
                                      nodes({4, 5, 6, 7, 8}));
  EXPECT_DOUBLE_EQ(r.self_bytes(), 0.0);
  EXPECT_NEAR(r.remote_bytes(), 10.0, 1e-12);
  // Block overlap yields at most p + q - 1 transfers.
  EXPECT_LE(r.transfers().size(), 8u);
}

TEST(Redistribution, SameOrderedSetIsAllSelf) {
  const auto r =
      Redistribution::plan(1e6, nodes({3, 1, 4}), nodes({3, 1, 4}));
  EXPECT_TRUE(r.transfers().empty());
  EXPECT_DOUBLE_EQ(r.remote_bytes(), 0.0);
  EXPECT_NEAR(r.self_bytes(), 1e6, 1e-6);
}

TEST(Redistribution, SameSetDifferentOrderRecoversIdentity) {
  // The self-communication maximization permutes receivers back into
  // the senders' order, so no byte crosses the network.
  const auto r =
      Redistribution::plan(1e6, nodes({3, 1, 4}), nodes({4, 3, 1}));
  EXPECT_TRUE(r.transfers().empty());
  EXPECT_EQ(r.receiver_order(), nodes({3, 1, 4}));
}

TEST(Redistribution, WithoutMaximizationSamePermutedSetCommunicates) {
  const auto r = Redistribution::plan(1e6, nodes({3, 1, 4}),
                                      nodes({4, 3, 1}), false);
  EXPECT_FALSE(r.transfers().empty());
  EXPECT_GT(r.remote_bytes(), 0.0);
}

TEST(Redistribution, PartialOverlapKeepsSharedNodesLocal) {
  // Senders {0,1}, receivers {1,2}: node 1 appears on both sides and
  // should keep its half local.
  const auto r = Redistribution::plan(100.0, nodes({0, 1}), nodes({1, 2}));
  EXPECT_NEAR(r.self_bytes(), 50.0, 1e-9);
  EXPECT_NEAR(r.remote_bytes(), 50.0, 1e-9);
  // Receiver rank 1 (second half) is node 1.
  EXPECT_EQ(r.receiver_order()[1], 1);
}

TEST(Redistribution, GrowingAllocationOneToTwo) {
  const auto r = Redistribution::plan(100.0, nodes({0}), nodes({0, 1}));
  // Node 0 keeps its first half, sends second half to node 1.
  EXPECT_NEAR(r.self_bytes(), 50.0, 1e-9);
  ASSERT_EQ(r.transfers().size(), 1u);
  EXPECT_EQ(r.transfers()[0].src, 0);
  EXPECT_EQ(r.transfers()[0].dst, 1);
  EXPECT_NEAR(r.transfers()[0].bytes, 50.0, 1e-9);
}

TEST(Redistribution, ShrinkingAllocationTwoToOne) {
  const auto r = Redistribution::plan(100.0, nodes({0, 1}), nodes({1}));
  // Receiver is node 1: it keeps its half, gets node 0's half.
  EXPECT_NEAR(r.self_bytes(), 50.0, 1e-9);
  ASSERT_EQ(r.transfers().size(), 1u);
  EXPECT_EQ(r.transfers()[0].src, 0);
}

TEST(Redistribution, ZeroBytesYieldsNoTransfers) {
  const auto r = Redistribution::plan(0.0, nodes({0, 1}), nodes({2, 3}));
  EXPECT_TRUE(r.transfers().empty());
  EXPECT_DOUBLE_EQ(r.total_bytes(), 0.0);
}

TEST(Redistribution, RejectsEmptyRanks) {
  EXPECT_THROW(Redistribution::plan(10.0, {}, nodes({0})), Error);
  EXPECT_THROW(Redistribution::plan(10.0, nodes({0}), {}), Error);
  EXPECT_THROW(Redistribution::plan(-1.0, nodes({0}), nodes({1})), Error);
}

// --------------------------------------------------------- properties

class RedistConservation
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RedistConservation, BytesConservedAndMatrixConsistent) {
  const auto [p, q] = GetParam();
  const double total = 1e7;
  std::vector<NodeId> senders, receivers;
  for (int i = 0; i < p; ++i) senders.push_back(i);
  for (int j = 0; j < q; ++j) receivers.push_back(100 + j);  // disjoint
  const auto r = Redistribution::plan(total, senders, receivers);

  // All bytes cross the network (disjoint) and are conserved.
  EXPECT_NEAR(r.remote_bytes(), total, total * 1e-12);
  double sum = 0;
  for (const auto& t : r.transfers()) sum += t.bytes;
  EXPECT_NEAR(sum, total, total * 1e-12);

  // Matrix rows sum to the sender share, columns to the receiver share.
  const auto m = r.matrix();
  for (int i = 0; i < p; ++i) {
    const double row = std::accumulate(m[static_cast<std::size_t>(i)].begin(),
                                       m[static_cast<std::size_t>(i)].end(),
                                       0.0);
    EXPECT_NEAR(row, total / p, total * 1e-12);
  }
  for (int j = 0; j < q; ++j) {
    double col = 0;
    for (int i = 0; i < p; ++i)
      col += m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    EXPECT_NEAR(col, total / q, total * 1e-12);
  }

  // Interval overlap structure: at most p + q - 1 non-zero transfers.
  EXPECT_LE(r.transfers().size(), static_cast<std::size_t>(p + q - 1));
}

INSTANTIATE_TEST_SUITE_P(
    PQGrid, RedistConservation,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 16, 24),
                       ::testing::Values(1, 2, 3, 5, 8, 13, 24)));

class RedistSelfMaximization : public ::testing::TestWithParam<int> {};

TEST_P(RedistSelfMaximization, SharedSubsetKeepsDataLocal) {
  // Senders [0, n), receivers [0, n) shuffled: identity must be found.
  const int n = GetParam();
  std::vector<NodeId> senders, receivers;
  for (int i = 0; i < n; ++i) senders.push_back(i);
  for (int i = 0; i < n; ++i) receivers.push_back((i * 7 + 3) % n);
  const auto r = Redistribution::plan(1e6, senders, receivers);
  EXPECT_TRUE(r.transfers().empty()) << "n=" << n;
  EXPECT_EQ(r.receiver_order(), senders);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RedistSelfMaximization,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 20, 47));

// ----------------------------------------------------------- estimate

TEST(Estimate, ZeroWhenNoNetworkTraffic) {
  const Cluster c = Cluster::flat("t", 4, 1e9, 100e-6, 125e6);
  EXPECT_DOUBLE_EQ(
      estimate_redistribution_time(c, 1e6, nodes({0, 1}), nodes({0, 1})),
      0.0);
}

TEST(Estimate, SingleTransferMatchesLatencyPlusSerialization) {
  const Cluster c = Cluster::flat("t", 4, 1e9, 100e-6, 125e6);
  // 1 -> 2 processors: 62.5 MB cross the NIC at 125 MB/s.
  const Seconds t =
      estimate_redistribution_time(c, 125e6, nodes({0}), nodes({0, 1}));
  EXPECT_NEAR(t, 2e-4 + 0.5, 1e-9);
}

TEST(Estimate, BoundedByMostLoadedEndpoint) {
  const Cluster c = Cluster::flat("t", 8, 1e9, 100e-6, 125e6);
  // 1 sender scatters to 4 disjoint receivers: sender NIC carries all.
  const Seconds t = estimate_redistribution_time(c, 125e6, nodes({0}),
                                                 nodes({1, 2, 3, 4}));
  EXPECT_NEAR(t, 2e-4 + 1.0, 1e-9);
}

TEST(Estimate, AccountsForCabinetUplinks) {
  const Cluster c = Cluster::hierarchical("h", 2, 2, 1e9, 100e-6, 125e6,
                                          100e-6, 125e6);
  // Both nodes of cabinet 0 send half of 250 MB to cabinet 1: every
  // byte crosses the shared uplink -> uplink serialization dominates.
  const Seconds t = estimate_redistribution_time(c, 250e6, nodes({0, 1}),
                                                 nodes({2, 3}));
  EXPECT_NEAR(t, 4e-4 + 2.0, 1e-9);
}

TEST(Estimate, ScalesLinearlyWithVolume) {
  const Cluster c = Cluster::flat("t", 4, 1e9, 100e-6, 125e6);
  const Seconds t1 =
      estimate_redistribution_time(c, 1e6, nodes({0, 1}), nodes({2, 3}));
  const Seconds t2 =
      estimate_redistribution_time(c, 2e6, nodes({0, 1}), nodes({2, 3}));
  EXPECT_NEAR(t2 - 2e-4, 2.0 * (t1 - 2e-4), 1e-9);
}

// --------------------------------------------------------- RedistPlanner

void expect_same_plan(const Redistribution& a, const Redistribution& b) {
  EXPECT_EQ(a.self_bytes(), b.self_bytes());
  EXPECT_EQ(a.remote_bytes(), b.remote_bytes());
  EXPECT_EQ(a.receiver_order(), b.receiver_order());
  ASSERT_EQ(a.transfers().size(), b.transfers().size());
  for (std::size_t i = 0; i < a.transfers().size(); ++i) {
    EXPECT_EQ(a.transfers()[i].src, b.transfers()[i].src);
    EXPECT_EQ(a.transfers()[i].dst, b.transfers()[i].dst);
    EXPECT_EQ(a.transfers()[i].bytes, b.transfers()[i].bytes);
  }
}

TEST(RedistPlanner, MatchesTheStaticPlanner) {
  RedistPlanner planner;
  // Disjoint, overlapping and identical sets, self-matching on and off.
  const std::vector<std::pair<std::vector<NodeId>, std::vector<NodeId>>> cases =
      {{nodes({0, 1, 2}), nodes({3, 4})},
       {nodes({0, 1, 2, 3}), nodes({2, 3, 4})},
       {nodes({3, 1, 4}), nodes({4, 3, 1})},
       {nodes({5}), nodes({5, 6, 7})}};
  for (const auto& [senders, receivers] : cases) {
    for (bool maximize : {true, false}) {
      expect_same_plan(planner.plan(1e7, senders, receivers, maximize),
                       Redistribution::plan(1e7, senders, receivers, maximize));
    }
  }
}

TEST(RedistPlanner, CachesRepeatedRequests) {
  RedistPlanner planner;
  const auto senders = nodes({0, 1, 2});
  const auto receivers = nodes({2, 3});
  planner.plan(1e6, senders, receivers);
  EXPECT_EQ(planner.misses(), 1u);
  const Redistribution& again = planner.plan(1e6, senders, receivers);
  EXPECT_EQ(planner.hits(), 1u);
  EXPECT_EQ(planner.misses(), 1u);
  expect_same_plan(again, Redistribution::plan(1e6, senders, receivers));
  // A different volume, rank order or flag is a different plan.
  planner.plan(2e6, senders, receivers);
  planner.plan(1e6, receivers, senders);
  planner.plan(1e6, senders, receivers, /*maximize_self=*/false);
  EXPECT_EQ(planner.misses(), 4u);
  EXPECT_EQ(planner.cache_size(), 4u);
}

TEST(RedistPlanner, GeometryKeyedEntriesRescaleAcrossVolumes) {
  // Disjoint sets, equal-size sets and maximize_self=false have
  // volume-independent plan structure: one cache entry serves every
  // byte volume, rescaled bitwise to what a fresh plan computes.
  RedistPlanner planner;
  const std::vector<std::tuple<std::vector<NodeId>, std::vector<NodeId>, bool>>
      cases = {{nodes({0, 1, 2}), nodes({3, 4}), true},       // disjoint
               {nodes({0, 1, 2}), nodes({5, 6, 7, 8}), true}, // disjoint
               {nodes({3, 1, 4}), nodes({4, 3, 1}), true},    // p == q, shared
               {nodes({0, 1, 2, 3}), nodes({2, 3, 4}), false}};  // no matching
  for (const auto& [senders, receivers, maximize] : cases) {
    const auto misses_before = planner.misses();
    for (const Bytes volume : {1e6, 3.5e7, 123456.0, 1e9, 7.0, 0.0})
      expect_same_plan(
          planner.plan(volume, senders, receivers, maximize),
          Redistribution::plan(volume, senders, receivers, maximize));
    // Volume 0 is its own class (empty plan, unpermuted receiver
    // order); every nonzero volume shares one geometry entry.
    EXPECT_LE(planner.misses() - misses_before, 2u);
  }
}

TEST(RedistPlanner, RescaleMatchesFreshPlansOnRandomGeometries) {
  RedistPlanner planner;
  Rng rng(0x9E0Du);
  for (int instance = 0; instance < 300; ++instance) {
    const int p = static_cast<int>(rng.uniform_int(1, 12));
    const int q = static_cast<int>(rng.uniform_int(1, 12));
    const bool disjoint = rng.bernoulli(0.5);
    std::vector<NodeId> senders, receivers;
    for (int i = 0; i < p; ++i) senders.push_back(i);
    for (int j = 0; j < q; ++j)
      receivers.push_back(disjoint ? p + j : j);
    const bool maximize = rng.bernoulli(0.7);
    const Bytes volume = rng.bernoulli(0.2)
                             ? static_cast<Bytes>(rng.uniform_int(0, 3))
                             : rng.uniform(1.0, 1e9);
    expect_same_plan(planner.plan(volume, senders, receivers, maximize),
                     Redistribution::plan(volume, senders, receivers, maximize));
  }
}

TEST(RedistPlanner, EvictionKeepsTheCacheBounded) {
  RedistPlanner planner(8);
  for (int i = 0; i < 100; ++i)
    planner.plan(1e6 + i, nodes({0, 1}), nodes({2, 3}));
  EXPECT_LE(planner.cache_size(), 8u);
  // Still correct after heavy eviction.
  expect_same_plan(planner.plan(42.0, nodes({0, 1}), nodes({2, 3})),
                   Redistribution::plan(42.0, nodes({0, 1}), nodes({2, 3})));
}

}  // namespace
}  // namespace rats
