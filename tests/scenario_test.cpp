// Unit tests for the declarative scenario engine (src/scenario):
// parse -> emit -> parse round-tripping, line-numbered validation
// errors, spec resolution (platforms incl. heterogeneous cabinets,
// workloads, algorithm presets) and the kind registry.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "scenario/parser.hpp"
#include "scenario/registry.hpp"

namespace rats::scenario {
namespace {

/// Expects parsing to fail and the message to carry both the expected
/// line number prefix and a fragment naming the problem.
void expect_parse_error(const std::string& text, int line,
                        const std::string& fragment) {
  try {
    parse_scenario_string(text, "spec.rats");
    FAIL() << "expected a parse error mentioning '" << fragment << "'";
  } catch (const Error& e) {
    const std::string what = e.what();
    const std::string prefix = "spec.rats:" + std::to_string(line) + ":";
    EXPECT_NE(what.find(prefix), std::string::npos)
        << "missing '" << prefix << "' in: " << what;
    EXPECT_NE(what.find(fragment), std::string::npos)
        << "missing '" << fragment << "' in: " << what;
  }
}

// ---- round-tripping ----------------------------------------------------

TEST(ScenarioRoundTrip, EveryRegistryKindIsByteStable) {
  for (const std::string& kind : kinds()) {
    const std::string once = emit_scenario(default_spec(kind));
    const ScenarioSpec reparsed = parse_scenario_string(once, kind);
    const std::string twice = emit_scenario(reparsed);
    EXPECT_EQ(once, twice) << "emit/parse/emit drifted for kind " << kind;
  }
}

TEST(ScenarioRoundTrip, CustomEverythingIsByteStable) {
  ScenarioSpec spec;
  spec.name = "custom";
  spec.kind = "experiment";
  spec.platform.presets.clear();
  spec.platform.name = "hetero";
  spec.platform.cabinet_nodes = {4, 8, 6};
  spec.platform.gflops = 3.185;
  spec.platform.uplink_bandwidth_gbps = 2.5;
  spec.workload.source = WorkloadSpec::Source::Generate;
  spec.workload.generator = "irregular";
  spec.workload.count = 2;
  spec.workload.dag.num_tasks = 30;
  spec.workload.dag.width = 0.25;  // not exactly representable in decimal? it is
  spec.workload.dag.jump = 4;
  spec.workload.generate_seed = 7;
  spec.algorithms.preset.clear();
  AlgoSpec delta;
  delta.name = "my-delta";
  delta.options.kind = SchedulerKind::RatsDelta;
  delta.options.rats.mindelta = -0.3;
  delta.options.rats.maxdelta = 0.9;
  delta.options.secondary_sort = false;
  spec.algorithms.algos = {delta};
  spec.sweep.minrhos = {0.2, 1.0 / 3.0, 0.5};
  spec.output.csv = true;
  spec.output.gantt = true;

  const std::string once = emit_scenario(spec);
  const ScenarioSpec reparsed = parse_scenario_string(once);
  const std::string twice = emit_scenario(reparsed);
  EXPECT_EQ(once, twice);

  // And the reparsed spec carries the exact values (incl. the
  // non-decimal double through %.17g).
  EXPECT_EQ(reparsed.platform.cabinet_nodes, (std::vector<int>{4, 8, 6}));
  EXPECT_EQ(reparsed.workload.dag.jump, 4);
  EXPECT_EQ(reparsed.algorithms.algos.size(), 1u);
  EXPECT_EQ(reparsed.algorithms.algos[0].name, "my-delta");
  EXPECT_DOUBLE_EQ(reparsed.algorithms.algos[0].options.rats.mindelta, -0.3);
  EXPECT_FALSE(reparsed.algorithms.algos[0].options.secondary_sort);
  ASSERT_EQ(reparsed.sweep.minrhos.size(), 3u);
  EXPECT_EQ(reparsed.sweep.minrhos[1], 1.0 / 3.0);
  EXPECT_TRUE(reparsed.output.gantt);
}

TEST(ScenarioRoundTrip, CommentsAndSpacingNormalizeAway) {
  const std::string messy =
      "# leading comment\n"
      "[scenario]\n"
      "  kind   =   \"fig2\"   # trailing comment\n"
      "\n"
      "[platform]\n"
      "cluster = \"grillon\"\n";
  const ScenarioSpec spec = parse_scenario_string(messy);
  EXPECT_EQ(spec.kind, "fig2");
  EXPECT_EQ(spec.name, "fig2");  // defaults to the kind
  const std::string once = emit_scenario(spec);
  EXPECT_EQ(once, emit_scenario(parse_scenario_string(once)));
}

// ---- validation errors -------------------------------------------------

TEST(ScenarioErrors, UnknownKeyNamesSectionAndLine) {
  expect_parse_error(
      "[scenario]\nkind = \"fig2\"\n[workload]\nsample-kernel = 5\n", 4,
      "unknown key 'sample-kernel' in [workload]");
}

TEST(ScenarioErrors, UnknownSection) {
  expect_parse_error("[scenario]\nkind = \"fig2\"\n[platforms]\n", 3,
                     "unknown section [platforms]");
}

TEST(ScenarioErrors, WrongTypeIsRejected) {
  expect_parse_error("[scenario]\nkind = 2\n", 2, "'kind' must be a \"string\"");
  expect_parse_error(
      "[scenario]\nkind = \"fig2\"\n[workload]\nseed = \"42\"\n", 4,
      "'seed' must be a number");
  expect_parse_error(
      "[scenario]\nkind = \"fig2\"\n[workload]\nseed = 1.5\n", 4,
      "'seed' must be an integer");
  expect_parse_error(
      "[scenario]\nkind = \"fig2\"\n[output]\ncsv = 1\n", 4,
      "'csv' must be true or false");
  expect_parse_error(
      "[scenario]\nkind = \"fig2\"\n[sweep]\nminrho = [0.2, \"x\"]\n", 4,
      "'minrho' must contain only numbers");
}

TEST(ScenarioErrors, MissingScenarioSection) {
  expect_parse_error("[platform]\ncluster = \"grillon\"\n", 1,
                     "missing [scenario] section");
}

TEST(ScenarioErrors, MissingKind) {
  expect_parse_error("[scenario]\nname = \"x\"\n", 1, "missing 'kind'");
}

TEST(ScenarioErrors, DuplicateKeyPointsAtFirstUse) {
  expect_parse_error("[scenario]\nkind = \"fig2\"\nkind = \"fig3\"\n", 3,
                     "duplicate key 'kind'");
}

TEST(ScenarioErrors, DuplicateSection) {
  expect_parse_error("[scenario]\nkind = \"fig2\"\n[output]\n[output]\n", 4,
                     "duplicate section [output]");
}

TEST(ScenarioErrors, MalformedSyntax) {
  expect_parse_error("[scenario\n", 1, "does not end with ']'");
  expect_parse_error("kind = \"fig2\"\n", 1, "before any [section]");
  expect_parse_error("[scenario]\nkind\n", 2, "expected 'key = value'");
  expect_parse_error("[scenario]\nkind = \"fig2\n", 2, "unterminated string");
  expect_parse_error("[scenario]\nkind = fig2\n", 2, "cannot parse value");
}

TEST(ScenarioErrors, PresetAndExplicitAlgorithmsConflict) {
  expect_parse_error(
      "[scenario]\nkind = \"fig2\"\n[algorithms]\npreset = \"naive\"\n"
      "[algorithm]\nkind = \"hcpa\"\n",
      3, "conflicts with explicit [algorithm]");
}

TEST(ScenarioErrors, NonPositivePlatformNumbers) {
  expect_parse_error(
      "[scenario]\nkind = \"fig2\"\n[platform]\nnodes = 4\n"
      "bandwidth-gbps = 0\n",
      5, "'bandwidth-gbps' must be positive");
  expect_parse_error(
      "[scenario]\nkind = \"fig2\"\n[platform]\nnodes = 4\n"
      "latency-us = -100\n",
      5, "'latency-us' must be >= 0");
  expect_parse_error(
      "[scenario]\nkind = \"fig2\"\n[platform]\ncabinets = [2, 2]\n"
      "uplink-bandwidth-gbps = -1\n",
      5, "'uplink-bandwidth-gbps' must be positive");
}

TEST(ScenarioErrors, SweepKindValidation) {
  // No [sweep] section at all.
  expect_parse_error(
      "[scenario]\nkind = \"sweep\"\n[platform]\ncluster = \"grillon\"\n", 1,
      "needs a [sweep] section");
  // A [sweep] section with nothing to sweep.
  expect_parse_error(
      "[scenario]\nkind = \"sweep\"\n[sweep]\nbase = \"delta\"\n", 3,
      "at least one non-empty grid");
  // An unknown base algorithm.
  expect_parse_error(
      "[scenario]\nkind = \"sweep\"\n[sweep]\nmindelta = [0]\n"
      "base = \"hcpa\"\n",
      5, "unknown sweep base 'hcpa' (expected delta or time-cost)");
  // A packing grid that is not boolean.
  expect_parse_error(
      "[scenario]\nkind = \"sweep\"\n[sweep]\npacking = [1, 0]\n", 4,
      "'packing' must contain only true/false");
  expect_parse_error(
      "[scenario]\nkind = \"sweep\"\n[sweep]\npacking = true\n", 4,
      "'packing' must be an array of booleans");
}

TEST(ScenarioRoundTrip, SweepAndOutputSectionsAreByteStable) {
  const std::string text =
      "[scenario]\nkind = \"sweep\"\nname = \"s\"\n"
      "[platform]\ncluster = \"grillon\"\n"
      "[workload]\nsource = \"family\"\nfamily = \"fft\"\n"
      "[sweep]\nbase = \"time-cost\"\nminrho = [0.2, 0.4]\n"
      "packing = [true, false]\n"
      "[output]\nreport-csv = \"out.csv\"\nreport-json = \"out.json\"\n"
      "trace = \"out.jsonl\"\n";
  const ScenarioSpec spec = parse_scenario_string(text);
  EXPECT_EQ(spec.sweep.base, "time-cost");
  EXPECT_EQ(spec.sweep.packings, (std::vector<bool>{true, false}));
  EXPECT_EQ(spec.output.report_csv, "out.csv");
  EXPECT_EQ(spec.output.report_json, "out.json");
  EXPECT_EQ(spec.output.trace, "out.jsonl");
  const std::string once = emit_scenario(spec);
  EXPECT_NE(once.find("base = \"time-cost\""), std::string::npos);
  EXPECT_NE(once.find("packing = [true, false]"), std::string::npos);
  EXPECT_NE(once.find("trace = \"out.jsonl\""), std::string::npos);
  EXPECT_EQ(once, emit_scenario(parse_scenario_string(once)));
}

TEST(ScenarioErrors, MixedPlatformForms) {
  expect_parse_error(
      "[scenario]\nkind = \"fig2\"\n[platform]\ncluster = \"grillon\"\n"
      "nodes = 8\n",
      5, "mixes named clusters with custom-cluster keys");
}

TEST(ScenarioErrors, UnknownKindListsRegistry) {
  ScenarioSpec spec = parse_scenario_string(
      "[scenario]\nkind = \"fig9\"\n[platform]\ncluster = \"grillon\"\n");
  try {
    run(spec);
    FAIL() << "expected unknown-kind error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown scenario kind 'fig9'"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("fig2"), std::string::npos);
  }
}

// ---- resolution --------------------------------------------------------

TEST(ScenarioResolve, HeterogeneousCabinets) {
  PlatformSpec p;
  p.name = "hetero";
  p.cabinet_nodes = {4, 8, 6};
  p.gflops = 3.0;
  const Cluster c = p.resolve_one();
  EXPECT_EQ(c.num_nodes(), 18);
  EXPECT_TRUE(c.hierarchical_topology());
  EXPECT_FALSE(c.flat_routes());
  EXPECT_EQ(c.cabinets(), 3);
  EXPECT_EQ(c.cabinet_of(0), 0);
  EXPECT_EQ(c.cabinet_of(3), 0);
  EXPECT_EQ(c.cabinet_of(4), 1);
  EXPECT_EQ(c.cabinet_of(11), 1);
  EXPECT_EQ(c.cabinet_of(12), 2);
  EXPECT_EQ(c.cabinet_of(17), 2);
  // Cross-cabinet routes take 4 links (nic up, cabinet up/down, nic
  // down); same-cabinet routes take 2.
  EXPECT_EQ(c.route(0, 5).size(), 4u);
  EXPECT_EQ(c.route(4, 11).size(), 2u);
  // One uplink pair per cabinet on top of the per-node NIC pairs.
  EXPECT_EQ(c.num_links(), 2 * 18 + 2 * 3);
}

TEST(ScenarioResolve, UniformCabinetListMatchesHierarchical) {
  PlatformSpec p;
  p.name = "uniform";
  p.cabinet_nodes = {8, 8};
  const Cluster c = p.resolve_one();
  EXPECT_EQ(c.num_nodes(), 16);
  EXPECT_EQ(c.cabinets(), 2);
  EXPECT_EQ(c.cabinet_of(7), 0);
  EXPECT_EQ(c.cabinet_of(8), 1);
}

TEST(ScenarioResolve, UnknownPresetThrows) {
  PlatformSpec p;
  p.presets = {"grilon"};
  EXPECT_THROW(p.resolve(), Error);
}

TEST(ScenarioResolve, MultiClusterNeedsMultiKind) {
  PlatformSpec p;
  p.presets = {"chti", "grillon"};
  EXPECT_EQ(p.resolve().size(), 2u);
  EXPECT_THROW(p.resolve_one(), Error);
}

TEST(ScenarioResolve, GeneratedWorkloadIsDeterministic) {
  WorkloadSpec w;
  w.source = WorkloadSpec::Source::Generate;
  w.generator = "fft";
  w.fft_k = 4;
  w.count = 2;
  const auto a = w.resolve();
  const auto b = w.resolve();
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].name, "fft/s0");
  EXPECT_EQ(a[0].graph.num_tasks(), 15);  // 2k-1 + k log2 k for k=4
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(a[1].graph.num_edges(), b[1].graph.num_edges());
}

TEST(ScenarioResolve, QuietAndAnnouncedCapPickTheSameEntries) {
  WorkloadSpec w;
  w.corpus.samples_random = 0;
  w.corpus.samples_kernel = 2;
  w.cap_per_family = 1;
  std::string notes;
  const auto loud = w.resolve(&notes);
  const auto quiet = w.resolve();
  EXPECT_NE(notes.find("corpus:"), std::string::npos);
  EXPECT_NE(notes.find("capped"), std::string::npos);
  ASSERT_EQ(loud.size(), quiet.size());
  for (std::size_t i = 0; i < loud.size(); ++i)
    EXPECT_EQ(loud[i].name, quiet[i].name);
}

TEST(ScenarioResolve, AlgorithmPresets) {
  AlgorithmsSpec naive;
  EXPECT_EQ(naive.names(),
            (std::vector<std::string>{"HCPA", "delta", "time-cost"}));
  AlgorithmsSpec tuned;
  tuned.preset = "tuned";
  const auto fft = tuned.resolve(DagFamily::FFT, "grillon");
  const auto strassen = tuned.resolve(DagFamily::Strassen, "grillon");
  ASSERT_EQ(fft.size(), 3u);
  // Table IV: different families tune differently on the same cluster.
  EXPECT_NE(fft[1].options.rats.minrho, strassen[1].options.rats.minrho);
}

TEST(ScenarioRegistry, KindsAndTraceability) {
  const auto all = kinds();
  EXPECT_EQ(all.size(), 16u);
  EXPECT_TRUE(kind_supports_trace("fig2"));
  EXPECT_TRUE(kind_supports_trace("robustness"));
  EXPECT_TRUE(kind_supports_trace("experiment"));
  EXPECT_TRUE(kind_supports_trace("single"));
  EXPECT_TRUE(kind_supports_trace("sweep"));
  // Every kind that executes one run matrix traces through the same
  // session hook — sweeps and the tuned multi-cluster tables included.
  EXPECT_TRUE(kind_supports_trace("fig4"));
  EXPECT_TRUE(kind_supports_trace("table5"));
  // Static reports and table4's repeated tuning matrices do not trace.
  EXPECT_FALSE(kind_supports_trace("table1"));
  EXPECT_FALSE(kind_supports_trace("table4"));
  EXPECT_FALSE(kind_supports_trace("nope"));
  EXPECT_THROW(default_spec("nope"), Error);
}

// ---- [event] node-set selectors ----------------------------------------

/// Minimal experiment preamble shared by the selector tests.
const char* kEventPreamble =
    "[scenario]\n"
    "kind = \"experiment\"\n"
    "[workload]\n"
    "source = \"generate\"\n"
    "generator = \"layered\"\n"
    "count = 1\n"
    "tasks = 10\n";

TEST(ScenarioEvents, NodesListExpandsPerNodeInOrder) {
  const std::string text = std::string(kEventPreamble) +
                           "[platform]\n"
                           "nodes = 6\n"
                           "[event]\n"
                           "at = 1\n"
                           "kind = \"node-slowdown\"\n"
                           "nodes = [1, 3, 5]\n"
                           "factor = 0.5\n";
  const ScenarioSpec spec = parse_scenario_string(text);
  const auto& ev = spec.events.timeline.events;
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0].node, 1);
  EXPECT_EQ(ev[1].node, 3);
  EXPECT_EQ(ev[2].node, 5);
  for (const PlatformEvent& e : ev) {
    EXPECT_EQ(e.kind, PlatformEventKind::NodeSlowdown);
    EXPECT_EQ(e.at, 1.0);
    EXPECT_EQ(e.factor, 0.5);
    EXPECT_EQ(e.cabinet, -1);
  }
  // The sugar is resolved at parse time, so the emitted form (one
  // [event] per node) must round-trip byte-stable.
  const std::string emitted = emit_scenario(spec);
  EXPECT_EQ(emit_scenario(parse_scenario_string(emitted)), emitted);
}

TEST(ScenarioEvents, CabinetGroupExpandsToItsNodes) {
  const std::string text = std::string(kEventPreamble) +
                           "[platform]\n"
                           "name = \"twocab\"\n"
                           "cabinets = [2, 3]\n"
                           "[event]\n"
                           "at = 2\n"
                           "kind = \"node-fail\"\n"
                           "cabinet = 1\n"
                           "[event]\n"
                           "at = 4\n"
                           "kind = \"node-restart\"\n"
                           "cabinet = 1\n";
  const ScenarioSpec spec = parse_scenario_string(text);
  const auto& ev = spec.events.timeline.events;
  // Cabinet 1 of [2, 3] holds nodes 2, 3, 4; fail then restart.
  ASSERT_EQ(ev.size(), 6u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ev[i].kind, PlatformEventKind::NodeFail);
    EXPECT_EQ(ev[i].node, 2 + i);
    EXPECT_EQ(ev[i].cabinet, -1);
    EXPECT_EQ(ev[3 + i].kind, PlatformEventKind::NodeRestart);
    EXPECT_EQ(ev[3 + i].node, 2 + i);
  }
  const std::string emitted = emit_scenario(spec);
  EXPECT_EQ(emit_scenario(parse_scenario_string(emitted)), emitted);
}

TEST(ScenarioEvents, LinkCapacityCabinetKeepsItsUplinkMeaning) {
  // On a link-capacity event `cabinet` selects the cabinet's uplink
  // pair, not its nodes: no expansion happens.
  const std::string text = std::string(kEventPreamble) +
                           "[platform]\n"
                           "name = \"twocab\"\n"
                           "cabinets = [2, 3]\n"
                           "[event]\n"
                           "at = 1\n"
                           "kind = \"link-capacity\"\n"
                           "cabinet = 1\n"
                           "factor = 0.25\n";
  const ScenarioSpec spec = parse_scenario_string(text);
  ASSERT_EQ(spec.events.timeline.events.size(), 1u);
  EXPECT_EQ(spec.events.timeline.events[0].cabinet, 1);
  EXPECT_EQ(spec.events.timeline.events[0].node, -1);
}

TEST(ScenarioEvents, SelectorsAreMutuallyExclusive) {
  expect_parse_error(std::string(kEventPreamble) +
                         "[platform]\n"
                         "nodes = 4\n"
                         "[event]\n"
                         "at = 1\n"
                         "kind = \"node-fail\"\n"
                         "node = 1\n"
                         "nodes = [2, 3]\n",
                     12, "needs exactly one of 'node', 'nodes' or 'cabinet'");
  expect_parse_error(std::string(kEventPreamble) +
                         "[platform]\n"
                         "nodes = 4\n"
                         "[event]\n"
                         "at = 1\n"
                         "kind = \"node-fail\"\n",
                     12, "needs exactly one of 'node', 'nodes' or 'cabinet'");
  expect_parse_error(std::string(kEventPreamble) +
                         "[platform]\n"
                         "nodes = 4\n"
                         "[event]\n"
                         "at = 1\n"
                         "kind = \"node-slowdown\"\n"
                         "nodes = []\n"
                         "factor = 0.5\n",
                     13, "'nodes' must not be empty");
}

TEST(ScenarioEvents, CabinetGroupNeedsAHierarchicalPlatform) {
  expect_parse_error(std::string(kEventPreamble) +
                         "[platform]\n"
                         "nodes = 4\n"
                         "[event]\n"
                         "at = 1\n"
                         "kind = \"node-fail\"\n"
                         "cabinet = 0\n",
                     10, "has a flat topology");
  expect_parse_error(std::string(kEventPreamble) +
                         "[platform]\n"
                         "name = \"twocab\"\n"
                         "cabinets = [2, 3]\n"
                         "[event]\n"
                         "at = 1\n"
                         "kind = \"node-fail\"\n"
                         "cabinet = 2\n",
                     11, "has 2 cabinets");
}

// ---- parser hardening ---------------------------------------------------

TEST(ScenarioErrors, NonFiniteNumbersAreRejected) {
  expect_parse_error("[scenario]\nkind = \"fig2\"\n[platform]\ngflops = nan\n",
                     4, "not finite");
  expect_parse_error("[scenario]\nkind = \"fig2\"\n[platform]\ngflops = inf\n",
                     4, "not finite");
  expect_parse_error(
      "[scenario]\nkind = \"fig2\"\n[platform]\ngflops = 1e999\n", 4,
      "not finite");
}

TEST(ScenarioErrors, EmptyCabinetListIsRejected) {
  expect_parse_error(
      "[scenario]\nkind = \"fig2\"\n[platform]\ncabinets = []\n", 4,
      "'cabinets' must not be empty");
}

TEST(ScenarioErrors, EmptySweepGridIsRejected) {
  expect_parse_error(
      "[scenario]\nkind = \"sweep\"\n[sweep]\nmindelta = []\n", 4,
      "grid must not be empty");
}

TEST(ScenarioErrors, FftKMustBeAPowerOfTwo) {
  expect_parse_error("[scenario]\nkind = \"fig2\"\n[workload]\n"
                     "source = \"generate\"\ngenerator = \"fft\"\n"
                     "fft-k = 3\n",
                     6, "power of two in [2, 16]");
}

}  // namespace
}  // namespace rats::scenario
