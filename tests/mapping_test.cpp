// Unit tests for the mapping step: baseline list scheduling and the
// RATS delta / time-cost redistribution-aware strategies.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "daggen/kernels.hpp"
#include "platform/grid5000.hpp"
#include "sched/mapping.hpp"
#include "sched/scheduler.hpp"

namespace rats {
namespace {

Cluster cluster8() { return Cluster::flat("map-test", 8, 1e9, 100e-6, 125e6); }

/// Two-task chain with a configurable allocation pair.
struct ChainFixture {
  TaskGraph g;
  ChainFixture(double alpha_parent = 0.05, double alpha_child = 0.05) {
    const TaskId a = g.add_task(Task{"parent", 16e6, 20e9, alpha_parent});
    const TaskId b = g.add_task(Task{"child", 16e6, 20e9, alpha_child});
    g.add_edge(a, b, 16e6 * kBytesPerElement);
  }
};

MappingOptions mode(MappingMode m) {
  MappingOptions o;
  o.mode = m;
  return o;
}

TEST(MappingBaseline, ProducesValidSchedule) {
  ChainFixture f;
  const Cluster c = cluster8();
  const Schedule s = map_tasks(f.g, c, {4, 6}, mode(MappingMode::Baseline));
  EXPECT_NO_THROW(s.validate(f.g, c));
  EXPECT_EQ(s.allocation(0), 4);
  EXPECT_EQ(s.allocation(1), 6);  // baseline never changes allocations
}

TEST(MappingBaseline, StartAfterPredecessorFinish) {
  ChainFixture f;
  const Cluster c = cluster8();
  const Schedule s = map_tasks(f.g, c, {4, 6}, mode(MappingMode::Baseline));
  EXPECT_GE(s.of(1).est_start, s.of(0).est_finish);
}

TEST(MappingBaseline, IndependentTasksUseDisjointProcessors) {
  TaskGraph g;
  g.add_task(Task{"a", 1e6, 10e9, 0.05});
  g.add_task(Task{"b", 1e6, 10e9, 0.05});
  const Cluster c = cluster8();
  const Schedule s = map_tasks(g, c, {4, 4}, mode(MappingMode::Baseline));
  std::set<NodeId> a(s.of(0).procs.begin(), s.of(0).procs.end());
  for (NodeId p : s.of(1).procs) EXPECT_FALSE(a.count(p));
  // Both can then run concurrently.
  EXPECT_DOUBLE_EQ(s.of(0).est_start, 0.0);
  EXPECT_DOUBLE_EQ(s.of(1).est_start, 0.0);
}

TEST(MappingBaseline, DoesNotChaseParentProcessors) {
  // The baseline mapping is redistribution-oblivious by design (the
  // decoupling the paper sets out to fix): it takes the earliest-free
  // processors, which on an otherwise idle cluster are the ones the
  // parent did NOT use — so the chain pays a redistribution that the
  // delta strategy (same allocation sizes, delta = 0) avoids for free.
  ChainFixture f;
  const Cluster c = cluster8();
  const Schedule base = map_tasks(f.g, c, {4, 4}, mode(MappingMode::Baseline));
  EXPECT_NE(base.of(0).procs, base.of(1).procs);
  const Schedule delta = map_tasks(f.g, c, {4, 4}, mode(MappingMode::Delta));
  EXPECT_EQ(delta.of(0).procs, delta.of(1).procs);
}

TEST(MappingRequirements, RejectsBadAllocationsAndParameters) {
  ChainFixture f;
  const Cluster c = cluster8();
  EXPECT_THROW(map_tasks(f.g, c, {4}, {}), Error);        // wrong size
  EXPECT_THROW(map_tasks(f.g, c, {0, 4}, {}), Error);     // np < 1
  EXPECT_THROW(map_tasks(f.g, c, {4, 99}, {}), Error);    // np > P
  MappingOptions o;
  o.mindelta = 0.5;  // must be negative
  EXPECT_THROW(map_tasks(f.g, c, {4, 4}, o), Error);
  o = MappingOptions{};
  o.minrho = 0.0;  // out of (0, 1]
  EXPECT_THROW(map_tasks(f.g, c, {4, 4}, o), Error);
}

// --------------------------------------------------------------- delta

TEST(MappingDelta, StretchesOntoParentWithinMaxdelta) {
  ChainFixture f;
  const Cluster c = cluster8();
  MappingOptions o = mode(MappingMode::Delta);
  o.maxdelta = 0.5;  // child np=4 may grow to 6
  const Schedule s = map_tasks(f.g, c, {6, 4}, o);
  EXPECT_EQ(s.of(1).procs, s.of(0).procs);  // adopted parent's 6 procs
  EXPECT_EQ(s.allocation(1), 6);
}

TEST(MappingDelta, RefusesStretchBeyondMaxdelta) {
  ChainFixture f;
  const Cluster c = cluster8();
  MappingOptions o = mode(MappingMode::Delta);
  o.maxdelta = 0.25;  // child np=4 may grow only to 5, parent has 6
  const Schedule s = map_tasks(f.g, c, {6, 4}, o);
  EXPECT_EQ(s.allocation(1), 4);  // kept original allocation
}

TEST(MappingDelta, PacksOntoSmallerParentWithinMindelta) {
  ChainFixture f;
  const Cluster c = cluster8();
  MappingOptions o = mode(MappingMode::Delta);
  o.mindelta = -0.5;  // child np=6 may shrink to 3; parent has 4
  const Schedule s = map_tasks(f.g, c, {4, 6}, o);
  EXPECT_EQ(s.of(1).procs, s.of(0).procs);
  EXPECT_EQ(s.allocation(1), 4);
}

TEST(MappingDelta, RefusesPackBeyondMindelta) {
  ChainFixture f;
  const Cluster c = cluster8();
  MappingOptions o = mode(MappingMode::Delta);
  o.mindelta = -0.25;  // child np=6 may shrink to 4.5 procs; parent has 4
  const Schedule s = map_tasks(f.g, c, {4, 6}, o);
  EXPECT_EQ(s.allocation(1), 6);
}

TEST(MappingDelta, ZeroDeltaAlwaysAdopted) {
  ChainFixture f;
  const Cluster c = cluster8();
  MappingOptions o = mode(MappingMode::Delta);
  o.maxdelta = 0.0;
  o.mindelta = 0.0;
  const Schedule s = map_tasks(f.g, c, {5, 5}, o);
  EXPECT_EQ(s.of(1).procs, s.of(0).procs);
}

TEST(MappingDelta, PrefersSmallestModification) {
  // Child (np=4) has parents with 5 and 8 processors: delta picks the
  // closest (5), not the biggest.
  TaskGraph g;
  const TaskId a = g.add_task(Task{"p5", 8e6, 10e9, 0.05});
  const TaskId b = g.add_task(Task{"p8", 8e6, 10e9, 0.05});
  const TaskId child = g.add_task(Task{"child", 8e6, 10e9, 0.05});
  g.add_edge(a, child, 64e6);
  g.add_edge(b, child, 64e6);
  const Cluster c = Cluster::flat("t", 16, 1e9, 100e-6, 125e6);
  MappingOptions o = mode(MappingMode::Delta);
  o.maxdelta = 1.0;
  const Schedule s = map_tasks(g, c, {5, 8, 4}, o);
  EXPECT_EQ(s.of(child).procs, s.of(a).procs);
}

TEST(MappingDelta, PacksWhenPackIsCloserThanStretch) {
  // Parents with 2 and 8 procs, child np=4: pack distance 2 < stretch 4.
  TaskGraph g;
  const TaskId a = g.add_task(Task{"p2", 8e6, 10e9, 0.05});
  const TaskId b = g.add_task(Task{"p8", 8e6, 10e9, 0.05});
  const TaskId child = g.add_task(Task{"child", 8e6, 10e9, 0.05});
  g.add_edge(a, child, 64e6);
  g.add_edge(b, child, 64e6);
  const Cluster c = Cluster::flat("t", 16, 1e9, 100e-6, 125e6);
  MappingOptions o = mode(MappingMode::Delta);
  o.maxdelta = 1.0;
  o.mindelta = -0.5;
  const Schedule s = map_tasks(g, c, {2, 8, 4}, o);
  EXPECT_EQ(s.of(child).procs, s.of(a).procs);
}

// ----------------------------------------------------------- time-cost

TEST(MappingTimeCost, StretchRequiresGoodWorkRatio) {
  // alpha = 0: work is constant in p, rho = 1 -> stretch allowed even
  // with minrho = 1.
  ChainFixture f(0.0, 0.0);
  const Cluster c = cluster8();
  MappingOptions o = mode(MappingMode::TimeCost);
  o.minrho = 1.0;
  const Schedule s = map_tasks(f.g, c, {6, 4}, o);
  EXPECT_EQ(s.of(1).procs, s.of(0).procs);
}

TEST(MappingTimeCost, StretchRejectedWhenRhoTooLow) {
  // Highly serial child: stretching wastes processors, rho collapses.
  ChainFixture f(0.0, 0.9);
  const Cluster c = cluster8();
  MappingOptions o = mode(MappingMode::TimeCost);
  o.minrho = 0.95;
  o.packing = false;
  const Schedule s = map_tasks(f.g, c, {8, 2}, o);
  EXPECT_EQ(s.allocation(1), 2);
}

TEST(MappingTimeCost, PackOnlyIfFinishNotWorse) {
  // Parent on 2 procs, child allocated 6.  Packing the child to 2
  // procs makes it much slower; since processors are otherwise free
  // the packed finish is worse, so packing must be refused.
  ChainFixture f(0.05, 0.0);
  const Cluster c = cluster8();
  MappingOptions o = mode(MappingMode::TimeCost);
  o.packing = true;
  const Schedule s = map_tasks(f.g, c, {2, 6}, o);
  EXPECT_EQ(s.allocation(1), 6);
}

TEST(MappingTimeCost, PackingDisabledKeepsAllocation) {
  ChainFixture f;
  const Cluster c = cluster8();
  MappingOptions o = mode(MappingMode::TimeCost);
  o.packing = false;
  const Schedule s = map_tasks(f.g, c, {4, 6}, o);
  EXPECT_EQ(s.allocation(1), 6);
}

TEST(MappingTimeCost, ValidScheduleOnKernels) {
  Rng rng(1);
  const TaskGraph g = generate_strassen_dag(rng);
  const Cluster c = grid5000::grillon();
  for (double minrho : {0.2, 0.5, 1.0}) {
    MappingOptions o = mode(MappingMode::TimeCost);
    o.minrho = minrho;
    Allocation alloc = allocate(g, c);
    const Schedule s = map_tasks(g, c, alloc, o);
    EXPECT_NO_THROW(s.validate(g, c));
  }
}

// ------------------------------------------------------- end-to-end

TEST(Scheduler, AllKindsProduceValidSchedules) {
  Rng rng(2);
  const TaskGraph g = generate_fft_dag(8, rng);
  const Cluster c = grid5000::chti();
  for (SchedulerKind kind :
       {SchedulerKind::Cpa, SchedulerKind::Mcpa, SchedulerKind::Hcpa,
        SchedulerKind::RatsDelta, SchedulerKind::RatsTimeCost}) {
    SchedulerOptions o;
    o.kind = kind;
    const Schedule s = build_schedule(g, c, o);
    EXPECT_NO_THROW(s.validate(g, c)) << to_string(kind);
    EXPECT_GT(s.estimated_makespan(), 0.0) << to_string(kind);
  }
}

TEST(Scheduler, NamesAreStable) {
  EXPECT_EQ(to_string(SchedulerKind::Hcpa), "HCPA");
  EXPECT_EQ(to_string(SchedulerKind::RatsDelta), "RATS-delta");
  EXPECT_EQ(to_string(SchedulerKind::RatsTimeCost), "RATS-time-cost");
  EXPECT_EQ(to_string(SchedulerKind::Cpa), "CPA");
  EXPECT_EQ(to_string(SchedulerKind::Mcpa), "MCPA");
}

TEST(Scheduler, DeltaWithZeroBoundsMatchesAllocationSizes) {
  // maxdelta = mindelta = 0 only allows exact-size adoption, so every
  // task keeps its step-one allocation size.
  Rng rng(3);
  const TaskGraph g = generate_fft_dag(4, rng);
  const Cluster c = grid5000::chti();
  SchedulerOptions o;
  o.kind = SchedulerKind::RatsDelta;
  o.rats.maxdelta = 0.0;
  o.rats.mindelta = 0.0;
  const Schedule s = build_schedule(g, c, o);
  const Allocation a = allocate(g, c);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_EQ(s.allocation(t), a[static_cast<std::size_t>(t)]) << t;
}

TEST(Scheduler, EstimatesAreCausallyOrdered) {
  Rng rng(4);
  const TaskGraph g = generate_strassen_dag(rng);
  const Cluster c = grid5000::grillon();
  for (SchedulerKind kind : {SchedulerKind::Hcpa, SchedulerKind::RatsDelta,
                             SchedulerKind::RatsTimeCost}) {
    SchedulerOptions o;
    o.kind = kind;
    const Schedule s = build_schedule(g, c, o);
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      EXPECT_LE(s.of(t).est_start, s.of(t).est_finish);
      for (TaskId pred : g.predecessors(t))
        EXPECT_GE(s.of(t).est_start, s.of(pred).est_finish - 1e-9)
            << to_string(kind);
    }
  }
}

}  // namespace
}  // namespace rats
