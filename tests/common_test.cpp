// Unit tests for the common substrate: RNG, statistics, tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace rats {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 5.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(99);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(2, 6);
    EXPECT_GE(x, 2);
    EXPECT_LE(x, 6);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit in 1000 draws
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent) {
  const Rng base(42);
  Rng a = base.split(1);
  Rng b = base.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsReproducible) {
  const Rng base(42);
  Rng a = base.split(17);
  Rng b = base.split(17);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(42);
  Rng b(42);
  (void)a.split(3);
  EXPECT_EQ(a(), b());
}

// ------------------------------------------------------------- stats

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.min(), 3.5);
  EXPECT_DOUBLE_EQ(acc.max(), 3.5);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> xs = {5.0, -1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
}

TEST(Percentile, RejectsEmptyAndBadQuantile) {
  EXPECT_THROW(percentile({}, 0.5), Error);
  EXPECT_THROW(percentile({1.0}, 1.5), Error);
}

TEST(Stats, MeanOfVector) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_THROW(geometric_mean({1.0, -1.0}), Error);
}

// ------------------------------------------------------------- table

TEST(Table, RendersAlignedText) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string text = t.to_text(0);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a"});
  t.add_row({"hello, \"world\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"hello, \"\"world\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundTripPlainCells) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Fmt, FormatsDigits) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

TEST(Fmt, FormatsPercent) { EXPECT_EQ(fmt_percent(0.125, 1), "12.5%"); }

// ------------------------------------------------------------- units

TEST(Units, GigabitInBytes) { EXPECT_DOUBLE_EQ(kGigabitPerSecond, 125e6); }

TEST(Units, ElementSize) { EXPECT_DOUBLE_EQ(kBytesPerElement, 8.0); }

// --------------------------------------------------------- RATS_REQUIRE

TEST(Error, RequireThrowsWithContext) {
  try {
    RATS_REQUIRE(1 == 2, "impossible arithmetic");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("impossible arithmetic"),
              std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(RATS_REQUIRE(true, "fine"));
}

// ------------------------------------------------------- json \u escapes

TEST(Json, UnicodeEscapeDecodesBmpScalars) {
  EXPECT_EQ(json::parse("\"\\u0041\"").text, "A");
  EXPECT_EQ(json::parse("\"\\u00e9\"").text, "\xC3\xA9");      // é
  EXPECT_EQ(json::parse("\"\\u20AC\"").text, "\xE2\x82\xAC");  // €
}

TEST(Json, SurrogatePairDecodesToFourByteUtf8) {
  // U+1F600 as \uD83D\uDE00 must come out as one 4-byte sequence, not
  // two UTF-8-encoded surrogate code points.
  EXPECT_EQ(json::parse("\"\\uD83D\\uDE00\"").text, "\xF0\x9F\x98\x80");
  EXPECT_EQ(json::parse("\"x\\uD800\\uDC00y\"").text,
            "x\xF0\x90\x80\x80y");  // U+10000, the pair-range floor
}

TEST(Json, LoneSurrogatesAreRejected) {
  EXPECT_THROW(json::parse("\"\\uD83D\""), Error);        // high, then EOS
  EXPECT_THROW(json::parse("\"\\uD83D tail\""), Error);   // high, no pair
  EXPECT_THROW(json::parse("\"\\uD83D\\u0041\""), Error); // high + non-low
  EXPECT_THROW(json::parse("\"\\uDE00\""), Error);        // unpaired low
}

}  // namespace
}  // namespace rats
