// Unit tests for the application DAG model and graph algorithms.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "daggen/random_dag.hpp"
#include "dag/graph_algorithms.hpp"
#include "dag/task_graph.hpp"

namespace rats {
namespace {

/// diamond:  a -> b, a -> c, b -> d, c -> d
TaskGraph diamond() {
  TaskGraph g;
  const TaskId a = g.add_task("a", 100, 2, 0.1);
  const TaskId b = g.add_task("b", 100, 2, 0.1);
  const TaskId c = g.add_task("c", 100, 2, 0.1);
  const TaskId d = g.add_task("d", 100, 2, 0.1);
  g.add_edge(a, b, 10);
  g.add_edge(a, c, 20);
  g.add_edge(b, d, 30);
  g.add_edge(c, d, 40);
  return g;
}

TEST(TaskGraph, AddTaskAssignsDenseIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_task("t0", 1, 1, 0), 0);
  EXPECT_EQ(g.add_task("t1", 1, 1, 0), 1);
  EXPECT_EQ(g.num_tasks(), 2);
}

TEST(TaskGraph, ConvenienceOverloadComputesFlops) {
  TaskGraph g;
  const TaskId t = g.add_task("t", 1000.0, 64.0, 0.2);
  EXPECT_DOUBLE_EQ(g.task(t).flops, 64000.0);
  EXPECT_DOUBLE_EQ(g.task(t).data_elems, 1000.0);
  EXPECT_DOUBLE_EQ(g.task(t).alpha, 0.2);
}

TEST(TaskGraph, RejectsBadTaskParameters) {
  TaskGraph g;
  EXPECT_THROW(g.add_task(Task{"x", -1, 10, 0.1}), Error);
  EXPECT_THROW(g.add_task(Task{"x", 1, -10, 0.1}), Error);
  EXPECT_THROW(g.add_task(Task{"x", 1, 10, 1.5}), Error);
}

TEST(TaskGraph, RejectsSelfLoop) {
  TaskGraph g;
  const TaskId a = g.add_task("a", 1, 1, 0);
  EXPECT_THROW(g.add_edge(a, a, 5), Error);
}

TEST(TaskGraph, RejectsOutOfRangeIds) {
  TaskGraph g;
  g.add_task("a", 1, 1, 0);
  EXPECT_THROW(g.add_edge(0, 5, 1), Error);
  EXPECT_THROW((void)g.task(3), Error);
  EXPECT_THROW((void)g.edge(0), Error);
}

TEST(TaskGraph, RejectsNegativeEdgeVolume) {
  TaskGraph g;
  const TaskId a = g.add_task("a", 1, 1, 0);
  const TaskId b = g.add_task("b", 1, 1, 0);
  EXPECT_THROW(g.add_edge(a, b, -1), Error);
}

TEST(TaskGraph, PredecessorsAndSuccessors) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.predecessors(3), (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(g.successors(0), (std::vector<TaskId>{1, 2}));
  EXPECT_TRUE(g.predecessors(0).empty());
  EXPECT_TRUE(g.successors(3).empty());
}

TEST(TaskGraph, EntryAndExitTasks) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.entry_tasks(), (std::vector<TaskId>{0}));
  EXPECT_EQ(g.exit_tasks(), (std::vector<TaskId>{3}));
}

TEST(TaskGraph, InputBytesAccumulate) {
  const TaskGraph g = diamond();
  EXPECT_DOUBLE_EQ(g.input_bytes(3), 70.0);
  EXPECT_DOUBLE_EQ(g.input_bytes(0), 0.0);
}

TEST(TaskGraph, ParallelEdgesAllowed) {
  TaskGraph g;
  const TaskId a = g.add_task("a", 1, 1, 0);
  const TaskId b = g.add_task("b", 1, 1, 0);
  g.add_edge(a, b, 5);
  g.add_edge(a, b, 7);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.input_bytes(b), 12.0);
}

TEST(TaskGraph, AcyclicDetection) {
  TaskGraph g;
  const TaskId a = g.add_task("a", 1, 1, 0);
  const TaskId b = g.add_task("b", 1, 1, 0);
  const TaskId c = g.add_task("c", 1, 1, 0);
  g.add_edge(a, b, 1);
  g.add_edge(b, c, 1);
  EXPECT_TRUE(g.is_acyclic());
  g.add_edge(c, a, 1);
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_THROW(g.validate(), Error);
}

TEST(TaskGraph, EmptyGraphInvalid) {
  TaskGraph g;
  EXPECT_THROW(g.validate(), Error);
}

TEST(TaskGraph, DotContainsAllNodesAndEdges) {
  const TaskGraph g = diamond();
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

// -------------------------------------------------------- algorithms

TEST(GraphAlgorithms, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), 4u);
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>(order[i])] = i;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_LT(pos[static_cast<std::size_t>(g.edge(e).src)],
              pos[static_cast<std::size_t>(g.edge(e).dst)]);
}

TEST(GraphAlgorithms, TopologicalOrderIsCanonical) {
  // Among simultaneously-ready tasks the smallest id pops first.
  const TaskGraph g = diamond();
  EXPECT_EQ(topological_order(g), (std::vector<TaskId>{0, 1, 2, 3}));
}

TEST(GraphAlgorithms, LevelsOfDiamond) {
  const TaskGraph g = diamond();
  EXPECT_EQ(task_levels(g), (std::vector<std::int32_t>{0, 1, 1, 2}));
}

TEST(GraphAlgorithms, LevelsAreLongestPathDepth) {
  // a -> b -> d and a -> d: d must land at level 2, not 1.
  TaskGraph g;
  const TaskId a = g.add_task("a", 1, 1, 0);
  const TaskId b = g.add_task("b", 1, 1, 0);
  const TaskId d = g.add_task("d", 1, 1, 0);
  g.add_edge(a, b, 1);
  g.add_edge(b, d, 1);
  g.add_edge(a, d, 1);
  EXPECT_EQ(task_levels(g), (std::vector<std::int32_t>{0, 1, 2}));
}

TEST(GraphAlgorithms, TasksByLevelGroups) {
  const TaskGraph g = diamond();
  const auto grouped = tasks_by_level(g);
  ASSERT_EQ(grouped.size(), 3u);
  EXPECT_EQ(grouped[0], (std::vector<TaskId>{0}));
  EXPECT_EQ(grouped[1], (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(grouped[2], (std::vector<TaskId>{3}));
}

TEST(GraphAlgorithms, BottomLevelsOfDiamond) {
  const TaskGraph g = diamond();
  // Unit node costs, edge costs = bytes.
  const auto bl = bottom_levels(
      g, [](TaskId) { return 1.0; },
      [&](EdgeId e) { return g.edge(e).bytes; });
  EXPECT_DOUBLE_EQ(bl[3], 1.0);
  EXPECT_DOUBLE_EQ(bl[1], 1.0 + 30.0 + 1.0);
  EXPECT_DOUBLE_EQ(bl[2], 1.0 + 40.0 + 1.0);
  EXPECT_DOUBLE_EQ(bl[0], 1.0 + 20.0 + 42.0);  // via c
}

TEST(GraphAlgorithms, TopLevelsOfDiamond) {
  const TaskGraph g = diamond();
  const auto tl = top_levels(
      g, [](TaskId) { return 1.0; },
      [&](EdgeId e) { return g.edge(e).bytes; });
  EXPECT_DOUBLE_EQ(tl[0], 0.0);
  EXPECT_DOUBLE_EQ(tl[1], 1.0 + 10.0);
  EXPECT_DOUBLE_EQ(tl[2], 1.0 + 20.0);
  EXPECT_DOUBLE_EQ(tl[3], 21.0 + 1.0 + 40.0);  // via c
}

TEST(GraphAlgorithms, CriticalPathOfDiamond) {
  const TaskGraph g = diamond();
  const auto cp = critical_path(
      g, [](TaskId) { return 1.0; },
      [&](EdgeId e) { return g.edge(e).bytes; });
  EXPECT_DOUBLE_EQ(cp.length, 63.0);
  EXPECT_EQ(cp.tasks, (std::vector<TaskId>{0, 2, 3}));
}

TEST(GraphAlgorithms, CriticalPathSingleTask) {
  TaskGraph g;
  g.add_task("only", 1, 1, 0);
  const auto cp = critical_path(
      g, [](TaskId) { return 5.0; }, [](EdgeId) { return 0.0; });
  EXPECT_DOUBLE_EQ(cp.length, 5.0);
  EXPECT_EQ(cp.tasks, (std::vector<TaskId>{0}));
}

TEST(GraphAlgorithms, CriticalPathZeroEdgeCosts) {
  const TaskGraph g = diamond();
  const auto cp = critical_path(
      g, [](TaskId) { return 2.0; }, [](EdgeId) { return 0.0; });
  EXPECT_DOUBLE_EQ(cp.length, 6.0);  // three tasks deep
  EXPECT_EQ(cp.tasks.size(), 3u);
}

TEST(GraphAlgorithms, TotalNodeCostSums) {
  const TaskGraph g = diamond();
  EXPECT_DOUBLE_EQ(total_node_cost(g, [](TaskId t) {
    return static_cast<double>(t + 1);
  }), 10.0);
}

TEST(GraphAlgorithms, BottomLevelDominatesSuccessors) {
  // Property: bl(t) >= bl(s) for every successor s (positive costs).
  const TaskGraph g = diamond();
  const auto bl = bottom_levels(
      g, [](TaskId) { return 3.0; },
      [&](EdgeId e) { return g.edge(e).bytes; });
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    for (TaskId s : g.successors(t))
      EXPECT_GT(bl[static_cast<std::size_t>(t)],
                bl[static_cast<std::size_t>(s)]);
}

// ---- incremental bottom levels ----------------------------------------

TEST(IncrementalBottomLevels, MatchesFullRecomputationBitwise) {
  // Random irregular DAGs, a long sequence of single-task cost bumps
  // (the CPA allocation pattern): after every bump the incrementally
  // maintained levels must equal a from-scratch recomputation bit for
  // bit.
  Rng rng(1234);
  for (int instance = 0; instance < 20; ++instance) {
    RandomDagParams params;
    params.num_tasks = 30 + 5 * instance;
    params.width = 0.4;
    params.density = 0.5;
    params.regularity = 0.5;
    params.jump = 2;
    const TaskGraph g = instance % 2 == 0 ? generate_irregular_dag(params, rng)
                                          : generate_layered_dag(params, rng);
    std::vector<double> cost(static_cast<std::size_t>(g.num_tasks()));
    for (auto& c : cost) c = 1.0 + rng.uniform();
    const auto node_cost = [&](TaskId t) {
      return cost[static_cast<std::size_t>(t)];
    };
    const auto edge_cost = [&](EdgeId e) {
      return 1e-3 * static_cast<double>(e % 7);
    };

    std::vector<double> incremental;
    bottom_levels_into(g, node_cost, edge_cost, incremental);
    BottomLevelDelta scratch;
    std::vector<double> full;
    for (int step = 0; step < 40; ++step) {
      const TaskId changed =
          static_cast<TaskId>(rng.uniform_int(0, g.num_tasks() - 1));
      cost[static_cast<std::size_t>(changed)] *= 0.9 + 0.2 * rng.uniform();
      bottom_levels_update(g, node_cost, edge_cost, incremental, changed,
                           scratch);
      bottom_levels_into(g, node_cost, edge_cost, full);
      ASSERT_EQ(full.size(), incremental.size());
      for (std::size_t i = 0; i < full.size(); ++i)
        ASSERT_EQ(full[i], incremental[i])
            << "instance " << instance << " step " << step << " task " << i;
    }
  }
}

TEST(IncrementalBottomLevels, CriticalPathSplitMatchesCombinedForm) {
  const TaskGraph g = diamond();
  const auto node_cost = [](TaskId t) { return 1.0 + t; };
  const auto edge_cost = [](EdgeId) { return 0.25; };
  std::vector<double> bl;
  CriticalPath combined;
  critical_path_into(g, node_cost, edge_cost, bl, combined);
  CriticalPath split;
  critical_path_from_levels(g, node_cost, edge_cost, bl, split);
  EXPECT_EQ(combined.length, split.length);
  EXPECT_EQ(combined.tasks, split.tasks);
}

}  // namespace
}  // namespace rats
