// Tests for the gzip trace sink (src/trace/gzip + the [output]
// trace-gzip wiring): bit-exact compress/decompress round trips, the
// streaming sink, spec grammar round trip, and the end-to-end property
// that a gzipped scenario trace inflates to exactly the bytes the
// plain sink writes — and still passes the replay checker without any
// flag (magic-based auto-detection).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "scenario/parser.hpp"
#include "scenario/registry.hpp"
#include "trace/gzip.hpp"
#include "trace/replay.hpp"

namespace rats {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const char* kTracedSingle =
    "[scenario]\n"
    "name = \"gzip-single\"\n"
    "kind = \"single\"\n"
    "[platform]\n"
    "name = \"mini\"\n"
    "nodes = 4\n"
    "[workload]\n"
    "source = \"generate\"\n"
    "generator = \"fft\"\n"
    "count = 1\n"
    "fft-k = 4\n"
    "[algorithm]\n"
    "name = \"HCPA\"\n"
    "kind = \"hcpa\"\n";

TEST(GzipTest, RoundTripIsBitExact) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  std::string payload = "trace line one\ntrace line two\n";
  payload.push_back('\0');  // binary-safe
  payload += std::string(100000, 'x');  // compressible bulk
  const std::string packed = gzip_compress(payload);
  EXPECT_TRUE(gzip_is_compressed(packed));
  EXPECT_LT(packed.size(), payload.size());
  EXPECT_EQ(gzip_decompress(packed), payload);

  EXPECT_FALSE(gzip_is_compressed(payload));
  EXPECT_FALSE(gzip_is_compressed(""));
  EXPECT_THROW(gzip_decompress("definitely not gzip"), Error);
}

TEST(GzipTest, StreamingSinkRoundTripsAcrossChunkBoundaries) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  const std::string payload(300000, 'y');
  std::ostringstream packed;
  {
    GzipOstream gz(packed);
    // Many small writes: the streambuf must deflate across buffer
    // boundaries, not just on one big chunk.
    for (std::size_t at = 0; at < payload.size(); at += 1234)
      gz.stream() << payload.substr(at, 1234);
    gz.finish();
  }
  EXPECT_TRUE(gzip_is_compressed(packed.str()));
  EXPECT_EQ(gzip_decompress(packed.str()), payload);
}

TEST(GzipTest, SpecKeyRoundTripsThroughEmit) {
  scenario::ScenarioSpec spec =
      scenario::parse_scenario_string(kTracedSingle, "<gzip>");
  EXPECT_FALSE(spec.output.trace_gzip);
  spec.output.trace_gzip = true;
  const std::string text = scenario::emit_scenario(spec);
  EXPECT_NE(text.find("trace-gzip = true"), std::string::npos);
  const scenario::ScenarioSpec reparsed =
      scenario::parse_scenario_string(text, "<gzip>");
  EXPECT_TRUE(reparsed.output.trace_gzip);
  EXPECT_EQ(scenario::emit_scenario(reparsed), text);
}

TEST(GzipTest, GzippedTraceInflatesToThePlainBytesAndReplays) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  scenario::ScenarioSpec spec =
      scenario::parse_scenario_string(kTracedSingle, "<gzip>");
  const std::string path = testing::TempDir() + "gzip_trace.jsonl.gz";
  spec.output.trace = path;
  spec.output.trace_gzip = true;
  scenario::run(spec);  // tiny report goes to stdout

  const std::string packed = read_file(path);
  ASSERT_TRUE(gzip_is_compressed(packed));
  // The decoder round trip is bit-exact: inflating yields the same
  // bytes the plain sink streams (the gzip header strips trace-gzip
  // from the canonical spec text, so even the embedded spec matches).
  EXPECT_EQ(gzip_decompress(packed), scenario::render_trace(spec, 1));

  // The replay checker auto-detects the magic and verifies as usual.
  const ReplayReport report = verify_trace(path, 1);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.runs, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rats
