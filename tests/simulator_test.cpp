// Unit tests for the discrete-event schedule simulator.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "daggen/kernels.hpp"
#include "platform/grid5000.hpp"
#include "sched/scheduler.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace rats {
namespace {

Cluster cluster4() { return Cluster::flat("sim-test", 4, 1e9, 100e-6, 125e6); }

Schedule place(std::vector<std::vector<NodeId>> procs) {
  Schedule s;
  std::int64_t seq = 0;
  for (auto& p : procs) {
    TaskPlacement tp;
    tp.procs = std::move(p);
    tp.seq = seq++;
    s.placements.push_back(std::move(tp));
  }
  return s;
}

// ---------------------------------------------------------- event queue

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.push(3.0, 30);
  q.push(1.0, 10);
  q.push(2.0, 20);
  EXPECT_EQ(q.pop(), 10);
  EXPECT_EQ(q.pop(), 20);
  EXPECT_EQ(q.pop(), 30);
}

TEST(EventQueue, SimultaneousEventsPopInInsertionOrder) {
  EventQueue<int> q;
  q.push(1.0, 1);
  q.push(1.0, 2);
  q.push(1.0, 3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(EventQueue, NextTimePeeks) {
  EventQueue<int> q;
  q.push(5.0, 1);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
  EXPECT_EQ(q.size(), 1u);
}

// ------------------------------------------------------------ simulator

TEST(Simulator, SingleTaskMakespanIsExecutionTime) {
  TaskGraph g;
  g.add_task(Task{"solo", 1e6, 4e9, 0.0});
  const Cluster c = cluster4();
  const Schedule s = place({{0, 1}});
  const auto r = simulate(g, s, c);
  // 4e9 flops on 2 x 1e9 flop/s, fully parallel -> 2 s.
  EXPECT_NEAR(r.makespan, 2.0, 1e-12);
  EXPECT_NEAR(r.total_work, 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.network_bytes, 0.0);
}

TEST(Simulator, ChainWithRedistributionMatchesHandComputation) {
  TaskGraph g;
  const TaskId a = g.add_task(Task{"a", 1e6, 1e9, 0.0});
  const TaskId b = g.add_task(Task{"b", 1e6, 1e9, 0.0});
  g.add_edge(a, b, 125e6);  // 125 MB
  const Cluster c = cluster4();
  // a on {0}, b on {1}: whole dataset crosses one NIC pair.
  const auto r = simulate(g, place({{0}, {1}}), c);
  // a: 1s; transfer: 2e-4 + 1s; b: 1s.
  EXPECT_NEAR(r.makespan, 1.0 + 2e-4 + 1.0 + 1.0, 1e-9);
  EXPECT_NEAR(r.network_bytes, 125e6, 1.0);
  const auto& tb = r.timeline[static_cast<std::size_t>(b)];
  EXPECT_NEAR(tb.data_ready, 2.0 + 2e-4, 1e-9);
  EXPECT_NEAR(tb.start, tb.data_ready, 1e-12);
}

TEST(Simulator, SameProcessorsNoRedistributionCost) {
  TaskGraph g;
  const TaskId a = g.add_task(Task{"a", 1e6, 1e9, 0.0});
  const TaskId b = g.add_task(Task{"b", 1e6, 1e9, 0.0});
  g.add_edge(a, b, 125e6);
  const Cluster c = cluster4();
  const auto r = simulate(g, place({{0, 1}, {0, 1}}), c);
  EXPECT_NEAR(r.makespan, 0.5 + 0.5, 1e-12);  // no transfer at all
  EXPECT_DOUBLE_EQ(r.network_bytes, 0.0);
}

TEST(Simulator, ContentionSlowsConcurrentRedistributions) {
  // Two independent producer->consumer pairs whose transfers share no
  // link run as fast as one; when they share the producer NIC they
  // take twice as long.
  TaskGraph g;
  const TaskId a = g.add_task(Task{"a", 1e6, 1e9, 0.0});
  const TaskId b1 = g.add_task(Task{"b1", 1e6, 1e9, 0.0});
  const TaskId b2 = g.add_task(Task{"b2", 1e6, 1e9, 0.0});
  g.add_edge(a, b1, 125e6);
  g.add_edge(a, b2, 125e6);
  const Cluster c = cluster4();
  const auto r = simulate(g, place({{0}, {1}, {2}}), c);
  // Producer 1s, then both 125MB flows share node 0's uplink: 2s, then
  // consumers 1s each (concurrently).
  EXPECT_NEAR(r.makespan, 1.0 + 2e-4 + 2.0 + 1.0, 1e-6);
}

TEST(Simulator, NoContentionModeUsesEstimates) {
  TaskGraph g;
  const TaskId a = g.add_task(Task{"a", 1e6, 1e9, 0.0});
  const TaskId b1 = g.add_task(Task{"b1", 1e6, 1e9, 0.0});
  const TaskId b2 = g.add_task(Task{"b2", 1e6, 1e9, 0.0});
  g.add_edge(a, b1, 125e6);
  g.add_edge(a, b2, 125e6);
  const Cluster c = cluster4();
  SimulatorOptions opt;
  opt.contention = false;
  const auto r = simulate(g, place({{0}, {1}, {2}}), c, opt);
  // Each estimate sees only its own redistribution... but both share
  // the producer NIC within one edge?  No: each edge is a separate
  // estimate of 1s; they overlap, so the makespan ignores the shared
  // NIC -> 1 + (2e-4 + 1) + 1.
  EXPECT_NEAR(r.makespan, 1.0 + 2e-4 + 1.0 + 1.0, 1e-6);
}

TEST(Simulator, ProcessorQueueSerializesTasks) {
  // Two independent tasks mapped to the same processor run in seq
  // order, not in parallel.
  TaskGraph g;
  g.add_task(Task{"a", 1e6, 1e9, 0.0});
  g.add_task(Task{"b", 1e6, 1e9, 0.0});
  const Cluster c = cluster4();
  const auto r = simulate(g, place({{0}, {0}}), c);
  EXPECT_NEAR(r.makespan, 2.0, 1e-12);
  EXPECT_NEAR(r.timeline[1].start, 1.0, 1e-12);
}

TEST(Simulator, SeqOrderIsRespectedEvenIfSuboptimal) {
  // Task 1 (short) is scheduled *after* task 0 (long) on the same
  // processor: the simulator must not reorder.
  TaskGraph g;
  g.add_task(Task{"long", 1e6, 4e9, 0.0});
  g.add_task(Task{"short", 1e6, 1e9, 0.0});
  const Cluster c = cluster4();
  Schedule s = place({{0}, {0}});
  const auto r = simulate(g, s, c);
  EXPECT_NEAR(r.timeline[1].start, 4.0, 1e-12);
}

TEST(Simulator, TimelineIsCausal) {
  Rng rng(1);
  const TaskGraph g = generate_strassen_dag(rng);
  const Cluster c = grid5000::grillon();
  SchedulerOptions o;
  o.kind = SchedulerKind::RatsTimeCost;
  const Schedule s = build_schedule(g, c, o);
  const auto r = simulate(g, s, c);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    const auto& timing = r.timeline[static_cast<std::size_t>(t)];
    EXPECT_LE(timing.data_ready, timing.start + 1e-12);
    EXPECT_LT(timing.start, timing.finish);
    for (TaskId pred : g.predecessors(t))
      EXPECT_GE(timing.start,
                r.timeline[static_cast<std::size_t>(pred)].finish - 1e-9);
  }
  EXPECT_GT(r.makespan, 0.0);
}

TEST(Simulator, WorkMatchesScheduleArea) {
  Rng rng(2);
  const TaskGraph g = generate_fft_dag(4, rng);
  const Cluster c = grid5000::chti();
  const Schedule s = build_schedule(g, c, {});
  const auto r = simulate(g, s, c);
  const AmdahlModel model(c.node_speed());
  EXPECT_NEAR(r.total_work, s.total_work(g, model), 1e-9);
}

TEST(Simulator, RejectsIncompleteSchedule) {
  TaskGraph g;
  g.add_task(Task{"a", 1e6, 1e9, 0.0});
  g.add_task(Task{"b", 1e6, 1e9, 0.0});
  const Cluster c = cluster4();
  Schedule s = place({{0}});  // only one placement
  EXPECT_THROW(simulate(g, s, c), Error);
}

TEST(Simulator, RejectsDependenceViolatingSeq) {
  TaskGraph g;
  const TaskId a = g.add_task(Task{"a", 1e6, 1e9, 0.0});
  const TaskId b = g.add_task(Task{"b", 1e6, 1e9, 0.0});
  g.add_edge(a, b, 1e6);
  const Cluster c = cluster4();
  Schedule s = place({{0}, {1}});
  s.of(a).seq = 1;  // successor would come first
  s.of(b).seq = 0;
  EXPECT_THROW(simulate(g, s, c), Error);
}

TEST(Simulator, RejectsDuplicateProcessors) {
  TaskGraph g;
  g.add_task(Task{"a", 1e6, 1e9, 0.0});
  const Cluster c = cluster4();
  Schedule s = place({{0, 0}});
  EXPECT_THROW(simulate(g, s, c), Error);
}

TEST(Simulator, MakespanNeverBelowEstimateOnContendedNetworks) {
  // The mapper's estimates ignore cross-edge contention, so the
  // simulated makespan is >= the estimated one (same compute times,
  // transfers can only be slower).
  Rng rng(3);
  const TaskGraph g = generate_fft_dag(8, rng);
  const Cluster c = grid5000::chti();
  for (SchedulerKind kind : {SchedulerKind::Hcpa, SchedulerKind::RatsDelta,
                             SchedulerKind::RatsTimeCost}) {
    SchedulerOptions o;
    o.kind = kind;
    const Schedule s = build_schedule(g, c, o);
    const auto r = simulate(g, s, c);
    EXPECT_GE(r.makespan, s.estimated_makespan() - 1e-6) << to_string(kind);
  }
}

TEST(Simulator, DeterministicAcrossRuns) {
  Rng rng(4);
  const TaskGraph g = generate_fft_dag(8, rng);
  const Cluster c = grid5000::grelon();
  const Schedule s = build_schedule(g, c, {});
  const auto r1 = simulate(g, s, c);
  const auto r2 = simulate(g, s, c);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_DOUBLE_EQ(r1.network_bytes, r2.network_bytes);
}

}  // namespace
}  // namespace rats
