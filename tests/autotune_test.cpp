// Unit tests for the AutoTuner facade (automatic RATS parameter
// tuning, the paper's future-work item).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "exp/autotune.hpp"
#include "platform/grid5000.hpp"

namespace rats {
namespace {

TEST(AutoTuner, ProducesParametersInsideTheSweepGrids) {
  AutoTuner tuner(/*calibration_samples=*/2);
  const Cluster c = grid5000::chti();
  const TunedParams& t = tuner.tuned(DagFamily::Strassen, c);

  const auto grids_contain = [](const std::vector<double>& grid, double v) {
    for (double g : grid)
      if (g == v) return true;
    return false;
  };
  EXPECT_TRUE(grids_contain(tuning_mindeltas(), t.mindelta));
  EXPECT_TRUE(grids_contain(tuning_maxdeltas(), t.maxdelta));
  EXPECT_TRUE(grids_contain(tuning_minrhos(), t.minrho));
}

TEST(AutoTuner, CachesPerFamilyAndCluster) {
  AutoTuner tuner(2);
  const Cluster c = grid5000::chti();
  const TunedParams* first = &tuner.tuned(DagFamily::Strassen, c);
  EXPECT_EQ(tuner.cache_size(), 1u);
  const TunedParams* again = &tuner.tuned(DagFamily::Strassen, c);
  EXPECT_EQ(first, again);  // same cached object, no re-sweep
  EXPECT_EQ(tuner.cache_size(), 1u);
}

TEST(AutoTuner, OptionsCarryTunedValuesAndKind) {
  AutoTuner tuner(2);
  const Cluster c = grid5000::chti();
  const SchedulerOptions o =
      tuner.options(SchedulerKind::RatsTimeCost, DagFamily::Strassen, c);
  const TunedParams& t = tuner.tuned(DagFamily::Strassen, c);
  EXPECT_EQ(o.kind, SchedulerKind::RatsTimeCost);
  EXPECT_DOUBLE_EQ(o.rats.mindelta, t.mindelta);
  EXPECT_DOUBLE_EQ(o.rats.maxdelta, t.maxdelta);
  EXPECT_DOUBLE_EQ(o.rats.minrho, t.minrho);
  EXPECT_TRUE(o.rats.packing);
}

TEST(AutoTuner, RejectsZeroCalibrationSamples) {
  EXPECT_THROW(AutoTuner(0), Error);
}

}  // namespace
}  // namespace rats
