// Unit and property tests for the DAG generators and the evaluation
// corpus (paper Table III).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/error.hpp"
#include "daggen/corpus.hpp"
#include "dag/graph_algorithms.hpp"

namespace rats {
namespace {

// ---------------------------------------------------------- cost model

TEST(CostModel, DrawsWithinRanges) {
  Rng rng(1);
  const CostRanges ranges;
  for (int i = 0; i < 1000; ++i) {
    const TaskCost c = draw_cost(rng, ranges);
    EXPECT_GE(c.m, ranges.m_min);
    EXPECT_LT(c.m, ranges.m_max);
    EXPECT_GE(c.a, ranges.a_min);
    EXPECT_LT(c.a, ranges.a_max);
    EXPECT_GE(c.alpha, ranges.alpha_min);
    EXPECT_LT(c.alpha, ranges.alpha_max);
  }
}

TEST(CostModel, DatasetFitsInOneGiB) {
  // 121M doubles = 968 MiB: the paper's 1 GByte memory bound.
  const CostRanges ranges;
  EXPECT_LE(ranges.m_max * kBytesPerElement, 1024.0 * MiB);
}

TEST(CostModel, EdgeBytesAreEightPerElement) {
  EXPECT_DOUBLE_EQ(edge_bytes_for(1000.0), 8000.0);
}

// ------------------------------------------------------------- layered

RandomDagParams layered_params(int n, double w, double d, double r) {
  RandomDagParams p;
  p.num_tasks = n;
  p.width = w;
  p.density = d;
  p.regularity = r;
  return p;
}

TEST(LayeredDag, HasExactTaskCount) {
  Rng rng(7);
  for (int n : {25, 50, 100}) {
    const TaskGraph g = generate_layered_dag(layered_params(n, 0.5, 0.5, 0.5), rng);
    EXPECT_EQ(g.num_tasks(), n);
  }
}

TEST(LayeredDag, IsAcyclicAndConnectedLevelToLevel) {
  Rng rng(3);
  const TaskGraph g =
      generate_layered_dag(layered_params(50, 0.5, 0.2, 0.8), rng);
  EXPECT_TRUE(g.is_acyclic());
  // Only the first level has entries; only the last has exits.
  const auto levels = tasks_by_level(g);
  const auto entries = g.entry_tasks();
  const auto exits = g.exit_tasks();
  EXPECT_EQ(entries.size(), levels.front().size());
  EXPECT_EQ(exits.size(), levels.back().size());
}

TEST(LayeredDag, TasksInSameLevelShareCosts) {
  Rng rng(11);
  const TaskGraph g =
      generate_layered_dag(layered_params(100, 0.8, 0.8, 0.8), rng);
  for (const auto& level : tasks_by_level(g)) {
    for (TaskId t : level) {
      EXPECT_DOUBLE_EQ(g.task(t).data_elems, g.task(level[0]).data_elems);
      EXPECT_DOUBLE_EQ(g.task(t).flops, g.task(level[0]).flops);
      EXPECT_DOUBLE_EQ(g.task(t).alpha, g.task(level[0]).alpha);
    }
  }
}

TEST(LayeredDag, WidthControlsParallelism) {
  // Generate several graphs: wide graphs must have larger max level.
  Rng rng1(5);
  Rng rng2(5);
  std::size_t max_narrow = 0;
  std::size_t max_wide = 0;
  for (int i = 0; i < 5; ++i) {
    const TaskGraph narrow =
        generate_layered_dag(layered_params(100, 0.2, 0.5, 0.8), rng1);
    const TaskGraph wide =
        generate_layered_dag(layered_params(100, 0.8, 0.5, 0.8), rng2);
    for (const auto& level : tasks_by_level(narrow))
      max_narrow = std::max(max_narrow, level.size());
    for (const auto& level : tasks_by_level(wide))
      max_wide = std::max(max_wide, level.size());
  }
  EXPECT_LT(max_narrow, max_wide);
}

TEST(LayeredDag, DensityControlsEdgeCount) {
  Rng rng1(5);
  Rng rng2(5);
  const TaskGraph sparse =
      generate_layered_dag(layered_params(100, 0.8, 0.2, 0.8), rng1);
  const TaskGraph dense =
      generate_layered_dag(layered_params(100, 0.8, 0.8, 0.8), rng2);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
}

TEST(LayeredDag, EdgeVolumeMatchesProducerDataset) {
  Rng rng(13);
  const TaskGraph g =
      generate_layered_dag(layered_params(50, 0.5, 0.8, 0.2), rng);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_DOUBLE_EQ(g.edge(e).bytes,
                     g.task(g.edge(e).src).data_elems * kBytesPerElement);
}

TEST(LayeredDag, DeterministicPerSeed) {
  Rng a(21), b(21);
  const TaskGraph ga =
      generate_layered_dag(layered_params(50, 0.5, 0.8, 0.2), a);
  const TaskGraph gb =
      generate_layered_dag(layered_params(50, 0.5, 0.8, 0.2), b);
  ASSERT_EQ(ga.num_tasks(), gb.num_tasks());
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (EdgeId e = 0; e < ga.num_edges(); ++e) {
    EXPECT_EQ(ga.edge(e).src, gb.edge(e).src);
    EXPECT_EQ(ga.edge(e).dst, gb.edge(e).dst);
  }
}

TEST(LayeredDag, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(generate_layered_dag(layered_params(0, 0.5, 0.5, 0.5), rng),
               Error);
  EXPECT_THROW(generate_layered_dag(layered_params(10, 0.0, 0.5, 0.5), rng),
               Error);
  EXPECT_THROW(generate_layered_dag(layered_params(10, 0.5, 1.5, 0.5), rng),
               Error);
}

// ----------------------------------------------------------- irregular

TEST(IrregularDag, HasExactTaskCountAndIsAcyclic) {
  Rng rng(9);
  RandomDagParams p = layered_params(100, 0.5, 0.8, 0.2);
  p.jump = 4;
  const TaskGraph g = generate_irregular_dag(p, rng);
  EXPECT_EQ(g.num_tasks(), 100);
  EXPECT_TRUE(g.is_acyclic());
}

TEST(IrregularDag, TasksInSameLevelHaveDistinctCosts) {
  Rng rng(17);
  const TaskGraph g =
      generate_irregular_dag(layered_params(100, 0.8, 0.8, 0.8), rng);
  // With per-task draws, at least one wide level must mix costs.
  bool mixed = false;
  for (const auto& level : tasks_by_level(g)) {
    for (TaskId t : level)
      if (g.task(t).data_elems != g.task(level[0]).data_elems) mixed = true;
  }
  EXPECT_TRUE(mixed);
}

TEST(IrregularDag, JumpEdgesSkipLevels) {
  Rng rng(23);
  RandomDagParams p = layered_params(100, 0.5, 0.8, 0.8);
  p.jump = 4;
  const TaskGraph g = generate_irregular_dag(p, rng);
  const auto level = task_levels(g);
  // Structural levels may shift, but at least one edge must span > 1
  // generator level; detect via a long edge in the structural leveling.
  bool has_long_edge = false;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto d = level[static_cast<std::size_t>(g.edge(e).dst)] -
                   level[static_cast<std::size_t>(g.edge(e).src)];
    if (d > 1) has_long_edge = true;
  }
  // Jump edges create shortcuts; structurally they appear as edges
  // whose endpoints differ by more than one level *in the generator's
  // layering*.  With density 0.8 and jump 4 over many levels this is
  // overwhelmingly likely.
  EXPECT_TRUE(has_long_edge);
}

TEST(IrregularDag, JumpOneAddsNothingBeyondStructure) {
  Rng a(31), b(31);
  RandomDagParams p1 = layered_params(50, 0.5, 0.5, 0.5);
  p1.jump = 1;
  RandomDagParams p2 = p1;
  const TaskGraph g1 = generate_irregular_dag(p1, a);
  const TaskGraph g2 = generate_irregular_dag(p2, b);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
}

// ----------------------------------------------------------------- FFT

TEST(FftDag, TaskCountsMatchPaper) {
  // k = 2, 4, 8, 16 -> 5, 15, 39, 95 tasks (Section IV-A).
  EXPECT_EQ(fft_task_count(2), 5);
  EXPECT_EQ(fft_task_count(4), 15);
  EXPECT_EQ(fft_task_count(8), 39);
  EXPECT_EQ(fft_task_count(16), 95);
  Rng rng(1);
  for (int k : {2, 4, 8, 16})
    EXPECT_EQ(generate_fft_dag(k, rng).num_tasks(), fft_task_count(k));
}

TEST(FftDag, SingleEntryManyExits) {
  Rng rng(2);
  const TaskGraph g = generate_fft_dag(8, rng);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 8u);  // last butterfly stage
}

TEST(FftDag, ButterflyTasksHaveTwoParents) {
  Rng rng(3);
  const TaskGraph g = generate_fft_dag(8, rng);
  int two_parent_tasks = 0;
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (g.in_edges(t).size() == 2) ++two_parent_tasks;
  EXPECT_EQ(two_parent_tasks, 8 * 3);  // k * log2(k) butterflies
}

TEST(FftDag, EveryPathIsCritical) {
  // All tasks of a level share costs, so every root-to-exit path has
  // the same weight: check bottom level equality within levels.
  Rng rng(4);
  const TaskGraph g = generate_fft_dag(8, rng);
  const auto bl = bottom_levels(
      g, [&](TaskId t) { return g.task(t).flops; },
      [&](EdgeId e) { return g.edge(e).bytes; });
  for (const auto& level : tasks_by_level(g))
    for (TaskId t : level)
      EXPECT_DOUBLE_EQ(bl[static_cast<std::size_t>(t)],
                       bl[static_cast<std::size_t>(level[0])]);
}

TEST(FftDag, RejectsNonPowerOfTwo) {
  Rng rng(1);
  EXPECT_THROW(generate_fft_dag(3, rng), Error);
  EXPECT_THROW(generate_fft_dag(0, rng), Error);
  EXPECT_THROW(generate_fft_dag(1, rng), Error);
}

// ------------------------------------------------------------ Strassen

TEST(StrassenDag, HasTwentyFiveTasks) {
  Rng rng(5);
  EXPECT_EQ(generate_strassen_dag(rng).num_tasks(), 25);
  EXPECT_EQ(strassen_task_count(), 25);
}

TEST(StrassenDag, TenEntriesFourExits) {
  Rng rng(6);
  const TaskGraph g = generate_strassen_dag(rng);
  EXPECT_EQ(g.entry_tasks().size(), 10u);  // S1..S10
  EXPECT_EQ(g.exit_tasks().size(), 4u);    // C11, C12, C21, C22 tails
}

TEST(StrassenDag, SevenMultiplications) {
  Rng rng(7);
  const TaskGraph g = generate_strassen_dag(rng);
  int mults = 0;
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (g.task(t).name.starts_with("M")) ++mults;
  EXPECT_EQ(mults, 7);
}

TEST(StrassenDag, IsAcyclicWithDepthFive) {
  Rng rng(8);
  const TaskGraph g = generate_strassen_dag(rng);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(tasks_by_level(g).size(), 5u);  // S, M, add1, add2, add3
}

// -------------------------------------------------------------- corpus

TEST(Corpus, TableThreeCounts) {
  const auto corpus = build_corpus();
  EXPECT_EQ(corpus.size(), 557u);
  std::map<DagFamily, int> count;
  for (const auto& e : corpus) ++count[e.family];
  EXPECT_EQ(count[DagFamily::Layered], 108);
  EXPECT_EQ(count[DagFamily::Irregular], 324);
  EXPECT_EQ(count[DagFamily::FFT], 100);
  EXPECT_EQ(count[DagFamily::Strassen], 25);
}

TEST(Corpus, NamesAreUnique) {
  const auto corpus = build_corpus();
  std::set<std::string> names;
  for (const auto& e : corpus) names.insert(e.name);
  EXPECT_EQ(names.size(), corpus.size());
}

TEST(Corpus, AllGraphsValidate) {
  for (const auto& e : build_corpus()) {
    EXPECT_NO_THROW(e.graph.validate()) << e.name;
    EXPECT_GT(e.graph.num_tasks(), 0) << e.name;
  }
}

TEST(Corpus, FamilySubsetMatchesFullCorpus) {
  const auto fft = build_family(DagFamily::FFT);
  ASSERT_EQ(fft.size(), 100u);
  const auto corpus = build_corpus();
  // Same stream derivation: fft entries appear identically in the
  // corpus (count edges of the first sample as a fingerprint).
  const auto it = std::find_if(corpus.begin(), corpus.end(), [](const auto& e) {
    return e.name == "fft/k2/s0";
  });
  ASSERT_NE(it, corpus.end());
  EXPECT_EQ(it->graph.num_edges(), fft[0].graph.num_edges());
  EXPECT_DOUBLE_EQ(it->graph.task(0).flops, fft[0].graph.task(0).flops);
}

TEST(Corpus, DifferentSeedsDifferentGraphs) {
  CorpusOptions a, b;
  a.seed = 1;
  b.seed = 2;
  a.random_samples = b.random_samples = 1;
  a.kernel_samples = b.kernel_samples = 1;
  const auto ca = build_corpus(a);
  const auto cb = build_corpus(b);
  ASSERT_EQ(ca.size(), cb.size());
  bool any_different = false;
  for (std::size_t i = 0; i < ca.size(); ++i)
    if (ca[i].graph.task(0).flops != cb[i].graph.task(0).flops)
      any_different = true;
  EXPECT_TRUE(any_different);
}

TEST(Corpus, ReducedSamplingScalesCounts) {
  CorpusOptions o;
  o.random_samples = 1;
  o.kernel_samples = 5;
  const auto corpus = build_corpus(o);
  EXPECT_EQ(corpus.size(), 36u + 108u + 20u + 5u);
}

TEST(Corpus, FamilyNamesRoundTrip) {
  EXPECT_EQ(to_string(DagFamily::Layered), "layered");
  EXPECT_EQ(to_string(DagFamily::Irregular), "irregular");
  EXPECT_EQ(to_string(DagFamily::FFT), "fft");
  EXPECT_EQ(to_string(DagFamily::Strassen), "strassen");
}

// Property sweep: every random parameter combination generates a valid
// graph with the requested size.
class RandomDagGrid
    : public ::testing::TestWithParam<std::tuple<int, double, double, double>> {
};

TEST_P(RandomDagGrid, LayeredAndIrregularAreWellFormed) {
  const auto [n, w, d, r] = GetParam();
  RandomDagParams p;
  p.num_tasks = n;
  p.width = w;
  p.density = d;
  p.regularity = r;
  Rng rng(static_cast<std::uint64_t>(n * 1000) + static_cast<std::uint64_t>(w * 100));
  const TaskGraph layered = generate_layered_dag(p, rng);
  EXPECT_EQ(layered.num_tasks(), n);
  EXPECT_TRUE(layered.is_acyclic());
  p.jump = 2;
  const TaskGraph irregular = generate_irregular_dag(p, rng);
  EXPECT_EQ(irregular.num_tasks(), n);
  EXPECT_TRUE(irregular.is_acyclic());
  // Every non-entry task has a parent; every non-exit task a child.
  for (const TaskGraph* g : {&layered, &irregular}) {
    const auto levels = tasks_by_level(*g);
    for (std::size_t l = 0; l < levels.size(); ++l)
      for (TaskId t : levels[l]) {
        if (l > 0) EXPECT_FALSE(g->in_edges(t).empty());
        if (l + 1 < levels.size()) EXPECT_FALSE(g->out_edges(t).empty());
      }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableThreeGrid, RandomDagGrid,
    ::testing::Combine(::testing::Values(25, 50, 100),
                       ::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(0.2, 0.8),
                       ::testing::Values(0.2, 0.8)));

}  // namespace
}  // namespace rats
