#include "serve/shard.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "exp/session.hpp"
#include "report/render.hpp"
#include "scenario/registry.hpp"
#include "trace/trace.hpp"

namespace rats::serve {

namespace {

/// The outcome injected into runs a pass does not simulate.  Strictly
/// positive: the report aggregators divide by reference makespans
/// (relative_series requires them > 0).  The values never reach a
/// merged report — plan-pass reports are discarded and shard-pass
/// reports only donate the runs the worker actually simulated.
RunOutcome placeholder() {
  RunOutcome out;
  out.makespan = 1.0;
  out.work = 1.0;
  return out;
}

/// Plan pass: inject everywhere, record the matrix size.
class PlanSession final : public RunSession {
 public:
  void begin_matrix(std::size_t runs) override { runs_ = runs; }
  bool inject(std::size_t, const RunMeta&, RunOutcome& out) override {
    out = placeholder();
    return true;
  }
  TraceSink* begin_run(std::size_t, const RunMeta&) override {
    return nullptr;
  }
  void end_run(std::size_t, const RunOutcome&) override {}

  std::size_t runs() const { return runs_; }

 private:
  std::size_t runs_ = 0;
};

/// Shard pass: simulate [begin, end), inject everywhere else.
class ShardSession final : public RunSession {
 public:
  ShardSession(std::size_t begin, std::size_t end)
      : begin_(begin), end_(end), outcomes_(end - begin) {}

  void begin_matrix(std::size_t runs) override { runs_ = runs; }
  bool inject(std::size_t run, const RunMeta&, RunOutcome& out) override {
    if (run >= begin_ && run < end_) return false;
    out = placeholder();
    return true;
  }
  TraceSink* begin_run(std::size_t, const RunMeta&) override {
    return nullptr;
  }
  void end_run(std::size_t run, const RunOutcome& outcome) override {
    RATS_REQUIRE(run >= begin_ && run < end_,
                 "shard session observed a run outside its shard");
    outcomes_[run - begin_] = outcome;  // disjoint slots: thread-safe
  }

  std::size_t runs() const { return runs_; }
  std::vector<RunOutcome> take() { return std::move(outcomes_); }

 private:
  std::size_t begin_;
  std::size_t end_;
  std::size_t runs_ = 0;
  std::vector<RunOutcome> outcomes_;
};

/// Replay pass: inject every recorded outcome.
class ReplaySession final : public RunSession {
 public:
  explicit ReplaySession(const std::vector<RunOutcome>& outcomes)
      : outcomes_(outcomes) {}

  void begin_matrix(std::size_t runs) override {
    RATS_REQUIRE(runs == outcomes_.size(),
                 "merge: outcome count does not match the run matrix");
  }
  bool inject(std::size_t run, const RunMeta&, RunOutcome& out) override {
    RATS_REQUIRE(run < outcomes_.size(), "merge: run index out of range");
    out = outcomes_[run];
    return true;
  }
  TraceSink* begin_run(std::size_t, const RunMeta&) override {
    return nullptr;
  }
  void end_run(std::size_t, const RunOutcome&) override {}

 private:
  const std::vector<RunOutcome>& outcomes_;
};

report::Cell num_cell(double value) {
  return report::cell(value, trace_double(value));
}

}  // namespace

bool kind_shardable(const std::string& kind) {
  // Traceable kinds drive every run through the RunSession seam —
  // except "single", whose report consumes per-task timelines the
  // outcome matrix does not carry.
  return scenario::kind_supports_trace(kind) && kind != "single";
}

ShardPlan plan_shards(const scenario::ScenarioSpec& spec,
                      std::size_t max_shards) {
  ShardPlan plan;
  if (!kind_shardable(spec.kind)) {
    // Validate up front anyway: an unknown kind must fail at submit,
    // not inside a worker.
    const std::vector<std::string> known = scenario::kinds();
    RATS_REQUIRE(
        std::find(known.begin(), known.end(), spec.kind) != known.end(),
        "unknown scenario kind '" + spec.kind + "'");
    plan.shards.push_back(ShardRange{0, 0});
    return plan;
  }
  scenario::ScenarioSpec dry = spec;
  dry.threads = 1;  // no pool threads: keeps the daemon fork-safe
  PlanSession session;
  (void)scenario::build_report(dry, &session);
  plan.sharded = true;
  plan.total_runs = session.runs();
  RATS_REQUIRE(plan.total_runs > 0, "scenario has an empty run matrix");
  const std::size_t n = plan.total_runs;
  const std::size_t count = std::min(std::max<std::size_t>(max_shards, 1), n);
  for (std::size_t i = 0; i < count; ++i) {
    const ShardRange r{i * n / count, (i + 1) * n / count};
    if (r.begin < r.end) plan.shards.push_back(r);
  }
  return plan;
}

std::string run_shard_payload(const scenario::ScenarioSpec& spec,
                              std::size_t begin, std::size_t end,
                              std::size_t total) {
  RATS_REQUIRE(begin < end && end <= total, "bad shard range");
  ShardSession session(begin, end);
  (void)scenario::build_report(spec, &session);
  RATS_REQUIRE(session.runs() == total,
               "worker run matrix disagrees with the shard plan");
  const std::vector<RunOutcome> outcomes = session.take();

  report::ReportModel payload;
  payload.name = spec.name;
  payload.kind = "serve-shard";
  payload.scalar("begin", static_cast<double>(begin));
  payload.scalar("total", static_cast<double>(total));
  report::TableModel& table = payload.table(
      "outcomes", {{"makespan", report::ColumnType::Number},
                   {"work", report::ColumnType::Number},
                   {"tasks_killed", report::ColumnType::Number},
                   {"tasks_remapped", report::ColumnType::Number},
                   {"redists_aborted", report::ColumnType::Number},
                   {"capacity_seconds_lost", report::ColumnType::Number},
                   {"node_seconds_down", report::ColumnType::Number}});
  for (const RunOutcome& o : outcomes) {
    table.rows.push_back({num_cell(o.makespan), num_cell(o.work),
                          num_cell(o.faults.tasks_killed),
                          num_cell(o.faults.tasks_remapped),
                          num_cell(o.faults.redists_aborted),
                          num_cell(o.faults.capacity_seconds_lost),
                          num_cell(o.faults.node_seconds_down)});
  }
  return report::render_json(payload);
}

std::string run_whole_payload(const scenario::ScenarioSpec& spec) {
  return report::render_json(scenario::build_report(spec));
}

ShardOutcomes parse_shard_payload(const std::string& payload) {
  const report::ReportModel model = report::parse_json(payload);
  RATS_REQUIRE(model.kind == "serve-shard",
               "shard payload has wrong kind '" + model.kind + "'");
  ShardOutcomes result;
  const report::TableModel* table = model.find_table("outcomes");
  RATS_REQUIRE(table != nullptr, "shard payload misses the outcomes table");
  for (const report::Item& item : model.items)
    if (item.kind == report::Item::Kind::Scalar &&
        item.scalar.id == "begin")
      result.begin = static_cast<std::size_t>(item.scalar.num);
  result.outcomes.reserve(table->rows.size());
  for (const auto& row : table->rows) {
    RATS_REQUIRE(row.size() == 7, "shard payload row has wrong width");
    RunOutcome o;
    o.makespan = row[0].num;
    o.work = row[1].num;
    o.faults.tasks_killed = static_cast<std::int32_t>(row[2].num);
    o.faults.tasks_remapped = static_cast<std::int32_t>(row[3].num);
    o.faults.redists_aborted = static_cast<std::int32_t>(row[4].num);
    o.faults.capacity_seconds_lost = row[5].num;
    o.faults.node_seconds_down = row[6].num;
    result.outcomes.push_back(o);
  }
  return result;
}

std::string merge_report_json(const scenario::ScenarioSpec& spec,
                              const std::vector<RunOutcome>& outcomes) {
  scenario::ScenarioSpec replay = spec;
  replay.threads = 1;  // no pool threads: keeps the daemon fork-safe
  ReplaySession session(outcomes);
  return report::render_json(scenario::build_report(replay, &session));
}

}  // namespace rats::serve
