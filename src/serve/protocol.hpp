// Line-framed JSON protocol plumbing shared by the daemon, the worker
// processes and the client.
//
// Every message — client command, daemon reply, worker dispatch,
// worker result — is one JSON object on one line, terminated by '\n'.
// Payloads (spec text, report JSON) travel as escaped string fields,
// so a message never contains a literal newline.  The grammar itself
// is documented in README.md ("Serving scenarios").
#pragma once

#include <string>

#include "common/json.hpp"

namespace rats::serve {

/// Appends '\n' and writes the whole buffer, retrying on EINTR and
/// short writes.  Returns false on error (EPIPE: peer died).
bool write_line(int fd, const std::string& line);

/// Incremental line splitter over a raw fd.  `read_line` blocks until
/// one full line is available (or EOF/error → false); `feed` +
/// `next_line` support the daemon's poll loop, which must not block.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Blocking: reads until a '\n' arrives.  False on EOF or error.
  bool read_line(std::string& out);

  /// Non-blocking side: appends `bytes` to the buffer.
  void feed(const char* bytes, std::size_t n) { buf_.append(bytes, n); }
  /// Pops the next complete line from the buffer, false when none.
  bool next_line(std::string& out);

 private:
  int fd_;
  std::string buf_;
};

/// Renders a string field (`"key":"escaped"`), no trailing comma.
std::string field(const char* key, const std::string& value);
/// Renders an integer field (`"key":123`), no trailing comma.
std::string field(const char* key, std::int64_t value);

}  // namespace rats::serve
