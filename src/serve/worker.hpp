// The pre-forked worker side of the scenario service: a blocking loop
// over one socketpair fd, executing shard dispatches from the daemon.
#pragma once

namespace rats::serve {

/// Runs dispatches from `fd` until an "exit" message or EOF (daemon
/// death).  Never throws — a failing shard becomes an error reply, so
/// the worker survives bad specs and only dies on real crashes (which
/// the daemon's respawn+retry path absorbs).  Returns the process exit
/// code.
int worker_loop(int fd);

}  // namespace rats::serve
