// Shard decomposition and deterministic merge for the scenario service
// (`rats serve`).
//
// The service must return report JSON byte-identical to a
// single-process `rats run` of the same spec.  Per-shard report
// *merging* cannot deliver that — corpus-wide aggregates (mean ratios,
// 21-point percentile curves, pairwise win counts) need every outcome
// at once — so the merge works at the outcome level through the
// RunSession::inject seam (exp/session.hpp), in three passes:
//
//   plan    (daemon)  inject a placeholder into every run → the report
//                     builder walks the matrix without simulating,
//                     revealing its size; the report is discarded.
//   shard   (worker)  inject placeholders outside [begin, end); the
//                     runs inside simulate for real and their outcomes
//                     ship back as a typed ReportModel JSON payload.
//   replay  (daemon)  inject every recorded outcome → the report is
//                     assembled by the exact single-process code path,
//                     so its rendering is byte-identical by
//                     construction.
//
// Outcomes live at absolute run indices, so merged bytes cannot depend
// on shard arrival order (the permutation test in tests/serve_test.cpp
// pins this).  Kinds whose reports need more than the outcome matrix
// (per-task timelines of "single", the static table1–4) are not
// shardable; they run as one whole-report shard whose payload is the
// final report JSON, round-tripped through report::parse_json.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "report/model.hpp"
#include "scenario/spec.hpp"

namespace rats::serve {

/// True when `kind` drives its whole report through the (entry,
/// algorithm) outcome matrix and can therefore split across workers.
bool kind_shardable(const std::string& kind);

/// One contiguous slice of the run matrix.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive
};

struct ShardPlan {
  bool sharded = false;        ///< false → one whole-report shard
  std::size_t total_runs = 0;  ///< matrix size (0 for whole jobs)
  std::vector<ShardRange> shards;  ///< never empty
};

/// Decomposes the spec's run matrix into at most `max_shards`
/// contiguous shards via the plan pass.  Non-shardable kinds get a
/// single whole-report shard.  Throws rats::Error on invalid specs —
/// the daemon's submission-time validation.
ShardPlan plan_shards(const scenario::ScenarioSpec& spec,
                      std::size_t max_shards);

/// Worker side: simulates runs [begin, end) of the spec's matrix and
/// returns their outcomes as a ReportModel JSON payload.  `total` is
/// the planner's matrix size; a mismatch (spec drift between daemon
/// and worker) throws.
std::string run_shard_payload(const scenario::ScenarioSpec& spec,
                              std::size_t begin, std::size_t end,
                              std::size_t total);

/// Worker side of a non-shardable job: the final report JSON itself.
std::string run_whole_payload(const scenario::ScenarioSpec& spec);

struct ShardOutcomes {
  std::size_t begin = 0;
  std::vector<RunOutcome> outcomes;
};

/// Parses a shard payload back into typed outcomes (exact doubles —
/// the payload carries %.17g round-trip precision).
ShardOutcomes parse_shard_payload(const std::string& payload);

/// Daemon side: replays the complete outcome vector through the
/// report builder and renders the merged JSON document.
std::string merge_report_json(const scenario::ScenarioSpec& spec,
                              const std::vector<RunOutcome>& outcomes);

}  // namespace rats::serve
