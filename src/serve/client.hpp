// Client side of the scenario service: one-shot requests plus the
// submit-and-wait flow `rats submit` builds on.
#pragma once

#include <cstddef>
#include <string>

#include "common/json.hpp"

namespace rats::serve {

/// One request/response round trip over the daemon socket.  Throws
/// rats::Error when the daemon is unreachable or hangs up mid-reply.
std::string request(const std::string& socket_path, const std::string& line);

/// `request` with the reply parsed.
json::Value request_json(const std::string& socket_path,
                         const std::string& line);

struct SubmitOptions {
  bool crash_test = false;  ///< arm the worker-crash hook (tests/CI)
  bool hang_test = false;   ///< arm the worker-hang hook
  int poll_ms = 50;         ///< status poll interval while waiting
  double timeout = 600.0;   ///< overall wait budget in seconds
  bool progress = false;    ///< stderr heartbeat while waiting
};

/// Submits spec text, honouring backpressure (a queue-full reject with
/// retry_after_ms is retried until `timeout`), waits for completion
/// and returns the merged report JSON.  Throws rats::Error on daemon
/// errors, job failure or timeout.
std::string submit_and_wait(const std::string& socket_path,
                            const std::string& spec_text,
                            const SubmitOptions& options = {});

}  // namespace rats::serve
