#include "serve/daemon.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/format.hpp"
#include "obs/registry.hpp"
#include "serve/jobs.hpp"
#include "serve/protocol.hpp"
#include "serve/worker.hpp"

namespace rats::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct WorkerSlot {
  pid_t pid = -1;
  int fd = -1;
  bool busy = false;
  bool timed_out = false;  ///< watchdog killed it; labels the diagnostic
  std::string job;
  std::size_t shard = 0;
  Clock::time_point since{};
  std::string buf;  ///< partial result line
};

struct ClientConn {
  int fd = -1;
  std::string buf;  ///< partial request line
  std::string out;  ///< replies not yet written (flushed on POLLOUT)
};

/// A client that stops reading while this much reply is queued is
/// dropped rather than allowed to hold daemon memory hostage.
constexpr std::size_t kClientSendCap = 64u << 20;

/// The daemon process.  Single-threaded; everything is event-driven
/// off one poll() set (listen fd + clients + worker pipes).
class Daemon {
 public:
  explicit Daemon(const DaemonOptions& options)
      : options_(options),
        jobs_(JobConfig{
            options.queue_capacity,
            options.shards_per_job
                ? options.shards_per_job
                : static_cast<std::size_t>(std::max(options.workers, 1)),
            options.retry_after_ms}) {}

  int run() {
    if (options_.socket_path.empty()) {
      std::fprintf(stderr, "serve: --socket is required\n");
      return 2;
    }
    if (options_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      std::fprintf(stderr, "serve: socket path too long\n");
      return 2;
    }
    // Writes race worker/client deaths; EPIPE must be an error return,
    // not a process kill.
    std::signal(SIGPIPE, SIG_IGN);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      std::perror("serve: socket");
      return 2;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      std::perror("serve: bind/listen");
      ::close(listen_fd_);
      return 2;
    }

    // Pre-fork the pool before any work arrives; the daemon never
    // spawns threads, so later respawn forks stay safe too.
    for (int i = 0; i < std::max(options_.workers, 1); ++i) {
      WorkerSlot slot;
      if (!spawn(slot)) {
        std::fprintf(stderr, "serve: failed to fork worker\n");
        shutdown_workers();
        ::close(listen_fd_);
        ::unlink(options_.socket_path.c_str());
        return 2;
      }
      workers_.push_back(slot);
    }
    start_ = Clock::now();
    std::fprintf(stderr, "serve: listening on %s (%zu workers)\n",
                 options_.socket_path.c_str(), workers_.size());

    while (!stopping_) poll_once();

    shutdown_workers();
    for (ClientConn& c : clients_) {
      // Best-effort drain so the shutdown acknowledgement (and any
      // fetched result still queued) reaches the client; a wedged
      // reader only delays exit by the bounded spin.
      for (int spin = 0; c.fd >= 0 && !c.out.empty() && spin < 50; ++spin) {
        pollfd p{c.fd, POLLOUT, 0};
        if (::poll(&p, 1, 20) <= 0) continue;
        if (!flush_client(c)) break;
      }
      if (c.fd >= 0) ::close(c.fd);
    }
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
    if (!options_.metrics_path.empty()) write_metrics();
    std::fprintf(stderr, "serve: shut down cleanly\n");
    return 0;
  }

 private:
  // ---- worker pool ----------------------------------------------------

  bool spawn(WorkerSlot& slot) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return false;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      return false;
    }
    if (pid == 0) {
      // Child: drop the daemon's fds, run shards until told to exit.
      ::close(sv[0]);
      ::close(listen_fd_);
      for (const WorkerSlot& w : workers_)
        if (w.fd >= 0) ::close(w.fd);
      for (const ClientConn& c : clients_) ::close(c.fd);
      _exit(worker_loop(sv[1]));
    }
    ::close(sv[1]);
    slot.pid = pid;
    slot.fd = sv[0];
    slot.busy = false;
    slot.timed_out = false;
    slot.buf.clear();
    return true;
  }

  void reap(WorkerSlot& slot) {
    if (slot.fd >= 0) ::close(slot.fd);
    if (slot.pid > 0) ::waitpid(slot.pid, nullptr, 0);
    slot.fd = -1;
    slot.pid = -1;
  }

  void shutdown_workers() {
    for (WorkerSlot& w : workers_) {
      if (w.fd < 0) continue;
      if (w.busy) {
        ::kill(w.pid, SIGKILL);  // mid-shard at shutdown: don't wait
      } else {
        write_line(w.fd, "{\"do\":\"exit\"}");
      }
      reap(w);
    }
  }

  /// A worker died (EOF) or was killed by the watchdog: fail/retry its
  /// shard and put a fresh process in the slot.
  void worker_crashed(WorkerSlot& slot) {
    const bool was_busy = slot.busy;
    const std::string job = slot.job;
    const std::size_t shard = slot.shard;
    const std::string why = slot.timed_out
                                ? "shard timed out after " +
                                      std::to_string(options_.shard_timeout) +
                                      "s (worker killed)"
                                : "worker process died mid-shard";
    reap(slot);
    ++worker_restarts_;
    if (!spawn(slot)) {
      // Out of processes: the slot stays dead; remaining workers keep
      // serving.  (fork failure here is an OS-level emergency.)
      std::fprintf(stderr, "serve: failed to respawn worker\n");
    }
    if (was_busy) {
      const bool retried = jobs_.shard_failed(job, shard, why);
      if (options_.progress)
        std::fprintf(stderr, "serve: %s shard %zu %s\n", job.c_str(), shard,
                     retried ? "failed, retrying" : "failed twice — job failed");
    }
    pump();
  }

  /// Feeds pending shards to idle workers.
  void pump() {
    while (true) {
      WorkerSlot* idle = nullptr;
      for (WorkerSlot& w : workers_)
        if (w.fd >= 0 && !w.busy) {
          idle = &w;
          break;
        }
      if (idle == nullptr) return;
      JobTable::Dispatch d;
      if (!jobs_.next_dispatch(d)) return;
      std::string msg = "{\"do\":\"";
      msg += d.sharded ? "shard" : "whole";
      msg += "\",";
      msg += field("job", d.job_id);
      msg += ",";
      msg += field("shard", static_cast<std::int64_t>(d.shard));
      msg += ",";
      msg += field("begin", static_cast<std::int64_t>(d.begin));
      msg += ",";
      msg += field("end", static_cast<std::int64_t>(d.end));
      msg += ",";
      msg += field("total", static_cast<std::int64_t>(d.total));
      if (d.crash) msg += ",\"crash\":true";
      if (d.hang) msg += ",\"hang\":true";
      msg += ",";
      msg += field("spec", d.spec_text);
      msg += "}";
      idle->busy = true;
      idle->job = d.job_id;
      idle->shard = d.shard;
      idle->since = Clock::now();
      if (!write_line(idle->fd, msg)) {
        // The worker died between poll rounds; treat as a crash, which
        // respawns and re-enters pump().
        worker_crashed(*idle);
        return;
      }
    }
  }

  void worker_result(WorkerSlot& slot, const std::string& line) {
    json::Value msg;
    try {
      msg = json::parse(line);
    } catch (const Error&) {
      return;  // garbage on the pipe; the crash path will catch a dead worker
    }
    const std::string job = msg.get_string("job");
    const std::size_t shard = static_cast<std::size_t>(msg.get_int("shard"));
    slot.busy = false;
    if (msg.get_int("ok") == 1) {
      jobs_.shard_done(job, shard, msg.get_string("payload"));
      if (options_.progress) {
        const JobTable::Status s = jobs_.status(job);
        std::fprintf(stderr, "serve: %s shard %zu done (%zu/%zu)\n",
                     job.c_str(), shard, s.shards_done, s.shards_total);
      }
    } else {
      // The worker survived but the shard failed (bad spec reached a
      // worker, or an internal invariant tripped).  Deterministic
      // errors recur on retry, but one retry is cheap and absorbs
      // transient ones (ENOMEM, fd exhaustion).
      jobs_.shard_failed(job, shard, msg.get_string("error", "shard error"));
    }
    pump();
  }

  // ---- client protocol ------------------------------------------------

  std::string handle_command(const std::string& line) {
    json::Value msg;
    try {
      msg = json::parse(line);
    } catch (const Error& e) {
      return std::string("{\"ok\":0,") +
             field("error", std::string("bad request: ") + e.what()) + "}";
    }
    const std::string cmd = msg.get_string("cmd");
    if (cmd == "submit") return cmd_submit(msg);
    if (cmd == "status") return cmd_status(msg);
    if (cmd == "result") return cmd_result(msg);
    if (cmd == "stats") return cmd_stats();
    if (cmd == "ping") return "{\"ok\":1}";
    if (cmd == "shutdown") {
      stopping_ = true;
      return "{\"ok\":1,\"stopping\":1}";
    }
    return std::string("{\"ok\":0,") +
           field("error", "unknown command '" + cmd + "'") + "}";
  }

  std::string cmd_submit(const json::Value& msg) {
    const json::Value* spec = msg.get("spec");
    if (spec == nullptr || !spec->is_string())
      return "{\"ok\":0,\"error\":\"submit needs a spec field\"}";
    const JobTable::SubmitResult r = jobs_.submit(
        spec->text, msg.get_bool("crash_test"), msg.get_bool("hang_test"));
    update_gauges();
    if (!r.accepted) {
      if (r.retry_after_ms > 0)
        return strf("{\"ok\":0,\"error\":\"%s\",\"retry_after_ms\":%d}",
                    json::escape(r.error).c_str(), r.retry_after_ms);
      return strf("{\"ok\":0,\"error\":\"%s\"}",
                  json::escape(r.error).c_str());
    }
    obs::counter("serve/jobs_submitted").inc();
    if (options_.progress)
      std::fprintf(stderr, "serve: %s submitted (%zu shards, %zu runs)\n",
                   r.job_id.c_str(), r.shards, r.runs);
    pump();
    update_gauges();
    return strf("{\"ok\":1,\"job\":\"%s\",\"shards\":%zu,\"runs\":%zu}",
                r.job_id.c_str(), r.shards, r.runs);
  }

  std::string cmd_status(const json::Value& msg) {
    const JobTable::Status s = jobs_.status(msg.get_string("job"));
    if (!s.known) return "{\"ok\":0,\"error\":\"unknown job\"}";
    std::string reply = "{\"ok\":1,";
    reply += field("state", s.state);
    reply += ",";
    reply += field("shards_done", static_cast<std::int64_t>(s.shards_done));
    reply += ",";
    reply += field("shards_total", static_cast<std::int64_t>(s.shards_total));
    reply += ",";
    reply += field("runs", static_cast<std::int64_t>(s.runs_total));
    if (!s.error.empty()) {
      reply += ",";
      reply += field("error", s.error);
    }
    reply += "}";
    return reply;
  }

  std::string cmd_result(const json::Value& msg) {
    const std::string job = msg.get_string("job");
    const JobTable::Status s = jobs_.status(job);
    if (!s.known) return "{\"ok\":0,\"error\":\"unknown job\"}";
    const std::string* report = jobs_.result(job);
    if (report == nullptr)
      return std::string("{\"ok\":0,") + field("state", s.state) + "," +
             field("error", s.state == "failed" ? s.error
                                                : "job not finished") +
             "}";
    return std::string("{\"ok\":1,") + field("report", *report) + "}";
  }

  std::string cmd_stats() {
    const ServeStats& s = jobs_.stats();
    const double elapsed = seconds_since(start_);
    const double rate =
        elapsed > 0 ? static_cast<double>(s.runs_completed) / elapsed : 0.0;
    char rate_text[32];
    std::snprintf(rate_text, sizeof rate_text, "%.3f", rate);
    return std::string("{\"ok\":1,") +
           field("jobs_submitted", s.jobs_submitted) + "," +
           field("jobs_rejected", s.jobs_rejected) + "," +
           field("jobs_done", s.jobs_done) + "," +
           field("jobs_failed", s.jobs_failed) + "," +
           field("jobs_queued", static_cast<std::int64_t>(jobs_.queued_jobs())) +
           "," +
           field("jobs_running",
                 static_cast<std::int64_t>(jobs_.running_jobs())) +
           "," + field("shards_dispatched", s.shards_dispatched) + "," +
           field("shards_retried", s.shards_retried) + "," +
           field("worker_restarts", worker_restarts_) + "," +
           field("runs_completed", s.runs_completed) + "," +
           field("workers", static_cast<std::int64_t>(workers_.size())) +
           ",\"scenarios_per_sec\":" + rate_text + "}";
  }

  /// Mirrors the job/shard counters into the obs registry so `stats`
  /// and a metrics snapshot tell one story.
  void update_gauges() {
    if (!obs::metrics_enabled()) return;
    const ServeStats& s = jobs_.stats();
    obs::gauge("serve/jobs_queued", obs::Stability::Volatile)
        .set(static_cast<std::int64_t>(jobs_.queued_jobs()));
    obs::gauge("serve/jobs_running", obs::Stability::Volatile)
        .set(static_cast<std::int64_t>(jobs_.running_jobs()));
    obs::gauge("serve/jobs_done", obs::Stability::Volatile).set(s.jobs_done);
    obs::gauge("serve/jobs_failed", obs::Stability::Volatile)
        .set(s.jobs_failed);
    obs::gauge("serve/jobs_rejected", obs::Stability::Volatile)
        .set(s.jobs_rejected);
    obs::gauge("serve/shards_retried", obs::Stability::Volatile)
        .set(s.shards_retried);
    obs::gauge("serve/worker_restarts", obs::Stability::Volatile)
        .set(worker_restarts_);
    obs::gauge("serve/runs_completed", obs::Stability::Volatile)
        .set(s.runs_completed);
  }

  void write_metrics() {
    obs::set_metrics_enabled(true);
    update_gauges();
    std::ofstream out(options_.metrics_path);
    if (!out) {
      std::fprintf(stderr, "serve: cannot write metrics %s\n",
                   options_.metrics_path.c_str());
      return;
    }
    out << obs::snapshot_json(obs::snapshot(), "serve", "serve");
    std::fprintf(stderr, "wrote metrics %s\n", options_.metrics_path.c_str());
  }

  // ---- event loop -----------------------------------------------------

  void poll_once() {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    const std::size_t client_base = fds.size();
    // Snapshot the client count: accept_client() below may grow
    // clients_, and those fresh connections have no pollfd this round
    // (reading them before they signal POLLIN would block on nothing).
    const std::size_t polled_clients = clients_.size();
    for (const ClientConn& c : clients_)
      fds.push_back(pollfd{
          c.fd,
          static_cast<short>(POLLIN | (c.out.empty() ? 0 : POLLOUT)), 0});
    const std::size_t worker_base = fds.size();
    for (const WorkerSlot& w : workers_)
      fds.push_back(pollfd{w.fd, w.fd >= 0 ? short{POLLIN} : short{0}, 0});

    const int rc = ::poll(fds.data(), fds.size(), 200);
    if (rc < 0 && errno != EINTR) {
      std::perror("serve: poll");
      stopping_ = true;
      return;
    }

    // Watchdog: a busy worker past the deadline is killed; its pipe
    // EOF below runs the crash/retry path with a timeout diagnostic.
    for (WorkerSlot& w : workers_) {
      if (w.fd >= 0 && w.busy && !w.timed_out &&
          seconds_since(w.since) > options_.shard_timeout) {
        w.timed_out = true;
        ::kill(w.pid, SIGKILL);
      }
    }

    if (rc <= 0) return;

    if (fds[0].revents & POLLIN) accept_client();

    for (std::size_t i = 0; i < polled_clients; ++i) {
      const short ev = fds[client_base + i].revents;
      ClientConn& c = clients_[i];
      bool alive = true;
      if (ev & POLLOUT) alive = flush_client(c);
      if (alive && (ev & (POLLIN | POLLHUP | POLLERR)))
        alive = client_readable(c);
      if (!alive) {
        ::close(c.fd);
        c.fd = -1;
      }
      if (stopping_) break;  // drain pending replies at shutdown below
    }
    clients_.erase(std::remove_if(clients_.begin(), clients_.end(),
                                  [](const ClientConn& c) { return c.fd < 0; }),
                   clients_.end());

    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const short ev = fds[worker_base + i].revents;
      if (workers_[i].fd >= 0 && (ev & (POLLIN | POLLHUP | POLLERR)))
        worker_readable(workers_[i]);
      if (stopping_) return;  // a client asked for shutdown mid-loop
    }
  }

  void accept_client() {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    // Non-blocking: a client that never writes (or reads its replies
    // slowly) must not stall the poll loop and every other job.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    clients_.push_back(ClientConn{fd, {}, {}});
  }

  /// Returns false when the connection should close.
  bool client_readable(ClientConn& client) {
    char chunk[4096];
    const ssize_t n = ::read(client.fd, chunk, sizeof chunk);
    if (n < 0) return errno == EAGAIN || errno == EWOULDBLOCK ||
                      errno == EINTR;
    if (n == 0) return false;  // EOF
    client.buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t at;
    while ((at = client.buf.find('\n')) != std::string::npos) {
      const std::string line = client.buf.substr(0, at);
      client.buf.erase(0, at + 1);
      client.out += handle_command(line);
      client.out.push_back('\n');
      if (stopping_) break;
    }
    if (client.out.size() > kClientSendCap) return false;  // slow reader
    return flush_client(client);
  }

  /// Writes as much queued reply as the socket accepts; leftovers wait
  /// for POLLOUT.  Returns false when the connection should close.
  bool flush_client(ClientConn& client) {
    while (!client.out.empty()) {
      const ssize_t n =
          ::write(client.fd, client.out.data(), client.out.size());
      if (n > 0) {
        client.out.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;  // EPIPE and friends: peer died
    }
    return true;
  }

  void worker_readable(WorkerSlot& slot) {
    char chunk[65536];
    const ssize_t n = ::read(slot.fd, chunk, sizeof chunk);
    if (n <= 0) {
      worker_crashed(slot);
      return;
    }
    slot.buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t at;
    while ((at = slot.buf.find('\n')) != std::string::npos) {
      const std::string line = slot.buf.substr(0, at);
      slot.buf.erase(0, at + 1);
      worker_result(slot, line);
    }
    update_gauges();
  }

  DaemonOptions options_;
  JobTable jobs_;
  int listen_fd_ = -1;
  std::vector<WorkerSlot> workers_;
  std::vector<ClientConn> clients_;
  std::int64_t worker_restarts_ = 0;
  bool stopping_ = false;
  Clock::time_point start_{};
};

}  // namespace

int run_daemon(const DaemonOptions& options) { return Daemon(options).run(); }

}  // namespace rats::serve
