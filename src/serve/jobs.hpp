// Job and shard bookkeeping for the scenario service — the daemon's
// state machine, factored away from sockets and processes so the
// backpressure, retry and merge-ordering behaviour is unit-testable
// (tests/serve_test.cpp drives it directly).
//
// Lifecycle: submit() parses + validates the spec and plans its shards
// (rejecting with a retry hint when the bounded queue is full);
// next_dispatch() hands pending shards out in submission/shard-index
// order; shard_done()/shard_failed() record results.  A failed shard
// (worker crash or watchdog kill) is retried exactly once on a fresh
// dispatch; a second failure fails the whole job with the diagnostic.
// When a job's last shard lands, the payloads are parsed and merged
// **in shard-index order** — outcomes land at absolute run indices, so
// arrival order cannot influence the merged bytes.
//
// A finished (done or failed) job keeps only what status()/result()
// serve; its shard payloads, spec text and parsed spec are dropped,
// and only the `finished_keep` most recently finished jobs are
// retained at all, so a long-lived daemon's memory stays bounded.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "scenario/spec.hpp"
#include "serve/shard.hpp"

namespace rats::serve {

/// Daemon-wide counters; the daemon mirrors these into obs metrics and
/// the `stats` protocol reply.
struct ServeStats {
  std::int64_t jobs_submitted = 0;
  std::int64_t jobs_rejected = 0;
  std::int64_t jobs_done = 0;
  std::int64_t jobs_failed = 0;
  std::int64_t shards_dispatched = 0;
  std::int64_t shards_retried = 0;
  std::int64_t runs_completed = 0;  ///< scenarios simulated by workers
};

struct JobConfig {
  std::size_t queue_capacity = 8;  ///< max unfinished jobs before reject
  std::size_t shards_per_job = 2;  ///< plan target (typically #workers)
  int retry_after_ms = 250;        ///< backpressure hint to clients
  std::size_t finished_keep = 16;  ///< done/failed jobs retained for fetch
};

class JobTable {
 public:
  explicit JobTable(const JobConfig& config) : config_(config) {}

  struct SubmitResult {
    bool accepted = false;
    std::string job_id;    ///< when accepted
    std::string error;     ///< when rejected (bad spec or queue full)
    int retry_after_ms = 0;  ///< > 0: transient, try again later
    std::size_t shards = 0;
    std::size_t runs = 0;
  };
  /// `crash_first` / `hang_first` arm the fault-injection test hooks:
  /// the job's first shard dispatch instructs the worker to die / hang,
  /// exercising the retry and watchdog paths end to end.
  SubmitResult submit(const std::string& spec_text, bool crash_first = false,
                      bool hang_first = false);

  struct Dispatch {
    std::string job_id;
    std::size_t shard = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t total = 0;
    bool sharded = false;
    bool crash = false;  ///< test hook: worker exits mid-shard
    bool hang = false;   ///< test hook: worker hangs (watchdog food)
    std::string spec_text;
  };
  /// Claims the next pending shard (marks it in flight).  False when
  /// nothing is pending.
  bool next_dispatch(Dispatch& out);

  /// Records a shard result; merges the job when it was the last one.
  void shard_done(const std::string& job_id, std::size_t shard,
                  const std::string& payload);

  /// Records a crashed/killed shard.  Returns true when the shard was
  /// requeued for its one retry; false when the job is now failed.
  bool shard_failed(const std::string& job_id, std::size_t shard,
                    const std::string& diagnostic);

  struct Status {
    bool known = false;
    std::string state;  ///< "queued" | "running" | "done" | "failed"
    std::string error;
    std::size_t shards_done = 0;
    std::size_t shards_total = 0;
    std::size_t runs_total = 0;
  };
  Status status(const std::string& job_id) const;

  /// The merged report JSON; nullptr unless the job is done.
  const std::string* result(const std::string& job_id) const;

  std::size_t active_jobs() const;   ///< queued + running
  std::size_t queued_jobs() const;
  std::size_t running_jobs() const;

  ServeStats& stats() { return stats_; }
  const JobConfig& config() const { return config_; }

 private:
  enum class ShardState { Pending, InFlight, Done };
  enum class JobState { Queued, Running, Done, Failed };

  struct Job {
    std::string id;
    scenario::ScenarioSpec spec;
    std::string spec_text;
    ShardPlan plan;
    std::vector<ShardState> shard_state;
    std::vector<int> attempts;
    std::vector<std::string> payloads;
    std::size_t shards_done = 0;
    JobState state = JobState::Queued;
    std::string error;
    std::string result_json;
    bool crash_first = false;
    bool hang_first = false;
    bool hook_armed = true;  ///< hooks fire on the first dispatch only
  };

  void complete(Job& job);
  void finish(Job& job);

  JobConfig config_;
  ServeStats stats_;
  std::vector<std::string> order_;  ///< submission order of job ids
  std::vector<std::string> finished_;  ///< completion order of done/failed ids
  std::map<std::string, Job> jobs_;
  std::int64_t next_id_ = 1;
};

}  // namespace rats::serve
