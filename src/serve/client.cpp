#include "serve/client.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"
#include "serve/protocol.hpp"

namespace rats::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int connect_to(const std::string& socket_path) {
  RATS_REQUIRE(!socket_path.empty(), "daemon socket path is empty");
  RATS_REQUIRE(socket_path.size() < sizeof(sockaddr_un{}.sun_path),
               "daemon socket path too long");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  RATS_REQUIRE(fd >= 0, "cannot create a socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("cannot connect to daemon at '" + socket_path +
                "': " + std::strerror(err));
  }
  return fd;
}

}  // namespace

std::string request(const std::string& socket_path, const std::string& line) {
  const int fd = connect_to(socket_path);
  std::string reply;
  const bool ok = write_line(fd, line) && LineReader(fd).read_line(reply);
  ::close(fd);
  RATS_REQUIRE(ok, "daemon at '" + socket_path + "' hung up mid-request");
  return reply;
}

json::Value request_json(const std::string& socket_path,
                         const std::string& line) {
  return json::parse(request(socket_path, line));
}

std::string submit_and_wait(const std::string& socket_path,
                            const std::string& spec_text,
                            const SubmitOptions& options) {
  const Clock::time_point t0 = Clock::now();
  std::string submit = std::string("{\"cmd\":\"submit\",") +
                       field("spec", spec_text);
  if (options.crash_test) submit += ",\"crash_test\":true";
  if (options.hang_test) submit += ",\"hang_test\":true";
  submit += "}";

  // Submit, honouring backpressure: a queue-full reject carries
  // retry_after_ms and is worth retrying; any other error is final.
  std::string job;
  while (true) {
    const json::Value reply = request_json(socket_path, submit);
    if (reply.get_int("ok") == 1) {
      job = reply.require_string("job", "submit reply");
      break;
    }
    const std::int64_t retry_ms = reply.get_int("retry_after_ms", 0);
    const std::string error = reply.get_string("error", "submit failed");
    RATS_REQUIRE(retry_ms > 0, "daemon rejected the submission: " + error);
    RATS_REQUIRE(seconds_since(t0) < options.timeout,
                 "gave up submitting after " +
                     std::to_string(options.timeout) + "s: " + error);
    if (options.progress)
      std::fprintf(stderr, "submit: queue full, retrying in %lldms\n",
                   static_cast<long long>(retry_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(retry_ms));
  }

  const std::string status_line =
      std::string("{\"cmd\":\"status\",") + field("job", job) + "}";
  while (true) {
    const json::Value status = request_json(socket_path, status_line);
    RATS_REQUIRE(status.get_int("ok") == 1,
                 "status poll failed: " +
                     status.get_string("error", "unknown job"));
    const std::string state = status.get_string("state");
    if (options.progress)
      std::fprintf(stderr, "submit: %s %s (%lld/%lld shards)\n", job.c_str(),
                   state.c_str(),
                   static_cast<long long>(status.get_int("shards_done")),
                   static_cast<long long>(status.get_int("shards_total")));
    if (state == "done") break;
    RATS_REQUIRE(state != "failed",
                 job + " failed: " + status.get_string("error", "unknown"));
    RATS_REQUIRE(seconds_since(t0) < options.timeout,
                 job + " did not finish within " +
                     std::to_string(options.timeout) + "s");
    std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
  }

  const json::Value result = request_json(
      socket_path, std::string("{\"cmd\":\"result\",") + field("job", job) +
                       "}");
  RATS_REQUIRE(result.get_int("ok") == 1,
               "result fetch failed: " +
                   result.get_string("error", "unknown"));
  return result.require_string("report", "result reply");
}

}  // namespace rats::serve
