#include "serve/protocol.hpp"

#include <cerrno>
#include <unistd.h>

namespace rats::serve {

bool write_line(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineReader::read_line(std::string& out) {
  while (!next_line(out)) {
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-line: the peer died
    feed(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

bool LineReader::next_line(std::string& out) {
  const std::size_t at = buf_.find('\n');
  if (at == std::string::npos) return false;
  out = buf_.substr(0, at);
  buf_.erase(0, at + 1);
  return true;
}

std::string field(const char* key, const std::string& value) {
  return std::string("\"") + key + "\":\"" + json::escape(value) + "\"";
}

std::string field(const char* key, std::int64_t value) {
  return std::string("\"") + key + "\":" + std::to_string(value);
}

}  // namespace rats::serve
