#include "serve/jobs.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "report/render.hpp"
#include "scenario/parser.hpp"

namespace rats::serve {

JobTable::SubmitResult JobTable::submit(const std::string& spec_text,
                                        bool crash_first, bool hang_first) {
  SubmitResult result;
  if (active_jobs() >= config_.queue_capacity) {
    ++stats_.jobs_rejected;
    result.error = "queue full (" + std::to_string(config_.queue_capacity) +
                   " jobs in flight)";
    result.retry_after_ms = config_.retry_after_ms;
    return result;
  }
  Job job;
  try {
    job.spec = scenario::parse_scenario_string(spec_text, "<submit>");
    job.plan = plan_shards(job.spec, config_.shards_per_job);
  } catch (const Error& e) {
    ++stats_.jobs_rejected;
    result.error = e.what();
    return result;  // permanent: no retry hint
  }
  job.id = "job-" + std::to_string(next_id_++);
  job.spec_text = spec_text;
  job.shard_state.assign(job.plan.shards.size(), ShardState::Pending);
  job.attempts.assign(job.plan.shards.size(), 0);
  job.payloads.assign(job.plan.shards.size(), std::string());
  job.crash_first = crash_first;
  job.hang_first = hang_first;
  ++stats_.jobs_submitted;
  result.accepted = true;
  result.job_id = job.id;
  result.shards = job.plan.shards.size();
  result.runs = job.plan.total_runs;
  order_.push_back(job.id);
  jobs_.emplace(job.id, std::move(job));
  return result;
}

bool JobTable::next_dispatch(Dispatch& out) {
  for (const std::string& id : order_) {
    Job& job = jobs_.at(id);
    if (job.state != JobState::Queued && job.state != JobState::Running)
      continue;
    for (std::size_t s = 0; s < job.shard_state.size(); ++s) {
      if (job.shard_state[s] != ShardState::Pending) continue;
      job.shard_state[s] = ShardState::InFlight;
      ++job.attempts[s];
      job.state = JobState::Running;
      ++stats_.shards_dispatched;
      out.job_id = job.id;
      out.shard = s;
      out.begin = job.plan.shards[s].begin;
      out.end = job.plan.shards[s].end;
      out.total = job.plan.total_runs;
      out.sharded = job.plan.sharded;
      out.crash = job.crash_first && job.hook_armed;
      out.hang = job.hang_first && job.hook_armed;
      job.hook_armed = false;
      out.spec_text = job.spec_text;
      return true;
    }
  }
  return false;
}

void JobTable::shard_done(const std::string& job_id, std::size_t shard,
                          const std::string& payload) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  if (job.state != JobState::Running ||
      shard >= job.shard_state.size() ||
      job.shard_state[shard] != ShardState::InFlight)
    return;  // stale result (job already failed, or double delivery)
  job.shard_state[shard] = ShardState::Done;
  job.payloads[shard] = payload;
  ++job.shards_done;
  if (job.plan.sharded)
    stats_.runs_completed += static_cast<std::int64_t>(
        job.plan.shards[shard].end - job.plan.shards[shard].begin);
  if (job.shards_done == job.shard_state.size()) complete(job);
}

bool JobTable::shard_failed(const std::string& job_id, std::size_t shard,
                            const std::string& diagnostic) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  Job& job = it->second;
  if (job.state != JobState::Running ||
      shard >= job.shard_state.size() ||
      job.shard_state[shard] != ShardState::InFlight)
    return false;
  if (job.attempts[shard] < 2) {
    job.shard_state[shard] = ShardState::Pending;
    ++stats_.shards_retried;
    return true;
  }
  job.state = JobState::Failed;
  job.error = "shard " + std::to_string(shard) + " failed twice: " +
              diagnostic;
  ++stats_.jobs_failed;
  finish(job);
  return false;
}

void JobTable::complete(Job& job) {
  try {
    if (!job.plan.sharded) {
      // Whole-report job: the payload *is* the report JSON.  Round-trip
      // it through parse_json so a malformed worker reply fails here,
      // and so the daemon serves exactly what render_json produces.
      job.result_json = report::render_json(
          report::parse_json(job.payloads.front()));
    } else {
      // Merge in shard-index order: payloads are parsed 0..N-1 and
      // every outcome lands at its absolute run index before the
      // replay pass rebuilds the report.
      std::vector<RunOutcome> outcomes(job.plan.total_runs);
      for (std::size_t s = 0; s < job.payloads.size(); ++s) {
        const ShardOutcomes parsed = parse_shard_payload(job.payloads[s]);
        RATS_REQUIRE(parsed.begin == job.plan.shards[s].begin &&
                         parsed.outcomes.size() ==
                             job.plan.shards[s].end -
                                 job.plan.shards[s].begin,
                     "shard payload does not match its planned range");
        for (std::size_t i = 0; i < parsed.outcomes.size(); ++i)
          outcomes[parsed.begin + i] = parsed.outcomes[i];
      }
      job.result_json = merge_report_json(job.spec, outcomes);
    }
    job.state = JobState::Done;
    ++stats_.jobs_done;
  } catch (const Error& e) {
    job.state = JobState::Failed;
    job.error = std::string("merge failed: ") + e.what();
    ++stats_.jobs_failed;
  }
  finish(job);
}

void JobTable::finish(Job& job) {
  // Only status()/result() can touch the job from here on: drop the
  // shard payloads, spec text and parsed spec, then evict the oldest
  // finished jobs beyond the bounded history.  Late results for an
  // evicted id fall into the stale-delivery path and are ignored.
  job.payloads.clear();
  job.payloads.shrink_to_fit();
  job.spec_text.clear();
  job.spec_text.shrink_to_fit();
  job.spec = scenario::ScenarioSpec{};
  finished_.push_back(job.id);
  const std::size_t keep = std::max<std::size_t>(config_.finished_keep, 1);
  while (finished_.size() > keep) {
    const std::string victim = finished_.front();
    finished_.erase(finished_.begin());
    order_.erase(std::remove(order_.begin(), order_.end(), victim),
                 order_.end());
    jobs_.erase(victim);
  }
}

JobTable::Status JobTable::status(const std::string& job_id) const {
  Status status;
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return status;
  const Job& job = it->second;
  status.known = true;
  switch (job.state) {
    case JobState::Queued: status.state = "queued"; break;
    case JobState::Running: status.state = "running"; break;
    case JobState::Done: status.state = "done"; break;
    case JobState::Failed: status.state = "failed"; break;
  }
  status.error = job.error;
  status.shards_done = job.shards_done;
  status.shards_total = job.shard_state.size();
  status.runs_total = job.plan.total_runs;
  return status;
}

const std::string* JobTable::result(const std::string& job_id) const {
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.state != JobState::Done) return nullptr;
  return &it->second.result_json;
}

std::size_t JobTable::active_jobs() const {
  return queued_jobs() + running_jobs();
}

std::size_t JobTable::queued_jobs() const {
  std::size_t n = 0;
  for (const auto& [id, job] : jobs_)
    if (job.state == JobState::Queued) ++n;
  return n;
}

std::size_t JobTable::running_jobs() const {
  std::size_t n = 0;
  for (const auto& [id, job] : jobs_)
    if (job.state == JobState::Running) ++n;
  return n;
}

}  // namespace rats::serve
