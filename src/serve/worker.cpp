#include "serve/worker.hpp"

#include <cstdlib>
#include <exception>
#include <string>
#include <unistd.h>

#include "common/format.hpp"
#include "scenario/parser.hpp"
#include "serve/protocol.hpp"
#include "serve/shard.hpp"

namespace rats::serve {

int worker_loop(int fd) {
  LineReader reader(fd);
  std::string line;
  while (reader.read_line(line)) {
    json::Value msg;
    try {
      msg = json::parse(line);
    } catch (const std::exception&) {
      continue;  // framing noise; the daemon never sends this
    }
    const std::string verb = msg.get_string("do");
    if (verb == "exit") return 0;
    if (verb != "shard" && verb != "whole") continue;

    const std::string job = msg.get_string("job");
    const std::int64_t shard = msg.get_int("shard");

    // Fault-injection test hooks (see JobTable::submit): `crash`
    // simulates a worker dying mid-shard, `hang` a wedged one — the
    // daemon's respawn/retry and watchdog paths must absorb both.
    if (msg.get_bool("crash")) _exit(64);
    if (msg.get_bool("hang"))
      while (true) ::pause();

    std::string reply;
    try {
      const scenario::ScenarioSpec spec = scenario::parse_scenario_string(
          msg.require_string("spec", "dispatch"), "<dispatch>");
      const std::string payload =
          verb == "shard"
              ? run_shard_payload(
                    spec, static_cast<std::size_t>(msg.get_int("begin")),
                    static_cast<std::size_t>(msg.get_int("end")),
                    static_cast<std::size_t>(msg.get_int("total")))
              : run_whole_payload(spec);
      reply = strf("{\"job\":\"%s\",\"shard\":%lld,\"ok\":1,\"payload\":\"%s\"}",
                   json::escape(job).c_str(), static_cast<long long>(shard),
                   json::escape(payload).c_str());
    } catch (const std::exception& e) {
      reply = strf("{\"job\":\"%s\",\"shard\":%lld,\"ok\":0,\"error\":\"%s\"}",
                   json::escape(job).c_str(), static_cast<long long>(shard),
                   json::escape(e.what()).c_str());
    }
    if (!write_line(fd, reply)) return 1;  // daemon went away
  }
  return 0;
}

}  // namespace rats::serve
