// The `rats serve` daemon: a long-lived scenario service on a
// Unix-domain socket.
//
// Architecture (see shard.hpp for the determinism story):
//
//   client ──unix socket──▶ daemon ──socketpair──▶ worker processes
//
// The daemon is a single-threaded poll() loop — it never spawns a
// thread (the plan/replay passes force threads=1), so forking
// replacement workers stays safe at any point in its life.  Workers
// are pre-forked at startup; a worker that crashes or trips the shard
// watchdog is SIGKILLed, reaped and respawned, and its shard is
// retried once on a fresh worker before the job is failed — the
// fork+watchdog isolation pattern of src/fuzz/driver.cpp, kept
// resident.  Submission is bounded: when `queue_capacity` jobs are
// unfinished, submits are rejected with a retry-after hint instead of
// queueing without limit.
#pragma once

#include <string>

namespace rats::serve {

struct DaemonOptions {
  std::string socket_path;      ///< unix socket to listen on (required)
  int workers = 2;              ///< pre-forked worker processes
  std::size_t queue_capacity = 8;  ///< max unfinished jobs
  double shard_timeout = 300.0;    ///< seconds before a shard is killed
  int retry_after_ms = 250;        ///< backpressure hint
  std::size_t shards_per_job = 0;  ///< plan target (0 = worker count)
  bool progress = false;           ///< stderr line per shard completion
  std::string metrics_path;  ///< write an obs snapshot here at shutdown
};

/// Runs the daemon until a `shutdown` command.  Returns 0 on clean
/// shutdown, non-zero on setup errors (bad socket path, fork failure).
int run_daemon(const DaemonOptions& options);

}  // namespace rats::serve
