#include "obs/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <map>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "trace/trace.hpp"  // json_escape

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace rats::obs {

namespace {

/// The process-wide enable flag.  Seeded from the legacy env-var
/// aliases once (static init of a function-local static), flipped by
/// set_metrics_enabled afterwards.
std::atomic<bool>& enable_flag() {
  static std::atomic<bool> enabled = [] {
    return std::getenv("RATS_METRICS") != nullptr ||
           std::getenv("RATS_SOLVER_STATS") != nullptr ||
           std::getenv("RATS_REDIST_STATS") != nullptr ||
           std::getenv("RATS_RUN_STATS") != nullptr;
  }();
  return enabled;
}

class Registry {
 public:
  static Registry& instance() {
    static Registry registry;
    return registry;
  }

  Counter& counter(const std::string& name, Stability stability) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = counters_.try_emplace(name);
    if (inserted) {
      require_fresh(name, "counter");
      it->second.stability = stability;
    }
    return it->second.v;
  }

  Gauge& gauge(const std::string& name, Stability stability) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = gauges_.try_emplace(name);
    if (inserted) {
      require_fresh(name, "gauge");
      it->second.stability = stability;
    }
    return it->second.v;
  }

  Timer& timer(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = timers_.try_emplace(name);
    if (inserted) require_fresh(name, "timer");
    return it->second;
  }

  Histogram& histogram(const std::string& name, std::size_t buckets) {
    RATS_REQUIRE(buckets > 0, "histogram needs at least one bucket");
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
      RATS_REQUIRE(it->second->size() == buckets,
                   "histogram '" + name +
                       "' re-registered with a different bucket count");
      return *it->second;
    }
    Histogram& h = *histograms_.emplace(name,
                                        std::make_unique<Histogram>(buckets))
                        .first->second;
    require_fresh(name, "histogram");
    return h;
  }

  Snapshot snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot snap;
    for (const auto& [name, entry] : counters_) {
      auto& section = entry.stability == Stability::Stable
                          ? snap.counters
                          : snap.volatile_counters;
      section.push_back({name, entry.v.value()});
    }
    for (const auto& [name, entry] : gauges_) {
      auto& section = entry.stability == Stability::Stable
                          ? snap.gauges
                          : snap.volatile_gauges;
      section.push_back({name, entry.v.value()});
    }
    for (const auto& [name, t] : timers_)
      snap.timers.push_back({name, t.total_ns(), t.count()});
    for (const auto& [name, h] : histograms_) {
      Snapshot::HistogramValue hv;
      hv.name = name;
      hv.buckets.reserve(h->size());
      for (std::size_t b = 0; b < h->size(); ++b)
        hv.buckets.push_back(h->bucket(b));
      snap.histograms.push_back(std::move(hv));
    }
    // std::map iteration is already name-sorted; the sections inherit
    // the order, which is what makes exported snapshots byte-stable.
    return snap;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, entry] : counters_) entry.v.reset();
    for (auto& [name, entry] : gauges_) entry.v.reset();
    for (auto& [name, t] : timers_) t.reset();
    for (auto& [name, h] : histograms_) h->reset();
  }

 private:
  struct CounterEntry {
    Counter v;
    Stability stability = Stability::Stable;
  };
  struct GaugeEntry {
    Gauge v;
    Stability stability = Stability::Stable;
  };

  /// One name, one kind: a name just inserted into one section must
  /// not already exist in any other.
  void require_fresh(const std::string& name, const char* kind) {
    const int hits = (counters_.count(name) ? 1 : 0) +
                     (gauges_.count(name) ? 1 : 0) +
                     (timers_.count(name) ? 1 : 0) +
                     (histograms_.count(name) ? 1 : 0);
    RATS_REQUIRE(hits == 1, "metric '" + name +
                                "' already registered as another kind (now "
                                "requested as " +
                                kind + ")");
  }

  std::mutex mu_;
  // std::map: stable references on insert AND deterministic
  // (name-sorted) snapshot order.  Histograms are not movable
  // (vector<atomic>), so they sit behind a unique_ptr.
  std::map<std::string, CounterEntry> counters_;
  std::map<std::string, GaugeEntry> gauges_;
  std::map<std::string, Timer> timers_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

void append_values(std::string& out, const char* key,
                   const std::vector<Snapshot::Value>& values) {
  out += std::string("\"") + key + "\":{";
  for (std::size_t i = 0; i < values.size(); ++i)
    out += std::string(i ? "," : "") + "\n  \"" +
           json_escape(values[i].name) +
           "\":" + std::to_string(values[i].value);
  out += values.empty() ? "},\n" : "\n },\n";
}

void append_signed(std::string& out, const char* key,
                   const std::vector<Snapshot::SignedValue>& values) {
  out += std::string("\"") + key + "\":{";
  for (std::size_t i = 0; i < values.size(); ++i)
    out += std::string(i ? "," : "") + "\n  \"" +
           json_escape(values[i].name) +
           "\":" + std::to_string(values[i].value);
  out += values.empty() ? "},\n" : "\n },\n";
}

}  // namespace

bool metrics_enabled() {
  return enable_flag().load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  enable_flag().store(on, std::memory_order_relaxed);
}

Counter& counter(const std::string& name, Stability stability) {
  return Registry::instance().counter(name, stability);
}

Gauge& gauge(const std::string& name, Stability stability) {
  return Registry::instance().gauge(name, stability);
}

Timer& timer(const std::string& name) {
  return Registry::instance().timer(name);
}

Histogram& histogram(const std::string& name, std::size_t buckets) {
  return Registry::instance().histogram(name, buckets);
}

Snapshot snapshot() { return Registry::instance().snapshot(); }

void reset() { Registry::instance().reset(); }

BuildStamp build_stamp() {
  BuildStamp stamp;
#if defined(__unix__) || defined(__APPLE__)
  char host[256] = {};
  if (gethostname(host, sizeof host - 1) == 0 && host[0] != '\0')
    stamp.hostname = host;
#endif
  if (stamp.hostname.empty()) stamp.hostname = "unknown";
#ifdef RATS_BUILD_TYPE
  stamp.build_type = RATS_BUILD_TYPE;
#else
  stamp.build_type = "unknown";
#endif
#ifdef RATS_GIT_DESCRIBE
  stamp.git_describe = RATS_GIT_DESCRIBE;
#else
  stamp.git_describe = "unknown";
#endif
  return stamp;
}

std::string snapshot_json(const Snapshot& snap, const std::string& scenario,
                          const std::string& kind) {
  const BuildStamp stamp = build_stamp();
  std::string out = "{\"rats_metrics\":1,\n";
  out += "\"meta\":{\"scenario\":\"" + json_escape(scenario) +
         "\",\"kind\":\"" + json_escape(kind) + "\",\"hostname\":\"" +
         json_escape(stamp.hostname) + "\",\"build\":\"" +
         json_escape(stamp.build_type) + "\",\"git\":\"" +
         json_escape(stamp.git_describe) +
         "\",\"created_unix\":" + std::to_string(std::time(nullptr)) +
         "},\n";
  append_values(out, "counters", snap.counters);
  out += "\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    out += std::string(i ? "," : "") + "\n  \"" + json_escape(h.name) +
           "\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b)
      out += std::string(b ? "," : "") + std::to_string(h.buckets[b]);
    out += "]";
  }
  out += snap.histograms.empty() ? "},\n" : "\n },\n";
  append_signed(out, "gauges", snap.gauges);
  // Everything below this line is expected to differ between runs.
  append_values(out, "volatile_counters", snap.volatile_counters);
  append_signed(out, "volatile_gauges", snap.volatile_gauges);
  out += "\"timers\":{";
  for (std::size_t i = 0; i < snap.timers.size(); ++i) {
    const auto& t = snap.timers[i];
    out += std::string(i ? "," : "") + "\n  \"" + json_escape(t.name) +
           "\":{\"ns\":" + std::to_string(t.ns) +
           ",\"count\":" + std::to_string(t.count) + "}";
  }
  out += snap.timers.empty() ? "}\n" : "\n }\n";
  out += "}\n";
  return out;
}

}  // namespace rats::obs
