// Scoped profiling spans with Chrome trace-event / Perfetto export.
//
// `PhaseTimer phase("schedule");` records a begin/end pair on the
// current thread's buffer — with a real OS thread id, so the worker
// pool's lanes separate in the viewer — and `spans_json()` renders all
// buffers as one Chrome trace-event JSON document (`rats run --profile
// spans.json`), loadable in chrome://tracing or ui.perfetto.dev.
//
// Recording is gated on `profiling_enabled()`: when off (the default)
// every instrumentation point costs one predictable branch and no
// allocation, so outputs stay byte-identical.  When on, each event is
// one push_back of {name, timestamp, depth-direction} onto a
// thread-local vector; per-thread buffers are registered once and
// reused for the life of the thread (the persistent worker pool keeps
// its buffers across run matrices).
//
// Timestamps come from steady_clock, so they are monotonic per thread
// by construction; spans on one thread nest like the C++ scopes that
// record them, which is exactly the `B`/`E` well-formedness the
// exporter (and chrome://tracing) needs.
#pragma once

#include <cstdint>
#include <string>

namespace rats::obs {

/// Whether spans record — one relaxed atomic load, the single branch a
/// disabled instrumentation point pays.
bool profiling_enabled();

/// Turns span recording on/off (`rats run --profile`, tests).
void set_profiling_enabled(bool on);

/// Opens a span on the calling thread.  `name` must stay valid until
/// export: pass a string literal, or intern a dynamic name first.
void span_begin(const char* name);

/// Closes the innermost open span on the calling thread.
void span_end();

/// Copies a dynamic name (a per-run label like "run fft-2/CPA") into
/// a process-lifetime pool and returns the stable pointer.  Intended
/// for once-per-run labels, not hot loops.
const char* intern_name(const std::string& name);

/// RAII span covering the enclosing scope.
class PhaseTimer {
 public:
  explicit PhaseTimer(const char* name)
      : active_(profiling_enabled()) {
    if (active_) span_begin(name);
  }
  ~PhaseTimer() {
    if (active_) span_end();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  bool active_;
};

/// All recorded spans as one Chrome trace-event JSON document: a
/// `traceEvents` array of `B`/`E` pairs (one event per line), real
/// pid/tid, microsecond timestamps rebased so the earliest event is 0.
/// Spans still open on some thread are closed at that thread's last
/// timestamp, so the output is always well-formed.
std::string spans_json();

/// Number of span pairs recorded so far (diagnostics/tests).
std::size_t span_count();

/// Drops every recorded span (tests; buffers stay registered).
void clear_spans();

}  // namespace rats::obs
