#include "obs/progress.hpp"

#include <cstdio>

#include "common/format.hpp"

namespace rats::obs {

namespace {

std::string format_eta(double seconds) {
  if (seconds < 0) seconds = 0;
  const auto s = static_cast<std::uint64_t>(seconds + 0.5);
  if (s < 60) return strf("%llus", static_cast<unsigned long long>(s));
  if (s < 3600)
    return strf("%llum%02llus", static_cast<unsigned long long>(s / 60),
                static_cast<unsigned long long>(s % 60));
  return strf("%lluh%02llum", static_cast<unsigned long long>(s / 3600),
              static_cast<unsigned long long>(s % 3600 / 60));
}

}  // namespace

ProgressMeter::ProgressMeter(std::string label, std::uint64_t total,
                             std::chrono::milliseconds interval)
    : label_(std::move(label)),
      total_(total),
      interval_(interval),
      start_(std::chrono::steady_clock::now()),
      last_paint_(start_ - interval) {}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::tick(std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  done_ += n;
  const auto now = std::chrono::steady_clock::now();
  if (now - last_paint_ < interval_) return;
  last_paint_ = now;
  paint_locked();
}

void ProgressMeter::finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  paint_locked();
  if (painted_) std::fputc('\n', stderr);
}

void ProgressMeter::paint_locked() {
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  std::fprintf(stderr, "\r%s", line(label_, done_, total_, elapsed_s).c_str());
  std::fflush(stderr);
  painted_ = true;
}

std::string ProgressMeter::line(const std::string& label, std::uint64_t done,
                                std::uint64_t total, double elapsed_s) {
  std::string out = "rats: " + std::to_string(done);
  if (total > 0) out += "/" + std::to_string(total);
  out += " " + label;
  if (total > 0)
    out += strf(" (%.1f%%)", 100.0 * static_cast<double>(done) /
                                 static_cast<double>(total));
  const double rate = elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 0;
  out += strf(" | %.1f/s", rate);
  if (total > 0 && done > 0 && done < total && rate > 0)
    out += " | eta " + format_eta(static_cast<double>(total - done) / rate);
  return out;
}

}  // namespace rats::obs
