#include "obs/span.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "trace/trace.hpp"  // json_escape

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif
#if defined(__linux__)
#include <sys/syscall.h>
#endif

namespace rats::obs {

namespace {

std::atomic<bool> g_profiling{false};

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t os_thread_id() {
#if defined(__linux__)
  return static_cast<std::uint64_t>(::syscall(SYS_gettid));
#else
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
#endif
}

struct SpanEvent {
  const char* name;  ///< nullptr on an end event
  std::int64_t ts_ns;
};

struct ThreadBuffer {
  std::uint64_t tid = 0;
  std::vector<SpanEvent> events;
};

/// Buffers of every thread that ever recorded a span, in registration
/// order.  Buffers are never removed: the persistent worker pool's
/// threads outlive individual runs, and export walks dead threads'
/// buffers too.
struct Recorder {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::deque<std::string> interned;  ///< per-run labels (stable storage)
};

Recorder& recorder() {
  static Recorder* r = new Recorder;  // leak: threads may outlive exit
  return *r;
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* buf = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = os_thread_id();
    owned->events.reserve(1024);
    ThreadBuffer* raw = owned.get();
    std::lock_guard<std::mutex> lock(recorder().mu);
    recorder().buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buf;
}

void append_event(std::string& out, bool begin, const char* name,
                  std::uint64_t pid, std::uint64_t tid, std::int64_t ts_ns,
                  bool first) {
  if (!first) out += ",\n";
  out += "{\"name\":\"";
  out += json_escape(name);
  out += begin ? "\",\"cat\":\"rats\",\"ph\":\"B\",\"pid\":"
               : "\",\"cat\":\"rats\",\"ph\":\"E\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":" + std::to_string(tid);
  // Microseconds with nanosecond resolution kept in the fraction.
  out += ",\"ts\":" + std::to_string(ts_ns / 1000) + "." +
         [](std::int64_t ns) {
           std::string frac = std::to_string(ns % 1000);
           return std::string(3 - frac.size(), '0') + frac;
         }(ts_ns) +
         "}";
  return;
}

}  // namespace

bool profiling_enabled() {
  return g_profiling.load(std::memory_order_relaxed);
}

void set_profiling_enabled(bool on) {
  g_profiling.store(on, std::memory_order_relaxed);
}

void span_begin(const char* name) {
  thread_buffer().events.push_back(SpanEvent{name, now_ns()});
}

void span_end() {
  thread_buffer().events.push_back(SpanEvent{nullptr, now_ns()});
}

const char* intern_name(const std::string& name) {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  r.interned.push_back(name);
  return r.interned.back().c_str();
}

std::string spans_json() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
#if defined(__unix__) || defined(__APPLE__)
  const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
#else
  const std::uint64_t pid = 1;
#endif
  // Rebase timestamps so the trace starts at 0 — viewers show relative
  // time and the numbers stay readable.
  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  for (const auto& buf : r.buffers)
    if (!buf->events.empty()) base = std::min(base, buf->events.front().ts_ns);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  std::vector<const char*> stack;
  for (const auto& buf : r.buffers) {
    stack.clear();
    std::int64_t last_ts = 0;
    for (const SpanEvent& ev : buf->events) {
      const std::int64_t ts = ev.ts_ns - base;
      last_ts = ts;
      if (ev.name != nullptr) {
        append_event(out, true, ev.name, pid, buf->tid, ts, first);
        stack.push_back(ev.name);
      } else if (!stack.empty()) {
        // An end always closes the innermost begin; unmatched ends
        // (cleared mid-span) are dropped.
        append_event(out, false, stack.back(), pid, buf->tid, ts, first);
        stack.pop_back();
      } else {
        continue;
      }
      first = false;
    }
    // Close spans still open on this thread (export mid-run) at the
    // thread's last timestamp so every B has an E.
    while (!stack.empty()) {
      append_event(out, false, stack.back(), pid, buf->tid, last_ts, first);
      stack.pop_back();
      first = false;
    }
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

std::size_t span_count() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t begins = 0;
  for (const auto& buf : r.buffers)
    for (const SpanEvent& ev : buf->events)
      if (ev.name != nullptr) ++begins;
  return begins;
}

void clear_spans() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& buf : r.buffers) buf->events.clear();
}

}  // namespace rats::obs
