// Live stderr heartbeat for long matrices and fuzz campaigns.
//
// `ProgressMeter` prints a single-line heartbeat to stderr (`\r`-
// rewritten while a TTY-style stream tolerates it, newline-terminated
// on finish) showing completed/total, throughput, and an ETA
// extrapolated from the average rate so far:
//
//   rats: 142/900 runs (15.8%) | 61.3/s | eta 12s
//
// The line format lives in the pure, clock-free `line()` helper so
// tests can pin it without sleeping.  Ticks are throttled: at most one
// repaint per `interval` (default 250ms), plus a guaranteed final
// paint from `finish()`.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace rats::obs {

class ProgressMeter {
 public:
  /// `label` names the unit ("runs", "specs"); `total` of 0 means the
  /// total is unknown and the percentage/ETA fields are omitted.
  ProgressMeter(std::string label, std::uint64_t total,
                std::chrono::milliseconds interval =
                    std::chrono::milliseconds(250));

  /// Ends the heartbeat with a final paint and a newline (idempotent).
  ~ProgressMeter();

  /// Marks `n` more units complete; repaints if `interval` has passed.
  /// Thread-safe: workers tick, the meter serializes the repaint.
  void tick(std::uint64_t n = 1);

  /// Final paint + newline; further ticks are ignored.
  void finish();

  /// Pure formatter behind the heartbeat — the exact line printed,
  /// minus the leading `\r`.  `elapsed_s` is wall time since start.
  static std::string line(const std::string& label, std::uint64_t done,
                          std::uint64_t total, double elapsed_s);

 private:
  void paint_locked();

  const std::string label_;
  const std::uint64_t total_;
  const std::chrono::milliseconds interval_;
  const std::chrono::steady_clock::time_point start_;

  std::mutex mu_;
  std::uint64_t done_ = 0;
  std::chrono::steady_clock::time_point last_paint_;
  bool finished_ = false;
  bool painted_ = false;
};

}  // namespace rats::obs
