// Process-wide metrics registry — the unified observability layer.
//
// Every counter the codebase used to keep in scattered env-var
// singletons (`RATS_SOLVER_STATS`, `RATS_REDIST_STATS`,
// `RATS_RUN_STATS`) lives here as a *named* instrument: counters,
// gauges, nanosecond timers and fixed-bucket histograms, registered
// once by name and bumped live with relaxed atomics.  The proven
// solver_stats pattern is generalized: when metrics are disabled every
// instrument costs exactly one predictable branch (a relaxed load of
// the process-wide enable flag), and nothing is printed or written, so
// all outputs stay byte-identical to an uninstrumented build.
//
// Enablement is process-wide and sticky:
//  * `rats run --metrics/--profile/--progress` enables it for the run;
//  * the legacy env vars RATS_SOLVER_STATS / RATS_REDIST_STATS /
//    RATS_RUN_STATS (and the new RATS_METRICS) act as enable-aliases,
//    and additionally select their legacy stderr exit report, which is
//    reproduced verbatim from registry state.
//
// Counter *values* are run-to-run deterministic (the work they count
// is), with one exception class: counters whose value depends on which
// worker thread claimed which job — the per-thread redistribution-plan
// cache hit/miss tallies — are registered `Stability::Volatile` and
// exported separately, so CI can pin the stable section byte-for-byte.
// Timers are always volatile (they measure wall time).
//
// Handles returned by `counter()` / `gauge()` / `timer()` /
// `histogram()` are stable for the life of the process; call sites
// resolve them once (function-local static reference) and bump through
// the reference on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rats::obs {

/// Whether instruments record.  One relaxed atomic load — the single
/// predictable branch every disabled call site pays.
bool metrics_enabled();

/// Turns recording on (CLI `--metrics`/`--progress`, tests) or off
/// (tests only).  The env-var aliases are folded in at static init.
void set_metrics_enabled(bool on);

/// Whether a counter's *value* is reproducible across identical runs.
enum class Stability {
  Stable,    ///< deterministic: CI may pin the exact value
  Volatile,  ///< depends on thread scheduling or wall time
};

/// Monotonic event count.
class Counter {
 public:
  void inc() { add(1); }
  void add(std::uint64_t n) {
    if (metrics_enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Counts regardless of the enable flag — for counters that back a
  /// public API contract (simulated_run_count) and must never miss.
  void add_always(std::uint64_t n) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins level (threads in use, corpus size, ...).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (metrics_enabled()) v_.store(v, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Accumulated wall time in nanoseconds plus the number of laps.
/// Always exported as volatile.
class Timer {
 public:
  void add_ns(std::uint64_t ns) {
    if (metrics_enabled()) {
      ns_.fetch_add(ns, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::uint64_t total_ns() const {
    return ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() {
    ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Fixed-bucket histogram; the caller maps a sample to its bucket
/// index (e.g. the solver's cone-fraction deciles).
class Histogram {
 public:
  explicit Histogram(std::size_t buckets) : buckets_(buckets) {}
  void record(std::size_t bucket) {
    if (metrics_enabled() && bucket < buckets_.size())
      buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  }
  std::size_t size() const { return buckets_.size(); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<std::atomic<std::uint64_t>> buckets_;
};

/// Registers (or finds) the named instrument.  Thread-safe; the
/// returned reference is valid for the life of the process.  A name
/// registers as exactly one kind — re-registering it as another kind
/// (or a histogram with a different bucket count) throws rats::Error.
Counter& counter(const std::string& name,
                 Stability stability = Stability::Stable);
Gauge& gauge(const std::string& name,
             Stability stability = Stability::Stable);
Timer& timer(const std::string& name);
Histogram& histogram(const std::string& name, std::size_t buckets);

/// A point-in-time copy of every registered instrument, each section
/// sorted by name.  Counters/gauges split by stability so the stable
/// section can be pinned byte-for-byte across runs.
struct Snapshot {
  struct Value {
    std::string name;
    std::uint64_t value = 0;
  };
  struct SignedValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct TimerValue {
    std::string name;
    std::uint64_t ns = 0;
    std::uint64_t count = 0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<std::uint64_t> buckets;
  };
  std::vector<Value> counters;           ///< Stability::Stable
  std::vector<Value> volatile_counters;  ///< Stability::Volatile
  std::vector<SignedValue> gauges;       ///< Stability::Stable
  std::vector<SignedValue> volatile_gauges;
  std::vector<TimerValue> timers;
  std::vector<HistogramValue> histograms;  ///< stable
};

Snapshot snapshot();

/// Zeroes every registered instrument (tests; snapshots between runs
/// are normally compared as deltas instead).
void reset();

/// The machine-attribution stamp every exported snapshot carries.
struct BuildStamp {
  std::string hostname;
  std::string build_type;    ///< CMAKE_BUILD_TYPE at compile time
  std::string git_describe;  ///< `git describe --always --dirty` at configure
};
BuildStamp build_stamp();

/// Renders a snapshot as the machine-readable metrics JSON (see the
/// README's Observability chapter for the schema).  `scenario` /
/// `kind` name what was run (empty strings are emitted as empty).
std::string snapshot_json(const Snapshot& snap, const std::string& scenario,
                          const std::string& kind);

}  // namespace rats::obs
