// Plain-text workflow interchange format, so applications can be
// scheduled without writing C++ (used by the rats_cli example).
//
// Line-oriented format; '#' starts a comment, blank lines are ignored:
//
//   task <name> m=<elements> a=<ops-per-element> alpha=<fraction>
//   edge <src-name> <dst-name> [bytes=<bytes>]
//
// Tasks must be declared before edges referencing them.  When bytes is
// omitted, an edge carries the source task's full dataset (the paper's
// model: m elements of 8 bytes).  Example:
//
//   task split  m=16e6 a=128 alpha=0.1
//   task work0  m=16e6 a=256 alpha=0.1
//   edge split work0
#pragma once

#include <iosfwd>
#include <string>

#include "dag/task_graph.hpp"

namespace rats {

/// Parses a workflow from text; throws rats::Error with a line number
/// on malformed input (unknown directive, missing field, duplicate or
/// unknown task name, non-finite/negative values).
TaskGraph parse_workflow(std::istream& in);

/// Parses a workflow from a string (convenience for tests).
TaskGraph parse_workflow_string(const std::string& text);

/// Loads a workflow file; throws rats::Error if unreadable.
TaskGraph load_workflow(const std::string& path);

/// Serializes a graph to the same format (round-trips with
/// parse_workflow up to comment/ordering normalization).
std::string to_workflow_text(const TaskGraph& graph);

/// Writes the workflow text to a file; throws rats::Error on failure.
void save_workflow(const TaskGraph& graph, const std::string& path);

}  // namespace rats
