#include "io/workflow_io.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace rats {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw Error("workflow parse error at line " + std::to_string(line) + ": " +
              what);
}

/// Parses "key=value" into (key, value); value must be a finite double.
std::pair<std::string, double> parse_field(int line, const std::string& tok) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == tok.size())
    fail(line, "expected key=value, got '" + tok + "'");
  const std::string key = tok.substr(0, eq);
  std::size_t used = 0;
  double value = 0;
  try {
    value = std::stod(tok.substr(eq + 1), &used);
  } catch (const std::exception&) {
    fail(line, "bad number in '" + tok + "'");
  }
  if (used != tok.size() - eq - 1 || !std::isfinite(value))
    fail(line, "bad number in '" + tok + "'");
  return {key, value};
}

}  // namespace

TaskGraph parse_workflow(std::istream& in) {
  TaskGraph g;
  std::map<std::string, TaskId> by_name;
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ss(raw);
    std::string directive;
    if (!(ss >> directive)) continue;  // blank / comment-only line

    if (directive == "task") {
      std::string name;
      if (!(ss >> name)) fail(line, "task needs a name");
      if (by_name.count(name)) fail(line, "duplicate task '" + name + "'");
      double m = -1, a = -1, alpha = -1;
      std::string tok;
      while (ss >> tok) {
        const auto [key, value] = parse_field(line, tok);
        if (key == "m") {
          m = value;
        } else if (key == "a") {
          a = value;
        } else if (key == "alpha") {
          alpha = value;
        } else {
          fail(line, "unknown task field '" + key + "'");
        }
      }
      if (m <= 0) fail(line, "task '" + name + "' needs m > 0");
      if (a <= 0) fail(line, "task '" + name + "' needs a > 0");
      if (alpha < 0 || alpha > 1)
        fail(line, "task '" + name + "' needs alpha in [0, 1]");
      const TaskId id = g.add_task(name, m, a, alpha);
      by_name[name] = id;
    } else if (directive == "edge") {
      std::string src, dst;
      if (!(ss >> src >> dst)) fail(line, "edge needs <src> <dst>");
      const auto s = by_name.find(src);
      if (s == by_name.end()) fail(line, "unknown task '" + src + "'");
      const auto d = by_name.find(dst);
      if (d == by_name.end()) fail(line, "unknown task '" + dst + "'");
      Bytes bytes = g.task(s->second).data_elems * kBytesPerElement;
      std::string tok;
      while (ss >> tok) {
        const auto [key, value] = parse_field(line, tok);
        if (key != "bytes") fail(line, "unknown edge field '" + key + "'");
        if (value < 0) fail(line, "edge bytes must be >= 0");
        bytes = value;
      }
      if (s->second == d->second) fail(line, "self edge on '" + src + "'");
      g.add_edge(s->second, d->second, bytes);
    } else {
      fail(line, "unknown directive '" + directive + "'");
    }
  }
  return g;
}

TaskGraph parse_workflow_string(const std::string& text) {
  std::istringstream in(text);
  return parse_workflow(in);
}

TaskGraph load_workflow(const std::string& path) {
  std::ifstream in(path);
  RATS_REQUIRE(in.good(), "cannot open workflow file");
  return parse_workflow(in);
}

std::string to_workflow_text(const TaskGraph& graph) {
  std::ostringstream out;
  out.precision(17);  // round-trippable doubles
  out << "# rats workflow: " << graph.num_tasks() << " tasks, "
      << graph.num_edges() << " edges\n";
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    const Task& task = graph.task(t);
    out << "task " << task.name << " m=" << task.data_elems
        << " a=" << task.flops / task.data_elems << " alpha=" << task.alpha
        << "\n";
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    out << "edge " << graph.task(edge.src).name << " "
        << graph.task(edge.dst).name << " bytes=" << edge.bytes << "\n";
  }
  return out.str();
}

void save_workflow(const TaskGraph& graph, const std::string& path) {
  std::ofstream out(path);
  RATS_REQUIRE(out.good(), "cannot open output file");
  out << to_workflow_text(graph);
  RATS_REQUIRE(out.good(), "failed writing workflow file");
}

}  // namespace rats
