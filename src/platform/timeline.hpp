// Platform event timeline: time-varying cluster conditions.
//
// The paper's experiments run on static, healthy clusters; the
// degradation study (Table VI) only measures how far schedules fall
// from the best achievable result.  A PlatformTimeline makes the
// degradation itself simulatable: a sorted list of timestamped events
// — background traffic scaling a link's capacity, a node slowing down,
// failing, or restarting — that the simulator consumes through its
// event queue.  Scenario specs describe timelines in an `[events]`
// section (see scenario/parser.cpp); the simulator applies them via
// SimulatorOptions::timeline.
//
// Semantics (fail-stop model):
//  * completed task outputs and fully delivered inputs are durable —
//    they survive a failure of the node that holds them, but are
//    unreachable while that node is down;
//  * running computation and in-flight transfers are volatile — a
//    failure loses all their progress;
//  * events at the same timestamp apply as one batch of state changes
//    before any consequence (kill, re-plan) is drawn, so a fail +
//    restart pair at the same instant is a no-op.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "platform/cluster.hpp"

namespace rats {

enum class PlatformEventKind : std::uint8_t {
  LinkCapacity,  ///< scale link capacity (background traffic), factor > 0
  NodeSlowdown,  ///< scale a node's compute speed by factor > 0
  NodeFail,      ///< fail-stop: the node goes down
  NodeRestart,   ///< the node comes back up
};

/// Stable spec/wire name ("link-capacity", "node-fail", ...).
const char* to_string(PlatformEventKind kind);

/// Inverse of to_string; sets `ok` to false on unknown names.
PlatformEventKind platform_event_kind_from(const std::string& name, bool& ok);

/// One timestamped platform event.  Selector fields are -1 when unused:
/// node events name a node; link-capacity names either a node (its NIC
/// up+down links) or a cabinet (its uplink pair).
struct PlatformEvent {
  Seconds at = 0;
  PlatformEventKind kind = PlatformEventKind::LinkCapacity;
  NodeId node = -1;
  int cabinet = -1;
  double factor = 1.0;  ///< capacity / speed scale (unused for fail/restart)
};

/// What happens to work stranded on a failed node.
enum class FailPolicy : std::uint8_t {
  Reschedule,  ///< remap onto surviving nodes, re-deliver inputs
  Hold,        ///< keep the placement, wait for the node to restart
};

const char* to_string(FailPolicy policy);

/// A validated, time-sorted event list plus the failure policy.
struct PlatformTimeline {
  FailPolicy on_fail = FailPolicy::Reschedule;
  std::vector<PlatformEvent> events;  ///< sorted by `at` (stable)

  bool empty() const { return events.empty(); }

  /// Stable-sorts events by time (same-instant events keep spec order,
  /// which fixes the batch application order).
  void sort();

  /// Checks selectors against a concrete cluster: node/cabinet ids in
  /// range, cabinet selectors only on hierarchical topologies, factors
  /// positive and finite, times non-negative.  `context` prefixes the
  /// error (typically the spec's file:line).  Throws rats::Error.
  void validate(const Cluster& cluster, const std::string& context = "") const;
};

}  // namespace rats
