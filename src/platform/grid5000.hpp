// The three Grid'5000 clusters of the paper's evaluation (Table II).
//
//   cluster   #proc  GFlop/s   network
//   chti        20    4.311    flat gigabit switch
//   grillon     47    3.379    flat gigabit switch
//   grelon     120    3.185    5 cabinets x 24 nodes, hierarchical
//
// All interconnects are switched Gigabit Ethernet: 100 us latency and
// 1 Gb/s bandwidth per link (Section IV-A).
#pragma once

#include "platform/cluster.hpp"

namespace rats::grid5000 {

/// chti (Lille): 20 nodes at 4.311 GFlop/s, flat switch.
Cluster chti();

/// grillon (Nancy): 47 nodes at 3.379 GFlop/s, flat switch.
Cluster grillon();

/// grelon (Nancy): 120 nodes at 3.185 GFlop/s, 5 cabinets of 24 nodes
/// behind per-cabinet switches connected to a root switch.
Cluster grelon();

/// The three clusters in the paper's presentation order.
std::vector<Cluster> all();

}  // namespace rats::grid5000
