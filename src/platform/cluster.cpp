#include "platform/cluster.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rats {

// Link layout: ids [0, 2P) are per-node NIC links (even = up toward the
// switch, odd = down from the switch); for hierarchical clusters, ids
// [2P, 2P + 2C) are cabinet uplinks (even = cabinet->root, odd =
// root->cabinet).

Cluster Cluster::flat(std::string name, int num_nodes, FlopRate node_speed,
                      Seconds link_latency, Rate link_bandwidth) {
  RATS_REQUIRE(num_nodes > 0, "cluster needs at least one node");
  RATS_REQUIRE(node_speed > 0, "node speed must be positive");
  RATS_REQUIRE(link_bandwidth > 0, "link bandwidth must be positive");
  Cluster c;
  c.name_ = std::move(name);
  c.num_nodes_ = num_nodes;
  c.node_speed_ = node_speed;
  c.links_.reserve(static_cast<std::size_t>(2 * num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    c.links_.push_back(LinkSpec{"node" + std::to_string(n) + ".up",
                                link_latency, link_bandwidth});
    c.links_.push_back(LinkSpec{"node" + std::to_string(n) + ".down",
                                link_latency, link_bandwidth});
  }
  return c;
}

Cluster Cluster::hierarchical(std::string name, int cabinets,
                              int nodes_per_cabinet, FlopRate node_speed,
                              Seconds link_latency, Rate link_bandwidth,
                              Seconds uplink_latency, Rate uplink_bandwidth) {
  RATS_REQUIRE(cabinets > 0 && nodes_per_cabinet > 0,
               "hierarchical cluster needs cabinets and nodes");
  Cluster c = flat(std::move(name), cabinets * nodes_per_cabinet, node_speed,
                   link_latency, link_bandwidth);
  c.nodes_per_cabinet_ = nodes_per_cabinet;
  for (int cab = 0; cab < cabinets; ++cab) {
    c.links_.push_back(LinkSpec{"cabinet" + std::to_string(cab) + ".up",
                                uplink_latency, uplink_bandwidth});
    c.links_.push_back(LinkSpec{"cabinet" + std::to_string(cab) + ".down",
                                uplink_latency, uplink_bandwidth});
  }
  return c;
}

Cluster Cluster::hierarchical_custom(std::string name,
                                     const std::vector<int>& cabinet_nodes,
                                     FlopRate node_speed, Seconds link_latency,
                                     Rate link_bandwidth,
                                     Seconds uplink_latency,
                                     Rate uplink_bandwidth) {
  RATS_REQUIRE(!cabinet_nodes.empty(),
               "hierarchical cluster needs at least one cabinet");
  int total = 0;
  for (const int n : cabinet_nodes) {
    RATS_REQUIRE(n > 0, "every cabinet needs at least one node");
    total += n;
  }
  Cluster c = flat(std::move(name), total, node_speed, link_latency,
                   link_bandwidth);
  c.cabinet_start_.reserve(cabinet_nodes.size());
  NodeId start = 0;
  for (std::size_t cab = 0; cab < cabinet_nodes.size(); ++cab) {
    c.cabinet_start_.push_back(start);
    start += cabinet_nodes[cab];
    c.links_.push_back(LinkSpec{"cabinet" + std::to_string(cab) + ".up",
                                uplink_latency, uplink_bandwidth});
    c.links_.push_back(LinkSpec{"cabinet" + std::to_string(cab) + ".down",
                                uplink_latency, uplink_bandwidth});
  }
  return c;
}

int Cluster::cabinets() const {
  if (!cabinet_start_.empty()) return static_cast<int>(cabinet_start_.size());
  return nodes_per_cabinet_ > 0 ? num_nodes_ / nodes_per_cabinet_ : 1;
}

int Cluster::cabinet_of(NodeId node) const {
  check_node(node);
  if (!cabinet_start_.empty()) {
    // Last cabinet whose first node is <= node.
    const auto it = std::upper_bound(cabinet_start_.begin(),
                                     cabinet_start_.end(), node);
    return static_cast<int>(it - cabinet_start_.begin()) - 1;
  }
  return nodes_per_cabinet_ > 0 ? node / nodes_per_cabinet_ : 0;
}

const LinkSpec& Cluster::link(LinkId id) const {
  RATS_REQUIRE(id >= 0 && id < num_links(), "link id out of range");
  return links_[static_cast<std::size_t>(id)];
}

LinkId Cluster::nic_up(NodeId node) const {
  check_node(node);
  return 2 * node;
}

LinkId Cluster::nic_down(NodeId node) const {
  check_node(node);
  return 2 * node + 1;
}

LinkId Cluster::cabinet_up(int cabinet) const {
  RATS_REQUIRE(hierarchical_topology(), "flat cluster has no cabinet links");
  RATS_REQUIRE(cabinet >= 0 && cabinet < cabinets(), "cabinet out of range");
  return 2 * num_nodes_ + 2 * cabinet;
}

LinkId Cluster::cabinet_down(int cabinet) const {
  return cabinet_up(cabinet) + 1;
}

std::vector<LinkId> Cluster::route(NodeId src, NodeId dst) const {
  std::vector<LinkId> path;
  route_into(src, dst, path);
  return path;
}

void Cluster::route_into(NodeId src, NodeId dst,
                         std::vector<LinkId>& out) const {
  check_node(src);
  check_node(dst);
  if (src == dst) return;
  out.push_back(nic_up(src));
  if (hierarchical_topology()) {
    const int cs = cabinet_of(src);
    const int cd = cabinet_of(dst);
    if (cs != cd) {
      out.push_back(cabinet_up(cs));
      out.push_back(cabinet_down(cd));
    }
  }
  out.push_back(nic_down(dst));
}

Seconds Cluster::route_latency(NodeId src, NodeId dst) const {
  Seconds total = 0;
  for (LinkId id : route(src, dst)) total += link(id).latency;
  return total;
}

void Cluster::check_node(NodeId node) const {
  RATS_REQUIRE(node >= 0 && node < num_nodes_, "node id out of range");
}

}  // namespace rats
