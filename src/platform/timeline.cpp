#include "platform/timeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rats {

const char* to_string(PlatformEventKind kind) {
  switch (kind) {
    case PlatformEventKind::LinkCapacity: return "link-capacity";
    case PlatformEventKind::NodeSlowdown: return "node-slowdown";
    case PlatformEventKind::NodeFail: return "node-fail";
    case PlatformEventKind::NodeRestart: return "node-restart";
  }
  return "?";
}

PlatformEventKind platform_event_kind_from(const std::string& name, bool& ok) {
  ok = true;
  if (name == "link-capacity") return PlatformEventKind::LinkCapacity;
  if (name == "node-slowdown") return PlatformEventKind::NodeSlowdown;
  if (name == "node-fail") return PlatformEventKind::NodeFail;
  if (name == "node-restart") return PlatformEventKind::NodeRestart;
  ok = false;
  return PlatformEventKind::LinkCapacity;
}

const char* to_string(FailPolicy policy) {
  switch (policy) {
    case FailPolicy::Reschedule: return "reschedule";
    case FailPolicy::Hold: return "hold";
  }
  return "?";
}

void PlatformTimeline::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const PlatformEvent& a, const PlatformEvent& b) {
                     return a.at < b.at;
                   });
}

void PlatformTimeline::validate(const Cluster& cluster,
                                const std::string& context) const {
  const auto fail = [&](const std::string& msg) {
    throw Error(context.empty() ? msg : context + ": " + msg);
  };
  for (const PlatformEvent& e : events) {
    const std::string what = std::string(to_string(e.kind)) + " event";
    if (!(e.at >= 0) || !std::isfinite(e.at))
      fail(what + " time must be finite and non-negative");
    if (e.node >= 0 && e.node >= cluster.num_nodes())
      fail(what + " names node " + std::to_string(e.node) + " but cluster '" +
           cluster.name() + "' has " + std::to_string(cluster.num_nodes()) +
           " nodes");
    if (e.cabinet >= 0) {
      if (!cluster.hierarchical_topology())
        fail(what + " names a cabinet but cluster '" + cluster.name() +
             "' has a flat topology");
      if (e.cabinet >= cluster.cabinets())
        fail(what + " names cabinet " + std::to_string(e.cabinet) +
             " but cluster '" + cluster.name() + "' has " +
             std::to_string(cluster.cabinets()) + " cabinets");
    }
    switch (e.kind) {
      case PlatformEventKind::LinkCapacity:
        if ((e.node >= 0) == (e.cabinet >= 0))
          fail(what + " needs exactly one of node/cabinet");
        if (!(e.factor > 0) || !std::isfinite(e.factor))
          fail(what + " factor must be finite and positive");
        break;
      case PlatformEventKind::NodeSlowdown:
        if (e.node < 0 || e.cabinet >= 0)
          fail(what + " needs a node selector");
        if (!(e.factor > 0) || !std::isfinite(e.factor))
          fail(what + " factor must be finite and positive");
        break;
      case PlatformEventKind::NodeFail:
      case PlatformEventKind::NodeRestart:
        if (e.node < 0 || e.cabinet >= 0)
          fail(what + " needs a node selector");
        break;
    }
  }
  // Fail/restart pairing: a node must alternate down/up in time order.
  PlatformTimeline sorted = *this;
  sorted.sort();
  std::vector<char> down(static_cast<std::size_t>(cluster.num_nodes()), 0);
  for (const PlatformEvent& e : sorted.events) {
    if (e.kind == PlatformEventKind::NodeFail) {
      if (down[static_cast<std::size_t>(e.node)])
        fail("node " + std::to_string(e.node) +
             " fails twice without a restart in between");
      down[static_cast<std::size_t>(e.node)] = 1;
    } else if (e.kind == PlatformEventKind::NodeRestart) {
      if (!down[static_cast<std::size_t>(e.node)])
        fail("node " + std::to_string(e.node) +
             " restarts without a preceding failure");
      down[static_cast<std::size_t>(e.node)] = 0;
    }
  }
}

}  // namespace rats
