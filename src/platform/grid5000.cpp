#include "platform/grid5000.hpp"

namespace rats::grid5000 {

namespace {
constexpr Seconds kLatency = 100e-6;          // 100 us
constexpr Rate kBandwidth = kGigabitPerSecond;  // 1 Gb/s in bytes/s
}  // namespace

Cluster chti() {
  return Cluster::flat("chti", 20, 4.311 * Giga, kLatency, kBandwidth);
}

Cluster grillon() {
  return Cluster::flat("grillon", 47, 3.379 * Giga, kLatency, kBandwidth);
}

Cluster grelon() {
  // The paper only states that grelon's interconnect is gigabit and
  // hierarchical; we model cabinet uplinks with the same gigabit links,
  // which makes cross-cabinet redistributions contend on the uplinks.
  return Cluster::hierarchical("grelon", /*cabinets=*/5,
                               /*nodes_per_cabinet=*/24, 3.185 * Giga,
                               kLatency, kBandwidth, kLatency, kBandwidth);
}

std::vector<Cluster> all() { return {chti(), grillon(), grelon()}; }

}  // namespace rats::grid5000
