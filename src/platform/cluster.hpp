// Cluster platform model (paper Section II-B).
//
// A cluster is a set of P homogeneous single-core nodes.  Each node has
// a private full-duplex network link (its NIC) to a switch; the
// bandwidth of that link is shared among the node's concurrent flows —
// this realizes the paper's bounded multi-port model.  Small clusters
// use one flat switch; larger clusters (grelon) group nodes into
// cabinets, each with its own switch, and cabinet switches connect to a
// root switch over shared uplinks, creating a hierarchical network with
// cross-cabinet contention.
//
// Switches themselves are ideal (infinite backplane); only NIC links
// and cabinet uplinks carry latency/bandwidth, matching the flow-level
// abstraction of SimGrid used in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace rats {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = -1;

/// One simplex network resource with latency and shareable bandwidth.
struct LinkSpec {
  std::string name;
  Seconds latency{};
  Rate bandwidth{};  ///< bytes per second
};

/// A homogeneous cluster with a flat or hierarchical switched network.
class Cluster {
 public:
  /// Flat cluster: every node connects to one ideal switch through a
  /// private full-duplex link of the given latency/bandwidth.
  static Cluster flat(std::string name, int num_nodes, FlopRate node_speed,
                      Seconds link_latency, Rate link_bandwidth);

  /// Hierarchical cluster: `cabinets` groups of `nodes_per_cabinet`
  /// nodes.  Nodes connect to their cabinet switch via private links;
  /// cabinet switches connect to a root switch via full-duplex uplinks
  /// of the given characteristics, shared by all the cabinet's traffic.
  static Cluster hierarchical(std::string name, int cabinets,
                              int nodes_per_cabinet, FlopRate node_speed,
                              Seconds link_latency, Rate link_bandwidth,
                              Seconds uplink_latency, Rate uplink_bandwidth);

  /// Heterogeneous hierarchical cluster: cabinet `i` holds
  /// `cabinet_nodes[i]` nodes (sizes may differ).  Same link layout and
  /// uplink sharing as `hierarchical`; node ids are assigned cabinet by
  /// cabinet in order.
  static Cluster hierarchical_custom(std::string name,
                                     const std::vector<int>& cabinet_nodes,
                                     FlopRate node_speed,
                                     Seconds link_latency, Rate link_bandwidth,
                                     Seconds uplink_latency,
                                     Rate uplink_bandwidth);

  const std::string& name() const { return name_; }
  int num_nodes() const { return num_nodes_; }
  FlopRate node_speed() const { return node_speed_; }
  bool hierarchical_topology() const {
    return nodes_per_cabinet_ > 0 || !cabinet_start_.empty();
  }
  /// Flat-topology predicate: true iff every src != dst route is
  /// exactly {src uplink, dst downlink}.  Flat clusters satisfy it by
  /// construction, as does a degenerate one-cabinet hierarchy; with
  /// several cabinets cross-cabinet routes add uplink hops.  This is
  /// the platform-level invariant behind the fluid network's bipartite
  /// waterfilling dispatch (which tests each component's routes
  /// directly, so same-cabinet components qualify even when the whole
  /// platform does not); a property test checks the predicate against
  /// per-flow route inspection.
  bool flat_routes() const {
    return !hierarchical_topology() || cabinets() == 1;
  }
  int cabinets() const;
  /// Cabinet index of `node` (0 for flat clusters).
  int cabinet_of(NodeId node) const;

  int num_links() const { return static_cast<int>(links_.size()); }
  const LinkSpec& link(LinkId id) const;

  /// Ordered link ids traversed by a flow from `src` to `dst`.
  /// Empty when src == dst (loopback is free, cf. self-communication).
  std::vector<LinkId> route(NodeId src, NodeId dst) const;

  /// Appends the route's link ids to `out` without allocating a
  /// temporary — the fluid network stores routes in one flat arena.
  void route_into(NodeId src, NodeId dst, std::vector<LinkId>& out) const;

  /// One-way latency of the route (sum of link latencies).
  Seconds route_latency(NodeId src, NodeId dst) const;

  /// Maximal TCP window size used for the empirical bandwidth bound
  /// beta' = min(beta, W_max / RTT) of the SimGrid model (Section IV-A).
  Bytes tcp_window() const { return tcp_window_; }
  void set_tcp_window(Bytes bytes) { tcp_window_ = bytes; }

  // Link-id helpers (also used by tests/benches to inspect contention).
  LinkId nic_up(NodeId node) const;
  LinkId nic_down(NodeId node) const;
  LinkId cabinet_up(int cabinet) const;
  LinkId cabinet_down(int cabinet) const;

 private:
  Cluster() = default;
  void check_node(NodeId node) const;

  std::string name_;
  int num_nodes_ = 0;
  FlopRate node_speed_ = 0;
  int nodes_per_cabinet_ = 0;  // 0 => flat or heterogeneous topology
  /// First node id of each cabinet (heterogeneous hierarchies only;
  /// uniform ones divide by nodes_per_cabinet_ instead).
  std::vector<NodeId> cabinet_start_;
  std::vector<LinkSpec> links_;
  Bytes tcp_window_ = 4.0 * 1024 * 1024;  // SimGrid's classic 4 MiB default
};

}  // namespace rats
