// Mapping step (paper Section III): place each task, in ready order,
// onto concrete processors.
//
// The baseline mapping is the classic redistribution-*accounting* list
// scheduler used by CPA/HCPA: ready tasks are handled by decreasing
// bottom level and each task is placed on the processor set minimizing
// its estimated finish time (redistribution estimates included), but
// the allocation sizes from step one are never changed.
//
// The two RATS modes may *adapt* the allocation while mapping, to make
// a redistribution disappear entirely by reusing a predecessor's exact
// processor set:
//
//  * Delta — purely structural: stretch to the closest predecessor
//    allocation from above if the increase is at most maxdelta * Np(t)
//    processors, or pack to the closest predecessor allocation from
//    below if the decrease is at most |mindelta| * Np(t).  Ready tasks
//    of equal priority are ordered by increasing delta(t) (least
//    modification first).
//
//  * Time-cost — work-aware: stretch onto the predecessor maximizing
//    the work ratio rho = (T(t,Np(t))*Np(t)) / (T(t,Np(pred))*Np(pred))
//    provided rho >= minrho; pack onto a smaller predecessor only if
//    the estimated finish time does not get worse.  Ready tasks of
//    equal priority are ordered by decreasing gain(t), the maximal
//    execution-time gain over the parents' allocations.
//
// All estimates are contention-free (Section IV-D of the paper makes
// the same assumption and discusses its consequences).
#pragma once

#include "sched/allocation.hpp"
#include "sim/schedule.hpp"

namespace rats {

/// Mapping strategy.
enum class MappingMode { Baseline, Delta, TimeCost };

/// Knobs of the redistribution-aware mapping procedures.
struct MappingOptions {
  MappingMode mode = MappingMode::Baseline;
  /// Fraction of Np(t) that packing may remove; in [-1, 0].
  double mindelta = -0.5;
  /// Fraction of Np(t) that stretching may add; >= 0.
  double maxdelta = 0.5;
  /// Minimal admissible work ratio for time-cost stretching; in (0, 1].
  double minrho = 0.5;
  /// Enables time-cost packing (the paper's boolean parameter).
  bool packing = true;
  /// Enables the secondary ready-list sort (ablation knob; the paper's
  /// RATS always sorts).
  bool secondary_sort = true;
};

/// Maps every task of `graph` onto `cluster` given the step-one
/// allocation.  Returns a complete schedule (placements carry the
/// mapper's contention-free start/finish estimates).
Schedule map_tasks(const TaskGraph& graph, const Cluster& cluster,
                   const Allocation& allocation,
                   const MappingOptions& options = {});

}  // namespace rats
