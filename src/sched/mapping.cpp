#include "sched/mapping.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "dag/graph_algorithms.hpp"
#include "redist/estimate.hpp"

namespace rats {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

/// One evaluated placement option for a task.
struct Candidate {
  std::vector<NodeId> procs;
  Seconds start = kInf;
  Seconds finish = kInf;
  /// Parent whose processor set this candidate adopts (delta strategy
  /// consumption bookkeeping); kInvalidTask for baseline placements.
  TaskId inherited_from = kInvalidTask;
  bool valid() const { return std::isfinite(finish); }
};

class Mapper {
 public:
  Mapper(const TaskGraph& g, const Cluster& cluster, const Allocation& alloc,
         const MappingOptions& opt)
      : g_(g),
        cluster_(cluster),
        alloc_(alloc),
        opt_(opt),
        model_(cluster.node_speed()),
        proc_ready_(static_cast<std::size_t>(cluster.num_nodes()), 0.0),
        consumed_(static_cast<std::size_t>(g.num_tasks()), 0) {
    RATS_REQUIRE(alloc.size() == static_cast<std::size_t>(g.num_tasks()),
                 "allocation does not cover the graph");
    for (int np : alloc)
      RATS_REQUIRE(np >= 1 && np <= cluster.num_nodes(),
                   "allocation out of platform range");
  }

  Schedule run() {
    Schedule sched;
    sched.placements.resize(static_cast<std::size_t>(g_.num_tasks()));
    sched_ = &sched;

    // Static priorities: bottom levels with step-one execution times
    // and contention-free transfer estimates as edge weights (inlined
    // callables over the graph's cached topological order).
    bottom_levels_into(
        g_,
        [&](TaskId t) {
          return model_.execution_time(g_.task(t), np_alloc(t));
        },
        [&](EdgeId e) {
          return allocation_edge_cost(cluster_, g_.edge(e).bytes);
        },
        bl_);

    std::vector<std::int32_t> pending(static_cast<std::size_t>(g_.num_tasks()));
    for (TaskId t = 0; t < g_.num_tasks(); ++t)
      pending[static_cast<std::size_t>(t)] =
          static_cast<std::int32_t>(g_.in_edges(t).size());
    std::vector<TaskId> ready;
    for (TaskId t = 0; t < g_.num_tasks(); ++t)
      if (pending[static_cast<std::size_t>(t)] == 0) ready.push_back(t);

    // Algorithm 1: rounds over the ready frontier.  Tasks enabled by
    // this round's mappings join the *next* round (outer while); within
    // a round, re-sorting before every pop subsumes line 11's
    // "recompute delta / execution time and resort if necessary",
    // because mapping a task changes processor availability and
    // consumes the parent allocation other ready tasks may have
    // counted on.
    std::vector<TaskId> next;
    while (!ready.empty()) {
      sort_ready(ready);
      const TaskId t = ready.front();
      ready.erase(ready.begin());
      map_one(t);
      for (EdgeId e : g_.out_edges(t)) {
        const TaskId dst = g_.edge(e).dst;
        if (--pending[static_cast<std::size_t>(dst)] == 0)
          next.push_back(dst);
      }
      if (ready.empty()) {
        ready = std::move(next);
        next.clear();
      }
    }
    return sched;
  }

 private:
  int np_alloc(TaskId t) const { return alloc_[static_cast<std::size_t>(t)]; }
  int np_mapped(TaskId t) const {
    return static_cast<int>(sched_->of(t).procs.size());
  }

  // ---- placement evaluation ------------------------------------------

  /// The `np` processors that become free earliest (ties by id).
  std::vector<NodeId> earliest_procs(int np) const {
    std::vector<NodeId> ids(proc_ready_.size());
    for (std::size_t i = 0; i < ids.size(); ++i)
      ids[i] = static_cast<NodeId>(i);
    std::sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
      const Seconds ra = proc_ready_[static_cast<std::size_t>(a)];
      const Seconds rb = proc_ready_[static_cast<std::size_t>(b)];
      if (ra != rb) return ra < rb;
      return a < b;
    });
    ids.resize(static_cast<std::size_t>(np));
    return ids;
  }

  /// Estimated start/finish of `t` on the given processor set.
  Candidate evaluate(TaskId t, std::vector<NodeId> procs) const {
    Candidate c;
    Seconds data_ready = 0;
    for (EdgeId e : g_.in_edges(t)) {
      const Edge& edge = g_.edge(e);
      const TaskPlacement& pred = sched_->of(edge.src);
      // Candidate placements re-estimate the same (bytes, senders,
      // receivers) redistribution over and over; the planner caches the
      // plans.
      const Seconds redist = estimate_redistribution_time(
          cluster_, planner_.plan(edge.bytes, pred.procs, procs));
      data_ready = std::max(data_ready, pred.est_finish + redist);
    }
    Seconds procs_free = 0;
    for (NodeId p : procs)
      procs_free = std::max(procs_free, proc_ready_[static_cast<std::size_t>(p)]);
    c.start = std::max(data_ready, procs_free);
    c.finish = c.start + model_.execution_time(
                             g_.task(t), static_cast<int>(procs.size()));
    c.procs = std::move(procs);
    return c;
  }

  /// Baseline (CPA/HCPA/MCPA) placement: keep the step-one allocation
  /// size and take the earliest-free processors.  The finish estimate
  /// accounts for redistribution delays, but the *choice* of processors
  /// does not chase predecessor sets — the decoupling the paper sets
  /// out to fix ("most of these algorithms do not take data
  /// redistributions into account").
  Candidate baseline_candidate(TaskId t) const {
    return evaluate(t, earliest_procs(np_alloc(t)));
  }

  // ---- delta strategy --------------------------------------------------
  //
  // A predecessor's processor set can be inherited by only one task:
  // once a node is mapped onto a parent's allocation the parent is
  // *consumed*, and the other ready nodes whose delta was computed
  // using that parent recompute it without it (Algorithm 1, line 11).
  // Without this rule every descendant of a narrow task piles onto the
  // same processor set and the schedule serializes.

  /// Smallest non-negative allocation difference to an unconsumed
  /// parent (stretch distance); +inf when no parent is as large.
  double delta_plus(TaskId t, int np) const {
    double dp = kInf;
    for (TaskId pred : g_.predecessors(t)) {
      if (consumed_[static_cast<std::size_t>(pred)]) continue;
      const double d = np_mapped(pred) - np;
      if (d >= 0) dp = std::min(dp, d);
    }
    return dp;
  }

  /// Largest negative allocation difference to an unconsumed parent
  /// (pack distance, closest from below); -inf when no parent is
  /// smaller.
  double delta_minus(TaskId t, int np) const {
    double dm = -kInf;
    for (TaskId pred : g_.predecessors(t)) {
      if (consumed_[static_cast<std::size_t>(pred)]) continue;
      const double d = np_mapped(pred) - np;
      if (d < 0) dm = std::max(dm, d);
    }
    return dm;
  }

  /// The unconsumed parent whose mapped allocation differs from `np`
  /// by exactly `diff` (first in predecessor order; deterministic).
  TaskId parent_with_diff(TaskId t, int np, double diff) const {
    for (TaskId pred : g_.predecessors(t)) {
      if (consumed_[static_cast<std::size_t>(pred)]) continue;
      if (np_mapped(pred) - np == diff) return pred;
    }
    return kInvalidTask;
  }

  Candidate delta_candidate(TaskId t) const {
    const int np = np_alloc(t);
    const double dmax = opt_.maxdelta * np;
    const double dmin = opt_.mindelta * np;
    const double dp = delta_plus(t, np);
    const double dm = delta_minus(t, np);
    const bool stretch_ok = std::isfinite(dp) && dp <= dmax + kEps;
    const bool pack_ok = std::isfinite(dm) && dm >= dmin - kEps;

    double chosen;
    if (stretch_ok && pack_ok) {
      chosen = (dp <= -dm) ? dp : dm;  // least modification, ties: stretch
    } else if (stretch_ok) {
      chosen = dp;
    } else if (pack_ok) {
      chosen = dm;
    } else {
      return Candidate{};  // keep the original allocation
    }
    const TaskId pred = parent_with_diff(t, np, chosen);
    RATS_REQUIRE(pred != kInvalidTask, "delta parent vanished");
    Candidate c = evaluate(t, sched_->of(pred).procs);
    c.inherited_from = pred;
    return c;
  }

  // ---- time-cost strategy ----------------------------------------------

  Candidate timecost_stretch(TaskId t) const {
    const int np = np_alloc(t);
    const double work_now = model_.work(g_.task(t), np);
    TaskId best_pred = kInvalidTask;
    double best_rho = 0;
    for (TaskId pred : g_.predecessors(t)) {
      const int np_pred = np_mapped(pred);
      if (np_pred <= np) continue;
      const double rho = work_now / model_.work(g_.task(t), np_pred);
      if (best_pred == kInvalidTask || rho > best_rho) {
        best_pred = pred;
        best_rho = rho;
      }
    }
    if (best_pred == kInvalidTask || best_rho + kEps < opt_.minrho)
      return Candidate{};
    return evaluate(t, sched_->of(best_pred).procs);
  }

  Candidate timecost_pack(TaskId t, Seconds reference_finish) const {
    const int np = np_alloc(t);
    Candidate best;
    for (TaskId pred : g_.predecessors(t)) {
      if (np_mapped(pred) >= np) continue;
      Candidate c = evaluate(t, sched_->of(pred).procs);
      // Packing must not delay the task (paper Section III-B).
      if (c.finish > reference_finish + kEps) continue;
      if (!best.valid() || c.finish + kEps < best.finish) best = std::move(c);
    }
    return best;
  }

  // ---- ready-list ordering ----------------------------------------------

  /// delta(t) = min(delta+, -delta-): size of the smallest allocation
  /// modification that would let t reuse a parent's processors.
  double delta_key(TaskId t) const {
    const int np = np_alloc(t);
    const double dp = delta_plus(t, np);
    const double dm = delta_minus(t, np);
    return std::min(dp, -dm);
  }

  /// gain(t) = max execution-time gain from adopting a parent's
  /// (larger) allocation; 0 when no parent helps.
  double gain_key(TaskId t) const {
    const int np = np_alloc(t);
    const Seconds t_now = model_.execution_time(g_.task(t), np);
    double gain = 0;
    for (TaskId pred : g_.predecessors(t))
      gain = std::max(
          gain, t_now - model_.execution_time(g_.task(t), np_mapped(pred)));
    return gain;
  }

  void sort_ready(std::vector<TaskId>& ready) const {
    std::sort(ready.begin(), ready.end(), [&](TaskId a, TaskId b) {
      const double bla = bl_[static_cast<std::size_t>(a)];
      const double blb = bl_[static_cast<std::size_t>(b)];
      if (bla != blb) return bla > blb;  // primary: decreasing bottom level
      if (opt_.secondary_sort && opt_.mode == MappingMode::Delta) {
        const double da = delta_key(a);
        const double db = delta_key(b);
        if (da != db) return da < db;  // least modification first
      }
      if (opt_.secondary_sort && opt_.mode == MappingMode::TimeCost) {
        const double ga = gain_key(a);
        const double gb = gain_key(b);
        if (ga != gb) return ga > gb;  // highest gain first
      }
      return a < b;  // stable, deterministic
    });
  }

  // ---- driving ----------------------------------------------------------

  void map_one(TaskId t) {
    Candidate chosen;
    switch (opt_.mode) {
      case MappingMode::Baseline:
        chosen = baseline_candidate(t);
        break;
      case MappingMode::Delta: {
        chosen = delta_candidate(t);
        if (!chosen.valid()) chosen = baseline_candidate(t);
        break;
      }
      case MappingMode::TimeCost: {
        Candidate base = baseline_candidate(t);
        Candidate stretch = timecost_stretch(t);
        Candidate pack =
            opt_.packing ? timecost_pack(t, base.finish) : Candidate{};
        chosen = std::move(base);
        // Prefer the earliest finish; redistribution-free options win
        // ties (stretch first, then pack).
        if (stretch.valid() && stretch.finish <= chosen.finish + kEps)
          chosen = std::move(stretch);
        if (pack.valid() && pack.finish + kEps < chosen.finish)
          chosen = std::move(pack);
        break;
      }
    }
    RATS_REQUIRE(chosen.valid(), "no placement found");
    if (chosen.inherited_from != kInvalidTask)
      consumed_[static_cast<std::size_t>(chosen.inherited_from)] = 1;
    TaskPlacement& p = sched_->of(t);
    p.procs = std::move(chosen.procs);
    p.est_start = chosen.start;
    p.est_finish = chosen.finish;
    p.seq = seq_++;
    for (NodeId node : p.procs)
      proc_ready_[static_cast<std::size_t>(node)] = chosen.finish;
  }

  const TaskGraph& g_;
  const Cluster& cluster_;
  const Allocation& alloc_;
  const MappingOptions& opt_;
  AmdahlModel model_;
  mutable RedistPlanner planner_;  ///< caches candidate-placement plans
  std::vector<Seconds> proc_ready_;
  std::vector<char> consumed_;  ///< parents whose set was inherited
  std::vector<double> bl_;
  Schedule* sched_ = nullptr;
  std::int64_t seq_ = 0;
};

}  // namespace

Schedule map_tasks(const TaskGraph& graph, const Cluster& cluster,
                   const Allocation& allocation,
                   const MappingOptions& options) {
  RATS_REQUIRE(options.mindelta <= 0.0 && options.mindelta >= -1.0,
               "mindelta must lie in [-1, 0]");
  RATS_REQUIRE(options.maxdelta >= 0.0, "maxdelta must be non-negative");
  RATS_REQUIRE(options.minrho > 0.0 && options.minrho <= 1.0,
               "minrho must lie in (0, 1]");
  return Mapper(graph, cluster, allocation, options).run();
}

}  // namespace rats
