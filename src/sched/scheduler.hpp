// Two-step scheduler facade: allocation + mapping in one call.
//
// The five end-to-end schedulers of this repository:
//   Cpa          — CPA allocation + baseline mapping
//   Mcpa         — MCPA allocation + baseline mapping
//   Hcpa         — HCPA allocation + baseline mapping (the paper's baseline)
//   RatsDelta    — HCPA allocation + delta redistribution-aware mapping
//   RatsTimeCost — HCPA allocation + time-cost redistribution-aware mapping
#pragma once

#include <string>

#include "sched/mapping.hpp"

namespace rats {

enum class SchedulerKind { Cpa, Mcpa, Hcpa, RatsDelta, RatsTimeCost };

/// Printable scheduler name ("HCPA", "RATS-delta", ...).
std::string to_string(SchedulerKind kind);

/// Tunable RATS parameters (paper Section IV-C, Table IV).
struct RatsParams {
  double mindelta = -0.5;  ///< delta: max fraction of Np(t) removable
  double maxdelta = 0.5;   ///< delta: max fraction of Np(t) addable
  double minrho = 0.5;     ///< time-cost: minimal admissible work ratio
  bool packing = true;     ///< time-cost: allow packing
};

struct SchedulerOptions {
  SchedulerKind kind = SchedulerKind::Hcpa;
  RatsParams rats{};
  bool secondary_sort = true;  ///< RATS ready-list secondary sort (ablation)
};

/// Runs the requested two-step scheduler end to end.
Schedule build_schedule(const TaskGraph& graph, const Cluster& cluster,
                        const SchedulerOptions& options = {});

}  // namespace rats
