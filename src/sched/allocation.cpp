#include "sched/allocation.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dag/graph_algorithms.hpp"

namespace rats {

Seconds allocation_edge_cost(const Cluster& cluster, Bytes bytes) {
  // Any node link is representative: the cluster is homogeneous.
  const LinkSpec& link = cluster.link(0);
  return link.latency + bytes / link.bandwidth;
}

double average_area(const TaskGraph& graph, const Cluster& cluster,
                    const AmdahlModel& model, const Allocation& alloc,
                    AllocationKind kind) {
  double total_work = 0;
  for (TaskId t = 0; t < graph.num_tasks(); ++t)
    total_work += model.work(graph.task(t),
                             alloc[static_cast<std::size_t>(t)]);
  double procs = cluster.num_nodes();
  if (kind == AllocationKind::Hcpa) {
    // Modified average area: with far more processors than tasks the
    // plain W underestimates grossly and CPA over-allocates; bounding
    // the divisor by the task count removes that bias.
    procs = std::min(procs, static_cast<double>(graph.num_tasks()));
  }
  return total_work / procs;
}

Allocation allocate(const TaskGraph& graph, const Cluster& cluster,
                    const AllocationOptions& options) {
  graph.validate();
  const AmdahlModel model(cluster.node_speed());
  const int num_procs = cluster.num_nodes();
  Allocation alloc(static_cast<std::size_t>(graph.num_tasks()), 1);

  // Per-level groups for the MCPA concurrency constraint.
  std::vector<std::int32_t> level;
  std::vector<std::int64_t> level_total;  // sum of allocations per level
  if (options.kind == AllocationKind::Mcpa) {
    level = task_levels(graph);
    const auto depth = *std::max_element(level.begin(), level.end()) + 1;
    level_total.assign(static_cast<std::size_t>(depth), 0);
    for (auto l : level) ++level_total[static_cast<std::size_t>(l)];
  }

  const auto node_cost = [&](TaskId t) {
    return model.execution_time(graph.task(t),
                                alloc[static_cast<std::size_t>(t)]);
  };
  const auto edge_cost = [&](EdgeId e) {
    return allocation_edge_cost(cluster, graph.edge(e).bytes);
  };

  auto may_grow = [&](TaskId t) {
    const int np = alloc[static_cast<std::size_t>(t)];
    if (np >= num_procs) return false;
    if (options.kind == AllocationKind::Mcpa) {
      const auto l = static_cast<std::size_t>(level[static_cast<std::size_t>(t)]);
      if (level_total[l] + 1 > num_procs) return false;
    }
    return true;
  };

  // Each CPA iteration changes exactly one task's allocation (hence
  // one node cost), so after the first full bottom-level pass the
  // levels are maintained incrementally along the grown task's
  // ancestors (bitwise identical to recomputing — see
  // bottom_levels_update); only the path walk runs in full.
  std::vector<double> bl_scratch;
  BottomLevelDelta bl_delta;
  CriticalPath cp;
  TaskId grown = kInvalidTask;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (grown == kInvalidTask)
      bottom_levels_into(graph, node_cost, edge_cost, bl_scratch);
    else
      bottom_levels_update(graph, node_cost, edge_cost, bl_scratch, grown,
                           bl_delta);
    critical_path_from_levels(graph, node_cost, edge_cost, bl_scratch, cp);
    const double area =
        average_area(graph, cluster, model, alloc, options.kind);
    if (cp.length <= area) break;  // C-infinity <= W: optimal trade-off

    // Give one processor to the critical-path task whose average
    // time-per-processor drops the most (the CPA benefit criterion).
    TaskId best = kInvalidTask;
    double best_benefit = 0;
    for (TaskId t : cp.tasks) {
      if (!may_grow(t)) continue;
      const int np = alloc[static_cast<std::size_t>(t)];
      const double benefit =
          model.execution_time(graph.task(t), np) / np -
          model.execution_time(graph.task(t), np + 1) / (np + 1);
      if (best == kInvalidTask || benefit > best_benefit) {
        best = t;
        best_benefit = benefit;
      }
    }
    if (best == kInvalidTask) break;  // every critical task is saturated

    ++alloc[static_cast<std::size_t>(best)];
    grown = best;
    if (options.kind == AllocationKind::Mcpa)
      ++level_total[static_cast<std::size_t>(
          level[static_cast<std::size_t>(best)])];
  }
  return alloc;
}

}  // namespace rats
