#include "sched/scheduler.hpp"

#include "obs/span.hpp"

namespace rats {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::Cpa: return "CPA";
    case SchedulerKind::Mcpa: return "MCPA";
    case SchedulerKind::Hcpa: return "HCPA";
    case SchedulerKind::RatsDelta: return "RATS-delta";
    case SchedulerKind::RatsTimeCost: return "RATS-time-cost";
  }
  return "?";
}

Schedule build_schedule(const TaskGraph& graph, const Cluster& cluster,
                        const SchedulerOptions& options) {
  AllocationOptions alloc_opts;
  MappingOptions map_opts;
  map_opts.secondary_sort = options.secondary_sort;
  map_opts.mindelta = options.rats.mindelta;
  map_opts.maxdelta = options.rats.maxdelta;
  map_opts.minrho = options.rats.minrho;
  map_opts.packing = options.rats.packing;

  switch (options.kind) {
    case SchedulerKind::Cpa:
      alloc_opts.kind = AllocationKind::Cpa;
      map_opts.mode = MappingMode::Baseline;
      break;
    case SchedulerKind::Mcpa:
      alloc_opts.kind = AllocationKind::Mcpa;
      map_opts.mode = MappingMode::Baseline;
      break;
    case SchedulerKind::Hcpa:
      alloc_opts.kind = AllocationKind::Hcpa;
      map_opts.mode = MappingMode::Baseline;
      break;
    case SchedulerKind::RatsDelta:
      alloc_opts.kind = AllocationKind::Hcpa;  // RATS reuses HCPA's step one
      map_opts.mode = MappingMode::Delta;
      break;
    case SchedulerKind::RatsTimeCost:
      alloc_opts.kind = AllocationKind::Hcpa;
      map_opts.mode = MappingMode::TimeCost;
      break;
  }

  const Allocation allocation = [&] {
    obs::PhaseTimer span("schedule/allocate");
    return allocate(graph, cluster, alloc_opts);
  }();
  obs::PhaseTimer span("schedule/map");
  return map_tasks(graph, cluster, allocation, map_opts);
}

}  // namespace rats
