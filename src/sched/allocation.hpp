// Allocation step of two-step mixed-parallel scheduling (paper
// Sections II-C and III): decide how many processors each moldable
// task gets, before any task is mapped to concrete processors.
//
// All three allocators share the CPA loop: start with one processor
// per task and, while the critical path C-infinity exceeds the average
// area W (both lower bounds on the makespan), give one more processor
// to the critical-path task that benefits the most.  They differ in
// the stopping bound and per-task caps:
//
//  * CPA   — W = total work / P.  On platforms with many more
//            processors than the application can use, W is tiny and
//            CPA over-allocates, serializing independent tasks.
//  * HCPA  — W' = total work / min(P, N_tasks): the modified average
//            area removes the large-P bias (following N'takpe, Suter &
//            Casanova's HCPA, whose allocation procedure RATS reuses).
//  * MCPA  — CPA plus a per-level constraint: the tasks of a DAG level
//            must be able to run concurrently (sum of the level's
//            allocations <= P).  Meaningful for regular layered DAGs.
#pragma once

#include <vector>

#include "dag/task_graph.hpp"
#include "model/amdahl.hpp"
#include "platform/cluster.hpp"

namespace rats {

/// Which allocation procedure to run.
enum class AllocationKind { Cpa, Hcpa, Mcpa };

/// Processor count per task (indexed by TaskId).
using Allocation = std::vector<int>;

/// Options for the allocation step.
struct AllocationOptions {
  AllocationKind kind = AllocationKind::Hcpa;
  /// Safety valve for the iteration count; the loop converges long
  /// before this for the paper's workloads.
  int max_iterations = 1'000'000;
};

/// Runs the allocation step for `graph` on `cluster`.
Allocation allocate(const TaskGraph& graph, const Cluster& cluster,
                    const AllocationOptions& options = {});

/// Simple contention-free transfer-time estimate used as the edge
/// weight in critical-path computations: latency + bytes / bandwidth
/// of a node link.  (The real redistribution cost depends on the
/// mapping, which does not exist yet at allocation time.)
Seconds allocation_edge_cost(const Cluster& cluster, Bytes bytes);

/// The average-area lower bound W used by the given allocator on this
/// platform (exposed for tests and the ablation bench).
double average_area(const TaskGraph& graph, const Cluster& cluster,
                    const AmdahlModel& model, const Allocation& alloc,
                    AllocationKind kind);

}  // namespace rats
