// Discrete-event execution of a schedule on a cluster — the SimGrid
// replacement (paper Section IV).
//
// The simulator executes a static schedule faithfully:
//  * every task runs on exactly the processors its placement names, for
//    the duration given by the Amdahl model (compute times are not
//    affected by network traffic);
//  * a processor executes its tasks in schedule (seq) order — the list
//    scheduler's decisions are never reordered;
//  * when a task completes, one block redistribution per out-edge
//    starts immediately; its point-to-point transfers become fluid
//    network flows that contend with all other in-flight transfers
//    under Max-Min fairness (this is where ignoring redistributions at
//    allocation time hurts, and what RATS mitigates);
//  * a task starts once all its in-edge redistributions have completed
//    and it is at the head of the queue of every processor it uses.
//
// The resulting makespan therefore includes network contention that
// the schedulers' internal estimates ignore, exactly as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "model/amdahl.hpp"
#include "net/fluid_network.hpp"
#include "platform/timeline.hpp"
#include "sim/schedule.hpp"

namespace rats {

/// Per-task timing observed during simulation.
struct TaskTiming {
  Seconds data_ready{};  ///< all input redistributions complete
  Seconds start{};       ///< execution began (data ready + processors free)
  Seconds finish{};      ///< execution completed
};

/// Fault/degradation accounting of one run; all zero on a healthy
/// (event-free) timeline.
struct FaultStats {
  std::int32_t tasks_killed = 0;     ///< executions aborted by node failures
  std::int32_t tasks_remapped = 0;   ///< placement slots moved (reschedule)
  std::int32_t redists_aborted = 0;  ///< redistributions rolled back
  /// Integral over [0, makespan] of (base - effective) capacity summed
  /// over links — bytes of transfer capacity lost to events/failures.
  double capacity_seconds_lost = 0;
  /// Integral of #down nodes over [0, makespan].
  double node_seconds_down = 0;
};

/// Outcome of simulating one schedule.
struct SimulationResult {
  Seconds makespan{};                ///< max task finish time
  double total_work{};               ///< sum of np(t) * T(t, np(t))
  Bytes network_bytes{};             ///< bytes that crossed the network
  std::vector<TaskTiming> timeline;  ///< indexed by TaskId
  FaultStats faults;                 ///< platform-event accounting
};

/// Simulation knobs.
struct SimulatorOptions {
  /// When false, redistributions complete after their contention-free
  /// time instead of being simulated as contending fluid flows (used by
  /// the contention ablation bench).
  bool contention = true;
  /// Opt-in structured tracing (see trace/trace.hpp): task start/finish,
  /// redistribution intervals, component solves and rate changes are
  /// recorded into the sink.  Must outlive the simulate() call.
  TraceSink* trace = nullptr;
  /// Platform event timeline (see platform/timeline.hpp): background
  /// traffic, slowdowns, node failures/restarts applied mid-simulation.
  /// nullptr (or an empty timeline) simulates the healthy platform and
  /// is bit-identical to the pre-timeline simulator.  Must outlive the
  /// simulate() call.  Fail-stop semantics:
  ///  * a running task with a failed processor is killed and re-run
  ///    (FailPolicy::Hold: same placement, after the node restarts;
  ///    FailPolicy::Reschedule: failed slots are remapped onto the
  ///    least-loaded surviving nodes and all inputs re-delivered);
  ///  * in-flight redistributions touching a failed node roll back
  ///    entirely and re-send once their endpoints are all up;
  ///  * completed outputs and staged inputs are durable but
  ///    unreachable while their node is down — a consumer that needs
  ///    data from a node that never restarts stalls with an error;
  ///  * events at one timestamp are one atomic batch (fail + restart
  ///    at the same instant is a no-op).
  const PlatformTimeline* timeline = nullptr;
  /// Opt-in invariant validation (the `rats fuzz` oracle hook): the
  /// fluid network checks Max-Min rate conservation and warm ≡ cold
  /// solver equivalence after every rate flush, throwing rats::Error on
  /// the first violation.  Off by default — results are byte-identical
  /// either way, validation only adds the checks (and their cost).
  bool validate = false;
};

/// Simulates `schedule` for `graph` on `cluster`; throws on invalid
/// schedules (unmapped tasks, dependence-violating orders).
SimulationResult simulate(const TaskGraph& graph, const Schedule& schedule,
                          const Cluster& cluster,
                          const SimulatorOptions& options = {});

}  // namespace rats
