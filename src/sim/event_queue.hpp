// A small deterministic event queue for discrete-event simulation.
//
// Events are (time, sequence, payload); the sequence number makes
// simultaneous events pop in insertion order, so simulations are fully
// deterministic regardless of heap internals.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace rats {

template <typename Payload>
class EventQueue {
 public:
  void push(Seconds time, Payload payload) {
    heap_.push(Entry{time, next_seq_++, std::move(payload)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  Seconds next_time() const { return heap_.top().time; }
  const Payload& peek() const { return heap_.top().payload; }

  Payload pop() {
    Payload payload = std::move(const_cast<Entry&>(heap_.top()).payload);
    heap_.pop();
    return payload;
  }

 private:
  struct Entry {
    Seconds time;
    std::uint64_t seq;
    Payload payload;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rats
