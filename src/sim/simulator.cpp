#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "redist/block_redistribution.hpp"
#include "redist/estimate.hpp"
#include "sim/event_queue.hpp"

namespace rats {

namespace {
constexpr Seconds kTimeEpsilon = 1e-12;
}

SimulationResult simulate(const TaskGraph& graph, const Schedule& schedule,
                          const Cluster& cluster,
                          const SimulatorOptions& options) {
  schedule.validate(graph, cluster);
  const AmdahlModel model(cluster.node_speed());
  FluidNetwork net(cluster);
  TraceSink* const trace = options.trace;
  net.set_trace(trace);

  const int num_tasks = graph.num_tasks();
  SimulationResult result;
  result.timeline.resize(static_cast<std::size_t>(num_tasks));

  // Per-processor task queues in schedule (seq) order.
  std::vector<std::vector<TaskId>> queue(
      static_cast<std::size_t>(cluster.num_nodes()));
  for (TaskId t = 0; t < num_tasks; ++t)
    for (NodeId p : schedule.of(t).procs)
      queue[static_cast<std::size_t>(p)].push_back(t);
  // Processors serve their tasks in the order the mapper planned them
  // to start; seq breaks ties.  (Estimated starts respect precedence —
  // a child's start is at least its parent's finish — so per-processor
  // orders cannot contradict the DAG and deadlock.)
  for (auto& q : queue)
    std::sort(q.begin(), q.end(), [&](TaskId a, TaskId b) {
      const auto& pa = schedule.of(a);
      const auto& pb = schedule.of(b);
      if (pa.est_start != pb.est_start) return pa.est_start < pb.est_start;
      return pa.seq < pb.seq;
    });
  std::vector<std::size_t> head(queue.size(), 0);

  // Task and edge progress.
  std::vector<std::int32_t> pending_inputs(static_cast<std::size_t>(num_tasks));
  std::vector<char> started(static_cast<std::size_t>(num_tasks), 0);
  for (TaskId t = 0; t < num_tasks; ++t)
    pending_inputs[static_cast<std::size_t>(t)] =
        static_cast<std::int32_t>(graph.in_edges(t).size());

  std::vector<std::int32_t> edge_pending_flows(
      static_cast<std::size_t>(graph.num_edges()), 0);
  std::vector<EdgeId> flow_edge;  ///< flow id -> edge it belongs to

  // Tasks whose inputs are complete AND that sit at the head of every
  // processor queue they use.  Fed by the two events that can make a
  // task runnable — its last input completing, and a queue head
  // advancing onto it — so per-event work is O(#affected tasks), not
  // O(num_tasks).
  std::vector<TaskId> ready;
  std::vector<char> queued(static_cast<std::size_t>(num_tasks), 0);

  auto at_head = [&](TaskId t) {
    for (NodeId p : schedule.of(t).procs) {
      const auto& q = queue[static_cast<std::size_t>(p)];
      const std::size_t pos = head[static_cast<std::size_t>(p)];
      if (pos >= q.size() || q[pos] != t) return false;
    }
    return true;
  };

  auto enqueue_if_ready = [&](TaskId t) {
    if (started[static_cast<std::size_t>(t)] ||
        queued[static_cast<std::size_t>(t)] ||
        pending_inputs[static_cast<std::size_t>(t)] > 0 || !at_head(t))
      return;
    queued[static_cast<std::size_t>(t)] = 1;
    ready.push_back(t);
  };

  EventQueue<TaskId> completions;        // task finish events
  EventQueue<EdgeId> timed_edges;        // contention-free mode only
  Seconds now = 0;
  int finished_count = 0;

  auto edge_complete = [&](EdgeId e) {
    const TaskId dst = graph.edge(e).dst;
    auto& pending = pending_inputs[static_cast<std::size_t>(dst)];
    RATS_REQUIRE(pending > 0, "edge completed twice");
    if (trace) trace->record(now, TraceEventKind::RedistDone, e);
    if (--pending == 0) {
      result.timeline[static_cast<std::size_t>(dst)].data_ready = now;
      enqueue_if_ready(dst);
    }
  };

  // Redistribution plans repeat across task completions (and across the
  // scenarios a worker thread replays): the per-thread planner caches
  // them and reuses its matching scratch on misses.
  static thread_local RedistPlanner planner;
  planner.tag_simulator();

  auto open_redistribution = [&](EdgeId e) {
    const Edge& edge = graph.edge(e);
    const Redistribution& plan =
        planner.plan(edge.bytes, schedule.of(edge.src).procs,
                     schedule.of(edge.dst).procs);
    result.network_bytes += plan.remote_bytes();
    if (trace)
      trace->record(now, TraceEventKind::RedistStart, e,
                    static_cast<std::int32_t>(plan.transfers().size()),
                    plan.remote_bytes());
    if (plan.transfers().empty()) {
      edge_complete(e);  // all data stays local: zero-cost redistribution
      return;
    }
    if (!options.contention) {
      timed_edges.push(now + estimate_redistribution_time(cluster, plan), e);
      return;
    }
    for (const Transfer& tr : plan.transfers()) {
      const FlowId f = net.open_flow(tr.src, tr.dst, tr.bytes);
      ++edge_pending_flows[static_cast<std::size_t>(e)];
      if (flow_edge.size() <= static_cast<std::size_t>(f))
        flow_edge.resize(static_cast<std::size_t>(f) + 1, -1);
      flow_edge[static_cast<std::size_t>(f)] = e;
    }
  };

  auto finish_task = [&](TaskId t) {
    result.timeline[static_cast<std::size_t>(t)].finish = now;
    ++finished_count;
    if (trace) trace->record(now, TraceEventKind::TaskFinish, t);
    for (NodeId p : schedule.of(t).procs) {
      auto& pos = head[static_cast<std::size_t>(p)];
      const auto& q = queue[static_cast<std::size_t>(p)];
      RATS_REQUIRE(q[pos] == t, "completing task was not at queue head");
      ++pos;
      // The queue head advanced: its new head may now be startable.
      if (pos < q.size()) enqueue_if_ready(q[pos]);
    }
    for (EdgeId e : graph.out_edges(t)) open_redistribution(e);
  };

  // Seed the ready set: entry tasks already heading their queues.
  for (TaskId t = 0; t < num_tasks; ++t) enqueue_if_ready(t);

  while (finished_count < num_tasks) {
    // Start everything that became runnable since the last event.
    while (!ready.empty()) {
      const TaskId t = ready.back();
      ready.pop_back();
      started[static_cast<std::size_t>(t)] = 1;
      auto& timing = result.timeline[static_cast<std::size_t>(t)];
      timing.start = now;
      if (trace)
        trace->record(now, TraceEventKind::TaskStart, t,
                      static_cast<std::int32_t>(schedule.of(t).procs.size()));
      const Seconds duration =
          model.execution_time(graph.task(t), schedule.allocation(t));
      completions.push(now + duration, t);
    }

    // Earliest next event: a task completion, a network change or a
    // contention-free redistribution completing.
    Seconds t_next = std::numeric_limits<Seconds>::infinity();
    if (!completions.empty()) t_next = completions.next_time();
    if (!timed_edges.empty())
      t_next = std::min(t_next, timed_edges.next_time());
    if (const auto net_next = net.next_event_time())
      t_next = std::min(t_next, *net_next);
    RATS_REQUIRE(std::isfinite(t_next),
                 "simulation stalled: no runnable task, no event in flight");

    net.advance_to(t_next);
    now = t_next;

    // Flow completions -> redistribution completions, O(#finished).
    for (const FlowId f : net.drain_completed()) {
      const EdgeId e = flow_edge[static_cast<std::size_t>(f)];
      if (--edge_pending_flows[static_cast<std::size_t>(e)] == 0)
        edge_complete(e);
    }
    while (!timed_edges.empty() &&
           timed_edges.next_time() <= now + kTimeEpsilon)
      edge_complete(timed_edges.pop());

    // Task completions due now.
    while (!completions.empty() &&
           completions.next_time() <= now + kTimeEpsilon)
      finish_task(completions.pop());
  }

  for (const auto& timing : result.timeline)
    result.makespan = std::max(result.makespan, timing.finish);
  result.total_work = schedule.total_work(graph, model);
  return result;
}

}  // namespace rats
