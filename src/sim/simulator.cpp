#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "redist/block_redistribution.hpp"
#include "redist/estimate.hpp"
#include "sim/event_queue.hpp"

namespace rats {

namespace {

constexpr Seconds kTimeEpsilon = 1e-12;

// Versioned event payloads.  A kill, re-timing or redistribution abort
// bumps the subject's version, which turns the prediction already in
// the queue stale (EventQueue cannot re-key); stale entries are skipped
// when popped.  On a healthy timeline every version stays 0 and the
// queues behave exactly like the unversioned originals.
struct TaskEvent {
  TaskId task;
  std::uint32_t version;
};

struct EdgeEvent {
  EdgeId edge;
  std::uint32_t version;
};

/// Simulator-level registry counters (registered once per process;
/// deterministic totals, so CI can pin them).
struct SimCounters {
  obs::Counter& tasks_executed = obs::counter("sim/tasks_executed");
  obs::Counter& redists_opened = obs::counter("sim/redists_opened");
  obs::Counter& redists_completed = obs::counter("sim/redists_completed");
};

SimCounters& sim_counters() {
  static SimCounters counters;
  return counters;
}

}  // namespace

SimulationResult simulate(const TaskGraph& graph, const Schedule& schedule,
                          const Cluster& cluster,
                          const SimulatorOptions& options) {
  schedule.validate(graph, cluster);
  const AmdahlModel model(cluster.node_speed());
  FluidNetwork net(cluster);
  TraceSink* const trace = options.trace;
  net.set_trace(trace);
  net.set_validation(options.validate);

  // An empty timeline must be indistinguishable from no timeline at
  // all, so normalize it away up front.
  const PlatformTimeline* const timeline =
      (options.timeline != nullptr && !options.timeline->empty())
          ? options.timeline
          : nullptr;
  if (timeline) timeline->validate(cluster);

  const int num_tasks = graph.num_tasks();
  const int num_edges = graph.num_edges();
  const std::size_t num_procs = static_cast<std::size_t>(cluster.num_nodes());
  SimulationResult result;
  result.timeline.resize(static_cast<std::size_t>(num_tasks));

  // Task placements.  Static unless a failure under the reschedule
  // policy remaps slots; the healthy path reads the schedule directly
  // (no copies on the hot path).
  std::vector<std::vector<NodeId>> remapped;
  if (timeline) {
    remapped.resize(static_cast<std::size_t>(num_tasks));
    for (TaskId t = 0; t < num_tasks; ++t)
      remapped[static_cast<std::size_t>(t)] = schedule.of(t).procs;
  }
  auto procs_of = [&](TaskId t) -> const std::vector<NodeId>& {
    return timeline ? remapped[static_cast<std::size_t>(t)]
                    : schedule.of(t).procs;
  };

  // Per-processor task queues in schedule (seq) order.
  std::vector<std::vector<TaskId>> queue(num_procs);
  for (TaskId t = 0; t < num_tasks; ++t)
    for (NodeId p : schedule.of(t).procs)
      queue[static_cast<std::size_t>(p)].push_back(t);
  // Processors serve their tasks in the order the mapper planned them
  // to start; seq breaks ties.  (Estimated starts respect precedence —
  // a child's start is at least its parent's finish — so per-processor
  // orders cannot contradict the DAG and deadlock.)
  auto plan_before = [&](TaskId a, TaskId b) {
    const auto& pa = schedule.of(a);
    const auto& pb = schedule.of(b);
    if (pa.est_start != pb.est_start) return pa.est_start < pb.est_start;
    return pa.seq < pb.seq;
  };
  for (auto& q : queue) std::sort(q.begin(), q.end(), plan_before);
  std::vector<std::size_t> head(queue.size(), 0);

  // Task and edge progress.
  std::vector<std::int32_t> pending_inputs(static_cast<std::size_t>(num_tasks));
  std::vector<char> started(static_cast<std::size_t>(num_tasks), 0);
  std::vector<char> done(static_cast<std::size_t>(num_tasks), 0);
  std::vector<std::uint32_t> task_version(static_cast<std::size_t>(num_tasks),
                                          0);
  for (TaskId t = 0; t < num_tasks; ++t)
    pending_inputs[static_cast<std::size_t>(t)] =
        static_cast<std::int32_t>(graph.in_edges(t).size());

  std::vector<std::int32_t> edge_pending_flows(
      static_cast<std::size_t>(num_edges), 0);
  std::vector<std::uint32_t> edge_version(static_cast<std::size_t>(num_edges),
                                          0);
  std::vector<EdgeId> flow_edge;  ///< flow id -> edge it belongs to

  // Timeline-only state.
  std::vector<char> node_up;        ///< per node: accepting work
  std::vector<double> node_factor;  ///< per node: speed multiplier
  std::vector<double> work_left;    ///< per running task: healthy seconds
  std::vector<double> run_factor;   ///< per running task: current speed
  std::vector<Seconds> settle_time; ///< instant work_left was settled at
  std::vector<char> edge_open;      ///< redistribution in flight
  std::vector<std::vector<FlowId>> edge_flows;  ///< its live flows
  std::vector<char> is_parked;      ///< waiting for endpoints to restart
  std::vector<EdgeId> parked;
  std::vector<double> base_cap;        ///< per link: cluster capacity
  std::vector<double> traffic_factor;  ///< per link: background scaling
  std::vector<NodeId> link_owner;      ///< NIC links -> node, else -1
  if (timeline) {
    node_up.assign(num_procs, 1);
    node_factor.assign(num_procs, 1.0);
    work_left.assign(static_cast<std::size_t>(num_tasks), 0);
    run_factor.assign(static_cast<std::size_t>(num_tasks), 1.0);
    settle_time.assign(static_cast<std::size_t>(num_tasks), 0);
    edge_open.assign(static_cast<std::size_t>(num_edges), 0);
    edge_flows.resize(static_cast<std::size_t>(num_edges));
    is_parked.assign(static_cast<std::size_t>(num_edges), 0);
    const std::size_t num_links = static_cast<std::size_t>(cluster.num_links());
    base_cap.resize(num_links);
    for (LinkId l = 0; l < cluster.num_links(); ++l)
      base_cap[static_cast<std::size_t>(l)] = cluster.link(l).bandwidth;
    traffic_factor.assign(num_links, 1.0);
    link_owner.assign(num_links, -1);
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      link_owner[static_cast<std::size_t>(cluster.nic_up(n))] = n;
      link_owner[static_cast<std::size_t>(cluster.nic_down(n))] = n;
    }
  }

  auto procs_up = [&](TaskId t) {
    for (NodeId p : procs_of(t))
      if (!node_up[static_cast<std::size_t>(p)]) return false;
    return true;
  };
  auto edge_nodes_up = [&](EdgeId e) {
    const Edge& edge = graph.edge(e);
    return procs_up(edge.src) && procs_up(edge.dst);
  };
  // A task computes at the pace of its slowest processor.
  auto task_factor = [&](TaskId t) {
    double factor = 1.0;
    for (NodeId p : procs_of(t))
      factor = std::min(factor, node_factor[static_cast<std::size_t>(p)]);
    return factor;
  };

  // Tasks whose inputs are complete AND that sit at the head of every
  // processor queue they use.  Fed by the two events that can make a
  // task runnable — its last input completing, and a queue head
  // advancing onto it — so per-event work is O(#affected tasks), not
  // O(num_tasks).
  std::vector<TaskId> ready;
  std::vector<char> queued(static_cast<std::size_t>(num_tasks), 0);

  auto at_head = [&](TaskId t) {
    for (NodeId p : procs_of(t)) {
      const auto& q = queue[static_cast<std::size_t>(p)];
      const std::size_t pos = head[static_cast<std::size_t>(p)];
      if (pos >= q.size() || q[pos] != t) return false;
    }
    return true;
  };

  auto enqueue_if_ready = [&](TaskId t) {
    if (started[static_cast<std::size_t>(t)] ||
        queued[static_cast<std::size_t>(t)] ||
        pending_inputs[static_cast<std::size_t>(t)] > 0 || !at_head(t))
      return;
    if (timeline && !procs_up(t)) return;  // held until its nodes restart
    queued[static_cast<std::size_t>(t)] = 1;
    ready.push_back(t);
  };

  EventQueue<TaskEvent> completions;  // task finish events
  EventQueue<EdgeEvent> timed_edges;  // contention-free mode only
  Seconds now = 0;
  int finished_count = 0;

  auto edge_complete = [&](EdgeId e) {
    if (timeline) {
      edge_open[static_cast<std::size_t>(e)] = 0;
      edge_flows[static_cast<std::size_t>(e)].clear();
    }
    const TaskId dst = graph.edge(e).dst;
    auto& pending = pending_inputs[static_cast<std::size_t>(dst)];
    RATS_REQUIRE(pending > 0, "edge completed twice");
    sim_counters().redists_completed.inc();
    if (trace) trace->record(now, TraceEventKind::RedistDone, e);
    if (--pending == 0) {
      result.timeline[static_cast<std::size_t>(dst)].data_ready = now;
      enqueue_if_ready(dst);
    }
  };

  // Redistribution plans repeat across task completions (and across the
  // scenarios a worker thread replays): the per-thread planner caches
  // them and reuses its matching scratch on misses.
  static thread_local RedistPlanner planner;
  planner.tag_simulator();

  auto open_redistribution = [&](EdgeId e) {
    const Edge& edge = graph.edge(e);
    if (timeline) {
      if (!edge_nodes_up(e)) {
        // An endpoint is down: the data is durable but unreachable, so
        // the delivery parks until every endpoint is back.
        if (!is_parked[static_cast<std::size_t>(e)]) {
          is_parked[static_cast<std::size_t>(e)] = 1;
          parked.push_back(e);
        }
        return;
      }
      edge_open[static_cast<std::size_t>(e)] = 1;
      edge_flows[static_cast<std::size_t>(e)].clear();
    }
    sim_counters().redists_opened.inc();
    const Redistribution& plan = [&]() -> const Redistribution& {
      obs::PhaseTimer span("redist/plan");
      return planner.plan(edge.bytes, procs_of(edge.src), procs_of(edge.dst));
    }();
    result.network_bytes += plan.remote_bytes();
    if (trace)
      trace->record(now, TraceEventKind::RedistStart, e,
                    static_cast<std::int32_t>(plan.transfers().size()),
                    plan.remote_bytes());
    if (plan.transfers().empty()) {
      edge_complete(e);  // all data stays local: zero-cost redistribution
      return;
    }
    if (!options.contention) {
      timed_edges.push(
          now + estimate_redistribution_time(cluster, plan),
          EdgeEvent{e, edge_version[static_cast<std::size_t>(e)]});
      return;
    }
    for (const Transfer& tr : plan.transfers()) {
      const FlowId f = net.open_flow(tr.src, tr.dst, tr.bytes);
      ++edge_pending_flows[static_cast<std::size_t>(e)];
      if (flow_edge.size() <= static_cast<std::size_t>(f))
        flow_edge.resize(static_cast<std::size_t>(f) + 1, -1);
      flow_edge[static_cast<std::size_t>(f)] = e;
      if (timeline) edge_flows[static_cast<std::size_t>(e)].push_back(f);
    }
  };

  auto finish_task = [&](TaskId t) {
    result.timeline[static_cast<std::size_t>(t)].finish = now;
    done[static_cast<std::size_t>(t)] = 1;
    ++finished_count;
    sim_counters().tasks_executed.inc();
    if (trace) trace->record(now, TraceEventKind::TaskFinish, t);
    for (NodeId p : procs_of(t)) {
      auto& pos = head[static_cast<std::size_t>(p)];
      const auto& q = queue[static_cast<std::size_t>(p)];
      RATS_REQUIRE(q[pos] == t, "completing task was not at queue head");
      ++pos;
      // The queue head advanced: its new head may now be startable.
      if (pos < q.size()) enqueue_if_ready(q[pos]);
    }
    for (EdgeId e : graph.out_edges(t)) open_redistribution(e);
  };

  // ---- failure machinery (timeline only) -----------------------------

  // Rolls an in-flight redistribution back entirely: live flows are
  // cancelled, partial progress is discarded, and the edge must re-send
  // from scratch when it re-opens.
  auto abort_edge = [&](EdgeId e) {
    if (!edge_open[static_cast<std::size_t>(e)]) return;
    edge_open[static_cast<std::size_t>(e)] = 0;
    for (FlowId f : edge_flows[static_cast<std::size_t>(e)])
      net.cancel_flow(f);  // no-op for flows that already completed
    edge_flows[static_cast<std::size_t>(e)].clear();
    edge_pending_flows[static_cast<std::size_t>(e)] = 0;
    ++edge_version[static_cast<std::size_t>(e)];  // stales a timed event
    ++result.faults.redists_aborted;
    if (trace) trace->record(now, TraceEventKind::RedistAbort, e);
  };

  // Fail-stop: the execution (if any) heading `p`'s queue dies with the
  // node and all its progress is lost.  A task runs on every processor
  // of its placement at once, so it heads each of their queues — the
  // started check keeps a multi-processor task from being counted once
  // per failed member.
  auto kill_running_on = [&](NodeId p) {
    const auto& q = queue[static_cast<std::size_t>(p)];
    const std::size_t pos = head[static_cast<std::size_t>(p)];
    if (pos >= q.size()) return;
    const TaskId t = q[pos];
    if (!started[static_cast<std::size_t>(t)] ||
        done[static_cast<std::size_t>(t)])
      return;
    ++task_version[static_cast<std::size_t>(t)];  // cancels its completion
    started[static_cast<std::size_t>(t)] = 0;
    ++result.faults.tasks_killed;
    if (trace) trace->record(now, TraceEventKind::TaskKill, t, p);
  };

  // A speed change on `p` re-times the execution heading its queue:
  // settle the work done at the old pace, re-predict at the new one.
  auto retime_running_on = [&](NodeId p) {
    const auto& q = queue[static_cast<std::size_t>(p)];
    const std::size_t pos = head[static_cast<std::size_t>(p)];
    if (pos >= q.size()) return;
    const TaskId t = q[pos];
    if (!started[static_cast<std::size_t>(t)] ||
        done[static_cast<std::size_t>(t)])
      return;
    auto& left = work_left[static_cast<std::size_t>(t)];
    left -= (now - settle_time[static_cast<std::size_t>(t)]) *
            run_factor[static_cast<std::size_t>(t)];
    if (left < 0) left = 0;
    settle_time[static_cast<std::size_t>(t)] = now;
    run_factor[static_cast<std::size_t>(t)] = task_factor(t);
    ++task_version[static_cast<std::size_t>(t)];
    completions.push(now + left / run_factor[static_cast<std::size_t>(t)],
                     TaskEvent{t, task_version[static_cast<std::size_t>(t)]});
  };

  // A killed or remapped task needs every input delivered again to its
  // (possibly new) placement: in-flight deliveries roll back, finished
  // ones re-send as soon as their producer's data is reachable.
  auto reset_inputs = [&](TaskId t) {
    const auto& ins = graph.in_edges(t);
    pending_inputs[static_cast<std::size_t>(t)] =
        static_cast<std::int32_t>(ins.size());
    for (EdgeId e : ins) {
      abort_edge(e);
      is_parked[static_cast<std::size_t>(e)] = 0;
      if (done[static_cast<std::size_t>(graph.edge(e).src)])
        open_redistribution(e);
    }
    if (pending_inputs[static_cast<std::size_t>(t)] == 0) {
      result.timeline[static_cast<std::size_t>(t)].data_ready = now;
      enqueue_if_ready(t);
    }
  };

  // Reschedule policy: every task still queued on the failed node moves
  // its failed slot to the least-loaded surviving node (keeping the
  // rest of its placement), re-entering that node's queue at its
  // planned (est_start, seq) position — the same consistent total order
  // every queue is sorted by, so the insertion cannot deadlock.  The
  // one exception is a slot clamped behind a running head (an execution
  // in progress is never preempted), which that head's completion
  // unblocks.  When no surviving node qualifies the slot is held for a
  // restart instead.
  auto remap_off = [&](NodeId p) {
    auto& qp = queue[static_cast<std::size_t>(p)];
    std::vector<TaskId> victims(qp.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        head[static_cast<std::size_t>(p)]),
                                qp.end());
    qp.resize(head[static_cast<std::size_t>(p)]);
    for (TaskId t : victims) {
      auto& procs = remapped[static_cast<std::size_t>(t)];
      NodeId r = -1;
      std::size_t best_load = std::numeric_limits<std::size_t>::max();
      for (NodeId cand = 0; cand < cluster.num_nodes(); ++cand) {
        if (!node_up[static_cast<std::size_t>(cand)]) continue;
        if (std::find(procs.begin(), procs.end(), cand) != procs.end())
          continue;
        const auto& qc = queue[static_cast<std::size_t>(cand)];
        const std::size_t load =
            qc.size() - head[static_cast<std::size_t>(cand)];
        if (load < best_load) {
          best_load = load;
          r = cand;
        }
      }
      if (r < 0) {
        qp.push_back(t);  // hold the slot; victims keep their order
        continue;
      }
      *std::find(procs.begin(), procs.end(), p) = r;
      auto& qr = queue[static_cast<std::size_t>(r)];
      std::size_t begin = head[static_cast<std::size_t>(r)];
      if (begin < qr.size()) {
        const TaskId h = qr[begin];
        if (started[static_cast<std::size_t>(h)] &&
            !done[static_cast<std::size_t>(h)])
          ++begin;  // never preempt a running execution
      }
      qr.insert(std::lower_bound(qr.begin() +
                                     static_cast<std::ptrdiff_t>(begin),
                                 qr.end(), t, plan_before),
                t);
      ++result.faults.tasks_remapped;
      if (trace)
        trace->record(now, TraceEventKind::TaskRemap, t, p,
                      static_cast<double>(r));
      reset_inputs(t);
    }
  };

  // ---- capacity accounting (timeline only) ---------------------------

  // Effective capacity scaling of a link right now: zero while its
  // owning node is down (NIC links), the latest background-traffic
  // factor otherwise.
  auto eff_factor = [&](LinkId l) -> double {
    const NodeId owner = link_owner[static_cast<std::size_t>(l)];
    if (owner >= 0 && !node_up[static_cast<std::size_t>(owner)]) return 0.0;
    return traffic_factor[static_cast<std::size_t>(l)];
  };

  // Piecewise-constant integrals of lost capacity and node downtime;
  // settled at every platform change and once more at the makespan.
  Seconds last_settle = 0;
  auto settle_capacity = [&](Seconds upto) {
    const Seconds dt = upto - last_settle;
    if (dt <= 0) return;
    double lost_rate = 0;
    for (LinkId l = 0; l < cluster.num_links(); ++l)
      lost_rate +=
          base_cap[static_cast<std::size_t>(l)] * (1.0 - eff_factor(l));
    result.faults.capacity_seconds_lost += lost_rate * dt;
    int down = 0;
    for (const char up : node_up)
      if (!up) ++down;
    result.faults.node_seconds_down += down * dt;
    last_settle = upto;
  };

  // Applies one same-timestamp batch of platform events atomically: a
  // fail and a restart of the same node in one batch cancel out.
  auto apply_batch = [&](std::size_t first, std::size_t last) {
    settle_capacity(now);
    // Phase 1: flip platform state in event order; collect the links
    // whose capacity must be recomputed.
    const std::vector<char> was_up = node_up;
    std::vector<LinkId> touched;
    auto touch = [&](LinkId l) {
      if (std::find(touched.begin(), touched.end(), l) == touched.end())
        touched.push_back(l);
    };
    auto touch_node_links = [&](NodeId n) {
      touch(cluster.nic_up(n));
      touch(cluster.nic_down(n));
    };
    std::vector<NodeId> slowed;
    for (std::size_t i = first; i < last; ++i) {
      const PlatformEvent& e = timeline->events[i];
      switch (e.kind) {
        case PlatformEventKind::LinkCapacity:
          if (e.node >= 0) {
            traffic_factor[static_cast<std::size_t>(cluster.nic_up(e.node))] =
                e.factor;
            traffic_factor[static_cast<std::size_t>(
                cluster.nic_down(e.node))] = e.factor;
            touch_node_links(e.node);
          } else {
            traffic_factor[static_cast<std::size_t>(
                cluster.cabinet_up(e.cabinet))] = e.factor;
            traffic_factor[static_cast<std::size_t>(
                cluster.cabinet_down(e.cabinet))] = e.factor;
            touch(cluster.cabinet_up(e.cabinet));
            touch(cluster.cabinet_down(e.cabinet));
          }
          break;
        case PlatformEventKind::NodeSlowdown:
          node_factor[static_cast<std::size_t>(e.node)] = e.factor;
          slowed.push_back(e.node);
          if (trace)
            trace->record(now, TraceEventKind::NodeSlowdown, e.node, -1,
                          e.factor);
          break;
        case PlatformEventKind::NodeFail:
          node_up[static_cast<std::size_t>(e.node)] = 0;
          touch_node_links(e.node);
          if (trace) trace->record(now, TraceEventKind::NodeFail, e.node);
          break;
        case PlatformEventKind::NodeRestart:
          node_up[static_cast<std::size_t>(e.node)] = 1;
          touch_node_links(e.node);
          if (trace) trace->record(now, TraceEventKind::NodeRestart, e.node);
          break;
      }
    }
    std::vector<NodeId> newly_down, newly_up;
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      if (was_up[static_cast<std::size_t>(n)] &&
          !node_up[static_cast<std::size_t>(n)])
        newly_down.push_back(n);
      else if (!was_up[static_cast<std::size_t>(n)] &&
               node_up[static_cast<std::size_t>(n)])
        newly_up.push_back(n);
    }
    // Phase 2: consequences of going down — kill running executions,
    // roll back transfers touching a dead node, re-time slowed
    // executions, then remap queued work off dead nodes.  All of this
    // happens before link capacities change so no live flow ever
    // crosses a zero-capacity link.
    for (const NodeId p : newly_down) kill_running_on(p);
    if (!newly_down.empty()) {
      for (EdgeId e = 0; e < num_edges; ++e) {
        if (!edge_open[static_cast<std::size_t>(e)] || edge_nodes_up(e))
          continue;
        abort_edge(e);
        is_parked[static_cast<std::size_t>(e)] = 1;
        parked.push_back(e);
      }
    }
    for (const NodeId n : slowed) retime_running_on(n);
    if (timeline->on_fail == FailPolicy::Reschedule)
      for (const NodeId p : newly_down) remap_off(p);
    // Restore plan order among pending tasks.  remap_off inserts a
    // victim after a running head even when the victim plan-orders
    // first (an execution in progress is never preempted); if that head
    // is later killed it stays queued at the front as a plain pending
    // task, and the leftover inversion can disagree with another
    // queue's order — two tasks each waiting behind the other, a
    // permanent stall (found by fuzzing).  Re-sorting every pending
    // suffix by the one total order makes cross-queue cycles
    // impossible again; on untouched queues this is a no-op.
    if (!newly_down.empty()) {
      for (std::size_t p = 0; p < queue.size(); ++p) {
        auto& q = queue[p];
        std::size_t begin = head[p];
        if (begin < q.size()) {
          const TaskId h = q[begin];
          if (started[static_cast<std::size_t>(h)] &&
              !done[static_cast<std::size_t>(h)])
            ++begin;  // a running execution keeps its slot
        }
        if (q.size() > begin + 1)
          std::sort(q.begin() + static_cast<std::ptrdiff_t>(begin), q.end(),
                    plan_before);
      }
    }
    // Phase 3: commit link capacities (traced with the final value).
    for (const LinkId l : touched) {
      const Rate cap = eff_factor(l) * base_cap[static_cast<std::size_t>(l)];
      net.set_link_capacity(l, cap);
      if (trace) trace->record(now, TraceEventKind::LinkCapacity, l, -1, cap);
    }
    // Phase 4: consequences of coming up — resume parked deliveries and
    // wake queue heads the availability gate was holding back.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < parked.size(); ++i) {
      const EdgeId e = parked[i];
      if (!is_parked[static_cast<std::size_t>(e)]) continue;  // remap reset
      if (!edge_nodes_up(e)) {
        parked[keep++] = e;
        continue;
      }
      is_parked[static_cast<std::size_t>(e)] = 0;
      open_redistribution(e);
    }
    parked.resize(keep);
    for (std::size_t p = 0; p < queue.size(); ++p)
      if (head[p] < queue[p].size()) enqueue_if_ready(queue[p][head[p]]);
    // Leave the network flushed: cancellations mark components dirty
    // and next_event_time() asserts a clean partition.
    net.ensure_rates();
  };

  // Drops stale (version-bumped) predictions from the queue heads so
  // they never schedule ghost wakeups.
  auto purge_stale = [&] {
    if (!timeline) return;
    while (!completions.empty() &&
           completions.peek().version !=
               task_version[static_cast<std::size_t>(completions.peek().task)])
      completions.pop();
    while (!timed_edges.empty() &&
           timed_edges.peek().version !=
               edge_version[static_cast<std::size_t>(timed_edges.peek().edge)])
      timed_edges.pop();
  };

  // Seed the ready set: entry tasks already heading their queues.
  for (TaskId t = 0; t < num_tasks; ++t) enqueue_if_ready(t);

  std::size_t next_ev = 0;
  const std::size_t num_events = timeline ? timeline->events.size() : 0;

  while (finished_count < num_tasks) {
    // Apply platform batches due now.  Ordering ties: completions at T
    // were drained at the end of the previous iteration, so a task
    // finishing exactly when its node fails survives; events at t=0
    // apply before any task starts.
    while (next_ev < num_events &&
           timeline->events[next_ev].at <= now + kTimeEpsilon) {
      const Seconds at = timeline->events[next_ev].at;
      std::size_t batch_end = next_ev + 1;
      while (batch_end < num_events && timeline->events[batch_end].at == at)
        ++batch_end;
      apply_batch(next_ev, batch_end);
      next_ev = batch_end;
    }

    // Start everything that became runnable since the last event.
    while (!ready.empty()) {
      const TaskId t = ready.back();
      ready.pop_back();
      if (timeline) {
        // Re-validate: a failure batch may have killed, displaced or
        // availability-gated this task after it was enqueued.
        queued[static_cast<std::size_t>(t)] = 0;
        if (started[static_cast<std::size_t>(t)] ||
            pending_inputs[static_cast<std::size_t>(t)] > 0 || !at_head(t) ||
            !procs_up(t))
          continue;
      }
      started[static_cast<std::size_t>(t)] = 1;
      auto& timing = result.timeline[static_cast<std::size_t>(t)];
      timing.start = now;
      if (trace)
        trace->record(now, TraceEventKind::TaskStart, t,
                      static_cast<std::int32_t>(procs_of(t).size()));
      const Seconds duration =
          model.execution_time(graph.task(t), schedule.allocation(t));
      if (timeline) {
        const double factor = task_factor(t);
        work_left[static_cast<std::size_t>(t)] = duration;
        run_factor[static_cast<std::size_t>(t)] = factor;
        settle_time[static_cast<std::size_t>(t)] = now;
        completions.push(
            now + duration / factor,
            TaskEvent{t, task_version[static_cast<std::size_t>(t)]});
      } else {
        completions.push(now + duration, TaskEvent{t, 0});
      }
    }

    // Earliest next event: a task completion, a network change, a
    // contention-free redistribution completing or a platform event.
    purge_stale();
    Seconds t_next = std::numeric_limits<Seconds>::infinity();
    if (!completions.empty()) t_next = completions.next_time();
    if (!timed_edges.empty())
      t_next = std::min(t_next, timed_edges.next_time());
    if (const auto net_next = net.next_event_time())
      t_next = std::min(t_next, *net_next);
    if (next_ev < num_events)
      t_next = std::min(t_next, std::max(timeline->events[next_ev].at, now));
    if (!std::isfinite(t_next)) {
      std::string msg =
          "simulation stalled: no runnable task, no event in flight";
      if (timeline) {
        std::string down_list;
        for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
          if (node_up[static_cast<std::size_t>(n)]) continue;
          if (!down_list.empty()) down_list += ", ";
          down_list += std::to_string(n);
        }
        if (!down_list.empty())
          msg += " (node " + down_list +
                 " down with no scheduled restart; data held there is "
                 "unreachable)";
      }
      RATS_REQUIRE(false, msg);
    }

    net.advance_to(t_next);
    now = t_next;

    // Flow completions -> redistribution completions, O(#finished).
    for (const FlowId f : net.drain_completed()) {
      const EdgeId e = flow_edge[static_cast<std::size_t>(f)];
      if (timeline && !edge_open[static_cast<std::size_t>(e)])
        continue;  // the edge was rolled back while this flow drained
      if (--edge_pending_flows[static_cast<std::size_t>(e)] == 0)
        edge_complete(e);
    }
    while (!timed_edges.empty() &&
           timed_edges.next_time() <= now + kTimeEpsilon) {
      const EdgeEvent ev = timed_edges.pop();
      if (ev.version != edge_version[static_cast<std::size_t>(ev.edge)])
        continue;
      edge_complete(ev.edge);
    }

    // Task completions due now.
    while (!completions.empty() &&
           completions.next_time() <= now + kTimeEpsilon) {
      const TaskEvent ev = completions.pop();
      if (ev.version != task_version[static_cast<std::size_t>(ev.task)])
        continue;
      finish_task(ev.task);
    }
  }

  for (const auto& timing : result.timeline)
    result.makespan = std::max(result.makespan, timing.finish);
  if (timeline) settle_capacity(result.makespan);
  result.total_work = schedule.total_work(graph, model);
  return result;
}

}  // namespace rats
