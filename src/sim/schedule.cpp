#include "sim/schedule.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace rats {

Seconds Schedule::estimated_makespan() const {
  Seconds makespan = 0;
  for (const auto& p : placements) makespan = std::max(makespan, p.est_finish);
  return makespan;
}

double Schedule::total_work(const TaskGraph& g, const AmdahlModel& model) const {
  RATS_REQUIRE(placements.size() == static_cast<std::size_t>(g.num_tasks()),
               "schedule does not cover the graph");
  double work = 0;
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    work += model.work(g.task(t), allocation(t));
  return work;
}

void Schedule::validate(const TaskGraph& g, const Cluster& cluster) const {
  RATS_REQUIRE(placements.size() == static_cast<std::size_t>(g.num_tasks()),
               "schedule must place every task");
  std::set<std::int64_t> seqs;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    const TaskPlacement& p = of(t);
    RATS_REQUIRE(!p.procs.empty(), "task mapped onto empty processor set");
    std::set<NodeId> distinct(p.procs.begin(), p.procs.end());
    RATS_REQUIRE(distinct.size() == p.procs.size(),
                 "task mapped onto duplicated processors");
    RATS_REQUIRE(*distinct.begin() >= 0 &&
                     *distinct.rbegin() < cluster.num_nodes(),
                 "task mapped onto out-of-range processor");
    RATS_REQUIRE(p.seq >= 0, "placement missing sequence number");
    RATS_REQUIRE(seqs.insert(p.seq).second, "duplicate sequence number");
  }
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    for (TaskId pred : g.predecessors(t))
      RATS_REQUIRE(of(pred).seq < of(t).seq,
                   "schedule order violates a dependence");
}

}  // namespace rats
