// Schedule representation: the output of the two-step schedulers and
// the input of the simulator.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "dag/task_graph.hpp"
#include "model/amdahl.hpp"
#include "platform/cluster.hpp"

namespace rats {

/// Where and (estimatedly) when one task runs.
struct TaskPlacement {
  std::vector<NodeId> procs;  ///< ordered processor set (rank order)
  Seconds est_start{};        ///< mapper's contention-free start estimate
  Seconds est_finish{};       ///< mapper's contention-free finish estimate
  std::int64_t seq = -1;      ///< mapping order; orders tasks per processor
};

/// A complete schedule: one placement per task of the graph.
struct Schedule {
  std::vector<TaskPlacement> placements;

  const TaskPlacement& of(TaskId t) const {
    return placements[static_cast<std::size_t>(t)];
  }
  TaskPlacement& of(TaskId t) {
    return placements[static_cast<std::size_t>(t)];
  }

  /// Allocation size of task `t`.
  int allocation(TaskId t) const {
    return static_cast<int>(of(t).procs.size());
  }

  /// Mapper-estimated makespan (max est_finish).
  Seconds estimated_makespan() const;

  /// Total work (processor-time area) under `model`: sum over tasks of
  /// |procs| * T(t, |procs|).  Contention does not change compute
  /// durations, so this equals the simulated work.
  double total_work(const TaskGraph& g, const AmdahlModel& model) const;

  /// Throws rats::Error unless every task is mapped onto a non-empty
  /// set of distinct, in-range processors, sequence numbers are unique,
  /// and every task's seq is greater than all of its predecessors'
  /// (so per-processor orderings cannot deadlock the simulator).
  void validate(const TaskGraph& g, const Cluster& cluster) const;
};

}  // namespace rats
