// `.rats` scenario files: a small self-contained TOML-like text format
// (no external dependencies) with line-numbered validation errors.
//
//   # comment (blank lines ignored)
//   [section]
//   key = value
//
// Values: "strings", numbers (42, -0.5, 100e-6), booleans (true/false)
// and flat arrays ([0, -0.25, -0.5] or ["chti", "grillon"]).
//
// Sections and keys:
//   [scenario]   name, kind, threads
//   [platform]   clusters = ["grillon", ...]           (presets)
//                — or a custom cluster —
//                name, nodes (flat) | cabinets = [24, 24, ...]
//                gflops, latency-us, bandwidth-gbps,
//                uplink-latency-us, uplink-bandwidth-gbps
//   [workload]   source = "corpus" | "family" | "generate" | "file"
//                full, samples-random, samples-kernel, seed,
//                family, cap-per-family,
//                generator, count, fft-k, tasks, width, density,
//                regularity, jump, generate-seed,
//                path
//   [algorithms] preset = "naive" | "tuned"
//   [algorithm]  (repeatable; an explicit algorithm list, in order)
//                name, kind = "cpa"|"mcpa"|"hcpa"|"delta"|"time-cost",
//                mindelta, maxdelta, minrho, packing, secondary-sort
//   [events]     on-fail = "reschedule" | "hold"
//   [event]      (repeatable; one timestamped platform event)
//                at, kind = "link-capacity"|"node-slowdown"|
//                           "node-fail"|"node-restart",
//                node | nodes = [1, 3, 7] | cabinet, factor
//                (nodes — and, for node-event kinds, cabinet = k,
//                which selects the cabinet's nodes — are parse-time
//                sugar expanding to one event per node; for
//                link-capacity, cabinet keeps its uplink meaning)
//   [sweep]      mindelta = [...], maxdelta = [...], minrho = [...],
//                event-factor = [...], event-at = [...]
//   [output]     csv, gantt, report-csv, report-json, trace,
//                trace-gzip
//
// Every error (syntax, unknown section/key, wrong type, bad value)
// throws rats::Error prefixed "<filename>:<line>:".
//
// `emit_scenario` renders a spec in canonical form: fixed section and
// key order, only the keys relevant to the chosen source/preset,
// canonical number formatting.  parse(emit(spec)) reproduces the spec,
// and emit is byte-stable across the round trip — the property the
// trace replay checker and the round-trip tests build on.
#pragma once

#include <iosfwd>
#include <string>

#include "scenario/spec.hpp"

namespace rats::scenario {

/// Parses a scenario; `filename` only labels error messages.
ScenarioSpec parse_scenario(std::istream& in,
                            const std::string& filename = "<scenario>");

/// Parses a scenario from text (convenience for tests and the trace
/// replay checker).
ScenarioSpec parse_scenario_string(const std::string& text,
                                   const std::string& filename = "<scenario>");

/// Loads a `.rats` file; throws rats::Error if unreadable.
ScenarioSpec load_scenario(const std::string& path);

/// Canonical text form (see above).
std::string emit_scenario(const ScenarioSpec& spec);

}  // namespace rats::scenario
