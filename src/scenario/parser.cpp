#include "scenario/parser.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/span.hpp"

namespace rats::scenario {

namespace {

// ---- lexing ------------------------------------------------------------

struct Value {
  enum class Type { String, Number, Bool, Array };
  Type type = Type::Number;
  std::string str;
  double num = 0;
  bool boolean = false;
  std::vector<Value> items;  ///< Array only (flat: scalars)
};

struct KeyVal {
  std::string key;
  Value value;
  int line = 0;
};

struct Section {
  std::string name;
  int line = 0;
  std::vector<KeyVal> entries;
};

[[noreturn]] void fail(const std::string& file, int line,
                       const std::string& msg) {
  throw Error(file + ":" + std::to_string(line) + ": " + msg);
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Strips a trailing comment ('#' outside quotes).
std::string strip_comment(const std::string& s) {
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;  // skip the escaped char
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '#') {
      return s.substr(0, i);
    }
  }
  return s;
}

std::string parse_quoted(const std::string& file, int line,
                         const std::string& text) {
  std::string out;
  bool closed = false;
  for (std::size_t i = 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\') {
      if (i + 1 >= text.size()) fail(file, line, "dangling escape in string");
      const char next = text[++i];
      if (next == '"' || next == '\\') out += next;
      else if (next == 'n') out += '\n';
      else if (next == 't') out += '\t';
      else fail(file, line, std::string("unknown escape '\\") + next + "'");
    } else if (c == '"') {
      if (i + 1 != text.size())
        fail(file, line, "unexpected text after closing quote");
      closed = true;
      break;
    } else {
      out += c;
    }
  }
  if (!closed) fail(file, line, "unterminated string");
  return out;
}

Value parse_scalar(const std::string& file, int line, const std::string& text);

Value parse_array(const std::string& file, int line, const std::string& text) {
  Value v;
  v.type = Value::Type::Array;
  if (text.back() != ']') fail(file, line, "array does not end with ']'");
  const std::string body = trim(text.substr(1, text.size() - 2));
  if (body.empty()) return v;
  // Split on commas outside quotes (arrays are flat).
  std::size_t start = 0;
  bool in_string = false;
  for (std::size_t i = 0; i <= body.size(); ++i) {
    if (i < body.size() && in_string) {
      if (body[i] == '\\') ++i;
      else if (body[i] == '"') in_string = false;
      continue;
    }
    if (i < body.size() && body[i] == '"') {
      in_string = true;
      continue;
    }
    if (i == body.size() || body[i] == ',') {
      const std::string item = trim(body.substr(start, i - start));
      if (item.empty()) fail(file, line, "empty array element");
      if (item.front() == '[')
        fail(file, line, "nested arrays are not supported");
      v.items.push_back(parse_scalar(file, line, item));
      start = i + 1;
    }
  }
  if (in_string) fail(file, line, "unterminated string in array");
  return v;
}

Value parse_scalar(const std::string& file, int line,
                   const std::string& text) {
  Value v;
  if (text.front() == '"') {
    v.type = Value::Type::String;
    v.str = parse_quoted(file, line, text);
    return v;
  }
  if (text == "true" || text == "false") {
    v.type = Value::Type::Bool;
    v.boolean = text == "true";
    return v;
  }
  char* end = nullptr;
  v.type = Value::Type::Number;
  v.num = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == text.c_str())
    fail(file, line,
         "cannot parse value '" + text +
             "' (expected \"string\", number, true/false or [array])");
  // strtod accepts "nan", "inf" and overflowing literals like 1e999;
  // none of them is a meaningful scenario parameter, and a NaN slips
  // through every `x <= 0` validation downstream.
  if (!std::isfinite(v.num))
    fail(file, line,
         "numeric value '" + text + "' is not finite (NaN, infinity or "
         "out of double range)");
  return v;
}

std::vector<Section> parse_document(std::istream& in,
                                    const std::string& file) {
  std::vector<Section> sections;
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    const std::string text = trim(strip_comment(raw));
    if (text.empty()) continue;
    if (text.front() == '[') {
      if (text.back() != ']')
        fail(file, line, "section header does not end with ']'");
      const std::string name = trim(text.substr(1, text.size() - 2));
      if (name.empty()) fail(file, line, "empty section name");
      sections.push_back(Section{name, line, {}});
      continue;
    }
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos)
      fail(file, line, "expected 'key = value' or '[section]'");
    const std::string key = trim(text.substr(0, eq));
    const std::string value_text = trim(text.substr(eq + 1));
    if (key.empty()) fail(file, line, "missing key before '='");
    if (value_text.empty()) fail(file, line, "missing value after '='");
    if (sections.empty())
      fail(file, line, "'" + key + "' appears before any [section]");
    Value value = value_text.front() == '['
                      ? parse_array(file, line, value_text)
                      : parse_scalar(file, line, value_text);
    for (const KeyVal& kv : sections.back().entries)
      if (kv.key == key)
        fail(file, line,
             "duplicate key '" + key + "' in [" + sections.back().name +
                 "] (first on line " + std::to_string(kv.line) + ")");
    sections.back().entries.push_back(KeyVal{key, std::move(value), line});
  }
  return sections;
}

// ---- typed binding -----------------------------------------------------

class Binder {
 public:
  explicit Binder(std::string file) : file_(std::move(file)) {}

  std::string string(const KeyVal& kv) const {
    if (kv.value.type != Value::Type::String)
      fail(file_, kv.line, "'" + kv.key + "' must be a \"string\"");
    return kv.value.str;
  }
  double number(const KeyVal& kv) const {
    if (kv.value.type != Value::Type::Number)
      fail(file_, kv.line, "'" + kv.key + "' must be a number");
    return kv.value.num;
  }
  long long integer(const KeyVal& kv) const {
    const double v = number(kv);
    if (!std::isfinite(v) || v != std::floor(v) || std::fabs(v) > 1e15)
      fail(file_, kv.line, "'" + kv.key + "' must be an integer");
    return static_cast<long long>(v);
  }
  bool boolean(const KeyVal& kv) const {
    if (kv.value.type != Value::Type::Bool)
      fail(file_, kv.line, "'" + kv.key + "' must be true or false");
    return kv.value.boolean;
  }
  std::vector<double> numbers(const KeyVal& kv) const {
    if (kv.value.type != Value::Type::Array)
      fail(file_, kv.line, "'" + kv.key + "' must be an array of numbers");
    std::vector<double> out;
    for (const Value& item : kv.value.items) {
      if (item.type != Value::Type::Number)
        fail(file_, kv.line, "'" + kv.key + "' must contain only numbers");
      out.push_back(item.num);
    }
    return out;
  }
  std::vector<int> integers(const KeyVal& kv) const {
    std::vector<int> out;
    for (const double v : numbers(kv)) {
      if (v != std::floor(v) || std::fabs(v) > 1e9)
        fail(file_, kv.line, "'" + kv.key + "' must contain only integers");
      out.push_back(static_cast<int>(v));
    }
    return out;
  }
  std::vector<bool> booleans(const KeyVal& kv) const {
    if (kv.value.type != Value::Type::Array)
      fail(file_, kv.line, "'" + kv.key + "' must be an array of booleans");
    std::vector<bool> out;
    for (const Value& item : kv.value.items) {
      if (item.type != Value::Type::Bool)
        fail(file_, kv.line,
             "'" + kv.key + "' must contain only true/false");
      out.push_back(item.boolean);
    }
    return out;
  }
  std::vector<std::string> strings(const KeyVal& kv) const {
    if (kv.value.type != Value::Type::Array)
      fail(file_, kv.line, "'" + kv.key + "' must be an array of strings");
    std::vector<std::string> out;
    for (const Value& item : kv.value.items) {
      if (item.type != Value::Type::String)
        fail(file_, kv.line, "'" + kv.key + "' must contain only strings");
      out.push_back(item.str);
    }
    return out;
  }
  [[noreturn]] void unknown_key(const Section& s, const KeyVal& kv) const {
    fail(file_, kv.line,
         "unknown key '" + kv.key + "' in [" + s.name + "]");
  }
  const std::string& file() const { return file_; }

 private:
  std::string file_;
};

SchedulerKind scheduler_kind_from(const std::string& file, int line,
                                  const std::string& name) {
  if (name == "cpa") return SchedulerKind::Cpa;
  if (name == "mcpa") return SchedulerKind::Mcpa;
  if (name == "hcpa") return SchedulerKind::Hcpa;
  if (name == "delta") return SchedulerKind::RatsDelta;
  if (name == "time-cost") return SchedulerKind::RatsTimeCost;
  fail(file, line,
       "unknown scheduler kind '" + name +
           "' (expected cpa, mcpa, hcpa, delta or time-cost)");
}

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::Cpa: return "cpa";
    case SchedulerKind::Mcpa: return "mcpa";
    case SchedulerKind::Hcpa: return "hcpa";
    case SchedulerKind::RatsDelta: return "delta";
    case SchedulerKind::RatsTimeCost: return "time-cost";
  }
  return "?";
}

void bind_scenario(const Binder& b, const Section& s, ScenarioSpec& spec) {
  for (const KeyVal& kv : s.entries) {
    if (kv.key == "name") spec.name = b.string(kv);
    else if (kv.key == "kind") spec.kind = b.string(kv);
    else if (kv.key == "threads") {
      const long long v = b.integer(kv);
      if (v < 0) fail(b.file(), kv.line, "'threads' must be >= 0");
      spec.threads = static_cast<unsigned>(v);
    } else b.unknown_key(s, kv);
  }
}

void bind_platform(const Binder& b, const Section& s, PlatformSpec& p) {
  int preset_line = 0, custom_line = 0;
  for (const KeyVal& kv : s.entries) {
    if (kv.key == "clusters") {
      p.presets = b.strings(kv);
      if (p.presets.empty())
        fail(b.file(), kv.line, "'clusters' must not be empty");
      preset_line = kv.line;
    } else if (kv.key == "cluster") {
      p.presets = {b.string(kv)};
      preset_line = kv.line;
    } else if (kv.key == "name") {
      p.name = b.string(kv);
      custom_line = kv.line;
    } else if (kv.key == "nodes") {
      const long long v = b.integer(kv);
      if (v <= 0) fail(b.file(), kv.line, "'nodes' must be positive");
      p.nodes = static_cast<int>(v);
      custom_line = kv.line;
    } else if (kv.key == "cabinets") {
      p.cabinet_nodes = b.integers(kv);
      if (p.cabinet_nodes.empty())
        fail(b.file(), kv.line,
             "'cabinets' must not be empty (a cluster needs nodes)");
      for (const int n : p.cabinet_nodes)
        if (n <= 0)
          fail(b.file(), kv.line, "'cabinets' entries must be positive");
      custom_line = kv.line;
    } else if (kv.key == "gflops") {
      p.gflops = b.number(kv);
      if (p.gflops <= 0) fail(b.file(), kv.line, "'gflops' must be positive");
      custom_line = kv.line;
    } else if (kv.key == "latency-us") {
      p.latency_us = b.number(kv);
      if (p.latency_us < 0)
        fail(b.file(), kv.line, "'latency-us' must be >= 0");
      custom_line = kv.line;
    } else if (kv.key == "bandwidth-gbps") {
      p.bandwidth_gbps = b.number(kv);
      if (p.bandwidth_gbps <= 0)
        fail(b.file(), kv.line, "'bandwidth-gbps' must be positive");
      custom_line = kv.line;
    } else if (kv.key == "uplink-latency-us") {
      p.uplink_latency_us = b.number(kv);
      if (p.uplink_latency_us < 0)
        fail(b.file(), kv.line, "'uplink-latency-us' must be >= 0");
      custom_line = kv.line;
    } else if (kv.key == "uplink-bandwidth-gbps") {
      p.uplink_bandwidth_gbps = b.number(kv);
      if (p.uplink_bandwidth_gbps <= 0)
        fail(b.file(), kv.line, "'uplink-bandwidth-gbps' must be positive");
      custom_line = kv.line;
    } else b.unknown_key(s, kv);
  }
  if (preset_line && custom_line)
    fail(b.file(), std::max(preset_line, custom_line),
         "[platform] mixes named clusters with custom-cluster keys");
  if (!p.cabinet_nodes.empty() && p.nodes > 0)
    fail(b.file(), custom_line, "[platform] has both 'nodes' and 'cabinets'");
}

void bind_workload(const Binder& b, const Section& s, WorkloadSpec& w) {
  for (const KeyVal& kv : s.entries) {
    if (kv.key == "source") {
      const std::string v = b.string(kv);
      if (v == "corpus") w.source = WorkloadSpec::Source::Corpus;
      else if (v == "family") w.source = WorkloadSpec::Source::Family;
      else if (v == "generate") w.source = WorkloadSpec::Source::Generate;
      else if (v == "file") w.source = WorkloadSpec::Source::File;
      else
        fail(b.file(), kv.line,
             "unknown workload source '" + v +
                 "' (expected corpus, family, generate or file)");
    } else if (kv.key == "full") w.corpus.full = b.boolean(kv);
    else if (kv.key == "samples-random") {
      w.corpus.samples_random = static_cast<int>(b.integer(kv));
      if (w.corpus.samples_random < 0)
        fail(b.file(), kv.line, "'samples-random' must be >= 0");
    } else if (kv.key == "samples-kernel") {
      w.corpus.samples_kernel = static_cast<int>(b.integer(kv));
      if (w.corpus.samples_kernel < 0)
        fail(b.file(), kv.line, "'samples-kernel' must be >= 0");
    } else if (kv.key == "seed") {
      const long long v = b.integer(kv);
      if (v < 0) fail(b.file(), kv.line, "'seed' must be >= 0");
      w.corpus.seed = static_cast<std::uint64_t>(v);
    } else if (kv.key == "family") w.family = b.string(kv);
    else if (kv.key == "cap-per-family") {
      w.cap_per_family = static_cast<int>(b.integer(kv));
      if (w.cap_per_family < 0)
        fail(b.file(), kv.line, "'cap-per-family' must be >= 0");
    } else if (kv.key == "generator") w.generator = b.string(kv);
    else if (kv.key == "count") {
      w.count = static_cast<int>(b.integer(kv));
      if (w.count < 1) fail(b.file(), kv.line, "'count' must be >= 1");
    } else if (kv.key == "fft-k") {
      w.fft_k = static_cast<int>(b.integer(kv));
      // The FFT kernel generator requires a power of two (found by
      // fuzzing: the old [1, 16] range let k=3 through to a raw
      // requirement failure deep in daggen).
      if (w.fft_k < 2 || w.fft_k > 16 || (w.fft_k & (w.fft_k - 1)) != 0)
        fail(b.file(), kv.line,
             "'fft-k' must be a power of two in [2, 16]");
    } else if (kv.key == "tasks") {
      w.dag.num_tasks = static_cast<int>(b.integer(kv));
      if (w.dag.num_tasks < 1 || w.dag.num_tasks > 1000000)
        fail(b.file(), kv.line, "'tasks' must be in [1, 1000000]");
    } else if (kv.key == "width") {
      w.dag.width = b.number(kv);
      if (!(w.dag.width > 0) || w.dag.width > 1)
        fail(b.file(), kv.line, "'width' must be in (0, 1]");
    } else if (kv.key == "density") {
      w.dag.density = b.number(kv);
      if (!(w.dag.density > 0) || w.dag.density > 1)
        fail(b.file(), kv.line, "'density' must be in (0, 1]");
    } else if (kv.key == "regularity") {
      w.dag.regularity = b.number(kv);
      if (!(w.dag.regularity > 0) || w.dag.regularity > 1)
        fail(b.file(), kv.line, "'regularity' must be in (0, 1]");
    } else if (kv.key == "jump") {
      w.dag.jump = static_cast<int>(b.integer(kv));
      if (w.dag.jump < 1) fail(b.file(), kv.line, "'jump' must be >= 1");
    } else if (kv.key == "generate-seed") {
      const long long v = b.integer(kv);
      if (v < 0) fail(b.file(), kv.line, "'generate-seed' must be >= 0");
      w.generate_seed = static_cast<std::uint64_t>(v);
    } else if (kv.key == "path") w.path = b.string(kv);
    else b.unknown_key(s, kv);
  }
}

void bind_algorithms(const Binder& b, const Section& s, AlgorithmsSpec& a) {
  for (const KeyVal& kv : s.entries) {
    if (kv.key == "preset") {
      const std::string v = b.string(kv);
      if (v != "naive" && v != "tuned")
        fail(b.file(), kv.line,
             "unknown algorithms preset '" + v + "' (expected naive or tuned)");
      a.preset = v;
    } else b.unknown_key(s, kv);
  }
}

void bind_algorithm(const Binder& b, const Section& s, AlgorithmsSpec& a) {
  AlgoSpec algo;
  bool have_kind = false;
  for (const KeyVal& kv : s.entries) {
    if (kv.key == "name") algo.name = b.string(kv);
    else if (kv.key == "kind") {
      algo.options.kind =
          scheduler_kind_from(b.file(), kv.line, b.string(kv));
      have_kind = true;
    } else if (kv.key == "mindelta") algo.options.rats.mindelta = b.number(kv);
    else if (kv.key == "maxdelta") algo.options.rats.maxdelta = b.number(kv);
    else if (kv.key == "minrho") algo.options.rats.minrho = b.number(kv);
    else if (kv.key == "packing") algo.options.rats.packing = b.boolean(kv);
    else if (kv.key == "secondary-sort")
      algo.options.secondary_sort = b.boolean(kv);
    else b.unknown_key(s, kv);
  }
  if (!have_kind)
    fail(b.file(), s.line, "[algorithm] section is missing 'kind'");
  if (algo.name.empty()) algo.name = scheduler_kind_name(algo.options.kind);
  a.preset.clear();
  a.algos.push_back(std::move(algo));
}

void bind_sweep(const Binder& b, const Section& s, SweepSpec& sw) {
  // An explicitly written empty grid ([]) is always a mistake: the axis
  // would silently vanish from the sweep cross product (or leave fig4/
  // fig5 on their paper grids), which is indistinguishable from a typo.
  const auto grid = [&](const KeyVal& kv) {
    auto values = b.numbers(kv);
    if (values.empty())
      fail(b.file(), kv.line,
           "'" + kv.key + "' grid must not be empty (omit the key to use "
           "the default grid)");
    return values;
  };
  for (const KeyVal& kv : s.entries) {
    if (kv.key == "mindelta") sw.mindeltas = grid(kv);
    else if (kv.key == "maxdelta") sw.maxdeltas = grid(kv);
    else if (kv.key == "minrho") sw.minrhos = grid(kv);
    else if (kv.key == "packing") {
      sw.packings = b.booleans(kv);
      if (sw.packings.empty())
        fail(b.file(), kv.line,
             "'packing' grid must not be empty (omit the key to use the "
             "default grid)");
    } else if (kv.key == "event-factor") {
      sw.event_factors = grid(kv);
      for (const double f : sw.event_factors)
        if (!(f > 0) || !std::isfinite(f))
          fail(b.file(), kv.line,
               "'event-factor' values must be finite and positive");
    } else if (kv.key == "event-at") {
      sw.event_ats = grid(kv);
      for (const double t : sw.event_ats)
        if (!(t >= 0) || !std::isfinite(t))
          fail(b.file(), kv.line,
               "'event-at' values must be finite and >= 0");
    } else if (kv.key == "base") {
      const std::string v = b.string(kv);
      if (v != "delta" && v != "time-cost")
        fail(b.file(), kv.line,
             "unknown sweep base '" + v + "' (expected delta or time-cost)");
      sw.base = v;
    } else b.unknown_key(s, kv);
  }
}

void bind_output(const Binder& b, const Section& s, OutputSpec& o) {
  for (const KeyVal& kv : s.entries) {
    if (kv.key == "csv") o.csv = b.boolean(kv);
    else if (kv.key == "gantt") o.gantt = b.boolean(kv);
    else if (kv.key == "report-csv") {
      o.report_csv = b.string(kv);
      o.report_csv_line = kv.line;
    } else if (kv.key == "report-json") {
      o.report_json = b.string(kv);
      o.report_json_line = kv.line;
    } else if (kv.key == "trace") {
      o.trace = b.string(kv);
      o.trace_line = kv.line;
    } else if (kv.key == "trace-gzip") {
      o.trace_gzip = b.boolean(kv);
    } else b.unknown_key(s, kv);
  }
}

void bind_events(const Binder& b, const Section& s, EventsSpec& ev) {
  for (const KeyVal& kv : s.entries) {
    if (kv.key == "on-fail") {
      const std::string v = b.string(kv);
      if (v == "reschedule") ev.timeline.on_fail = FailPolicy::Reschedule;
      else if (v == "hold") ev.timeline.on_fail = FailPolicy::Hold;
      else
        fail(b.file(), kv.line,
             "unknown on-fail policy '" + v +
                 "' (expected reschedule or hold)");
    } else b.unknown_key(s, kv);
  }
}

/// One parsed [event] section before node-set expansion.  `nodes` and
/// cabinet node groups are parse-time sugar: they expand into one
/// PlatformEvent per selected node (in selector order), so downstream —
/// the timeline, the simulator, canonical emission — only ever sees
/// per-node events and parse→emit stays byte-stable by construction.
struct ProtoEvent {
  PlatformEvent event;
  std::vector<int> nodes;  ///< nodes = [...] selector (empty: not given)
  /// True when `cabinet` selects the cabinet's *nodes* (node-event
  /// kinds) rather than its uplink pair (link-capacity).
  bool cabinet_group = false;
  int line = 0;  ///< section line, for expansion-time diagnostics
};

void bind_event(const Binder& b, const Section& s,
                std::vector<ProtoEvent>& protos) {
  ProtoEvent pe;
  pe.line = s.line;
  PlatformEvent& e = pe.event;
  bool have_kind = false, have_at = false, have_factor = false;
  int kind_line = s.line;
  for (const KeyVal& kv : s.entries) {
    if (kv.key == "at") {
      e.at = b.number(kv);
      have_at = true;
      if (!(e.at >= 0) || !std::isfinite(e.at))
        fail(b.file(), kv.line, "'at' must be finite and >= 0");
    } else if (kv.key == "kind") {
      const std::string v = b.string(kv);
      bool ok = false;
      e.kind = platform_event_kind_from(v, ok);
      if (!ok)
        fail(b.file(), kv.line,
             "unknown event kind '" + v +
                 "' (expected link-capacity, node-slowdown, node-fail or "
                 "node-restart)");
      have_kind = true;
      kind_line = kv.line;
    } else if (kv.key == "node") {
      e.node = static_cast<NodeId>(b.integer(kv));
      if (e.node < 0) fail(b.file(), kv.line, "'node' must be >= 0");
    } else if (kv.key == "nodes") {
      pe.nodes = b.integers(kv);
      if (pe.nodes.empty())
        fail(b.file(), kv.line, "'nodes' must not be empty");
      for (const int n : pe.nodes)
        if (n < 0) fail(b.file(), kv.line, "'nodes' entries must be >= 0");
    } else if (kv.key == "cabinet") {
      e.cabinet = static_cast<int>(b.integer(kv));
      if (e.cabinet < 0) fail(b.file(), kv.line, "'cabinet' must be >= 0");
    } else if (kv.key == "factor") {
      e.factor = b.number(kv);
      have_factor = true;
      if (!(e.factor > 0) || !std::isfinite(e.factor))
        fail(b.file(), kv.line, "'factor' must be finite and positive");
    } else b.unknown_key(s, kv);
  }
  if (!have_kind) fail(b.file(), s.line, "[event] section is missing 'kind'");
  if (!have_at) fail(b.file(), s.line, "[event] section is missing 'at'");
  const int selectors =
      (e.node >= 0 ? 1 : 0) + (!pe.nodes.empty() ? 1 : 0) +
      (e.cabinet >= 0 ? 1 : 0);
  const std::string what = std::string(to_string(e.kind)) + " event";
  if (selectors != 1)
    fail(b.file(), kind_line,
         what + " needs exactly one of 'node', 'nodes' or 'cabinet'");
  switch (e.kind) {
    case PlatformEventKind::LinkCapacity:
      // `cabinet` here keeps its link meaning: the cabinet's uplink
      // pair.  `nodes` expands to per-node NIC-pair events.
      if (!have_factor)
        fail(b.file(), kind_line, what + " is missing 'factor'");
      break;
    case PlatformEventKind::NodeSlowdown:
      if (!have_factor)
        fail(b.file(), kind_line, what + " is missing 'factor'");
      pe.cabinet_group = e.cabinet >= 0;
      break;
    case PlatformEventKind::NodeFail:
    case PlatformEventKind::NodeRestart:
      if (have_factor)
        fail(b.file(), kind_line, what + " does not take 'factor'");
      pe.cabinet_group = e.cabinet >= 0;
      break;
  }
  protos.push_back(std::move(pe));
}

/// Expands the node-set sugar of every [event] into per-node events, in
/// spec order (so same-instant batches apply exactly as written).
/// Cabinet node groups need the concrete cluster, which is why this
/// runs after all sections are bound.
void expand_events(const std::string& filename,
                   const std::vector<ProtoEvent>& protos, ScenarioSpec& spec) {
  std::vector<Cluster> clusters;
  bool resolved = false;
  auto& out = spec.events.timeline.events;
  for (const ProtoEvent& pe : protos) {
    if (!pe.nodes.empty()) {
      for (const int n : pe.nodes) {
        PlatformEvent e = pe.event;
        e.node = static_cast<NodeId>(n);
        out.push_back(e);
      }
      continue;
    }
    if (pe.cabinet_group) {
      if (!resolved) {
        try {
          clusters = spec.platform.resolve();
        } catch (const Error& err) {
          fail(filename, pe.line,
               std::string("cannot expand 'cabinet' into nodes: ") +
                   err.what());
        }
        resolved = true;
      }
      if (clusters.size() != 1)
        fail(filename, pe.line,
             "'cabinet' node groups need a single-cluster [platform]");
      const Cluster& cluster = clusters.front();
      const std::string what = std::string(to_string(pe.event.kind)) + " event";
      if (!cluster.hierarchical_topology())
        fail(filename, pe.line,
             what + " names cabinet " + std::to_string(pe.event.cabinet) +
                 " but cluster '" + cluster.name() + "' has a flat topology");
      if (pe.event.cabinet >= cluster.cabinets())
        fail(filename, pe.line,
             what + " names cabinet " + std::to_string(pe.event.cabinet) +
                 " but cluster '" + cluster.name() + "' has " +
                 std::to_string(cluster.cabinets()) + " cabinets");
      for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
        if (cluster.cabinet_of(n) != pe.event.cabinet) continue;
        PlatformEvent e = pe.event;
        e.cabinet = -1;
        e.node = n;
        out.push_back(e);
      }
      continue;
    }
    out.push_back(pe.event);
  }
}

}  // namespace

ScenarioSpec parse_scenario(std::istream& in, const std::string& filename) {
  obs::PhaseTimer span("parse");
  const Binder b(filename);
  const std::vector<Section> sections = parse_document(in, filename);
  ScenarioSpec spec;
  std::vector<ProtoEvent> protos;
  bool have_scenario = false, have_algorithms = false;
  int algorithms_line = 0, sweep_line = 0;
  // Non-repeatable sections seen so far (name -> first line).
  std::vector<std::pair<std::string, int>> seen;
  for (const Section& s : sections) {
    if (s.name != "algorithm" && s.name != "event") {
      for (const auto& [name, line] : seen)
        if (name == s.name)
          fail(filename, s.line,
               "duplicate section [" + s.name + "] (first on line " +
                   std::to_string(line) + ")");
      seen.emplace_back(s.name, s.line);
    }
    if (s.name == "scenario") {
      have_scenario = true;
      bind_scenario(b, s, spec);
    } else if (s.name == "platform") {
      bind_platform(b, s, spec.platform);
    } else if (s.name == "workload") {
      bind_workload(b, s, spec.workload);
    } else if (s.name == "algorithms") {
      have_algorithms = true;
      algorithms_line = s.line;
      bind_algorithms(b, s, spec.algorithms);
    } else if (s.name == "algorithm") {
      bind_algorithm(b, s, spec.algorithms);
    } else if (s.name == "sweep") {
      sweep_line = s.line;
      bind_sweep(b, s, spec.sweep);
    } else if (s.name == "events") {
      bind_events(b, s, spec.events);
    } else if (s.name == "event") {
      bind_event(b, s, protos);
    } else if (s.name == "output") {
      bind_output(b, s, spec.output);
    } else {
      fail(filename, s.line,
           "unknown section [" + s.name +
               "] (expected scenario, platform, workload, algorithms, "
               "algorithm, events, event, sweep or output)");
    }
  }
  expand_events(filename, protos, spec);
  if (have_algorithms && !spec.algorithms.algos.empty())
    fail(filename, algorithms_line,
         "[algorithms] preset conflicts with explicit [algorithm] sections");
  if (!have_scenario) fail(filename, 1, "missing [scenario] section");
  if (spec.kind.empty())
    fail(filename, 1, "[scenario] section is missing 'kind'");
  if (spec.kind == "sweep") {
    // The generic sweep kind crosses the [sweep] grids over the base
    // algorithm; an all-empty section has nothing to sweep.
    if (sweep_line == 0)
      fail(filename, 1,
           "kind \"sweep\" needs a [sweep] section with at least one "
           "parameter grid");
    if (spec.sweep.empty())
      fail(filename, sweep_line,
           "[sweep] must give at least one non-empty grid (mindelta, "
           "maxdelta, minrho, packing, event-factor or event-at) for kind "
           "\"sweep\"");
  }
  if (spec.sweep.sweeps_events() && spec.events.empty())
    fail(filename, sweep_line != 0 ? sweep_line : 1,
         "[sweep] has an event axis but the scenario has no [event] "
         "sections to sweep");
  if (spec.name.empty()) spec.name = spec.kind;
  spec.origin = filename;
  return spec;
}

ScenarioSpec parse_scenario_string(const std::string& text,
                                   const std::string& filename) {
  std::istringstream in(text);
  return parse_scenario(in, filename);
}

ScenarioSpec load_scenario(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw Error(path + ": cannot open scenario file (no such file or "
                       "unreadable)");
  return parse_scenario(in, path);
}

// ---- canonical emission ------------------------------------------------

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') { out += "\\n"; continue; }
    if (c == '\t') { out += "\\t"; continue; }
    out += c;
  }
  out += '"';
  return out;
}

std::string num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) <= 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string num_list(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i)
    out += (i ? ", " : "") + num(values[i]);
  return out + "]";
}

}  // namespace

std::string emit_scenario(const ScenarioSpec& spec) {
  std::string out;
  // The name is quoted on its key line below; the comment line gets a
  // sanitized copy (a raw newline or '#'-significant char here would
  // break the emitted text's own parse).
  std::string comment_name = spec.name;
  for (char& c : comment_name)
    if (static_cast<unsigned char>(c) < 0x20) c = ' ';
  out += "# " + comment_name + " — RATS scenario (canonical form)\n";
  out += "[scenario]\n";
  out += "name = " + quote(spec.name) + "\n";
  out += "kind = " + quote(spec.kind) + "\n";
  // `threads` is an execution detail, not scenario semantics: it is
  // parsed (so files may pin it) but never emitted, keeping canonical
  // text — and hence trace headers — identical across worker counts.

  const PlatformSpec& p = spec.platform;
  out += "\n[platform]\n";
  if (!p.is_custom()) {
    if (p.presets.size() == 1) {
      out += "cluster = " + quote(p.presets.front()) + "\n";
    } else {
      out += "clusters = [";
      for (std::size_t i = 0; i < p.presets.size(); ++i)
        out += (i ? ", " : "") + quote(p.presets[i]);
      out += "]\n";
    }
  } else {
    out += "name = " + quote(p.name) + "\n";
    if (!p.cabinet_nodes.empty()) {
      out += "cabinets = [";
      for (std::size_t i = 0; i < p.cabinet_nodes.size(); ++i)
        out += (i ? ", " : "") + std::to_string(p.cabinet_nodes[i]);
      out += "]\n";
    } else {
      out += "nodes = " + std::to_string(p.nodes) + "\n";
    }
    out += "gflops = " + num(p.gflops) + "\n";
    out += "latency-us = " + num(p.latency_us) + "\n";
    out += "bandwidth-gbps = " + num(p.bandwidth_gbps) + "\n";
    if (!p.cabinet_nodes.empty()) {
      out += "uplink-latency-us = " + num(p.uplink_latency_us) + "\n";
      out += "uplink-bandwidth-gbps = " + num(p.uplink_bandwidth_gbps) + "\n";
    }
  }

  const WorkloadSpec& w = spec.workload;
  out += "\n[workload]\n";
  switch (w.source) {
    case WorkloadSpec::Source::Corpus:
    case WorkloadSpec::Source::Family:
      out += std::string("source = ") +
             (w.source == WorkloadSpec::Source::Corpus ? "\"corpus\""
                                                       : "\"family\"") +
             "\n";
      if (w.source == WorkloadSpec::Source::Family)
        out += "family = " + quote(w.family) + "\n";
      out += std::string("full = ") + (w.corpus.full ? "true" : "false") +
             "\n";
      out += "samples-random = " + std::to_string(w.corpus.samples_random) +
             "\n";
      out += "samples-kernel = " + std::to_string(w.corpus.samples_kernel) +
             "\n";
      out += "seed = " + std::to_string(w.corpus.seed) + "\n";
      if (w.cap_per_family > 0)
        out += "cap-per-family = " + std::to_string(w.cap_per_family) + "\n";
      break;
    case WorkloadSpec::Source::Generate:
      out += "source = \"generate\"\n";
      out += "generator = " + quote(w.generator) + "\n";
      out += "count = " + std::to_string(w.count) + "\n";
      if (w.generator == "fft") {
        out += "fft-k = " + std::to_string(w.fft_k) + "\n";
      } else if (w.generator != "strassen") {
        out += "tasks = " + std::to_string(w.dag.num_tasks) + "\n";
        out += "width = " + num(w.dag.width) + "\n";
        out += "density = " + num(w.dag.density) + "\n";
        out += "regularity = " + num(w.dag.regularity) + "\n";
        if (w.generator == "irregular")
          out += "jump = " + std::to_string(w.dag.jump) + "\n";
      }
      out += "generate-seed = " + std::to_string(w.generate_seed) + "\n";
      break;
    case WorkloadSpec::Source::File:
      out += "source = \"file\"\n";
      out += "path = " + quote(w.path) + "\n";
      break;
  }

  const AlgorithmsSpec& a = spec.algorithms;
  if (!a.preset.empty()) {
    out += "\n[algorithms]\n";
    out += "preset = " + quote(a.preset) + "\n";
  } else {
    for (const AlgoSpec& algo : a.algos) {
      out += "\n[algorithm]\n";
      out += "name = " + quote(algo.name) + "\n";
      out += "kind = " + quote(scheduler_kind_name(algo.options.kind)) + "\n";
      if (algo.options.kind == SchedulerKind::RatsDelta) {
        out += "mindelta = " + num(algo.options.rats.mindelta) + "\n";
        out += "maxdelta = " + num(algo.options.rats.maxdelta) + "\n";
      }
      if (algo.options.kind == SchedulerKind::RatsTimeCost) {
        out += "minrho = " + num(algo.options.rats.minrho) + "\n";
        out += std::string("packing = ") +
               (algo.options.rats.packing ? "true" : "false") + "\n";
      }
      if (!algo.options.secondary_sort) out += "secondary-sort = false\n";
    }
  }

  // An empty timeline emits nothing: a spec with a bare [events]
  // section stays byte-identical to one without it, so healthy specs
  // (and the trace headers derived from them) never change.
  const EventsSpec& ev = spec.events;
  if (!ev.empty()) {
    out += "\n[events]\n";
    out += "on-fail = " + quote(to_string(ev.timeline.on_fail)) + "\n";
    for (const PlatformEvent& e : ev.timeline.events) {
      out += "\n[event]\n";
      out += "at = " + num(e.at) + "\n";
      out += "kind = " + quote(to_string(e.kind)) + "\n";
      if (e.node >= 0) out += "node = " + std::to_string(e.node) + "\n";
      if (e.cabinet >= 0)
        out += "cabinet = " + std::to_string(e.cabinet) + "\n";
      if (e.kind == PlatformEventKind::LinkCapacity ||
          e.kind == PlatformEventKind::NodeSlowdown)
        out += "factor = " + num(e.factor) + "\n";
    }
  }

  const SweepSpec& sw = spec.sweep;
  if (!sw.empty()) {
    out += "\n[sweep]\n";
    if (spec.kind == "sweep") out += "base = " + quote(sw.base) + "\n";
    if (!sw.mindeltas.empty())
      out += "mindelta = " + num_list(sw.mindeltas) + "\n";
    if (!sw.maxdeltas.empty())
      out += "maxdelta = " + num_list(sw.maxdeltas) + "\n";
    if (!sw.minrhos.empty()) out += "minrho = " + num_list(sw.minrhos) + "\n";
    if (!sw.packings.empty()) {
      out += "packing = [";
      for (std::size_t i = 0; i < sw.packings.size(); ++i)
        out += std::string(i ? ", " : "") + (sw.packings[i] ? "true" : "false");
      out += "]\n";
    }
    if (!sw.event_factors.empty())
      out += "event-factor = " + num_list(sw.event_factors) + "\n";
    if (!sw.event_ats.empty())
      out += "event-at = " + num_list(sw.event_ats) + "\n";
  }

  out += "\n[output]\n";
  out += std::string("csv = ") + (spec.output.csv ? "true" : "false") + "\n";
  if (spec.output.gantt) out += "gantt = true\n";
  if (!spec.output.report_csv.empty())
    out += "report-csv = " + quote(spec.output.report_csv) + "\n";
  if (!spec.output.report_json.empty())
    out += "report-json = " + quote(spec.output.report_json) + "\n";
  if (!spec.output.trace.empty())
    out += "trace = " + quote(spec.output.trace) + "\n";
  if (spec.output.trace_gzip) out += "trace-gzip = true\n";
  return out;
}

}  // namespace rats::scenario
