#include "scenario/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "dag/graph_algorithms.hpp"
#include "exp/tuning.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "redist/block_redistribution.hpp"
#include "report/render.hpp"
#include "scenario/parser.hpp"
#include "sim/simulator.hpp"
#include "trace/gzip.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace rats::scenario {

namespace {

using report::Cell;
using report::cell;
using report::Column;
using report::ColumnType;
using report::ReportModel;
using report::TableModel;

Column text_col(std::string name) {
  return Column{std::move(name), ColumnType::Text};
}
Column num_col(std::string name) {
  return Column{std::move(name), ColumnType::Number};
}

/// Captures the workload's announcement lines into the model.
std::vector<CorpusEntry> resolve_workload(const ScenarioSpec& spec,
                                          ReportModel& model) {
  std::string notes;
  auto corpus = spec.workload.resolve(&notes);
  if (!notes.empty()) model.text(std::move(notes));
  return corpus;
}

/// The spec's [events] timeline resolved against every cluster the
/// scenario touches, bound into the SimulatorOptions the run matrix is
/// seeded with.  `base_sim` stays nullptr for healthy scenarios, so
/// their runs take the exact code path they took before timelines
/// existed.  Owns the storage `base_sim` points into — keep it alive
/// for the duration of the matrix (not copyable for that reason).
struct TimelineBinding {
  PlatformTimeline timeline;
  SimulatorOptions sim;
  const SimulatorOptions* base_sim = nullptr;

  TimelineBinding(const ScenarioSpec& spec,
                  const std::vector<Cluster>& clusters) {
    if (spec.events.empty()) return;
    timeline = spec.events.resolve(clusters.front(), spec.origin);
    for (std::size_t c = 1; c < clusters.size(); ++c)
      timeline.validate(clusters[c], spec.origin);
    sim.timeline = &timeline;
    base_sim = &sim;
  }
  TimelineBinding(const TimelineBinding&) = delete;
  TimelineBinding& operator=(const TimelineBinding&) = delete;
};

/// Forwards run hooks to an inner session with a fixed run-index
/// offset, swallowing begin_matrix — used when one logical matrix is
/// executed as several batches (robustness halves, per-event-point
/// sweep grids); the caller sizes the matrix once up front.
class OffsetSession final : public RunSession {
 public:
  OffsetSession(RunSession* inner, std::size_t offset)
      : inner_(inner), offset_(offset) {}
  void begin_matrix(std::size_t) override {}
  bool inject(std::size_t run, const RunMeta& meta, RunOutcome& out) override {
    return inner_ && inner_->inject(run + offset_, meta, out);
  }
  TraceSink* begin_run(std::size_t run, const RunMeta& meta) override {
    return inner_ ? inner_->begin_run(run + offset_, meta) : nullptr;
  }
  void end_run(std::size_t run, const RunOutcome& outcome) override {
    if (inner_) inner_->end_run(run + offset_, outcome);
  }

 private:
  RunSession* inner_;
  std::size_t offset_;
};

// ---- shared report fragments (byte-compatible with the benches) --------

/// Figures 2 and 6: sorted curves followed by the relative-makespan
/// summary table.
void makespan_report(const ExperimentData& data, ReportModel& model) {
  std::vector<std::vector<Cell>> rows;
  for (std::size_t algo = 1; algo < data.algos(); ++algo) {
    auto series = relative_series(data, algo, 0, /*makespan=*/true);
    auto s = summarize_relative(series);
    rows.push_back({cell(data.algo_names[algo]),
                    cell(s.mean_ratio, fmt(s.mean_ratio, 3)),
                    cell(1.0 - s.mean_ratio, fmt_percent(1.0 - s.mean_ratio, 1)),
                    cell(s.fraction_better, fmt_percent(s.fraction_better, 1)),
                    cell(s.fraction_equal, fmt_percent(s.fraction_equal, 1))});
    model.series("relative-makespan/" + data.algo_names[algo],
                 data.algo_names[algo], std::move(series));
  }
  TableModel& table = model.table(
      "summary", {text_col("strategy"), num_col("avg relative makespan"),
                  num_col("avg improvement"), num_col("shorter in"),
                  num_col("equal in")});
  table.rows = std::move(rows);
}

/// Figures 3 and 7: sorted curves followed by the relative-work table.
void work_report(const ExperimentData& data, ReportModel& model) {
  std::vector<std::vector<Cell>> rows;
  for (std::size_t algo = 1; algo < data.algos(); ++algo) {
    auto series = relative_series(data, algo, 0, /*makespan=*/false);
    auto s = summarize_relative(series);
    rows.push_back({cell(data.algo_names[algo]),
                    cell(s.mean_ratio, fmt(s.mean_ratio, 3)),
                    cell(s.fraction_better, fmt_percent(s.fraction_better, 1)),
                    cell(s.fraction_equal, fmt_percent(s.fraction_equal, 1))});
    model.series("relative-work/" + data.algo_names[algo],
                 data.algo_names[algo], std::move(series));
  }
  TableModel& table = model.table(
      "summary", {text_col("strategy"), num_col("avg relative work"),
                  num_col("less work in"), num_col("equal in")});
  table.rows = std::move(rows);
}

/// Corpus x algorithms on one cluster — the shared execution of the
/// fig2/fig3/fig6/fig7 and generic kinds.  Tuned presets group by
/// family (Table IV parameters), everything else runs one algo list.
/// `session` observes every run: this is the single simulation pass a
/// traced scenario shares between report and trace.
ExperimentData run_matrix_experiment(const ScenarioSpec& spec,
                                     const std::vector<CorpusEntry>& entries,
                                     const Cluster& cluster,
                                     RunSession* session) {
  const TimelineBinding events(spec, {cluster});
  if (spec.algorithms.tuned())
    return presets::run_tuned_experiment(entries, cluster, spec.threads,
                                         session, events.base_sim);
  return run_experiment(entries, cluster,
                        spec.algorithms.resolve(DagFamily::Irregular,
                                                cluster.name()),
                        spec.threads, session, events.base_sim);
}

void run_fig2(const ScenarioSpec& spec, ReportModel& model,
              RunSession* session) {
  auto corpus = resolve_workload(spec, model);
  Cluster cluster = spec.platform.resolve_one();
  auto data = run_matrix_experiment(spec, corpus, cluster, session);
  model.heading("Figure 2: relative makespan vs HCPA, naive parameters, " +
                cluster.name());
  makespan_report(data, model);
  model.text(
      "\n  paper: delta ~9% shorter on average, better in 72% of "
      "scenarios;\n         time-cost ~16% shorter, better in 80%.\n");
}

void run_fig3(const ScenarioSpec& spec, ReportModel& model,
              RunSession* session) {
  auto corpus = resolve_workload(spec, model);
  Cluster cluster = spec.platform.resolve_one();
  auto data = run_matrix_experiment(spec, corpus, cluster, session);
  model.heading("Figure 3: relative work vs HCPA, naive parameters, " +
                cluster.name());
  work_report(data, model);
  model.text(
      "\n  paper: both strategies stay close to HCPA's resource usage;\n"
      "         delta consumes less than time-cost.\n");
}

void run_fig4(const ScenarioSpec& spec, ReportModel& model,
              RunSession* session) {
  auto corpus = resolve_workload(spec, model);
  Cluster cluster = spec.platform.resolve_one();
  const TimelineBinding events(spec, {cluster});
  // Empty [sweep] lists fall back to the paper grids inside sweep_delta.
  auto sweep = sweep_delta(corpus, cluster, spec.sweep.mindeltas,
                           spec.sweep.maxdeltas, spec.threads, session,
                           events.base_sim);
  model.heading("Figure 4: avg makespan relative to HCPA, RATS-delta, FFT, " +
                cluster.name());
  std::vector<Column> columns{text_col("mindelta \\ maxdelta")};
  for (double mx : sweep.maxdeltas) columns.push_back(num_col(fmt(mx, 2)));
  TableModel& table = model.table("delta-sweep", std::move(columns));
  for (std::size_t i = 0; i < sweep.mindeltas.size(); ++i) {
    std::vector<Cell> row{cell(sweep.mindeltas[i], fmt(sweep.mindeltas[i], 2))};
    for (std::size_t j = 0; j < sweep.maxdeltas.size(); ++j)
      row.push_back(
          cell(sweep.avg_relative[i][j], fmt(sweep.avg_relative[i][j], 3)));
    table.rows.push_back(std::move(row));
  }
  model.scalar("best/mindelta", sweep.best_mindelta);
  model.scalar("best/maxdelta", sweep.best_maxdelta);
  model.scalar("best/avg-relative-makespan", sweep.best_value);
  model.textf("\n  best: mindelta=%s maxdelta=%s -> %s\n",
              fmt(sweep.best_mindelta, 2).c_str(),
              fmt(sweep.best_maxdelta, 2).c_str(),
              fmt(sweep.best_value, 3).c_str());
  model.text(
      "  paper: larger maxdelta improves the relative makespan; lowering\n"
      "  mindelta helps only to a certain extent (Table IV picks (-.5, 1)).\n");
}

void run_fig5(const ScenarioSpec& spec, ReportModel& model,
              RunSession* session) {
  auto corpus = resolve_workload(spec, model);
  Cluster cluster = spec.platform.resolve_one();
  const TimelineBinding events(spec, {cluster});
  auto sweep = sweep_rho(corpus, cluster, spec.sweep.minrhos, spec.threads,
                         session, events.base_sim);
  model.heading(
      "Figure 5: avg makespan relative to HCPA, RATS-time-cost, irregular, " +
      cluster.name());
  TableModel& table = model.table(
      "rho-sweep",
      {num_col("minrho"), num_col("packing allowed"), num_col("no packing")});
  for (std::size_t i = 0; i < sweep.minrhos.size(); ++i)
    table.rows.push_back(
        {cell(sweep.minrhos[i], fmt(sweep.minrhos[i], 2)),
         cell(sweep.with_packing[i], fmt(sweep.with_packing[i], 3)),
         cell(sweep.without_packing[i], fmt(sweep.without_packing[i], 3))});
  model.scalar("best/minrho", sweep.best_minrho);
  model.scalar("best/avg-relative-makespan", sweep.best_value);
  model.textf("\n  best (packing allowed): minrho=%s -> %s\n",
              fmt(sweep.best_minrho, 2).c_str(),
              fmt(sweep.best_value, 3).c_str());
  model.text(
      "  paper: packing gives better performance at every minrho; the\n"
      "  curve flattens beyond a threshold (0.5 on grillon).\n");
}

void run_fig6(const ScenarioSpec& spec, ReportModel& model,
              RunSession* session) {
  auto corpus = resolve_workload(spec, model);
  Cluster cluster = spec.platform.resolve_one();
  auto data = run_matrix_experiment(spec, corpus, cluster, session);
  model.heading("Figure 6: relative makespan vs HCPA, tuned parameters, " +
                cluster.name());
  makespan_report(data, model);
  model.text(
      "\n  paper: tuned delta ~13% shorter than HCPA on grillon (9% "
      "naive);\n         time-cost improves only slightly over naive.\n");
}

void run_fig7(const ScenarioSpec& spec, ReportModel& model,
              RunSession* session) {
  auto corpus = resolve_workload(spec, model);
  Cluster cluster = spec.platform.resolve_one();
  auto data = run_matrix_experiment(spec, corpus, cluster, session);
  model.heading("Figure 7: relative work vs HCPA, tuned parameters, " +
                cluster.name());
  work_report(data, model);
  model.text(
      "\n  paper: tuned RATS stays close to (mostly below) HCPA's resource "
      "usage.\n");
}

/// The generic sweep kind: a grid over any RatsParams fields, applied
/// to a base algorithm, scored against a fresh HCPA reference — fig4
/// and fig5 are fixed-shape presets of this.
void run_sweep(const ScenarioSpec& spec, ReportModel& model,
               RunSession* session) {
  struct Axis {
    const char* field;
    std::vector<double> values;
    bool is_flag;   ///< packing: render true/false instead of numbers
    bool is_event;  ///< rewrites the [events] timeline, not RatsParams
  };
  // Event axes first: they vary slowest in the mixed-radix decode, so
  // each event point runs the whole scheduler grid as one batch.
  std::vector<Axis> axes;
  if (!spec.sweep.event_factors.empty())
    axes.push_back({"event-factor", spec.sweep.event_factors, false, true});
  if (!spec.sweep.event_ats.empty())
    axes.push_back({"event-at", spec.sweep.event_ats, false, true});
  RATS_REQUIRE(!spec.sweep.sweeps_events() || !spec.events.empty(),
               "[sweep] event axes need a non-empty [events] timeline");
  if (!spec.sweep.mindeltas.empty())
    axes.push_back({"mindelta", spec.sweep.mindeltas, false, false});
  if (!spec.sweep.maxdeltas.empty())
    axes.push_back({"maxdelta", spec.sweep.maxdeltas, false, false});
  if (!spec.sweep.minrhos.empty())
    axes.push_back({"minrho", spec.sweep.minrhos, false, false});
  if (!spec.sweep.packings.empty()) {
    Axis packing{"packing", {}, true, false};
    for (const bool p : spec.sweep.packings)
      packing.values.push_back(p ? 1.0 : 0.0);
    axes.push_back(std::move(packing));
  }
  RATS_REQUIRE(!axes.empty(),
               "kind \"sweep\" needs at least one non-empty [sweep] grid");

  auto corpus = resolve_workload(spec, model);
  Cluster cluster = spec.platform.resolve_one();

  // The base algorithm is the paper's naive preset of that strategy;
  // each grid point overrides exactly the swept fields.
  const auto naive = presets::naive_algos();
  const SchedulerOptions& base =
      spec.sweep.base == "time-cost" ? naive[2].options : naive[1].options;

  std::size_t total = 1;
  for (const Axis& axis : axes) total *= axis.values.size();
  std::size_t event_total = 1;
  for (const Axis& axis : axes)
    if (axis.is_event) event_total *= axis.values.size();
  const std::size_t sched_total = total / event_total;

  // Mixed-radix decode of point index -> per-axis value (last axis
  // fastest); the single decoder keeps the simulated options, the
  // table rows and the best-point report in lockstep.
  std::vector<std::size_t> pick(axes.size(), 0);
  const auto decode = [&](std::size_t p) {
    std::size_t rest = p;
    for (std::size_t k = axes.size(); k-- > 0;) {
      pick[k] = rest % axes[k].values.size();
      rest /= axes[k].values.size();
    }
  };
  // Scheduler points only: decoding p < sched_total keeps every event
  // axis at index 0 while walking the scheduler axes in full-grid
  // order, so one point list serves every event point.
  std::vector<SchedulerOptions> points;
  points.reserve(sched_total);
  for (std::size_t p = 0; p < sched_total; ++p) {
    decode(p);
    SchedulerOptions options = base;
    for (std::size_t k = 0; k < axes.size(); ++k) {
      if (axes[k].is_event) continue;
      const double v = axes[k].values[pick[k]];
      const std::string field = axes[k].field;
      if (field == "mindelta") options.rats.mindelta = v;
      else if (field == "maxdelta") options.rats.maxdelta = v;
      else if (field == "minrho") options.rats.minrho = v;
      else options.rats.packing = v != 0.0;
    }
    points.push_back(options);
  }

  std::vector<double> avg;
  avg.reserve(total);
  if (event_total == 1) {
    // No event axes: a fixed timeline (when [events] is present) seeds
    // every run; healthy sweeps take the pre-timeline path verbatim.
    const TimelineBinding events(spec, {cluster});
    avg = sweep_grid(corpus, cluster, points, spec.threads, session,
                     events.base_sim);
  } else {
    // One grid batch per event point under one outer matrix.  Each
    // event-axis value rewrites the whole timeline — event-factor the
    // factor of every capacity/slowdown event, event-at the time of
    // every event — then the rewritten timeline degrades sweep point
    // and HCPA reference alike.
    if (session)
      session->begin_matrix(event_total * corpus.size() * (sched_total + 1));
    for (std::size_t ev = 0; ev < event_total; ++ev) {
      decode(ev * sched_total);
      PlatformTimeline tl = spec.events.resolve(cluster, spec.origin);
      for (std::size_t k = 0; k < axes.size(); ++k) {
        if (!axes[k].is_event) continue;
        const double v = axes[k].values[pick[k]];
        if (std::string(axes[k].field) == "event-factor") {
          for (PlatformEvent& e : tl.events)
            if (e.kind == PlatformEventKind::LinkCapacity ||
                e.kind == PlatformEventKind::NodeSlowdown)
              e.factor = v;
        } else {
          for (PlatformEvent& e : tl.events) e.at = v;
        }
      }
      tl.sort();
      tl.validate(cluster, spec.origin);
      SimulatorOptions sim;
      sim.timeline = &tl;
      OffsetSession offset(session, ev * corpus.size() * (sched_total + 1));
      const auto part = sweep_grid(corpus, cluster, points, spec.threads,
                                   session ? &offset : nullptr, &sim);
      avg.insert(avg.end(), part.begin(), part.end());
    }
  }

  std::string fields;
  for (std::size_t k = 0; k < axes.size(); ++k)
    fields += std::string(k ? " x " : "") + axes[k].field;
  model.heading(strf("Sweep '%s': %zu points over %s, RATS-%s, %s",
                     spec.name.c_str(), total, fields.c_str(),
                     spec.sweep.base.c_str(), cluster.name().c_str()));

  std::vector<Column> columns;
  for (const Axis& axis : axes)
    columns.push_back(axis.is_flag ? text_col(axis.field)
                                   : num_col(axis.field));
  columns.push_back(num_col("avg relative makespan"));
  TableModel& table = model.table("sweep", std::move(columns));
  std::size_t best = 0;
  for (std::size_t p = 0; p < total; ++p) {
    decode(p);
    std::vector<Cell> row;
    for (std::size_t k = 0; k < axes.size(); ++k) {
      const double v = axes[k].values[pick[k]];
      row.push_back(axes[k].is_flag ? cell(v != 0.0 ? "true" : "false")
                                    : cell(v, fmt(v, 2)));
    }
    row.push_back(cell(avg[p], fmt(avg[p], 3)));
    table.rows.push_back(std::move(row));
    if (avg[p] < avg[best]) best = p;
  }

  decode(best);
  std::string best_text = "\n  best:";
  for (std::size_t k = 0; k < axes.size(); ++k) {
    const double v = axes[k].values[pick[k]];
    model.scalar(std::string("best/") + axes[k].field, v);
    best_text += std::string(" ") + axes[k].field + "=" +
                 (axes[k].is_flag ? (v != 0.0 ? "true" : "false") : fmt(v, 2));
  }
  model.scalar("best/avg-relative-makespan", avg[best]);
  best_text += " -> " + fmt(avg[best], 3) + "\n";
  model.text(std::move(best_text));
}

void redist_matrix_table(const Redistribution& r, Bytes unit,
                         const std::string& id, ReportModel& model) {
  auto m = r.matrix();
  std::vector<Column> columns{text_col("")};
  for (int q = 0; q < r.receivers(); ++q)
    columns.push_back(num_col("q" + std::to_string(q + 1)));
  TableModel& table = model.table(id, std::move(columns));
  table.csv_echo = false;  // the legacy binaries never echoed these
  for (int p = 0; p < r.senders(); ++p) {
    std::vector<Cell> row{cell("p" + std::to_string(p + 1))};
    for (int q = 0; q < r.receivers(); ++q) {
      double units =
          m[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)] / unit;
      row.push_back(units == 0 ? cell("") : cell(units, fmt(units, 2)));
    }
    table.rows.push_back(std::move(row));
  }
}

void run_table1(const ScenarioSpec&, ReportModel& model, RunSession*) {
  model.heading(
      "Table I: communication matrix, 10 units, p=4 senders, q=5 receivers");
  const Bytes unit = 1024;  // any unit; the matrix scales linearly
  std::vector<NodeId> senders{0, 1, 2, 3};
  std::vector<NodeId> receivers{4, 5, 6, 7, 8};
  auto r = Redistribution::plan(10 * unit, senders, receivers);
  redist_matrix_table(r, unit, "matrix-disjoint", model);
  model.textf("  non-empty entries: %zu (expected p+q-1 = 8)\n",
              r.transfers().size());
  model.textf("  self bytes: %s units, remote: %s units\n",
              fmt(r.self_bytes() / unit, 2).c_str(),
              fmt(r.remote_bytes() / unit, 2).c_str());

  model.heading(
      "Overlapping sets: receiver order permuted to maximize self "
      "communication");
  std::vector<NodeId> overlap_recv{2, 3, 4, 5, 6};
  auto r2 = Redistribution::plan(10 * unit, senders, overlap_recv);
  redist_matrix_table(r2, unit, "matrix-overlap", model);
  model.textf("  self bytes: %s units (stay on node), remote: %s units\n",
              fmt(r2.self_bytes() / unit, 2).c_str(),
              fmt(r2.remote_bytes() / unit, 2).c_str());

  model.heading("Identical sets: redistribution cost is zero");
  auto r3 = Redistribution::plan(10 * unit, senders, senders);
  model.textf("  remote bytes: %s (paper: zero when tasks share the same "
              "processor set)\n",
              fmt(r3.remote_bytes(), 0).c_str());
}

void run_table2(const ScenarioSpec& spec, ReportModel& model, RunSession*) {
  const auto clusters = spec.platform.resolve();
  model.heading("Table II: cluster characteristics");
  TableModel& table = model.table(
      "clusters", {text_col("Cluster"), num_col("#proc."),
                   num_col("GFlop/sec"), text_col("topology"),
                   num_col("#links")});
  for (const Cluster& c : clusters) {
    table.rows.push_back(
        {cell(c.name()), cell(c.num_nodes(), std::to_string(c.num_nodes())),
         cell(c.node_speed() / 1e9, fmt(c.node_speed() / 1e9, 3)),
         cell(c.hierarchical_topology()
                  ? std::to_string(c.cabinets()) + " cabinets"
                  : "flat switch"),
         cell(c.num_links(), std::to_string(c.num_links()))});
  }

  model.heading("Derived network model (Section IV-A)");
  for (const Cluster& c : clusters) {
    NodeId far = static_cast<NodeId>(c.num_nodes() - 1);
    auto route = c.route(0, far);
    Seconds lat = c.route_latency(0, far);
    Seconds rtt = 2 * lat;
    Rate beta = c.link(c.nic_up(0)).bandwidth;
    Rate beta_prime = std::min(beta, c.tcp_window() / rtt);
    model.textf(
        "  %-8s route node0->node%-3d: %zu links, one-way latency %s us, "
        "beta' = min(beta, Wmax/RTT) = %s MB/s (beta = %s MB/s)\n",
        c.name().c_str(), far, route.size(), fmt(lat * 1e6, 1).c_str(),
        fmt(beta_prime / 1e6, 1).c_str(), fmt(beta / 1e6, 1).c_str());
  }
}

void run_table3(const ScenarioSpec& spec, ReportModel& model, RunSession*) {
  auto corpus = resolve_workload(spec, model);
  model.heading("Table III: corpus composition");
  TableModel& params = model.table(
      "composition",
      {text_col("family"), num_col("#configs"), text_col("tasks"),
       text_col("edges(min-max)"), num_col("avg levels"),
       num_col("avg width")});
  for (DagFamily family : {DagFamily::Layered, DagFamily::Irregular,
                           DagFamily::FFT, DagFamily::Strassen}) {
    int count = 0;
    std::int32_t min_edges = INT32_MAX, max_edges = 0;
    std::int32_t min_tasks = INT32_MAX, max_tasks = 0;
    double sum_levels = 0, sum_width = 0;
    for (const auto& e : corpus) {
      if (e.family != family) continue;
      ++count;
      min_edges = std::min(min_edges, e.graph.num_edges());
      max_edges = std::max(max_edges, e.graph.num_edges());
      min_tasks = std::min(min_tasks, e.graph.num_tasks());
      max_tasks = std::max(max_tasks, e.graph.num_tasks());
      auto levels = task_levels(e.graph);
      int num_levels = 1 + *std::max_element(levels.begin(), levels.end());
      std::vector<int> per_level(static_cast<std::size_t>(num_levels), 0);
      for (int l : levels) ++per_level[static_cast<std::size_t>(l)];
      sum_levels += num_levels;
      sum_width += *std::max_element(per_level.begin(), per_level.end());
    }
    if (count == 0) continue;
    params.rows.push_back(
        {cell(to_string(family)), cell(count, std::to_string(count)),
         cell(std::to_string(min_tasks) + "-" + std::to_string(max_tasks)),
         cell(std::to_string(min_edges) + "-" + std::to_string(max_edges)),
         cell(sum_levels / count, fmt(sum_levels / count, 1)),
         cell(sum_width / count, fmt(sum_width / count, 1))});
  }
  model.textf(
      "\n  paper scale: 108 layered + 324 irregular + 100 FFT + 25 Strassen "
      "= 557\n  (this run: %zu; --full regenerates the paper corpus)\n",
      corpus.size());
}

void run_table4(const ScenarioSpec& spec, ReportModel& model, RunSession*) {
  model.heading("Table IV: tuned (mindelta, maxdelta, minrho)");
  std::vector<std::vector<Cell>> rows;
  const int cap = spec.workload.cap_per_family > 0
                      ? spec.workload.cap_per_family
                      : 6;
  for (DagFamily family : {DagFamily::FFT, DagFamily::Strassen,
                           DagFamily::Layered, DagFamily::Irregular}) {
    std::string notes;
    auto corpus = presets::cap_per_family(
        presets::make_family(family, spec.workload.corpus, &notes),
        spec.workload.corpus, cap, &notes);
    if (!notes.empty()) model.text(std::move(notes));
    std::vector<Cell> row{cell(to_string(family))};
    for (const Cluster& cluster : spec.platform.resolve()) {
      TunedParams t = tune(corpus, cluster, spec.threads);
      row.push_back(cell("(" + fmt(t.mindelta, 2) + ", " + fmt(t.maxdelta, 2) +
                         ", " + fmt(t.minrho, 2) + ")"));
      model.textf("  tuned %-9s on %-8s: mindelta=%s maxdelta=%s minrho=%s\n",
                  to_string(family).c_str(), cluster.name().c_str(),
                  fmt(t.mindelta, 2).c_str(), fmt(t.maxdelta, 2).c_str(),
                  fmt(t.minrho, 2).c_str());
    }
    rows.push_back(std::move(row));
  }
  TableModel& table = model.table(
      "tuned-parameters", {text_col("family \\ cluster"), text_col("chti"),
                           text_col("grillon"), text_col("grelon")});
  table.rows = std::move(rows);
  model.text(
      "\n  paper Table IV (chti/grillon/grelon):\n"
      "    FFT      (-.5,1,.2)   (-.5,1,.2)   (-.25,.75,.4)\n"
      "    Strassen (-.25,.5,.5) (0,1,.4)     (-.25,1,.5)\n"
      "    Layered  (-.5,1,.2)   (-.25,1,.2)  (-.5,1,.2)\n"
      "    Random   (-.75,1,.5)  (-.75,1,.5)  (-.75,1,.4)\n"
      "  exact cell values depend on the generated corpus; the shape to\n"
      "  check is maxdelta ~ 1, negative mindelta, small-to-mid minrho.\n");
}

void run_table5(const ScenarioSpec& spec, ReportModel& model,
                RunSession* session) {
  auto corpus = resolve_workload(spec, model);
  const auto clusters = spec.platform.resolve();
  const TimelineBinding events(spec, clusters);
  model.textf("  running corpus on %zu clusters...\n", clusters.size());
  const std::vector<ExperimentData> per_cluster =
      presets::run_tuned_experiments(corpus, clusters, spec.threads, session,
                                     events.base_sim);
  const auto& names = per_cluster.front().algo_names;

  model.heading("Table V: pairwise comparison (chti / grillon / grelon)");
  TableModel& table = model.table(
      "pairwise", {text_col("algorithm"), text_col(""), text_col("vs HCPA"),
                   text_col("vs delta"), text_col("vs time-cost"),
                   text_col("combined (%)")});
  for (std::size_t a = 0; a < names.size(); ++a) {
    const char* row_names[3] = {"better", "equal", "worse"};
    for (int r = 0; r < 3; ++r) {
      std::vector<Cell> row{cell(r == 0 ? names[a] : ""), cell(row_names[r])};
      for (std::size_t b = 0; b < names.size(); ++b) {
        if (a == b) {
          row.push_back(cell("XXX"));
          continue;
        }
        std::string cell_text;
        for (const auto& data : per_cluster) {
          auto c = pairwise_compare(data, a, b);
          int v = r == 0 ? c.better : (r == 1 ? c.equal : c.worse);
          cell_text += (cell_text.empty() ? "" : " / ") + std::to_string(v);
        }
        row.push_back(cell(std::move(cell_text)));
      }
      std::string comb;
      for (const auto& data : per_cluster) {
        auto f = combined_compare(data, a);
        double v = r == 0 ? f.better : (r == 1 ? f.equal : f.worse);
        comb += (comb.empty() ? "" : " / ") + fmt(100 * v, 1);
      }
      row.push_back(cell(std::move(comb)));
      table.rows.push_back(std::move(row));
    }
  }
  model.text(
      "\n  paper: ranking {time-cost, delta, HCPA} by best-result counts;\n"
      "  time-cost wins more as cluster size grows, delta is strongest on\n"
      "  small and medium clusters.\n");
}

/// The Table VI degradation-from-best table, shared verbatim by the
/// table6 kind and the healthy half of the robustness kind — the
/// paper's degradation numbers stay reproducible as a preset of the
/// robustness report family.
void degradation_table(const std::vector<Cluster>& clusters,
                       const std::vector<ExperimentData>& per_cluster,
                       ReportModel& model) {
  TableModel& table = model.table(
      "degradation", {text_col("cluster"), text_col("metric"),
                      num_col("HCPA"), num_col("delta"),
                      num_col("time-cost")});
  for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
    const Cluster& cluster = clusters[ci];
    const ExperimentData& data = per_cluster[ci];
    Degradation d[3];
    for (std::size_t a = 0; a < 3; ++a) d[a] = degradation_from_best(data, a);
    table.rows.push_back({cell(cluster.name()), cell("avg over all exp."),
                          cell(d[0].avg_over_all,
                               fmt_percent(d[0].avg_over_all, 2)),
                          cell(d[1].avg_over_all,
                               fmt_percent(d[1].avg_over_all, 2)),
                          cell(d[2].avg_over_all,
                               fmt_percent(d[2].avg_over_all, 2))});
    table.rows.push_back({cell(""), cell("# not best"),
                          cell(d[0].not_best, std::to_string(d[0].not_best)),
                          cell(d[1].not_best, std::to_string(d[1].not_best)),
                          cell(d[2].not_best, std::to_string(d[2].not_best))});
    table.rows.push_back({cell(""), cell("avg over # not best"),
                          cell(d[0].avg_over_not_best,
                               fmt_percent(d[0].avg_over_not_best, 2)),
                          cell(d[1].avg_over_not_best,
                               fmt_percent(d[1].avg_over_not_best, 2)),
                          cell(d[2].avg_over_not_best,
                               fmt_percent(d[2].avg_over_not_best, 2))});
  }
}

void run_table6(const ScenarioSpec& spec, ReportModel& model,
                RunSession* session) {
  auto corpus = resolve_workload(spec, model);
  model.heading("Table VI: average degradation from best");
  const auto clusters = spec.platform.resolve();
  const TimelineBinding events(spec, clusters);
  model.textf("  running corpus on %zu clusters...\n", clusters.size());
  const auto per_cluster =
      presets::run_tuned_experiments(corpus, clusters, spec.threads, session,
                                     events.base_sim);
  degradation_table(clusters, per_cluster, model);
  model.text(
      "\n  paper: time-cost stays closest to the best (< 6% over all\n"
      "  experiments, improving with cluster size); delta degrades as the\n"
      "  cluster grows; HCPA reaches > 100% on large clusters.\n");
}

/// The robustness kind: the tuned multi-cluster matrix (table5/table6
/// machinery) runs twice — healthy, then with the [events] timeline
/// injected — and the report compares the halves.  The healthy half
/// renders Table VI's degradation table through the shared helper, so
/// the paper's numbers are a preset of this family; the degraded half
/// adds makespan inflation and fault accounting per (cluster, algo).
void run_robustness(const ScenarioSpec& spec, ReportModel& model,
                    RunSession* session) {
  RATS_REQUIRE(!spec.events.empty(),
               "kind \"robustness\" needs a non-empty [events] timeline");
  auto corpus = resolve_workload(spec, model);
  const auto clusters = spec.platform.resolve();
  const TimelineBinding events(spec, clusters);

  // One matrix, two halves: run r of the degraded half is the injected
  // twin of run r of the healthy half.
  const std::size_t half = clusters.size() * corpus.size() * 3;
  if (session) session->begin_matrix(2 * half);
  model.textf("  running corpus on %zu clusters, healthy then degraded...\n",
              clusters.size());
  OffsetSession healthy_session(session, 0);
  const auto healthy = presets::run_tuned_experiments(
      corpus, clusters, spec.threads, session ? &healthy_session : nullptr,
      nullptr);
  OffsetSession degraded_session(session, half);
  const auto degraded = presets::run_tuned_experiments(
      corpus, clusters, spec.threads, session ? &degraded_session : nullptr,
      events.base_sim);

  model.heading("Degradation from best (healthy baseline, Table VI)");
  degradation_table(clusters, healthy, model);

  model.heading("Robustness under the [events] timeline");
  TableModel& table = model.table(
      "robustness", {text_col("cluster"), text_col("metric"),
                     num_col("HCPA"), num_col("delta"),
                     num_col("time-cost")});
  for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
    const ExperimentData& h = degraded[ci];  // same shape as healthy[ci]
    double mean_inflation[3] = {0, 0, 0};
    double max_inflation[3] = {0, 0, 0};
    std::int64_t killed[3] = {0, 0, 0};
    std::int64_t remapped[3] = {0, 0, 0};
    std::int64_t aborted[3] = {0, 0, 0};
    double lost[3] = {0, 0, 0};
    const auto n = static_cast<double>(corpus.size());
    for (std::size_t a = 0; a < 3; ++a) {
      for (std::size_t e = 0; e < corpus.size(); ++e) {
        const RunOutcome& base = healthy[ci].outcome[e][a];
        const RunOutcome& hit = degraded[ci].outcome[e][a];
        const double inflation = hit.makespan / base.makespan - 1.0;
        mean_inflation[a] += inflation / n;
        max_inflation[a] = std::max(max_inflation[a], inflation);
        killed[a] += hit.faults.tasks_killed;
        remapped[a] += hit.faults.tasks_remapped;
        aborted[a] += hit.faults.redists_aborted;
        lost[a] += hit.faults.capacity_seconds_lost / 1e9 / n;
      }
      const std::string algo = h.algo_names[a];
      const std::string cname = clusters[ci].name();
      model.scalar("robustness/" + cname + "/" + algo + "/avg-inflation",
                   mean_inflation[a]);
      model.scalar("robustness/" + cname + "/" + algo + "/tasks-killed",
                   static_cast<double>(killed[a]));
    }
    const auto pct_row = [&](const char* metric, const double v[3],
                             const char* head) {
      table.rows.push_back({cell(head), cell(metric),
                            cell(v[0], fmt_percent(v[0], 2)),
                            cell(v[1], fmt_percent(v[1], 2)),
                            cell(v[2], fmt_percent(v[2], 2))});
    };
    const auto count_row = [&](const char* metric, const std::int64_t v[3]) {
      table.rows.push_back({cell(""), cell(metric),
                            cell(static_cast<double>(v[0]),
                                 std::to_string(v[0])),
                            cell(static_cast<double>(v[1]),
                                 std::to_string(v[1])),
                            cell(static_cast<double>(v[2]),
                                 std::to_string(v[2]))});
    };
    pct_row("avg makespan inflation", mean_inflation,
            clusters[ci].name().c_str());
    pct_row("max makespan inflation", max_inflation, "");
    count_row("# tasks killed", killed);
    count_row("# tasks remapped", remapped);
    count_row("# redists aborted", aborted);
    table.rows.push_back({cell(""), cell("avg capacity lost (GB)"),
                          cell(lost[0], fmt(lost[0], 2)),
                          cell(lost[1], fmt(lost[1], 2)),
                          cell(lost[2], fmt(lost[2], 2))});
  }
  model.text(
      "\n  inflation compares each degraded run against its healthy twin\n"
      "  (same workload, algorithm and cluster); fault counts are summed\n"
      "  over the corpus, capacity lost averaged per run.\n");
}

void run_experiment_kind(const ScenarioSpec& spec, ReportModel& model,
                         RunSession* session) {
  auto corpus = resolve_workload(spec, model);
  Cluster cluster = spec.platform.resolve_one();
  auto data = run_matrix_experiment(spec, corpus, cluster, session);
  model.heading("Scenario '" + spec.name + "': " + cluster.name() + ", " +
                std::to_string(data.entries()) + " workloads x " +
                std::to_string(data.algos()) + " algorithms");
  constexpr double kTolerance = 1e-6;
  TableModel& table = model.table(
      "summary", {text_col("algorithm"), num_col("avg makespan (s)"),
                  num_col("avg work (proc*s)"), text_col("best in")});
  for (std::size_t a = 0; a < data.algos(); ++a) {
    double sum_makespan = 0, sum_work = 0;
    int best = 0;
    for (std::size_t e = 0; e < data.entries(); ++e) {
      sum_makespan += data.outcome[e][a].makespan;
      sum_work += data.outcome[e][a].work;
      double min_makespan = data.outcome[e][0].makespan;
      for (std::size_t other = 1; other < data.algos(); ++other)
        min_makespan = std::min(min_makespan, data.outcome[e][other].makespan);
      if (data.outcome[e][a].makespan <= min_makespan * (1 + kTolerance))
        ++best;
    }
    const auto n = static_cast<double>(data.entries());
    table.rows.push_back(
        {cell(data.algo_names[a]),
         cell(sum_makespan / n, fmt(sum_makespan / n, 2)),
         cell(sum_work / n, fmt(sum_work / n, 1)),
         cell(std::to_string(best) + "/" + std::to_string(data.entries()))});
  }
  if (data.entries() <= 24) {
    model.heading("Per-workload makespans (s)");
    std::vector<Column> columns{text_col("workload")};
    for (const auto& name : data.algo_names) columns.push_back(num_col(name));
    TableModel& per_entry = model.table("per-workload", std::move(columns));
    for (std::size_t e = 0; e < data.entries(); ++e) {
      std::vector<Cell> row{cell(data.entry_names[e])};
      for (std::size_t a = 0; a < data.algos(); ++a)
        row.push_back(cell(data.outcome[e][a].makespan,
                           fmt(data.outcome[e][a].makespan, 2)));
      per_entry.rows.push_back(std::move(row));
    }
  }
}

// Deliberately serial: the kind exists to print a per-task timeline of
// a handful of runs, and the gantt table reads each run's sink before
// end_run hands it to the writer.  Large matrices belong to the
// "experiment" kind, whose runs go through the parallel worker pool.
void run_single(const ScenarioSpec& spec, ReportModel& model,
                RunSession* session) {
  auto corpus = resolve_workload(spec, model);
  Cluster cluster = spec.platform.resolve_one();
  const TimelineBinding events(spec, {cluster});
  const std::size_t num_algos = spec.algorithms.names().size();
  if (session) session->begin_matrix(corpus.size() * num_algos);
  for (std::size_t e = 0; e < corpus.size(); ++e) {
    const CorpusEntry& entry = corpus[e];
    const auto algos =
        spec.algorithms.resolve(entry.family, cluster.name());
    RATS_REQUIRE(algos.size() == num_algos,
                 "algorithm list changed size across families");
    for (std::size_t a = 0; a < algos.size(); ++a) {
      const AlgoSpec& algo = algos[a];
      const std::size_t run_index = e * num_algos + a;
      model.textf("\nworkflow %s: %d tasks, %d edges; platform %s (%d "
                  "nodes)\n",
                  entry.name.c_str(), entry.graph.num_tasks(),
                  entry.graph.num_edges(), cluster.name().c_str(),
                  cluster.num_nodes());
      const Schedule schedule =
          build_schedule(entry.graph, cluster, algo.options);
      TraceSink local_sink;
      TraceSink* sink = nullptr;
      if (session)
        sink = session->begin_run(
            run_index, RunMeta{entry.name, algo.name, cluster.name()});
      // A session may decline the run (nullptr sink); the Gantt table
      // still needs events, so fall back to the local sink — attaching
      // a session must never change the report's content.
      if (sink == nullptr && spec.output.gantt) sink = &local_sink;
      SimulatorOptions sim_options =
          events.base_sim ? *events.base_sim : SimulatorOptions{};
      sim_options.trace = sink;
      const SimulationResult result =
          simulate(entry.graph, schedule, cluster, sim_options);
      note_simulated_run();
      model.textf(
          "%s: makespan %.2f s (mapper estimate %.2f s), work %.1f proc*s, "
          "network %.1f MiB\n",
          algo.name.c_str(), result.makespan, schedule.estimated_makespan(),
          result.total_work, result.network_bytes / MiB);
      if (events.base_sim)
        model.textf(
            "   faults: %d killed, %d remapped, %d redists aborted, "
            "%.2f GB capacity lost\n",
            result.faults.tasks_killed, result.faults.tasks_remapped,
            result.faults.redists_aborted,
            result.faults.capacity_seconds_lost / 1e9);
      model.scalar("makespan/" + entry.name + "/" + algo.name,
                   result.makespan);
      model.scalar("work/" + entry.name + "/" + algo.name, result.total_work);
      TableModel& timeline = model.table(
          "timeline/" + entry.name + "/" + algo.name,
          {text_col("task"), num_col("procs"), num_col("ready"),
           num_col("start"), num_col("finish")});
      timeline.csv_echo = false;
      timeline.preformatted = strf("%-20s %5s %9s %9s %9s\n", "task", "procs",
                                   "ready", "start", "finish");
      for (TaskId t = 0; t < entry.graph.num_tasks(); ++t) {
        const auto& tl = result.timeline[static_cast<std::size_t>(t)];
        const std::size_t procs = schedule.of(t).procs.size();
        timeline.preformatted +=
            strf("%-20s %5zu %9.2f %9.2f %9.2f\n",
                 entry.graph.task(t).name.c_str(), procs, tl.data_ready,
                 tl.start, tl.finish);
        timeline.rows.push_back(
            {cell(entry.graph.task(t).name),
             cell(static_cast<double>(procs), std::to_string(procs)),
             cell(tl.data_ready, fmt(tl.data_ready, 2)),
             cell(tl.start, fmt(tl.start, 2)),
             cell(tl.finish, fmt(tl.finish, 2))});
      }
      if (spec.output.gantt && sink != nullptr) {
        std::vector<std::string> names;
        for (TaskId t = 0; t < entry.graph.num_tasks(); ++t)
          names.push_back(entry.graph.task(t).name);
        model.heading("Gantt (" + entry.name + ", " + algo.name + ")");
        model.text(trace_gantt(sink->events(), &names));
      }
      if (session)
        session->end_run(run_index, RunOutcome{result.makespan,
                                               result.total_work,
                                               result.faults});
    }
  }
}

// ---- registry ----------------------------------------------------------

struct KindEntry {
  const char* name;
  void (*fn)(const ScenarioSpec&, ReportModel&, RunSession*);
  bool traceable;
  /// Whether the kind feeds a spec's [events] timeline into its runs.
  /// Kinds that never simulate (or tune, where a degraded optimum is
  /// meaningless) reject specs carrying one instead of silently
  /// reporting healthy numbers for a degraded scenario.
  bool consumes_events;
};

constexpr KindEntry kKinds[] = {
    {"fig2", run_fig2, true, true},
    {"fig3", run_fig3, true, true},
    {"fig4", run_fig4, true, true},
    {"fig5", run_fig5, true, true},
    {"fig6", run_fig6, true, true},
    {"fig7", run_fig7, true, true},
    {"table1", run_table1, false, false},
    {"table2", run_table2, false, false},
    {"table3", run_table3, false, false},
    {"table4", run_table4, false, false},
    {"table5", run_table5, true, true},
    {"table6", run_table6, true, true},
    {"experiment", run_experiment_kind, true, true},
    {"single", run_single, true, true},
    {"sweep", run_sweep, true, true},
    {"robustness", run_robustness, true, true},
};

const KindEntry* find_kind(const std::string& kind) {
  for (const KindEntry& entry : kKinds)
    if (kind == entry.name) return &entry;
  return nullptr;
}

const KindEntry& require_kind(const std::string& kind) {
  const KindEntry* entry = find_kind(kind);
  if (entry == nullptr) {
    std::string known;
    for (const KindEntry& k : kKinds)
      known += (known.empty() ? "" : ", ") + std::string(k.name);
    throw Error("unknown scenario kind '" + kind + "' (known: " + known +
                ")");
  }
  return *entry;
}

// ---- trace session -----------------------------------------------------

/// RunSession → TraceWriter bridge: every observed run becomes one
/// streamed chunk.
class TraceSession final : public RunSession {
 public:
  explicit TraceSession(TraceWriter& writer) : writer_(writer) {}
  void begin_matrix(std::size_t runs) override { writer_.begin_matrix(runs); }
  TraceSink* begin_run(std::size_t run, const RunMeta& meta) override {
    return writer_.begin_run(run, meta.entry, meta.algo, meta.cluster);
  }
  void end_run(std::size_t run, const RunOutcome& outcome) override {
    writer_.end_run(run, outcome.makespan);
  }

 private:
  TraceWriter& writer_;
};

/// RunSession wrapper driving the --progress heartbeat: forwards every
/// hook to the (possibly absent) inner session and ticks the meter on
/// each completed run.  The meter finishes (final paint + newline) in
/// the destructor, so every exit path closes the heartbeat line.
class ProgressSession final : public RunSession {
 public:
  explicit ProgressSession(RunSession* inner) : inner_(inner) {}
  void begin_matrix(std::size_t runs) override {
    if (inner_) inner_->begin_matrix(runs);
    meter_.emplace("runs", runs);
  }
  bool inject(std::size_t run, const RunMeta& meta, RunOutcome& out) override {
    if (!(inner_ && inner_->inject(run, meta, out))) return false;
    if (meter_) meter_->tick();
    return true;
  }
  TraceSink* begin_run(std::size_t run, const RunMeta& meta) override {
    return inner_ ? inner_->begin_run(run, meta) : nullptr;
  }
  void end_run(std::size_t run, const RunOutcome& outcome) override {
    if (inner_) inner_->end_run(run, outcome);
    if (meter_) meter_->tick();
  }

 private:
  RunSession* inner_;
  std::optional<obs::ProgressMeter> meter_;
};

/// Fills the model's metrics section with the *stable* registry
/// counters/gauges accumulated since `before` — deltas, so `--check`
/// repetitions (which share the process-wide registry) embed identical
/// values, and so the section reflects this build rather than whatever
/// ran earlier in the process.  Volatile counters and timers are
/// excluded by design: they differ across repetitions (warm per-thread
/// caches, wall time), which would break --check's byte comparison;
/// they stay visible in the standalone --metrics snapshot.
void fill_metrics(ReportModel& model, const obs::Snapshot& before) {
  const obs::Snapshot after = obs::snapshot();
  const auto delta = [](const std::vector<obs::Snapshot::Value>& b,
                        const std::string& name) -> std::uint64_t {
    for (const auto& v : b)
      if (v.name == name) return v.value;
    return 0;
  };
  model.metrics.clear();
  for (const auto& v : after.counters)
    model.metrics.push_back(report::MetricModel{
        v.name, static_cast<std::int64_t>(v.value - delta(before.counters,
                                                          v.name)),
        true});
  for (const auto& v : after.gauges)
    model.metrics.push_back(report::MetricModel{
        v.name, static_cast<std::int64_t>(v.value), true});
}

/// The canonical scenario text embedded in trace headers: artefact
/// paths are execution details (like `threads`), so the trace bytes do
/// not depend on where reports or the trace itself are written.
std::string canonical_spec_text(const ScenarioSpec& spec) {
  ScenarioSpec canonical = spec;
  canonical.output.report_csv.clear();
  canonical.output.report_json.clear();
  canonical.output.trace.clear();
  // Compression wraps the finished stream, so a gzipped trace inflates
  // to the exact bytes of the plain trace — header included.
  canonical.output.trace_gzip = false;
  return emit_scenario(canonical);
}

ReportModel build_with(const KindEntry& entry, const ScenarioSpec& spec,
                       RunSession* session) {
  RATS_REQUIRE(spec.events.empty() || entry.consumes_events,
               "scenario kind '" + spec.kind +
                   "' does not consume an [events] timeline");
  ReportModel model;
  model.name = spec.name;
  model.kind = spec.kind;
  entry.fn(spec, model, session);
  return model;
}

/// Probes every [output] destination for writability before any
/// simulation runs, so a bad path fails in milliseconds with the
/// spec's file:line instead of after the whole matrix.
void preflight_output(const ScenarioSpec& spec) {
  const auto probe = [&](const std::string& path, int line,
                         const char* what) {
    if (path.empty()) return;
    std::FILE* f = std::fopen(path.c_str(), "ab");
    if (f == nullptr) {
      const std::string where =
          spec.origin.empty() || line <= 0
              ? std::string()
              : spec.origin + ":" + std::to_string(line) + ": ";
      throw Error(where + "cannot write " + what + " '" + path + "'");
    }
    std::fclose(f);
  };
  probe(spec.output.trace, spec.output.trace_line, "trace");
  probe(spec.output.report_csv, spec.output.report_csv_line, "report");
  probe(spec.output.report_json, spec.output.report_json_line, "report");
}

void write_artifact(const std::string& path, const std::string& bytes,
                    const char* what) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error(std::string("cannot write ") + what + " '" + path +
                        "'");
  out << bytes;
  out.close();
  // A full disk leaves the stream open-able but the write short; a
  // truncated artefact must not be reported as success.
  if (!out.good())
    throw Error(std::string("failed writing ") + what + " '" + path + "'");
  std::fprintf(stderr, "wrote %s %s\n", what, path.c_str());
}

}  // namespace

std::vector<std::string> kinds() {
  std::vector<std::string> names;
  for (const KindEntry& entry : kKinds) names.emplace_back(entry.name);
  return names;
}

bool kind_supports_trace(const std::string& kind) {
  const KindEntry* entry = find_kind(kind);
  return entry != nullptr && entry->traceable;
}

report::ReportModel build_report(const ScenarioSpec& spec,
                                 RunSession* session) {
  const KindEntry& entry = require_kind(spec.kind);
  RATS_REQUIRE(session == nullptr || entry.traceable,
               "scenario kind '" + spec.kind + "' does not support tracing");
  return build_with(entry, spec, session);
}

std::string render_trace(const ScenarioSpec& spec, unsigned threads) {
  const KindEntry& entry = require_kind(spec.kind);
  RATS_REQUIRE(entry.traceable,
               "scenario kind '" + spec.kind + "' does not support tracing");
  ScenarioSpec effective = spec;
  effective.threads = threads;
  std::ostringstream out;
  TraceWriter writer(out, effective.name, effective.kind,
                     canonical_spec_text(effective));
  TraceSession session(writer);
  build_with(entry, effective, &session);  // the report model is discarded
  writer.finish();
  return out.str();
}

void run(const ScenarioSpec& spec, const RunOptions& options) {
  ScenarioSpec effective = spec;
  if (options.has_threads) effective.threads = options.threads;
  if (options.csv) effective.output.csv = true;
  if (options.full) effective.workload.corpus.full = true;
  // Command-line paths have no spec line to point diagnostics at.
  if (!options.trace_path.empty()) {
    effective.output.trace = options.trace_path;
    effective.output.trace_line = 0;
  }
  if (!options.report_csv_path.empty()) {
    effective.output.report_csv = options.report_csv_path;
    effective.output.report_csv_line = 0;
  }
  if (!options.report_json_path.empty()) {
    effective.output.report_json = options.report_json_path;
    effective.output.report_json_line = 0;
  }

  const KindEntry& entry = require_kind(effective.kind);
  const std::string trace_path = effective.output.trace;
  // Reject an untraceable kind before spending the run on it.
  RATS_REQUIRE(trace_path.empty() || entry.traceable,
               "scenario kind '" + effective.kind +
                   "' does not support tracing");
  RATS_REQUIRE(options.check >= 1, "--check needs a repetition count >= 1");
  preflight_output(effective);

  // Observability switches.  --metrics turns the registry on for the
  // whole invocation; --profile starts span recording from a clean
  // buffer.  Neither touches stdout or the report/trace bytes.
  if (!options.metrics_path.empty()) obs::set_metrics_enabled(true);
  if (!options.profile_path.empty() && !obs::profiling_enabled()) {
    // Start from a clean buffer — unless the caller (the CLI) already
    // enabled profiling to cover earlier phases like the spec parse.
    obs::set_profiling_enabled(true);
    obs::clear_spans();
  }
  // The heartbeat rides the run-session hook chain, which only
  // traceable kinds invoke; the static table kinds finish in
  // milliseconds anyway.
  const bool want_progress = options.progress && entry.traceable;

  // ONE simulation pass: the report model accumulates while the trace
  // (when requested) streams through the per-run session hooks.  Under
  // --check the trace is buffered instead so repetitions can compare
  // its bytes.
  const bool compare = options.check > 1;
  const auto build_once = [&](std::string* trace_out) {
    const obs::Snapshot before =
        obs::metrics_enabled() ? obs::snapshot() : obs::Snapshot{};
    std::optional<ProgressSession> progress;
    const auto wrap = [&](RunSession* inner) -> RunSession* {
      if (!want_progress) return inner;
      progress.emplace(inner);
      return &*progress;
    };
    ReportModel m;
    if (trace_out == nullptr) {
      m = build_with(entry, effective, wrap(nullptr));
    } else {
      std::ostringstream out;
      TraceWriter writer(out, effective.name, effective.kind,
                         canonical_spec_text(effective));
      TraceSession session(writer);
      m = build_with(entry, effective, wrap(&session));
      writer.finish();
      *trace_out = out.str();
    }
    progress.reset();  // close the heartbeat line before any rendering
    if (obs::metrics_enabled()) fill_metrics(m, before);
    return m;
  };

  const bool gzip_trace = !trace_path.empty() && effective.output.trace_gzip;
  ReportModel model;
  std::string trace_bytes;
  if (trace_path.empty()) {
    model = build_once(nullptr);
  } else if (compare || want_progress) {
    // Buffered trace: under --check so repetitions can compare bytes;
    // under --progress so the heartbeat owns stderr while runs finish.
    // `trace_bytes` stays uncompressed (the deterministic form the
    // repetitions compare); compression happens at the write.
    model = build_once(&trace_bytes);
    write_artifact(trace_path,
                   gzip_trace ? gzip_compress(trace_bytes) : trace_bytes,
                   "trace");
  } else {
    std::ofstream file(trace_path, std::ios::binary);
    if (!file) throw Error("cannot write trace '" + trace_path + "'");
    std::optional<GzipOstream> gz;
    if (gzip_trace) gz.emplace(file);
    std::ostream& out = gz ? gz->stream() : static_cast<std::ostream&>(file);
    TraceWriter writer(out, effective.name, effective.kind,
                       canonical_spec_text(effective));
    TraceSession session(writer);
    const obs::Snapshot before =
        obs::metrics_enabled() ? obs::snapshot() : obs::Snapshot{};
    model = build_with(entry, effective, &session);
    if (obs::metrics_enabled()) fill_metrics(model, before);
    writer.finish();
    if (gz) gz->finish();
    file.close();
    if (!file.good())
      throw Error("failed writing trace '" + trace_path + "'");
    std::fprintf(stderr, "wrote trace %s\n", trace_path.c_str());
  }

  const std::string text = [&] {
    obs::PhaseTimer span("render");
    return report::render_text(model, effective.output.csv);
  }();
  std::fputs(text.c_str(), stdout);
  if (!effective.output.report_csv.empty())
    write_artifact(effective.output.report_csv, report::render_csv(model),
                   "report");
  if (!effective.output.report_json.empty())
    write_artifact(effective.output.report_json, report::render_json(model),
                   "report");

  // --check N: repeat the whole pass and require every rendering — the
  // bytes a user could observe — to come back identical.
  for (int rep = 2; rep <= options.check; ++rep) {
    std::string trace2;
    const ReportModel again =
        build_once(trace_path.empty() ? nullptr : &trace2);
    const auto differs = [&](const char* what) {
      throw Error(strf("--check: %s differs between repetition 1 and %d",
                       what, rep));
    };
    if (report::render_text(again, effective.output.csv) != text)
      differs("text report");
    if (!trace_path.empty() && trace2 != trace_bytes) differs("trace");
    if (!effective.output.report_csv.empty() &&
        report::render_csv(again) != report::render_csv(model))
      differs("CSV report");
    if (!effective.output.report_json.empty() &&
        report::render_json(again) != report::render_json(model))
      differs("JSON report");
  }
  if (compare)
    std::fprintf(stderr, "check: %d repetitions produced identical output\n",
                 options.check);

  // Standalone observability artefacts, written last so they cover the
  // whole invocation (including --check repetitions).
  if (!options.metrics_path.empty())
    write_artifact(options.metrics_path,
                   obs::snapshot_json(obs::snapshot(), effective.name,
                                      effective.kind),
                   "metrics");
  if (!options.profile_path.empty())
    write_artifact(options.profile_path, obs::spans_json(), "profile");
}

ScenarioSpec default_spec(const std::string& kind) {
  require_kind(kind);
  ScenarioSpec spec;
  spec.name = kind;
  spec.kind = kind;
  spec.platform.presets = {"grillon"};
  if (kind == "fig4") {
    spec.workload.source = WorkloadSpec::Source::Family;
    spec.workload.family = "fft";
    spec.sweep.mindeltas = tuning_mindeltas();
    spec.sweep.maxdeltas = tuning_maxdeltas();
  } else if (kind == "fig5") {
    spec.workload.source = WorkloadSpec::Source::Family;
    spec.workload.family = "irregular";
    spec.workload.cap_per_family = 16;
    spec.sweep.minrhos = tuning_minrhos();
  } else if (kind == "fig6" || kind == "fig7") {
    spec.algorithms.preset = "tuned";
  } else if (kind == "table2" || kind == "table4") {
    spec.platform.presets = {"chti", "grillon", "grelon"};
    if (kind == "table4") spec.workload.cap_per_family = 6;
  } else if (kind == "table5" || kind == "table6") {
    spec.platform.presets = {"chti", "grillon", "grelon"};
    spec.workload.cap_per_family = 12;
    spec.algorithms.preset = "tuned";
  } else if (kind == "robustness") {
    // Table VI's setting plus a representative timeline: background
    // traffic on node 1's NIC, node 0 at half speed, node 2 failing
    // and restarting.  Node ids 0-2 are valid on every preset cluster.
    spec.platform.presets = {"chti", "grillon", "grelon"};
    spec.workload.cap_per_family = 12;
    spec.algorithms.preset = "tuned";
    spec.events.timeline.on_fail = FailPolicy::Reschedule;
    PlatformEvent slow;
    slow.at = 1.0;
    slow.kind = PlatformEventKind::NodeSlowdown;
    slow.node = 0;
    slow.factor = 0.5;
    PlatformEvent traffic;
    traffic.at = 2.0;
    traffic.kind = PlatformEventKind::LinkCapacity;
    traffic.node = 1;
    traffic.factor = 0.25;
    PlatformEvent fail;
    fail.at = 3.0;
    fail.kind = PlatformEventKind::NodeFail;
    fail.node = 2;
    PlatformEvent restart;
    restart.at = 6.0;
    restart.kind = PlatformEventKind::NodeRestart;
    restart.node = 2;
    spec.events.timeline.events = {slow, traffic, fail, restart};
  } else if (kind == "experiment") {
    spec.workload.source = WorkloadSpec::Source::Generate;
    spec.workload.generator = "layered";
    spec.workload.count = 3;
    spec.workload.dag.num_tasks = 40;
    spec.workload.dag.width = 0.5;
    spec.workload.dag.density = 0.5;
    spec.workload.dag.regularity = 0.5;
  } else if (kind == "single") {
    spec.workload.source = WorkloadSpec::Source::Generate;
    spec.workload.generator = "fft";
    spec.workload.count = 1;
    spec.workload.fft_k = 8;
    spec.algorithms.preset.clear();
    spec.algorithms.algos = {presets::naive_algos().back()};
  } else if (kind == "sweep") {
    spec.workload.source = WorkloadSpec::Source::Family;
    spec.workload.family = "fft";
    spec.sweep.base = "delta";
    spec.sweep.mindeltas = {-0.75, -0.5, -0.25, 0.0};
    spec.sweep.maxdeltas = {0.5, 1.0};
  }
  return spec;
}

}  // namespace rats::scenario
