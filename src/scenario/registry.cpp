#include "scenario/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "dag/graph_algorithms.hpp"
#include "exp/parallel.hpp"
#include "exp/tuning.hpp"
#include "redist/block_redistribution.hpp"
#include "scenario/parser.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace rats::scenario {

namespace {

// ---- shared report fragments (ported verbatim from the benches) --------

/// Figures 2 and 6: relative-makespan summary + sorted curves.
void makespan_report(const ExperimentData& data, bool csv) {
  Table table({"strategy", "avg relative makespan", "avg improvement",
               "shorter in", "equal in"});
  for (std::size_t algo = 1; algo < data.algos(); ++algo) {
    auto series = relative_series(data, algo, 0, /*makespan=*/true);
    auto s = summarize_relative(series);
    table.add_row({data.algo_names[algo], fmt(s.mean_ratio, 3),
                   fmt_percent(1.0 - s.mean_ratio, 1),
                   fmt_percent(s.fraction_better, 1),
                   fmt_percent(s.fraction_equal, 1)});
    presets::print_sorted_curve(data.algo_names[algo], series);
  }
  std::printf("%s", table.to_text().c_str());
  if (csv) std::printf("%s", table.to_csv().c_str());
}

/// Figures 3 and 7: relative-work summary + sorted curves.
void work_report(const ExperimentData& data, bool csv) {
  Table table({"strategy", "avg relative work", "less work in", "equal in"});
  for (std::size_t algo = 1; algo < data.algos(); ++algo) {
    auto series = relative_series(data, algo, 0, /*makespan=*/false);
    auto s = summarize_relative(series);
    table.add_row({data.algo_names[algo], fmt(s.mean_ratio, 3),
                   fmt_percent(s.fraction_better, 1),
                   fmt_percent(s.fraction_equal, 1)});
    presets::print_sorted_curve(data.algo_names[algo], series);
  }
  std::printf("%s", table.to_text().c_str());
  if (csv) std::printf("%s", table.to_csv().c_str());
}

/// Corpus x algorithms on one cluster — the shared execution of the
/// fig2/fig3/fig6/fig7 and generic kinds.  Tuned presets group by
/// family (Table IV parameters), everything else runs one algo list.
ExperimentData run_matrix_experiment(const ScenarioSpec& spec,
                                     const std::vector<CorpusEntry>& entries,
                                     const Cluster& cluster) {
  if (spec.algorithms.tuned())
    return presets::run_tuned_experiment(entries, cluster, spec.threads);
  return run_experiment(entries, cluster,
                        spec.algorithms.resolve(DagFamily::Irregular,
                                                cluster.name()),
                        spec.threads);
}

void run_fig2(const ScenarioSpec& spec) {
  auto corpus = spec.workload.resolve(true);
  Cluster cluster = spec.platform.resolve_one();
  auto data = run_matrix_experiment(spec, corpus, cluster);
  presets::heading(
      "Figure 2: relative makespan vs HCPA, naive parameters, " +
      cluster.name());
  makespan_report(data, spec.output.csv);
  std::printf(
      "\n  paper: delta ~9%% shorter on average, better in 72%% of "
      "scenarios;\n         time-cost ~16%% shorter, better in 80%%.\n");
}

void run_fig3(const ScenarioSpec& spec) {
  auto corpus = spec.workload.resolve(true);
  Cluster cluster = spec.platform.resolve_one();
  auto data = run_matrix_experiment(spec, corpus, cluster);
  presets::heading("Figure 3: relative work vs HCPA, naive parameters, " +
                   cluster.name());
  work_report(data, spec.output.csv);
  std::printf(
      "\n  paper: both strategies stay close to HCPA's resource usage;\n"
      "         delta consumes less than time-cost.\n");
}

void run_fig4(const ScenarioSpec& spec) {
  auto corpus = spec.workload.resolve(true);
  Cluster cluster = spec.platform.resolve_one();
  // Empty [sweep] lists fall back to the paper grids inside sweep_delta.
  auto sweep = sweep_delta(corpus, cluster, spec.sweep.mindeltas,
                           spec.sweep.maxdeltas, spec.threads);
  presets::heading(
      "Figure 4: avg makespan relative to HCPA, RATS-delta, FFT, " +
      cluster.name());
  std::vector<std::string> header{"mindelta \\ maxdelta"};
  for (double mx : sweep.maxdeltas) header.push_back(fmt(mx, 2));
  Table table(header);
  for (std::size_t i = 0; i < sweep.mindeltas.size(); ++i) {
    std::vector<std::string> row{fmt(sweep.mindeltas[i], 2)};
    for (std::size_t j = 0; j < sweep.maxdeltas.size(); ++j)
      row.push_back(fmt(sweep.avg_relative[i][j], 3));
    table.add_row(row);
  }
  std::printf("%s", table.to_text().c_str());
  if (spec.output.csv) std::printf("%s", table.to_csv().c_str());
  std::printf("\n  best: mindelta=%s maxdelta=%s -> %s\n",
              fmt(sweep.best_mindelta, 2).c_str(),
              fmt(sweep.best_maxdelta, 2).c_str(),
              fmt(sweep.best_value, 3).c_str());
  std::printf(
      "  paper: larger maxdelta improves the relative makespan; lowering\n"
      "  mindelta helps only to a certain extent (Table IV picks (-.5, 1)).\n");
}

void run_fig5(const ScenarioSpec& spec) {
  auto corpus = spec.workload.resolve(true);
  Cluster cluster = spec.platform.resolve_one();
  auto sweep = sweep_rho(corpus, cluster, spec.sweep.minrhos, spec.threads);
  presets::heading(
      "Figure 5: avg makespan relative to HCPA, RATS-time-cost, irregular, " +
      cluster.name());
  Table table({"minrho", "packing allowed", "no packing"});
  for (std::size_t i = 0; i < sweep.minrhos.size(); ++i)
    table.add_row({fmt(sweep.minrhos[i], 2), fmt(sweep.with_packing[i], 3),
                   fmt(sweep.without_packing[i], 3)});
  std::printf("%s", table.to_text().c_str());
  if (spec.output.csv) std::printf("%s", table.to_csv().c_str());
  std::printf("\n  best (packing allowed): minrho=%s -> %s\n",
              fmt(sweep.best_minrho, 2).c_str(),
              fmt(sweep.best_value, 3).c_str());
  std::printf(
      "  paper: packing gives better performance at every minrho; the\n"
      "  curve flattens beyond a threshold (0.5 on grillon).\n");
}

void run_fig6(const ScenarioSpec& spec) {
  auto corpus = spec.workload.resolve(true);
  Cluster cluster = spec.platform.resolve_one();
  auto data = run_matrix_experiment(spec, corpus, cluster);
  presets::heading(
      "Figure 6: relative makespan vs HCPA, tuned parameters, " +
      cluster.name());
  makespan_report(data, spec.output.csv);
  std::printf(
      "\n  paper: tuned delta ~13%% shorter than HCPA on grillon (9%% "
      "naive);\n         time-cost improves only slightly over naive.\n");
}

void run_fig7(const ScenarioSpec& spec) {
  auto corpus = spec.workload.resolve(true);
  Cluster cluster = spec.platform.resolve_one();
  auto data = run_matrix_experiment(spec, corpus, cluster);
  presets::heading("Figure 7: relative work vs HCPA, tuned parameters, " +
                   cluster.name());
  work_report(data, spec.output.csv);
  std::printf(
      "\n  paper: tuned RATS stays close to (mostly below) HCPA's resource "
      "usage.\n");
}

void print_redist_matrix(const Redistribution& r, Bytes unit) {
  auto m = r.matrix();
  std::vector<std::string> header{""};
  for (int q = 0; q < r.receivers(); ++q)
    header.push_back("q" + std::to_string(q + 1));
  Table table(header);
  for (int p = 0; p < r.senders(); ++p) {
    std::vector<std::string> row{"p" + std::to_string(p + 1)};
    for (int q = 0; q < r.receivers(); ++q) {
      double units =
          m[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)] / unit;
      row.push_back(units == 0 ? "" : fmt(units, 2));
    }
    table.add_row(row);
  }
  std::printf("%s", table.to_text().c_str());
}

void run_table1(const ScenarioSpec&) {
  presets::heading(
      "Table I: communication matrix, 10 units, p=4 senders, q=5 receivers");
  const Bytes unit = 1024;  // any unit; the matrix scales linearly
  std::vector<NodeId> senders{0, 1, 2, 3};
  std::vector<NodeId> receivers{4, 5, 6, 7, 8};
  auto r = Redistribution::plan(10 * unit, senders, receivers);
  print_redist_matrix(r, unit);
  std::printf("  non-empty entries: %zu (expected p+q-1 = 8)\n",
              r.transfers().size());
  std::printf("  self bytes: %s units, remote: %s units\n",
              fmt(r.self_bytes() / unit, 2).c_str(),
              fmt(r.remote_bytes() / unit, 2).c_str());

  presets::heading(
      "Overlapping sets: receiver order permuted to maximize self "
      "communication");
  std::vector<NodeId> overlap_recv{2, 3, 4, 5, 6};
  auto r2 = Redistribution::plan(10 * unit, senders, overlap_recv);
  print_redist_matrix(r2, unit);
  std::printf("  self bytes: %s units (stay on node), remote: %s units\n",
              fmt(r2.self_bytes() / unit, 2).c_str(),
              fmt(r2.remote_bytes() / unit, 2).c_str());

  presets::heading("Identical sets: redistribution cost is zero");
  auto r3 = Redistribution::plan(10 * unit, senders, senders);
  std::printf("  remote bytes: %s (paper: zero when tasks share the same "
              "processor set)\n",
              fmt(r3.remote_bytes(), 0).c_str());
}

void run_table2(const ScenarioSpec& spec) {
  const auto clusters = spec.platform.resolve();
  presets::heading("Table II: cluster characteristics");
  Table table({"Cluster", "#proc.", "GFlop/sec", "topology", "#links"});
  for (const Cluster& c : clusters) {
    table.add_row({c.name(), std::to_string(c.num_nodes()),
                   fmt(c.node_speed() / 1e9, 3),
                   c.hierarchical_topology()
                       ? std::to_string(c.cabinets()) + " cabinets"
                       : "flat switch",
                   std::to_string(c.num_links())});
  }
  std::printf("%s", table.to_text().c_str());
  if (spec.output.csv) std::printf("%s", table.to_csv().c_str());

  presets::heading("Derived network model (Section IV-A)");
  for (const Cluster& c : clusters) {
    NodeId far = static_cast<NodeId>(c.num_nodes() - 1);
    auto route = c.route(0, far);
    Seconds lat = c.route_latency(0, far);
    Seconds rtt = 2 * lat;
    Rate beta = c.link(c.nic_up(0)).bandwidth;
    Rate beta_prime = std::min(beta, c.tcp_window() / rtt);
    std::printf(
        "  %-8s route node0->node%-3d: %zu links, one-way latency %s us, "
        "beta' = min(beta, Wmax/RTT) = %s MB/s (beta = %s MB/s)\n",
        c.name().c_str(), far, route.size(), fmt(lat * 1e6, 1).c_str(),
        fmt(beta_prime / 1e6, 1).c_str(), fmt(beta / 1e6, 1).c_str());
  }
}

void run_table3(const ScenarioSpec& spec) {
  auto corpus = spec.workload.resolve(true);
  presets::heading("Table III: corpus composition");
  Table params({"family", "#configs", "tasks", "edges(min-max)",
                "avg levels", "avg width"});
  for (DagFamily family : {DagFamily::Layered, DagFamily::Irregular,
                           DagFamily::FFT, DagFamily::Strassen}) {
    int count = 0;
    std::int32_t min_edges = INT32_MAX, max_edges = 0;
    std::int32_t min_tasks = INT32_MAX, max_tasks = 0;
    double sum_levels = 0, sum_width = 0;
    for (const auto& e : corpus) {
      if (e.family != family) continue;
      ++count;
      min_edges = std::min(min_edges, e.graph.num_edges());
      max_edges = std::max(max_edges, e.graph.num_edges());
      min_tasks = std::min(min_tasks, e.graph.num_tasks());
      max_tasks = std::max(max_tasks, e.graph.num_tasks());
      auto levels = task_levels(e.graph);
      int num_levels = 1 + *std::max_element(levels.begin(), levels.end());
      std::vector<int> per_level(static_cast<std::size_t>(num_levels), 0);
      for (int l : levels) ++per_level[static_cast<std::size_t>(l)];
      sum_levels += num_levels;
      sum_width += *std::max_element(per_level.begin(), per_level.end());
    }
    if (count == 0) continue;
    params.add_row({to_string(family), std::to_string(count),
                    std::to_string(min_tasks) + "-" + std::to_string(max_tasks),
                    std::to_string(min_edges) + "-" + std::to_string(max_edges),
                    fmt(sum_levels / count, 1), fmt(sum_width / count, 1)});
  }
  std::printf("%s", params.to_text().c_str());
  if (spec.output.csv) std::printf("%s", params.to_csv().c_str());

  std::printf(
      "\n  paper scale: 108 layered + 324 irregular + 100 FFT + 25 Strassen "
      "= 557\n  (this run: %zu; --full regenerates the paper corpus)\n",
      corpus.size());
}

void run_table4(const ScenarioSpec& spec) {
  presets::heading("Table IV: tuned (mindelta, maxdelta, minrho)");
  Table table({"family \\ cluster", "chti", "grillon", "grelon"});
  const int cap = spec.workload.cap_per_family > 0
                      ? spec.workload.cap_per_family
                      : 6;
  for (DagFamily family : {DagFamily::FFT, DagFamily::Strassen,
                           DagFamily::Layered, DagFamily::Irregular}) {
    auto corpus = presets::cap_per_family(
        presets::make_family(family, spec.workload.corpus),
        spec.workload.corpus, cap);
    std::vector<std::string> row{to_string(family)};
    for (const Cluster& cluster : spec.platform.resolve()) {
      TunedParams t = tune(corpus, cluster, spec.threads);
      row.push_back("(" + fmt(t.mindelta, 2) + ", " + fmt(t.maxdelta, 2) +
                    ", " + fmt(t.minrho, 2) + ")");
      std::printf("  tuned %-9s on %-8s: mindelta=%s maxdelta=%s minrho=%s\n",
                  to_string(family).c_str(), cluster.name().c_str(),
                  fmt(t.mindelta, 2).c_str(), fmt(t.maxdelta, 2).c_str(),
                  fmt(t.minrho, 2).c_str());
    }
    table.add_row(row);
  }
  std::printf("%s", table.to_text().c_str());
  if (spec.output.csv) std::printf("%s", table.to_csv().c_str());
  std::printf(
      "\n  paper Table IV (chti/grillon/grelon):\n"
      "    FFT      (-.5,1,.2)   (-.5,1,.2)   (-.25,.75,.4)\n"
      "    Strassen (-.25,.5,.5) (0,1,.4)     (-.25,1,.5)\n"
      "    Layered  (-.5,1,.2)   (-.25,1,.2)  (-.5,1,.2)\n"
      "    Random   (-.75,1,.5)  (-.75,1,.5)  (-.75,1,.4)\n"
      "  exact cell values depend on the generated corpus; the shape to\n"
      "  check is maxdelta ~ 1, negative mindelta, small-to-mid minrho.\n");
}

void run_table5(const ScenarioSpec& spec) {
  auto corpus = spec.workload.resolve(true);
  const auto clusters = spec.platform.resolve();
  std::printf("  running corpus on %zu clusters...\n", clusters.size());
  const std::vector<ExperimentData> per_cluster =
      presets::run_tuned_experiments(corpus, clusters, spec.threads);
  const auto& names = per_cluster.front().algo_names;

  presets::heading("Table V: pairwise comparison (chti / grillon / grelon)");
  Table table({"algorithm", "", "vs HCPA", "vs delta", "vs time-cost",
               "combined (%)"});
  for (std::size_t a = 0; a < names.size(); ++a) {
    const char* rows[3] = {"better", "equal", "worse"};
    for (int r = 0; r < 3; ++r) {
      std::vector<std::string> row{r == 0 ? names[a] : "", rows[r]};
      for (std::size_t b = 0; b < names.size(); ++b) {
        if (a == b) {
          row.push_back("XXX");
          continue;
        }
        std::string cell;
        for (const auto& data : per_cluster) {
          auto c = pairwise_compare(data, a, b);
          int v = r == 0 ? c.better : (r == 1 ? c.equal : c.worse);
          cell += (cell.empty() ? "" : " / ") + std::to_string(v);
        }
        row.push_back(cell);
      }
      std::string comb;
      for (const auto& data : per_cluster) {
        auto f = combined_compare(data, a);
        double v = r == 0 ? f.better : (r == 1 ? f.equal : f.worse);
        comb += (comb.empty() ? "" : " / ") + fmt(100 * v, 1);
      }
      row.push_back(comb);
      table.add_row(row);
    }
  }
  std::printf("%s", table.to_text().c_str());
  if (spec.output.csv) std::printf("%s", table.to_csv().c_str());
  std::printf(
      "\n  paper: ranking {time-cost, delta, HCPA} by best-result counts;\n"
      "  time-cost wins more as cluster size grows, delta is strongest on\n"
      "  small and medium clusters.\n");
}

void run_table6(const ScenarioSpec& spec) {
  auto corpus = spec.workload.resolve(true);
  presets::heading("Table VI: average degradation from best");
  Table table({"cluster", "metric", "HCPA", "delta", "time-cost"});
  const auto clusters = spec.platform.resolve();
  std::printf("  running corpus on %zu clusters...\n", clusters.size());
  const auto per_cluster =
      presets::run_tuned_experiments(corpus, clusters, spec.threads);
  for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
    const Cluster& cluster = clusters[ci];
    const ExperimentData& data = per_cluster[ci];
    Degradation d[3];
    for (std::size_t a = 0; a < 3; ++a) d[a] = degradation_from_best(data, a);
    table.add_row({cluster.name(), "avg over all exp.",
                   fmt_percent(d[0].avg_over_all, 2),
                   fmt_percent(d[1].avg_over_all, 2),
                   fmt_percent(d[2].avg_over_all, 2)});
    table.add_row({"", "# not best", std::to_string(d[0].not_best),
                   std::to_string(d[1].not_best),
                   std::to_string(d[2].not_best)});
    table.add_row({"", "avg over # not best",
                   fmt_percent(d[0].avg_over_not_best, 2),
                   fmt_percent(d[1].avg_over_not_best, 2),
                   fmt_percent(d[2].avg_over_not_best, 2)});
  }
  std::printf("%s", table.to_text().c_str());
  if (spec.output.csv) std::printf("%s", table.to_csv().c_str());
  std::printf(
      "\n  paper: time-cost stays closest to the best (< 6%% over all\n"
      "  experiments, improving with cluster size); delta degrades as the\n"
      "  cluster grows; HCPA reaches > 100%% on large clusters.\n");
}

void run_experiment_kind(const ScenarioSpec& spec) {
  auto corpus = spec.workload.resolve(true);
  Cluster cluster = spec.platform.resolve_one();
  auto data = run_matrix_experiment(spec, corpus, cluster);
  presets::heading("Scenario '" + spec.name + "': " + cluster.name() + ", " +
                   std::to_string(data.entries()) + " workloads x " +
                   std::to_string(data.algos()) + " algorithms");
  constexpr double kTolerance = 1e-6;
  Table table({"algorithm", "avg makespan (s)", "avg work (proc*s)",
               "best in"});
  for (std::size_t a = 0; a < data.algos(); ++a) {
    double sum_makespan = 0, sum_work = 0;
    int best = 0;
    for (std::size_t e = 0; e < data.entries(); ++e) {
      sum_makespan += data.outcome[e][a].makespan;
      sum_work += data.outcome[e][a].work;
      double min_makespan = data.outcome[e][0].makespan;
      for (std::size_t other = 1; other < data.algos(); ++other)
        min_makespan = std::min(min_makespan, data.outcome[e][other].makespan);
      if (data.outcome[e][a].makespan <= min_makespan * (1 + kTolerance))
        ++best;
    }
    const auto n = static_cast<double>(data.entries());
    table.add_row({data.algo_names[a], fmt(sum_makespan / n, 2),
                   fmt(sum_work / n, 1),
                   std::to_string(best) + "/" + std::to_string(data.entries())});
  }
  std::printf("%s", table.to_text().c_str());
  if (spec.output.csv) std::printf("%s", table.to_csv().c_str());
  if (data.entries() <= 24) {
    presets::heading("Per-workload makespans (s)");
    std::vector<std::string> header{"workload"};
    for (const auto& name : data.algo_names) header.push_back(name);
    Table per_entry(header);
    for (std::size_t e = 0; e < data.entries(); ++e) {
      std::vector<std::string> row{data.entry_names[e]};
      for (std::size_t a = 0; a < data.algos(); ++a)
        row.push_back(fmt(data.outcome[e][a].makespan, 2));
      per_entry.add_row(row);
    }
    std::printf("%s", per_entry.to_text().c_str());
    if (spec.output.csv) std::printf("%s", per_entry.to_csv().c_str());
  }
}

void run_single(const ScenarioSpec& spec) {
  auto corpus = spec.workload.resolve(true);
  Cluster cluster = spec.platform.resolve_one();
  for (const CorpusEntry& entry : corpus) {
    const auto algos =
        spec.algorithms.resolve(entry.family, cluster.name());
    for (const AlgoSpec& algo : algos) {
      std::printf("\nworkflow %s: %d tasks, %d edges; platform %s (%d "
                  "nodes)\n",
                  entry.name.c_str(), entry.graph.num_tasks(),
                  entry.graph.num_edges(), cluster.name().c_str(),
                  cluster.num_nodes());
      const Schedule schedule =
          build_schedule(entry.graph, cluster, algo.options);
      TraceSink sink;
      SimulatorOptions sim_options;
      if (spec.output.gantt) sim_options.trace = &sink;
      const SimulationResult result =
          simulate(entry.graph, schedule, cluster, sim_options);
      std::printf(
          "%s: makespan %.2f s (mapper estimate %.2f s), work %.1f proc*s, "
          "network %.1f MiB\n",
          algo.name.c_str(), result.makespan, schedule.estimated_makespan(),
          result.total_work, result.network_bytes / MiB);
      std::printf("%-20s %5s %9s %9s %9s\n", "task", "procs", "ready",
                  "start", "finish");
      for (TaskId t = 0; t < entry.graph.num_tasks(); ++t) {
        const auto& tl = result.timeline[static_cast<std::size_t>(t)];
        std::printf("%-20s %5zu %9.2f %9.2f %9.2f\n",
                    entry.graph.task(t).name.c_str(),
                    schedule.of(t).procs.size(), tl.data_ready, tl.start,
                    tl.finish);
      }
      if (spec.output.gantt) {
        std::vector<std::string> names;
        for (TaskId t = 0; t < entry.graph.num_tasks(); ++t)
          names.push_back(entry.graph.task(t).name);
        presets::heading("Gantt (" + entry.name + ", " + algo.name + ")");
        std::printf("%s", trace_gantt(sink.events(), &names).c_str());
      }
    }
  }
}

// ---- registry ----------------------------------------------------------

struct KindEntry {
  const char* name;
  void (*fn)(const ScenarioSpec&);
  bool traceable;
};

constexpr KindEntry kKinds[] = {
    {"fig2", run_fig2, true},
    {"fig3", run_fig3, true},
    {"fig4", run_fig4, false},
    {"fig5", run_fig5, false},
    {"fig6", run_fig6, true},
    {"fig7", run_fig7, true},
    {"table1", run_table1, false},
    {"table2", run_table2, false},
    {"table3", run_table3, false},
    {"table4", run_table4, false},
    {"table5", run_table5, false},
    {"table6", run_table6, false},
    {"experiment", run_experiment_kind, true},
    {"single", run_single, true},
};

const KindEntry* find_kind(const std::string& kind) {
  for (const KindEntry& entry : kKinds)
    if (kind == entry.name) return &entry;
  return nullptr;
}

const KindEntry& require_kind(const std::string& kind) {
  const KindEntry* entry = find_kind(kind);
  if (entry == nullptr) {
    std::string known;
    for (const KindEntry& k : kKinds)
      known += (known.empty() ? "" : ", ") + std::string(k.name);
    throw Error("unknown scenario kind '" + kind + "' (known: " + known +
                ")");
  }
  return *entry;
}

// ---- trace rendering ---------------------------------------------------

/// The run matrix of a traceable scenario: every (entry, algorithm)
/// pair, with tuned presets resolved per entry family.
struct TraceMatrix {
  Cluster cluster;
  std::vector<CorpusEntry> entries;
  std::vector<std::string> algo_names;
  std::vector<std::vector<SchedulerOptions>> options;  ///< [entry][algo]
};

TraceMatrix trace_matrix(const ScenarioSpec& spec) {
  TraceMatrix m{spec.platform.resolve_one(), spec.workload.resolve(false),
                spec.algorithms.names(), {}};
  m.options.reserve(m.entries.size());
  for (const CorpusEntry& entry : m.entries) {
    const auto algos =
        spec.algorithms.resolve(entry.family, m.cluster.name());
    RATS_REQUIRE(algos.size() == m.algo_names.size(),
                 "algorithm list changed size across families");
    std::vector<SchedulerOptions> row;
    for (const AlgoSpec& algo : algos) row.push_back(algo.options);
    m.options.push_back(std::move(row));
  }
  return m;
}

}  // namespace

std::vector<std::string> kinds() {
  std::vector<std::string> names;
  for (const KindEntry& entry : kKinds) names.emplace_back(entry.name);
  return names;
}

bool kind_supports_trace(const std::string& kind) {
  const KindEntry* entry = find_kind(kind);
  return entry != nullptr && entry->traceable;
}

std::string render_trace(const ScenarioSpec& spec, unsigned threads) {
  RATS_REQUIRE(kind_supports_trace(spec.kind),
               "scenario kind '" + spec.kind + "' does not support tracing");
  const TraceMatrix m = trace_matrix(spec);
  const std::size_t num_algos = m.algo_names.size();
  const std::size_t runs = m.entries.size() * num_algos;

  std::string out = "{\"rats_trace\":1,\"name\":\"" + json_escape(spec.name) +
                    "\",\"kind\":\"" + json_escape(spec.kind) +
                    "\",\"runs\":" + std::to_string(runs) + ",\"spec\":\"" +
                    json_escape(emit_scenario(spec)) + "\"}\n";

  // Each run is independent: schedule + simulate with a private sink,
  // serialize into its own chunk, concatenate in run order.
  std::vector<std::string> chunks(runs);
  parallel_for(runs, [&](std::size_t r) {
    const std::size_t e = r / num_algos;
    const std::size_t a = r % num_algos;
    const CorpusEntry& entry = m.entries[e];
    const Schedule schedule =
        build_schedule(entry.graph, m.cluster, m.options[e][a]);
    TraceSink sink;
    SimulatorOptions sim_options;
    sim_options.trace = &sink;
    const SimulationResult result =
        simulate(entry.graph, schedule, m.cluster, sim_options);
    std::string chunk = "{\"run\":" + std::to_string(r) + ",\"entry\":\"" +
                        json_escape(entry.name) + "\",\"algo\":\"" +
                        json_escape(m.algo_names[a]) + "\",\"cluster\":\"" +
                        json_escape(m.cluster.name()) + "\"}\n";
    for (const TraceEvent& event : sink.events()) {
      chunk += trace_event_line(event);
      chunk += '\n';
    }
    chunk += "{\"run_end\":" + std::to_string(r) +
             ",\"events\":" + std::to_string(sink.size()) +
             ",\"makespan\":" + trace_double(result.makespan) + "}\n";
    chunks[r] = std::move(chunk);
  }, threads);
  for (const std::string& chunk : chunks) out += chunk;
  return out;
}

void run(const ScenarioSpec& spec, const RunOptions& options) {
  ScenarioSpec effective = spec;
  if (options.has_threads) effective.threads = options.threads;
  if (options.csv) effective.output.csv = true;
  if (options.full) effective.workload.corpus.full = true;
  const KindEntry& entry = require_kind(effective.kind);
  // Reject an untraceable kind before spending the report run on it.
  RATS_REQUIRE(options.trace_path.empty() || entry.traceable,
               "scenario kind '" + effective.kind +
                   "' does not support tracing");
  entry.fn(effective);
  if (!options.trace_path.empty()) {
    const std::string text = render_trace(effective, effective.threads);
    std::ofstream out(options.trace_path, std::ios::binary);
    if (!out) throw Error("cannot write trace '" + options.trace_path + "'");
    out << text;
    out.close();
    std::fprintf(stderr, "wrote trace %s\n", options.trace_path.c_str());
  }
}

ScenarioSpec default_spec(const std::string& kind) {
  require_kind(kind);
  ScenarioSpec spec;
  spec.name = kind;
  spec.kind = kind;
  spec.platform.presets = {"grillon"};
  if (kind == "fig4") {
    spec.workload.source = WorkloadSpec::Source::Family;
    spec.workload.family = "fft";
    spec.sweep.mindeltas = tuning_mindeltas();
    spec.sweep.maxdeltas = tuning_maxdeltas();
  } else if (kind == "fig5") {
    spec.workload.source = WorkloadSpec::Source::Family;
    spec.workload.family = "irregular";
    spec.workload.cap_per_family = 16;
    spec.sweep.minrhos = tuning_minrhos();
  } else if (kind == "fig6" || kind == "fig7") {
    spec.algorithms.preset = "tuned";
  } else if (kind == "table2" || kind == "table4") {
    spec.platform.presets = {"chti", "grillon", "grelon"};
    if (kind == "table4") spec.workload.cap_per_family = 6;
  } else if (kind == "table5" || kind == "table6") {
    spec.platform.presets = {"chti", "grillon", "grelon"};
    spec.workload.cap_per_family = 12;
    spec.algorithms.preset = "tuned";
  } else if (kind == "experiment") {
    spec.workload.source = WorkloadSpec::Source::Generate;
    spec.workload.generator = "layered";
    spec.workload.count = 3;
    spec.workload.dag.num_tasks = 40;
    spec.workload.dag.width = 0.5;
    spec.workload.dag.density = 0.5;
    spec.workload.dag.regularity = 0.5;
  } else if (kind == "single") {
    spec.workload.source = WorkloadSpec::Source::Generate;
    spec.workload.generator = "fft";
    spec.workload.count = 1;
    spec.workload.fft_k = 8;
    spec.algorithms.preset.clear();
    spec.algorithms.algos = {presets::naive_algos().back()};
  }
  return spec;
}

}  // namespace rats::scenario
