// Scenario kind registry: maps each scenario kind onto the src/exp/
// runner machinery and builds the structured ReportModel the renderers
// (report/render.hpp) turn into text/CSV/JSON.
//
// Kinds (one per paper artefact plus three generic ones):
//   fig2 fig3 fig6 fig7      corpus x algorithms on one cluster
//   fig4 fig5                parameter sweep grids (paper presets)
//   table1 table2 table3     static/structural reports
//   table4                   full tuning sweeps (Table IV)
//   table5 table6            tuned multi-cluster comparisons
//   experiment               generic corpus x algorithms summary
//   single                   per-task timeline of each workload entry
//   sweep                    generic grid over any RatsParams field
//   robustness               healthy vs [events]-degraded comparison
//
// Execution and rendering are separated: `build_report` executes the
// scenario's run matrix exactly once and returns the model; `run`
// renders the model to stdout (text) and to the [output] artefacts
// (CSV/JSON report files, streamed trace).  The matrix kinds (fig2/3/
// 6/7, experiment, single, sweep) are *traceable*: the RunSession hook
// (exp/session.hpp) attaches a per-run TraceSink inside that single
// pass, so `rats run --trace` never re-simulates — the trace streams
// through trace/writer.hpp while the report data accumulates.
#pragma once

#include <string>
#include <vector>

#include "exp/session.hpp"
#include "report/model.hpp"
#include "scenario/spec.hpp"

namespace rats::scenario {

/// Per-invocation overrides (command line) layered over the spec.
struct RunOptions {
  bool has_threads = false;
  unsigned threads = 0;
  bool csv = false;   ///< force CSV emission on
  bool full = false;  ///< force the paper-scale corpus
  /// Repeat the whole scenario this many times and fail (rats::Error)
  /// if any rendered output byte — text, CSV, JSON or trace — differs
  /// between repetitions.  1 = run once, no comparison.
  int check = 1;
  /// Artefact paths; each overrides the spec's [output] counterpart.
  std::string trace_path;
  std::string report_csv_path;
  std::string report_json_path;
  /// Observability (src/obs/).  `metrics_path` enables the registry and
  /// writes a standalone machine-readable snapshot (plus a typed
  /// metrics section in the CSV/JSON reports); `profile_path` records
  /// pipeline phase spans and writes a Chrome trace-event JSON;
  /// `progress` prints a live stderr heartbeat.  All three leave
  /// stdout and every other artefact byte-identical.
  std::string metrics_path;
  std::string profile_path;
  bool progress = false;
};

/// All registered kinds, in registry order.
std::vector<std::string> kinds();

/// True when `kind` exists and supports trace capture.
bool kind_supports_trace(const std::string& kind);

/// Executes the scenario's run matrix once and returns the structured
/// report.  `session`, when given, observes every (entry, algorithm)
/// run of a traceable kind — the single simulation pass serves report
/// and trace.  Throws rats::Error on unknown kinds, spec/kind
/// mismatches, or a session on an untraceable kind.
report::ReportModel build_report(const ScenarioSpec& spec,
                                 RunSession* session = nullptr);

/// Executes the scenario (one pass) and renders: the text report to
/// stdout, and any [output] / override artefacts — CSV report, JSON
/// report, and a streaming simulation trace (a note per file goes to
/// stderr, keeping stdout byte-identical to an artefact-free run).
void run(const ScenarioSpec& spec, const RunOptions& options = {});

/// Renders the complete trace text (header + runs) for a traceable
/// kind without printing anything.  Deterministic for a given spec —
/// the replay checker's whole contract — and byte-identical to what
/// `run` streams to the trace path.
std::string render_trace(const ScenarioSpec& spec, unsigned threads);

/// The spec the named fig/table bench binary runs by default — also
/// the content of the checked-in scenarios/<kind>.rats files.  Throws
/// on unknown kinds.
ScenarioSpec default_spec(const std::string& kind);

}  // namespace rats::scenario
