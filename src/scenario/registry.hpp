// Scenario kind registry: maps each scenario kind onto the src/exp/
// runner machinery and renders the same reports the fig/table bench
// binaries print.
//
// Kinds (one per paper artefact plus two generic ones):
//   fig2 fig3 fig6 fig7      corpus x algorithms on one cluster
//   fig4 fig5                parameter sweep grids
//   table1 table2 table3     static/structural reports
//   table4                   full tuning sweeps (Table IV)
//   table5 table6            tuned multi-cluster comparisons
//   experiment               generic corpus x algorithms summary
//   single                   per-task timeline of each workload entry
//
// The corpus-x-algorithms kinds (fig2/fig3/fig6/fig7, experiment,
// single) are *traceable*: `run` with a trace path — or `render_trace`
// directly — re-simulates every (entry, algorithm) run with a
// TraceSink attached and serializes the streams as JSON lines behind a
// header that embeds the canonical scenario text, which is exactly
// what trace/replay.hpp needs to re-simulate and diff.
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace rats::scenario {

/// Per-invocation overrides (command line) layered over the spec.
struct RunOptions {
  bool has_threads = false;
  unsigned threads = 0;
  bool csv = false;        ///< force CSV emission on
  bool full = false;       ///< force the paper-scale corpus
  std::string trace_path;  ///< write a JSON-lines trace here (traceable kinds)
};

/// All registered kinds, in registry order.
std::vector<std::string> kinds();

/// True when `kind` exists and supports trace capture.
bool kind_supports_trace(const std::string& kind);

/// Executes the scenario: prints the kind's report to stdout and, when
/// `options.trace_path` is set, re-simulates the runs with tracing and
/// writes the trace file (a note goes to stderr, keeping stdout
/// byte-identical to the untraced run).  Throws rats::Error on unknown
/// kinds, spec/kind mismatches, or tracing an untraceable kind.
void run(const ScenarioSpec& spec, const RunOptions& options = {});

/// Renders the complete trace text (header + runs) for a traceable
/// kind without printing anything.  Deterministic for a given spec —
/// the replay checker's whole contract.
std::string render_trace(const ScenarioSpec& spec, unsigned threads);

/// The spec the named fig/table bench binary runs by default — also
/// the content of the checked-in scenarios/<kind>.rats files.  Throws
/// on unknown kinds.
ScenarioSpec default_spec(const std::string& kind);

}  // namespace rats::scenario
