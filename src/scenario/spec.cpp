#include "scenario/spec.hpp"

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "daggen/kernels.hpp"
#include "io/workflow_io.hpp"
#include "platform/grid5000.hpp"

namespace rats::scenario {

std::vector<Cluster> PlatformSpec::resolve() const {
  std::vector<Cluster> clusters;
  for (const std::string& preset : presets) {
    if (preset == "chti") clusters.push_back(grid5000::chti());
    else if (preset == "grillon") clusters.push_back(grid5000::grillon());
    else if (preset == "grelon") clusters.push_back(grid5000::grelon());
    else
      throw Error("unknown platform preset '" + preset +
                  "' (expected chti, grillon or grelon)");
  }
  if (!clusters.empty()) return clusters;

  const Seconds latency = latency_us * 1e-6;
  const Rate bandwidth = bandwidth_gbps * 1e9 / 8.0;
  if (!cabinet_nodes.empty()) {
    // Uniform cabinet sizes use the homogeneous constructor (its
    // flat_routes()/cabinet arithmetic is the cheaper one); mixed sizes
    // take the heterogeneous prefix-sum path.
    bool uniform = true;
    for (const int n : cabinet_nodes) uniform = uniform && n == cabinet_nodes[0];
    const Seconds up_latency = uplink_latency_us * 1e-6;
    const Rate up_bandwidth = uplink_bandwidth_gbps * 1e9 / 8.0;
    clusters.push_back(
        uniform ? Cluster::hierarchical(
                      name, static_cast<int>(cabinet_nodes.size()),
                      cabinet_nodes[0], gflops * Giga, latency, bandwidth,
                      up_latency, up_bandwidth)
                : Cluster::hierarchical_custom(name, cabinet_nodes,
                                               gflops * Giga, latency,
                                               bandwidth, up_latency,
                                               up_bandwidth));
    return clusters;
  }
  if (nodes <= 0)
    throw Error("platform section needs clusters, nodes or cabinets");
  clusters.push_back(
      Cluster::flat(name, nodes, gflops * Giga, latency, bandwidth));
  return clusters;
}

Cluster PlatformSpec::resolve_one() const {
  auto clusters = resolve();
  RATS_REQUIRE(clusters.size() == 1,
               "this scenario kind runs on exactly one cluster");
  return clusters.front();
}

namespace {

DagFamily family_from_name(const std::string& name) {
  if (name == "layered") return DagFamily::Layered;
  if (name == "irregular") return DagFamily::Irregular;
  if (name == "fft") return DagFamily::FFT;
  if (name == "strassen") return DagFamily::Strassen;
  throw Error("unknown DAG family '" + name +
              "' (expected layered, irregular, fft or strassen)");
}

}  // namespace

std::vector<CorpusEntry> WorkloadSpec::resolve(std::string* announce) const {
  std::vector<CorpusEntry> entries;
  switch (source) {
    case Source::Corpus:
      entries = build_corpus(presets::corpus_options(corpus));
      if (announce)
        *announce += strf("corpus: %zu configurations (%s)\n", entries.size(),
                          corpus.full ? "paper scale"
                                      : "reduced scale; use --full for 557");
      break;
    case Source::Family: {
      const DagFamily fam = family_from_name(family);
      entries = build_family(fam, presets::corpus_options(corpus));
      if (announce)
        *announce +=
            strf("corpus: %zu %s configurations (%s)\n", entries.size(),
                 to_string(fam).c_str(),
                 corpus.full ? "paper scale" : "reduced scale; use --full");
      break;
    }
    case Source::Generate: {
      const DagFamily fam = family_from_name(generator);
      RATS_REQUIRE(count > 0, "generated workload needs count >= 1");
      for (int sample = 0; sample < count; ++sample) {
        Rng rng(generate_seed + static_cast<std::uint64_t>(sample));
        CorpusEntry entry;
        entry.family = fam;
        entry.sample = sample;
        entry.params = dag;
        entry.fft_k = fam == DagFamily::FFT ? fft_k : 0;
        entry.name = generator + "/s" + std::to_string(sample);
        switch (fam) {
          case DagFamily::FFT:
            entry.graph = generate_fft_dag(fft_k, rng);
            break;
          case DagFamily::Strassen:
            entry.graph = generate_strassen_dag(rng);
            break;
          case DagFamily::Layered:
            entry.graph = generate_layered_dag(dag, rng);
            break;
          case DagFamily::Irregular:
            entry.graph = generate_irregular_dag(dag, rng);
            break;
        }
        entries.push_back(std::move(entry));
      }
      if (announce)
        *announce += strf("workload: %d generated %s DAG%s (seed %llu)\n",
                          count, generator.c_str(), count == 1 ? "" : "s",
                          static_cast<unsigned long long>(generate_seed));
      break;
    }
    case Source::File: {
      RATS_REQUIRE(!path.empty(), "file workload needs a path");
      CorpusEntry entry;
      entry.family = DagFamily::Irregular;  // tuned preset fallback family
      entry.name = path;
      entry.graph = load_workflow(path);
      entries.push_back(std::move(entry));
      if (announce)
        *announce += strf("workload: %s (%d tasks, %d edges)\n", path.c_str(),
                          entries.front().graph.num_tasks(),
                          entries.front().graph.num_edges());
      break;
    }
  }
  if (cap_per_family > 0 &&
      (source == Source::Corpus || source == Source::Family))
    entries = presets::cap_per_family(std::move(entries), corpus,
                                      cap_per_family, announce);
  RATS_REQUIRE(!entries.empty(), "workload resolved to zero task graphs");
  return entries;
}

std::vector<AlgoSpec> AlgorithmsSpec::resolve(
    DagFamily family, const std::string& cluster) const {
  if (preset == "naive") return presets::naive_algos();
  if (preset == "tuned") return presets::tuned_algos(family, cluster);
  RATS_REQUIRE(!algos.empty(), "algorithms section resolved to an empty list");
  return algos;
}

std::vector<std::string> AlgorithmsSpec::names() const {
  std::vector<std::string> names;
  if (preset == "naive" || preset == "tuned") {
    for (const AlgoSpec& a : presets::naive_algos()) names.push_back(a.name);
    return names;
  }
  for (const AlgoSpec& a : algos) names.push_back(a.name);
  return names;
}

PlatformTimeline EventsSpec::resolve(const Cluster& cluster,
                                     const std::string& context) const {
  PlatformTimeline resolved = timeline;
  resolved.validate(cluster, context);
  resolved.sort();
  return resolved;
}

}  // namespace rats::scenario
