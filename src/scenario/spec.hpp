// Declarative scenario model: platforms, workloads, algorithms, sweep
// grids and output selection as *data* rather than compiled bench
// binaries.
//
// A scenario is written as a `.rats` text file (see scenario/parser.hpp
// for the grammar), bound into the ScenarioSpec struct below, and
// executed through the kind registry (scenario/registry.hpp), which
// maps each scenario kind onto the src/exp/ runner machinery.  Every
// fig/table reproduction binary is expressible this way — the binaries
// themselves build their default spec and run it through the same
// path, so `rats run scenarios/fig2.rats` and `fig2_naive_makespan`
// print byte-identical output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "daggen/corpus.hpp"
#include "daggen/random_dag.hpp"
#include "exp/experiment.hpp"
#include "exp/presets.hpp"
#include "platform/cluster.hpp"
#include "platform/timeline.hpp"

namespace rats::scenario {

/// Platform section: either a list of named Grid'5000 presets (several
/// for multi-cluster kinds like table5/table6) or one custom cluster —
/// flat (`nodes`) or hierarchical (`cabinets`, possibly heterogeneous
/// per-cabinet node counts).
struct PlatformSpec {
  std::vector<std::string> presets;  ///< "chti" | "grillon" | "grelon"
  std::string name = "custom";
  int nodes = 0;                     ///< custom flat cluster
  std::vector<int> cabinet_nodes;    ///< custom hierarchical cluster
  double gflops = 1.0;
  double latency_us = 100.0;
  double bandwidth_gbps = 1.0;
  double uplink_latency_us = 100.0;
  double uplink_bandwidth_gbps = 1.0;

  bool is_custom() const { return presets.empty(); }
  /// All clusters of the section (presets in order, or the one custom
  /// cluster).  Throws on unknown preset names or empty sections.
  std::vector<Cluster> resolve() const;
  /// The single cluster of the section; throws when it names several.
  Cluster resolve_one() const;
};

/// Workload section: where the task graphs come from.
struct WorkloadSpec {
  enum class Source { Corpus, Family, Generate, File };
  Source source = Source::Corpus;

  /// Corpus / Family sources (the paper's Table III corpus).
  presets::CorpusConfig corpus;
  std::string family = "fft";  ///< Family source only
  /// Keep at most this many entries per family (0 = no cap; ignored
  /// with corpus.full, mirroring the benches' --full behaviour).
  int cap_per_family = 0;

  /// Generate source: `count` samples of one generator.
  std::string generator = "layered";  ///< fft|strassen|layered|irregular
  int count = 1;
  int fft_k = 8;
  RandomDagParams dag;
  std::uint64_t generate_seed = 42;

  /// File source: a workflow file for src/io/workflow_io.hpp.
  std::string path;

  /// Materializes the workload.  `announce`, when given, receives the
  /// corpus-size lines the legacy bench binaries printed (the report
  /// models capture them as text items; nullptr stays silent).
  std::vector<CorpusEntry> resolve(std::string* announce = nullptr) const;
};

/// Algorithms section: a named preset or an explicit ordered list.
///   naive — HCPA, delta(-0.5,0.5), time-cost(0.5)   (Figures 2-3)
///   tuned — HCPA + Table IV parameters per family   (Figures 6-7)
struct AlgorithmsSpec {
  std::string preset = "naive";  ///< "naive" | "tuned" | "" (explicit)
  std::vector<AlgoSpec> algos;   ///< explicit list (preset empty)

  bool tuned() const { return preset == "tuned"; }
  /// Algorithm specs for entries of `family` on `cluster` (tuned
  /// presets pick the family's Table IV cell).
  std::vector<AlgoSpec> resolve(DagFamily family,
                                const std::string& cluster) const;
  /// Algorithm display names (family-independent).
  std::vector<std::string> names() const;
};

/// Sweep section: parameter grids for the sweep kinds.  fig4/fig5 read
/// their grids from here (empty lists fall back to the paper's grids);
/// the generic `kind = "sweep"` crosses every non-empty grid over
/// `base` (any RatsParams field on any workload source — fig4 is the
/// (mindelta, maxdelta) x delta preset of it, fig5 the (minrho,
/// packing) x time-cost one).
struct SweepSpec {
  std::vector<double> mindeltas;
  std::vector<double> maxdeltas;
  std::vector<double> minrhos;
  std::vector<bool> packings;  ///< generic sweep only
  /// Base algorithm the generic sweep perturbs: "delta" | "time-cost".
  std::string base = "delta";
  /// Platform-event axes (generic sweep only): each grid value rewrites
  /// the factor / time of *every* `[event]` in the spec's timeline, so
  /// any event parameter sweeps like a scheduler parameter.
  std::vector<double> event_factors;
  std::vector<double> event_ats;

  /// True when no grid is given (the generic sweep kind rejects this).
  bool empty() const {
    return mindeltas.empty() && maxdeltas.empty() && minrhos.empty() &&
           packings.empty() && event_factors.empty() && event_ats.empty();
  }
  /// True when an event axis is present (needs a non-empty [events]).
  bool sweeps_events() const {
    return !event_factors.empty() || !event_ats.empty();
  }
};

/// Events section: the fault-injection timeline ([events] policy plus
/// repeated [event] sections).  An empty timeline is byte-identical to
/// no section at all — canonical emission drops it, so healthy specs
/// keep their trace headers (and goldens) stable.
struct EventsSpec {
  PlatformTimeline timeline;

  bool empty() const { return timeline.empty(); }
  /// Time-sorted, cluster-validated timeline ready for the simulator.
  /// `context` prefixes validation errors (typically file:line).
  PlatformTimeline resolve(const Cluster& cluster,
                           const std::string& context = "") const;
};

/// Output section.  The report always renders to stdout as text; the
/// paths write additional artefacts of the same ReportModel / run.
struct OutputSpec {
  bool csv = false;    ///< also emit CSV after each table on stdout
  bool gantt = false;  ///< print a Gantt table per run (kind "single")
  std::string report_csv;   ///< write the CSV report rendering here
  std::string report_json;  ///< write the JSON report rendering here
  std::string trace;        ///< stream a simulation trace here (traceable kinds)
  bool trace_gzip = false;  ///< gzip the trace stream (needs zlib at build)
  /// Source line of each path key (0 = not from a spec file) — lets the
  /// runner report unwritable paths as file:line diagnostics up front.
  int report_csv_line = 0;
  int report_json_line = 0;
  int trace_line = 0;
};

/// One fully-described scenario.
struct ScenarioSpec {
  std::string name;
  std::string kind;
  unsigned threads = 0;  ///< worker threads (0 = hardware concurrency)
  PlatformSpec platform;
  WorkloadSpec workload;
  AlgorithmsSpec algorithms;
  SweepSpec sweep;
  EventsSpec events;
  OutputSpec output;
  /// Path of the spec file this came from ("" for built specs) — used
  /// only for diagnostics, never emitted.
  std::string origin;
};

}  // namespace rats::scenario
