#include "dag/graph_algorithms.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rats {

std::vector<TaskId> topological_order(const TaskGraph& g) {
  g.validate();
  const auto n = static_cast<std::size_t>(g.num_tasks());
  std::vector<std::int32_t> indegree(n);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    indegree[static_cast<std::size_t>(t)] =
        static_cast<std::int32_t>(g.in_edges(t).size());

  // A sorted frontier gives a canonical order: among ready tasks the
  // smallest id goes first.  The frontier is kept as a min-heap.
  std::vector<TaskId> heap;
  auto cmp = [](TaskId a, TaskId b) { return a > b; };
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (indegree[static_cast<std::size_t>(t)] == 0) heap.push_back(t);
  std::make_heap(heap.begin(), heap.end(), cmp);

  std::vector<TaskId> order;
  order.reserve(n);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const TaskId t = heap.back();
    heap.pop_back();
    order.push_back(t);
    for (EdgeId e : g.out_edges(t)) {
      const TaskId dst = g.edge(e).dst;
      if (--indegree[static_cast<std::size_t>(dst)] == 0) {
        heap.push_back(dst);
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
  RATS_REQUIRE(order.size() == n, "cycle detected in topological sort");
  return order;
}

std::vector<std::int32_t> task_levels(const TaskGraph& g) {
  const auto order = topological_order(g);
  std::vector<std::int32_t> level(static_cast<std::size_t>(g.num_tasks()), 0);
  for (TaskId t : order)
    for (EdgeId e : g.in_edges(t)) {
      const TaskId src = g.edge(e).src;
      level[static_cast<std::size_t>(t)] =
          std::max(level[static_cast<std::size_t>(t)],
                   level[static_cast<std::size_t>(src)] + 1);
    }
  return level;
}

std::vector<std::vector<TaskId>> tasks_by_level(const TaskGraph& g) {
  const auto level = task_levels(g);
  const auto depth =
      level.empty() ? 0 : *std::max_element(level.begin(), level.end()) + 1;
  std::vector<std::vector<TaskId>> grouped(static_cast<std::size_t>(depth));
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    grouped[static_cast<std::size_t>(level[static_cast<std::size_t>(t)])]
        .push_back(t);
  return grouped;
}

std::vector<double> bottom_levels(const TaskGraph& g,
                                  const NodeCostFn& node_cost,
                                  const EdgeCostFn& edge_cost) {
  const auto order = topological_order(g);
  std::vector<double> bl(static_cast<std::size_t>(g.num_tasks()), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double tail = 0.0;
    for (EdgeId e : g.out_edges(t)) {
      const TaskId dst = g.edge(e).dst;
      tail = std::max(tail, edge_cost(e) + bl[static_cast<std::size_t>(dst)]);
    }
    bl[static_cast<std::size_t>(t)] = node_cost(t) + tail;
  }
  return bl;
}

std::vector<double> top_levels(const TaskGraph& g, const NodeCostFn& node_cost,
                               const EdgeCostFn& edge_cost) {
  const auto order = topological_order(g);
  std::vector<double> tl(static_cast<std::size_t>(g.num_tasks()), 0.0);
  for (TaskId t : order) {
    double head = 0.0;
    for (EdgeId e : g.in_edges(t)) {
      const TaskId src = g.edge(e).src;
      head = std::max(head, tl[static_cast<std::size_t>(src)] +
                                node_cost(src) + edge_cost(e));
    }
    tl[static_cast<std::size_t>(t)] = head;
  }
  return tl;
}

CriticalPath critical_path(const TaskGraph& g, const NodeCostFn& node_cost,
                           const EdgeCostFn& edge_cost) {
  const auto bl = bottom_levels(g, node_cost, edge_cost);
  CriticalPath cp;

  // Start from the entry with the largest bottom level (ties: lowest id).
  TaskId current = kInvalidTask;
  for (TaskId t : g.entry_tasks()) {
    if (current == kInvalidTask ||
        bl[static_cast<std::size_t>(t)] > bl[static_cast<std::size_t>(current)])
      current = t;
  }
  RATS_REQUIRE(current != kInvalidTask, "graph has no entry task");
  cp.length = bl[static_cast<std::size_t>(current)];

  // Walk down: at each step pick the successor that realizes the
  // recurrence bl(t) = cost(t) + max(edge + bl(succ)).
  while (current != kInvalidTask) {
    cp.tasks.push_back(current);
    const double tail =
        bl[static_cast<std::size_t>(current)] - node_cost(current);
    TaskId next = kInvalidTask;
    double best_gap = 1e-9 * std::max(1.0, cp.length);
    for (EdgeId e : g.out_edges(current)) {
      const TaskId dst = g.edge(e).dst;
      const double gap =
          std::abs(edge_cost(e) + bl[static_cast<std::size_t>(dst)] - tail);
      if (gap < best_gap) {
        best_gap = gap;
        next = dst;
      }
    }
    current = next;
  }
  return cp;
}

double total_node_cost(const TaskGraph& g, const NodeCostFn& node_cost) {
  double total = 0.0;
  for (TaskId t = 0; t < g.num_tasks(); ++t) total += node_cost(t);
  return total;
}

}  // namespace rats
