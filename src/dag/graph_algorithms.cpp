#include "dag/graph_algorithms.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rats {

std::vector<TaskId> topological_order(const TaskGraph& g) {
  return g.topo_order();
}

std::vector<std::int32_t> task_levels(const TaskGraph& g) {
  const std::vector<TaskId>& order = g.topo_order();
  std::vector<std::int32_t> level(static_cast<std::size_t>(g.num_tasks()), 0);
  for (TaskId t : order)
    for (EdgeId e : g.in_edges(t)) {
      const TaskId src = g.edge(e).src;
      level[static_cast<std::size_t>(t)] =
          std::max(level[static_cast<std::size_t>(t)],
                   level[static_cast<std::size_t>(src)] + 1);
    }
  return level;
}

std::vector<std::vector<TaskId>> tasks_by_level(const TaskGraph& g) {
  const auto level = task_levels(g);
  const auto depth =
      level.empty() ? 0 : *std::max_element(level.begin(), level.end()) + 1;
  std::vector<std::vector<TaskId>> grouped(static_cast<std::size_t>(depth));
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    grouped[static_cast<std::size_t>(level[static_cast<std::size_t>(t)])]
        .push_back(t);
  return grouped;
}

std::vector<double> bottom_levels(const TaskGraph& g,
                                  const NodeCostFn& node_cost,
                                  const EdgeCostFn& edge_cost) {
  std::vector<double> bl;
  bottom_levels_into(g, node_cost, edge_cost, bl);
  return bl;
}

std::vector<double> top_levels(const TaskGraph& g, const NodeCostFn& node_cost,
                               const EdgeCostFn& edge_cost) {
  const std::vector<TaskId>& order = g.topo_order();
  std::vector<double> tl(static_cast<std::size_t>(g.num_tasks()), 0.0);
  for (TaskId t : order) {
    double head = 0.0;
    for (EdgeId e : g.in_edges(t)) {
      const TaskId src = g.edge(e).src;
      head = std::max(head, tl[static_cast<std::size_t>(src)] +
                                node_cost(src) + edge_cost(e));
    }
    tl[static_cast<std::size_t>(t)] = head;
  }
  return tl;
}

CriticalPath critical_path(const TaskGraph& g, const NodeCostFn& node_cost,
                           const EdgeCostFn& edge_cost) {
  CriticalPath cp;
  std::vector<double> bl;
  critical_path_into(g, node_cost, edge_cost, bl, cp);
  return cp;
}

double total_node_cost(const TaskGraph& g, const NodeCostFn& node_cost) {
  double total = 0.0;
  for (TaskId t = 0; t < g.num_tasks(); ++t) total += node_cost(t);
  return total;
}

}  // namespace rats
