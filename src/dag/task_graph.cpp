#include "dag/task_graph.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace rats {

TaskId TaskGraph::add_task(Task task) {
  RATS_REQUIRE(task.data_elems >= 0, "dataset size must be non-negative");
  RATS_REQUIRE(task.flops >= 0, "flops must be non-negative");
  RATS_REQUIRE(task.alpha >= 0.0 && task.alpha <= 1.0,
               "alpha must be in [0,1]");
  tasks_.push_back(std::move(task));
  in_.emplace_back();
  out_.emplace_back();
  invalidate_topo_cache();
  return num_tasks() - 1;
}

void TaskGraph::invalidate_topo_cache() {
  if (topo_cache_ && topo_cache_->computed.load(std::memory_order_acquire))
    topo_cache_ = std::make_shared<TopoCache>();
}

TaskId TaskGraph::add_task(std::string name, double m, double a, double alpha) {
  return add_task(Task{std::move(name), m, a * m, alpha});
}

EdgeId TaskGraph::add_edge(TaskId src, TaskId dst, Bytes bytes) {
  check_task(src);
  check_task(dst);
  RATS_REQUIRE(src != dst, "self-loop edges are not allowed");
  RATS_REQUIRE(bytes >= 0, "edge volume must be non-negative");
  const EdgeId id = num_edges();
  edges_.push_back(Edge{src, dst, bytes});
  out_[static_cast<std::size_t>(src)].push_back(id);
  in_[static_cast<std::size_t>(dst)].push_back(id);
  invalidate_topo_cache();
  return id;
}

const std::vector<TaskId>& TaskGraph::topo_order() const {
  if (!topo_cache_) topo_cache_ = std::make_shared<TopoCache>();  // moved-from
  TopoCache& cache = *topo_cache_;
  std::call_once(cache.once, [&] {
    validate();
    const auto n = static_cast<std::size_t>(num_tasks());
    std::vector<std::int32_t> indegree(n);
    for (TaskId t = 0; t < num_tasks(); ++t)
      indegree[static_cast<std::size_t>(t)] =
          static_cast<std::int32_t>(in_edges(t).size());

    // A sorted frontier gives a canonical order: among ready tasks the
    // smallest id goes first.  The frontier is kept as a min-heap.
    std::vector<TaskId> heap;
    auto cmp = [](TaskId a, TaskId b) { return a > b; };
    for (TaskId t = 0; t < num_tasks(); ++t)
      if (indegree[static_cast<std::size_t>(t)] == 0) heap.push_back(t);
    std::make_heap(heap.begin(), heap.end(), cmp);

    std::vector<TaskId>& order = cache.order;
    order.reserve(n);
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      const TaskId t = heap.back();
      heap.pop_back();
      order.push_back(t);
      for (EdgeId e : out_edges(t)) {
        const TaskId dst = edge(e).dst;
        if (--indegree[static_cast<std::size_t>(dst)] == 0) {
          heap.push_back(dst);
          std::push_heap(heap.begin(), heap.end(), cmp);
        }
      }
    }
    RATS_REQUIRE(order.size() == n, "cycle detected in topological sort");
    cache.computed.store(true, std::memory_order_release);
  });
  return cache.order;
}

const Edge& TaskGraph::edge(EdgeId id) const {
  RATS_REQUIRE(id >= 0 && id < num_edges(), "edge id out of range");
  return edges_[static_cast<std::size_t>(id)];
}

std::span<const EdgeId> TaskGraph::in_edges(TaskId id) const {
  return in_[check_task(id)];
}

std::span<const EdgeId> TaskGraph::out_edges(TaskId id) const {
  return out_[check_task(id)];
}

std::vector<TaskId> TaskGraph::predecessors(TaskId id) const {
  std::vector<TaskId> result;
  result.reserve(in_edges(id).size());
  for (EdgeId e : in_edges(id)) result.push_back(edge(e).src);
  return result;
}

std::vector<TaskId> TaskGraph::successors(TaskId id) const {
  std::vector<TaskId> result;
  result.reserve(out_edges(id).size());
  for (EdgeId e : out_edges(id)) result.push_back(edge(e).dst);
  return result;
}

std::vector<TaskId> TaskGraph::entry_tasks() const {
  std::vector<TaskId> result;
  for (TaskId t = 0; t < num_tasks(); ++t)
    if (in_[static_cast<std::size_t>(t)].empty()) result.push_back(t);
  return result;
}

std::vector<TaskId> TaskGraph::exit_tasks() const {
  std::vector<TaskId> result;
  for (TaskId t = 0; t < num_tasks(); ++t)
    if (out_[static_cast<std::size_t>(t)].empty()) result.push_back(t);
  return result;
}

Bytes TaskGraph::input_bytes(TaskId id) const {
  Bytes total = 0;
  for (EdgeId e : in_edges(id)) total += edge(e).bytes;
  return total;
}

bool TaskGraph::is_acyclic() const {
  // Kahn's algorithm: the graph is acyclic iff all tasks get popped.
  std::vector<std::int32_t> indegree(tasks_.size());
  for (std::size_t t = 0; t < tasks_.size(); ++t)
    indegree[t] = static_cast<std::int32_t>(in_[t].size());
  std::vector<TaskId> stack;
  for (TaskId t = 0; t < num_tasks(); ++t)
    if (indegree[static_cast<std::size_t>(t)] == 0) stack.push_back(t);
  std::size_t popped = 0;
  while (!stack.empty()) {
    const TaskId t = stack.back();
    stack.pop_back();
    ++popped;
    for (EdgeId e : out_edges(t)) {
      const TaskId dst = edge(e).dst;
      if (--indegree[static_cast<std::size_t>(dst)] == 0) stack.push_back(dst);
    }
  }
  return popped == tasks_.size();
}

void TaskGraph::validate() const {
  RATS_REQUIRE(num_tasks() > 0, "graph has no tasks");
  RATS_REQUIRE(is_acyclic(), "graph contains a cycle");
}

std::string TaskGraph::to_dot() const {
  std::ostringstream out;
  out << "digraph application {\n  rankdir=TB;\n";
  for (TaskId t = 0; t < num_tasks(); ++t) {
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    out << "  n" << t << " [label=\"" << task.name << "\\nm="
        << task.data_elems << " flops=" << task.flops << "\\nalpha="
        << task.alpha << "\"];\n";
  }
  for (const Edge& e : edges_)
    out << "  n" << e.src << " -> n" << e.dst << " [label=\"" << e.bytes
        << "B\"];\n";
  out << "}\n";
  return out.str();
}

std::size_t TaskGraph::check_task(TaskId id) const {
  RATS_REQUIRE(id >= 0 && id < num_tasks(), "task id out of range");
  return static_cast<std::size_t>(id);
}

}  // namespace rats
