// Graph algorithms on application DAGs: topological order, levels,
// top/bottom levels and the critical path.
//
// Node and edge weights are supplied by callables so the same routines
// serve the allocation step (weights depend on the current allocation)
// and the mapping step (static priorities).
//
// The schedulers re-evaluate these under changing weights hundreds of
// times per schedule build, so the structural invariants are memoized:
// the topological order comes from `TaskGraph::topo_order()` (computed
// once per graph, shared across all algorithms evaluating it), and the
// `*_into` function templates inline the cost callables and fill
// caller-owned scratch — a critical-path recomputation allocates
// nothing and re-derives nothing structural.  The `std::function`
// overloads remain as convenience wrappers.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "dag/task_graph.hpp"

namespace rats {

/// Time cost of a task under the weighting in effect.
using NodeCostFn = std::function<double(TaskId)>;
/// Time cost of traversing an edge (estimated redistribution time).
using EdgeCostFn = std::function<double(EdgeId)>;

/// A topological order of all task ids (deterministic: ties broken by
/// ascending id).  Throws if the graph is cyclic.  Returns a copy of
/// the graph's cached order; hot paths use `g.topo_order()` directly.
std::vector<TaskId> topological_order(const TaskGraph& g);

/// Structural level of every task: entries are level 0, otherwise
/// 1 + max(level of predecessors) — the longest-path depth.
std::vector<std::int32_t> task_levels(const TaskGraph& g);

/// Tasks grouped by structural level, level 0 first.
std::vector<std::vector<TaskId>> tasks_by_level(const TaskGraph& g);

/// Fills `bl` with the bottom level of every task: node_cost(t) plus
/// the maximum over successors s of edge_cost(t->s) + bottom_level(s).
/// This is each task's distance to the end of the application, the
/// list-scheduling priority used by CPA/HCPA/RATS.
template <typename NodeF, typename EdgeF>
void bottom_levels_into(const TaskGraph& g, NodeF&& node_cost,
                        EdgeF&& edge_cost, std::vector<double>& bl) {
  const std::vector<TaskId>& order = g.topo_order();
  bl.assign(static_cast<std::size_t>(g.num_tasks()), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double tail = 0.0;
    for (EdgeId e : g.out_edges(t)) {
      const TaskId dst = g.edge(e).dst;
      tail = std::max(tail, edge_cost(e) + bl[static_cast<std::size_t>(dst)]);
    }
    bl[static_cast<std::size_t>(t)] = node_cost(t) + tail;
  }
}

/// Bottom levels as a fresh vector (convenience wrapper).
std::vector<double> bottom_levels(const TaskGraph& g, const NodeCostFn& node_cost,
                                  const EdgeCostFn& edge_cost);

/// Scratch for incremental bottom-level maintenance (see
/// bottom_levels_update).  Reusable across calls on the same graph;
/// resizing the graph invalidates it (the update re-derives it then).
struct BottomLevelDelta {
  std::vector<std::size_t> pos;      ///< topo position per task
  std::vector<std::uint32_t> mark;   ///< epoch stamp: bl moved this round
  std::uint32_t epoch = 0;
};

/// Incremental form of bottom_levels_into after exactly one task's
/// node cost changed (edge costs unchanged): walks the reverse
/// topological order from `changed` towards the entries and recomputes
/// a task only when its own cost changed or some successor's bottom
/// level moved.  The recomputation is the same expression over the
/// same successor order as the full pass, and untouched tasks keep
/// their previous values, so the result is bitwise identical to
/// recomputing from scratch — the CPA allocation loop (one +1
/// allocation per iteration) leans on exactly that.
template <typename NodeF, typename EdgeF>
void bottom_levels_update(const TaskGraph& g, NodeF&& node_cost,
                          EdgeF&& edge_cost, std::vector<double>& bl,
                          TaskId changed, BottomLevelDelta& scratch) {
  const std::vector<TaskId>& order = g.topo_order();
  const auto n = static_cast<std::size_t>(g.num_tasks());
  RATS_REQUIRE(bl.size() == n, "bottom levels not initialized");
  if (scratch.pos.size() != n) {
    scratch.pos.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i)
      scratch.pos[static_cast<std::size_t>(order[i])] = i;
    scratch.mark.assign(n, 0);
    scratch.epoch = 0;
  }
  const std::uint32_t epoch = ++scratch.epoch;
  for (std::size_t i = scratch.pos[static_cast<std::size_t>(changed)] + 1;
       i-- > 0;) {
    const TaskId t = order[i];
    if (t != changed) {
      bool affected = false;
      for (EdgeId e : g.out_edges(t)) {
        if (scratch.mark[static_cast<std::size_t>(g.edge(e).dst)] == epoch) {
          affected = true;
          break;
        }
      }
      if (!affected) continue;
    }
    // Mirror bottom_levels_into's accumulation exactly (same edge
    // order, same max/add sequence) so recomputed values match bitwise.
    double tail = 0.0;
    for (EdgeId e : g.out_edges(t)) {
      const TaskId dst = g.edge(e).dst;
      tail = std::max(tail, edge_cost(e) + bl[static_cast<std::size_t>(dst)]);
    }
    const double value = node_cost(t) + tail;
    if (value != bl[static_cast<std::size_t>(t)]) {
      bl[static_cast<std::size_t>(t)] = value;
      scratch.mark[static_cast<std::size_t>(t)] = epoch;
    }
  }
}

/// Top level: longest weighted path from any entry to just before t.
std::vector<double> top_levels(const TaskGraph& g, const NodeCostFn& node_cost,
                               const EdgeCostFn& edge_cost);

/// Result of a critical path computation.
struct CriticalPath {
  double length{};            ///< C-infinity: weight of the heaviest path
  std::vector<TaskId> tasks;  ///< tasks on that path, entry to exit
};

/// The critical path read off already-computed bottom levels `bl`
/// (ties broken deterministically by task id); `cp` is overwritten.
/// Split out so the allocation loop can maintain `bl` incrementally
/// (bottom_levels_update) and still extract the path each iteration.
template <typename NodeF, typename EdgeF>
void critical_path_from_levels(const TaskGraph& g, NodeF&& node_cost,
                               EdgeF&& edge_cost,
                               const std::vector<double>& bl,
                               CriticalPath& cp) {
  cp.tasks.clear();

  // Start from the entry with the largest bottom level (ties: lowest
  // id — entries are scanned in id order).
  TaskId current = kInvalidTask;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!g.in_edges(t).empty()) continue;
    if (current == kInvalidTask ||
        bl[static_cast<std::size_t>(t)] > bl[static_cast<std::size_t>(current)])
      current = t;
  }
  RATS_REQUIRE(current != kInvalidTask, "graph has no entry task");
  cp.length = bl[static_cast<std::size_t>(current)];

  // Walk down: at each step pick the successor that realizes the
  // recurrence bl(t) = cost(t) + max(edge + bl(succ)).
  while (current != kInvalidTask) {
    cp.tasks.push_back(current);
    const double tail =
        bl[static_cast<std::size_t>(current)] - node_cost(current);
    TaskId next = kInvalidTask;
    double best_gap = 1e-9 * std::max(1.0, cp.length);
    for (EdgeId e : g.out_edges(current)) {
      const TaskId dst = g.edge(e).dst;
      const double gap =
          std::abs(edge_cost(e) + bl[static_cast<std::size_t>(dst)] - tail);
      if (gap < best_gap) {
        best_gap = gap;
        next = dst;
      }
    }
    current = next;
  }
}

/// The critical path under the given weights.  `bl` is scratch for the
/// bottom levels; `cp` is overwritten.  Reuses every buffer, so
/// repeated calls allocate nothing.
template <typename NodeF, typename EdgeF>
void critical_path_into(const TaskGraph& g, NodeF&& node_cost,
                        EdgeF&& edge_cost, std::vector<double>& bl,
                        CriticalPath& cp) {
  bottom_levels_into(g, node_cost, edge_cost, bl);
  critical_path_from_levels(g, node_cost, edge_cost, bl, cp);
}

/// The critical path as a fresh result (convenience wrapper).
CriticalPath critical_path(const TaskGraph& g, const NodeCostFn& node_cost,
                           const EdgeCostFn& edge_cost);

/// Sum over all tasks of node_cost(t) (used for the average-area bound).
double total_node_cost(const TaskGraph& g, const NodeCostFn& node_cost);

}  // namespace rats
