// Graph algorithms on application DAGs: topological order, levels,
// top/bottom levels and the critical path.
//
// Node and edge weights are supplied by callables so the same routines
// serve the allocation step (weights depend on the current allocation)
// and the mapping step (static priorities).
#pragma once

#include <functional>
#include <vector>

#include "dag/task_graph.hpp"

namespace rats {

/// Time cost of a task under the weighting in effect.
using NodeCostFn = std::function<double(TaskId)>;
/// Time cost of traversing an edge (estimated redistribution time).
using EdgeCostFn = std::function<double(EdgeId)>;

/// A topological order of all task ids (deterministic: ties broken by
/// ascending id).  Throws if the graph is cyclic.
std::vector<TaskId> topological_order(const TaskGraph& g);

/// Structural level of every task: entries are level 0, otherwise
/// 1 + max(level of predecessors) — the longest-path depth.
std::vector<std::int32_t> task_levels(const TaskGraph& g);

/// Tasks grouped by structural level, level 0 first.
std::vector<std::vector<TaskId>> tasks_by_level(const TaskGraph& g);

/// Bottom level of every task: node_cost(t) plus the maximum over
/// successors s of edge_cost(t->s) + bottom_level(s).  This is each
/// task's distance to the end of the application, the list-scheduling
/// priority used by CPA/HCPA/RATS.
std::vector<double> bottom_levels(const TaskGraph& g, const NodeCostFn& node_cost,
                                  const EdgeCostFn& edge_cost);

/// Top level: longest weighted path from any entry to just before t.
std::vector<double> top_levels(const TaskGraph& g, const NodeCostFn& node_cost,
                               const EdgeCostFn& edge_cost);

/// Result of a critical path computation.
struct CriticalPath {
  double length{};            ///< C-infinity: weight of the heaviest path
  std::vector<TaskId> tasks;  ///< tasks on that path, entry to exit
};

/// The critical path under the given weights; ties broken
/// deterministically by task id.
CriticalPath critical_path(const TaskGraph& g, const NodeCostFn& node_cost,
                           const EdgeCostFn& edge_cost);

/// Sum over all tasks of node_cost(t) (used for the average-area bound).
double total_node_cost(const TaskGraph& g, const NodeCostFn& node_cost);

}  // namespace rats
