// Graph algorithms on application DAGs: topological order, levels,
// top/bottom levels and the critical path.
//
// Node and edge weights are supplied by callables so the same routines
// serve the allocation step (weights depend on the current allocation)
// and the mapping step (static priorities).
//
// The schedulers re-evaluate these under changing weights hundreds of
// times per schedule build, so the structural invariants are memoized:
// the topological order comes from `TaskGraph::topo_order()` (computed
// once per graph, shared across all algorithms evaluating it), and the
// `*_into` function templates inline the cost callables and fill
// caller-owned scratch — a critical-path recomputation allocates
// nothing and re-derives nothing structural.  The `std::function`
// overloads remain as convenience wrappers.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "dag/task_graph.hpp"

namespace rats {

/// Time cost of a task under the weighting in effect.
using NodeCostFn = std::function<double(TaskId)>;
/// Time cost of traversing an edge (estimated redistribution time).
using EdgeCostFn = std::function<double(EdgeId)>;

/// A topological order of all task ids (deterministic: ties broken by
/// ascending id).  Throws if the graph is cyclic.  Returns a copy of
/// the graph's cached order; hot paths use `g.topo_order()` directly.
std::vector<TaskId> topological_order(const TaskGraph& g);

/// Structural level of every task: entries are level 0, otherwise
/// 1 + max(level of predecessors) — the longest-path depth.
std::vector<std::int32_t> task_levels(const TaskGraph& g);

/// Tasks grouped by structural level, level 0 first.
std::vector<std::vector<TaskId>> tasks_by_level(const TaskGraph& g);

/// Fills `bl` with the bottom level of every task: node_cost(t) plus
/// the maximum over successors s of edge_cost(t->s) + bottom_level(s).
/// This is each task's distance to the end of the application, the
/// list-scheduling priority used by CPA/HCPA/RATS.
template <typename NodeF, typename EdgeF>
void bottom_levels_into(const TaskGraph& g, NodeF&& node_cost,
                        EdgeF&& edge_cost, std::vector<double>& bl) {
  const std::vector<TaskId>& order = g.topo_order();
  bl.assign(static_cast<std::size_t>(g.num_tasks()), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double tail = 0.0;
    for (EdgeId e : g.out_edges(t)) {
      const TaskId dst = g.edge(e).dst;
      tail = std::max(tail, edge_cost(e) + bl[static_cast<std::size_t>(dst)]);
    }
    bl[static_cast<std::size_t>(t)] = node_cost(t) + tail;
  }
}

/// Bottom levels as a fresh vector (convenience wrapper).
std::vector<double> bottom_levels(const TaskGraph& g, const NodeCostFn& node_cost,
                                  const EdgeCostFn& edge_cost);

/// Top level: longest weighted path from any entry to just before t.
std::vector<double> top_levels(const TaskGraph& g, const NodeCostFn& node_cost,
                               const EdgeCostFn& edge_cost);

/// Result of a critical path computation.
struct CriticalPath {
  double length{};            ///< C-infinity: weight of the heaviest path
  std::vector<TaskId> tasks;  ///< tasks on that path, entry to exit
};

/// The critical path under the given weights; ties broken
/// deterministically by task id.  `bl` is scratch for the bottom
/// levels; `cp` is overwritten.  Reuses every buffer, so the
/// allocation step's repeated per-iteration calls allocate nothing.
template <typename NodeF, typename EdgeF>
void critical_path_into(const TaskGraph& g, NodeF&& node_cost,
                        EdgeF&& edge_cost, std::vector<double>& bl,
                        CriticalPath& cp) {
  bottom_levels_into(g, node_cost, edge_cost, bl);
  cp.tasks.clear();

  // Start from the entry with the largest bottom level (ties: lowest
  // id — entries are scanned in id order).
  TaskId current = kInvalidTask;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!g.in_edges(t).empty()) continue;
    if (current == kInvalidTask ||
        bl[static_cast<std::size_t>(t)] > bl[static_cast<std::size_t>(current)])
      current = t;
  }
  RATS_REQUIRE(current != kInvalidTask, "graph has no entry task");
  cp.length = bl[static_cast<std::size_t>(current)];

  // Walk down: at each step pick the successor that realizes the
  // recurrence bl(t) = cost(t) + max(edge + bl(succ)).
  while (current != kInvalidTask) {
    cp.tasks.push_back(current);
    const double tail =
        bl[static_cast<std::size_t>(current)] - node_cost(current);
    TaskId next = kInvalidTask;
    double best_gap = 1e-9 * std::max(1.0, cp.length);
    for (EdgeId e : g.out_edges(current)) {
      const TaskId dst = g.edge(e).dst;
      const double gap =
          std::abs(edge_cost(e) + bl[static_cast<std::size_t>(dst)] - tail);
      if (gap < best_gap) {
        best_gap = gap;
        next = dst;
      }
    }
    current = next;
  }
}

/// The critical path as a fresh result (convenience wrapper).
CriticalPath critical_path(const TaskGraph& g, const NodeCostFn& node_cost,
                           const EdgeCostFn& edge_cost);

/// Sum over all tasks of node_cost(t) (used for the average-area bound).
double total_node_cost(const TaskGraph& g, const NodeCostFn& node_cost);

}  // namespace rats
