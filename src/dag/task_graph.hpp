// Mixed-parallel application model (paper Section II-A).
//
// An application is a DAG G = (N, E): nodes are moldable data-parallel
// tasks, edges carry the number of bytes the source task must send to
// the destination task.  Each task operates on a dataset of `m`
// double-precision elements, costs `a * m` flops sequentially and has a
// non-parallelizable Amdahl fraction `alpha`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace rats {

using TaskId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr TaskId kInvalidTask = -1;

/// A moldable data-parallel task (a node of the application DAG).
struct Task {
  std::string name;     ///< human-readable label (for DOT / traces)
  double data_elems{};  ///< m: dataset size in double-precision elements
  Flops flops{};        ///< sequential computation volume (a * m)
  double alpha{};       ///< non-parallelizable fraction, in [0, 1]
};

/// A data dependence: `src` sends `bytes` to `dst` before `dst` starts.
struct Edge {
  TaskId src{};
  TaskId dst{};
  Bytes bytes{};
};

/// The application DAG.  Tasks and edges are append-only; ids are dense
/// indices, which lets every per-task quantity live in a flat vector.
class TaskGraph {
 public:
  TaskGraph() = default;
  /// Copies share the source's topological-order cache only once it
  /// has been computed (from then on both sides are append-only or
  /// fork on mutation); an uncomputed cache is never shared, so a copy
  /// mutated before the first `topo_order()` cannot inherit the
  /// original's order.
  TaskGraph(const TaskGraph& o)
      : tasks_(o.tasks_),
        edges_(o.edges_),
        in_(o.in_),
        out_(o.out_),
        topo_cache_(o.shareable_topo_cache()) {}
  TaskGraph& operator=(const TaskGraph& o) {
    if (this != &o) {
      tasks_ = o.tasks_;
      edges_ = o.edges_;
      in_ = o.in_;
      out_ = o.out_;
      topo_cache_ = o.shareable_topo_cache();
    }
    return *this;
  }
  TaskGraph(TaskGraph&&) = default;
  TaskGraph& operator=(TaskGraph&&) = default;

  /// Adds a task and returns its id.
  TaskId add_task(Task task);

  /// Convenience: adds a task from its model parameters.  `m` is the
  /// dataset size in elements, `a` the per-element operation count.
  TaskId add_task(std::string name, double m, double a, double alpha);

  /// Adds a dependence edge carrying `bytes`.  Parallel edges between
  /// the same pair are allowed (their volumes simply accumulate when a
  /// redistribution is emitted).  Self-loops are rejected.
  EdgeId add_edge(TaskId src, TaskId dst, Bytes bytes);

  std::int32_t num_tasks() const { return static_cast<std::int32_t>(tasks_.size()); }
  std::int32_t num_edges() const { return static_cast<std::int32_t>(edges_.size()); }

  const Task& task(TaskId id) const { return tasks_[check_task(id)]; }
  Task& task(TaskId id) { return tasks_[check_task(id)]; }
  const Edge& edge(EdgeId id) const;

  /// Ids of edges entering `id` (one per predecessor dependence).
  std::span<const EdgeId> in_edges(TaskId id) const;
  /// Ids of edges leaving `id`.
  std::span<const EdgeId> out_edges(TaskId id) const;

  /// Predecessor task ids of `id` (in edge insertion order).
  std::vector<TaskId> predecessors(TaskId id) const;
  /// Successor task ids of `id` (in edge insertion order).
  std::vector<TaskId> successors(TaskId id) const;

  /// Tasks without predecessors / successors.
  std::vector<TaskId> entry_tasks() const;
  std::vector<TaskId> exit_tasks() const;

  /// Total bytes entering `id`.
  Bytes input_bytes(TaskId id) const;

  /// Topological order of all task ids (deterministic: among ready
  /// tasks the smallest id goes first), computed once and cached;
  /// adding a task or edge invalidates the cache.  Throws rats::Error
  /// if the graph is empty or cyclic.  Safe to call concurrently on a
  /// graph nobody is mutating — the experiment harness evaluates the
  /// same corpus graph with several algorithms in parallel, and the
  /// schedulers' per-candidate critical-path recomputations all reuse
  /// this one order instead of re-deriving it per evaluation.
  const std::vector<TaskId>& topo_order() const;

  /// True iff the graph has no directed cycle.
  bool is_acyclic() const;

  /// Throws rats::Error if the graph is empty or cyclic.
  void validate() const;

  /// Graphviz DOT rendering (node labels include cost parameters).
  std::string to_dot() const;

 private:
  std::size_t check_task(TaskId id) const;

  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> in_;
  std::vector<std::vector<EdgeId>> out_;

  /// Lazily computed topological order.  A mutation after a compute
  /// swaps in a fresh cache object, so copies of a graph share the
  /// computed order while a copy that is then mutated silently forks
  /// its own; mutations during construction (cache never computed) are
  /// free.  `once` makes the first concurrent computation race-free.
  struct TopoCache {
    std::once_flag once;
    std::atomic<bool> computed{false};
    std::vector<TaskId> order;
  };
  void invalidate_topo_cache();
  std::shared_ptr<TopoCache> shareable_topo_cache() const {
    return topo_cache_ && topo_cache_->computed.load(std::memory_order_acquire)
               ? topo_cache_
               : std::make_shared<TopoCache>();
  }
  mutable std::shared_ptr<TopoCache> topo_cache_{
      std::make_shared<TopoCache>()};
};

}  // namespace rats
