// Mixed-parallel application model (paper Section II-A).
//
// An application is a DAG G = (N, E): nodes are moldable data-parallel
// tasks, edges carry the number of bytes the source task must send to
// the destination task.  Each task operates on a dataset of `m`
// double-precision elements, costs `a * m` flops sequentially and has a
// non-parallelizable Amdahl fraction `alpha`.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace rats {

using TaskId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr TaskId kInvalidTask = -1;

/// A moldable data-parallel task (a node of the application DAG).
struct Task {
  std::string name;     ///< human-readable label (for DOT / traces)
  double data_elems{};  ///< m: dataset size in double-precision elements
  Flops flops{};        ///< sequential computation volume (a * m)
  double alpha{};       ///< non-parallelizable fraction, in [0, 1]
};

/// A data dependence: `src` sends `bytes` to `dst` before `dst` starts.
struct Edge {
  TaskId src{};
  TaskId dst{};
  Bytes bytes{};
};

/// The application DAG.  Tasks and edges are append-only; ids are dense
/// indices, which lets every per-task quantity live in a flat vector.
class TaskGraph {
 public:
  /// Adds a task and returns its id.
  TaskId add_task(Task task);

  /// Convenience: adds a task from its model parameters.  `m` is the
  /// dataset size in elements, `a` the per-element operation count.
  TaskId add_task(std::string name, double m, double a, double alpha);

  /// Adds a dependence edge carrying `bytes`.  Parallel edges between
  /// the same pair are allowed (their volumes simply accumulate when a
  /// redistribution is emitted).  Self-loops are rejected.
  EdgeId add_edge(TaskId src, TaskId dst, Bytes bytes);

  std::int32_t num_tasks() const { return static_cast<std::int32_t>(tasks_.size()); }
  std::int32_t num_edges() const { return static_cast<std::int32_t>(edges_.size()); }

  const Task& task(TaskId id) const { return tasks_[check_task(id)]; }
  Task& task(TaskId id) { return tasks_[check_task(id)]; }
  const Edge& edge(EdgeId id) const;

  /// Ids of edges entering `id` (one per predecessor dependence).
  std::span<const EdgeId> in_edges(TaskId id) const;
  /// Ids of edges leaving `id`.
  std::span<const EdgeId> out_edges(TaskId id) const;

  /// Predecessor task ids of `id` (in edge insertion order).
  std::vector<TaskId> predecessors(TaskId id) const;
  /// Successor task ids of `id` (in edge insertion order).
  std::vector<TaskId> successors(TaskId id) const;

  /// Tasks without predecessors / successors.
  std::vector<TaskId> entry_tasks() const;
  std::vector<TaskId> exit_tasks() const;

  /// Total bytes entering `id`.
  Bytes input_bytes(TaskId id) const;

  /// True iff the graph has no directed cycle.
  bool is_acyclic() const;

  /// Throws rats::Error if the graph is empty or cyclic.
  void validate() const;

  /// Graphviz DOT rendering (node labels include cost parameters).
  std::string to_dot() const;

 private:
  std::size_t check_task(TaskId id) const;

  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> in_;
  std::vector<std::vector<EdgeId>> out_;
};

}  // namespace rats
