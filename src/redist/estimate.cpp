#include "redist/estimate.hpp"

#include <algorithm>
#include <map>

namespace rats {

Seconds estimate_redistribution_time(const Cluster& cluster,
                                     const Redistribution& r) {
  if (r.transfers().empty()) return 0;

  // Aggregate per-resource load: NIC up/down per node, cabinet up/down
  // per cabinet on hierarchical clusters.
  std::map<LinkId, Bytes> load;
  Seconds max_latency = 0;
  for (const Transfer& t : r.transfers()) {
    for (LinkId l : cluster.route(t.src, t.dst)) load[l] += t.bytes;
    max_latency = std::max(max_latency, cluster.route_latency(t.src, t.dst));
  }
  Seconds serial = 0;
  for (const auto& [link, bytes] : load)
    serial = std::max(serial, bytes / cluster.link(link).bandwidth);
  return max_latency + serial;
}

Seconds estimate_redistribution_time(const Cluster& cluster, Bytes total_bytes,
                                     const std::vector<NodeId>& senders,
                                     const std::vector<NodeId>& receivers) {
  return estimate_redistribution_time(
      cluster, Redistribution::plan(total_bytes, senders, receivers));
}

}  // namespace rats
