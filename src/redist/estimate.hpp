// Contention-free redistribution time estimation.
//
// The schedulers (both the HCPA baseline mapping and the RATS
// strategies) need a redistribution time estimate *before* tasks run.
// Exactly as in the paper, this estimate ignores network contention
// from unrelated transfers (Section IV-D discusses the consequences);
// it only accounts for the bounded multi-port constraint within the
// redistribution itself: a node cannot push (or pull) faster than its
// NIC, so the transfer time is bounded by the most loaded endpoint.
#pragma once

#include "redist/block_redistribution.hpp"

namespace rats {

/// Estimated time for `r` on `cluster`, without cross-traffic:
///   latency + max over nodes of (bytes sent / NIC up bandwidth,
///                                bytes received / NIC down bandwidth),
/// also accounting for shared cabinet uplinks on hierarchical
/// clusters.  Returns 0 when nothing crosses the network.
Seconds estimate_redistribution_time(const Cluster& cluster,
                                     const Redistribution& r);

/// Convenience overload planning the block redistribution first.
Seconds estimate_redistribution_time(const Cluster& cluster, Bytes total_bytes,
                                     const std::vector<NodeId>& senders,
                                     const std::vector<NodeId>& receivers);

}  // namespace rats
