#include "redist/block_redistribution.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "obs/registry.hpp"

namespace rats {

Bytes block_overlap(Bytes total, int p, int i, int q, int j) {
  RATS_REQUIRE(p > 0 && q > 0, "distribution needs at least one rank");
  RATS_REQUIRE(i >= 0 && i < p && j >= 0 && j < q, "rank out of range");
  const double lo_s = total * static_cast<double>(i) / p;
  const double hi_s = total * static_cast<double>(i + 1) / p;
  const double lo_r = total * static_cast<double>(j) / q;
  const double hi_r = total * static_cast<double>(j + 1) / q;
  return std::max(0.0, std::min(hi_s, hi_r) - std::max(lo_s, lo_r));
}

namespace {

/// Sorted flat map lookup; returns nullptr when `node` is absent.
template <typename Pair>
Pair* flat_find(std::vector<Pair>& entries, NodeId node) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), node,
      [](const Pair& a, NodeId n) { return a.first < n; });
  if (it == entries.end() || it->first != node) return nullptr;
  return &*it;
}

/// Sorts a flat (node, value) map by node and keeps each node's FIRST
/// inserted value (std::map::emplace semantics the original code had).
template <typename Pair>
void sort_unique_by_node(std::vector<Pair>& entries) {
  std::stable_sort(
      entries.begin(), entries.end(),
      [](const Pair& a, const Pair& b) { return a.first < b.first; });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const Pair& a, const Pair& b) {
                              return a.first == b.first;
                            }),
                entries.end());
}

}  // namespace

void Redistribution::plan_into(Bytes total_bytes,
                               const std::vector<NodeId>& senders,
                               const std::vector<NodeId>& receivers,
                               bool maximize_self, PlanScratch& scratch,
                               Redistribution& out) {
  RATS_REQUIRE(total_bytes >= 0, "volume must be non-negative");
  RATS_REQUIRE(!senders.empty() && !receivers.empty(),
               "redistribution needs sender and receiver ranks");

  out.sender_order_ = senders;
  out.receiver_order_ = receivers;
  out.total_ = total_bytes;
  out.self_bytes_ = 0;
  out.remote_bytes_ = 0;
  out.transfers_.clear();
  const int p = static_cast<int>(senders.size());
  const int q = static_cast<int>(receivers.size());

  if (maximize_self) {
    // Permute the receiver rank -> node assignment so that nodes
    // present on both sides get the receiver interval overlapping
    // their sender interval the most.  Greedy matching on descending
    // overlap; ties broken deterministically by (node, rank).
    auto& sender_rank = scratch.sender_rank;  // node -> first sender rank
    sender_rank.clear();
    for (int i = 0; i < p; ++i) sender_rank.emplace_back(senders[i], i);
    sort_unique_by_node(sender_rank);

    auto& cands = scratch.cands;
    cands.clear();
    for (NodeId node : receivers) {
      const auto* hit = flat_find(sender_rank, node);
      if (!hit) continue;
      for (int j = 0; j < q; ++j) {
        const Bytes ov = block_overlap(total_bytes, p, hit->second, q, j);
        if (ov > 0) cands.push_back(PlanScratch::Cand{ov, node, j});
      }
    }
    std::sort(cands.begin(), cands.end(),
              [](const PlanScratch::Cand& a, const PlanScratch::Cand& b) {
                if (a.overlap != b.overlap) return a.overlap > b.overlap;
                if (a.node != b.node) return a.node < b.node;
                return a.rank < b.rank;
              });

    auto& assignment = scratch.assignment;
    assignment.assign(static_cast<std::size_t>(q), kNoNode);
    auto& node_used = scratch.node_used;
    node_used.clear();
    for (NodeId node : receivers) node_used.emplace_back(node, 0);
    sort_unique_by_node(node_used);
    for (const PlanScratch::Cand& c : cands) {
      auto* used = flat_find(node_used, c.node);
      if (used->second || assignment[static_cast<std::size_t>(c.rank)] != kNoNode)
        continue;
      assignment[static_cast<std::size_t>(c.rank)] = c.node;
      used->second = 1;
    }
    // Fill the remaining ranks with the unassigned nodes in their
    // original order.
    std::size_t next = 0;
    for (NodeId node : receivers) {
      auto* used = flat_find(node_used, node);
      if (used->second) continue;
      while (assignment[next] != kNoNode) ++next;
      assignment[next] = node;
      used->second = 1;
    }
    out.receiver_order_.assign(assignment.begin(), assignment.end());
  }

  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < q; ++j) {
      const Bytes ov = block_overlap(total_bytes, p, i, q, j);
      if (ov <= 0) continue;
      const NodeId src = out.sender_order_[static_cast<std::size_t>(i)];
      const NodeId dst = out.receiver_order_[static_cast<std::size_t>(j)];
      if (src == dst) {
        out.self_bytes_ += ov;
      } else {
        out.remote_bytes_ += ov;
        out.transfers_.push_back(Transfer{src, dst, ov});
      }
    }
  }
}

Redistribution Redistribution::plan(Bytes total_bytes,
                                    const std::vector<NodeId>& senders,
                                    const std::vector<NodeId>& receivers,
                                    bool maximize_self) {
  Redistribution r;
  PlanScratch scratch;
  plan_into(total_bytes, senders, receivers, maximize_self, scratch, r);
  return r;
}

std::vector<std::vector<Bytes>> Redistribution::matrix() const {
  const int p = senders();
  const int q = receivers();
  std::vector<std::vector<Bytes>> m(static_cast<std::size_t>(p),
                                    std::vector<Bytes>(static_cast<std::size_t>(q), 0.0));
  for (int i = 0; i < p; ++i)
    for (int j = 0; j < q; ++j)
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          block_overlap(total_, p, i, q, j);
  return m;
}

// ---- RedistPlanner -----------------------------------------------------

namespace {

/// Process-wide planner statistics, registry-backed (obs::) and
/// printed at exit when RATS_REDIST_STATS is set.  Counters are bumped
/// live on every lookup (relaxed atomics, gated on
/// obs::metrics_enabled()) rather than folded in planner destructors:
/// the persistent worker pool's threads — and their thread-local
/// simulator planners — outlive the report, so destructor folding
/// silently dropped every pool worker's lookups.
///
/// The counters are registered Volatile: the per-thread LRU caches
/// mean a lookup's hit/miss depends on which worker ran the prior
/// runs, so the split is thread-scheduling-dependent.
struct PlannerStats {
  obs::Counter& hits = obs::counter("redist/plan/hits", obs::Stability::Volatile);
  obs::Counter& misses =
      obs::counter("redist/plan/misses", obs::Stability::Volatile);
  obs::Counter& sim_hits =
      obs::counter("redist/plan/sim_hits", obs::Stability::Volatile);
  obs::Counter& sim_misses =
      obs::counter("redist/plan/sim_misses", obs::Stability::Volatile);
  void bump(bool sim_side, bool hit) {
    auto& counter = sim_side ? (hit ? sim_hits : sim_misses)
                             : (hit ? hits : misses);
    counter.inc();
  }
  static void report(const char* label, std::uint64_t h, std::uint64_t m) {
    if (h + m == 0) return;
    std::fprintf(stderr,
                 "RedistPlanner (%s): %llu hits / %llu lookups (%.1f%% hit "
                 "rate)\n",
                 label, static_cast<unsigned long long>(h),
                 static_cast<unsigned long long>(h + m),
                 100.0 * static_cast<double>(h) / static_cast<double>(h + m));
  }
  ~PlannerStats() {
    if (std::getenv("RATS_REDIST_STATS") == nullptr) return;
    const std::uint64_t sh = sim_hits.value(), sm = sim_misses.value();
    const std::uint64_t mh = hits.value(), mm = misses.value();
    report("simulator", sh, sm);
    report("mapper", mh, mm);
    report("total", sh + mh, sm + mm);
  }
};
PlannerStats& planner_stats() {
  // Function-local static: construction on first use pulls the obs
  // registry up first, so it is destroyed after this reporter.
  static PlannerStats stats;
  return stats;
}

}  // namespace

std::size_t RedistPlanner::KeyHash::operator()(const Key& k) const {
  // FNV-1a over the flag, volume key and node lists.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(k.maximize_self ? 1 : 0);
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(k.volume_key));
  std::memcpy(&bits, &k.volume_key, sizeof(bits));
  mix(bits);
  mix(k.senders.size());
  for (NodeId n : k.senders) mix(static_cast<std::uint64_t>(n));
  mix(k.receivers.size());
  for (NodeId n : k.receivers) mix(static_cast<std::uint64_t>(n));
  return static_cast<std::size_t>(h);
}

const Redistribution& RedistPlanner::plan(Bytes total_bytes,
                                          const std::vector<NodeId>& senders,
                                          const std::vector<NodeId>& receivers,
                                          bool maximize_self) {
  // Validate before touching the cache: the hit/rescale paths never
  // reach plan_into's checks, and a throw after the miss-path emplace
  // would leave a half-initialized entry behind to be served later.
  RATS_REQUIRE(total_bytes >= 0, "volume must be non-negative");
  RATS_REQUIRE(!senders.empty() && !receivers.empty(),
               "redistribution needs sender and receiver ranks");
  // Volume-independent plan structure (see the class comment):
  //  * no matching at all (!maximize_self), or
  //  * p == q — every shared node's single positive-overlap candidate
  //    is its own rank, so the matching is conflict-free and its
  //    rounding-sensitive tie order cannot change the outcome, or
  //  * disjoint node sets — no candidates, permutation is the input
  //    order.
  // Everything else keys on the raw volume; volume 0 (empty plan,
  // unpermuted order even where a matched volume would permute) gets
  // its own sentinel class.
  bool scale_safe = !maximize_self || senders.size() == receivers.size();
  if (!scale_safe) {
    NodeId max_node = -1;
    for (const NodeId n : senders) max_node = std::max(max_node, n);
    for (const NodeId n : receivers) max_node = std::max(max_node, n);
    if (node_stamp_.size() <= static_cast<std::size_t>(max_node))
      node_stamp_.resize(static_cast<std::size_t>(max_node) + 1, 0);
    ++stamp_;
    for (const NodeId n : senders)
      node_stamp_[static_cast<std::size_t>(n)] = stamp_;
    scale_safe = true;
    for (const NodeId n : receivers)
      if (node_stamp_[static_cast<std::size_t>(n)] == stamp_) {
        scale_safe = false;
        break;
      }
  }
  probe_.maximize_self = maximize_self;
  probe_.volume_key =
      total_bytes == 0 ? -1.0 : (scale_safe ? 0.0 : total_bytes);
  probe_.senders = senders;      // reuses probe_'s capacity
  probe_.receivers = receivers;
  ++tick_;
  const auto hit = cache_.find(probe_);
  if (obs::metrics_enabled())
    planner_stats().bump(sim_side_, hit != cache_.end());
  if (hit != cache_.end()) {
    ++hits_;
    CacheEntry& entry = hit->second;
    entry.last_used = tick_;
    if (entry.volume == total_bytes) return entry.plan;
    // Same geometry, different volume (scale-safe entries only): the
    // permutation carries over and each candidate pair's byte count is
    // re-derived with the exact `block_overlap` expression — and the
    // same positivity test — a fresh plan would evaluate.
    scaled_.sender_order_ = entry.plan.sender_order_;
    scaled_.receiver_order_ = entry.plan.receiver_order_;
    scaled_.total_ = total_bytes;
    scaled_.self_bytes_ = 0;
    scaled_.remote_bytes_ = 0;
    scaled_.transfers_.clear();
    const int p = entry.plan.senders();
    const int q = entry.plan.receivers();
    for (const auto& [i, j] : entry.pairs) {
      const Bytes ov = block_overlap(total_bytes, p, i, q, j);
      if (ov <= 0) continue;  // exact-boundary pair below rounding
      const NodeId src = scaled_.sender_order_[static_cast<std::size_t>(i)];
      const NodeId dst = scaled_.receiver_order_[static_cast<std::size_t>(j)];
      if (src == dst) {
        scaled_.self_bytes_ += ov;
      } else {
        scaled_.remote_bytes_ += ov;
        scaled_.transfers_.push_back(Transfer{src, dst, ov});
      }
    }
    return scaled_;
  }
  ++misses_;
  if (cache_.size() >= capacity_) {
    // Batch-evict the least recently used half: one O(capacity) pass
    // per capacity/2 misses keeps eviction O(1) amortized without an
    // intrusive LRU list.
    ticks_scratch_.clear();
    ticks_scratch_.reserve(cache_.size());
    for (const auto& [key, entry] : cache_)
      ticks_scratch_.push_back(entry.last_used);
    auto mid = ticks_scratch_.begin() +
               static_cast<std::ptrdiff_t>(ticks_scratch_.size() / 2);
    std::nth_element(ticks_scratch_.begin(), mid, ticks_scratch_.end());
    // Ticks are unique, so erasing <= cutoff drops the median entry too
    // — at least one entry always goes, keeping the bound even at
    // capacity 1.
    const std::uint64_t cutoff = *mid;
    for (auto it = cache_.begin(); it != cache_.end();)
      it = it->second.last_used <= cutoff ? cache_.erase(it) : std::next(it);
  }
  auto [slot, inserted] = cache_.emplace(std::move(probe_), CacheEntry{});
  CacheEntry& entry = slot->second;
  entry.last_used = tick_;
  entry.volume = total_bytes;
  Redistribution::plan_into(total_bytes, senders, receivers, maximize_self,
                            scratch_, entry.plan);
  // Record the candidate pair set in *exact* integer interval
  // arithmetic (rank i of p covers [i*q, (i+1)*q) in units of
  // total/(p*q)) so hits at other volumes walk the same pairs in the
  // identical order: strictly-overlapping pairs always transfer;
  // exact-boundary pairs (zero-width intersection) transfer only when
  // rounding at that volume says so.  Volume-keyed entries (and the
  // volume-0 sentinel class) can only ever hit at their own volume, so
  // they skip the pair recording entirely.
  if (scale_safe && total_bytes != 0) {
    const auto p64 = static_cast<std::int64_t>(senders.size());
    const auto q64 = static_cast<std::int64_t>(receivers.size());
    for (std::int64_t i = 0; i < p64; ++i)
      for (std::int64_t j = 0; j < q64; ++j)
        if (std::min((i + 1) * q64, (j + 1) * p64) -
                std::max(i * q64, j * p64) >=
            0)
          entry.pairs.emplace_back(static_cast<std::int32_t>(i),
                                   static_cast<std::int32_t>(j));
  }
  return entry.plan;
}

}  // namespace rats
