#include "redist/block_redistribution.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace rats {

Bytes block_overlap(Bytes total, int p, int i, int q, int j) {
  RATS_REQUIRE(p > 0 && q > 0, "distribution needs at least one rank");
  RATS_REQUIRE(i >= 0 && i < p && j >= 0 && j < q, "rank out of range");
  const double lo_s = total * static_cast<double>(i) / p;
  const double hi_s = total * static_cast<double>(i + 1) / p;
  const double lo_r = total * static_cast<double>(j) / q;
  const double hi_r = total * static_cast<double>(j + 1) / q;
  return std::max(0.0, std::min(hi_s, hi_r) - std::max(lo_s, lo_r));
}

Redistribution Redistribution::plan(Bytes total_bytes,
                                    const std::vector<NodeId>& senders,
                                    const std::vector<NodeId>& receivers,
                                    bool maximize_self) {
  RATS_REQUIRE(total_bytes >= 0, "volume must be non-negative");
  RATS_REQUIRE(!senders.empty() && !receivers.empty(),
               "redistribution needs sender and receiver ranks");

  Redistribution r;
  r.sender_order_ = senders;
  r.receiver_order_ = receivers;
  r.total_ = total_bytes;
  const int p = static_cast<int>(senders.size());
  const int q = static_cast<int>(receivers.size());

  if (maximize_self) {
    // Permute the receiver rank -> node assignment so that nodes
    // present on both sides get the receiver interval overlapping
    // their sender interval the most.  Greedy matching on descending
    // overlap; ties broken deterministically by (node, rank).
    std::map<NodeId, int> sender_rank;  // node -> its (first) sender rank
    for (int i = 0; i < p; ++i) sender_rank.emplace(senders[i], i);

    struct Cand {
      Bytes overlap;
      NodeId node;
      int rank;  // candidate receiver rank
    };
    std::vector<Cand> cands;
    for (NodeId node : receivers) {
      auto it = sender_rank.find(node);
      if (it == sender_rank.end()) continue;
      for (int j = 0; j < q; ++j) {
        const Bytes ov = block_overlap(total_bytes, p, it->second, q, j);
        if (ov > 0) cands.push_back(Cand{ov, node, j});
      }
    }
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.overlap != b.overlap) return a.overlap > b.overlap;
      if (a.node != b.node) return a.node < b.node;
      return a.rank < b.rank;
    });

    std::vector<NodeId> assignment(static_cast<std::size_t>(q), kNoNode);
    std::map<NodeId, bool> node_used;
    for (NodeId node : receivers) node_used[node] = false;
    for (const Cand& c : cands) {
      if (node_used[c.node] || assignment[static_cast<std::size_t>(c.rank)] != kNoNode)
        continue;
      assignment[static_cast<std::size_t>(c.rank)] = c.node;
      node_used[c.node] = true;
    }
    // Fill the remaining ranks with the unassigned nodes in their
    // original order.
    std::size_t next = 0;
    for (NodeId node : receivers) {
      if (node_used[node]) continue;
      while (assignment[next] != kNoNode) ++next;
      assignment[next] = node;
      node_used[node] = true;
    }
    r.receiver_order_ = std::move(assignment);
  }

  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < q; ++j) {
      const Bytes ov = block_overlap(total_bytes, p, i, q, j);
      if (ov <= 0) continue;
      const NodeId src = r.sender_order_[static_cast<std::size_t>(i)];
      const NodeId dst = r.receiver_order_[static_cast<std::size_t>(j)];
      if (src == dst) {
        r.self_bytes_ += ov;
      } else {
        r.remote_bytes_ += ov;
        r.transfers_.push_back(Transfer{src, dst, ov});
      }
    }
  }
  return r;
}

std::vector<std::vector<Bytes>> Redistribution::matrix() const {
  const int p = senders();
  const int q = receivers();
  std::vector<std::vector<Bytes>> m(static_cast<std::size_t>(p),
                                    std::vector<Bytes>(static_cast<std::size_t>(q), 0.0));
  for (int i = 0; i < p; ++i)
    for (int j = 0; j < q; ++j)
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          block_overlap(total_, p, i, q, j);
  return m;
}

}  // namespace rats
