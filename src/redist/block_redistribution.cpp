#include "redist/block_redistribution.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace rats {

Bytes block_overlap(Bytes total, int p, int i, int q, int j) {
  RATS_REQUIRE(p > 0 && q > 0, "distribution needs at least one rank");
  RATS_REQUIRE(i >= 0 && i < p && j >= 0 && j < q, "rank out of range");
  const double lo_s = total * static_cast<double>(i) / p;
  const double hi_s = total * static_cast<double>(i + 1) / p;
  const double lo_r = total * static_cast<double>(j) / q;
  const double hi_r = total * static_cast<double>(j + 1) / q;
  return std::max(0.0, std::min(hi_s, hi_r) - std::max(lo_s, lo_r));
}

namespace {

/// Sorted flat map lookup; returns nullptr when `node` is absent.
template <typename Pair>
Pair* flat_find(std::vector<Pair>& entries, NodeId node) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), node,
      [](const Pair& a, NodeId n) { return a.first < n; });
  if (it == entries.end() || it->first != node) return nullptr;
  return &*it;
}

/// Sorts a flat (node, value) map by node and keeps each node's FIRST
/// inserted value (std::map::emplace semantics the original code had).
template <typename Pair>
void sort_unique_by_node(std::vector<Pair>& entries) {
  std::stable_sort(
      entries.begin(), entries.end(),
      [](const Pair& a, const Pair& b) { return a.first < b.first; });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const Pair& a, const Pair& b) {
                              return a.first == b.first;
                            }),
                entries.end());
}

}  // namespace

void Redistribution::plan_into(Bytes total_bytes,
                               const std::vector<NodeId>& senders,
                               const std::vector<NodeId>& receivers,
                               bool maximize_self, PlanScratch& scratch,
                               Redistribution& out) {
  RATS_REQUIRE(total_bytes >= 0, "volume must be non-negative");
  RATS_REQUIRE(!senders.empty() && !receivers.empty(),
               "redistribution needs sender and receiver ranks");

  out.sender_order_ = senders;
  out.receiver_order_ = receivers;
  out.total_ = total_bytes;
  out.self_bytes_ = 0;
  out.remote_bytes_ = 0;
  out.transfers_.clear();
  const int p = static_cast<int>(senders.size());
  const int q = static_cast<int>(receivers.size());

  if (maximize_self) {
    // Permute the receiver rank -> node assignment so that nodes
    // present on both sides get the receiver interval overlapping
    // their sender interval the most.  Greedy matching on descending
    // overlap; ties broken deterministically by (node, rank).
    auto& sender_rank = scratch.sender_rank;  // node -> first sender rank
    sender_rank.clear();
    for (int i = 0; i < p; ++i) sender_rank.emplace_back(senders[i], i);
    sort_unique_by_node(sender_rank);

    auto& cands = scratch.cands;
    cands.clear();
    for (NodeId node : receivers) {
      const auto* hit = flat_find(sender_rank, node);
      if (!hit) continue;
      for (int j = 0; j < q; ++j) {
        const Bytes ov = block_overlap(total_bytes, p, hit->second, q, j);
        if (ov > 0) cands.push_back(PlanScratch::Cand{ov, node, j});
      }
    }
    std::sort(cands.begin(), cands.end(),
              [](const PlanScratch::Cand& a, const PlanScratch::Cand& b) {
                if (a.overlap != b.overlap) return a.overlap > b.overlap;
                if (a.node != b.node) return a.node < b.node;
                return a.rank < b.rank;
              });

    auto& assignment = scratch.assignment;
    assignment.assign(static_cast<std::size_t>(q), kNoNode);
    auto& node_used = scratch.node_used;
    node_used.clear();
    for (NodeId node : receivers) node_used.emplace_back(node, 0);
    sort_unique_by_node(node_used);
    for (const PlanScratch::Cand& c : cands) {
      auto* used = flat_find(node_used, c.node);
      if (used->second || assignment[static_cast<std::size_t>(c.rank)] != kNoNode)
        continue;
      assignment[static_cast<std::size_t>(c.rank)] = c.node;
      used->second = 1;
    }
    // Fill the remaining ranks with the unassigned nodes in their
    // original order.
    std::size_t next = 0;
    for (NodeId node : receivers) {
      auto* used = flat_find(node_used, node);
      if (used->second) continue;
      while (assignment[next] != kNoNode) ++next;
      assignment[next] = node;
      used->second = 1;
    }
    out.receiver_order_.assign(assignment.begin(), assignment.end());
  }

  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < q; ++j) {
      const Bytes ov = block_overlap(total_bytes, p, i, q, j);
      if (ov <= 0) continue;
      const NodeId src = out.sender_order_[static_cast<std::size_t>(i)];
      const NodeId dst = out.receiver_order_[static_cast<std::size_t>(j)];
      if (src == dst) {
        out.self_bytes_ += ov;
      } else {
        out.remote_bytes_ += ov;
        out.transfers_.push_back(Transfer{src, dst, ov});
      }
    }
  }
}

Redistribution Redistribution::plan(Bytes total_bytes,
                                    const std::vector<NodeId>& senders,
                                    const std::vector<NodeId>& receivers,
                                    bool maximize_self) {
  Redistribution r;
  PlanScratch scratch;
  plan_into(total_bytes, senders, receivers, maximize_self, scratch, r);
  return r;
}

std::vector<std::vector<Bytes>> Redistribution::matrix() const {
  const int p = senders();
  const int q = receivers();
  std::vector<std::vector<Bytes>> m(static_cast<std::size_t>(p),
                                    std::vector<Bytes>(static_cast<std::size_t>(q), 0.0));
  for (int i = 0; i < p; ++i)
    for (int j = 0; j < q; ++j)
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          block_overlap(total_, p, i, q, j);
  return m;
}

// ---- RedistPlanner -----------------------------------------------------

std::size_t RedistPlanner::KeyHash::operator()(const Key& k) const {
  // FNV-1a over the byte volume, flag and node lists.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(k.total_bytes));
  std::memcpy(&bits, &k.total_bytes, sizeof(bits));
  mix(bits);
  mix(k.maximize_self ? 1 : 0);
  mix(k.senders.size());
  for (NodeId n : k.senders) mix(static_cast<std::uint64_t>(n));
  mix(k.receivers.size());
  for (NodeId n : k.receivers) mix(static_cast<std::uint64_t>(n));
  return static_cast<std::size_t>(h);
}

const Redistribution& RedistPlanner::plan(Bytes total_bytes,
                                          const std::vector<NodeId>& senders,
                                          const std::vector<NodeId>& receivers,
                                          bool maximize_self) {
  probe_.total_bytes = total_bytes;
  probe_.maximize_self = maximize_self;
  probe_.senders = senders;      // reuses probe_'s capacity
  probe_.receivers = receivers;
  ++tick_;
  const auto hit = cache_.find(probe_);
  if (hit != cache_.end()) {
    ++hits_;
    hit->second.last_used = tick_;
    return hit->second.plan;
  }
  ++misses_;
  if (cache_.size() >= capacity_) {
    // Batch-evict the least recently used half: one O(capacity) pass
    // per capacity/2 misses keeps eviction O(1) amortized without an
    // intrusive LRU list.
    ticks_scratch_.clear();
    ticks_scratch_.reserve(cache_.size());
    for (const auto& [key, entry] : cache_)
      ticks_scratch_.push_back(entry.last_used);
    auto mid = ticks_scratch_.begin() +
               static_cast<std::ptrdiff_t>(ticks_scratch_.size() / 2);
    std::nth_element(ticks_scratch_.begin(), mid, ticks_scratch_.end());
    // Ticks are unique, so erasing <= cutoff drops the median entry too
    // — at least one entry always goes, keeping the bound even at
    // capacity 1.
    const std::uint64_t cutoff = *mid;
    for (auto it = cache_.begin(); it != cache_.end();)
      it = it->second.last_used <= cutoff ? cache_.erase(it) : std::next(it);
  }
  auto [slot, inserted] =
      cache_.emplace(std::move(probe_), CacheEntry{{}, tick_});
  Redistribution::plan_into(total_bytes, senders, receivers, maximize_self,
                            scratch_, slot->second.plan);
  return slot->second.plan;
}

}  // namespace rats
