// 1-D block data redistribution (paper Section II-A, Table I).
//
// Data is always distributed following a one-dimensional block
// distribution: a task working on B bytes mapped onto p processors
// gives rank r the contiguous interval [r*B/p, (r+1)*B/p).  The
// communication matrix between a producer on p processors and a
// consumer on q processors is the pairwise overlap of the two interval
// families — at most p + q - 1 non-empty entries.
//
// When sender and receiver processor sets share nodes, the receiver's
// rank-to-node assignment is permuted to maximize the number of bytes
// that stay on-node ("self communications"), which the paper's
// redistribution algorithm does as well.  Two tasks mapped on the same
// set of processors therefore exchange zero bytes over the network.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "platform/cluster.hpp"

namespace rats {

/// One point-to-point transfer of a redistribution.
struct Transfer {
  NodeId src{};
  NodeId dst{};
  Bytes bytes{};
};

/// The planned redistribution of a block-distributed dataset.
class Redistribution {
 public:
  /// Plans the redistribution of `total_bytes` from the ordered sender
  /// processor list to the receiver processor list.
  ///
  /// `receivers` gives the *nodes* of the consumer allocation; when
  /// `maximize_self` is set (the default, as in the paper) their rank
  /// order may be permuted so nodes appearing on both sides keep as
  /// much data local as possible.  The chosen order is available from
  /// `receiver_order()` and is what the consumer task runs with.
  static Redistribution plan(Bytes total_bytes,
                             const std::vector<NodeId>& senders,
                             const std::vector<NodeId>& receivers,
                             bool maximize_self = true);

  /// Cross-node transfers only (self communications carry no cost).
  const std::vector<Transfer>& transfers() const { return transfers_; }

  /// Bytes that stay on their node.
  Bytes self_bytes() const { return self_bytes_; }
  /// Bytes crossing the network.
  Bytes remote_bytes() const { return remote_bytes_; }
  Bytes total_bytes() const { return self_bytes_ + remote_bytes_; }

  /// Receiver nodes in final rank order (after the self-communication
  /// permutation).
  const std::vector<NodeId>& receiver_order() const { return receiver_order_; }

  /// Dense p x q communication matrix in bytes, indexed
  /// [sender rank][receiver rank]; includes self-communication entries.
  /// Reproduces Table I of the paper for disjoint sets.
  std::vector<std::vector<Bytes>> matrix() const;

  int senders() const { return static_cast<int>(sender_order_.size()); }
  int receivers() const { return static_cast<int>(receiver_order_.size()); }

 private:
  Redistribution() = default;

  friend class RedistPlanner;

  /// Scratch buffers for the self-communication matching; owned by the
  /// caller so repeated planning allocates nothing after warm-up.
  struct PlanScratch {
    struct Cand {
      Bytes overlap;
      NodeId node;
      int rank;  ///< candidate receiver rank
    };
    std::vector<Cand> cands;
    std::vector<NodeId> assignment;
    std::vector<std::pair<NodeId, int>> sender_rank;  ///< sorted by node
    std::vector<std::pair<NodeId, char>> node_used;   ///< sorted by node
  };

  /// The planning core shared by `plan` and `RedistPlanner`.
  static void plan_into(Bytes total_bytes, const std::vector<NodeId>& senders,
                        const std::vector<NodeId>& receivers,
                        bool maximize_self, PlanScratch& scratch,
                        Redistribution& out);

  std::vector<NodeId> sender_order_;
  std::vector<NodeId> receiver_order_;
  Bytes total_{};
  Bytes self_bytes_{};
  Bytes remote_bytes_{};
  std::vector<Transfer> transfers_;
};

/// Reusable redistribution planner for hot paths (the simulator opens a
/// plan per DAG edge; the mapper estimates one per candidate placement
/// per in-edge).  Two layers:
///  * persistent planning scratch, so a miss allocates only what the
///    resulting plan itself needs;
///  * an LRU cache keyed on the redistribution's *geometry* — (sender
///    list, receiver list, maximize_self) — rather than on the raw
///    byte volume whenever the plan structure is provably
///    volume-independent: bytes scale linearly, and for disjoint
///    sender/receiver node sets (no self-communication matching) or
///    p == q (every shared node's only candidate is its own rank, so
///    the matching cannot conflict) the receiver permutation and the
///    overlapping rank pairs are functions of the geometry alone.  A
///    cached entry stores the plan at the first-seen volume plus the
///    rank-pair list classified by *exact integer* interval
///    arithmetic: strictly-overlapping pairs are rebuilt at any volume
///    with `block_overlap` (bitwise what a fresh plan computes), and
///    boundary pairs — zero overlap in exact arithmetic, where
///    rounding can produce an epsilon-transfer that a fresh plan would
///    also emit — are re-tested per volume.  Geometries with shared
///    nodes and p != q keep the volume in the key (their matching tie
///    order is rounding-sensitive and must match a fresh plan's).
/// The returned reference stays valid until the next `plan` call (an
/// insertion may evict the least recently used entry).  Not
/// thread-safe; use one instance per thread.  Set RATS_REDIST_STATS=1
/// to print process-wide hit statistics at exit, split by call-site
/// (simulator vs mapper, see `tag_simulator`) plus a summed total;
/// counters are folded live so planners owned by persistent worker
/// pool threads are included.
class RedistPlanner {
 public:
  /// `capacity` bounds the number of cached plans (LRU batch eviction:
  /// the least recently used half is dropped when the cache fills).
  explicit RedistPlanner(std::size_t capacity = 4096)
      : capacity_(capacity ? capacity : 1) {}

  /// Plans `total_bytes` from `senders` to `receivers`, or rescales the
  /// cached plan of the geometrically-identical request.
  const Redistribution& plan(Bytes total_bytes,
                             const std::vector<NodeId>& senders,
                             const std::vector<NodeId>& receivers,
                             bool maximize_self = true);

  std::size_t cache_size() const { return cache_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Attributes this planner's RATS_REDIST_STATS counters to the
  /// simulator bucket (so sim-side and mapper-side hit rates report
  /// separately).
  void tag_simulator() { sim_side_ = true; }

 private:
  struct Key {
    bool maximize_self;
    /// 0 for volume-independent geometries, the sentinel -1 for
    /// volume-0 requests (their plan is empty and their receiver order
    /// unpermuted, unlike a matched nonzero-volume plan of the same
    /// geometry), and the raw volume otherwise.
    Bytes volume_key;
    std::vector<NodeId> senders;
    std::vector<NodeId> receivers;
    bool operator==(const Key& o) const {
      return maximize_self == o.maximize_self &&
             volume_key == o.volume_key && senders == o.senders &&
             receivers == o.receivers;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct CacheEntry {
    Redistribution plan;  ///< planned at `volume`
    Bytes volume = 0;     ///< first-seen byte volume
    /// Rank pairs with non-negative overlap in *exact* interval
    /// arithmetic, in sender-major order — including self
    /// communications and exact-boundary pairs, so a rescale walks
    /// precisely the pairs a fresh plan might emit, in its order, and
    /// keeps each iff its recomputed overlap is positive.
    std::vector<std::pair<std::int32_t, std::int32_t>> pairs;
    std::uint64_t last_used = 0;
  };

  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::unordered_map<Key, CacheEntry, KeyHash> cache_;
  std::vector<std::uint64_t> ticks_scratch_;  ///< batch-eviction scratch
  Redistribution::PlanScratch scratch_;
  Redistribution scaled_;  ///< rescale target for different-volume hits
  Key probe_;  ///< reused lookup key (avoids per-call vector copies)
  // Disjointness test scratch (node id -> last stamp that saw it as a
  // sender).
  std::vector<std::uint64_t> node_stamp_;
  std::uint64_t stamp_ = 0;
  bool sim_side_ = false;  ///< stats bucket (see tag_simulator)
};

/// Overlap in bytes between sender rank `i` of `p` and receiver rank
/// `j` of `q` for a block-distributed dataset of `total` bytes.
Bytes block_overlap(Bytes total, int p, int i, int q, int j);

}  // namespace rats
