// 1-D block data redistribution (paper Section II-A, Table I).
//
// Data is always distributed following a one-dimensional block
// distribution: a task working on B bytes mapped onto p processors
// gives rank r the contiguous interval [r*B/p, (r+1)*B/p).  The
// communication matrix between a producer on p processors and a
// consumer on q processors is the pairwise overlap of the two interval
// families — at most p + q - 1 non-empty entries.
//
// When sender and receiver processor sets share nodes, the receiver's
// rank-to-node assignment is permuted to maximize the number of bytes
// that stay on-node ("self communications"), which the paper's
// redistribution algorithm does as well.  Two tasks mapped on the same
// set of processors therefore exchange zero bytes over the network.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "platform/cluster.hpp"

namespace rats {

/// One point-to-point transfer of a redistribution.
struct Transfer {
  NodeId src{};
  NodeId dst{};
  Bytes bytes{};
};

/// The planned redistribution of a block-distributed dataset.
class Redistribution {
 public:
  /// Plans the redistribution of `total_bytes` from the ordered sender
  /// processor list to the receiver processor list.
  ///
  /// `receivers` gives the *nodes* of the consumer allocation; when
  /// `maximize_self` is set (the default, as in the paper) their rank
  /// order may be permuted so nodes appearing on both sides keep as
  /// much data local as possible.  The chosen order is available from
  /// `receiver_order()` and is what the consumer task runs with.
  static Redistribution plan(Bytes total_bytes,
                             const std::vector<NodeId>& senders,
                             const std::vector<NodeId>& receivers,
                             bool maximize_self = true);

  /// Cross-node transfers only (self communications carry no cost).
  const std::vector<Transfer>& transfers() const { return transfers_; }

  /// Bytes that stay on their node.
  Bytes self_bytes() const { return self_bytes_; }
  /// Bytes crossing the network.
  Bytes remote_bytes() const { return remote_bytes_; }
  Bytes total_bytes() const { return self_bytes_ + remote_bytes_; }

  /// Receiver nodes in final rank order (after the self-communication
  /// permutation).
  const std::vector<NodeId>& receiver_order() const { return receiver_order_; }

  /// Dense p x q communication matrix in bytes, indexed
  /// [sender rank][receiver rank]; includes self-communication entries.
  /// Reproduces Table I of the paper for disjoint sets.
  std::vector<std::vector<Bytes>> matrix() const;

  int senders() const { return static_cast<int>(sender_order_.size()); }
  int receivers() const { return static_cast<int>(receiver_order_.size()); }

 private:
  Redistribution() = default;

  std::vector<NodeId> sender_order_;
  std::vector<NodeId> receiver_order_;
  Bytes total_{};
  Bytes self_bytes_{};
  Bytes remote_bytes_{};
  std::vector<Transfer> transfers_;
};

/// Overlap in bytes between sender rank `i` of `p` and receiver rank
/// `j` of `q` for a block-distributed dataset of `total` bytes.
Bytes block_overlap(Bytes total, int p, int i, int q, int j);

}  // namespace rats
