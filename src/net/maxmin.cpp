#include "net/maxmin.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace rats {

namespace {
// A heap entry is considered stale when the link's current fair share
// has grown past the keyed value by more than this relative slack
// (shares are non-decreasing as flows are fixed, so stale entries are
// always under-keyed, never over-keyed).
constexpr double kShareSlack = 1e-12;

// A warm re-solve undoes the trace back to the first round whose
// binding share reaches the delta's divergence bound; the bound is
// shaved by this relative margin so rounding noise can only undo one
// round too many, never one too few.
constexpr double kDivergenceMargin = 1e-9;
}  // namespace

void MaxMinSolver::solve(const std::vector<Rate>& capacity,
                         const std::vector<FlowDemand>& flows,
                         std::vector<Rate>& rates) {
  views_.clear();
  views_.reserve(flows.size());
  for (const FlowDemand& f : flows)
    views_.push_back(FlowDemandView{
        f.links.data(), static_cast<std::int32_t>(f.links.size()), f.cap});
  rates.resize(flows.size());
  solve_impl(capacity, views_.data(), views_.size(), rates.data(), nullptr,
             nullptr, nullptr);
}

void MaxMinSolver::solve(const std::vector<Rate>& capacity,
                         const FlowDemandView* flows, std::size_t num_flows,
                         Rate* rates, MaxMinWarmState* trace,
                         const std::int32_t* stable_ids) {
  solve_impl(capacity, flows, num_flows, rates, nullptr, trace, stable_ids);
}

void MaxMinSolver::solve(const std::vector<Rate>& capacity,
                         const FlowDemandView* flows, std::size_t num_flows,
                         Rate* rates,
                         const std::vector<std::vector<std::int32_t>>& link_flows,
                         const std::vector<std::int32_t>& local_of,
                         MaxMinWarmState* trace,
                         const std::int32_t* stable_ids) {
  const ExtAdjacency ext{&link_flows, &local_of};
  solve_impl(capacity, flows, num_flows, rates, &ext, trace, stable_ids);
}

void MaxMinSolver::solve_impl(const std::vector<Rate>& capacity,
                              const FlowDemandView* flows,
                              std::size_t num_flows, Rate* rates,
                              const ExtAdjacency* ext, MaxMinWarmState* trace,
                              const std::int32_t* stable_ids) {
  const std::size_t num_links = capacity.size();
  // Per-link slots are epoch-stamped: growing them is the only O(L)
  // work, paid once; after that a solve touches only its own links.
  if (slots_.size() < num_links) slots_.resize(num_links);
  ++epoch_;

  touched_.clear();
  caps_.clear();
  heap_.clear();
  fixed_.assign(num_flows, 0);
  if (trace) trace->invalidate();
  const auto stable_id = [&](std::size_t f) {
    return stable_ids ? stable_ids[f] : static_cast<std::int32_t>(f);
  };

  // Pass 1: validate, count link incidences, fix loopback flows.
  std::size_t unfixed = 0;
  std::size_t incidences = 0;
  Rate min_cap = std::numeric_limits<Rate>::infinity();
  Rate max_touched_capacity = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    const FlowDemandView& d = flows[f];
    if (d.count == 0) {
      // Loopback: not constrained by any link.
      rates[f] = d.cap;
      fixed_[f] = 1;
      if (trace)
        trace->settles.push_back(MaxMinWarmState::Settle{
            stable_id(f), static_cast<std::int32_t>(trace->log.size()), d.cap,
            d.cap});
      continue;
    }
    rates[f] = 0.0;
    for (std::int32_t i = 0; i < d.count; ++i) {
      const std::int32_t l = d.links[static_cast<std::size_t>(i)];
      RATS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < num_links,
                   "flow references unknown link");
      LinkSlot& slot = slots_[static_cast<std::size_t>(l)];
      if (slot.epoch != epoch_) {
        const Rate cap_l = capacity[static_cast<std::size_t>(l)];
        RATS_REQUIRE(cap_l > 0, "used link must have positive capacity");
        slot.epoch = epoch_;
        slot.remaining = cap_l;
        slot.active = 0;
        slot.index = static_cast<std::int32_t>(touched_.size());
        touched_.push_back(l);
        max_touched_capacity = std::max(max_touched_capacity, cap_l);
      }
      ++slot.active;
    }
    if (std::isfinite(d.cap)) {
      caps_.emplace_back(d.cap, static_cast<std::int32_t>(f));
      min_cap = std::min(min_cap, d.cap);
    }
    ++unfixed;
    incidences += static_cast<std::size_t>(d.count);
  }
  if (trace) {
    trace->links = touched_;
    trace->act0.reserve(touched_.size());
    for (const std::int32_t l : touched_)
      trace->act0.push_back(slots_[static_cast<std::size_t>(l)].active);
    trace->max_capacity = max_touched_capacity;
  }
  if (unfixed == 0) {
    if (trace) {
      trace->remaining.assign(touched_.size(), 0);
      trace->valid = true;
    }
    return;
  }

  // Fair shares never exceed the largest touched capacity, so when even
  // the smallest cap is above it no cap can ever be the tightest
  // constraint (cap <= share is unreachable) — drop the cap machinery,
  // including its O(F log F) sort.  Common case: the TCP-window bound
  // W/RTT sits far above the per-link bandwidth on low-latency
  // clusters.
  if (min_cap > max_touched_capacity) caps_.clear();

  // Pass 2: CSR link->flow adjacency over the touched links only —
  // skipped entirely when the caller shares its own adjacency table.
  // Offsets are advanced while filling and restored by the shift below,
  // avoiding a cursor array.
  if (!ext) {
    link_off_.assign(touched_.size() + 1, 0);
    for (std::size_t f = 0; f < num_flows; ++f) {
      const FlowDemandView& d = flows[f];
      for (std::int32_t i = 0; i < d.count; ++i)
        ++link_off_[static_cast<std::size_t>(
                        slots_[static_cast<std::size_t>(
                                   d.links[static_cast<std::size_t>(i)])]
                            .index) +
                    1];
    }
    for (std::size_t k = 0; k < touched_.size(); ++k)
      link_off_[k + 1] += link_off_[k];
    link_flows_.resize(incidences);
    for (std::size_t f = 0; f < num_flows; ++f) {
      const FlowDemandView& d = flows[f];
      for (std::int32_t i = 0; i < d.count; ++i) {
        const auto k = static_cast<std::size_t>(
            slots_[static_cast<std::size_t>(d.links[static_cast<std::size_t>(i)])]
                .index);
        link_flows_[static_cast<std::size_t>(link_off_[k]++)] =
            static_cast<std::int32_t>(f);
      }
    }
    for (std::size_t k = touched_.size(); k > 0; --k)
      link_off_[k] = link_off_[k - 1];
    link_off_[0] = 0;
  }

  std::sort(caps_.begin(), caps_.end());

  const auto heap_greater = std::greater<HeapEntry>();
  for (const std::int32_t l : touched_) {
    const LinkSlot& slot = slots_[static_cast<std::size_t>(l)];
    heap_.push_back(HeapEntry{slot.remaining / slot.active, l});
  }
  std::make_heap(heap_.begin(), heap_.end(), heap_greater);

  // A fixed flow releases the capacity it leaves unused on each of its
  // links and stops counting toward their fair shares.
  const auto settle_flow = [&](std::int32_t f, Rate r) {
    rates[static_cast<std::size_t>(f)] = r;
    fixed_[static_cast<std::size_t>(f)] = 1;
    --unfixed;
    const FlowDemandView& d = flows[static_cast<std::size_t>(f)];
    if (trace)
      trace->settles.push_back(MaxMinWarmState::Settle{
          stable_id(static_cast<std::size_t>(f)),
          static_cast<std::int32_t>(trace->log.size()), r, d.cap});
    for (std::int32_t i = 0; i < d.count; ++i) {
      LinkSlot& slot =
          slots_[static_cast<std::size_t>(d.links[static_cast<std::size_t>(i)])];
      if (trace)
        trace->log.push_back(
            MaxMinWarmState::LogEntry{slot.index, slot.remaining});
      slot.remaining = std::max(0.0, slot.remaining - r);
      --slot.active;
    }
  };

  // Progressive filling: each round the globally tightest constraint —
  // a link fair share or a flow cap — fixes the flows it binds.
  std::size_t cap_ptr = 0;
  while (unfixed > 0) {
    // Tightest link fair share; lazily discard/re-key stale entries.
    Rate link_share = std::numeric_limits<Rate>::infinity();
    std::int32_t link = -1;
    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      const LinkSlot& slot = slots_[static_cast<std::size_t>(top.link)];
      if (slot.active == 0) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.pop_back();
        continue;
      }
      const Rate cur = slot.remaining / slot.active;
      if (cur > top.share * (1 + kShareSlack)) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.back().share = cur;
        std::push_heap(heap_.begin(), heap_.end(), heap_greater);
        continue;
      }
      link_share = cur;
      link = top.link;
      break;
    }

    // Flows capped at or below the share saturate at their own cap
    // first; they consume less than a fair share, so fixing them can
    // only raise the share of the remaining flows.
    while (cap_ptr < caps_.size() &&
           fixed_[static_cast<std::size_t>(caps_[cap_ptr].second)])
      ++cap_ptr;
    if (cap_ptr < caps_.size() && caps_[cap_ptr].first <= link_share) {
      if (trace)
        trace->rounds.push_back(MaxMinWarmState::Round{
            static_cast<std::int32_t>(trace->settles.size()),
            caps_[cap_ptr].first});
      settle_flow(caps_[cap_ptr].second, caps_[cap_ptr].first);
      ++cap_ptr;
      continue;
    }

    RATS_REQUIRE(link >= 0 && std::isfinite(link_share),
                 "no constraining link for active flows");
    // Saturate the bottleneck link: every unfixed flow crossing it gets
    // the fair share.  Links that tie (same share up to rounding) carry
    // on unchanged and pop next — fixing a shared flow at `share`
    // leaves a tied link's share exactly invariant.
    if (trace)
      trace->rounds.push_back(MaxMinWarmState::Round{
          static_cast<std::int32_t>(trace->settles.size()), link_share});
    std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
    heap_.pop_back();
    if (ext) {
      for (const std::int32_t id :
           (*ext->link_flows)[static_cast<std::size_t>(link)]) {
        const std::int32_t f = (*ext->local_of)[static_cast<std::size_t>(id)];
        if (fixed_[static_cast<std::size_t>(f)]) continue;
        settle_flow(f, link_share);
      }
    } else {
      const auto k = static_cast<std::size_t>(
          slots_[static_cast<std::size_t>(link)].index);
      for (auto idx = static_cast<std::size_t>(link_off_[k]);
           idx < static_cast<std::size_t>(link_off_[k + 1]); ++idx) {
        const std::int32_t f = link_flows_[idx];
        if (fixed_[static_cast<std::size_t>(f)]) continue;
        settle_flow(f, link_share);
      }
    }
  }
  if (trace) {
    trace->remaining.reserve(touched_.size());
    for (const std::int32_t l : touched_)
      trace->remaining.push_back(slots_[static_cast<std::size_t>(l)].remaining);
    trace->valid = true;
  }
}

// ---- warm re-solve -----------------------------------------------------

bool MaxMinSolver::solve_warm(const std::vector<Rate>& capacity,
                              MaxMinWarmState& state,
                              const FlowArrival* arrivals,
                              std::size_t num_arrivals,
                              const std::int32_t* departures,
                              std::size_t num_departures,
                              std::vector<std::pair<std::int32_t, Rate>>& changed) {
  if (!state.valid) return false;
  // Loopback arrivals need no cascade but would sit outside the round
  // structure; the (rare) caller cold-solves instead.
  for (std::size_t a = 0; a < num_arrivals; ++a) {
    if (arrivals[a].count <= 0) return false;
    for (std::int32_t i = 0; i < arrivals[a].count; ++i) {
      const std::int32_t l = arrivals[a].links[static_cast<std::size_t>(i)];
      RATS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < capacity.size(),
                   "flow references unknown link");
      RATS_REQUIRE(capacity[static_cast<std::size_t>(l)] > 0,
                   "used link must have positive capacity");
    }
  }

  const std::size_t num_known = state.links.size();
  const std::size_t num_settles = state.settles.size();

  // Dense mapping of the state's link table via the epoch-stamped slots.
  if (slots_.size() < capacity.size()) slots_.resize(capacity.size());
  ++epoch_;
  for (std::size_t d = 0; d < num_known; ++d) {
    LinkSlot& slot = slots_[static_cast<std::size_t>(state.links[d])];
    slot.epoch = epoch_;
    slot.index = static_cast<std::int32_t>(d);
  }

  // Locate each departure's settle.  Departed loopback flows (empty
  // link range) affect nobody: they are only compacted out of the trace.
  std::vector<std::int32_t>& dep_settles = warm_links_;  // reuse scratch
  dep_settles.clear();
  std::vector<std::int32_t> loopback_settles;  // rare; usually no alloc
  if (num_departures > 0) {
    std::size_t found = 0;
    for (std::size_t s = 0; s < num_settles && found < num_departures; ++s) {
      const MaxMinWarmState::Settle& st = state.settles[s];
      bool departs = false;
      for (std::size_t q = 0; q < num_departures; ++q)
        if (departures[q] == st.id) {
          departs = true;
          break;
        }
      if (!departs) continue;
      ++found;
      const std::int32_t end =
          s + 1 < num_settles ? state.settles[s + 1].link_off
                              : static_cast<std::int32_t>(state.log.size());
      if (st.link_off == end)
        loopback_settles.push_back(static_cast<std::int32_t>(s));
      else
        dep_settles.push_back(static_cast<std::int32_t>(s));
    }
    if (found != num_departures) {
      assert(false && "warm departure not present in trace");
      return false;
    }
  }

  // Divergence bound from the arrivals: their links' initial shares and
  // their caps.  Arriving flows only lower the shares of their own
  // links, so every round whose binding share stays strictly below the
  // bound is bitwise unaffected by the delta.
  warm_extra_.assign(num_known, 0);
  std::size_t num_new_links = 0;
  for (std::size_t a = 0; a < num_arrivals; ++a) {
    for (std::int32_t i = 0; i < arrivals[a].count; ++i) {
      const auto l = static_cast<std::size_t>(
          arrivals[a].links[static_cast<std::size_t>(i)]);
      LinkSlot& slot = slots_[l];
      if (slot.epoch != epoch_) {
        slot.epoch = epoch_;
        slot.index = static_cast<std::int32_t>(num_known + num_new_links);
        ++num_new_links;
        warm_extra_.push_back(0);
      }
      ++warm_extra_[static_cast<std::size_t>(slot.index)];
    }
  }
  Rate s_star = std::numeric_limits<Rate>::infinity();
  for (std::size_t a = 0; a < num_arrivals; ++a) {
    s_star = std::min(s_star, arrivals[a].cap);
    for (std::int32_t i = 0; i < arrivals[a].count; ++i) {
      const auto l = static_cast<std::size_t>(
          arrivals[a].links[static_cast<std::size_t>(i)]);
      const auto d = static_cast<std::size_t>(slots_[l].index);
      const std::int32_t base =
          d < num_known ? state.act0[d] : 0;
      s_star = std::min(
          s_star, capacity[l] / (base + warm_extra_[d]));
    }
  }

  // Divergence round: the earliest of any departure's fix round and the
  // first round whose share reaches the arrival bound.
  std::size_t k = state.rounds.size();
  if (!dep_settles.empty()) {
    // dep_settles is in settle order; the first one decides.
    const std::int32_t s0 = dep_settles.front();
    std::size_t lo = 0, hi = state.rounds.size();
    while (lo + 1 < hi) {  // last round with first_settle <= s0
      const std::size_t mid = (lo + hi) / 2;
      if (state.rounds[mid].first_settle <= s0)
        lo = mid;
      else
        hi = mid;
    }
    k = lo;
  }
  if (num_arrivals > 0) {
    const Rate bound = s_star * (1 - kDivergenceMargin);
    for (std::size_t r = 0; r < k; ++r) {
      if (state.rounds[r].share >= bound) {
        k = r;
        break;
      }
    }
  }

  const std::size_t first_undone =
      k < state.rounds.size()
          ? static_cast<std::size_t>(state.rounds[k].first_settle)
          : num_settles;
  const std::size_t undone = num_settles - first_undone;
  // When the cascade covers most of the trace a cold solve is cheaper:
  // the warm path pays the undo replay on top of re-filling, so it
  // needs a clear majority of the trace intact to win.
  if (undone * 5 > num_settles * 3 && undone > 16) return false;

  // ---- committed: everything below mutates `state` -------------------

  // Undo: replay the log suffix backwards, restoring each link's
  // residual to its pre-settle value and re-counting its unfixed flow.
  const std::size_t log_first =
      first_undone < num_settles
          ? static_cast<std::size_t>(state.settles[first_undone].link_off)
          : state.log.size();
  warm_active_.assign(num_known + num_new_links, 0);
  warm_touched_.assign(num_known + num_new_links, 0);
  for (std::size_t e = state.log.size(); e > log_first; --e) {
    const MaxMinWarmState::LogEntry& entry = state.log[e - 1];
    const auto d = static_cast<std::size_t>(entry.link);
    state.remaining[d] = entry.before;
    ++warm_active_[d];
    warm_touched_[d] = 1;
  }

  // Cascade work list: the undone flows (departures excluded, their
  // link counts removed) plus the arrivals.
  work_ids_.clear();
  work_caps_.clear();
  work_off_.clear();
  work_flow_links_.clear();
  std::size_t dep_ptr = 0;
  for (std::size_t s = first_undone; s < num_settles; ++s) {
    const MaxMinWarmState::Settle& st = state.settles[s];
    const auto begin = static_cast<std::size_t>(st.link_off);
    const auto end = s + 1 < num_settles
                         ? static_cast<std::size_t>(state.settles[s + 1].link_off)
                         : state.log.size();
    if (dep_ptr < dep_settles.size() &&
        dep_settles[dep_ptr] == static_cast<std::int32_t>(s)) {
      ++dep_ptr;
      for (std::size_t e = begin; e < end; ++e) {
        const auto d = static_cast<std::size_t>(state.log[e].link);
        --warm_active_[d];
        --state.act0[d];
      }
      continue;
    }
    work_ids_.push_back(st.id);
    work_caps_.push_back(st.cap);
    work_off_.push_back(static_cast<std::int32_t>(work_flow_links_.size()));
    for (std::size_t e = begin; e < end; ++e)
      work_flow_links_.push_back(state.log[e].link);
  }
  assert(dep_ptr == dep_settles.size() &&
         "departure fixed before the divergence round");

  // Arrivals: grow the link table for unseen links, then count the new
  // flows in.
  for (std::size_t a = 0; a < num_arrivals; ++a) {
    work_ids_.push_back(arrivals[a].id);
    work_caps_.push_back(arrivals[a].cap);
    work_off_.push_back(static_cast<std::int32_t>(work_flow_links_.size()));
    for (std::int32_t i = 0; i < arrivals[a].count; ++i) {
      const auto l = static_cast<std::size_t>(
          arrivals[a].links[static_cast<std::size_t>(i)]);
      const auto d = static_cast<std::size_t>(slots_[l].index);
      if (d >= state.links.size()) {
        assert(d == state.links.size());
        state.links.push_back(static_cast<std::int32_t>(l));
        state.act0.push_back(0);
        state.remaining.push_back(capacity[l]);
        state.max_capacity = std::max(state.max_capacity, capacity[l]);
      }
      ++warm_active_[d];
      ++state.act0[d];
      warm_touched_[d] = 1;
      work_flow_links_.push_back(static_cast<std::int32_t>(d));
    }
  }
  work_off_.push_back(static_cast<std::int32_t>(work_flow_links_.size()));

  // Truncate the undone tail of the trace; the continuation re-records.
  state.settles.resize(first_undone);
  state.log.resize(log_first);
  state.rounds.resize(k);

  const std::size_t num_work = work_ids_.size();
  std::size_t unfixed = num_work;
  if (num_work > 0) {
    // Mini-CSR over the cascade links and a fresh share heap (pop order
    // matches the cold solve's lazy heap: both yield the minimum
    // current share, ties by link id).
    std::vector<std::int32_t>& clinks = warm_links_;  // dep_settles done
    clinks.clear();
    const std::size_t total = num_known + num_new_links;
    if (csr_slot_.size() < total) csr_slot_.resize(total);
    for (std::size_t d = 0; d < total; ++d)
      if (warm_touched_[d]) {
        csr_slot_[d] = static_cast<std::int32_t>(clinks.size());
        clinks.push_back(static_cast<std::int32_t>(d));
      }
    work_csr_off_.assign(clinks.size() + 1, 0);
    for (const std::int32_t d : work_flow_links_)
      ++work_csr_off_[static_cast<std::size_t>(
                          csr_slot_[static_cast<std::size_t>(d)]) +
                      1];
    for (std::size_t c = 0; c < clinks.size(); ++c)
      work_csr_off_[c + 1] += work_csr_off_[c];
    work_csr_.resize(work_flow_links_.size());
    for (std::size_t w = 0; w < num_work; ++w)
      for (auto i = static_cast<std::size_t>(work_off_[w]);
           i < static_cast<std::size_t>(work_off_[w + 1]); ++i) {
        const auto c = static_cast<std::size_t>(
            csr_slot_[static_cast<std::size_t>(work_flow_links_[i])]);
        work_csr_[static_cast<std::size_t>(work_csr_off_[c]++)] =
            static_cast<std::int32_t>(w);
      }
    for (std::size_t c = clinks.size(); c > 0; --c)
      work_csr_off_[c] = work_csr_off_[c - 1];
    work_csr_off_[0] = 0;

    fixed_.assign(num_work, 0);
    caps_.clear();
    Rate min_cap = std::numeric_limits<Rate>::infinity();
    for (std::size_t w = 0; w < num_work; ++w)
      if (std::isfinite(work_caps_[w])) {
        caps_.emplace_back(work_caps_[w], static_cast<std::int32_t>(w));
        min_cap = std::min(min_cap, work_caps_[w]);
      }
    // Same reachability cut as the cold solve; `max_capacity` is the
    // monotone over-approximation, which can only keep extra
    // never-binding caps.
    if (min_cap > state.max_capacity) caps_.clear();
    std::sort(caps_.begin(), caps_.end());

    heap_.clear();
    const auto heap_greater = std::greater<HeapEntry>();
    for (const std::int32_t d : clinks)
      if (warm_active_[static_cast<std::size_t>(d)] > 0)
        heap_.push_back(
            HeapEntry{state.remaining[static_cast<std::size_t>(d)] /
                          warm_active_[static_cast<std::size_t>(d)],
                      state.links[static_cast<std::size_t>(d)]});
    std::make_heap(heap_.begin(), heap_.end(), heap_greater);

    const auto settle_work = [&](std::int32_t w, Rate r) {
      changed.emplace_back(work_ids_[static_cast<std::size_t>(w)], r);
      state.settles.push_back(MaxMinWarmState::Settle{
          work_ids_[static_cast<std::size_t>(w)],
          static_cast<std::int32_t>(state.log.size()), r,
          work_caps_[static_cast<std::size_t>(w)]});
      for (auto i = static_cast<std::size_t>(work_off_[w]);
           i < static_cast<std::size_t>(work_off_[w + 1]); ++i) {
        const auto d = static_cast<std::size_t>(work_flow_links_[i]);
        state.log.push_back(MaxMinWarmState::LogEntry{
            static_cast<std::int32_t>(d), state.remaining[d]});
        state.remaining[d] = std::max(0.0, state.remaining[d] - r);
        --warm_active_[d];
      }
      fixed_[static_cast<std::size_t>(w)] = 1;
      --unfixed;
    };

    std::size_t cap_ptr = 0;
    while (unfixed > 0) {
      Rate link_share = std::numeric_limits<Rate>::infinity();
      std::int32_t link = -1;
      while (!heap_.empty()) {
        const HeapEntry top = heap_.front();
        const auto d = static_cast<std::size_t>(
            slots_[static_cast<std::size_t>(top.link)].index);
        if (warm_active_[d] == 0) {
          std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
          heap_.pop_back();
          continue;
        }
        const Rate cur = state.remaining[d] / warm_active_[d];
        if (cur > top.share * (1 + kShareSlack)) {
          std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
          heap_.back().share = cur;
          std::push_heap(heap_.begin(), heap_.end(), heap_greater);
          continue;
        }
        link_share = cur;
        link = top.link;
        break;
      }

      while (cap_ptr < caps_.size() &&
             fixed_[static_cast<std::size_t>(caps_[cap_ptr].second)])
        ++cap_ptr;
      if (cap_ptr < caps_.size() && caps_[cap_ptr].first <= link_share) {
        state.rounds.push_back(MaxMinWarmState::Round{
            static_cast<std::int32_t>(state.settles.size()),
            caps_[cap_ptr].first});
        settle_work(caps_[cap_ptr].second, caps_[cap_ptr].first);
        ++cap_ptr;
        continue;
      }

      RATS_REQUIRE(link >= 0 && std::isfinite(link_share),
                   "no constraining link for active flows");
      state.rounds.push_back(MaxMinWarmState::Round{
          static_cast<std::int32_t>(state.settles.size()), link_share});
      std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
      heap_.pop_back();
      const auto c = static_cast<std::size_t>(csr_slot_[static_cast<std::size_t>(
          slots_[static_cast<std::size_t>(link)].index)]);
      for (auto i = static_cast<std::size_t>(work_csr_off_[c]);
           i < static_cast<std::size_t>(work_csr_off_[c + 1]); ++i) {
        const std::int32_t w = work_csr_[i];
        if (fixed_[static_cast<std::size_t>(w)]) continue;
        settle_work(w, link_share);
      }
    }
  }

  // Compact departed loopback settles (always in the kept prefix, all
  // before the first round).
  if (!loopback_settles.empty()) {
    std::size_t out = 0, rm = 0;
    for (std::size_t s = 0; s < state.settles.size(); ++s) {
      if (rm < loopback_settles.size() &&
          loopback_settles[rm] == static_cast<std::int32_t>(s)) {
        ++rm;
        continue;
      }
      state.settles[out++] = state.settles[s];
    }
    state.settles.resize(out);
    for (MaxMinWarmState::Round& r : state.rounds)
      r.first_settle -= static_cast<std::int32_t>(rm);
  }
  return true;
}

// ---- bipartite waterfilling --------------------------------------------

void BipartiteWaterfillSolver::solve(const std::vector<Rate>& capacity,
                                     const FlowDemandView* flows,
                                     std::size_t num_flows, Rate* rates,
                                     MaxMinWarmState* trace,
                                     const std::int32_t* stable_ids) {
  const std::size_t num_links = capacity.size();
  if (slots_.size() < num_links) slots_.resize(num_links);
  ++epoch_;

  touched_.clear();
  caps_.clear();
  heap_.clear();
  fixed_.assign(num_flows, 0);
  flow_links_.resize(2 * num_flows);
  if (trace) trace->invalidate();

  // Pass 1: exactly two links per flow, unrolled.
  std::size_t unfixed = num_flows;
  Rate min_cap = std::numeric_limits<Rate>::infinity();
  Rate max_touched_capacity = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    const FlowDemandView& d = flows[f];
    RATS_REQUIRE(d.count == 2, "bipartite solver requires two-link routes");
    rates[f] = 0.0;
    for (std::size_t i = 0; i < 2; ++i) {
      const std::int32_t l = d.links[i];
      RATS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < num_links,
                   "flow references unknown link");
      LinkSlot& slot = slots_[static_cast<std::size_t>(l)];
      if (slot.epoch != epoch_) {
        const Rate cap_l = capacity[static_cast<std::size_t>(l)];
        RATS_REQUIRE(cap_l > 0, "used link must have positive capacity");
        slot.epoch = epoch_;
        slot.remaining = cap_l;
        slot.active = 0;
        slot.index = static_cast<std::int32_t>(touched_.size());
        touched_.push_back(l);
        max_touched_capacity = std::max(max_touched_capacity, cap_l);
      }
      ++slot.active;
      flow_links_[2 * f + i] = l;
    }
    if (std::isfinite(d.cap)) {
      caps_.emplace_back(d.cap, static_cast<std::int32_t>(f));
      min_cap = std::min(min_cap, d.cap);
    }
  }
  if (trace) {
    trace->links = touched_;
    trace->act0.reserve(touched_.size());
    for (const std::int32_t l : touched_)
      trace->act0.push_back(slots_[static_cast<std::size_t>(l)].active);
    trace->max_capacity = max_touched_capacity;
  }
  if (num_flows == 0) {
    if (trace) trace->valid = true;
    return;
  }
  if (min_cap > max_touched_capacity) caps_.clear();
  std::sort(caps_.begin(), caps_.end());

  // CSR straight from the per-link counts (no separate counting pass).
  link_off_.assign(touched_.size() + 1, 0);
  for (std::size_t q = 0; q < touched_.size(); ++q)
    link_off_[q + 1] =
        link_off_[q] + slots_[static_cast<std::size_t>(touched_[q])].active;
  link_csr_.resize(2 * num_flows);
  for (std::size_t f = 0; f < num_flows; ++f)
    for (std::size_t i = 0; i < 2; ++i) {
      const auto q = static_cast<std::size_t>(
          slots_[static_cast<std::size_t>(flow_links_[2 * f + i])].index);
      link_csr_[static_cast<std::size_t>(link_off_[q]++)] =
          static_cast<std::int32_t>(f);
    }
  for (std::size_t q = touched_.size(); q > 0; --q)
    link_off_[q] = link_off_[q - 1];
  link_off_[0] = 0;

  const auto heap_greater = std::greater<HeapEntry>();
  for (const std::int32_t l : touched_) {
    const LinkSlot& slot = slots_[static_cast<std::size_t>(l)];
    heap_.push_back(HeapEntry{slot.remaining / slot.active, l});
  }
  std::make_heap(heap_.begin(), heap_.end(), heap_greater);

  const auto settle_flow = [&](std::int32_t f, Rate r) {
    rates[static_cast<std::size_t>(f)] = r;
    fixed_[static_cast<std::size_t>(f)] = 1;
    --unfixed;
    if (trace)
      trace->settles.push_back(MaxMinWarmState::Settle{
          stable_ids ? stable_ids[static_cast<std::size_t>(f)] : f,
          static_cast<std::int32_t>(trace->log.size()), r,
          flows[static_cast<std::size_t>(f)].cap});
    for (std::size_t i = 0; i < 2; ++i) {
      LinkSlot& slot = slots_[static_cast<std::size_t>(
          flow_links_[2 * static_cast<std::size_t>(f) + i])];
      if (trace)
        trace->log.push_back(
            MaxMinWarmState::LogEntry{slot.index, slot.remaining});
      slot.remaining = std::max(0.0, slot.remaining - r);
      --slot.active;
    }
  };

  std::size_t cap_ptr = 0;
  while (unfixed > 0) {
    Rate link_share = std::numeric_limits<Rate>::infinity();
    std::int32_t link = -1;
    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      const LinkSlot& slot = slots_[static_cast<std::size_t>(top.link)];
      if (slot.active == 0) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.pop_back();
        continue;
      }
      const Rate cur = slot.remaining / slot.active;
      if (cur > top.share * (1 + kShareSlack)) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.back().share = cur;
        std::push_heap(heap_.begin(), heap_.end(), heap_greater);
        continue;
      }
      link_share = cur;
      link = top.link;
      break;
    }

    while (cap_ptr < caps_.size() &&
           fixed_[static_cast<std::size_t>(caps_[cap_ptr].second)])
      ++cap_ptr;
    if (cap_ptr < caps_.size() && caps_[cap_ptr].first <= link_share) {
      if (trace)
        trace->rounds.push_back(MaxMinWarmState::Round{
            static_cast<std::int32_t>(trace->settles.size()),
            caps_[cap_ptr].first});
      settle_flow(caps_[cap_ptr].second, caps_[cap_ptr].first);
      ++cap_ptr;
      continue;
    }

    RATS_REQUIRE(link >= 0 && std::isfinite(link_share),
                 "no constraining link for active flows");
    if (trace)
      trace->rounds.push_back(MaxMinWarmState::Round{
          static_cast<std::int32_t>(trace->settles.size()), link_share});
    std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
    heap_.pop_back();
    const auto q =
        static_cast<std::size_t>(slots_[static_cast<std::size_t>(link)].index);
    for (auto idx = static_cast<std::size_t>(link_off_[q]);
         idx < static_cast<std::size_t>(link_off_[q + 1]); ++idx) {
      const std::int32_t f = link_csr_[idx];
      if (fixed_[static_cast<std::size_t>(f)]) continue;
      settle_flow(f, link_share);
    }
  }
  if (trace) {
    trace->remaining.reserve(touched_.size());
    for (const std::int32_t l : touched_)
      trace->remaining.push_back(slots_[static_cast<std::size_t>(l)].remaining);
    trace->valid = true;
  }
}

std::vector<Rate> maxmin_fair_rates(const std::vector<Rate>& capacity,
                                    const std::vector<FlowDemand>& flows) {
  MaxMinSolver solver;
  std::vector<Rate> rates;
  solver.solve(capacity, flows, rates);
  return rates;
}

std::vector<Rate> maxmin_fair_rates_reference(
    const std::vector<Rate>& capacity, const std::vector<FlowDemand>& flows) {
  const std::size_t num_links = capacity.size();
  const std::size_t num_flows = flows.size();
  std::vector<Rate> rate(num_flows, 0.0);

  // Remaining capacity and number of still-unfixed flows per link.
  std::vector<Rate> remaining = capacity;
  std::vector<std::int32_t> active_count(num_links, 0);
  std::vector<char> fixed(num_flows, 0);
  std::vector<char> saturated(num_links, 0);

  std::size_t unfixed = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flows[f].links.empty()) {
      // Loopback: not constrained by any link.
      rate[f] = flows[f].cap;
      fixed[f] = 1;
      continue;
    }
    for (auto l : flows[f].links) {
      RATS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < num_links,
                   "flow references unknown link");
      RATS_REQUIRE(capacity[static_cast<std::size_t>(l)] > 0,
                   "used link must have positive capacity");
      ++active_count[static_cast<std::size_t>(l)];
    }
    ++unfixed;
  }

  // Progressive filling: repeatedly find the tightest constraint (link
  // fair share or flow cap) and fix every flow bound by it.
  while (unfixed > 0) {
    // Tightest link fair share among links still carrying unfixed flows.
    Rate share = std::numeric_limits<Rate>::infinity();
    for (std::size_t l = 0; l < num_links; ++l)
      if (active_count[l] > 0)
        share = std::min(share, remaining[l] / active_count[l]);
    RATS_REQUIRE(std::isfinite(share), "no constraining link for active flows");

    // Flows capped at or below the share saturate at their own cap
    // first; they consume less than a fair share, so fixing them can
    // only raise the share of the remaining flows (hence the loop).
    bool fixed_by_cap = false;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (fixed[f] || flows[f].cap > share) continue;
      rate[f] = flows[f].cap;
      fixed[f] = 1;
      --unfixed;
      fixed_by_cap = true;
      for (auto l : flows[f].links) {
        remaining[static_cast<std::size_t>(l)] -= rate[f];
        --active_count[static_cast<std::size_t>(l)];
      }
    }
    if (fixed_by_cap) continue;

    // Otherwise saturate the bottleneck link(s).  The saturated set is
    // snapshotted before fixing anything: fixing a flow mutates
    // remaining/active_count, so testing saturation on the live arrays
    // would make the outcome depend on flow index order.
    const Rate eps = share * 1e-12;
    for (std::size_t l = 0; l < num_links; ++l)
      saturated[l] = active_count[l] > 0 &&
                     remaining[l] / active_count[l] <= share + eps;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (fixed[f]) continue;
      bool bottlenecked = false;
      for (auto l : flows[f].links) {
        if (saturated[static_cast<std::size_t>(l)]) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      rate[f] = share;
      fixed[f] = 1;
      --unfixed;
      for (auto l : flows[f].links) {
        const auto li = static_cast<std::size_t>(l);
        remaining[li] = std::max(0.0, remaining[li] - share);
        --active_count[li];
      }
    }
  }
  return rate;
}

}  // namespace rats
