#include "net/maxmin.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace rats {

namespace {
// A heap entry is considered stale when the link's current fair share
// has grown past the keyed value by more than this relative slack
// (shares are non-decreasing as flows are fixed, so stale entries are
// always under-keyed, never over-keyed).
constexpr double kShareSlack = 1e-12;
}  // namespace

void MaxMinSolver::solve(const std::vector<Rate>& capacity,
                         const std::vector<FlowDemand>& flows,
                         std::vector<Rate>& rates) {
  views_.clear();
  views_.reserve(flows.size());
  for (const FlowDemand& f : flows)
    views_.push_back(FlowDemandView{
        f.links.data(), static_cast<std::int32_t>(f.links.size()), f.cap});
  rates.resize(flows.size());
  solve(capacity, views_.data(), views_.size(), rates.data());
}

void MaxMinSolver::solve(const std::vector<Rate>& capacity,
                         const FlowDemandView* flows, std::size_t num_flows,
                         Rate* rates) {
  solve_impl(capacity, flows, num_flows, rates, nullptr);
}

void MaxMinSolver::solve(const std::vector<Rate>& capacity,
                         const FlowDemandView* flows, std::size_t num_flows,
                         Rate* rates,
                         const std::vector<std::vector<std::int32_t>>& link_flows,
                         const std::vector<std::int32_t>& local_of) {
  const ExtAdjacency ext{&link_flows, &local_of};
  solve_impl(capacity, flows, num_flows, rates, &ext);
}

void MaxMinSolver::solve_impl(const std::vector<Rate>& capacity,
                              const FlowDemandView* flows,
                              std::size_t num_flows, Rate* rates,
                              const ExtAdjacency* ext) {
  const std::size_t num_links = capacity.size();
  // Per-link slots are epoch-stamped: growing them is the only O(L)
  // work, paid once; after that a solve touches only its own links.
  if (slots_.size() < num_links) slots_.resize(num_links);
  ++epoch_;

  touched_.clear();
  caps_.clear();
  heap_.clear();
  fixed_.assign(num_flows, 0);

  // Pass 1: validate, count link incidences, fix loopback flows.
  std::size_t unfixed = 0;
  std::size_t incidences = 0;
  Rate min_cap = std::numeric_limits<Rate>::infinity();
  Rate max_touched_capacity = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    const FlowDemandView& d = flows[f];
    if (d.count == 0) {
      // Loopback: not constrained by any link.
      rates[f] = d.cap;
      fixed_[f] = 1;
      continue;
    }
    rates[f] = 0.0;
    for (std::int32_t i = 0; i < d.count; ++i) {
      const std::int32_t l = d.links[static_cast<std::size_t>(i)];
      RATS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < num_links,
                   "flow references unknown link");
      LinkSlot& slot = slots_[static_cast<std::size_t>(l)];
      if (slot.epoch != epoch_) {
        const Rate cap_l = capacity[static_cast<std::size_t>(l)];
        RATS_REQUIRE(cap_l > 0, "used link must have positive capacity");
        slot.epoch = epoch_;
        slot.remaining = cap_l;
        slot.active = 0;
        slot.index = static_cast<std::int32_t>(touched_.size());
        touched_.push_back(l);
        max_touched_capacity = std::max(max_touched_capacity, cap_l);
      }
      ++slot.active;
    }
    if (std::isfinite(d.cap)) {
      caps_.emplace_back(d.cap, static_cast<std::int32_t>(f));
      min_cap = std::min(min_cap, d.cap);
    }
    ++unfixed;
    incidences += static_cast<std::size_t>(d.count);
  }
  if (unfixed == 0) return;

  // Fair shares never exceed the largest touched capacity, so when even
  // the smallest cap is above it no cap can ever be the tightest
  // constraint (cap <= share is unreachable) — drop the cap machinery,
  // including its O(F log F) sort.  Common case: the TCP-window bound
  // W/RTT sits far above the per-link bandwidth on low-latency
  // clusters.
  if (min_cap > max_touched_capacity) caps_.clear();

  // Pass 2: CSR link->flow adjacency over the touched links only —
  // skipped entirely when the caller shares its own adjacency table.
  // Offsets are advanced while filling and restored by the shift below,
  // avoiding a cursor array.
  if (!ext) {
    link_off_.assign(touched_.size() + 1, 0);
    for (std::size_t f = 0; f < num_flows; ++f) {
      const FlowDemandView& d = flows[f];
      for (std::int32_t i = 0; i < d.count; ++i)
        ++link_off_[static_cast<std::size_t>(
                        slots_[static_cast<std::size_t>(
                                   d.links[static_cast<std::size_t>(i)])]
                            .index) +
                    1];
    }
    for (std::size_t k = 0; k < touched_.size(); ++k)
      link_off_[k + 1] += link_off_[k];
    link_flows_.resize(incidences);
    for (std::size_t f = 0; f < num_flows; ++f) {
      const FlowDemandView& d = flows[f];
      for (std::int32_t i = 0; i < d.count; ++i) {
        const auto k = static_cast<std::size_t>(
            slots_[static_cast<std::size_t>(d.links[static_cast<std::size_t>(i)])]
                .index);
        link_flows_[static_cast<std::size_t>(link_off_[k]++)] =
            static_cast<std::int32_t>(f);
      }
    }
    for (std::size_t k = touched_.size(); k > 0; --k)
      link_off_[k] = link_off_[k - 1];
    link_off_[0] = 0;
  }

  std::sort(caps_.begin(), caps_.end());

  const auto heap_greater = std::greater<HeapEntry>();
  for (const std::int32_t l : touched_) {
    const LinkSlot& slot = slots_[static_cast<std::size_t>(l)];
    heap_.push_back(HeapEntry{slot.remaining / slot.active, l});
  }
  std::make_heap(heap_.begin(), heap_.end(), heap_greater);

  // A fixed flow releases the capacity it leaves unused on each of its
  // links and stops counting toward their fair shares.
  const auto settle_flow = [&](std::int32_t f, Rate r) {
    rates[static_cast<std::size_t>(f)] = r;
    fixed_[static_cast<std::size_t>(f)] = 1;
    --unfixed;
    const FlowDemandView& d = flows[static_cast<std::size_t>(f)];
    for (std::int32_t i = 0; i < d.count; ++i) {
      LinkSlot& slot =
          slots_[static_cast<std::size_t>(d.links[static_cast<std::size_t>(i)])];
      slot.remaining = std::max(0.0, slot.remaining - r);
      --slot.active;
    }
  };

  // Progressive filling: each round the globally tightest constraint —
  // a link fair share or a flow cap — fixes the flows it binds.
  std::size_t cap_ptr = 0;
  while (unfixed > 0) {
    // Tightest link fair share; lazily discard/re-key stale entries.
    Rate link_share = std::numeric_limits<Rate>::infinity();
    std::int32_t link = -1;
    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      const LinkSlot& slot = slots_[static_cast<std::size_t>(top.link)];
      if (slot.active == 0) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.pop_back();
        continue;
      }
      const Rate cur = slot.remaining / slot.active;
      if (cur > top.share * (1 + kShareSlack)) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.back().share = cur;
        std::push_heap(heap_.begin(), heap_.end(), heap_greater);
        continue;
      }
      link_share = cur;
      link = top.link;
      break;
    }

    // Flows capped at or below the share saturate at their own cap
    // first; they consume less than a fair share, so fixing them can
    // only raise the share of the remaining flows.
    while (cap_ptr < caps_.size() &&
           fixed_[static_cast<std::size_t>(caps_[cap_ptr].second)])
      ++cap_ptr;
    if (cap_ptr < caps_.size() && caps_[cap_ptr].first <= link_share) {
      settle_flow(caps_[cap_ptr].second, caps_[cap_ptr].first);
      ++cap_ptr;
      continue;
    }

    RATS_REQUIRE(link >= 0 && std::isfinite(link_share),
                 "no constraining link for active flows");
    // Saturate the bottleneck link: every unfixed flow crossing it gets
    // the fair share.  Links that tie (same share up to rounding) carry
    // on unchanged and pop next — fixing a shared flow at `share`
    // leaves a tied link's share exactly invariant.
    std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
    heap_.pop_back();
    if (ext) {
      for (const std::int32_t id :
           (*ext->link_flows)[static_cast<std::size_t>(link)]) {
        const std::int32_t f = (*ext->local_of)[static_cast<std::size_t>(id)];
        if (fixed_[static_cast<std::size_t>(f)]) continue;
        settle_flow(f, link_share);
      }
    } else {
      const auto k = static_cast<std::size_t>(
          slots_[static_cast<std::size_t>(link)].index);
      for (auto idx = static_cast<std::size_t>(link_off_[k]);
           idx < static_cast<std::size_t>(link_off_[k + 1]); ++idx) {
        const std::int32_t f = link_flows_[idx];
        if (fixed_[static_cast<std::size_t>(f)]) continue;
        settle_flow(f, link_share);
      }
    }
  }
}

std::vector<Rate> maxmin_fair_rates(const std::vector<Rate>& capacity,
                                    const std::vector<FlowDemand>& flows) {
  MaxMinSolver solver;
  std::vector<Rate> rates;
  solver.solve(capacity, flows, rates);
  return rates;
}

std::vector<Rate> maxmin_fair_rates_reference(
    const std::vector<Rate>& capacity, const std::vector<FlowDemand>& flows) {
  const std::size_t num_links = capacity.size();
  const std::size_t num_flows = flows.size();
  std::vector<Rate> rate(num_flows, 0.0);

  // Remaining capacity and number of still-unfixed flows per link.
  std::vector<Rate> remaining = capacity;
  std::vector<std::int32_t> active_count(num_links, 0);
  std::vector<char> fixed(num_flows, 0);
  std::vector<char> saturated(num_links, 0);

  std::size_t unfixed = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flows[f].links.empty()) {
      // Loopback: not constrained by any link.
      rate[f] = flows[f].cap;
      fixed[f] = 1;
      continue;
    }
    for (auto l : flows[f].links) {
      RATS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < num_links,
                   "flow references unknown link");
      RATS_REQUIRE(capacity[static_cast<std::size_t>(l)] > 0,
                   "used link must have positive capacity");
      ++active_count[static_cast<std::size_t>(l)];
    }
    ++unfixed;
  }

  // Progressive filling: repeatedly find the tightest constraint (link
  // fair share or flow cap) and fix every flow bound by it.
  while (unfixed > 0) {
    // Tightest link fair share among links still carrying unfixed flows.
    Rate share = std::numeric_limits<Rate>::infinity();
    for (std::size_t l = 0; l < num_links; ++l)
      if (active_count[l] > 0)
        share = std::min(share, remaining[l] / active_count[l]);
    RATS_REQUIRE(std::isfinite(share), "no constraining link for active flows");

    // Flows capped at or below the share saturate at their own cap
    // first; they consume less than a fair share, so fixing them can
    // only raise the share of the remaining flows (hence the loop).
    bool fixed_by_cap = false;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (fixed[f] || flows[f].cap > share) continue;
      rate[f] = flows[f].cap;
      fixed[f] = 1;
      --unfixed;
      fixed_by_cap = true;
      for (auto l : flows[f].links) {
        remaining[static_cast<std::size_t>(l)] -= rate[f];
        --active_count[static_cast<std::size_t>(l)];
      }
    }
    if (fixed_by_cap) continue;

    // Otherwise saturate the bottleneck link(s).  The saturated set is
    // snapshotted before fixing anything: fixing a flow mutates
    // remaining/active_count, so testing saturation on the live arrays
    // would make the outcome depend on flow index order.
    const Rate eps = share * 1e-12;
    for (std::size_t l = 0; l < num_links; ++l)
      saturated[l] = active_count[l] > 0 &&
                     remaining[l] / active_count[l] <= share + eps;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (fixed[f]) continue;
      bool bottlenecked = false;
      for (auto l : flows[f].links) {
        if (saturated[static_cast<std::size_t>(l)]) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      rate[f] = share;
      fixed[f] = 1;
      --unfixed;
      for (auto l : flows[f].links) {
        const auto li = static_cast<std::size_t>(l);
        remaining[li] = std::max(0.0, remaining[li] - share);
        --active_count[li];
      }
    }
  }
  return rate;
}

}  // namespace rats
