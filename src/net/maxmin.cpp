#include "net/maxmin.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace rats {

namespace {
// A heap entry is considered stale when the link's current fair share
// has grown past the keyed value by more than this relative slack
// (shares are non-decreasing as flows are fixed, so stale entries are
// always under-keyed, never over-keyed).
constexpr double kShareSlack = 1e-12;
}  // namespace

void MaxMinSolver::solve(const std::vector<Rate>& capacity,
                         const std::vector<FlowDemand>& flows,
                         std::vector<Rate>& rates) {
  const std::size_t num_links = capacity.size();
  const std::size_t num_flows = flows.size();
  rates.assign(num_flows, 0.0);

  remaining_ = capacity;
  active_.assign(num_links, 0);
  fixed_.assign(num_flows, 0);
  caps_.clear();
  heap_.clear();
  link_off_.assign(num_links + 1, 0);

  // Pass 1: validate, count link incidences, fix loopback flows.
  std::size_t unfixed = 0;
  std::size_t incidences = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flows[f].links.empty()) {
      // Loopback: not constrained by any link.
      rates[f] = flows[f].cap;
      fixed_[f] = 1;
      continue;
    }
    for (auto l : flows[f].links) {
      RATS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < num_links,
                   "flow references unknown link");
      const auto li = static_cast<std::size_t>(l);
      RATS_REQUIRE(capacity[li] > 0, "used link must have positive capacity");
      ++active_[li];
      ++link_off_[li + 1];
    }
    if (std::isfinite(flows[f].cap))
      caps_.emplace_back(flows[f].cap, static_cast<std::int32_t>(f));
    ++unfixed;
    incidences += flows[f].links.size();
  }
  if (unfixed == 0) return;

  // Pass 2: CSR link->flow adjacency.  link_off_[l] is advanced while
  // filling and restored by the shift below, avoiding a cursor array.
  for (std::size_t l = 0; l < num_links; ++l) link_off_[l + 1] += link_off_[l];
  link_flows_.resize(incidences);
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flows[f].links.empty()) continue;
    for (auto l : flows[f].links)
      link_flows_[static_cast<std::size_t>(
          link_off_[static_cast<std::size_t>(l)]++)] =
          static_cast<std::int32_t>(f);
  }
  for (std::size_t l = num_links; l > 0; --l) link_off_[l] = link_off_[l - 1];
  link_off_[0] = 0;

  std::sort(caps_.begin(), caps_.end());

  const auto heap_greater = std::greater<HeapEntry>();
  for (std::size_t l = 0; l < num_links; ++l)
    if (active_[l] > 0)
      heap_.push_back(HeapEntry{remaining_[l] / active_[l],
                                static_cast<std::int32_t>(l)});
  std::make_heap(heap_.begin(), heap_.end(), heap_greater);

  // A fixed flow releases the capacity it leaves unused on each of its
  // links and stops counting toward their fair shares.
  const auto settle_flow = [&](std::int32_t f, Rate r) {
    rates[static_cast<std::size_t>(f)] = r;
    fixed_[static_cast<std::size_t>(f)] = 1;
    --unfixed;
    for (auto l : flows[static_cast<std::size_t>(f)].links) {
      const auto li = static_cast<std::size_t>(l);
      remaining_[li] = std::max(0.0, remaining_[li] - r);
      --active_[li];
    }
  };

  // Progressive filling: each round the globally tightest constraint —
  // a link fair share or a flow cap — fixes the flows it binds.
  std::size_t cap_ptr = 0;
  while (unfixed > 0) {
    // Tightest link fair share; lazily discard/re-key stale entries.
    Rate link_share = std::numeric_limits<Rate>::infinity();
    std::int32_t link = -1;
    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      const auto li = static_cast<std::size_t>(top.link);
      if (active_[li] == 0) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.pop_back();
        continue;
      }
      const Rate cur = remaining_[li] / active_[li];
      if (cur > top.share * (1 + kShareSlack)) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.back().share = cur;
        std::push_heap(heap_.begin(), heap_.end(), heap_greater);
        continue;
      }
      link_share = cur;
      link = top.link;
      break;
    }

    // Flows capped at or below the share saturate at their own cap
    // first; they consume less than a fair share, so fixing them can
    // only raise the share of the remaining flows.
    while (cap_ptr < caps_.size() &&
           fixed_[static_cast<std::size_t>(caps_[cap_ptr].second)])
      ++cap_ptr;
    if (cap_ptr < caps_.size() && caps_[cap_ptr].first <= link_share) {
      settle_flow(caps_[cap_ptr].second, caps_[cap_ptr].first);
      ++cap_ptr;
      continue;
    }

    RATS_REQUIRE(link >= 0 && std::isfinite(link_share),
                 "no constraining link for active flows");
    // Saturate the bottleneck link: every unfixed flow crossing it gets
    // the fair share.  Links that tie (same share up to rounding) carry
    // on unchanged and pop next — fixing a shared flow at `share`
    // leaves a tied link's share exactly invariant.
    std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
    heap_.pop_back();
    for (auto idx = static_cast<std::size_t>(
             link_off_[static_cast<std::size_t>(link)]);
         idx <
         static_cast<std::size_t>(link_off_[static_cast<std::size_t>(link) + 1]);
         ++idx) {
      const std::int32_t f = link_flows_[idx];
      if (fixed_[static_cast<std::size_t>(f)]) continue;
      settle_flow(f, link_share);
    }
  }
}

std::vector<Rate> maxmin_fair_rates(const std::vector<Rate>& capacity,
                                    const std::vector<FlowDemand>& flows) {
  MaxMinSolver solver;
  std::vector<Rate> rates;
  solver.solve(capacity, flows, rates);
  return rates;
}

std::vector<Rate> maxmin_fair_rates_reference(
    const std::vector<Rate>& capacity, const std::vector<FlowDemand>& flows) {
  const std::size_t num_links = capacity.size();
  const std::size_t num_flows = flows.size();
  std::vector<Rate> rate(num_flows, 0.0);

  // Remaining capacity and number of still-unfixed flows per link.
  std::vector<Rate> remaining = capacity;
  std::vector<std::int32_t> active_count(num_links, 0);
  std::vector<char> fixed(num_flows, 0);
  std::vector<char> saturated(num_links, 0);

  std::size_t unfixed = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flows[f].links.empty()) {
      // Loopback: not constrained by any link.
      rate[f] = flows[f].cap;
      fixed[f] = 1;
      continue;
    }
    for (auto l : flows[f].links) {
      RATS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < num_links,
                   "flow references unknown link");
      RATS_REQUIRE(capacity[static_cast<std::size_t>(l)] > 0,
                   "used link must have positive capacity");
      ++active_count[static_cast<std::size_t>(l)];
    }
    ++unfixed;
  }

  // Progressive filling: repeatedly find the tightest constraint (link
  // fair share or flow cap) and fix every flow bound by it.
  while (unfixed > 0) {
    // Tightest link fair share among links still carrying unfixed flows.
    Rate share = std::numeric_limits<Rate>::infinity();
    for (std::size_t l = 0; l < num_links; ++l)
      if (active_count[l] > 0)
        share = std::min(share, remaining[l] / active_count[l]);
    RATS_REQUIRE(std::isfinite(share), "no constraining link for active flows");

    // Flows capped at or below the share saturate at their own cap
    // first; they consume less than a fair share, so fixing them can
    // only raise the share of the remaining flows (hence the loop).
    bool fixed_by_cap = false;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (fixed[f] || flows[f].cap > share) continue;
      rate[f] = flows[f].cap;
      fixed[f] = 1;
      --unfixed;
      fixed_by_cap = true;
      for (auto l : flows[f].links) {
        remaining[static_cast<std::size_t>(l)] -= rate[f];
        --active_count[static_cast<std::size_t>(l)];
      }
    }
    if (fixed_by_cap) continue;

    // Otherwise saturate the bottleneck link(s).  The saturated set is
    // snapshotted before fixing anything: fixing a flow mutates
    // remaining/active_count, so testing saturation on the live arrays
    // would make the outcome depend on flow index order.
    const Rate eps = share * 1e-12;
    for (std::size_t l = 0; l < num_links; ++l)
      saturated[l] = active_count[l] > 0 &&
                     remaining[l] / active_count[l] <= share + eps;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (fixed[f]) continue;
      bool bottlenecked = false;
      for (auto l : flows[f].links) {
        if (saturated[static_cast<std::size_t>(l)]) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      rate[f] = share;
      fixed[f] = 1;
      --unfixed;
      for (auto l : flows[f].links) {
        const auto li = static_cast<std::size_t>(l);
        remaining[li] = std::max(0.0, remaining[li] - share);
        --active_count[li];
      }
    }
  }
  return rate;
}

}  // namespace rats
