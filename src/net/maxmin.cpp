#include "net/maxmin.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rats {

std::vector<Rate> maxmin_fair_rates(const std::vector<Rate>& capacity,
                                    const std::vector<FlowDemand>& flows) {
  const std::size_t num_links = capacity.size();
  const std::size_t num_flows = flows.size();
  std::vector<Rate> rate(num_flows, 0.0);

  // Remaining capacity and number of still-unfixed flows per link.
  std::vector<Rate> remaining = capacity;
  std::vector<std::int32_t> active_count(num_links, 0);
  std::vector<char> fixed(num_flows, 0);

  std::size_t unfixed = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flows[f].links.empty()) {
      // Loopback: not constrained by any link.
      rate[f] = flows[f].cap;
      fixed[f] = 1;
      continue;
    }
    for (auto l : flows[f].links) {
      RATS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < num_links,
                   "flow references unknown link");
      RATS_REQUIRE(capacity[static_cast<std::size_t>(l)] > 0,
                   "used link must have positive capacity");
      ++active_count[static_cast<std::size_t>(l)];
    }
    ++unfixed;
  }

  // Progressive filling: repeatedly find the tightest constraint (link
  // fair share or flow cap) and fix every flow bound by it.
  while (unfixed > 0) {
    // Tightest link fair share among links still carrying unfixed flows.
    Rate share = std::numeric_limits<Rate>::infinity();
    for (std::size_t l = 0; l < num_links; ++l)
      if (active_count[l] > 0)
        share = std::min(share, remaining[l] / active_count[l]);
    RATS_REQUIRE(std::isfinite(share), "no constraining link for active flows");

    // Flows capped at or below the share saturate at their own cap
    // first; they consume less than a fair share, so fixing them can
    // only raise the share of the remaining flows (hence the loop).
    bool fixed_by_cap = false;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (fixed[f] || flows[f].cap > share) continue;
      rate[f] = flows[f].cap;
      fixed[f] = 1;
      --unfixed;
      fixed_by_cap = true;
      for (auto l : flows[f].links) {
        remaining[static_cast<std::size_t>(l)] -= rate[f];
        --active_count[static_cast<std::size_t>(l)];
      }
    }
    if (fixed_by_cap) continue;

    // Otherwise saturate the bottleneck link(s): every unfixed flow
    // crossing a link whose fair share equals the minimum gets `share`.
    const Rate eps = share * 1e-12;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (fixed[f]) continue;
      bool bottlenecked = false;
      for (auto l : flows[f].links) {
        const auto li = static_cast<std::size_t>(l);
        if (remaining[li] / active_count[li] <= share + eps) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      rate[f] = share;
      fixed[f] = 1;
      --unfixed;
      for (auto l : flows[f].links) {
        const auto li = static_cast<std::size_t>(l);
        remaining[li] = std::max(0.0, remaining[li] - share);
        --active_count[li];
      }
    }
  }
  return rate;
}

}  // namespace rats
