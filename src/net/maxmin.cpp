#include "net/maxmin.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "net/solver_stats.hpp"

namespace rats {

namespace {
// A heap entry is stale when the link's current fair share has grown
// past the keyed value (shares are non-decreasing as flows are fixed,
// so stale entries are always under-keyed, never over-keyed).  Stale
// entries must be re-keyed, never fired: zero slack makes the fired
// sequence a pure function of solver state — "(smallest current
// share, smallest link id) fires next" — independent of heap-key
// history.  The warm splice engine relies on that property to replay
// recorded rounds interleaved with cone re-solves bitwise identically
// to a cold solve; any tolerance here would make firing order depend
// on when each key was last refreshed, which a spliced replay cannot
// reconstruct.
constexpr double kShareSlack = 0.0;

// Dip detection divides remaining by active on every link touch; this
// multiply filter in front of the exact divide over-admits (every true
// dip satisfies remaining < key*active*(1+slack), since the slack
// dwarfs the rounding of the product) so the division still decides —
// but most touches are filtered out for the cost of one multiply.
constexpr double kDipFilterSlack = 1e-9;

// A warm re-solve undoes the trace back to the first round whose
// binding share reaches the delta's divergence bound; the bound is
// shaved by this relative margin so rounding noise can only undo one
// round too many, never one too few.
constexpr double kDivergenceMargin = 1e-9;
}  // namespace

void MaxMinSolver::solve(const std::vector<Rate>& capacity,
                         const std::vector<FlowDemand>& flows,
                         std::vector<Rate>& rates) {
  views_.clear();
  views_.reserve(flows.size());
  for (const FlowDemand& f : flows)
    views_.push_back(FlowDemandView{
        f.links.data(), static_cast<std::int32_t>(f.links.size()), f.cap});
  rates.resize(flows.size());
  solve_impl(capacity, views_.data(), views_.size(), rates.data(), nullptr,
             nullptr, nullptr);
}

void MaxMinSolver::solve(const std::vector<Rate>& capacity,
                         const FlowDemandView* flows, std::size_t num_flows,
                         Rate* rates, MaxMinWarmState* trace,
                         const std::int32_t* stable_ids) {
  solve_impl(capacity, flows, num_flows, rates, nullptr, trace, stable_ids);
}

void MaxMinSolver::solve(const std::vector<Rate>& capacity,
                         const FlowDemandView* flows, std::size_t num_flows,
                         Rate* rates,
                         const std::vector<std::vector<std::int32_t>>& link_flows,
                         const std::vector<std::int32_t>& local_of,
                         MaxMinWarmState* trace,
                         const std::int32_t* stable_ids) {
  const ExtAdjacency ext{&link_flows, &local_of};
  solve_impl(capacity, flows, num_flows, rates, &ext, trace, stable_ids);
}

void MaxMinSolver::solve_impl(const std::vector<Rate>& capacity,
                              const FlowDemandView* flows,
                              std::size_t num_flows, Rate* rates,
                              const ExtAdjacency* ext, MaxMinWarmState* trace,
                              const std::int32_t* stable_ids) {
  const std::size_t num_links = capacity.size();
  // Per-link slots are epoch-stamped: growing them is the only O(L)
  // work, paid once; after that a solve touches only its own links.
  if (slots_.size() < num_links) slots_.resize(num_links);
  ++epoch_;

  touched_.clear();
  caps_.clear();
  heap_.clear();
  fixed_.assign(num_flows, 0);
  if (trace) trace->invalidate();
  const auto stable_id = [&](std::size_t f) {
    return stable_ids ? stable_ids[f] : static_cast<std::int32_t>(f);
  };

  // Pass 1: validate, count link incidences, fix loopback flows.
  std::size_t unfixed = 0;
  std::size_t incidences = 0;
  Rate min_cap = std::numeric_limits<Rate>::infinity();
  Rate max_touched_capacity = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    const FlowDemandView& d = flows[f];
    if (d.count == 0) {
      // Loopback: not constrained by any link.
      rates[f] = d.cap;
      fixed_[f] = 1;
      if (trace)
        trace->settles.push_back(MaxMinWarmState::Settle{
            stable_id(f), static_cast<std::int32_t>(trace->log.size()), d.cap,
            d.cap});
      continue;
    }
    rates[f] = 0.0;
    for (std::int32_t i = 0; i < d.count; ++i) {
      const std::int32_t l = d.links[static_cast<std::size_t>(i)];
      RATS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < num_links,
                   "flow references unknown link");
      LinkSlot& slot = slots_[static_cast<std::size_t>(l)];
      if (slot.epoch != epoch_) {
        const Rate cap_l = capacity[static_cast<std::size_t>(l)];
        RATS_REQUIRE(cap_l > 0, "used link must have positive capacity");
        slot.epoch = epoch_;
        slot.remaining = cap_l;
        slot.active = 0;
        slot.index = static_cast<std::int32_t>(touched_.size());
        touched_.push_back(l);
        max_touched_capacity = std::max(max_touched_capacity, cap_l);
      }
      ++slot.active;
    }
    if (std::isfinite(d.cap)) {
      caps_.emplace_back(d.cap, static_cast<std::int32_t>(f));
      min_cap = std::min(min_cap, d.cap);
    }
    ++unfixed;
    incidences += static_cast<std::size_t>(d.count);
  }
  if (trace) {
    trace->links = touched_;
    trace->act0.reserve(touched_.size());
    for (const std::int32_t l : touched_)
      trace->act0.push_back(slots_[static_cast<std::size_t>(l)].active);
    trace->max_capacity = max_touched_capacity;
  }
  if (unfixed == 0) {
    if (trace) {
      trace->remaining.assign(touched_.size(), 0);
      trace->valid = true;
    }
    return;
  }

  // Fair shares never exceed the largest touched capacity, so when even
  // the smallest cap is above it no cap can ever be the tightest
  // constraint (cap <= share is unreachable) — drop the cap machinery,
  // including its O(F log F) sort.  Common case: the TCP-window bound
  // W/RTT sits far above the per-link bandwidth on low-latency
  // clusters.
  if (min_cap > max_touched_capacity) caps_.clear();

  // Pass 2: CSR link->flow adjacency over the touched links only —
  // skipped entirely when the caller shares its own adjacency table.
  // Offsets are advanced while filling and restored by the shift below,
  // avoiding a cursor array.
  if (!ext) {
    link_off_.assign(touched_.size() + 1, 0);
    for (std::size_t f = 0; f < num_flows; ++f) {
      const FlowDemandView& d = flows[f];
      for (std::int32_t i = 0; i < d.count; ++i)
        ++link_off_[static_cast<std::size_t>(
                        slots_[static_cast<std::size_t>(
                                   d.links[static_cast<std::size_t>(i)])]
                            .index) +
                    1];
    }
    for (std::size_t k = 0; k < touched_.size(); ++k)
      link_off_[k + 1] += link_off_[k];
    link_flows_.resize(incidences);
    for (std::size_t f = 0; f < num_flows; ++f) {
      const FlowDemandView& d = flows[f];
      for (std::int32_t i = 0; i < d.count; ++i) {
        const auto k = static_cast<std::size_t>(
            slots_[static_cast<std::size_t>(d.links[static_cast<std::size_t>(i)])]
                .index);
        link_flows_[static_cast<std::size_t>(link_off_[k]++)] =
            static_cast<std::int32_t>(f);
      }
    }
    for (std::size_t k = touched_.size(); k > 0; --k)
      link_off_[k] = link_off_[k - 1];
    link_off_[0] = 0;
  }

  std::sort(caps_.begin(), caps_.end());

  const auto heap_greater = std::greater<HeapEntry>();
  for (const std::int32_t l : touched_) {
    LinkSlot& slot = slots_[static_cast<std::size_t>(l)];
    slot.key = slot.remaining / slot.active;
    heap_.push_back(HeapEntry{slot.key, l, slot.index});
  }
  std::make_heap(heap_.begin(), heap_.end(), heap_greater);

  // A fixed flow releases the capacity it leaves unused on each of its
  // links and stops counting toward their fair shares.  Settling at a
  // share at-or-above a link's own can lower that link's share an ulp
  // or two below its (frozen) heap key; the cold event order among
  // near-ties depends on those keys, so traced solves record the dips
  // for warm replays (see MaxMinWarmState::Dip).
  const auto settle_flow = [&](std::int32_t f, Rate r) {
    rates[static_cast<std::size_t>(f)] = r;
    fixed_[static_cast<std::size_t>(f)] = 1;
    --unfixed;
    const FlowDemandView& d = flows[static_cast<std::size_t>(f)];
    if (trace)
      trace->settles.push_back(MaxMinWarmState::Settle{
          stable_id(static_cast<std::size_t>(f)),
          static_cast<std::int32_t>(trace->log.size()), r, d.cap});
    for (std::int32_t i = 0; i < d.count; ++i) {
      LinkSlot& slot =
          slots_[static_cast<std::size_t>(d.links[static_cast<std::size_t>(i)])];
      if (trace)
        trace->log.push_back(
            MaxMinWarmState::LogEntry{slot.index, slot.remaining});
      slot.remaining = std::max(0.0, slot.remaining - r);
      --slot.active;
      if (trace && slot.active > 0 &&
          slot.remaining < slot.key * slot.active * (1 + kDipFilterSlack) &&
          slot.remaining / slot.active < slot.key)
        trace->dips.push_back(MaxMinWarmState::Dip{
            static_cast<std::int32_t>(trace->rounds.size()) - 1, slot.index,
            slot.key});
    }
  };

  // Progressive filling: each round the globally tightest constraint —
  // a link fair share or a flow cap — fixes the flows it binds.
  std::size_t cap_ptr = 0;
  while (unfixed > 0) {
    // Tightest link fair share; lazily discard/re-key stale entries.
    Rate link_share = std::numeric_limits<Rate>::infinity();
    Rate link_key = std::numeric_limits<Rate>::infinity();
    std::int32_t link = -1;
    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      const LinkSlot& slot = slots_[static_cast<std::size_t>(top.link)];
      if (slot.active == 0) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.pop_back();
        continue;
      }
      const Rate cur = slot.remaining / slot.active;
      if (cur > top.share * (1 + kShareSlack)) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.back().share = cur;
        slots_[static_cast<std::size_t>(top.link)].key = cur;
        std::push_heap(heap_.begin(), heap_.end(), heap_greater);
        continue;
      }
      link_share = cur;
      link_key = top.share;
      link = top.link;
      break;
    }

    // Flows capped at or below the share saturate at their own cap
    // first; they consume less than a fair share, so fixing them can
    // only raise the share of the remaining flows.
    while (cap_ptr < caps_.size() &&
           fixed_[static_cast<std::size_t>(caps_[cap_ptr].second)])
      ++cap_ptr;
    if (cap_ptr < caps_.size() && caps_[cap_ptr].first <= link_share) {
      if (trace)
        trace->rounds.push_back(MaxMinWarmState::Round{
            static_cast<std::int32_t>(trace->settles.size()),
            caps_[cap_ptr].first, -1, caps_[cap_ptr].first});
      settle_flow(caps_[cap_ptr].second, caps_[cap_ptr].first);
      ++cap_ptr;
      continue;
    }

    RATS_REQUIRE(link >= 0 && std::isfinite(link_share),
                 "no constraining link for active flows");
    // Saturate the bottleneck link: every unfixed flow crossing it gets
    // the fair share.  Links that tie (same share up to rounding) carry
    // on unchanged and pop next — fixing a shared flow at `share`
    // leaves a tied link's share exactly invariant.
    if (trace)
      trace->rounds.push_back(MaxMinWarmState::Round{
          static_cast<std::int32_t>(trace->settles.size()), link_share,
          slots_[static_cast<std::size_t>(link)].index, link_key});
    std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
    heap_.pop_back();
    if (ext) {
      for (const std::int32_t id :
           (*ext->link_flows)[static_cast<std::size_t>(link)]) {
        const std::int32_t f = (*ext->local_of)[static_cast<std::size_t>(id)];
        if (fixed_[static_cast<std::size_t>(f)]) continue;
        settle_flow(f, link_share);
      }
    } else {
      const auto k = static_cast<std::size_t>(
          slots_[static_cast<std::size_t>(link)].index);
      for (auto idx = static_cast<std::size_t>(link_off_[k]);
           idx < static_cast<std::size_t>(link_off_[k + 1]); ++idx) {
        const std::int32_t f = link_flows_[idx];
        if (fixed_[static_cast<std::size_t>(f)]) continue;
        settle_flow(f, link_share);
      }
    }
  }
  if (trace) {
    trace->remaining.reserve(touched_.size());
    for (const std::int32_t l : touched_)
      trace->remaining.push_back(slots_[static_cast<std::size_t>(l)].remaining);
    trace->valid = true;
  }
}

// ---- warm re-solve -----------------------------------------------------
//
// Undo the recorded trace back to the divergence round, then *splice*:
// recorded rounds whose binding link stayed outside the delta's
// dependency cone are committed verbatim (same settles, same recorded
// rates — bit-identical by construction, since every input to their
// arithmetic is unchanged), and only the cone is re-solved through a
// share heap.  The cone is tracked dynamically: it seeds with the
// departures' and arrivals' links and grows whenever a cone-fixed or
// transferred flow crosses a link whose residual/active history now
// diverges from the record.  Kept rounds and cone rounds merge by the
// cold solver's event order — (share, link id), caps first on ties —
// which is what keeps the merged round sequence bit-identical to a
// from-scratch solve of the new population.  See maxmin.hpp.

bool MaxMinSolver::solve_warm(const std::vector<Rate>& capacity,
                              MaxMinWarmState& state,
                              const FlowArrival* arrivals,
                              std::size_t num_arrivals,
                              const std::int32_t* departures,
                              std::size_t num_departures,
                              std::vector<std::pair<std::int32_t, Rate>>& changed,
                              WarmMode mode) {
  SolverStats& stats = solver_stats();
  stats.bump(stats.warm_attempts);
  const auto decline = [&stats] {
    stats.bump(stats.warm_declined);
    return false;
  };
  if (!state.valid) return decline();
  // Loopback arrivals need no cascade but would sit outside the round
  // structure; the (rare) caller cold-solves instead.
  for (std::size_t a = 0; a < num_arrivals; ++a) {
    if (arrivals[a].count <= 0) return decline();
    for (std::int32_t i = 0; i < arrivals[a].count; ++i) {
      const std::int32_t l = arrivals[a].links[static_cast<std::size_t>(i)];
      RATS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < capacity.size(),
                   "flow references unknown link");
      RATS_REQUIRE(capacity[static_cast<std::size_t>(l)] > 0,
                   "used link must have positive capacity");
    }
  }

  const std::size_t num_known = state.links.size();
  const std::size_t num_settles = state.settles.size();
  const std::size_t num_rounds = state.rounds.size();

  // Dense mapping of the state's link table via the epoch-stamped slots.
  if (slots_.size() < capacity.size()) slots_.resize(capacity.size());
  ++epoch_;
  for (std::size_t d = 0; d < num_known; ++d) {
    LinkSlot& slot = slots_[static_cast<std::size_t>(state.links[d])];
    slot.epoch = epoch_;
    slot.index = static_cast<std::int32_t>(d);
  }

  // Locate each departure's settle.  Departed loopback flows (empty
  // link range) affect nobody: they are only compacted out of the trace.
  std::vector<std::int32_t>& dep_settles = warm_links_;  // reuse scratch
  dep_settles.clear();
  std::vector<std::int32_t> loopback_settles;  // rare; usually no alloc
  if (num_departures > 0) {
    std::size_t found = 0;
    for (std::size_t s = 0; s < num_settles && found < num_departures; ++s) {
      const MaxMinWarmState::Settle& st = state.settles[s];
      bool departs = false;
      for (std::size_t q = 0; q < num_departures; ++q)
        if (departures[q] == st.id) {
          departs = true;
          break;
        }
      if (!departs) continue;
      ++found;
      const std::int32_t end =
          s + 1 < num_settles ? state.settles[s + 1].link_off
                              : static_cast<std::int32_t>(state.log.size());
      if (st.link_off == end)
        loopback_settles.push_back(static_cast<std::int32_t>(s));
      else
        dep_settles.push_back(static_cast<std::int32_t>(s));
    }
    if (found != num_departures) {
      assert(false && "warm departure not present in trace");
      return decline();
    }
  }

  // Divergence bound from the arrivals: their links' initial shares and
  // their caps.  Arriving flows only lower the shares of their own
  // links, so every round whose binding share stays strictly below the
  // bound is bitwise unaffected by the delta.
  warm_extra_.assign(num_known, 0);
  std::size_t num_new_links = 0;
  for (std::size_t a = 0; a < num_arrivals; ++a) {
    for (std::int32_t i = 0; i < arrivals[a].count; ++i) {
      const auto l = static_cast<std::size_t>(
          arrivals[a].links[static_cast<std::size_t>(i)]);
      LinkSlot& slot = slots_[l];
      if (slot.epoch != epoch_) {
        slot.epoch = epoch_;
        slot.index = static_cast<std::int32_t>(num_known + num_new_links);
        ++num_new_links;
        warm_extra_.push_back(0);
      }
      ++warm_extra_[static_cast<std::size_t>(slot.index)];
    }
  }
  Rate s_star = std::numeric_limits<Rate>::infinity();
  for (std::size_t a = 0; a < num_arrivals; ++a) {
    s_star = std::min(s_star, arrivals[a].cap);
    for (std::int32_t i = 0; i < arrivals[a].count; ++i) {
      const auto l = static_cast<std::size_t>(
          arrivals[a].links[static_cast<std::size_t>(i)]);
      const auto d = static_cast<std::size_t>(slots_[l].index);
      const std::int32_t base =
          d < num_known ? state.act0[d] : 0;
      s_star = std::min(
          s_star, capacity[l] / (base + warm_extra_[d]));
    }
  }

  // Divergence round: the earliest of any departure's fix round and the
  // first round whose share reaches the arrival bound.
  std::size_t k = num_rounds;
  if (!dep_settles.empty()) {
    // dep_settles is in settle order; the first one decides.
    const std::int32_t s0 = dep_settles.front();
    std::size_t lo = 0, hi = num_rounds;
    while (lo + 1 < hi) {  // last round with first_settle <= s0
      const std::size_t mid = (lo + hi) / 2;
      if (state.rounds[mid].first_settle <= s0)
        lo = mid;
      else
        hi = mid;
    }
    k = lo;
  }
  if (num_arrivals > 0) {
    const Rate bound = s_star * (1 - kDivergenceMargin);
    for (std::size_t r = 0; r < k; ++r) {
      if (state.rounds[r].share >= bound) {
        k = r;
        break;
      }
    }
  }

  const std::size_t first_undone =
      k < num_rounds ? static_cast<std::size_t>(state.rounds[k].first_settle)
                     : num_settles;
  const std::size_t undone = num_settles - first_undone;
  const bool prefix = mode == WarmMode::kPrefix;
  // Prefix mode re-solves every undone settle, so when the suffix
  // covers most of the trace a cold solve is cheaper.  Cone mode
  // commits untouched rounds verbatim — O(1) per settle, no heap — so
  // even a full-trace undo beats a cold solve and there is no
  // trace-fraction decline.
  if (prefix && undone * 5 > num_settles * 3 && undone > 16) return decline();

  // ---- committed: everything below mutates `state` -------------------

  // Undo + work-list build in one forward pass over the log suffix.
  // A link's pre-splice residual is the `before` of its EARLIEST undone
  // log entry, so restoring on first touch (forward) reproduces the
  // backward replay; the same entry visit re-counts the link's unfixed
  // flows and collects the suffix work list (departures excluded, their
  // link counts removed and their links seeding the cone).
  // `warm_suffix_work_` maps settle indices to work indices so the
  // recorded rounds can be re-expressed as work ranges.
  const std::size_t log_first =
      first_undone < num_settles
          ? static_cast<std::size_t>(state.settles[first_undone].link_off)
          : state.log.size();
  warm_active_.assign(num_known + num_new_links, 0);
  warm_touched_.assign(num_known + num_new_links, 0);
  warm_affected_.assign(num_known + num_new_links, 0);
  work_ids_.clear();
  work_caps_.clear();
  work_rates_.clear();
  work_off_.clear();
  work_flow_links_.clear();
  warm_suffix_work_.assign(undone + 1, 0);
  std::size_t dep_ptr = 0;
  for (std::size_t s = first_undone; s < num_settles; ++s) {
    warm_suffix_work_[s - first_undone] =
        static_cast<std::int32_t>(work_ids_.size());
    const MaxMinWarmState::Settle& st = state.settles[s];
    const auto begin = static_cast<std::size_t>(st.link_off);
    const auto end = s + 1 < num_settles
                         ? static_cast<std::size_t>(state.settles[s + 1].link_off)
                         : state.log.size();
    if (dep_ptr < dep_settles.size() &&
        dep_settles[dep_ptr] == static_cast<std::int32_t>(s)) {
      ++dep_ptr;
      for (std::size_t e = begin; e < end; ++e) {
        const auto d = static_cast<std::size_t>(state.log[e].link);
        if (!warm_touched_[d]) {
          warm_touched_[d] = 1;
          state.remaining[d] = state.log[e].before;
        }
        --state.act0[d];
        warm_affected_[d] = 1;
      }
      continue;
    }
    work_ids_.push_back(st.id);
    work_caps_.push_back(st.cap);
    work_rates_.push_back(st.rate);
    work_off_.push_back(static_cast<std::int32_t>(work_flow_links_.size()));
    for (std::size_t e = begin; e < end; ++e) {
      const auto d = static_cast<std::size_t>(state.log[e].link);
      if (!warm_touched_[d]) {
        warm_touched_[d] = 1;
        state.remaining[d] = state.log[e].before;
      }
      ++warm_active_[d];
      work_flow_links_.push_back(state.log[e].link);
    }
  }
  warm_suffix_work_[undone] = static_cast<std::int32_t>(work_ids_.size());
  assert(dep_ptr == dep_settles.size() &&
         "departure fixed before the divergence round");
  const std::size_t num_recorded_work = work_ids_.size();

  // Arrivals: grow the link table for unseen links, then count the new
  // flows in.  Their links seed the cone.
  for (std::size_t a = 0; a < num_arrivals; ++a) {
    work_ids_.push_back(arrivals[a].id);
    work_caps_.push_back(arrivals[a].cap);
    work_rates_.push_back(0);  // never kept-committed
    work_off_.push_back(static_cast<std::int32_t>(work_flow_links_.size()));
    for (std::int32_t i = 0; i < arrivals[a].count; ++i) {
      const auto l = static_cast<std::size_t>(
          arrivals[a].links[static_cast<std::size_t>(i)]);
      const auto d = static_cast<std::size_t>(slots_[l].index);
      if (d >= state.links.size()) {
        assert(d == state.links.size());
        state.links.push_back(static_cast<std::int32_t>(l));
        state.act0.push_back(0);
        state.remaining.push_back(capacity[l]);
        state.max_capacity = std::max(state.max_capacity, capacity[l]);
      }
      ++warm_active_[d];
      ++state.act0[d];
      warm_touched_[d] = 1;
      warm_affected_[d] = 1;
      work_flow_links_.push_back(static_cast<std::int32_t>(d));
    }
  }
  work_off_.push_back(static_cast<std::int32_t>(work_flow_links_.size()));

  // Kept schedule: the recorded suffix rounds as work ranges, consumed
  // in order by the merge.  Prefix mode replays everything through the
  // cone instead.
  warm_kept_.clear();
  if (!prefix) {
    warm_kept_.reserve(num_rounds - k);
    for (std::size_t r = k; r < num_rounds; ++r) {
      const auto s_begin =
          static_cast<std::size_t>(state.rounds[r].first_settle);
      const std::size_t s_end =
          r + 1 < num_rounds
              ? static_cast<std::size_t>(state.rounds[r + 1].first_settle)
              : num_settles;
      warm_kept_.push_back(
          WarmKeptRound{state.rounds[r].share, state.rounds[r].key,
                        state.rounds[r].link,
                        warm_suffix_work_[s_begin - first_undone],
                        warm_suffix_work_[s_end - first_undone]});
    }
  }

  // Truncate the undone tail of the trace; the merge re-records.
  state.settles.resize(first_undone);
  state.log.resize(log_first);
  state.rounds.resize(k);
  while (!state.dips.empty() &&
         state.dips.back().round >= static_cast<std::int32_t>(k))
    state.dips.pop_back();

  const std::size_t num_work = work_ids_.size();
  std::size_t unfixed = num_work;
  std::size_t cone_fixed = 0;
  if (num_work > 0) {
    // Mini-CSR link -> work item over every suffix link, so cone
    // rounds can fix (and steal) any unfixed flow crossing their link.
    std::vector<std::int32_t>& clinks = warm_links_;  // dep_settles done
    clinks.clear();
    const std::size_t total = num_known + num_new_links;
    if (csr_slot_.size() < total) csr_slot_.resize(total);
    for (std::size_t d = 0; d < total; ++d)
      if (warm_touched_[d]) {
        csr_slot_[d] = static_cast<std::int32_t>(clinks.size());
        clinks.push_back(static_cast<std::int32_t>(d));
      }
    work_csr_off_.assign(clinks.size() + 1, 0);
    for (const std::int32_t d : work_flow_links_)
      ++work_csr_off_[static_cast<std::size_t>(
                          csr_slot_[static_cast<std::size_t>(d)]) +
                      1];
    for (std::size_t c = 0; c < clinks.size(); ++c)
      work_csr_off_[c + 1] += work_csr_off_[c];
    work_csr_.resize(work_flow_links_.size());
    for (std::size_t w = 0; w < num_work; ++w)
      for (auto i = static_cast<std::size_t>(work_off_[w]);
           i < static_cast<std::size_t>(work_off_[w + 1]); ++i) {
        const auto c = static_cast<std::size_t>(
            csr_slot_[static_cast<std::size_t>(work_flow_links_[i])]);
        work_csr_[static_cast<std::size_t>(work_csr_off_[c]++)] =
            static_cast<std::int32_t>(w);
      }
    for (std::size_t c = clinks.size(); c > 0; --c)
      work_csr_off_[c] = work_csr_off_[c - 1];
    work_csr_off_[0] = 0;

    fixed_.assign(num_work, 0);

    // Mirror the cold solver's heap keys.  At the splice a link's cold
    // key is its current share unless a recorded dip from the kept
    // prefix froze it higher (keys never decrease; a dip is the only
    // way a key exceeds the current share).  From here on the mirror
    // is maintained exactly: churn raises it to the current share, and
    // a round with ordering key K touching a link whose mirror is
    // below K implies the cold heap churned that link to its
    // pre-subtraction share before K fired.
    if (warm_key_.size() < total) {
      warm_key_.resize(total);
      warm_last_touch_.resize(total);
    }
    for (const std::int32_t cl : clinks) {
      const auto d = static_cast<std::size_t>(cl);
      warm_key_[d] =
          warm_active_[d] > 0 ? state.remaining[d] / warm_active_[d] : 0.0;
      warm_last_touch_[d] = -1;
    }
    for (const MaxMinWarmState::Dip& dip : state.dips) {
      const auto d = static_cast<std::size_t>(dip.link);
      if (d < total && warm_touched_[d] && dip.key > warm_key_[d])
        warm_key_[d] = dip.key;
    }

    // Cone cap min-heap: (cap, work index) pops in the cold solve's
    // sorted-cap order; a heap (not a sorted array) because transfers
    // insert caps mid-replay.  Caps above `max_capacity` can never be
    // the tightest constraint (same reachability cut as the cold
    // solve's min_cap check) and are not pushed.
    warm_cap_heap_.clear();
    const auto cap_greater = std::greater<std::pair<Rate, std::int32_t>>();
    const auto push_cap = [&](std::size_t w) {
      const Rate c = work_caps_[w];
      if (std::isfinite(c) && c <= state.max_capacity) {
        warm_cap_heap_.emplace_back(c, static_cast<std::int32_t>(w));
        std::push_heap(warm_cap_heap_.begin(), warm_cap_heap_.end(),
                       cap_greater);
      }
    };
    if (prefix) {
      for (const std::int32_t d : clinks)
        warm_affected_[static_cast<std::size_t>(d)] = 1;
      for (std::size_t w = 0; w < num_work; ++w) push_cap(w);
    } else {
      for (std::size_t w = num_recorded_work; w < num_work; ++w) push_cap(w);
    }

    // Share heap over the cone links only; kept rounds supply the
    // clean links' binding events in recorded order.  Pop order
    // matches the cold solve's lazy heap: both yield the minimum
    // current share, ties by link id.
    heap_.clear();
    const auto heap_greater = std::greater<HeapEntry>();
    for (const std::int32_t d : clinks)
      if (warm_affected_[static_cast<std::size_t>(d)] &&
          warm_active_[static_cast<std::size_t>(d)] > 0)
        heap_.push_back(HeapEntry{warm_key_[static_cast<std::size_t>(d)],
                                  state.links[static_cast<std::size_t>(d)],
                                  d});
    std::make_heap(heap_.begin(), heap_.end(), heap_greater);

    // A link enters the cone the moment its arithmetic diverges from
    // the record: a cone-fixed flow crossing it, or a transferred
    // (still unfixed where the record had it fixed) flow crossing it.
    const auto mark_affected = [&](std::size_t d) {
      if (warm_affected_[d]) return;
      warm_affected_[d] = 1;
      if (warm_active_[d] > 0) {
        const Rate cur = state.remaining[d] / warm_active_[d];
        if (warm_key_[d] < cur) warm_key_[d] = cur;
        heap_.push_back(HeapEntry{warm_key_[d], state.links[d],
                                  static_cast<std::int32_t>(d)});
        std::push_heap(heap_.begin(), heap_.end(), heap_greater);
      }
    };

    // Commit a kept settle at its recorded rate.  Every input to the
    // subtraction on a clean link is unchanged from the record, so the
    // trace it re-records is bitwise the old one; on a cone link the
    // live residual is used (and the flow's rate is still the recorded
    // one — the merge order guarantees no cone link could have bound
    // it earlier).
    Rate round_key = 0;  // ordering key of the merge round in flight
    const auto touch_link = [&](std::size_t d, Rate r) {
      const std::int32_t rtag =
          static_cast<std::int32_t>(state.rounds.size()) - 1;
      if (warm_last_touch_[d] != rtag) {
        warm_last_touch_[d] = rtag;
        if (warm_key_[d] < round_key && warm_active_[d] > 0)
          warm_key_[d] = state.remaining[d] / warm_active_[d];
      }
      state.log.push_back(MaxMinWarmState::LogEntry{
          static_cast<std::int32_t>(d), state.remaining[d]});
      state.remaining[d] = std::max(0.0, state.remaining[d] - r);
      --warm_active_[d];
      if (warm_active_[d] > 0 &&
          state.remaining[d] <
              warm_key_[d] * warm_active_[d] * (1 + kDipFilterSlack) &&
          state.remaining[d] / warm_active_[d] < warm_key_[d])
        state.dips.push_back(MaxMinWarmState::Dip{
            rtag, static_cast<std::int32_t>(d), warm_key_[d]});
    };

    const auto settle_kept = [&](std::size_t w) {
      assert(!fixed_[w]);
      const Rate r = work_rates_[w];
      state.settles.push_back(MaxMinWarmState::Settle{
          work_ids_[w], static_cast<std::int32_t>(state.log.size()), r,
          work_caps_[w]});
      for (auto i = static_cast<std::size_t>(work_off_[w]);
           i < static_cast<std::size_t>(work_off_[w + 1]); ++i)
        touch_link(static_cast<std::size_t>(work_flow_links_[i]), r);
      fixed_[w] = 1;
      --unfixed;
    };

    // Fix a cone flow at a re-solved rate; its links join the cone.
    const auto settle_cone = [&](std::size_t w, Rate r) {
      changed.emplace_back(work_ids_[w], r);
      state.settles.push_back(MaxMinWarmState::Settle{
          work_ids_[w], static_cast<std::int32_t>(state.log.size()), r,
          work_caps_[w]});
      for (auto i = static_cast<std::size_t>(work_off_[w]);
           i < static_cast<std::size_t>(work_off_[w + 1]); ++i)
        touch_link(static_cast<std::size_t>(work_flow_links_[i]), r);
      for (auto i = static_cast<std::size_t>(work_off_[w]);
           i < static_cast<std::size_t>(work_off_[w + 1]); ++i)
        mark_affected(static_cast<std::size_t>(work_flow_links_[i]));
      fixed_[w] = 1;
      --unfixed;
      ++cone_fixed;
    };

    const Rate inf = std::numeric_limits<Rate>::infinity();
    std::size_t rp = 0;
    while (unfixed > 0) {
      // Advance the kept pointer: transfer rounds whose binding link
      // entered the cone (their settles re-solve; their flows' links
      // diverge from the record and join the cone), skip cap rounds
      // whose flow departed or was stolen.
      while (rp < warm_kept_.size()) {
        const WarmKeptRound& kr = warm_kept_[rp];
        if (kr.link >= 0 &&
            warm_affected_[static_cast<std::size_t>(kr.link)]) {
          for (auto w = static_cast<std::size_t>(kr.work_begin);
               w < static_cast<std::size_t>(kr.work_end); ++w) {
            if (fixed_[w]) continue;
            push_cap(w);
            for (auto i = static_cast<std::size_t>(work_off_[w]);
                 i < static_cast<std::size_t>(work_off_[w + 1]); ++i)
              mark_affected(static_cast<std::size_t>(work_flow_links_[i]));
          }
          ++rp;
          continue;
        }
        if (kr.link < 0 &&
            (kr.work_begin == kr.work_end ||
             fixed_[static_cast<std::size_t>(kr.work_begin)])) {
          ++rp;  // cap round whose flow departed or was stolen
          continue;
        }
        break;
      }

      Rate kept_link_share = inf;
      Rate kept_link_key = inf;
      std::int32_t kept_link_gl = 0;
      Rate kept_cap = inf;
      if (rp < warm_kept_.size()) {
        const WarmKeptRound& kr = warm_kept_[rp];
        if (kr.link >= 0) {
          kept_link_share = kr.share;
          kept_link_key = kr.key;
          kept_link_gl = state.links[static_cast<std::size_t>(kr.link)];
        } else {
          kept_cap = kr.share;
        }
      }

      // Tightest cone entry; lazily discard/re-key stale entries,
      // keeping the key mirror in step.  The surviving head may carry
      // a key frozen above its current share (a dip) — cold orders
      // events by those frozen keys, so the merge must too.
      Rate cone_share = inf;
      Rate cone_key = inf;
      std::int32_t cone_gl = 0;
      while (!heap_.empty()) {
        const HeapEntry top = heap_.front();
        const auto d = static_cast<std::size_t>(top.dense);
        if (warm_active_[d] == 0) {
          std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
          heap_.pop_back();
          continue;
        }
        const Rate cur = state.remaining[d] / warm_active_[d];
        if (cur > top.share * (1 + kShareSlack)) {
          std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
          heap_.back().share = cur;
          warm_key_[d] = cur;
          std::push_heap(heap_.begin(), heap_.end(), heap_greater);
          continue;
        }
        cone_share = cur;
        cone_key = top.share;
        cone_gl = top.link;
        break;
      }

      // Tightest cone cap, skipping stolen flows.
      while (!warm_cap_heap_.empty() &&
             fixed_[static_cast<std::size_t>(warm_cap_heap_.front().second)]) {
        std::pop_heap(warm_cap_heap_.begin(), warm_cap_heap_.end(),
                      cap_greater);
        warm_cap_heap_.pop_back();
      }
      const Rate cone_cap =
          warm_cap_heap_.empty() ? inf : warm_cap_heap_.front().first;

      // Event selection in the cold solver's order: compare heap KEYS
      // (ties by global link id), then fire at current VALUES — cold's
      // lazy heap pops by key but settles at the live share.  The kept
      // head is the minimum over clean links (their keys evolve
      // exactly as recorded), the cone heap the minimum over cone
      // links; a kept *cap* head guarantees every clean share is at or
      // above it, so comparing it against the cone alone is exact.
      const bool kept_link_first =
          kept_link_key < cone_key ||
          (kept_link_key == cone_key && kept_link_gl < cone_gl);
      const Rate link_share = kept_link_first ? kept_link_share : cone_share;

      const Rate cap_val = std::min(kept_cap, cone_cap);
      if (std::isfinite(cap_val) && cap_val <= link_share) {
        round_key = cap_val;
        state.rounds.push_back(MaxMinWarmState::Round{
            static_cast<std::int32_t>(state.settles.size()), cap_val, -1,
            cap_val});
        if (kept_cap <= cone_cap) {
          // Equal caps are order-independent: both settle back to back
          // at their own value, so committing the kept one first stays
          // bitwise identical to any cold-solve cap order.
          settle_kept(static_cast<std::size_t>(warm_kept_[rp].work_begin));
          ++rp;
        } else {
          const auto w =
              static_cast<std::size_t>(warm_cap_heap_.front().second);
          std::pop_heap(warm_cap_heap_.begin(), warm_cap_heap_.end(),
                        cap_greater);
          warm_cap_heap_.pop_back();
          settle_cone(w, cone_cap);
        }
        continue;
      }

      RATS_REQUIRE(std::isfinite(link_share),
                   "no constraining link for active flows");
      if (kept_link_first) {
        const WarmKeptRound& kr = warm_kept_[rp];
        round_key = kr.key;
        state.rounds.push_back(MaxMinWarmState::Round{
            static_cast<std::int32_t>(state.settles.size()), kr.share,
            kr.link, kr.key});
        for (auto w = static_cast<std::size_t>(kr.work_begin);
             w < static_cast<std::size_t>(kr.work_end); ++w)
          settle_kept(w);
        ++rp;
      } else {
        const auto d = static_cast<std::size_t>(heap_.front().dense);
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.pop_back();
        round_key = cone_key;
        state.rounds.push_back(MaxMinWarmState::Round{
            static_cast<std::int32_t>(state.settles.size()), cone_share,
            static_cast<std::int32_t>(d), cone_key});
        const auto c = static_cast<std::size_t>(csr_slot_[d]);
        for (auto i = static_cast<std::size_t>(work_csr_off_[c]);
             i < static_cast<std::size_t>(work_csr_off_[c + 1]); ++i) {
          const auto w = static_cast<std::size_t>(work_csr_[i]);
          if (fixed_[w]) continue;
          settle_cone(w, cone_share);
        }
      }
    }
  }

  // Compact departed loopback settles (always in the kept prefix, all
  // before the first round).
  if (!loopback_settles.empty()) {
    std::size_t out = 0, rm = 0;
    for (std::size_t s = 0; s < state.settles.size(); ++s) {
      if (rm < loopback_settles.size() &&
          loopback_settles[rm] == static_cast<std::int32_t>(s)) {
        ++rm;
        continue;
      }
      state.settles[out++] = state.settles[s];
    }
    state.settles.resize(out);
    for (MaxMinWarmState::Round& r : state.rounds)
      r.first_settle -= static_cast<std::int32_t>(rm);
  }
  stats.bump(stats.warm_hits);
  if (num_work > 0)
    stats.record_warm_replay(cone_fixed, num_work);
  return true;
}

// ---- bipartite waterfilling --------------------------------------------

void BipartiteWaterfillSolver::solve(const std::vector<Rate>& capacity,
                                     const FlowDemandView* flows,
                                     std::size_t num_flows, Rate* rates,
                                     MaxMinWarmState* trace,
                                     const std::int32_t* stable_ids) {
  const std::size_t num_links = capacity.size();
  if (slots_.size() < num_links) slots_.resize(num_links);
  ++epoch_;

  touched_.clear();
  caps_.clear();
  heap_.clear();
  fixed_.assign(num_flows, 0);
  flow_links_.resize(2 * num_flows);
  if (trace) trace->invalidate();

  // Pass 1: exactly two links per flow, unrolled.
  std::size_t unfixed = num_flows;
  Rate min_cap = std::numeric_limits<Rate>::infinity();
  Rate max_touched_capacity = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    const FlowDemandView& d = flows[f];
    RATS_REQUIRE(d.count == 2, "bipartite solver requires two-link routes");
    rates[f] = 0.0;
    for (std::size_t i = 0; i < 2; ++i) {
      const std::int32_t l = d.links[i];
      RATS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < num_links,
                   "flow references unknown link");
      LinkSlot& slot = slots_[static_cast<std::size_t>(l)];
      if (slot.epoch != epoch_) {
        const Rate cap_l = capacity[static_cast<std::size_t>(l)];
        RATS_REQUIRE(cap_l > 0, "used link must have positive capacity");
        slot.epoch = epoch_;
        slot.remaining = cap_l;
        slot.active = 0;
        slot.index = static_cast<std::int32_t>(touched_.size());
        touched_.push_back(l);
        max_touched_capacity = std::max(max_touched_capacity, cap_l);
      }
      ++slot.active;
      flow_links_[2 * f + i] = l;
    }
    if (std::isfinite(d.cap)) {
      caps_.emplace_back(d.cap, static_cast<std::int32_t>(f));
      min_cap = std::min(min_cap, d.cap);
    }
  }
  if (trace) {
    trace->links = touched_;
    trace->act0.reserve(touched_.size());
    for (const std::int32_t l : touched_)
      trace->act0.push_back(slots_[static_cast<std::size_t>(l)].active);
    trace->max_capacity = max_touched_capacity;
  }
  if (num_flows == 0) {
    if (trace) trace->valid = true;
    return;
  }
  if (min_cap > max_touched_capacity) caps_.clear();
  std::sort(caps_.begin(), caps_.end());

  // CSR straight from the per-link counts (no separate counting pass).
  link_off_.assign(touched_.size() + 1, 0);
  for (std::size_t q = 0; q < touched_.size(); ++q)
    link_off_[q + 1] =
        link_off_[q] + slots_[static_cast<std::size_t>(touched_[q])].active;
  link_csr_.resize(2 * num_flows);
  for (std::size_t f = 0; f < num_flows; ++f)
    for (std::size_t i = 0; i < 2; ++i) {
      const auto q = static_cast<std::size_t>(
          slots_[static_cast<std::size_t>(flow_links_[2 * f + i])].index);
      link_csr_[static_cast<std::size_t>(link_off_[q]++)] =
          static_cast<std::int32_t>(f);
    }
  for (std::size_t q = touched_.size(); q > 0; --q)
    link_off_[q] = link_off_[q - 1];
  link_off_[0] = 0;

  const auto heap_greater = std::greater<HeapEntry>();
  for (const std::int32_t l : touched_) {
    LinkSlot& slot = slots_[static_cast<std::size_t>(l)];
    slot.key = slot.remaining / slot.active;
    heap_.push_back(HeapEntry{slot.key, l, slot.index});
  }
  std::make_heap(heap_.begin(), heap_.end(), heap_greater);

  const auto settle_flow = [&](std::int32_t f, Rate r) {
    rates[static_cast<std::size_t>(f)] = r;
    fixed_[static_cast<std::size_t>(f)] = 1;
    --unfixed;
    if (trace)
      trace->settles.push_back(MaxMinWarmState::Settle{
          stable_ids ? stable_ids[static_cast<std::size_t>(f)] : f,
          static_cast<std::int32_t>(trace->log.size()), r,
          flows[static_cast<std::size_t>(f)].cap});
    for (std::size_t i = 0; i < 2; ++i) {
      LinkSlot& slot = slots_[static_cast<std::size_t>(
          flow_links_[2 * static_cast<std::size_t>(f) + i])];
      if (trace)
        trace->log.push_back(
            MaxMinWarmState::LogEntry{slot.index, slot.remaining});
      slot.remaining = std::max(0.0, slot.remaining - r);
      --slot.active;
      if (trace && slot.active > 0 &&
          slot.remaining < slot.key * slot.active * (1 + kDipFilterSlack) &&
          slot.remaining / slot.active < slot.key)
        trace->dips.push_back(MaxMinWarmState::Dip{
            static_cast<std::int32_t>(trace->rounds.size()) - 1, slot.index,
            slot.key});
    }
  };

  std::size_t cap_ptr = 0;
  while (unfixed > 0) {
    Rate link_share = std::numeric_limits<Rate>::infinity();
    Rate link_key = std::numeric_limits<Rate>::infinity();
    std::int32_t link = -1;
    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      const LinkSlot& slot = slots_[static_cast<std::size_t>(top.link)];
      if (slot.active == 0) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.pop_back();
        continue;
      }
      const Rate cur = slot.remaining / slot.active;
      if (cur > top.share * (1 + kShareSlack)) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.back().share = cur;
        slots_[static_cast<std::size_t>(top.link)].key = cur;
        std::push_heap(heap_.begin(), heap_.end(), heap_greater);
        continue;
      }
      link_share = cur;
      link_key = top.share;
      link = top.link;
      break;
    }

    while (cap_ptr < caps_.size() &&
           fixed_[static_cast<std::size_t>(caps_[cap_ptr].second)])
      ++cap_ptr;
    if (cap_ptr < caps_.size() && caps_[cap_ptr].first <= link_share) {
      if (trace)
        trace->rounds.push_back(MaxMinWarmState::Round{
            static_cast<std::int32_t>(trace->settles.size()),
            caps_[cap_ptr].first, -1, caps_[cap_ptr].first});
      settle_flow(caps_[cap_ptr].second, caps_[cap_ptr].first);
      ++cap_ptr;
      continue;
    }

    RATS_REQUIRE(link >= 0 && std::isfinite(link_share),
                 "no constraining link for active flows");
    if (trace)
      trace->rounds.push_back(MaxMinWarmState::Round{
          static_cast<std::int32_t>(trace->settles.size()), link_share,
          slots_[static_cast<std::size_t>(link)].index, link_key});
    std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
    heap_.pop_back();
    const auto q =
        static_cast<std::size_t>(slots_[static_cast<std::size_t>(link)].index);
    for (auto idx = static_cast<std::size_t>(link_off_[q]);
         idx < static_cast<std::size_t>(link_off_[q + 1]); ++idx) {
      const std::int32_t f = link_csr_[idx];
      if (fixed_[static_cast<std::size_t>(f)]) continue;
      settle_flow(f, link_share);
    }
  }
  if (trace) {
    trace->remaining.reserve(touched_.size());
    for (const std::int32_t l : touched_)
      trace->remaining.push_back(slots_[static_cast<std::size_t>(l)].remaining);
    trace->valid = true;
  }
}

std::vector<Rate> maxmin_fair_rates(const std::vector<Rate>& capacity,
                                    const std::vector<FlowDemand>& flows) {
  MaxMinSolver solver;
  std::vector<Rate> rates;
  solver.solve(capacity, flows, rates);
  return rates;
}

std::vector<Rate> maxmin_fair_rates_reference(
    const std::vector<Rate>& capacity, const std::vector<FlowDemand>& flows) {
  const std::size_t num_links = capacity.size();
  const std::size_t num_flows = flows.size();
  std::vector<Rate> rate(num_flows, 0.0);

  // Remaining capacity and number of still-unfixed flows per link.
  std::vector<Rate> remaining = capacity;
  std::vector<std::int32_t> active_count(num_links, 0);
  std::vector<char> fixed(num_flows, 0);
  std::vector<char> saturated(num_links, 0);

  std::size_t unfixed = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flows[f].links.empty()) {
      // Loopback: not constrained by any link.
      rate[f] = flows[f].cap;
      fixed[f] = 1;
      continue;
    }
    for (auto l : flows[f].links) {
      RATS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < num_links,
                   "flow references unknown link");
      RATS_REQUIRE(capacity[static_cast<std::size_t>(l)] > 0,
                   "used link must have positive capacity");
      ++active_count[static_cast<std::size_t>(l)];
    }
    ++unfixed;
  }

  // Progressive filling: repeatedly find the tightest constraint (link
  // fair share or flow cap) and fix every flow bound by it.
  while (unfixed > 0) {
    // Tightest link fair share among links still carrying unfixed flows.
    Rate share = std::numeric_limits<Rate>::infinity();
    for (std::size_t l = 0; l < num_links; ++l)
      if (active_count[l] > 0)
        share = std::min(share, remaining[l] / active_count[l]);
    RATS_REQUIRE(std::isfinite(share), "no constraining link for active flows");

    // Flows capped at or below the share saturate at their own cap
    // first; they consume less than a fair share, so fixing them can
    // only raise the share of the remaining flows (hence the loop).
    bool fixed_by_cap = false;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (fixed[f] || flows[f].cap > share) continue;
      rate[f] = flows[f].cap;
      fixed[f] = 1;
      --unfixed;
      fixed_by_cap = true;
      for (auto l : flows[f].links) {
        remaining[static_cast<std::size_t>(l)] -= rate[f];
        --active_count[static_cast<std::size_t>(l)];
      }
    }
    if (fixed_by_cap) continue;

    // Otherwise saturate the bottleneck link(s).  The saturated set is
    // snapshotted before fixing anything: fixing a flow mutates
    // remaining/active_count, so testing saturation on the live arrays
    // would make the outcome depend on flow index order.
    const Rate eps = share * 1e-12;
    for (std::size_t l = 0; l < num_links; ++l)
      saturated[l] = active_count[l] > 0 &&
                     remaining[l] / active_count[l] <= share + eps;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (fixed[f]) continue;
      bool bottlenecked = false;
      for (auto l : flows[f].links) {
        if (saturated[static_cast<std::size_t>(l)]) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      rate[f] = share;
      fixed[f] = 1;
      --unfixed;
      for (auto l : flows[f].links) {
        const auto li = static_cast<std::size_t>(l);
        remaining[li] = std::max(0.0, remaining[li] - share);
        --active_count[li];
      }
    }
  }
  return rate;
}

}  // namespace rats
