#include "net/solver_stats.hpp"

#include <cstdio>
#include <cstdlib>

namespace rats {

SolverStats::SolverStats()
    : enabled_(std::getenv("RATS_SOLVER_STATS") != nullptr) {}

void SolverStats::record_warm_replay(std::uint64_t cone,
                                     std::uint64_t undone) {
  if (!enabled_)
    return;
  settles_cone.fetch_add(cone, std::memory_order_relaxed);
  settles_kept.fetch_add(undone - cone, std::memory_order_relaxed);
  std::size_t bucket = 9;
  if (undone > 0 && cone < undone)
    bucket = static_cast<std::size_t>((cone * 10) / undone);
  cone_fraction[bucket].fetch_add(1, std::memory_order_relaxed);
}

SolverStats::~SolverStats() {
  if (!enabled_)
    return;
  const auto u = [](const std::atomic<std::uint64_t>& a) {
    return static_cast<unsigned long long>(a.load(std::memory_order_relaxed));
  };
  const std::uint64_t solves =
      singleton.load() + warm.load() + bipartite.load() + general.load();
  if (solves + warm_attempts.load() == 0)
    return;
  std::fprintf(stderr,
               "MaxMinSolver strategies: %llu solves (%llu singleton, %llu "
               "warm, %llu bipartite, %llu general)\n",
               static_cast<unsigned long long>(solves), u(singleton), u(warm),
               u(bipartite), u(general));
  const std::uint64_t attempts = warm_attempts.load();
  if (attempts > 0) {
    std::fprintf(stderr,
                 "MaxMinSolver warm coverage: %llu hits / %llu attempts "
                 "(%.1f%%), %llu cold fallbacks\n",
                 u(warm_hits), u(warm_attempts),
                 100.0 * static_cast<double>(warm_hits.load()) /
                     static_cast<double>(attempts),
                 u(warm_declined));
  }
  const std::uint64_t undone = settles_kept.load() + settles_cone.load();
  if (undone > 0) {
    std::fprintf(stderr,
                 "MaxMinSolver warm replay: %llu settles undone, %llu "
                 "re-solved via cone (%.1f%%), %llu committed from trace\n",
                 static_cast<unsigned long long>(undone), u(settles_cone),
                 100.0 * static_cast<double>(settles_cone.load()) /
                     static_cast<double>(undone),
                 u(settles_kept));
    std::fprintf(stderr, "MaxMinSolver cone/undone deciles:");
    for (int b = 0; b < 10; ++b)
      std::fprintf(stderr, " %llu", u(cone_fraction[b]));
    std::fprintf(stderr, "\n");
  }
  if (ns_warm.load() + ns_cold.load() > 0)
    std::fprintf(stderr,
                 "MaxMinSolver time: %.3f s in warm solves, %.3f s in cold "
                 "solves\n",
                 static_cast<double>(ns_warm.load()) * 1e-9,
                 static_cast<double>(ns_cold.load()) * 1e-9);
}

SolverStats& solver_stats() {
  static SolverStats stats;
  return stats;
}

}  // namespace rats
