#include "net/solver_stats.hpp"

#include <cstdio>
#include <cstdlib>

namespace rats {

SolverStats::SolverStats()
    : singleton(obs::counter("net/solve/singleton")),
      warm(obs::counter("net/solve/warm")),
      bipartite(obs::counter("net/solve/bipartite")),
      general(obs::counter("net/solve/general")),
      warm_attempts(obs::counter("net/warm/attempts")),
      warm_hits(obs::counter("net/warm/hits")),
      warm_declined(obs::counter("net/warm/declined")),
      settles_kept(obs::counter("net/warm/settles_kept")),
      settles_cone(obs::counter("net/warm/settles_cone")),
      cone_fraction(obs::histogram("net/warm/cone_fraction", 10)),
      ns_warm(obs::timer("net/solve/warm_time")),
      ns_cold(obs::timer("net/solve/cold_time")) {}

void SolverStats::record_warm_replay(std::uint64_t cone,
                                     std::uint64_t undone) {
  if (!obs::metrics_enabled())
    return;
  settles_cone.add(cone);
  settles_kept.add(undone - cone);
  std::size_t bucket = 9;
  if (undone > 0 && cone < undone)
    bucket = static_cast<std::size_t>((cone * 10) / undone);
  cone_fraction.record(bucket);
}

SolverStats::~SolverStats() {
  // The classic stderr report stays behind its own env var: enabling
  // metrics for a snapshot must not start spamming stderr at exit.
  if (std::getenv("RATS_SOLVER_STATS") == nullptr)
    return;
  const std::uint64_t solves =
      singleton.value() + warm.value() + bipartite.value() + general.value();
  if (solves + warm_attempts.value() == 0)
    return;
  const auto u = [](std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  std::fprintf(stderr,
               "MaxMinSolver strategies: %llu solves (%llu singleton, %llu "
               "warm, %llu bipartite, %llu general)\n",
               u(solves), u(singleton.value()), u(warm.value()),
               u(bipartite.value()), u(general.value()));
  const std::uint64_t attempts = warm_attempts.value();
  if (attempts > 0) {
    std::fprintf(stderr,
                 "MaxMinSolver warm coverage: %llu hits / %llu attempts "
                 "(%.1f%%), %llu cold fallbacks\n",
                 u(warm_hits.value()), u(attempts),
                 100.0 * static_cast<double>(warm_hits.value()) /
                     static_cast<double>(attempts),
                 u(warm_declined.value()));
  }
  const std::uint64_t undone = settles_kept.value() + settles_cone.value();
  if (undone > 0) {
    std::fprintf(stderr,
                 "MaxMinSolver warm replay: %llu settles undone, %llu "
                 "re-solved via cone (%.1f%%), %llu committed from trace\n",
                 u(undone), u(settles_cone.value()),
                 100.0 * static_cast<double>(settles_cone.value()) /
                     static_cast<double>(undone),
                 u(settles_kept.value()));
    std::fprintf(stderr, "MaxMinSolver cone/undone deciles:");
    for (std::size_t b = 0; b < 10; ++b)
      std::fprintf(stderr, " %llu", u(cone_fraction.bucket(b)));
    std::fprintf(stderr, "\n");
  }
  if (ns_warm.total_ns() + ns_cold.total_ns() > 0)
    std::fprintf(stderr,
                 "MaxMinSolver time: %.3f s in warm solves, %.3f s in cold "
                 "solves\n",
                 static_cast<double>(ns_warm.total_ns()) * 1e-9,
                 static_cast<double>(ns_cold.total_ns()) * 1e-9);
}

SolverStats& solver_stats() {
  static SolverStats stats;
  return stats;
}

}  // namespace rats
