// Fluid (flow-level) network simulation on a Cluster.
//
// This is the network half of our SimGrid replacement.  Flows are
// fluid: at any instant every in-flight flow transfers at the Max-Min
// fair rate computed over the cluster's links.  A flow traverses a
// latency phase (the sum of its route's link latencies) before its
// payload starts moving, reproducing SimGrid's  T = latency + size/rate
// behaviour while still reacting to flows that come and go.
//
// The class is driven by a discrete-event engine: the owner calls
// `advance_to(t)` to move virtual time forward, adds/queries flows, and
// uses `next_event_time()` to know when the network state next changes
// on its own (a flow finishing its latency phase or its payload).
//
// The engine is incremental (SimGrid's "lazy update" style):
//  * per-flow payload is tracked lazily — `remaining` is only brought
//    up to date when the flow's rate changes or it completes, so events
//    that do not affect a flow never touch it;
//  * each in-flight flow keeps exactly one entry in an indexed event
//    heap — its latency-phase exit, then its predicted completion.  A
//    rate change re-keys the flow's entry in place (O(log #active)),
//    so the heap never accumulates stale predictions and
//    `next_event_time()` is a const O(1) peek.  Entries tie-break on a
//    global sequence number assigned at prediction time, reproducing
//    the insertion-order pop of a lazy-invalidation queue bit for bit;
//  * released flows are partitioned into *sharing components* — the
//    connected components of the flow/link sharing graph (two flows are
//    adjacent when their routes share a link).  An arrival merges the
//    components of every link it touches and marks the result dirty; a
//    departure marks its component dirty (and possibly-split, since
//    removals are the only edits that can disconnect a component).
//    `ensure_rates()` re-solves only dirty components: a
//    possibly-split component is first re-partitioned by a link-stamped
//    walk of the sharing graph (each link's member list is scanned once
//    — O(component incidences)), then every true component gets one
//    Max-Min solve over non-owning route views into the flows'
//    immutable routes.  Rates, predictions and heap entries of
//    untouched components are left completely alone, so a contended
//    event costs O(component * log) — proportional to what changed,
//    not to what exists.  Max-Min rates decompose exactly over sharing
//    components, so the rates match a full solve bit for bit;
//  * each component's solve goes through a *solver-strategy dispatch*
//    (see net/maxmin.hpp).  Every component keeps the saturation trace
//    of its last solve (`MaxMinWarmState`) plus the arrivals and
//    departures recorded since; when the trace is live the component
//    is re-solved *warm* — only the saturation cascade the changed
//    flows can reach is recomputed, O(cascade) instead of
//    O(component).  Cold solves (first solve, post-split, deep
//    cascades) go to the bipartite waterfilling fast path when every
//    member crosses exactly two links (always true on
//    `Cluster::flat_routes()` platforms), and to the general
//    adjacency-sharing solver otherwise; both re-record the trace.  A
//    merge turns the absorbed component's members into pending
//    arrivals of the survivor, so warm solving survives the common
//    merge-on-arrival; a split invalidates the union's trace and
//    cold-solves the parts (priming their own traces).
//    Single-flow components short-circuit the solver entirely:
//    rate = min(cap, min link capacity);
//  * completed flows are reported through `drain_completed()` in
//    O(#finished), so a driver never rescans its in-flight set.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "net/maxmin.hpp"
#include "platform/cluster.hpp"
#include "trace/trace.hpp"

namespace rats {

using FlowId = std::int32_t;

/// Per-flow metadata of the fluid simulation.  The hot per-flow state
/// the rate-application kernels iterate — current rate, payload left,
/// settle timestamp, route links — lives in flat parallel arrays
/// inside FluidNetwork (indexed by flow id) so solver flushes and
/// settle sweeps walk dense memory instead of hopping between
/// per-flow heap blocks; see flow_rate()/flow_remaining()/flow_route().
struct FlowState {
  NodeId src{};
  NodeId dst{};
  Bytes total_bytes{};
  Seconds start{};       ///< time the flow was opened
  Seconds release{};     ///< start + route latency: payload begins here
  Seconds finish{};      ///< completion time (valid once done)
  bool released = false; ///< past the latency phase, competing for rate
  bool done = false;
  Rate cap = std::numeric_limits<Rate>::infinity();
};

/// Non-owning view of one flow's route inside the flat route arena.
struct RouteView {
  const LinkId* data;
  std::int32_t count;
  const LinkId* begin() const { return data; }
  const LinkId* end() const { return data + count; }
  std::size_t size() const { return static_cast<std::size_t>(count); }
  LinkId operator[](std::size_t i) const { return data[i]; }
};

/// Fluid network simulation over a cluster's links.
class FluidNetwork {
 public:
  explicit FluidNetwork(const Cluster& cluster);

  /// Opens a flow of `bytes` from `src` to `dst` at the current time.
  /// Loopback (src == dst) and empty flows complete immediately (and
  /// are still reported by the next `drain_completed()`).
  FlowId open_flow(NodeId src, NodeId dst, Bytes bytes);

  /// Moves virtual time forward, draining payload at current rates and
  /// completing flows on the way.  `t` must be >= now().
  void advance_to(Seconds t);

  /// Earliest future instant at which a flow completes or leaves its
  /// latency phase; nullopt when no flow is in flight.  Const: the lazy
  /// rate recomputation is flushed by `advance_to`/`ensure_rates`
  /// before control returns to the caller, and a debug assert checks
  /// no component is still dirty here.
  std::optional<Seconds> next_event_time() const;

  /// Applies pending arrivals/departures to the rate assignment,
  /// re-solving only the dirty sharing components.  Called
  /// automatically by `advance_to`; public so diagnostics/tests can
  /// flush explicitly.
  void ensure_rates();

  /// Flows that finished since the previous call, in completion order
  /// (instantly-done flows appear after the open that created them).
  /// Returns a reference to an internal buffer invalidated by the next
  /// call; costs O(#finished since last drain).
  const std::vector<FlowId>& drain_completed();

  Seconds now() const { return now_; }
  bool flow_done(FlowId id) const { return flow(id).done; }
  Seconds flow_finish_time(FlowId id) const;
  const FlowState& flow(FlowId id) const;
  /// Current Max-Min rate (0 while latent/done).
  Rate flow_rate(FlowId id) const {
    flow(id);  // range check
    return flow_rate_[static_cast<std::size_t>(id)];
  }
  /// Payload bytes left as of the flow's last settle.
  Bytes flow_remaining(FlowId id) const {
    flow(id);  // range check
    return flow_remaining_[static_cast<std::size_t>(id)];
  }
  /// Ordered link ids the flow traverses (empty for loopback).
  RouteView flow_route(FlowId id) const {
    flow(id);  // range check
    const auto b = route_off_[static_cast<std::size_t>(id)];
    const auto e = route_off_[static_cast<std::size_t>(id) + 1];
    return RouteView{route_links_.data() + b, e - b};
  }
  std::size_t num_flows() const { return flows_.size(); }
  std::size_t active_flows() const { return active_ids_.size(); }

  /// Sum over all completed and in-flight flows of bytes injected.
  Bytes total_bytes_opened() const { return total_bytes_; }

  /// Updates a link's capacity mid-simulation (background traffic, a
  /// degraded switch, a failed NIC).  Marks the sharing component whose
  /// flows cross the link dirty and drops its warm state — a capacity
  /// change is outside the warm re-solve's delta vocabulary — then
  /// flushes, so rates after the call are bitwise identical to a
  /// from-scratch Max-Min solve of the same released population.
  void set_link_capacity(LinkId link, Rate capacity);

  /// Current capacity of `link` (the cluster's bandwidth unless
  /// changed by set_link_capacity).
  Rate link_capacity(LinkId link) const;

  /// Aborts an in-flight flow: it is retired immediately — its link
  /// shares are released and survivors re-solved — but it never
  /// reports completion (it will not appear in drain_completed()).
  /// flow_finish_time() of a cancelled flow is the cancel instant.
  /// No-op when the flow already completed.
  void cancel_flow(FlowId id);

  /// Test hook: drops every live component's warm state and re-solves
  /// the whole population cold — the oracle side of the capacity-change
  /// differential tests (targeted invalidation must match this bitwise).
  void invalidate_all_rates();

  /// Opt-in structured tracing: when set, every component solve (with
  /// the strategy the dispatch picked) and every rate assignment is
  /// recorded.  Pass nullptr to disable (the default); the sink must
  /// outlive the network.
  void set_trace(TraceSink* trace) { trace_ = trace; }

  /// Opt-in invariant validation (the `rats fuzz` network oracle).
  /// When on, every rate flush is followed by two checks over the
  /// released population: Max-Min conservation (no link's member rates
  /// sum past its capacity, no flow exceeds its cap) and warm ≡ cold
  /// equivalence (a from-scratch cold re-solve of every component must
  /// reproduce the incrementally-maintained rates bit for bit).  Throws
  /// rats::Error on the first violation.  Off by default: the hot path
  /// pays one branch per flush, and results are unchanged because the
  /// cold re-solve is the rate the invariant already requires.
  void set_validation(bool on) { validate_ = on; }

  // ---- sharing-component observers (tests / diagnostics) -------------

  /// Component id of a released, not-yet-done flow; -1 otherwise.  Ids
  /// are stable while the partition is clean; a re-solve may renumber
  /// the components it splits.
  std::int32_t flow_component(FlowId id) const;
  /// Number of live sharing components.  After a flush
  /// (`advance_to`/`ensure_rates`) the partition is exact for
  /// components up to the eager-split size (64 members); a larger
  /// component that a departure disconnected may stay merged — a
  /// correct over-approximation, rates are unaffected — until its
  /// amortized split walk runs (at most 16 departure-solves later).
  std::size_t num_components() const { return live_components_; }

 private:
  /// One sharing component of the released-flow/link graph.
  struct Component {
    std::vector<FlowId> members;
    bool dirty = false;        ///< membership changed since last solve
    bool maybe_split = false;  ///< a departure may have disconnected it
    bool live = false;
    std::uint32_t solves_since_walk = 0;  ///< amortizes split detection
    /// Saturation trace of the last solve plus the membership delta
    /// accumulated since — the warm re-solve's inputs.  `pending_add`
    /// and `pending_remove` are only tracked while `warm.valid`.
    MaxMinWarmState warm;
    std::vector<FlowId> pending_add;
    std::vector<FlowId> pending_remove;
    /// Drops the trace and the pending delta together (the invariant:
    /// pending lists are meaningless without a valid trace).
    void reset_warm() {
      warm.invalidate();
      pending_add.clear();
      pending_remove.clear();
    }
    /// Keeps the (freshly re-recorded) trace, drops the consumed delta.
    void clear_pending() {
      pending_add.clear();
      pending_remove.clear();
    }
  };

  /// Indexed binary min-heap over (time, seq) with one entry per flow:
  /// the latency-phase exit while latent, the predicted completion once
  /// released.  `seq` reproduces the push order of a lazy-invalidation
  /// event queue (a fresh, larger seq per prediction), keeping
  /// simultaneous events in the exact order the previous engine
  /// processed them.
  ///
  /// Re-keys are *lazy for completions that moved later*: the common
  /// rate change (an arrival slows everyone down, pushing predictions
  /// out) only records the flow's true (time, seq) in a side array and
  /// leaves the heap entry where it is.  Since the stored key is then a
  /// lower bound on the true key, heap order stays valid; a stale entry
  /// is re-keyed (one sift) only when it surfaces at the top —
  /// `fix_top()` restores the "top entry is fresh" invariant after
  /// every mutation, so `next_time()` remains an exact O(1) const
  /// peek.  A flow re-keyed k times between top visits pays one sift
  /// instead of k.  Completions that moved *earlier* sift up
  /// immediately (a lower-bound violation cannot be deferred).  The
  /// effective pop order — by true (time, seq) — is bit-identical to
  /// the eager scheme's.
  class EventHeap {
   public:
    bool empty() const { return entries_.empty(); }
    Seconds next_time() const { return entries_.front().time; }
    FlowId pop();
    /// Inserts or re-keys `f`'s entry; later-moving re-keys are
    /// deferred (see class comment).
    void upsert(FlowId f, Seconds time, std::uint64_t seq);
    /// Drops `f`'s entry if present (a flow rated down to zero has no
    /// completion to predict).
    void remove(FlowId f);
    void grow(std::size_t num_flows) {
      pos_.resize(num_flows, -1);
      true_time_.resize(num_flows, 0);
      true_seq_.resize(num_flows, 0);
    }

   private:
    struct Entry {
      Seconds time;
      std::uint64_t seq;
      FlowId flow;
    };
    bool before(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
    void place(std::size_t i, const Entry& e);
    void sift_up(std::size_t i, Entry e);
    void sift_down(std::size_t i, Entry e);
    /// Re-keys deferred entries that reached the root until the top
    /// holds its true key (or the heap is empty).
    void fix_top();

    std::vector<Entry> entries_;
    std::vector<std::int32_t> pos_;  ///< flow id -> index in entries_, -1
    // True key of each flow's entry; an entry whose stored seq differs
    // is stale (its stored key is an earlier lower bound).
    std::vector<Seconds> true_time_;
    std::vector<std::uint64_t> true_seq_;
  };

  /// Settles `remaining` up to now() at the current rate.
  void settle(FlowId id);
  /// Assigns a (new) rate and queues the completion-prediction re-key.
  /// Only called while `ensure_rates()` flushes dirty components; the
  /// queued re-keys are applied in one batch after all component
  /// solves (`apply_rekeys`), so a solve touches the event heap zero
  /// times instead of once per changed rate.
  void set_rate(FlowId id, Rate r);
  /// Applies the re-keys queued by `set_rate` since the last batch, in
  /// call order (preserving the eager scheme's seq assignment).
  void apply_rekeys();
  /// Latency-phase exit: the flow starts competing for bandwidth.
  void activate(FlowId id, FlowState& f);
  /// Retires a flow (done, off the active list, link shares released,
  /// component updated) without reporting completion.
  void retire(FlowId id, FlowState& f);
  /// Payload exhausted: retire + queue for drain.
  void complete(FlowId id, FlowState& f);
  /// The set_validation(true) checks; runs after a flush that solved
  /// at least one component.
  void run_validation_checks();

  // Partition maintenance.
  std::int32_t alloc_component();
  void free_component(std::int32_t c);
  void mark_dirty(std::int32_t c);
  void add_member(std::int32_t c, FlowId id);
  void remove_member(std::int32_t c, FlowId id);
  /// Moves the smaller component's members into the larger; returns the
  /// surviving id.
  std::int32_t merge_components(std::int32_t a, std::int32_t b);
  /// Re-solves a dirty component, re-partitioning it first when a
  /// departure may have disconnected it.
  void repartition_and_solve(std::int32_t c);
  /// Solver-strategy dispatch for one true component: singleton
  /// short-circuit, warm re-solve over the pending delta when the
  /// trace allows it, else a traced cold solve.
  void solve_component(std::int32_t c);
  /// Traced cold solve of a component: bipartite waterfilling when
  /// every member crosses exactly two links, the general
  /// adjacency-sharing solver otherwise.  Re-primes `warm`.
  void solve_cold(std::int32_t c);

  const Cluster* cluster_;
  std::vector<Rate> capacity_;
  std::vector<FlowState> flows_;
  // Hot per-flow state as structure-of-arrays, indexed by flow id (the
  // solver-flush and settle kernels stream these).
  std::vector<Rate> flow_rate_;        ///< current Max-Min rate
  std::vector<Bytes> flow_remaining_;  ///< payload left at last settle
  std::vector<Seconds> flow_settled_;  ///< instant of the last settle
  // Immutable routes in one flat arena: flow id -> [route_off_[id],
  // route_off_[id+1]) into route_links_.  `route_pos_` (same layout) is
  // this flow's slot in link_members_[link] while released, so a
  // departure swap-removes itself in O(route length).
  std::vector<std::int32_t> route_off_;
  std::vector<LinkId> route_links_;
  std::vector<std::int32_t> route_pos_;
  std::vector<FlowId> active_ids_;       ///< not-yet-done flows
  std::vector<std::int32_t> active_pos_; ///< flow id -> index in active_ids_
  EventHeap events_;
  std::uint64_t next_seq_ = 0;  ///< prediction tie-break counter
  /// Re-keys queued during a rate flush (flow, prediction, seq); a
  /// non-positive rate queues a removal instead (time is ignored).
  struct PendingRekey {
    FlowId flow;
    bool remove;
    Seconds time;
    std::uint64_t seq;
  };
  std::vector<PendingRekey> rekey_buffer_;

  // Sharing-component partition of released flows.
  std::vector<std::vector<FlowId>> link_members_;  ///< released flows per link
  std::vector<Component> components_;
  std::vector<std::int32_t> free_components_;
  std::vector<std::int32_t> dirty_components_;
  std::vector<std::int32_t> component_of_;  ///< flow id -> component (-1)
  std::vector<std::int32_t> member_pos_;    ///< flow id -> index in members
  std::size_t live_components_ = 0;

  // Re-partition / solve scratch (persistent, reused across solves).
  std::vector<std::int32_t> dirty_scratch_;
  std::vector<FlowId> group_;          ///< members of one true component
  std::vector<FlowId> split_scratch_;  ///< membership snapshot for walks
  std::vector<FlowId> bfs_queue_;
  std::vector<std::uint32_t> link_stamp_;   ///< per link id
  std::uint32_t visit_epoch_ = 0;
  std::vector<std::uint32_t> visit_stamp_;  ///< per flow id
  std::vector<FlowDemandView> demand_views_;
  std::vector<std::int32_t> local_index_;  ///< flow id -> index in group_
  std::vector<Rate> group_rates_;

  // Drain + solver scratch.
  std::vector<FlowId> completed_;
  std::vector<FlowId> drained_;
  MaxMinSolver solver_;
  BipartiteWaterfillSolver bipartite_;
  std::vector<FlowArrival> arrivals_scratch_;
  std::vector<std::pair<std::int32_t, Rate>> changed_;

  Seconds now_ = 0;
  Bytes total_bytes_ = 0;
  TraceSink* trace_ = nullptr;
  bool validate_ = false;    ///< set_validation: check after every flush
  bool validating_ = false;  ///< re-entrancy guard (the check re-solves)
  std::vector<std::pair<FlowId, Rate>> validation_snapshot_;
};

}  // namespace rats
