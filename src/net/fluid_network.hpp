// Fluid (flow-level) network simulation on a Cluster.
//
// This is the network half of our SimGrid replacement.  Flows are
// fluid: at any instant every in-flight flow transfers at the Max-Min
// fair rate computed over the cluster's links.  A flow traverses a
// latency phase (the sum of its route's link latencies) before its
// payload starts moving, reproducing SimGrid's  T = latency + size/rate
// behaviour while still reacting to flows that come and go.
//
// The class is driven by a discrete-event engine: the owner calls
// `advance_to(t)` to move virtual time forward, adds/queries flows, and
// uses `next_event_time()` to know when the network state next changes
// on its own (a flow finishing its latency phase or its payload).
//
// The engine is incremental (SimGrid's "lazy update" style):
//  * per-flow payload is tracked lazily — `remaining` is only brought
//    up to date when the flow's rate changes or it completes, so events
//    that do not affect a flow never touch it;
//  * releases and completions are predicted into an event heap keyed by
//    absolute time; a per-flow version stamp invalidates predictions
//    when a re-solve changes the flow's rate, so `next_event_time()` is
//    an O(log) peek rather than an O(#active) scan;
//  * the Max-Min solve itself is skipped when the links touched since
//    the last solve cannot change any active rate: a departing flow
//    whose links carry no other active flow is a pure removal, and an
//    arriving flow whose links carry no other active flow gets
//    rate = min(cap, min link capacity) directly.  Only genuinely
//    contended changes pay for a full solve, which reuses the
//    `MaxMinSolver`'s persistent scratch (no steady-state allocation);
//  * completed flows are reported through `drain_completed()` in
//    O(#finished), so a driver never rescans its in-flight set.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "net/maxmin.hpp"
#include "platform/cluster.hpp"
#include "sim/event_queue.hpp"

namespace rats {

using FlowId = std::int32_t;

/// State of one flow inside the fluid simulation.
struct FlowState {
  NodeId src{};
  NodeId dst{};
  Bytes total_bytes{};
  Bytes remaining{};     ///< payload bytes left as of `last_update`
  Seconds start{};       ///< time the flow was opened
  Seconds release{};     ///< start + route latency: payload begins here
  Seconds finish{};      ///< completion time (valid once done)
  Seconds last_update{}; ///< instant `remaining` was last settled at
  Rate rate{};           ///< current Max-Min rate (0 while latent/done)
  std::uint32_t version = 0;  ///< bumped on rate change; stales predictions
  bool released = false; ///< past the latency phase, competing for rate
  bool done = false;
  std::vector<LinkId> links;
  Rate cap = std::numeric_limits<Rate>::infinity();
};

/// Fluid network simulation over a cluster's links.
class FluidNetwork {
 public:
  explicit FluidNetwork(const Cluster& cluster);

  /// Opens a flow of `bytes` from `src` to `dst` at the current time.
  /// Loopback (src == dst) and empty flows complete immediately (and
  /// are still reported by the next `drain_completed()`).
  FlowId open_flow(NodeId src, NodeId dst, Bytes bytes);

  /// Moves virtual time forward, draining payload at current rates and
  /// completing flows on the way.  `t` must be >= now().
  void advance_to(Seconds t);

  /// Earliest future instant at which a flow completes or leaves its
  /// latency phase; nullopt when no flow is in flight.  (Non-const:
  /// flushes any pending lazy rate recomputation.)
  std::optional<Seconds> next_event_time();

  /// Flows that finished since the previous call, in completion order
  /// (instantly-done flows appear after the open that created them).
  /// Returns a reference to an internal buffer invalidated by the next
  /// call; costs O(#finished since last drain).
  const std::vector<FlowId>& drain_completed();

  Seconds now() const { return now_; }
  bool flow_done(FlowId id) const { return flow(id).done; }
  Seconds flow_finish_time(FlowId id) const;
  const FlowState& flow(FlowId id) const;
  std::size_t num_flows() const { return flows_.size(); }
  std::size_t active_flows() const { return active_ids_.size(); }

  /// Sum over all completed and in-flight flows of bytes injected.
  Bytes total_bytes_opened() const { return total_bytes_; }

 private:
  struct NetEvent {
    FlowId id;
    std::uint32_t version;  ///< flow version the prediction was made at
    bool is_release;
  };

  /// True when the event at the queue head is still meaningful.
  bool event_valid(const NetEvent& e) const;
  /// Settles `remaining` up to now() at the current rate.
  void settle(FlowState& f);
  /// Assigns a (new) rate and predicts the flow's completion.
  void set_rate(FlowId id, FlowState& f, Rate r);
  /// Latency-phase exit: the flow starts competing for bandwidth.
  void activate(FlowId id, FlowState& f);
  /// Payload exhausted: record finish, free links, queue for drain.
  void complete(FlowId id, FlowState& f);
  /// Applies pending arrivals/departures to the rate assignment —
  /// skipping or short-circuiting the Max-Min solve when possible.
  void ensure_rates();
  void recompute_rates();

  const Cluster* cluster_;
  std::vector<Rate> capacity_;
  std::vector<FlowState> flows_;
  std::vector<FlowId> active_ids_;       ///< not-yet-done flows
  std::vector<std::int32_t> active_pos_; ///< flow id -> index in active_ids_
  std::vector<std::int32_t> link_users_; ///< released active flows per link
  EventQueue<NetEvent> events_;          ///< predicted releases/completions

  // Dirty bookkeeping between solves.
  bool dirty_ = false;             ///< some arrival/departure is unapplied
  bool contended_change_ = false;  ///< a touched link still has users
  std::vector<FlowId> pending_activations_;

  // Drain + solver scratch (persistent, reused across solves).
  std::vector<FlowId> completed_;
  std::vector<FlowId> drained_;
  MaxMinSolver solver_;
  std::vector<FlowDemand> demands_;
  std::vector<FlowId> demand_index_;
  std::vector<Rate> rates_;

  Seconds now_ = 0;
  Bytes total_bytes_ = 0;
};

}  // namespace rats
