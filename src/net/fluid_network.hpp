// Fluid (flow-level) network simulation on a Cluster.
//
// This is the network half of our SimGrid replacement.  Flows are
// fluid: at any instant every in-flight flow transfers at the Max-Min
// fair rate computed over the cluster's links.  A flow traverses a
// latency phase (the sum of its route's link latencies) before its
// payload starts moving, reproducing SimGrid's  T = latency + size/rate
// behaviour while still reacting to flows that come and go.
//
// The class is driven by a discrete-event engine: the owner calls
// `advance_to(t)` to move virtual time forward, adds/queries flows, and
// uses `next_event_time()` to know when the network state next changes
// on its own (a flow finishing its latency phase or its payload).
//
// Rates are recomputed lazily: opening a batch of flows (one block
// redistribution can contribute dozens) marks the state dirty once, and
// the Max-Min solve runs a single time when the simulation next needs
// rates.  Completed flows leave the active set, so per-event cost
// scales with the number of in-flight flows, not with the total number
// ever opened.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "net/maxmin.hpp"
#include "platform/cluster.hpp"

namespace rats {

using FlowId = std::int32_t;

/// State of one flow inside the fluid simulation.
struct FlowState {
  NodeId src{};
  NodeId dst{};
  Bytes total_bytes{};
  Bytes remaining{};     ///< payload bytes still to transfer
  Seconds start{};       ///< time the flow was opened
  Seconds release{};     ///< start + route latency: payload begins here
  Seconds finish{};      ///< completion time (valid once done)
  Rate rate{};           ///< current Max-Min rate (0 while latent/done)
  bool done = false;
  std::vector<LinkId> links;
  Rate cap = std::numeric_limits<Rate>::infinity();
};

/// Fluid network simulation over a cluster's links.
class FluidNetwork {
 public:
  explicit FluidNetwork(const Cluster& cluster);

  /// Opens a flow of `bytes` from `src` to `dst` at the current time.
  /// Loopback (src == dst) and empty flows complete immediately.
  FlowId open_flow(NodeId src, NodeId dst, Bytes bytes);

  /// Moves virtual time forward, draining payload at current rates and
  /// completing flows on the way.  `t` must be >= now().
  void advance_to(Seconds t);

  /// Earliest future instant at which a flow completes or leaves its
  /// latency phase; nullopt when no flow is in flight.  (Non-const:
  /// flushes any pending lazy rate recomputation.)
  std::optional<Seconds> next_event_time();

  Seconds now() const { return now_; }
  bool flow_done(FlowId id) const { return flow(id).done; }
  Seconds flow_finish_time(FlowId id) const;
  const FlowState& flow(FlowId id) const;
  std::size_t num_flows() const { return flows_.size(); }
  std::size_t active_flows() const { return active_ids_.size(); }

  /// Sum over all completed and in-flight flows of bytes injected.
  Bytes total_bytes_opened() const { return total_bytes_; }

 private:
  void ensure_rates();
  void recompute_rates();

  const Cluster* cluster_;
  std::vector<Rate> capacity_;
  std::vector<FlowState> flows_;
  std::vector<FlowId> active_ids_;  ///< indices of not-yet-done flows
  bool dirty_ = false;              ///< rates stale (flows added/removed)
  Seconds now_ = 0;
  Bytes total_bytes_ = 0;
};

}  // namespace rats
