// Process-wide Max-Min solver statistics, registry-backed.
//
// The counters live in the obs:: metrics registry under `net/...`
// names, so they show up in `rats run --metrics` snapshots and in the
// report's metrics section; this struct is the solver-side façade that
// keeps the call sites one-liner cheap (`stats.bump(stats.warm)`).
// Bumps are gated on obs::metrics_enabled() — one predictable branch
// when off, a relaxed fetch_add when on.  Setting the legacy
// RATS_SOLVER_STATS environment variable still (a) enables recording,
// as an alias of RATS_METRICS, and (b) prints the classic exit report
// to stderr, reproduced from registry state.
//
// The counters measure the solver-strategy layer:
//
//   * per-strategy solve counts (singleton short-circuit, warm
//     re-solve, bipartite waterfilling, general lazy-heap) as picked by
//     the fluid network's dispatch;
//   * warm re-solve attempts / hits / declines (cold fallbacks), i.e.
//     the *warm coverage* the dependency-cone undo is supposed to
//     raise;
//   * per-warm-solve replay composition: settles committed from the
//     recorded trace ("kept") vs re-solved through the cone, plus a
//     decile histogram of cone-size / undone-trace-size — small cones
//     on deep undos are exactly the cases the prefix undo used to
//     surrender to a cold solve.
//
// See README.md ("Observability") for how to interpret the report.
#pragma once

#include <cstdint>

#include "obs/registry.hpp"

namespace rats {

struct SolverStats {
  // Strategy dispatch (fluid-network component solves).
  obs::Counter& singleton;
  obs::Counter& warm;
  obs::Counter& bipartite;
  obs::Counter& general;

  // Warm re-solve outcomes (solver-level, all callers).
  obs::Counter& warm_attempts;
  obs::Counter& warm_hits;
  obs::Counter& warm_declined;  ///< returned false

  // Replay composition across successful warm solves.
  obs::Counter& settles_kept;  ///< committed from trace
  obs::Counter& settles_cone;  ///< re-solved (cascade)
  /// Decile histogram of cone settles / undone settles per warm solve
  /// (bucket 9 also catches the ==100% case).
  obs::Histogram& cone_fraction;

  // Wall time inside component solves, by strategy (only accumulated
  // while stats are enabled; the timer itself costs ~2 clock reads per
  // solve).
  obs::Timer& ns_warm;
  obs::Timer& ns_cold;

  bool enabled() const { return obs::metrics_enabled(); }

  void bump(obs::Counter& counter) { counter.inc(); }
  void add(obs::Counter& counter, std::uint64_t n) { counter.add(n); }
  void add(obs::Timer& timer, std::uint64_t ns) { timer.add_ns(ns); }
  /// Records one successful warm replay: `cone` settles re-solved out
  /// of `undone` undone (kept = undone - cone).
  void record_warm_replay(std::uint64_t cone, std::uint64_t undone);

  ~SolverStats();

 private:
  SolverStats();
  friend SolverStats& solver_stats();
};

/// The process-wide instance (constructed on first use; when
/// RATS_SOLVER_STATS is set, prints the classic report at exit).
SolverStats& solver_stats();

}  // namespace rats
