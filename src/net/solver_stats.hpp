// Process-wide Max-Min solver statistics, printed at exit when the
// RATS_SOLVER_STATS environment variable is set (mirrors the
// RATS_REDIST_STATS counters of redist/block_redistribution.cpp).
//
// Counters are bumped live on every solve with relaxed atomics — and
// only when the env var is set, so the hot path pays one predictable
// branch.  They are the measurement side of the solver-strategy layer:
//
//   * per-strategy solve counts (singleton short-circuit, warm
//     re-solve, bipartite waterfilling, general lazy-heap) as picked by
//     the fluid network's dispatch;
//   * warm re-solve attempts / hits / declines (cold fallbacks), i.e.
//     the *warm coverage* the dependency-cone undo is supposed to
//     raise;
//   * per-warm-solve replay composition: settles committed from the
//     recorded trace ("kept") vs re-solved through the cone, plus a
//     decile histogram of cone-size / undone-trace-size — small cones
//     on deep undos are exactly the cases the prefix undo used to
//     surrender to a cold solve.
//
// See README.md ("Reading RATS_SOLVER_STATS output") for how to
// interpret the report.
#pragma once

#include <atomic>
#include <cstdint>

namespace rats {

struct SolverStats {
  // Strategy dispatch (fluid-network component solves).
  std::atomic<std::uint64_t> singleton{0};
  std::atomic<std::uint64_t> warm{0};
  std::atomic<std::uint64_t> bipartite{0};
  std::atomic<std::uint64_t> general{0};

  // Warm re-solve outcomes (solver-level, all callers).
  std::atomic<std::uint64_t> warm_attempts{0};
  std::atomic<std::uint64_t> warm_hits{0};
  std::atomic<std::uint64_t> warm_declined{0};  ///< returned false

  // Replay composition across successful warm solves.
  std::atomic<std::uint64_t> settles_kept{0};  ///< committed from trace
  std::atomic<std::uint64_t> settles_cone{0};  ///< re-solved (cascade)
  /// Decile histogram of cone settles / undone settles per warm solve
  /// (bucket 9 also catches the ==100% case).
  std::atomic<std::uint64_t> cone_fraction[10]{};

  // Wall time inside component solves, by strategy (only accumulated
  // while stats are enabled; the timer itself costs ~2 clock reads per
  // solve).
  std::atomic<std::uint64_t> ns_warm{0};
  std::atomic<std::uint64_t> ns_cold{0};

  bool enabled() const { return enabled_; }

  void bump(std::atomic<std::uint64_t>& counter) {
    if (enabled_)
      counter.fetch_add(1, std::memory_order_relaxed);
  }
  void add(std::atomic<std::uint64_t>& counter, std::uint64_t n) {
    if (enabled_)
      counter.fetch_add(n, std::memory_order_relaxed);
  }
  /// Records one successful warm replay: `cone` settles re-solved out
  /// of `undone` undone (kept = undone - cone).
  void record_warm_replay(std::uint64_t cone, std::uint64_t undone);

  ~SolverStats();

 private:
  const bool enabled_;
  SolverStats();
  friend SolverStats& solver_stats();
};

/// The process-wide instance (constructed on first use, reported at
/// exit).
SolverStats& solver_stats();

}  // namespace rats
