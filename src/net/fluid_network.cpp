#include "net/fluid_network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rats {

FluidNetwork::FluidNetwork(const Cluster& cluster) : cluster_(&cluster) {
  capacity_.reserve(static_cast<std::size_t>(cluster.num_links()));
  for (LinkId l = 0; l < cluster.num_links(); ++l)
    capacity_.push_back(cluster.link(l).bandwidth);
  link_users_.assign(capacity_.size(), 0);
}

FlowId FluidNetwork::open_flow(NodeId src, NodeId dst, Bytes bytes) {
  RATS_REQUIRE(bytes >= 0, "flow volume must be non-negative");
  FlowState f;
  f.src = src;
  f.dst = dst;
  f.total_bytes = bytes;
  f.remaining = bytes;
  f.start = now_;
  f.last_update = now_;
  f.links = cluster_->route(src, dst);
  total_bytes_ += bytes;

  const auto id = static_cast<FlowId>(flows_.size());
  if (f.links.empty() || bytes == 0) {
    // Loopback transfers are free (the paper's zero-cost
    // self-communication); zero-byte flows only carry a dependence.
    f.release = now_;
    f.finish = f.links.empty() ? now_ : now_ + cluster_->route_latency(src, dst);
    f.done = true;
    flows_.push_back(std::move(f));
    completed_.push_back(id);
    return id;
  }

  const Seconds one_way = cluster_->route_latency(src, dst);
  f.release = now_ + one_way;
  // Empirical TCP bound: beta' = min(beta, W_max / RTT), RTT = 2 x one-way.
  const Seconds rtt = 2.0 * one_way;
  if (rtt > 0) f.cap = cluster_->tcp_window() / rtt;

  flows_.push_back(std::move(f));
  if (active_pos_.size() < flows_.size()) active_pos_.resize(flows_.size(), -1);
  active_pos_[static_cast<std::size_t>(id)] =
      static_cast<std::int32_t>(active_ids_.size());
  active_ids_.push_back(id);
  events_.push(flows_.back().release, NetEvent{id, 0, true});
  return id;
}

bool FluidNetwork::event_valid(const NetEvent& e) const {
  const FlowState& f = flows_[static_cast<std::size_t>(e.id)];
  if (f.done) return false;
  if (e.is_release) return !f.released;
  return f.released && e.version == f.version;
}

void FluidNetwork::settle(FlowState& f) {
  if (f.rate > 0 && now_ > f.last_update)
    f.remaining = std::max(0.0, f.remaining - f.rate * (now_ - f.last_update));
  f.last_update = now_;
}

void FluidNetwork::set_rate(FlowId id, FlowState& f, Rate r) {
  settle(f);
  f.rate = r;
  ++f.version;
  if (r > 0)
    events_.push(std::max(now_ + f.remaining / r, now_),
                 NetEvent{id, f.version, false});
}

void FluidNetwork::activate(FlowId id, FlowState& f) {
  f.released = true;
  f.last_update = now_;
  for (LinkId l : f.links) ++link_users_[static_cast<std::size_t>(l)];
  pending_activations_.push_back(id);
  dirty_ = true;
}

void FluidNetwork::complete(FlowId id, FlowState& f) {
  f.remaining = 0;
  f.done = true;
  f.finish = now_;
  f.rate = 0;
  ++f.version;
  const auto pos = active_pos_[static_cast<std::size_t>(id)];
  const FlowId moved = active_ids_.back();
  active_ids_[static_cast<std::size_t>(pos)] = moved;
  active_pos_[static_cast<std::size_t>(moved)] = pos;
  active_ids_.pop_back();
  active_pos_[static_cast<std::size_t>(id)] = -1;
  for (LinkId l : f.links)
    // Any survivor on a freed link speeds up (and may cascade), so the
    // next ensure_rates() must run a full solve.
    if (--link_users_[static_cast<std::size_t>(l)] > 0)
      contended_change_ = true;
  completed_.push_back(id);
  dirty_ = true;
}

void FluidNetwork::advance_to(Seconds t) {
  RATS_REQUIRE(t >= now_ - 1e-12, "cannot move time backwards");
  for (;;) {
    ensure_rates();
    // Earliest still-valid event; stale predictions are discarded here.
    std::optional<Seconds> next;
    while (!events_.empty()) {
      if (event_valid(events_.peek())) {
        next = events_.next_time();
        break;
      }
      events_.pop();
    }
    if (!next || *next > t) break;
    now_ = std::max(now_, *next);
    // Process the whole batch of simultaneous events before re-solving:
    // one redistribution completing can retire many flows at once.
    while (!events_.empty() && events_.next_time() <= now_) {
      const NetEvent e = events_.pop();
      if (!event_valid(e)) continue;
      auto& f = flows_[static_cast<std::size_t>(e.id)];
      if (e.is_release)
        activate(e.id, f);
      else
        complete(e.id, f);
    }
  }
  now_ = std::max(now_, t);
}

std::optional<Seconds> FluidNetwork::next_event_time() {
  ensure_rates();
  while (!events_.empty()) {
    if (event_valid(events_.peek())) return events_.next_time();
    events_.pop();
  }
  return std::nullopt;
}

const std::vector<FlowId>& FluidNetwork::drain_completed() {
  std::swap(drained_, completed_);
  completed_.clear();
  return drained_;
}

Seconds FluidNetwork::flow_finish_time(FlowId id) const {
  const FlowState& f = flow(id);
  RATS_REQUIRE(f.done, "flow has not completed yet");
  return f.finish;
}

const FlowState& FluidNetwork::flow(FlowId id) const {
  RATS_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < flows_.size(),
               "flow id out of range");
  return flows_[static_cast<std::size_t>(id)];
}

void FluidNetwork::ensure_rates() {
  if (!dirty_) return;
  dirty_ = false;

  // Departures whose links are now unused affect nobody.  Arrivals that
  // share no link with another active flow take the uncontended rate
  // directly.  Only when a touched link still carries (other) users can
  // any existing rate change — that is the full-solve case.
  bool full_solve = contended_change_;
  if (!full_solve) {
    for (const FlowId id : pending_activations_) {
      for (const LinkId l : flows_[static_cast<std::size_t>(id)].links) {
        if (link_users_[static_cast<std::size_t>(l)] > 1) {
          full_solve = true;
          break;
        }
      }
      if (full_solve) break;
    }
  }

  if (full_solve) {
    recompute_rates();
  } else {
    for (const FlowId id : pending_activations_) {
      auto& f = flows_[static_cast<std::size_t>(id)];
      Rate r = f.cap;
      for (const LinkId l : f.links)
        r = std::min(r, capacity_[static_cast<std::size_t>(l)]);
      set_rate(id, f, r);
    }
  }
  pending_activations_.clear();
  contended_change_ = false;
}

void FluidNetwork::recompute_rates() {
  // Only flows past their latency phase compete for bandwidth.  The
  // demand/index/rate buffers persist across solves, so a steady-state
  // re-solve performs no allocation.
  std::size_t n = 0;
  demand_index_.clear();
  for (const FlowId id : active_ids_) {
    const auto& f = flows_[static_cast<std::size_t>(id)];
    if (!f.released) continue;
    if (demands_.size() <= n) demands_.emplace_back();
    demands_[n].links.assign(f.links.begin(), f.links.end());
    demands_[n].cap = f.cap;
    demand_index_.push_back(id);
    ++n;
  }
  demands_.resize(n);
  if (n == 0) return;
  solver_.solve(capacity_, demands_, rates_);
  for (std::size_t k = 0; k < n; ++k) {
    const FlowId id = demand_index_[k];
    auto& f = flows_[static_cast<std::size_t>(id)];
    // Unchanged rates keep their completion prediction; re-predicting
    // would just churn the event heap.
    if (rates_[k] != f.rate) set_rate(id, f, rates_[k]);
  }
}

}  // namespace rats
