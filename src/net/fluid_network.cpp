#include "net/fluid_network.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "net/solver_stats.hpp"
#include "obs/span.hpp"

namespace rats {

// ---- indexed event heap ------------------------------------------------

void FluidNetwork::EventHeap::place(std::size_t i, const Entry& e) {
  entries_[i] = e;
  pos_[static_cast<std::size_t>(e.flow)] = static_cast<std::int32_t>(i);
}

void FluidNetwork::EventHeap::sift_up(std::size_t i, Entry e) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(e, entries_[parent])) break;
    place(i, entries_[parent]);
    i = parent;
  }
  place(i, e);
}

void FluidNetwork::EventHeap::sift_down(std::size_t i, Entry e) {
  const std::size_t n = entries_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && before(entries_[child + 1], entries_[child])) ++child;
    if (!before(entries_[child], e)) break;
    place(i, entries_[child]);
    i = child;
  }
  place(i, e);
}

void FluidNetwork::EventHeap::fix_top() {
  while (!entries_.empty()) {
    const Entry& top = entries_.front();
    const auto fi = static_cast<std::size_t>(top.flow);
    if (true_seq_[fi] == top.seq) return;
    // Deferred re-keys only ever move a key later, so the true key is
    // >= the stored lower bound and the entry can only sink.
    sift_down(0, Entry{true_time_[fi], true_seq_[fi], top.flow});
  }
}

FlowId FluidNetwork::EventHeap::pop() {
  // The top is fresh by invariant (every mutation ends in fix_top), so
  // the popped event is the true earliest.
  const FlowId f = entries_.front().flow;
  pos_[static_cast<std::size_t>(f)] = -1;
  const Entry last = entries_.back();
  entries_.pop_back();
  if (!entries_.empty()) sift_down(0, last);
  fix_top();
  return f;
}

void FluidNetwork::EventHeap::remove(FlowId f) {
  const std::int32_t at = pos_[static_cast<std::size_t>(f)];
  if (at < 0) return;
  pos_[static_cast<std::size_t>(f)] = -1;
  const auto i = static_cast<std::size_t>(at);
  const Entry last = entries_.back();
  entries_.pop_back();
  if (i < entries_.size()) {
    if (i > 0 && before(last, entries_[(i - 1) / 2]))
      sift_up(i, last);
    else
      sift_down(i, last);
  }
  fix_top();
}

void FluidNetwork::EventHeap::upsert(FlowId f, Seconds time,
                                     std::uint64_t seq) {
  const auto fi = static_cast<std::size_t>(f);
  true_time_[fi] = time;
  true_seq_[fi] = seq;
  const Entry e{time, seq, f};
  const std::int32_t at = pos_[fi];
  if (at < 0) {
    entries_.push_back(e);
    sift_up(entries_.size() - 1, e);
    return;
  }
  const auto i = static_cast<std::size_t>(at);
  if (time >= entries_[i].time) {
    // Moved later (the fresh seq always sorts after the stored one at
    // equal times): defer — the stored key stays a valid lower bound
    // and the entry is re-keyed only if it ever surfaces at the top.
    if (i == 0) fix_top();
    return;
  }
  // Moved earlier: a lower bound would be violated, re-key now.  The
  // key strictly decreased, so the entry can only rise.
  sift_up(i, e);
}

// ---- fluid network -----------------------------------------------------

FluidNetwork::FluidNetwork(const Cluster& cluster) : cluster_(&cluster) {
  capacity_.reserve(static_cast<std::size_t>(cluster.num_links()));
  for (LinkId l = 0; l < cluster.num_links(); ++l)
    capacity_.push_back(cluster.link(l).bandwidth);
  link_members_.assign(capacity_.size(), {});
  link_stamp_.assign(capacity_.size(), 0);
}

FlowId FluidNetwork::open_flow(NodeId src, NodeId dst, Bytes bytes) {
  RATS_REQUIRE(bytes >= 0, "flow volume must be non-negative");
  FlowState f;
  f.src = src;
  f.dst = dst;
  f.total_bytes = bytes;
  f.start = now_;
  total_bytes_ += bytes;

  const auto id = static_cast<FlowId>(flows_.size());
  if (route_off_.empty()) route_off_.push_back(0);
  cluster_->route_into(src, dst, route_links_);
  route_off_.push_back(static_cast<std::int32_t>(route_links_.size()));
  route_pos_.resize(route_links_.size(), -1);  // filled at activation
  const bool loopback =
      route_off_[static_cast<std::size_t>(id)] ==
      route_off_[static_cast<std::size_t>(id) + 1];
  flow_rate_.push_back(0);
  flow_remaining_.push_back(bytes);
  flow_settled_.push_back(now_);
  if (loopback || bytes == 0) {
    // Loopback transfers are free (the paper's zero-cost
    // self-communication); zero-byte flows only carry a dependence.
    f.release = now_;
    f.finish = loopback ? now_ : now_ + cluster_->route_latency(src, dst);
    f.done = true;
    flows_.push_back(std::move(f));
    completed_.push_back(id);
    return id;
  }

  const Seconds one_way = cluster_->route_latency(src, dst);
  f.release = now_ + one_way;
  // Empirical TCP bound: beta' = min(beta, W_max / RTT), RTT = 2 x one-way.
  const Seconds rtt = 2.0 * one_way;
  if (rtt > 0) f.cap = cluster_->tcp_window() / rtt;

  flows_.push_back(std::move(f));
  if (active_pos_.size() < flows_.size()) {
    active_pos_.resize(flows_.size(), -1);
    component_of_.resize(flows_.size(), -1);
    member_pos_.resize(flows_.size(), -1);
    visit_stamp_.resize(flows_.size(), 0);
    events_.grow(flows_.size());
  }
  active_pos_[static_cast<std::size_t>(id)] =
      static_cast<std::int32_t>(active_ids_.size());
  active_ids_.push_back(id);
  events_.upsert(id, flows_.back().release, next_seq_++);
  return id;
}

void FluidNetwork::settle(FlowId id) {
  const auto fi = static_cast<std::size_t>(id);
  const Rate rate = flow_rate_[fi];
  if (rate > 0 && now_ > flow_settled_[fi])
    flow_remaining_[fi] =
        std::max(0.0, flow_remaining_[fi] - rate * (now_ - flow_settled_[fi]));
  flow_settled_[fi] = now_;
}

void FluidNetwork::set_rate(FlowId id, Rate r) {
  settle(id);
  const auto fi = static_cast<std::size_t>(id);
  flow_rate_[fi] = r;
  if (trace_) trace_->record(now_, TraceEventKind::RateChange, id, -1, r);
  // The heap re-key is queued, not applied: one component solve changes
  // many rates, and batching lets the whole flush touch the heap once
  // per flow at the end (seq is assigned here so the batch reproduces
  // the eager scheme's tie-break order exactly).
  if (r > 0) {
    rekey_buffer_.push_back(PendingRekey{
        id, false, std::max(now_ + flow_remaining_[fi] / r, now_),
        next_seq_++});
  } else {
    // A flow starved to rate 0 (degenerate exactly-saturated instance)
    // has no completion to predict; its old prediction must not fire.
    rekey_buffer_.push_back(PendingRekey{id, true, 0, 0});
  }
}

void FluidNetwork::apply_rekeys() {
  for (const PendingRekey& rk : rekey_buffer_) {
    if (rk.remove)
      events_.remove(rk.flow);
    else
      events_.upsert(rk.flow, rk.time, rk.seq);
  }
  rekey_buffer_.clear();
}

// ---- sharing-component partition --------------------------------------

std::int32_t FluidNetwork::alloc_component() {
  std::int32_t c;
  if (!free_components_.empty()) {
    c = free_components_.back();
    free_components_.pop_back();
    components_[static_cast<std::size_t>(c)].members.clear();
  } else {
    c = static_cast<std::int32_t>(components_.size());
    components_.emplace_back();
  }
  auto& comp = components_[static_cast<std::size_t>(c)];
  comp.live = true;
  comp.dirty = false;
  comp.maybe_split = false;
  comp.solves_since_walk = 0;
  comp.reset_warm();
  ++live_components_;
  return c;
}

void FluidNetwork::free_component(std::int32_t c) {
  auto& comp = components_[static_cast<std::size_t>(c)];
  comp.live = false;
  comp.dirty = false;
  comp.maybe_split = false;
  comp.members.clear();
  comp.reset_warm();
  free_components_.push_back(c);
  --live_components_;
}

void FluidNetwork::mark_dirty(std::int32_t c) {
  auto& comp = components_[static_cast<std::size_t>(c)];
  if (!comp.dirty) {
    comp.dirty = true;
    dirty_components_.push_back(c);
  }
}

void FluidNetwork::add_member(std::int32_t c, FlowId id) {
  auto& members = components_[static_cast<std::size_t>(c)].members;
  component_of_[static_cast<std::size_t>(id)] = c;
  member_pos_[static_cast<std::size_t>(id)] =
      static_cast<std::int32_t>(members.size());
  members.push_back(id);
}

void FluidNetwork::remove_member(std::int32_t c, FlowId id) {
  auto& members = components_[static_cast<std::size_t>(c)].members;
  const auto pos = member_pos_[static_cast<std::size_t>(id)];
  const FlowId moved = members.back();
  members[static_cast<std::size_t>(pos)] = moved;
  member_pos_[static_cast<std::size_t>(moved)] = pos;
  members.pop_back();
  member_pos_[static_cast<std::size_t>(id)] = -1;
}

std::int32_t FluidNetwork::merge_components(std::int32_t a, std::int32_t b) {
  if (components_[static_cast<std::size_t>(a)].members.size() <
      components_[static_cast<std::size_t>(b)].members.size())
    std::swap(a, b);
  auto& keep = components_[static_cast<std::size_t>(a)];
  auto& gone = components_[static_cast<std::size_t>(b)];
  keep.maybe_split = keep.maybe_split || gone.maybe_split;
  // Relative to the survivor's trace, the absorbed members are plain
  // arrivals — the absorbed trace is dropped with its component.
  const bool track = keep.warm.valid;
  for (const FlowId m : gone.members) {
    component_of_[static_cast<std::size_t>(m)] = a;
    member_pos_[static_cast<std::size_t>(m)] =
        static_cast<std::int32_t>(keep.members.size());
    keep.members.push_back(m);
    if (track) keep.pending_add.push_back(m);
  }
  free_component(b);
  return a;
}

void FluidNetwork::activate(FlowId id, FlowState& f) {
  f.released = true;
  flow_settled_[static_cast<std::size_t>(id)] = now_;
  const auto r_begin = static_cast<std::size_t>(
      route_off_[static_cast<std::size_t>(id)]);
  const auto r_end = static_cast<std::size_t>(
      route_off_[static_cast<std::size_t>(id) + 1]);
  // Merge the sharing components of every route link.  All released
  // flows on one link already share a component, so one representative
  // per link suffices.  The merged result stays connected — the new
  // flow is the bridge — so no split flag is raised here.
  std::int32_t target = -1;
  for (std::size_t i = r_begin; i < r_end; ++i) {
    const auto& members =
        link_members_[static_cast<std::size_t>(route_links_[i])];
    if (members.empty()) continue;
    const std::int32_t c = component_of_[static_cast<std::size_t>(
        members.front())];
    if (target == -1)
      target = c;
    else if (c != target)
      target = merge_components(target, c);
  }
  if (target == -1) target = alloc_component();
  add_member(target, id);
  if (components_[static_cast<std::size_t>(target)].warm.valid)
    components_[static_cast<std::size_t>(target)].pending_add.push_back(id);
  mark_dirty(target);
  for (std::size_t i = r_begin; i < r_end; ++i) {
    auto& members =
        link_members_[static_cast<std::size_t>(route_links_[i])];
    route_pos_[i] = static_cast<std::int32_t>(members.size());
    members.push_back(id);
  }
}

void FluidNetwork::retire(FlowId id, FlowState& f) {
  flow_remaining_[static_cast<std::size_t>(id)] = 0;
  f.done = true;
  f.finish = now_;
  flow_rate_[static_cast<std::size_t>(id)] = 0;
  const auto pos = active_pos_[static_cast<std::size_t>(id)];
  const FlowId moved = active_ids_.back();
  active_ids_[static_cast<std::size_t>(pos)] = moved;
  active_pos_[static_cast<std::size_t>(moved)] = pos;
  active_ids_.pop_back();
  active_pos_[static_cast<std::size_t>(id)] = -1;
  if (!f.released) return;  // latent: no link/component membership yet
  const auto r_begin = static_cast<std::size_t>(
      route_off_[static_cast<std::size_t>(id)]);
  const auto r_end = static_cast<std::size_t>(
      route_off_[static_cast<std::size_t>(id) + 1]);
  for (std::size_t i = r_begin; i < r_end; ++i) {
    const LinkId l = route_links_[i];
    auto& members = link_members_[static_cast<std::size_t>(l)];
    const auto pos = static_cast<std::size_t>(route_pos_[i]);
    const FlowId moved = members.back();
    members[pos] = moved;
    members.pop_back();
    if (moved != id) {
      // Point the displaced flow's back-pointer for link l at its new
      // slot; its route is a handful of links, so this scan is O(1)-ish.
      const auto m_begin = static_cast<std::size_t>(
          route_off_[static_cast<std::size_t>(moved)]);
      const auto m_end = static_cast<std::size_t>(
          route_off_[static_cast<std::size_t>(moved) + 1]);
      for (std::size_t j = m_begin; j < m_end; ++j)
        if (route_links_[j] == l) {
          route_pos_[j] = static_cast<std::int32_t>(pos);
          break;
        }
    }
  }
  const std::int32_t c = component_of_[static_cast<std::size_t>(id)];
  remove_member(c, id);
  component_of_[static_cast<std::size_t>(id)] = -1;
  if (components_[static_cast<std::size_t>(c)].members.empty()) {
    // Pure removal: the departing flow shared no link with anyone (it
    // was alone in its component), so no rate can change.
    free_component(c);
  } else {
    // Any survivor on a freed link speeds up (and may cascade through
    // the component), and the departure may also have disconnected it —
    // the next ensure_rates() re-partitions and re-solves it.
    auto& comp = components_[static_cast<std::size_t>(c)];
    if (comp.warm.valid) {
      // A flow that arrived and completed within one event batch never
      // entered the trace: the delta cancels out entirely.
      const auto added = std::find(comp.pending_add.begin(),
                                   comp.pending_add.end(), id);
      if (added != comp.pending_add.end())
        comp.pending_add.erase(added);
      else
        comp.pending_remove.push_back(id);
    }
    comp.maybe_split = true;
    mark_dirty(c);
  }
}

void FluidNetwork::complete(FlowId id, FlowState& f) {
  retire(id, f);
  completed_.push_back(id);
}

void FluidNetwork::cancel_flow(FlowId id) {
  RATS_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < flows_.size(),
               "cancel of unknown flow");
  auto& f = flows_[static_cast<std::size_t>(id)];
  if (f.done) return;
  // Unlike completion (whose heap entry was popped to get here), a
  // cancelled flow still has its prediction queued.
  events_.remove(id);
  retire(id, f);
}

Rate FluidNetwork::link_capacity(LinkId link) const {
  RATS_REQUIRE(link >= 0 && static_cast<std::size_t>(link) < capacity_.size(),
               "link id out of range");
  return capacity_[static_cast<std::size_t>(link)];
}

void FluidNetwork::set_link_capacity(LinkId link, Rate capacity) {
  RATS_REQUIRE(link >= 0 && static_cast<std::size_t>(link) < capacity_.size(),
               "link id out of range");
  RATS_REQUIRE(capacity >= 0 && std::isfinite(capacity),
               "link capacity must be finite and non-negative");
  auto& slot = capacity_[static_cast<std::size_t>(link)];
  if (slot == capacity) return;
  slot = capacity;
  // Every released flow crossing the link shares one component (that is
  // what a sharing component is), so the first member identifies it.
  const auto& members = link_members_[static_cast<std::size_t>(link)];
  if (!members.empty()) {
    const std::int32_t c =
        component_of_[static_cast<std::size_t>(members.front())];
    components_[static_cast<std::size_t>(c)].reset_warm();
    mark_dirty(c);
  }
  ensure_rates();
}

void FluidNetwork::invalidate_all_rates() {
  for (std::size_t c = 0; c < components_.size(); ++c) {
    if (!components_[c].live) continue;
    components_[c].reset_warm();
    mark_dirty(static_cast<std::int32_t>(c));
  }
  ensure_rates();
}

void FluidNetwork::advance_to(Seconds t) {
  RATS_REQUIRE(t >= now_ - 1e-12, "cannot move time backwards");
  for (;;) {
    ensure_rates();
    if (events_.empty() || events_.next_time() > t) break;
    const Seconds next = events_.next_time();
    // Predictions are re-keyed eagerly, so an event can never hide
    // inside a stale window behind the current time.
    assert(next >= now_ && "event prediction in the past");
    now_ = std::max(now_, next);
    // Process the whole batch of simultaneous events before re-solving:
    // one redistribution completing can retire many flows at once.
    while (!events_.empty() && events_.next_time() <= now_) {
      const FlowId id = events_.pop();
      auto& f = flows_[static_cast<std::size_t>(id)];
      if (!f.released)
        activate(id, f);
      else
        complete(id, f);
    }
  }
  now_ = std::max(now_, t);
}

std::optional<Seconds> FluidNetwork::next_event_time() const {
  // The lazy flush lives in ensure_rates(), which every mutating entry
  // point runs before returning — the query itself stays const.
  assert(dirty_components_.empty() &&
         "next_event_time() with unflushed rate changes");
  if (events_.empty()) return std::nullopt;
  return events_.next_time();
}

const std::vector<FlowId>& FluidNetwork::drain_completed() {
  std::swap(drained_, completed_);
  completed_.clear();
  return drained_;
}

Seconds FluidNetwork::flow_finish_time(FlowId id) const {
  const FlowState& f = flow(id);
  RATS_REQUIRE(f.done, "flow has not completed yet");
  return f.finish;
}

const FlowState& FluidNetwork::flow(FlowId id) const {
  RATS_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < flows_.size(),
               "flow id out of range");
  return flows_[static_cast<std::size_t>(id)];
}

std::int32_t FluidNetwork::flow_component(FlowId id) const {
  const FlowState& f = flow(id);
  if (!f.released || f.done) return -1;
  return component_of_[static_cast<std::size_t>(id)];
}

void FluidNetwork::ensure_rates() {
  if (dirty_components_.empty()) return;
  // Swap the dirty list out: re-partitioning may allocate fresh (clean)
  // components but never re-dirties one mid-flush.
  dirty_scratch_.swap(dirty_components_);
  for (const std::int32_t c : dirty_scratch_) {
    auto& comp = components_[static_cast<std::size_t>(c)];
    if (!comp.live || !comp.dirty) continue;  // merged or freed away
    comp.dirty = false;
    repartition_and_solve(c);
  }
  dirty_scratch_.clear();
  // One heap pass for the whole flush (see set_rate).
  apply_rekeys();
  if (validate_ && !validating_) run_validation_checks();
}

void FluidNetwork::run_validation_checks() {
  validating_ = true;
  struct Guard {
    bool* flag;
    ~Guard() { *flag = false; }
  } guard{&validating_};
  // Conservation: the released flows sharing a link never exceed its
  // capacity.  1e-9 relative slack absorbs the waterfilling round-off
  // of summing n equal shares of capacity/n.
  for (std::size_t l = 0; l < capacity_.size(); ++l) {
    const Rate cap = capacity_[l];
    Rate sum = 0;
    for (const FlowId id : link_members_[l])
      sum += flow_rate_[static_cast<std::size_t>(id)];
    RATS_REQUIRE(sum <= cap + cap * 1e-9 + 1e-6,
                 "link " + std::to_string(l) + " oversubscribed at t=" +
                     std::to_string(now_) + ": member rates sum to " +
                     std::to_string(sum) + " B/s, capacity " +
                     std::to_string(cap) + " B/s");
  }
  validation_snapshot_.clear();
  for (const FlowId id : active_ids_) {
    const FlowState& f = flows_[static_cast<std::size_t>(id)];
    if (!f.released) continue;
    const Rate rate = flow_rate_[static_cast<std::size_t>(id)];
    RATS_REQUIRE(rate >= 0 && rate <= f.cap + f.cap * 1e-9,
                 "flow " + std::to_string(id) + " rate " +
                     std::to_string(rate) + " outside [0, cap=" +
                     std::to_string(f.cap) + "]");
    validation_snapshot_.emplace_back(id, rate);
  }
  // Warm ≡ cold: drop every component's warm state and re-solve the
  // whole population from scratch; the incremental rates must match bit
  // for bit.  The re-solve leaves freshly recorded traces behind, so
  // warm paths keep being exercised on the next flush.
  invalidate_all_rates();
  for (const auto& [id, incremental] : validation_snapshot_) {
    const Rate cold = flow_rate_[static_cast<std::size_t>(id)];
    RATS_REQUIRE(cold == incremental,
                 "warm/cold divergence on flow " + std::to_string(id) +
                     " at t=" + std::to_string(now_) + ": incremental rate " +
                     std::to_string(incremental) + " B/s, cold re-solve " +
                     std::to_string(cold) + " B/s");
  }
}

void FluidNetwork::repartition_and_solve(std::int32_t c) {
  auto& comp = components_[static_cast<std::size_t>(c)];
  // Arrivals only merge (the arriving flow bridges what it touches), so
  // a component can only have disconnected if a departure marked it.
  // Singletons are trivially connected.  Large components are walked
  // only every few departure-solves: a missed split just means solving
  // a (still exact) over-approximation for a few events, while walking
  // a big, usually-still-connected component on every departure would
  // cost as much as the solve itself.  Small components always walk —
  // the walk is cheap and a split there shrinks solves the most.
  constexpr std::size_t kEagerSplitSize = 64;
  constexpr std::uint32_t kSplitPeriod = 16;
  const bool walk =
      comp.maybe_split && comp.members.size() > 1 &&
      (comp.members.size() <= kEagerSplitSize ||
       ++comp.solves_since_walk >= kSplitPeriod);
  if (!walk) {
    solve_component(c);
    return;
  }
  comp.maybe_split = false;
  comp.solves_since_walk = 0;

  // Walk the sharing graph over a membership snapshot.  Links are
  // visit-stamped so each member list is scanned once — the walk is
  // O(component incidences), the same order as one solver pass.
  ++visit_epoch_;
  split_scratch_.assign(comp.members.begin(), comp.members.end());
  std::size_t assigned = 0;
  bool first_group = true;
  for (const FlowId root : split_scratch_) {
    if (visit_stamp_[static_cast<std::size_t>(root)] == visit_epoch_) continue;
    group_.clear();
    visit_stamp_[static_cast<std::size_t>(root)] = visit_epoch_;
    bfs_queue_.assign(1, root);
    while (!bfs_queue_.empty()) {
      const FlowId cur = bfs_queue_.back();
      bfs_queue_.pop_back();
      group_.push_back(cur);
      // All released flows on any of `cur`'s links belong to this
      // component (the partition refines link sharing), so the walk
      // never escapes c.
      const auto c_begin = static_cast<std::size_t>(
          route_off_[static_cast<std::size_t>(cur)]);
      const auto c_end = static_cast<std::size_t>(
          route_off_[static_cast<std::size_t>(cur) + 1]);
      for (std::size_t ri = c_begin; ri < c_end; ++ri) {
        const auto li = static_cast<std::size_t>(route_links_[ri]);
        if (link_stamp_[li] == visit_epoch_) continue;
        link_stamp_[li] = visit_epoch_;
        for (const FlowId nb : link_members_[li])
          if (visit_stamp_[static_cast<std::size_t>(nb)] != visit_epoch_) {
            visit_stamp_[static_cast<std::size_t>(nb)] = visit_epoch_;
            bfs_queue_.push_back(nb);
          }
      }
    }
    assigned += group_.size();
    if (first_group && assigned == split_scratch_.size()) {
      // Still one connected component: keep it as is (pending deltas
      // and the trace stay usable — membership did not change here).
      solve_component(c);
      return;
    }
    // Split: the first true sub-component keeps id `c`, later ones get
    // fresh (clean) components.  alloc_component() may reallocate
    // `components_`, so the member list is re-indexed each round.
    const std::int32_t target = first_group ? c : alloc_component();
    if (first_group) {
      // The old trace covers the union, not this part: drop it.  The
      // cold solve below records each part's own trace.
      components_[static_cast<std::size_t>(c)].reset_warm();
    }
    first_group = false;
    auto& members = components_[static_cast<std::size_t>(target)].members;
    members.assign(group_.begin(), group_.end());
    for (std::size_t k = 0; k < members.size(); ++k) {
      component_of_[static_cast<std::size_t>(members[k])] = target;
      member_pos_[static_cast<std::size_t>(members[k])] =
          static_cast<std::int32_t>(k);
    }
    solve_component(target);
  }
}

void FluidNetwork::solve_component(std::int32_t c) {
  auto& comp = components_[static_cast<std::size_t>(c)];
  const std::size_t n = comp.members.size();
  if (n == 1) {
    // Uncontended flow: its rate is the tightest of its own cap and its
    // links' capacities — same value the solver would produce.  No
    // warm trace: the first contended solve will record one.
    if (trace_)
      trace_->record(now_, TraceEventKind::SolveComponent, c, 1,
                     kSolveSingleton);
    solver_stats().bump(solver_stats().singleton);
    comp.reset_warm();
    const FlowId id = comp.members.front();
    Rate r = flows_[static_cast<std::size_t>(id)].cap;
    const auto r_begin = static_cast<std::size_t>(
        route_off_[static_cast<std::size_t>(id)]);
    const auto r_end = static_cast<std::size_t>(
        route_off_[static_cast<std::size_t>(id) + 1]);
    for (std::size_t i = r_begin; i < r_end; ++i)
      r = std::min(r,
                   capacity_[static_cast<std::size_t>(route_links_[i])]);
    if (r != flow_rate_[static_cast<std::size_t>(id)]) set_rate(id, r);
    return;
  }
  if (comp.warm.valid) {
    if (comp.pending_add.empty() && comp.pending_remove.empty()) {
      // A flow arrived and completed within one batch: the population
      // the trace covers is unchanged, so every rate is still exact.
      return;
    }
    arrivals_scratch_.clear();
    for (const FlowId id : comp.pending_add) {
      const auto off = route_off_[static_cast<std::size_t>(id)];
      arrivals_scratch_.push_back(FlowArrival{
          id, route_links_.data() + off,
          route_off_[static_cast<std::size_t>(id) + 1] - off,
          flows_[static_cast<std::size_t>(id)].cap});
    }
    changed_.clear();
    SolverStats& stats = solver_stats();
    obs::PhaseTimer span("solve/warm");
    const auto t0 = stats.enabled() ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
    const bool warm_ok = solver_.solve_warm(
        capacity_, comp.warm, arrivals_scratch_.data(),
        arrivals_scratch_.size(), comp.pending_remove.data(),
        comp.pending_remove.size(), changed_);
    if (stats.enabled())
      stats.add(stats.ns_warm,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count()));
    if (warm_ok) {
      if (trace_)
        trace_->record(now_, TraceEventKind::SolveComponent, c,
                       static_cast<std::int32_t>(comp.members.size()),
                       kSolveWarm);
      solver_stats().bump(solver_stats().warm);
      for (const auto& [id, r] : changed_) {
        // Unchanged rates keep their completion prediction; re-keying
        // would just churn the event heap.
        if (r != flow_rate_[static_cast<std::size_t>(id)]) set_rate(id, r);
      }
      comp.clear_pending();
      return;
    }
  }
  solve_cold(c);
}

void FluidNetwork::solve_cold(std::int32_t c) {
  auto& comp = components_[static_cast<std::size_t>(c)];
  comp.clear_pending();
  const FlowId* ids = comp.members.data();
  const std::size_t n = comp.members.size();
  demand_views_.clear();
  if (local_index_.size() < flows_.size()) local_index_.resize(flows_.size());
  bool two_link = true;
  for (std::size_t k = 0; k < n; ++k) {
    const auto fi = static_cast<std::size_t>(ids[k]);
    const std::int32_t off = route_off_[fi];
    const std::int32_t len = route_off_[fi + 1] - off;
    demand_views_.push_back(FlowDemandView{route_links_.data() + off, len,
                                           flows_[fi].cap});
    two_link = two_link && len == 2;
    local_index_[fi] = static_cast<std::int32_t>(k);
  }
  group_rates_.resize(n);
  if (trace_)
    trace_->record(now_, TraceEventKind::SolveComponent, c,
                   static_cast<std::int32_t>(n),
                   two_link ? kSolveBipartite : kSolveGeneral);
  SolverStats& stats = solver_stats();
  stats.bump(two_link ? stats.bipartite : stats.general);
  obs::PhaseTimer span(two_link ? "solve/bipartite" : "solve/general");
  const auto t0 = stats.enabled() ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
  if (two_link) {
    // Flat-cluster component ({src uplink, dst downlink} routes): the
    // bipartite waterfilling specialization.
    bipartite_.solve(capacity_, demand_views_.data(), n, group_rates_.data(),
                     &comp.warm, ids);
  } else {
    // The live per-link membership lists are exactly this component's
    // adjacency, so the solver can walk them instead of building a CSR.
    solver_.solve(capacity_, demand_views_.data(), n, group_rates_.data(),
                  link_members_, local_index_, &comp.warm, ids);
  }
  if (stats.enabled())
    stats.add(stats.ns_cold,
              static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count()));
  for (std::size_t k = 0; k < n; ++k) {
    const FlowId id = ids[k];
    // Unchanged rates keep their completion prediction; re-keying would
    // just churn the event heap.
    if (group_rates_[k] != flow_rate_[static_cast<std::size_t>(id)])
      set_rate(id, group_rates_[k]);
  }
}

}  // namespace rats
