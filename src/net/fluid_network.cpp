#include "net/fluid_network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rats {

namespace {
// Completion detection tolerance: a byte residue below this counts as
// finished (guards against floating-point drift across many events).
constexpr Bytes kByteEpsilon = 1e-6;
// Relative time tolerance: a flow whose residual drain time does not
// advance the clock by at least this fraction counts as finishing at
// the step end.  Without it a residue of a few bytes at a high rate
// yields events whose time increment underflows double precision at
// large clock values, stalling the simulation in zero-length steps.
constexpr double kRelTimeEpsilon = 1e-12;
}  // namespace

FluidNetwork::FluidNetwork(const Cluster& cluster) : cluster_(&cluster) {
  capacity_.reserve(static_cast<std::size_t>(cluster.num_links()));
  for (LinkId l = 0; l < cluster.num_links(); ++l)
    capacity_.push_back(cluster.link(l).bandwidth);
}

FlowId FluidNetwork::open_flow(NodeId src, NodeId dst, Bytes bytes) {
  RATS_REQUIRE(bytes >= 0, "flow volume must be non-negative");
  FlowState f;
  f.src = src;
  f.dst = dst;
  f.total_bytes = bytes;
  f.remaining = bytes;
  f.start = now_;
  f.links = cluster_->route(src, dst);
  total_bytes_ += bytes;

  if (f.links.empty() || bytes == 0) {
    // Loopback transfers are free (the paper's zero-cost
    // self-communication); zero-byte flows only carry a dependence.
    f.release = now_;
    f.finish = f.links.empty() ? now_ : now_ + cluster_->route_latency(src, dst);
    f.done = true;
    flows_.push_back(std::move(f));
    return static_cast<FlowId>(flows_.size() - 1);
  }

  const Seconds one_way = cluster_->route_latency(src, dst);
  f.release = now_ + one_way;
  // Empirical TCP bound: beta' = min(beta, W_max / RTT), RTT = 2 x one-way.
  const Seconds rtt = 2.0 * one_way;
  if (rtt > 0) f.cap = cluster_->tcp_window() / rtt;

  flows_.push_back(std::move(f));
  const auto id = static_cast<FlowId>(flows_.size() - 1);
  active_ids_.push_back(id);
  dirty_ = true;
  return id;
}

void FluidNetwork::advance_to(Seconds t) {
  RATS_REQUIRE(t >= now_ - 1e-12, "cannot move time backwards");
  while (now_ < t) {
    ensure_rates();

    // Earliest internal event: a release-phase exit or a completion.
    // Candidates are floored one representable increment above now_ so
    // steps always advance the clock (see kRelTimeEpsilon).
    const Seconds floor_time = now_ + std::max(now_, 1.0) * kRelTimeEpsilon;
    Seconds next = std::numeric_limits<Seconds>::infinity();
    for (const FlowId id : active_ids_) {
      const auto& f = flows_[static_cast<std::size_t>(id)];
      if (f.release > now_) {
        next = std::min(next, std::max(f.release, floor_time));
      } else if (f.rate > 0) {
        next = std::min(next, std::max(now_ + f.remaining / f.rate, floor_time));
      }
    }
    const Seconds step_end = std::min(next, t);
    const Seconds dt = step_end - now_;

    // Smallest time increment representable around the step end; any
    // flow whose residual drain time is below it must complete now or
    // the clock would stall on zero-length steps.
    const Seconds min_step = std::max(step_end, 1.0) * kRelTimeEpsilon;
    for (std::size_t k = 0; k < active_ids_.size();) {
      auto& f = flows_[static_cast<std::size_t>(active_ids_[k])];
      if (step_end <= f.release) {
        ++k;
        continue;
      }
      // Payload drains only after the latency phase; a flow released
      // mid-step had rate 0 until the release boundary (steps never
      // cross a release, so `dt` applies fully once released).
      const Seconds effective = std::min(dt, step_end - f.release);
      f.remaining -= f.rate * effective;
      const bool time_exhausted =
          f.rate > 0 && f.remaining / f.rate <= min_step;
      if (f.remaining <= kByteEpsilon || time_exhausted) {
        f.remaining = 0;
        f.done = true;
        f.finish = step_end;
        f.rate = 0;
        dirty_ = true;
        active_ids_[k] = active_ids_.back();
        active_ids_.pop_back();
        continue;
      }
      ++k;
    }
    // Latency-phase exits change the set of rate-sharing flows too.
    for (const FlowId id : active_ids_) {
      const auto& f = flows_[static_cast<std::size_t>(id)];
      if (f.release > now_ && f.release <= step_end) {
        dirty_ = true;
        break;
      }
    }

    now_ = step_end;
    if (step_end >= t) break;
  }
  now_ = t;
}

std::optional<Seconds> FluidNetwork::next_event_time() {
  ensure_rates();
  const Seconds floor_time = now_ + std::max(now_, 1.0) * kRelTimeEpsilon;
  Seconds best = std::numeric_limits<Seconds>::infinity();
  for (const FlowId id : active_ids_) {
    const auto& f = flows_[static_cast<std::size_t>(id)];
    if (f.release > now_) {
      best = std::min(best, std::max(f.release, floor_time));
    } else if (f.rate > 0) {
      best = std::min(best, std::max(now_ + f.remaining / f.rate, floor_time));
    }
  }
  if (!std::isfinite(best)) return std::nullopt;
  return best;
}

Seconds FluidNetwork::flow_finish_time(FlowId id) const {
  const FlowState& f = flow(id);
  RATS_REQUIRE(f.done, "flow has not completed yet");
  return f.finish;
}

const FlowState& FluidNetwork::flow(FlowId id) const {
  RATS_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < flows_.size(),
               "flow id out of range");
  return flows_[static_cast<std::size_t>(id)];
}

void FluidNetwork::ensure_rates() {
  if (!dirty_) return;
  recompute_rates();
  dirty_ = false;
}

void FluidNetwork::recompute_rates() {
  // Only flows past their latency phase compete for bandwidth.
  std::vector<FlowDemand> demands;
  std::vector<FlowId> index;
  demands.reserve(active_ids_.size());
  index.reserve(active_ids_.size());
  for (const FlowId id : active_ids_) {
    auto& f = flows_[static_cast<std::size_t>(id)];
    f.rate = 0;
    if (f.release > now_) continue;
    demands.push_back(FlowDemand{f.links, f.cap});
    index.push_back(id);
  }
  if (demands.empty()) return;
  const auto rates = maxmin_fair_rates(capacity_, demands);
  for (std::size_t k = 0; k < rates.size(); ++k)
    flows_[static_cast<std::size_t>(index[k])].rate = rates[k];
}

}  // namespace rats
