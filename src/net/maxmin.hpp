// Max-Min fair bandwidth sharing (paper Sections II-B and IV-A).
//
// SimGrid's fluid network model assigns each flow a transfer rate such
// that bandwidth is shared Max-Min fairly: no flow can increase its
// rate without decreasing the rate of a flow with an equal or smaller
// one.  We implement the classic progressive-filling algorithm,
// extended with per-flow rate caps to model the empirical TCP-window
// bandwidth bound beta' = min(beta, W_max / RTT).
//
// Two implementations are provided:
//  * `MaxMinSolver` / `maxmin_fair_rates` — the production solver.  It
//    builds a link->flow adjacency (CSR) once per solve, keeps per-link
//    remaining capacity and unfixed-flow counts, and drives progressive
//    filling from a lazy min-heap of link fair shares plus a cap-sorted
//    flow list.  Each round pops the globally tightest constraint
//    (stale heap entries are re-keyed on pop; fair shares only grow as
//    flows are fixed, so lazy re-insertion is sound).  Fixing a flow
//    touches only its own links, so a solve costs
//    O(F log F + (F + I) log L) where I = sum of route lengths and L
//    the number of *distinct links the subset uses* — per-link scratch
//    is epoch-stamped and initialized lazily, so the cost is
//    independent of `capacity.size()` and of flows outside the subset.
//    That makes the `FlowDemandView` overload suitable for
//    component-scoped re-solves: the fluid network passes only the
//    flows of one sharing component (views pointing straight into each
//    flow's immutable route, no demand copying) and pays O(component),
//    not O(all active flows).  Max-Min rates decompose exactly over
//    connected components of the flow/link sharing graph, and the heap
//    orders ties by link id, so a subset solve reproduces the full
//    solve's per-flow rates bit for bit.
//    `MaxMinSolver` owns persistent scratch buffers: repeated solves
//    (the fluid network re-solves on every contended flow
//    arrival/departure) allocate nothing after warm-up.
//  * `maxmin_fair_rates_reference` — the straightforward O(R * F * r)
//    textbook implementation, kept as the oracle for differential
//    testing and for the solver microbenchmark's old-vs-new grid.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/units.hpp"

namespace rats {

/// One flow's demand for the solver: the links it crosses and an
/// optional cap on its own rate (infinity = uncapped).
struct FlowDemand {
  std::vector<std::int32_t> links;
  Rate cap = std::numeric_limits<Rate>::infinity();
};

/// Non-owning view of one flow's demand.  `links` typically points into
/// storage the caller already maintains (e.g. a fluid-network flow's
/// immutable route) and must stay valid for the duration of the solve.
struct FlowDemandView {
  const std::int32_t* links = nullptr;
  std::int32_t count = 0;
  Rate cap = std::numeric_limits<Rate>::infinity();
};

/// Reusable Max-Min solver.  Keeps adjacency/heap/scratch storage
/// across calls so steady-state solves are allocation-free.  Not
/// thread-safe; use one instance per thread.
class MaxMinSolver {
 public:
  /// Computes Max-Min fair rates into `rates` (resized to flows.size()).
  ///
  /// `capacity[l]` is the bandwidth of link l (bytes/s, must be > 0
  /// when used by any flow).  Flows crossing no link (loopback) receive
  /// their cap (or +infinity when uncapped) — callers treat such
  /// transfers as instantaneous.
  ///
  /// Properties guaranteed (and asserted by the test suite):
  ///  * feasibility: for every link, sum of crossing rates <= capacity;
  ///  * cap respect: rate[f] <= cap[f];
  ///  * max-min optimality: every flow is bottlenecked, i.e. either
  ///    runs at its cap or crosses a saturated link on which it has a
  ///    maximal rate among the link's flows.
  void solve(const std::vector<Rate>& capacity,
             const std::vector<FlowDemand>& flows, std::vector<Rate>& rates);

  /// Subset solve over non-owning route views: `rates[f]` receives the
  /// Max-Min rate of `flows[f]` for f in [0, num_flows).  Only the
  /// links the subset actually crosses are touched, so the cost is
  /// O(F log F + (F + I) log L_c) with L_c = distinct subset links —
  /// independent of `capacity.size()`.  When `flows` is (a superset
  /// of) a connected component of the sharing graph, the rates equal
  /// the full solve's rates for those flows.
  void solve(const std::vector<Rate>& capacity, const FlowDemandView* flows,
             std::size_t num_flows, Rate* rates);

  /// Adjacency-sharing subset solve: identical rates to the overload
  /// above, but walks a caller-maintained link->flow table instead of
  /// building a CSR copy per solve.  `link_flows[l]` must list exactly
  /// the subset's flows crossing link l (as caller-scoped ids), and
  /// `local_of[id]` maps such an id to its index in `flows`.  The
  /// fluid network hands in its live per-link membership lists, saving
  /// the two CSR passes on every contended re-solve.  (The order of a
  /// link's list is irrelevant: every unfixed flow on a saturated link
  /// receives the same share, so the arithmetic is order-invariant.)
  void solve(const std::vector<Rate>& capacity, const FlowDemandView* flows,
             std::size_t num_flows, Rate* rates,
             const std::vector<std::vector<std::int32_t>>& link_flows,
             const std::vector<std::int32_t>& local_of);

 private:
  /// External adjacency for the sharing overload; null = build CSR.
  struct ExtAdjacency {
    const std::vector<std::vector<std::int32_t>>* link_flows;
    const std::vector<std::int32_t>* local_of;
  };
  void solve_impl(const std::vector<Rate>& capacity,
                  const FlowDemandView* flows, std::size_t num_flows,
                  Rate* rates, const ExtAdjacency* ext);
  // A (fair share, link) heap entry; stale entries are detected on pop
  // by re-deriving the share from remaining_/active_.  Ties order by
  // link id so the pop sequence of one sharing component is the same
  // whether it is solved alone or interleaved with other components.
  struct HeapEntry {
    Rate share;
    std::int32_t link;
    bool operator>(const HeapEntry& o) const {
      if (share != o.share) return share > o.share;
      return link > o.link;
    }
  };

  // Per-link state, epoch-stamped: a slot is (re)initialized the first
  // time a solve touches its link, so untouched links cost nothing.
  // One packed struct per link keeps a touch to a single cache line.
  struct LinkSlot {
    std::uint64_t epoch = 0;
    Rate remaining = 0;        ///< unallocated capacity
    std::int32_t active = 0;   ///< unfixed flows crossing the link
    std::int32_t index = 0;    ///< dense index among touched links
  };
  std::vector<LinkSlot> slots_;
  std::vector<std::int32_t> touched_;  ///< distinct links of this solve
  std::uint64_t epoch_ = 0;
  // CSR adjacency over touched links (offsets indexed by dense index).
  std::vector<std::int32_t> link_off_;
  std::vector<std::int32_t> link_flows_;
  // Per-flow state.
  std::vector<char> fixed_;
  std::vector<std::pair<Rate, std::int32_t>> caps_;  ///< (cap, flow) ascending
  // Lazy min-heap of link fair shares (std::*_heap over a reused vector).
  std::vector<HeapEntry> heap_;
  // View scratch for the owning-demand overload.
  std::vector<FlowDemandView> views_;
};

/// Convenience wrapper around a fresh `MaxMinSolver` (allocates scratch
/// per call; hot paths should hold a `MaxMinSolver` instead).
std::vector<Rate> maxmin_fair_rates(const std::vector<Rate>& capacity,
                                    const std::vector<FlowDemand>& flows);

/// Reference progressive-filling implementation (the seed solver, with
/// the saturated-link set snapshotted before each fixing pass so the
/// result does not depend on flow index order).  O(R * F * r) for R
/// filling rounds and route length r; used for differential testing.
std::vector<Rate> maxmin_fair_rates_reference(
    const std::vector<Rate>& capacity, const std::vector<FlowDemand>& flows);

}  // namespace rats
