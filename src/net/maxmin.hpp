// Max-Min fair bandwidth sharing (paper Sections II-B and IV-A).
//
// SimGrid's fluid network model assigns each flow a transfer rate such
// that bandwidth is shared Max-Min fairly: no flow can increase its
// rate without decreasing the rate of a flow with an equal or smaller
// one.  We implement the classic progressive-filling algorithm,
// extended with per-flow rate caps to model the empirical TCP-window
// bandwidth bound beta' = min(beta, W_max / RTT).
//
// Two implementations are provided:
//  * `MaxMinSolver` / `maxmin_fair_rates` — the production solver.  It
//    builds a link->flow adjacency (CSR) once per solve, keeps per-link
//    remaining capacity and unfixed-flow counts, and drives progressive
//    filling from a lazy min-heap of link fair shares plus a cap-sorted
//    flow list.  Each round pops the globally tightest constraint
//    (stale heap entries are re-keyed on pop; fair shares only grow as
//    flows are fixed, so lazy re-insertion is sound).  Fixing a flow
//    touches only its own links, so a solve costs
//    O(F log F + (F + I) log L) where I = sum of route lengths,
//    instead of the reference's O(R * (F * r + L)) with R rounds.
//    `MaxMinSolver` owns persistent scratch buffers: repeated solves
//    (the fluid network re-solves on every flow arrival/departure)
//    allocate nothing after warm-up.
//  * `maxmin_fair_rates_reference` — the straightforward O(R * F * r)
//    textbook implementation, kept as the oracle for differential
//    testing and for the solver microbenchmark's old-vs-new grid.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/units.hpp"

namespace rats {

/// One flow's demand for the solver: the links it crosses and an
/// optional cap on its own rate (infinity = uncapped).
struct FlowDemand {
  std::vector<std::int32_t> links;
  Rate cap = std::numeric_limits<Rate>::infinity();
};

/// Reusable Max-Min solver.  Keeps adjacency/heap/scratch storage
/// across calls so steady-state solves are allocation-free.  Not
/// thread-safe; use one instance per thread.
class MaxMinSolver {
 public:
  /// Computes Max-Min fair rates into `rates` (resized to flows.size()).
  ///
  /// `capacity[l]` is the bandwidth of link l (bytes/s, must be > 0
  /// when used by any flow).  Flows crossing no link (loopback) receive
  /// their cap (or +infinity when uncapped) — callers treat such
  /// transfers as instantaneous.
  ///
  /// Properties guaranteed (and asserted by the test suite):
  ///  * feasibility: for every link, sum of crossing rates <= capacity;
  ///  * cap respect: rate[f] <= cap[f];
  ///  * max-min optimality: every flow is bottlenecked, i.e. either
  ///    runs at its cap or crosses a saturated link on which it has a
  ///    maximal rate among the link's flows.
  void solve(const std::vector<Rate>& capacity,
             const std::vector<FlowDemand>& flows, std::vector<Rate>& rates);

 private:
  // A (fair share, link) heap entry; stale entries are detected on pop
  // by re-deriving the share from remaining_/active_.
  struct HeapEntry {
    Rate share;
    std::int32_t link;
    bool operator>(const HeapEntry& o) const { return share > o.share; }
  };

  // Per-link state.
  std::vector<Rate> remaining_;          ///< unallocated capacity
  std::vector<std::int32_t> active_;     ///< unfixed flows crossing the link
  std::vector<std::int32_t> link_off_;   ///< CSR offsets into link_flows_
  std::vector<std::int32_t> link_flows_; ///< CSR: flows crossing each link
  // Per-flow state.
  std::vector<char> fixed_;
  std::vector<std::pair<Rate, std::int32_t>> caps_;  ///< (cap, flow) ascending
  // Lazy min-heap of link fair shares (std::*_heap over a reused vector).
  std::vector<HeapEntry> heap_;
};

/// Convenience wrapper around a fresh `MaxMinSolver` (allocates scratch
/// per call; hot paths should hold a `MaxMinSolver` instead).
std::vector<Rate> maxmin_fair_rates(const std::vector<Rate>& capacity,
                                    const std::vector<FlowDemand>& flows);

/// Reference progressive-filling implementation (the seed solver, with
/// the saturated-link set snapshotted before each fixing pass so the
/// result does not depend on flow index order).  O(R * F * r) for R
/// filling rounds and route length r; used for differential testing.
std::vector<Rate> maxmin_fair_rates_reference(
    const std::vector<Rate>& capacity, const std::vector<FlowDemand>& flows);

}  // namespace rats
