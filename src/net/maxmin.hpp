// Max-Min fair bandwidth sharing (paper Sections II-B and IV-A).
//
// SimGrid's fluid network model assigns each flow a transfer rate such
// that bandwidth is shared Max-Min fairly: no flow can increase its
// rate without decreasing the rate of a flow with an equal or smaller
// one.  We implement the classic progressive-filling algorithm,
// extended with per-flow rate caps to model the empirical TCP-window
// bandwidth bound beta' = min(beta, W_max / RTT).
#pragma once

#include <limits>
#include <vector>

#include "common/units.hpp"

namespace rats {

/// One flow's demand for the solver: the links it crosses and an
/// optional cap on its own rate (infinity = uncapped).
struct FlowDemand {
  std::vector<std::int32_t> links;
  Rate cap = std::numeric_limits<Rate>::infinity();
};

/// Computes Max-Min fair rates.
///
/// `capacity[l]` is the bandwidth of link l (bytes/s, must be > 0 when
/// used by any flow).  Returns one rate per flow.  Flows crossing no
/// link (loopback) receive their cap (or +infinity when uncapped) —
/// callers treat such transfers as instantaneous.
///
/// Properties guaranteed (and asserted by the test suite):
///  * feasibility: for every link, the sum of crossing rates <= capacity;
///  * cap respect: rate[f] <= cap[f];
///  * max-min optimality: every flow is bottlenecked, i.e. either runs
///    at its cap or crosses a saturated link on which it has a maximal
///    rate among the link's flows.
std::vector<Rate> maxmin_fair_rates(const std::vector<Rate>& capacity,
                                    const std::vector<FlowDemand>& flows);

}  // namespace rats
