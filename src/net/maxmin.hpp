// Max-Min fair bandwidth sharing (paper Sections II-B and IV-A).
//
// SimGrid's fluid network model assigns each flow a transfer rate such
// that bandwidth is shared Max-Min fairly: no flow can increase its
// rate without decreasing the rate of a flow with an equal or smaller
// one.  We implement the classic progressive-filling algorithm,
// extended with per-flow rate caps to model the empirical TCP-window
// bandwidth bound beta' = min(beta, W_max / RTT).
//
// ---- solver-strategy layer ---------------------------------------------
//
// Re-solving a sharing component on every flow arrival/departure is the
// simulation's hot path, so three strategies are provided and the fluid
// network dispatches among them per component and per event:
//
//  1. Warm-started re-solve (`MaxMinSolver::solve_warm`).  Progressive
//     filling fixes flows in rounds of non-decreasing binding shares; a
//     single-flow (or small batched) population delta leaves every
//     round before the changed flows' first participation bitwise
//     untouched.  Each traced solve therefore records its *saturation
//     trace* into a caller-owned `MaxMinWarmState`: the rounds (binding
//     share and binding link each), the flows fixed per round, a
//     per-settle undo log of prior link residuals, and the final
//     residuals.  A warm re-solve finds the divergence round (a
//     departed flow's fix round; for an arrival, the first round whose
//     share reaches the arrival's initial link shares or cap) and
//     undoes the trace back to it by replaying the log in reverse.
//     The replay then *splices* rather than re-solving the whole
//     suffix: recorded rounds are consumed in order as a "kept
//     schedule", and a round is committed straight from the record —
//     same settles, same recorded rates, bit-identical by construction
//     — as long as its binding link is outside the *dependency cone*
//     of the delta.  The cone is tracked dynamically as the set of
//     links whose residual/active history diverged: it seeds with the
//     departures' and arrivals' links and grows when a cone-fixed (or
//     transferred) flow crosses new links.  A kept round whose binding
//     link entered the cone transfers its settles into the cone
//     instead; cone flows are re-solved through a share heap + cap
//     heap merged against the kept schedule by the cold solver's
//     (share, link id) order, caps first on ties — which is exactly
//     what keeps the merged round order bit-identical to a cold solve.
//     Cost is O(undone suffix) for the undo/splice plus O(cone) heap
//     work; only structurally stale states decline (returns false,
//     caller cold-solves).  `WarmMode::kPrefix` disables the splice
//     (every undone settle re-solves through the cone, with the old
//     60%-of-trace decline heuristic) and is kept for the microbench
//     cone-vs-prefix comparison.
//  2. Bipartite waterfilling (`BipartiteWaterfillSolver`).  On flat
//     clusters every route is exactly {src uplink, dst downlink}; with
//     two links per flow the adjacency is a pair of flat arrays, pass 1
//     unrolls, and the CSR falls out of the per-link counts — an
//     O(F log F + L log L) solve with far smaller constants than the
//     general path.  Used for cold (full) component solves whenever
//     every member crosses exactly two links (`Cluster::flat_routes`
//     guarantees it platform-wide on flat clusters).
//  3. General lazy-heap solve (`MaxMinSolver::solve`): builds a
//     link->flow adjacency (CSR) once per solve — or walks a
//     caller-shared adjacency — keeps per-link remaining capacity and
//     unfixed-flow counts, and drives progressive filling from a lazy
//     min-heap of link fair shares plus a cap-sorted flow list.
//     Per-link scratch is epoch-stamped and initialized lazily, so a
//     subset solve costs O(F log F + (F + I) log L_c) with L_c the
//     distinct subset links — independent of `capacity.size()`.
//
// All three produce bitwise-identical rates: the heap orders ties by
// link id, settle arithmetic is order-invariant, and the warm
// continuation rebuilds a fresh share heap whose pop order matches the
// lazy heap's.  One subtlety makes that order reproducible: the cold
// solver *fires at the heap key but settles at the current share*, and
// a settle can drop a link's current share a few ULPs below its own
// frozen key (a "dip").  Each traced round therefore records its fire
// key alongside the settled share, and every key-above-share moment is
// logged as a `Dip`; the warm merge mirrors those keys (seeding from
// the spliced residuals, max-merged with surviving dips, refreshed on
// first touch per round) so the merged (key, link id) order — and the
// cap-vs-link tie-breaks — replay the cold solve's event sequence
// exactly.
//
// Hot state is laid out struct-of-arrays: link slots, the share heap
// (share + global/dense link ids in 16 bytes), the warm engine's
// per-dense-link key/touch/active/remaining scratch, and the fluid
// network's per-flow rate/remaining/settled arrays plus a flat route
// arena (`route_off_`/`route_links_`) are all flat indexed vectors, so
// settle loops, rate flushes and event-heap re-keys run over
// contiguous memory.  Max-Min rates decompose exactly over
// connected components of the flow/link sharing graph, so a
// component-scoped solve — by any strategy — reproduces the full
// solve's per-flow rates bit for bit.  The differential test suite
// (tests/maxmin_test.cpp) checks all pairings on randomized instances.
//
// `maxmin_fair_rates_reference` — the straightforward O(R * F * r)
// textbook implementation — is kept as the oracle for differential
// testing and for the solver microbenchmark's old-vs-new grid.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace rats {

/// One flow's demand for the solver: the links it crosses and an
/// optional cap on its own rate (infinity = uncapped).
struct FlowDemand {
  std::vector<std::int32_t> links;
  Rate cap = std::numeric_limits<Rate>::infinity();
};

/// Non-owning view of one flow's demand.  `links` typically points into
/// storage the caller already maintains (e.g. a fluid-network flow's
/// immutable route) and must stay valid for the duration of the solve.
struct FlowDemandView {
  const std::int32_t* links = nullptr;
  std::int32_t count = 0;
  Rate cap = std::numeric_limits<Rate>::infinity();
};

/// One arriving flow for a warm re-solve.  `links` must stay valid for
/// the duration of the call; `id` must be new to the population.
struct FlowArrival {
  std::int32_t id = -1;
  const std::int32_t* links = nullptr;
  std::int32_t count = 0;
  Rate cap = std::numeric_limits<Rate>::infinity();
};

/// Saturation trace of one population's last solve, owned by the caller
/// (the fluid network keeps one per sharing component).  Filled by the
/// traced solve entry points and consumed/updated by
/// `MaxMinSolver::solve_warm`; opaque to everything else.
struct MaxMinWarmState {
  bool valid = false;

  // Dense link table over every distinct link the population touched
  // while this state has been live (links never leave; a link all of
  // whose flows departed keeps `remaining == capacity`).
  std::vector<std::int32_t> links;  ///< dense index -> link id
  std::vector<std::int32_t> act0;   ///< population flows per link
  std::vector<Rate> remaining;      ///< residual capacity after the solve
  Rate max_capacity = 0;            ///< max capacity ever seen in `links`

  /// One fixed flow, in fix order.  Its links (with the link residual
  /// recorded *before* this settle subtracted the rate) live in
  /// `log[link_off .. next settle's link_off)`.
  struct Settle {
    std::int32_t id;        ///< caller-stable flow id
    std::int32_t link_off;  ///< first undo-log entry
    Rate rate;
    Rate cap;
  };
  struct LogEntry {
    std::int32_t link;  ///< dense link index
    Rate before;        ///< link residual before the settle
  };
  /// One filling round: a link saturation or a cap fix; `share` is the
  /// binding value (non-decreasing over rounds up to rounding) and
  /// `link` the binding link (dense index; -1 for cap rounds).  The
  /// binding link is what lets a warm re-solve decide whether a
  /// recorded round is inside the delta's dependency cone.  `key` is
  /// the solver's heap key when the round fired: normally equal to
  /// `share`, but frozen one or two ulps *above* it when the binding
  /// link's share dipped after a tied settle (see the dip log below).
  /// The solver orders events by key and fires at `share`, so a warm
  /// splice needs both to reproduce the cold event order bitwise.
  struct Round {
    std::int32_t first_settle;
    Rate share;
    std::int32_t link;
    Rate key;
  };
  /// Heap-key freeze: settling a flow at a share at-or-above a link's
  /// own share can lower that link's share by an ulp or two below its
  /// heap key, and the key then stays frozen until the link fires.
  /// Cold event order among near-ties depends on these frozen keys, so
  /// they are recorded (they are rare, pure-rounding events) and
  /// replayed when a warm re-solve seeds its cone heap.
  struct Dip {
    std::int32_t round;  ///< round whose settles caused the dip
    std::int32_t link;   ///< dense link index
    Rate key;            ///< the frozen heap key (> current share)
  };
  std::vector<Settle> settles;
  std::vector<LogEntry> log;
  std::vector<Round> rounds;
  std::vector<Dip> dips;

  void invalidate() {
    valid = false;
    links.clear();
    act0.clear();
    remaining.clear();
    max_capacity = 0;
    settles.clear();
    log.clear();
    rounds.clear();
    dips.clear();
  }
};

/// Warm re-solve replay policy (see the strategy overview above).
enum class WarmMode {
  /// Re-solve every undone settle through the cone machinery and
  /// decline when the suffix covers most of the trace — the historical
  /// behavior, kept for the microbench cone-vs-prefix comparison.
  kPrefix,
  /// Splice: commit recorded rounds outside the delta's dependency
  /// cone straight from the trace, re-solve only the cone.  No
  /// trace-fraction decline.  The default.
  kCone,
};

/// Reusable Max-Min solver.  Keeps adjacency/heap/scratch storage
/// across calls so steady-state solves are allocation-free.  Not
/// thread-safe; use one instance per thread.
class MaxMinSolver {
 public:
  /// Computes Max-Min fair rates into `rates` (resized to flows.size()).
  ///
  /// `capacity[l]` is the bandwidth of link l (bytes/s, must be > 0
  /// when used by any flow).  Flows crossing no link (loopback) receive
  /// their cap (or +infinity when uncapped) — callers treat such
  /// transfers as instantaneous.
  ///
  /// Properties guaranteed (and asserted by the test suite):
  ///  * feasibility: for every link, sum of crossing rates <= capacity;
  ///  * cap respect: rate[f] <= cap[f];
  ///  * max-min optimality: every flow is bottlenecked, i.e. either
  ///    runs at its cap or crosses a saturated link on which it has a
  ///    maximal rate among the link's flows.
  void solve(const std::vector<Rate>& capacity,
             const std::vector<FlowDemand>& flows, std::vector<Rate>& rates);

  /// Subset solve over non-owning route views: `rates[f]` receives the
  /// Max-Min rate of `flows[f]` for f in [0, num_flows).  Only the
  /// links the subset actually crosses are touched.  When `flows` is
  /// (a superset of) a connected component of the sharing graph, the
  /// rates equal the full solve's rates for those flows.
  ///
  /// When `trace` is non-null the solve also records its saturation
  /// trace there, priming warm re-solves; `stable_ids[f]` then names
  /// flow f in the trace (null = use the local index).
  void solve(const std::vector<Rate>& capacity, const FlowDemandView* flows,
             std::size_t num_flows, Rate* rates,
             MaxMinWarmState* trace = nullptr,
             const std::int32_t* stable_ids = nullptr);

  /// Adjacency-sharing subset solve: identical rates to the overload
  /// above, but walks a caller-maintained link->flow table instead of
  /// building a CSR copy per solve.  `link_flows[l]` must list exactly
  /// the subset's flows crossing link l (as caller-scoped ids), and
  /// `local_of[id]` maps such an id to its index in `flows`.  The
  /// fluid network hands in its live per-link membership lists, saving
  /// the two CSR passes on every contended re-solve.  (The order of a
  /// link's list is irrelevant: every unfixed flow on a saturated link
  /// receives the same share, so the arithmetic is order-invariant.)
  void solve(const std::vector<Rate>& capacity, const FlowDemandView* flows,
             std::size_t num_flows, Rate* rates,
             const std::vector<std::vector<std::int32_t>>& link_flows,
             const std::vector<std::int32_t>& local_of,
             MaxMinWarmState* trace = nullptr,
             const std::int32_t* stable_ids = nullptr);

  /// Warm re-solve of the population recorded in `state` after removing
  /// the flows in `departures` and adding those in `arrivals` (see the
  /// strategy overview in the header comment).  On success, appends
  /// (id, rate) for every flow whose rate was re-solved through the
  /// cone — a superset of the flows whose rate actually changed; flows
  /// committed from the kept schedule retain their recorded rates — to
  /// `changed`, updates `state` to the new population's trace, and
  /// returns true.  Returns false (leaving `state` untouched) when the
  /// state is invalid, a departure is unknown, an arrival has no
  /// links, or — in `WarmMode::kPrefix` only — the suffix covers most
  /// of the trace; the caller must then run a traced cold solve.
  bool solve_warm(const std::vector<Rate>& capacity, MaxMinWarmState& state,
                  const FlowArrival* arrivals, std::size_t num_arrivals,
                  const std::int32_t* departures, std::size_t num_departures,
                  std::vector<std::pair<std::int32_t, Rate>>& changed,
                  WarmMode mode = WarmMode::kCone);

 private:
  friend class BipartiteWaterfillSolver;

  /// External adjacency for the sharing overload; null = build CSR.
  struct ExtAdjacency {
    const std::vector<std::vector<std::int32_t>>* link_flows;
    const std::vector<std::int32_t>* local_of;
  };
  void solve_impl(const std::vector<Rate>& capacity,
                  const FlowDemandView* flows, std::size_t num_flows,
                  Rate* rates, const ExtAdjacency* ext, MaxMinWarmState* trace,
                  const std::int32_t* stable_ids);
  // A (fair share, link) heap entry; stale entries are detected on pop
  // by re-deriving the share from remaining_/active_.  Ties order by
  // link id so the pop sequence of one sharing component is the same
  // whether it is solved alone or interleaved with other components.
  struct HeapEntry {
    Rate share;
    std::int32_t link;   ///< global link id (the cold tie-break order)
    std::int32_t dense;  ///< index into the trace's dense link table
    bool operator>(const HeapEntry& o) const {
      if (share != o.share) return share > o.share;
      return link > o.link;
    }
  };

  // Per-link state, epoch-stamped: a slot is (re)initialized the first
  // time a solve touches its link, so untouched links cost nothing.
  // One packed struct per link keeps a touch to a single cache line.
  struct LinkSlot {
    std::uint64_t epoch = 0;
    Rate remaining = 0;        ///< unallocated capacity
    std::int32_t active = 0;   ///< unfixed flows crossing the link
    std::int32_t index = 0;    ///< dense index among touched links
    Rate key = 0;              ///< shadow of the link's heap key
  };
  std::vector<LinkSlot> slots_;
  std::vector<std::int32_t> touched_;  ///< distinct links of this solve
  std::uint64_t epoch_ = 0;
  // CSR adjacency over touched links (offsets indexed by dense index).
  std::vector<std::int32_t> link_off_;
  std::vector<std::int32_t> link_flows_;
  // Per-flow state.
  std::vector<char> fixed_;
  std::vector<std::pair<Rate, std::int32_t>> caps_;  ///< (cap, flow) ascending
  // Lazy min-heap of link fair shares (std::*_heap over a reused vector).
  std::vector<HeapEntry> heap_;
  // View scratch for the owning-demand overload.
  std::vector<FlowDemandView> views_;

  // ---- warm re-solve scratch (dense over the state's link table) ----
  std::vector<std::int32_t> warm_active_;   ///< unfixed flows per link
  std::vector<Rate> warm_key_;              ///< mirrored cold heap keys
  std::vector<std::int32_t> warm_last_touch_;  ///< round of last settle
  std::vector<std::int32_t> warm_extra_;    ///< arriving flows per link
  std::vector<char> warm_touched_;          ///< link touched by the suffix?
  std::vector<char> warm_affected_;         ///< link in the dependency cone?
  std::vector<std::int32_t> warm_links_;    ///< suffix links (dense)
  // Suffix work list (SoA): flow w has links in
  // work_flow_links_[work_off_[w] .. work_off_[w + 1]).
  std::vector<std::int32_t> work_ids_;
  std::vector<Rate> work_caps_;
  std::vector<Rate> work_rates_;            ///< recorded rate (kept commits)
  std::vector<std::int32_t> work_off_;
  std::vector<std::int32_t> work_flow_links_;
  std::vector<std::int32_t> work_csr_off_;  ///< per suffix link
  std::vector<std::int32_t> work_csr_;
  std::vector<std::int32_t> csr_slot_;      ///< dense link -> suffix index
  /// Work-index prefix counts per suffix settle (maps recorded rounds
  /// to work ranges).
  std::vector<std::int32_t> warm_suffix_work_;
  /// The kept schedule: recorded suffix rounds, consumed in order and
  /// either committed verbatim or transferred into the cone.
  struct WarmKeptRound {
    Rate share;
    Rate key;           ///< recorded heap key (ordering value)
    std::int32_t link;  ///< dense binding link; -1 for cap rounds
    std::int32_t work_begin;
    std::int32_t work_end;
  };
  std::vector<WarmKeptRound> warm_kept_;
  /// Cone cap min-heap (cap, work index): the sorted cap array of the
  /// cold solve, as a heap so transfers can insert mid-replay.
  std::vector<std::pair<Rate, std::int32_t>> warm_cap_heap_;
};

/// Waterfilling specialization for populations where every flow crosses
/// exactly two links (flat clusters: src uplink + dst downlink).  Runs
/// the same progressive filling as `MaxMinSolver` — identical rates,
/// bit for bit — with two-entry routes unrolled into flat arrays.  See
/// the strategy overview in the header comment.  Not thread-safe.
class BipartiteWaterfillSolver {
 public:
  /// Drop-in for `MaxMinSolver::solve` over views; every flow must
  /// cross exactly two links (checked).  `trace`/`stable_ids` as in the
  /// traced general solve.
  void solve(const std::vector<Rate>& capacity, const FlowDemandView* flows,
             std::size_t num_flows, Rate* rates,
             MaxMinWarmState* trace = nullptr,
             const std::int32_t* stable_ids = nullptr);

 private:
  using LinkSlot = MaxMinSolver::LinkSlot;
  using HeapEntry = MaxMinSolver::HeapEntry;

  std::vector<LinkSlot> slots_;
  std::vector<std::int32_t> touched_;
  std::uint64_t epoch_ = 0;
  std::vector<std::int32_t> flow_links_;  ///< 2 dense links per flow
  std::vector<std::int32_t> link_off_;    ///< CSR over touched links
  std::vector<std::int32_t> link_csr_;
  std::vector<char> fixed_;
  std::vector<std::pair<Rate, std::int32_t>> caps_;
  std::vector<HeapEntry> heap_;
};

/// Convenience wrapper around a fresh `MaxMinSolver` (allocates scratch
/// per call; hot paths should hold a `MaxMinSolver` instead).
std::vector<Rate> maxmin_fair_rates(const std::vector<Rate>& capacity,
                                    const std::vector<FlowDemand>& flows);

/// Reference progressive-filling implementation (the seed solver, with
/// the saturated-link set snapshotted before each fixing pass so the
/// result does not depend on flow index order).  O(R * F * r) for R
/// filling rounds and route length r; used for differential testing.
std::vector<Rate> maxmin_fair_rates_reference(
    const std::vector<Rate>& capacity, const std::vector<FlowDemand>& flows);

}  // namespace rats
