// Randomized scenario generation for `rats fuzz`.
//
// Every spec is derived deterministically from one 64-bit seed and is
// valid by construction: it parses, emits canonically, resolves, and —
// crucially — its fault timeline never strands work forever (every
// node-fail is paired with a later restart, and the number of
// concurrently-down nodes is capped), so a generated spec that stalls
// or crashes is always a simulator bug, never a bad input.
//
// The generator deliberately spans the whole input space the paper's
// artefacts exercise: flat, uniform-hierarchical and heterogeneous
// multi-cabinet platforms; all four DAG families at random sizes;
// preset and explicit algorithm mixes; and stochastic Poisson-style
// event timelines (background traffic, slowdowns, fail/restart pairs).
#pragma once

#include <cstdint>

#include "scenario/spec.hpp"

namespace rats::fuzz {

/// Deterministically builds a random valid scenario from `seed`.  The
/// spec's name embeds the seed ("fuzz-s<seed>") so a failing repro is
/// traceable back to its generator draw.
scenario::ScenarioSpec generate_spec(std::uint64_t seed);

/// The per-index seed of a fuzz campaign: mixes the campaign seed with
/// the spec index (splitmix64-style) so `--seed S --index I` names one
/// reproducible spec.
std::uint64_t spec_seed(std::uint64_t campaign_seed, int index);

}  // namespace rats::fuzz
