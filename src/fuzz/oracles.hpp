// The `rats fuzz` invariant oracle battery.
//
// One spec in, one verdict out.  The battery exercises the whole stack
// — parse/emit, scheduling, fluid-network simulation (with the
// network's own conservation and warm≡cold checks enabled), report
// rendering and trace replay — and fails on the first violated
// invariant with a one-line diagnosis suitable for a repro header.
//
// Checked invariants:
//  * canonical emission is byte-stable: emit(parse(emit(spec))) ==
//    emit(spec);
//  * simulating the same schedule twice is bitwise identical (makespan,
//    work, bytes, per-task timings, fault counters);
//  * Max-Min rate conservation on every link at every solve and
//    warm ≡ cold solver equivalence (SimulatorOptions::validate);
//  * schedule feasibility: per-task timing order, precedence (no task
//    has data before a producer finished), slot exclusivity and
//    no-work-on-down-nodes (skipped under Reschedule with failures,
//    whose remaps are invisible in SimulationResult);
//  * FaultStats accounting: capacity·s lost and node·s down match an
//    independent integral over the event timeline; healthy runs report
//    all-zero stats;
//  * report determinism: text, CSV and JSON renderings are
//    byte-identical across two independent build_report passes;
//  * trace replay: the rendered trace verifies against its own
//    embedded spec (traceable kinds).
//
// The RATS_FUZZ_INJECT environment variable deliberately breaks the
// battery for end-to-end tests of the minimize→pin loop:
//   "node-fail"  fail any spec whose timeline contains a node-fail
//                (deterministic and minimizable);
//   "hang"       block forever (exercises the fuzz driver's watchdog).
#pragma once

#include <string>

#include "scenario/spec.hpp"

namespace rats::fuzz {

struct OracleReport {
  bool ok = true;
  std::string diagnosis;  ///< one line, "<oracle>: <what broke>" (when !ok)
};

/// Runs the full battery on `spec`; stops at the first violation.
OracleReport run_battery(const scenario::ScenarioSpec& spec);

}  // namespace rats::fuzz
