#include "fuzz/minimize.hpp"

#include <algorithm>
#include <vector>

#include "scenario/parser.hpp"

namespace rats::fuzz {

namespace {

/// A candidate must be a well-formed spec before it is worth a battery
/// run: byte-stable through emit→parse, resolvable platform, and a
/// timeline that validates against every cluster.  Without this probe
/// the minimizer would happily "reduce" into specs that fail for a
/// *different* reason (e.g. an event naming a node the shrunken
/// platform no longer has) and pin the wrong repro.
bool valid(const scenario::ScenarioSpec& spec) {
  try {
    const std::string text = scenario::emit_scenario(spec);
    const scenario::ScenarioSpec reparsed =
        scenario::parse_scenario_string(text, "<minimize>");
    if (scenario::emit_scenario(reparsed) != text) return false;
    for (const Cluster& cluster : spec.platform.resolve())
      if (!spec.events.empty()) spec.events.resolve(cluster);
    return true;
  } catch (...) {
    return false;
  }
}

struct Reducer {
  scenario::ScenarioSpec spec;
  const StillFails& still_fails;
  bool progress = false;

  bool accept(const scenario::ScenarioSpec& candidate) {
    if (!valid(candidate) || !still_fails(candidate)) return false;
    spec = candidate;
    progress = true;
    return true;
  }

  /// ddmin over the event list: remove chunks of shrinking size.
  void events() {
    for (std::size_t chunk = std::max<std::size_t>(
             1, spec.events.timeline.events.size() / 2);
         ; chunk /= 2) {
      for (std::size_t at = 0;
           at + chunk <= spec.events.timeline.events.size();) {
        scenario::ScenarioSpec candidate = spec;
        auto& ev = candidate.events.timeline.events;
        ev.erase(ev.begin() + static_cast<std::ptrdiff_t>(at),
                 ev.begin() + static_cast<std::ptrdiff_t>(at + chunk));
        if (!accept(candidate)) at += chunk;
      }
      if (chunk == 1) break;
    }
  }

  void algorithms() {
    while (spec.algorithms.algos.size() > 1) {
      bool dropped = false;
      for (std::size_t i = 0; i < spec.algorithms.algos.size(); ++i) {
        scenario::ScenarioSpec candidate = spec;
        candidate.algorithms.algos.erase(candidate.algorithms.algos.begin() +
                                         static_cast<std::ptrdiff_t>(i));
        if (accept(candidate)) {
          dropped = true;
          break;
        }
      }
      if (!dropped) break;
    }
    if (!spec.algorithms.preset.empty()) {
      // A preset stands for several schedulers; one explicit HCPA is
      // strictly simpler when it still reproduces.
      scenario::ScenarioSpec candidate = spec;
      candidate.algorithms.preset.clear();
      AlgoSpec hcpa;
      hcpa.name = "HCPA";
      hcpa.options.kind = SchedulerKind::Hcpa;
      candidate.algorithms.algos = {hcpa};
      accept(candidate);
    }
  }

  /// Shrinks one integer field towards `floor` by halving the distance.
  template <typename Set>
  void shrink_int(int current, int floor, const Set& set) {
    while (current > floor) {
      const int next = floor + (current - floor) / 2;
      scenario::ScenarioSpec candidate = spec;
      set(candidate, next);
      if (!accept(candidate)) break;
      current = next;
    }
  }

  void workload() {
    auto& w = spec.workload;
    if (w.source != scenario::WorkloadSpec::Source::Generate) return;
    shrink_int(w.count, 1, [](scenario::ScenarioSpec& s, int v) {
      s.workload.count = v;
    });
    if (spec.workload.generator == "fft" && w.fft_k > 2) {
      // fft-k must stay a power of two: halve instead of bisecting.
      scenario::ScenarioSpec candidate = spec;
      candidate.workload.fft_k = w.fft_k / 2;
      accept(candidate);
    }
    if (spec.workload.generator == "layered" ||
        spec.workload.generator == "irregular")
      shrink_int(w.dag.num_tasks, 1, [](scenario::ScenarioSpec& s, int v) {
        s.workload.dag.num_tasks = v;
      });
  }

  void platform() {
    auto& p = spec.platform;
    if (!p.is_custom()) return;
    if (p.cabinet_nodes.empty()) {
      shrink_int(p.nodes, 1, [](scenario::ScenarioSpec& s, int v) {
        s.platform.nodes = v;
      });
      return;
    }
    // Drop whole cabinets, then shrink the per-cabinet node counts.
    while (spec.platform.cabinet_nodes.size() > 1) {
      bool dropped = false;
      for (std::size_t i = 0; i < spec.platform.cabinet_nodes.size(); ++i) {
        scenario::ScenarioSpec candidate = spec;
        auto& cs = candidate.platform.cabinet_nodes;
        cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(i));
        if (accept(candidate)) {
          dropped = true;
          break;
        }
      }
      if (!dropped) break;
    }
    for (std::size_t i = 0; i < spec.platform.cabinet_nodes.size(); ++i)
      shrink_int(spec.platform.cabinet_nodes[i], 1,
                 [i](scenario::ScenarioSpec& s, int v) {
                   s.platform.cabinet_nodes[i] = v;
                 });
  }

  void sweep_grids() {
    const auto drop_points = [this](auto member) {
      for (std::size_t i = 0; i < (spec.sweep.*member).size();) {
        scenario::ScenarioSpec candidate = spec;
        auto& grid = candidate.sweep.*member;
        grid.erase(grid.begin() + static_cast<std::ptrdiff_t>(i));
        if (!accept(candidate)) ++i;
      }
    };
    drop_points(&scenario::SweepSpec::mindeltas);
    drop_points(&scenario::SweepSpec::maxdeltas);
    drop_points(&scenario::SweepSpec::minrhos);
    drop_points(&scenario::SweepSpec::packings);
    drop_points(&scenario::SweepSpec::event_factors);
    drop_points(&scenario::SweepSpec::event_ats);
  }
};

}  // namespace

scenario::ScenarioSpec minimize_spec(scenario::ScenarioSpec spec,
                                     const StillFails& still_fails) {
  Reducer r{std::move(spec), still_fails};
  do {
    r.progress = false;
    r.events();
    r.algorithms();
    r.workload();
    r.platform();
    r.sweep_grids();
  } while (r.progress);
  return r.spec;
}

}  // namespace rats::fuzz
