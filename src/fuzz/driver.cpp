#include "fuzz/driver.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <ostream>
#include <thread>

#include "common/format.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/oracles.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "scenario/parser.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define RATS_FUZZ_FORK 1
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace rats::fuzz {

namespace {

std::string one_line(std::string s) {
  for (char& c : s)
    if (c == '\n' || c == '\r') c = ' ';
  return s;
}

#ifdef RATS_FUZZ_FORK

SpecOutcome run_forked(const scenario::ScenarioSpec& spec,
                       double timeout_secs) {
  int fds[2];
  if (pipe(fds) != 0) return {SpecOutcome::Crash, "pipe() failed"};
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return {SpecOutcome::Crash, "fork() failed"};
  }
  if (pid == 0) {
    // Child: run the battery, report the diagnosis over the pipe.
    // _exit (not exit) — no flushing of inherited stdio buffers.
    close(fds[0]);
    const OracleReport report = run_battery(spec);
    if (!report.ok) {
      const std::string& d = report.diagnosis;
      std::size_t off = 0;
      while (off < d.size()) {
        const ssize_t n = write(fds[1], d.data() + off, d.size() - off);
        if (n <= 0) break;
        off += static_cast<std::size_t>(n);
      }
    }
    close(fds[1]);
    _exit(report.ok ? 0 : 1);
  }
  close(fds[1]);

  // Watchdog: poll for exit, SIGKILL past the deadline.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_secs);
  int status = 0;
  bool timed_out = false;
  for (;;) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) break;
    if (r < 0) {
      close(fds[0]);
      return {SpecOutcome::Crash, "waitpid() failed"};
    }
    if (timeout_secs > 0 && std::chrono::steady_clock::now() >= deadline) {
      if (!timed_out) {
        kill(pid, SIGKILL);
        timed_out = true;
      }
      waitpid(pid, &status, 0);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // The child is gone; its one-line diagnosis (if any) sits in the
  // pipe buffer.
  std::string diagnosis;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fds[0], buf, sizeof buf);
    if (n <= 0) break;
    diagnosis.append(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);

  if (timed_out)
    return {SpecOutcome::Timeout,
            strf("watchdog: spec exceeded %gs wall clock", timeout_secs)};
  if (WIFSIGNALED(status))
    return {SpecOutcome::Crash,
            "crash: child terminated by signal " +
                std::to_string(WTERMSIG(status))};
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) return {};
  if (diagnosis.empty())
    diagnosis = "crash: child exited with status " +
                std::to_string(WEXITSTATUS(status));
  return {SpecOutcome::OracleFail, one_line(diagnosis)};
}

#endif  // RATS_FUZZ_FORK

std::string write_repro(const FuzzOptions& options, int index,
                        std::uint64_t seed,
                        const scenario::ScenarioSpec& spec,
                        const std::string& diagnosis) {
  std::filesystem::create_directories(options.regress_dir);
  const std::string path = options.regress_dir + "/fuzz-" +
                           std::to_string(index) + "-s" +
                           std::to_string(seed) + ".rats";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "# fuzz repro: " << diagnosis << "\n";
  out << "# reproduce: rats fuzz --seed " << options.seed << " --index "
      << index << "\n";
  out << scenario::emit_scenario(spec);
  return path;
}

}  // namespace

SpecOutcome run_spec_isolated(const scenario::ScenarioSpec& spec,
                              double timeout_secs) {
#ifdef RATS_FUZZ_FORK
  return run_forked(spec, timeout_secs);
#else
  (void)timeout_secs;  // no process isolation: best effort, no watchdog
  const OracleReport report = run_battery(spec);
  if (report.ok) return {};
  return {SpecOutcome::OracleFail, one_line(report.diagnosis)};
#endif
}

FuzzResult run_fuzz(const FuzzOptions& options, std::ostream& out) {
  FuzzResult result;
  const int first = options.index >= 0 ? options.index : 0;
  const int last = options.index >= 0 ? options.index + 1 : options.count;

  // Campaign-level registry counters.  Oracle work happens in forked
  // children, so only the parent's view of each outcome is counted —
  // exactly what a nightly snapshot wants.  Volatile: a re-run of a
  // failing campaign after a fix tallies differently by design.
  if (!options.metrics_path.empty()) obs::set_metrics_enabled(true);
  obs::Counter& c_run = obs::counter("fuzz/specs_run");
  obs::Counter& c_passed = obs::counter("fuzz/specs_passed");
  obs::Counter& c_failed =
      obs::counter("fuzz/specs_failed", obs::Stability::Volatile);
  obs::Counter& c_timeouts =
      obs::counter("fuzz/timeouts", obs::Stability::Volatile);
  obs::Counter& c_crashes =
      obs::counter("fuzz/crashes", obs::Stability::Volatile);
  obs::Counter& c_repros =
      obs::counter("fuzz/repros_written", obs::Stability::Volatile);

  std::optional<obs::ProgressMeter> meter;
  if (options.progress && !options.emit_only)
    meter.emplace("specs", static_cast<std::uint64_t>(last - first));

  for (int i = first; i < last; ++i) {
    const std::uint64_t seed = spec_seed(options.seed, i);
    const scenario::ScenarioSpec spec = generate_spec(seed);
    if (options.emit_only) {
      out << scenario::emit_scenario(spec) << "\n";
      continue;
    }
    ++result.ran;
    c_run.inc();
    const SpecOutcome outcome = run_spec_isolated(spec, options.timeout_secs);
    if (outcome.kind == SpecOutcome::Pass) {
      ++result.passed;
      c_passed.inc();
      if (meter) meter->tick();
      continue;
    }
    ++result.failed;
    c_failed.inc();
    if (outcome.kind == SpecOutcome::Timeout) c_timeouts.inc();
    if (outcome.kind == SpecOutcome::Crash) c_crashes.inc();
    out << "fuzz: FAIL index " << i << " (seed " << seed << ") — "
        << outcome.diagnosis << "\n";
    scenario::ScenarioSpec minimal = spec;
    // Timeouts are not minimized: every probe would cost the full
    // watchdog budget.  Oracle failures and crashes re-probe fast.
    if (options.minimize && outcome.kind != SpecOutcome::Timeout) {
      minimal = minimize_spec(
          spec, [&](const scenario::ScenarioSpec& candidate) {
            return run_spec_isolated(candidate, options.timeout_secs).kind !=
                   SpecOutcome::Pass;
          });
      out << "fuzz: minimized " << spec.events.timeline.events.size()
          << " events / " << spec.workload.count << " graphs down to "
          << minimal.events.timeline.events.size() << " / "
          << minimal.workload.count << "\n";
    }
    const std::string path =
        write_repro(options, i, seed, minimal, outcome.diagnosis);
    out << "fuzz: repro written to " << path << "\n";
    result.repro_paths.push_back(path);
    c_repros.inc();
    if (meter) meter->tick();
  }
  if (meter) meter->finish();
  if (!options.metrics_path.empty()) {
    std::ofstream snap(options.metrics_path,
                       std::ios::binary | std::ios::trunc);
    snap << obs::snapshot_json(obs::snapshot(),
                               "fuzz-seed-" + std::to_string(options.seed),
                               "fuzz");
  }
  if (!options.emit_only)
    out << "fuzz: " << result.ran << " specs, " << result.passed
        << " passed, " << result.failed << " failed (seed " << options.seed
        << ")\n";
  return result;
}

}  // namespace rats::fuzz
