// Delta-debugging spec minimizer for `rats fuzz`.
//
// Given a failing spec and a predicate that re-checks a candidate
// ("does this still fail?"), the minimizer greedily shrinks every
// dimension of the spec — events (ddmin over the timeline), the
// algorithm list, workload size (count, tasks, fft-k), platform size
// (nodes, cabinets) and sweep grid points — until no single reduction
// step reproduces the failure.  Candidates are validity-probed first
// (they must survive an emit→parse round trip), so the minimized spec
// is always a well-formed `.rats` file ready for scenarios/regress/.
#pragma once

#include <functional>

#include "scenario/spec.hpp"

namespace rats::fuzz {

/// True when the candidate still reproduces the original failure.
/// Typically forks and re-runs the oracle battery under a watchdog.
using StillFails = std::function<bool(const scenario::ScenarioSpec&)>;

/// Greedy fixpoint reduction of `spec` under `still_fails`; the input
/// spec itself is assumed failing.  Returns the smallest spec found.
scenario::ScenarioSpec minimize_spec(scenario::ScenarioSpec spec,
                                     const StillFails& still_fails);

}  // namespace rats::fuzz
