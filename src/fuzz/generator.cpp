#include "fuzz/generator.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sched/scheduler.hpp"

namespace rats::fuzz {

namespace {

/// Rounds to 3 decimals so emitted specs stay short and every value
/// survives the text round trip exactly.
double round3(double v) { return std::round(v * 1000.0) / 1000.0; }

void gen_platform(Rng& rng, scenario::PlatformSpec& p) {
  p.gflops = round3(rng.uniform(0.5, 4.0));
  p.latency_us = round3(rng.uniform(20.0, 200.0));
  p.bandwidth_gbps = round3(rng.uniform(0.25, 4.0));
  p.uplink_latency_us = round3(rng.uniform(20.0, 200.0));
  p.uplink_bandwidth_gbps = round3(rng.uniform(0.25, 4.0));
  const int shape = static_cast<int>(rng.uniform_int(0, 2));
  if (shape == 0) {
    // Flat: 2..10 nodes.
    p.name = "fuzz-flat";
    p.nodes = static_cast<int>(rng.uniform_int(2, 10));
  } else {
    // Hierarchical: 2..3 cabinets, uniform or heterogeneous.
    p.name = shape == 1 ? "fuzz-hier" : "fuzz-hetero";
    const int cabinets = static_cast<int>(rng.uniform_int(2, 3));
    const int base = static_cast<int>(rng.uniform_int(2, 4));
    for (int c = 0; c < cabinets; ++c)
      p.cabinet_nodes.push_back(
          shape == 1 ? base : static_cast<int>(rng.uniform_int(1, 5)));
  }
}

/// Multi-cluster platform: a random subset (>= 2) of the Grid'5000
/// presets, in canonical order.  Only the table kinds accept several
/// clusters, so callers pair this with kind table5/table6.
void gen_preset_platform(Rng& rng, scenario::PlatformSpec& p) {
  static const char* kPresets[3] = {"chti", "grillon", "grelon"};
  // Bitmask over the three presets; 3/5/6/7 are the subsets of size >= 2.
  static const int kMasks[4] = {3, 5, 6, 7};
  const int mask = kMasks[rng.uniform_int(0, 3)];
  for (int i = 0; i < 3; ++i)
    if (mask & (1 << i)) p.presets.push_back(kPresets[i]);
}

/// Non-empty [sweep] grids over the base algorithm.  Kept tiny (<= 2
/// values per axis, <= 2 scheduler axes) so a fuzz battery run stays
/// within its per-spec budget; `has_events` gates the event-factor
/// axis, which the sweep kind rejects without an [events] timeline.
void gen_sweep(Rng& rng, bool has_events, scenario::SweepSpec& sw) {
  auto grid = [&](double lo, double hi) {
    std::vector<double> g;
    const int n = static_cast<int>(rng.uniform_int(1, 2));
    for (int i = 0; i < n; ++i) g.push_back(round3(rng.uniform(lo, hi)));
    return g;
  };
  if (rng.bernoulli(0.5)) {
    sw.base = "delta";
    sw.mindeltas = grid(-0.9, 0.0);
    if (rng.bernoulli(0.7)) sw.maxdeltas = grid(0.0, 1.0);
  } else {
    sw.base = "time-cost";
    sw.minrhos = grid(0.1, 0.9);
    if (rng.bernoulli(0.5)) sw.packings = {true, false};
  }
  if (has_events && rng.bernoulli(0.4)) sw.event_factors = grid(0.1, 1.2);
}

void gen_workload(Rng& rng, scenario::WorkloadSpec& w) {
  w.source = scenario::WorkloadSpec::Source::Generate;
  w.count = static_cast<int>(rng.uniform_int(1, 2));
  w.generate_seed = static_cast<std::uint64_t>(rng.uniform_int(0, 1000000000));
  switch (rng.uniform_int(0, 3)) {
    case 0:
      w.generator = "fft";
      w.fft_k = 1 << rng.uniform_int(1, 3);  // 2, 4 or 8
      break;
    case 1:
      w.generator = "strassen";
      break;
    case 2:
    default: {
      w.generator = rng.bernoulli(0.5) ? "layered" : "irregular";
      w.dag.num_tasks = static_cast<int>(rng.uniform_int(5, 40));
      w.dag.width = round3(rng.uniform(0.2, 1.0));
      w.dag.density = round3(rng.uniform(0.2, 1.0));
      w.dag.regularity = round3(rng.uniform(0.2, 1.0));
      w.dag.jump = static_cast<int>(rng.uniform_int(1, 3));
      break;
    }
  }
}

void gen_algorithms(Rng& rng, scenario::AlgorithmsSpec& a) {
  // The "tuned" preset runs a full AutoTuner sweep — far too slow for a
  // per-spec fuzz budget — so explicit mixes stand in for it.
  if (rng.bernoulli(0.3)) {
    a.preset = "naive";
    return;
  }
  a.preset.clear();
  const int n = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < n; ++i) {
    AlgoSpec algo;
    const int kind = static_cast<int>(rng.uniform_int(0, 4));
    switch (kind) {
      case 0: algo.options.kind = SchedulerKind::Cpa; break;
      case 1: algo.options.kind = SchedulerKind::Mcpa; break;
      case 2: algo.options.kind = SchedulerKind::Hcpa; break;
      case 3:
        algo.options.kind = SchedulerKind::RatsDelta;
        algo.options.rats.mindelta = round3(rng.uniform(-0.9, 0.0));
        algo.options.rats.maxdelta = round3(rng.uniform(0.0, 1.0));
        break;
      default:
        algo.options.kind = SchedulerKind::RatsTimeCost;
        algo.options.rats.minrho = round3(rng.uniform(0.1, 0.9));
        algo.options.rats.packing = rng.bernoulli(0.7);
        break;
    }
    algo.options.secondary_sort = rng.bernoulli(0.9);
    algo.name = to_string(algo.options.kind) + "-" + std::to_string(i);
    a.algos.push_back(std::move(algo));
  }
}

/// Stochastic fault process over a fixed horizon: Poisson-style event
/// arrivals.  Every node-fail is paired with a later restart (so no
/// spec can strand data forever and stall the simulator), at most one
/// fail/restart pair per node (two pairs on one node could interleave
/// after sorting and break the timeline's fail/restart alternation),
/// and at least one node never fails so progress is always possible.
void gen_events(Rng& rng, int num_nodes, int cabinets,
                scenario::EventsSpec& ev) {
  ev.timeline.on_fail =
      rng.bernoulli(0.5) ? FailPolicy::Reschedule : FailPolicy::Hold;
  const double horizon = round3(rng.uniform(0.5, 50.0));
  const int arrivals = static_cast<int>(rng.uniform_int(1, 6));
  std::vector<bool> failed(static_cast<std::size_t>(num_nodes), false);
  int pairs = 0;
  auto& out = ev.timeline.events;
  for (int i = 0; i < arrivals; ++i) {
    PlatformEvent e;
    e.at = round3(rng.uniform(0.0, horizon));
    switch (rng.uniform_int(0, 3)) {
      case 0:  // background traffic on a node's NIC pair
        e.kind = PlatformEventKind::LinkCapacity;
        e.node = static_cast<NodeId>(rng.uniform_int(0, num_nodes - 1));
        e.factor = round3(rng.uniform(0.1, 1.5));
        break;
      case 1:  // background traffic on a cabinet uplink (hierarchical)
        if (cabinets == 0) continue;
        e.kind = PlatformEventKind::LinkCapacity;
        e.cabinet = static_cast<int>(rng.uniform_int(0, cabinets - 1));
        e.factor = round3(rng.uniform(0.1, 1.5));
        break;
      case 2:
        e.kind = PlatformEventKind::NodeSlowdown;
        e.node = static_cast<NodeId>(rng.uniform_int(0, num_nodes - 1));
        e.factor = round3(rng.uniform(0.2, 1.0));
        break;
      default: {
        if (pairs + 1 >= num_nodes) continue;  // keep one node fail-free
        NodeId n = static_cast<NodeId>(rng.uniform_int(0, num_nodes - 1));
        while (failed[static_cast<std::size_t>(n)])
          n = static_cast<NodeId>((n + 1) % num_nodes);
        failed[static_cast<std::size_t>(n)] = true;
        ++pairs;
        e.kind = PlatformEventKind::NodeFail;
        e.node = n;
        PlatformEvent restart = e;
        restart.kind = PlatformEventKind::NodeRestart;
        restart.at = round3(e.at + rng.uniform(0.001, horizon * 0.5));
        out.push_back(e);
        out.push_back(restart);
        continue;
      }
    }
    out.push_back(e);
  }
  ev.timeline.sort();
}

}  // namespace

std::uint64_t spec_seed(std::uint64_t campaign_seed, int index) {
  // splitmix64 finalizer over (seed, index) — avalanche so index 0 and
  // 1 land in unrelated regions of the generator's input space.
  std::uint64_t z =
      campaign_seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

scenario::ScenarioSpec generate_spec(std::uint64_t seed) {
  Rng rng(seed);
  scenario::ScenarioSpec spec;
  spec.name = "fuzz-s" + std::to_string(seed);
  spec.threads = 1;  // forked oracle runs stay single-threaded
  Rng platform_rng = rng.split(1);
  Rng workload_rng = rng.split(2);
  Rng algos_rng = rng.split(3);

  // Kind mix: the single-cluster kinds dominate, with slices for the
  // generic sweep and the multi-cluster table kinds so the battery
  // exercises every matrix shape the scenario engine can run.
  const int pick = static_cast<int>(rng.uniform_int(0, 19));
  const bool table_kind = pick >= 16;
  if (pick < 4) spec.kind = "single";
  else if (pick < 13) spec.kind = "experiment";
  else if (pick < 16) spec.kind = "sweep";
  else spec.kind = pick < 18 ? "table5" : "table6";

  if (table_kind) {
    // table5/table6 run the tuned preset over every listed cluster;
    // the generated workload stays tiny to keep the 3x matrix cheap.
    gen_preset_platform(platform_rng, spec.platform);
    spec.algorithms.preset = "tuned";
  } else {
    gen_platform(platform_rng, spec.platform);
    gen_algorithms(algos_rng, spec.algorithms);
  }
  gen_workload(workload_rng, spec.workload);

  if (rng.bernoulli(0.6)) {
    // Preset clusters: node ids < 20 are valid on all three (chti is
    // the smallest), and no cabinet events (chti/grillon are flat).
    int nodes = 20, cabinets = 0;
    if (spec.platform.is_custom()) {
      nodes = spec.platform.nodes;
      for (const int c : spec.platform.cabinet_nodes) nodes += c;
      cabinets = static_cast<int>(spec.platform.cabinet_nodes.size());
    }
    Rng ev_rng = rng.split(4);
    gen_events(ev_rng, nodes, cabinets, spec.events);
  }
  if (spec.kind == "sweep") {
    Rng sweep_rng = rng.split(5);
    gen_sweep(sweep_rng, !spec.events.empty(), spec.sweep);
  }
  return spec;
}

}  // namespace rats::fuzz
