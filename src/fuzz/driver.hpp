// The `rats fuzz` campaign driver.
//
// Generates `count` specs from a campaign seed, runs the oracle battery
// on each in an isolated forked child under a wall-clock watchdog (so a
// crash, sanitizer trip or hang in one spec never takes the campaign
// down), and on any failure delta-debugs the spec to a minimal repro
// and writes it — diagnosis header included — into the regression
// corpus directory.  All output is deterministic for a given seed and
// healthy build: same specs, same order, same summary line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace rats::fuzz {

struct FuzzOptions {
  int count = 250;               ///< specs per campaign (--quick: 100)
  std::uint64_t seed = 1;        ///< campaign seed
  double timeout_secs = 30.0;    ///< per-spec watchdog (0 = none)
  std::string regress_dir = "scenarios/regress";  ///< repro output
  bool emit_only = false;        ///< print generated specs, run nothing
  int index = -1;                ///< >= 0: run only this spec index
  bool minimize = true;          ///< delta-debug failures before writing
  bool progress = false;         ///< live stderr heartbeat (specs/s, ETA)
  /// When non-empty, enables the obs:: metrics registry and writes a
  /// final campaign snapshot (fuzz/* counters) to this path.
  std::string metrics_path;
};

/// How one isolated spec run ended.
struct SpecOutcome {
  enum Kind { Pass, OracleFail, Crash, Timeout } kind = Pass;
  std::string diagnosis;  ///< one line (empty on Pass)
};

/// Runs the battery on `spec` in a forked child killed after
/// `timeout_secs` (POSIX; elsewhere falls back to in-process, no
/// watchdog).
SpecOutcome run_spec_isolated(const scenario::ScenarioSpec& spec,
                              double timeout_secs);

struct FuzzResult {
  int ran = 0;
  int passed = 0;
  int failed = 0;
  std::vector<std::string> repro_paths;  ///< one per failure
};

/// Runs the whole campaign; per-failure lines and a final summary go to
/// `out`.  Returns the tally (failed == 0 means a clean campaign).
FuzzResult run_fuzz(const FuzzOptions& options, std::ostream& out);

}  // namespace rats::fuzz
