#include "fuzz/oracles.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/format.hpp"
#include "exp/runner.hpp"
#include "report/render.hpp"
#include "scenario/parser.hpp"
#include "scenario/registry.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/replay.hpp"

namespace rats::fuzz {

namespace {

OracleReport violated(const std::string& oracle, std::string what) {
  // Diagnoses head repro files and summary lines: keep them one line.
  for (char& c : what)
    if (c == '\n' || c == '\r') c = ' ';
  return {false, oracle + ": " + what};
}

bool timings_equal(const SimulationResult& a, const SimulationResult& b) {
  if (a.makespan != b.makespan || a.total_work != b.total_work ||
      a.network_bytes != b.network_bytes)
    return false;
  if (a.timeline.size() != b.timeline.size()) return false;
  for (std::size_t t = 0; t < a.timeline.size(); ++t)
    if (a.timeline[t].data_ready != b.timeline[t].data_ready ||
        a.timeline[t].start != b.timeline[t].start ||
        a.timeline[t].finish != b.timeline[t].finish)
      return false;
  const FaultStats &fa = a.faults, &fb = b.faults;
  return fa.tasks_killed == fb.tasks_killed &&
         fa.tasks_remapped == fb.tasks_remapped &&
         fa.redists_aborted == fb.redists_aborted &&
         fa.capacity_seconds_lost == fb.capacity_seconds_lost &&
         fa.node_seconds_down == fb.node_seconds_down;
}

/// Independent recomputation of the simulator's fault integrals from
/// the event timeline alone (capacity·s lost and node·s down depend
/// only on events and the makespan, never on what the tasks did).
struct FaultIntegrals {
  double capacity_seconds_lost = 0;
  double node_seconds_down = 0;
};

FaultIntegrals integrate_faults(const Cluster& cluster,
                                const PlatformTimeline& timeline,
                                Seconds makespan) {
  const int links = cluster.num_links();
  const int nodes = cluster.num_nodes();
  std::vector<double> base(static_cast<std::size_t>(links));
  std::vector<double> factor(static_cast<std::size_t>(links), 1.0);
  std::vector<int> owner(static_cast<std::size_t>(links), -1);
  for (LinkId l = 0; l < links; ++l)
    base[static_cast<std::size_t>(l)] = cluster.link(l).bandwidth;
  for (NodeId n = 0; n < nodes; ++n) {
    owner[static_cast<std::size_t>(cluster.nic_up(n))] = n;
    owner[static_cast<std::size_t>(cluster.nic_down(n))] = n;
  }
  std::vector<bool> down(static_cast<std::size_t>(nodes), false);

  FaultIntegrals out;
  auto lost_rate = [&] {
    double s = 0;
    for (int l = 0; l < links; ++l) {
      const std::size_t i = static_cast<std::size_t>(l);
      const double eff =
          (owner[i] >= 0 && down[static_cast<std::size_t>(owner[i])])
              ? 0.0
              : factor[i];
      s += base[i] * (1.0 - eff);
    }
    return s;
  };
  auto down_count = [&] {
    return static_cast<double>(std::count(down.begin(), down.end(), true));
  };

  double t_prev = 0;
  for (const PlatformEvent& e : timeline.events) {
    const double t = std::clamp(e.at, 0.0, makespan);
    const double dt = std::max(0.0, t - t_prev);
    out.capacity_seconds_lost += dt * lost_rate();
    out.node_seconds_down += dt * down_count();
    t_prev = std::max(t_prev, t);
    switch (e.kind) {
      case PlatformEventKind::LinkCapacity:
        if (e.node >= 0) {
          factor[static_cast<std::size_t>(cluster.nic_up(e.node))] = e.factor;
          factor[static_cast<std::size_t>(cluster.nic_down(e.node))] = e.factor;
        } else {
          factor[static_cast<std::size_t>(cluster.cabinet_up(e.cabinet))] =
              e.factor;
          factor[static_cast<std::size_t>(cluster.cabinet_down(e.cabinet))] =
              e.factor;
        }
        break;
      case PlatformEventKind::NodeSlowdown:
        break;  // compute speed, not network capacity
      case PlatformEventKind::NodeFail:
        down[static_cast<std::size_t>(e.node)] = true;
        break;
      case PlatformEventKind::NodeRestart:
        down[static_cast<std::size_t>(e.node)] = false;
        break;
    }
  }
  const double dt = std::max(0.0, makespan - t_prev);
  out.capacity_seconds_lost += dt * lost_rate();
  out.node_seconds_down += dt * down_count();
  return out;
}

bool close(double got, double want) {
  return std::fabs(got - want) <= 1e-6 + 1e-6 * std::fabs(want);
}

/// Per-node down windows [fail, restart) of the timeline; a trailing
/// fail leaves the window open to +inf.
std::vector<std::vector<std::pair<double, double>>> down_windows(
    int nodes, const PlatformTimeline& timeline) {
  std::vector<std::vector<std::pair<double, double>>> win(
      static_cast<std::size_t>(nodes));
  constexpr double kOpen = std::numeric_limits<double>::infinity();
  for (const PlatformEvent& e : timeline.events) {
    if (e.kind == PlatformEventKind::NodeFail)
      win[static_cast<std::size_t>(e.node)].emplace_back(e.at, kOpen);
    else if (e.kind == PlatformEventKind::NodeRestart)
      win[static_cast<std::size_t>(e.node)].back().second = e.at;
  }
  return win;
}

/// Timing-order, precedence, slot-exclusivity and down-node checks on
/// one simulated run.  `exclusive` gates the two placement-based checks
/// (false under Reschedule with failures, whose remaps SimulationResult
/// does not expose).
OracleReport check_feasibility(const TaskGraph& graph,
                               const Schedule& schedule,
                               const Cluster& cluster,
                               const PlatformTimeline* timeline,
                               bool exclusive, const SimulationResult& r) {
  constexpr double kEps = 1e-9;
  const auto& tl = r.timeline;
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    const auto& x = tl[static_cast<std::size_t>(t)];
    if (!(x.data_ready <= x.start + kEps) || !(x.start <= x.finish + kEps))
      return violated("feasibility",
                      strf("task %d timing out of order (ready %.17g, start "
                           "%.17g, finish %.17g)",
                           t, x.data_ready, x.start, x.finish));
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const TaskId src = graph.edge(e).src, dst = graph.edge(e).dst;
    if (tl[static_cast<std::size_t>(dst)].data_ready + kEps <
        tl[static_cast<std::size_t>(src)].finish)
      return violated("feasibility",
                      strf("task %d has data before producer %d finished",
                           dst, src));
  }
  if (!exclusive) return {};

  // Slot exclusivity: tasks sharing a processor never overlap in time.
  const int nodes = cluster.num_nodes();
  std::vector<std::vector<TaskId>> per_node(static_cast<std::size_t>(nodes));
  for (TaskId t = 0; t < graph.num_tasks(); ++t)
    for (const NodeId n : schedule.of(t).procs)
      per_node[static_cast<std::size_t>(n)].push_back(t);
  for (NodeId n = 0; n < nodes; ++n) {
    auto& tasks = per_node[static_cast<std::size_t>(n)];
    std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
      return tl[static_cast<std::size_t>(a)].start <
             tl[static_cast<std::size_t>(b)].start;
    });
    for (std::size_t i = 1; i < tasks.size(); ++i) {
      const auto& prev = tl[static_cast<std::size_t>(tasks[i - 1])];
      const auto& next = tl[static_cast<std::size_t>(tasks[i])];
      if (prev.finish > next.start + kEps)
        return violated("feasibility",
                        strf("tasks %d and %d overlap on node %d",
                             tasks[i - 1], tasks[i], n));
    }
  }

  // No execution interval may intersect a down window of its nodes.
  if (timeline) {
    const auto win = down_windows(nodes, *timeline);
    for (TaskId t = 0; t < graph.num_tasks(); ++t) {
      const auto& x = tl[static_cast<std::size_t>(t)];
      for (const NodeId n : schedule.of(t).procs)
        for (const auto& [from, to] : win[static_cast<std::size_t>(n)])
          if (std::min(x.finish, to) - std::max(x.start, from) > kEps)
            return violated(
                "feasibility",
                strf("task %d runs on node %d during its down window "
                     "[%.17g, %g)",
                     t, n, from, to));
    }
  }
  return {};
}

OracleReport check_fault_stats(const Cluster& cluster,
                               const PlatformTimeline* timeline,
                               const SimulationResult& r) {
  const FaultStats& f = r.faults;
  if (!timeline) {
    if (f.tasks_killed || f.tasks_remapped || f.redists_aborted ||
        f.capacity_seconds_lost != 0 || f.node_seconds_down != 0)
      return violated("fault-stats", "healthy run reported non-zero faults");
    return {};
  }
  const bool has_fail = std::any_of(
      timeline->events.begin(), timeline->events.end(),
      [](const PlatformEvent& e) {
        return e.kind == PlatformEventKind::NodeFail;
      });
  if (!has_fail &&
      (f.tasks_killed || f.tasks_remapped || f.redists_aborted))
    return violated("fault-stats",
                    "fail-free timeline reported killed/remapped work");
  if (timeline->on_fail == FailPolicy::Hold && f.tasks_remapped)
    return violated("fault-stats", "hold policy reported remapped tasks");
  const FaultIntegrals want =
      integrate_faults(cluster, *timeline, r.makespan);
  if (!close(f.capacity_seconds_lost, want.capacity_seconds_lost))
    return violated("fault-stats",
                    strf("capacity_seconds_lost %.17g, independent integral "
                         "%.17g",
                         f.capacity_seconds_lost, want.capacity_seconds_lost));
  if (!close(f.node_seconds_down, want.node_seconds_down))
    return violated("fault-stats",
                    strf("node_seconds_down %.17g, independent integral %.17g",
                         f.node_seconds_down, want.node_seconds_down));
  return {};
}

OracleReport injected(const scenario::ScenarioSpec& spec) {
  const char* inject = std::getenv("RATS_FUZZ_INJECT");
  if (!inject) return {};
  const std::string what = inject;
  if (what == "node-fail") {
    for (const PlatformEvent& e : spec.events.timeline.events)
      if (e.kind == PlatformEventKind::NodeFail)
        return violated("injected-oracle",
                        "timeline contains a node-fail event");
  } else if (what == "hang") {
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  return {};
}

}  // namespace

OracleReport run_battery(const scenario::ScenarioSpec& spec) {
  if (OracleReport r = injected(spec); !r.ok) return r;
  try {
    // Canonical emission round trip.
    const std::string e1 = scenario::emit_scenario(spec);
    const scenario::ScenarioSpec reparsed =
        scenario::parse_scenario_string(e1, "<fuzz>");
    if (scenario::emit_scenario(reparsed) != e1)
      return violated("emit-roundtrip",
                      "emit(parse(emit(spec))) differs from emit(spec)");

    // Direct schedule+simulate pass: network validation on, every run
    // simulated twice and compared bitwise, feasibility and fault
    // accounting checked per run.
    const std::vector<Cluster> clusters = spec.platform.resolve();
    const std::vector<CorpusEntry> corpus = spec.workload.resolve();
    for (const Cluster& cluster : clusters) {
      PlatformTimeline timeline;
      const bool has_events = !spec.events.empty();
      if (has_events) timeline = spec.events.resolve(cluster, spec.origin);
      const bool has_fail =
          has_events &&
          std::any_of(timeline.events.begin(), timeline.events.end(),
                      [](const PlatformEvent& e) {
                        return e.kind == PlatformEventKind::NodeFail;
                      });
      // Reschedule remaps placements invisibly: placement-based checks
      // only hold on healthy runs or under Hold.
      const bool exclusive =
          !has_fail || timeline.on_fail == FailPolicy::Hold;
      for (const CorpusEntry& entry : corpus) {
        for (const AlgoSpec& algo :
             spec.algorithms.resolve(entry.family, cluster.name())) {
          const Schedule schedule =
              build_schedule(entry.graph, cluster, algo.options);
          schedule.validate(entry.graph, cluster);
          SimulatorOptions sim;
          sim.validate = true;
          sim.timeline = has_events ? &timeline : nullptr;
          const SimulationResult r1 =
              simulate(entry.graph, schedule, cluster, sim);
          const SimulationResult r2 =
              simulate(entry.graph, schedule, cluster, sim);
          if (!timings_equal(r1, r2))
            return violated("determinism",
                            "re-simulating '" + entry.name + "' x " +
                                algo.name + " changed the result");
          if (OracleReport r = check_feasibility(
                  entry.graph, schedule, cluster,
                  has_events ? &timeline : nullptr, exclusive, r1);
              !r.ok)
            return r;
          if (OracleReport r = check_fault_stats(
                  cluster, has_events ? &timeline : nullptr, r1);
              !r.ok)
            return r;
        }
      }
    }

    // Report pipeline: two independent passes must render byte-equal
    // text, CSV and JSON.
    const report::ReportModel m1 = scenario::build_report(spec);
    const report::ReportModel m2 = scenario::build_report(spec);
    if (report::render_text(m1) != report::render_text(m2))
      return violated("report-determinism", "text rendering differs");
    if (report::render_csv(m1) != report::render_csv(m2))
      return violated("report-determinism", "CSV rendering differs");
    if (report::render_json(m1) != report::render_json(m2))
      return violated("report-determinism", "JSON rendering differs");

    // Trace: render twice, then replay the stream against its own
    // embedded spec.
    if (scenario::kind_supports_trace(spec.kind)) {
      const std::string t1 = scenario::render_trace(spec, 1);
      if (scenario::render_trace(spec, 1) != t1)
        return violated("trace-determinism", "re-rendered trace differs");
      const ReplayReport rep = verify_trace_text(t1, "<fuzz-trace>", 1);
      if (!rep.ok) return violated("trace-replay", rep.error);
    }
  } catch (const Error& e) {
    return violated("exception", e.what());
  } catch (const std::exception& e) {
    return violated("exception", e.what());
  }
  return {};
}

}  // namespace rats::fuzz
