#include "exp/runner.hpp"

namespace rats {

RunOutcome run_scenario(const TaskGraph& graph, const Cluster& cluster,
                        const SchedulerOptions& scheduler,
                        const SimulatorOptions& sim) {
  const Schedule schedule = build_schedule(graph, cluster, scheduler);
  const SimulationResult result = simulate(graph, schedule, cluster, sim);
  return RunOutcome{result.makespan, result.total_work};
}

}  // namespace rats
