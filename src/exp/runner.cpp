#include "exp/runner.hpp"

#include <atomic>

namespace rats {

namespace {
std::atomic<std::uint64_t> g_simulated_runs{0};
}  // namespace

std::uint64_t simulated_run_count() {
  return g_simulated_runs.load(std::memory_order_relaxed);
}

void note_simulated_run() {
  g_simulated_runs.fetch_add(1, std::memory_order_relaxed);
}

RunOutcome run_scenario(const TaskGraph& graph, const Cluster& cluster,
                        const SchedulerOptions& scheduler,
                        const SimulatorOptions& sim) {
  const Schedule schedule = build_schedule(graph, cluster, scheduler);
  const SimulationResult result = simulate(graph, schedule, cluster, sim);
  note_simulated_run();
  return RunOutcome{result.makespan, result.total_work, result.faults};
}

}  // namespace rats
