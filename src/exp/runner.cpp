#include "exp/runner.hpp"

#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace rats {

namespace {
/// Counts with add_always: simulated_run_count() is a public API
/// contract (tests, the CLI's run-stats line) and must never miss a
/// run just because metrics are off.
obs::Counter& runs_counter() {
  static obs::Counter& c = obs::counter("exp/runs_simulated");
  return c;
}
}  // namespace

std::uint64_t simulated_run_count() { return runs_counter().value(); }

void note_simulated_run() { runs_counter().add_always(1); }

RunOutcome run_scenario(const TaskGraph& graph, const Cluster& cluster,
                        const SchedulerOptions& scheduler,
                        const SimulatorOptions& sim) {
  Schedule schedule = [&] {
    obs::PhaseTimer span("schedule");
    return build_schedule(graph, cluster, scheduler);
  }();
  const SimulationResult result = [&] {
    obs::PhaseTimer span("simulate");
    return simulate(graph, schedule, cluster, sim);
  }();
  note_simulated_run();
  return RunOutcome{result.makespan, result.total_work, result.faults};
}

}  // namespace rats
