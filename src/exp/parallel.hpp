// Deterministic parallel-for over independent scenario indices.
//
// The experiment harness replays hundreds of (DAG, cluster, algorithm)
// simulations; they share no mutable state, so we fan them out over
// hardware threads.  Work is claimed through an atomic counter
// (dynamic self-scheduling), and each index writes only its own output
// slot, so results are bit-identical to a sequential run.
#pragma once

#include <cstddef>
#include <functional>

namespace rats {

/// Runs body(i) for every i in [0, count) using up to `threads`
/// workers (0 = hardware concurrency).  Exceptions in workers are
/// rethrown on the caller thread.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned threads = 0);

}  // namespace rats
