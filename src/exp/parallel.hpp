// Deterministic parallel-for over independent scenario indices.
//
// The experiment harness replays hundreds of (DAG, cluster, algorithm)
// simulations; they share no mutable state, so we fan them out over
// hardware threads.  Work is claimed through an atomic counter
// (dynamic self-scheduling), and each index writes only its own output
// slot, so results are bit-identical to a sequential run.
//
// Workers live in one process-wide persistent pool: the first parallel
// call spawns them, later calls (the next bench table, the next sweep
// point) only wake them, so `--threads` pays thread startup once per
// process instead of once per parallel_for.  A nested call from inside
// a worker runs inline on that worker, keeping the claiming scheme
// deadlock-free.
#pragma once

#include <cstddef>
#include <functional>

namespace rats {

/// Runs body(i) for every i in [0, count) using up to `threads`
/// workers (0 = hardware concurrency).  Exceptions in workers are
/// rethrown on the caller thread; after the first exception the
/// remaining indices are claimed but not executed.
///
/// Contract narrowed by the shared pool: jobs from concurrent caller
/// threads are serialized (one runs at a time), and a body must not
/// hand work to a *new* non-pool thread that itself calls parallel_for
/// and join it mid-job — that inner call would queue behind the outer
/// job and deadlock.  Nested calls made directly from a job body (pool
/// worker or caller) are safe: they run inline.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned threads = 0);

/// Number of persistent pool workers spawned so far (diagnostics).
unsigned worker_pool_size();

}  // namespace rats
