// Single-scenario runner: schedule one application on one cluster with
// one algorithm, simulate the schedule with network contention, and
// report the two metrics of the paper: makespan and total work.
#pragma once

#include <cstdint>

#include "platform/cluster.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace rats {

/// The paper's two metrics for one (DAG, cluster, algorithm) run, plus
/// the fault accounting of the platform timeline (zero when healthy).
struct RunOutcome {
  Seconds makespan{};  ///< simulated, with contention
  double work{};       ///< processor-time area of the schedule
  FaultStats faults;   ///< see sim/simulator.hpp
};

/// Schedules `graph` on `cluster` with `scheduler` and simulates the
/// result.
RunOutcome run_scenario(const TaskGraph& graph, const Cluster& cluster,
                        const SchedulerOptions& scheduler,
                        const SimulatorOptions& sim = {});

/// Process-wide count of schedule+simulate runs executed so far.  The
/// one-pass CI gate snapshots it around `rats run --trace` to prove the
/// traced run matrix was simulated exactly once.
std::uint64_t simulated_run_count();

/// Counts one run for paths that schedule+simulate without going
/// through run_scenario (the per-task timeline of kind "single").
void note_simulated_run();

}  // namespace rats
