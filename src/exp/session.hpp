// Per-run sinks for experiment matrices — the execution side of the
// experiment→report pipeline.
//
// A RunSession is handed to the matrix runners (exp/experiment.hpp,
// exp/presets.hpp, exp/tuning.hpp) and observes every (entry,
// algorithm) run as it executes: `begin_run` may attach a TraceSink so
// the run's simulation is traced *in the same pass* that produces the
// report data — a traced `rats run` simulates its run matrix exactly
// once — and `end_run` delivers the outcome.  The streaming trace
// writer (trace/writer.hpp) is the main implementation.
//
// Runs execute in parallel and complete out of order; implementations
// must be thread-safe across begin_run/end_run.
#pragma once

#include <cstddef>
#include <string>

#include "exp/runner.hpp"

namespace rats {

class TraceSink;

/// Identity of one run of an experiment matrix.
struct RunMeta {
  std::string entry;    ///< workload entry name
  std::string algo;     ///< algorithm display name
  std::string cluster;  ///< cluster name
};

/// Observer of an experiment matrix; see the header comment.
class RunSession {
 public:
  virtual ~RunSession() = default;

  /// Announces the matrix size before any run starts (called once,
  /// from the thread launching the matrix).
  virtual void begin_matrix(std::size_t runs) { (void)runs; }

  /// Offers the session a chance to *supply* run `run`'s outcome
  /// instead of simulating it.  Returning true means `out` holds the
  /// outcome and the runner must skip the schedule+simulate step for
  /// that run entirely — begin_run/end_run are not called for it.
  /// The sharded scenario service (src/serve/) uses this seam three
  /// ways: a dry pass injecting every run to learn the matrix shape, a
  /// worker pass injecting everything outside its shard, and a replay
  /// pass injecting every recorded outcome so the report is assembled
  /// by the exact single-process code path.  The default never
  /// injects; implementations must stay thread-safe like the other
  /// hooks.
  virtual bool inject(std::size_t run, const RunMeta& meta, RunOutcome& out) {
    (void)run;
    (void)meta;
    (void)out;
    return false;
  }

  /// Called as run `run` starts; the returned sink (nullptr = do not
  /// trace) receives the run's simulation events and must stay valid
  /// until the matching end_run.
  virtual TraceSink* begin_run(std::size_t run, const RunMeta& meta) = 0;

  /// Called when run `run` completes.
  virtual void end_run(std::size_t run, const RunOutcome& outcome) = 0;
};

}  // namespace rats
