// Automatic RATS parameter tuning (the paper's future work, Section V:
// "allow the automatic tuning of our scheduling algorithm").
//
// The paper tunes (mindelta, maxdelta, minrho) offline per application
// type and cluster (Table IV).  AutoTuner packages that methodology as
// a library facility: it sweeps the paper's parameter grids on a
// calibration corpus for a (family, cluster) pair once, caches the
// result, and emits ready-to-use SchedulerOptions.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "daggen/corpus.hpp"
#include "exp/tuning.hpp"
#include "sched/scheduler.hpp"

namespace rats {

/// Caches tuned RATS parameters per (application family, cluster).
class AutoTuner {
 public:
  /// `calibration_samples` controls the size of the per-family corpus
  /// used for the sweeps (kernel families; random families use the
  /// paper's per-combination sampling with 1 sample).
  explicit AutoTuner(int calibration_samples = 5, std::uint64_t seed = 42);

  /// Tuned parameters for one family on one cluster, computed on first
  /// use and cached afterwards.
  const TunedParams& tuned(DagFamily family, const Cluster& cluster);

  /// Scheduler options for the given strategy with tuned parameters.
  SchedulerOptions options(SchedulerKind kind, DagFamily family,
                           const Cluster& cluster);

  /// Number of (family, cluster) pairs tuned so far.
  std::size_t cache_size() const { return cache_.size(); }

 private:
  int calibration_samples_;
  std::uint64_t seed_;
  std::map<std::pair<std::string, DagFamily>, TunedParams> cache_;
};

}  // namespace rats
