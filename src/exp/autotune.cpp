#include "exp/autotune.hpp"

#include "common/error.hpp"

namespace rats {

AutoTuner::AutoTuner(int calibration_samples, std::uint64_t seed)
    : calibration_samples_(calibration_samples), seed_(seed) {
  RATS_REQUIRE(calibration_samples >= 1,
               "need at least one calibration sample");
}

const TunedParams& AutoTuner::tuned(DagFamily family, const Cluster& cluster) {
  const auto key = std::make_pair(cluster.name(), family);
  const auto hit = cache_.find(key);
  if (hit != cache_.end()) return hit->second;

  CorpusOptions options;
  options.seed = seed_;
  options.random_samples = 1;
  options.kernel_samples = calibration_samples_;
  const auto corpus = build_family(family, options);
  return cache_.emplace(key, tune(corpus, cluster)).first->second;
}

SchedulerOptions AutoTuner::options(SchedulerKind kind, DagFamily family,
                                    const Cluster& cluster) {
  SchedulerOptions o;
  o.kind = kind;
  const TunedParams& t = tuned(family, cluster);
  o.rats.mindelta = t.mindelta;
  o.rats.maxdelta = t.maxdelta;
  o.rats.minrho = t.minrho;
  o.rats.packing = true;
  return o;
}

}  // namespace rats
