#include "exp/tuning.hpp"

#include <limits>

#include "common/error.hpp"
#include "exp/parallel.hpp"

namespace rats {

std::vector<double> tuning_mindeltas() { return {0.0, -0.25, -0.5, -0.75}; }
std::vector<double> tuning_maxdeltas() { return {0.0, 0.25, 0.5, 0.75, 1.0}; }
std::vector<double> tuning_minrhos() { return {0.2, 0.4, 0.5, 0.6, 0.8, 1.0}; }

std::vector<double> reference_makespans(const std::vector<CorpusEntry>& corpus,
                                        const Cluster& cluster) {
  std::vector<double> ref(corpus.size());
  SchedulerOptions hcpa;
  hcpa.kind = SchedulerKind::Hcpa;
  parallel_for(corpus.size(), [&](std::size_t e) {
    ref[e] = run_scenario(corpus[e].graph, cluster, hcpa).makespan;
  });
  return ref;
}

double average_relative_makespan(const std::vector<CorpusEntry>& corpus,
                                 const Cluster& cluster,
                                 const SchedulerOptions& options,
                                 const std::vector<double>& reference) {
  RATS_REQUIRE(reference.size() == corpus.size(),
               "reference does not cover the corpus");
  std::vector<double> ratio(corpus.size());
  parallel_for(corpus.size(), [&](std::size_t e) {
    const double makespan =
        run_scenario(corpus[e].graph, cluster, options).makespan;
    ratio[e] = makespan / reference[e];
  });
  double sum = 0;
  for (double r : ratio) sum += r;
  return sum / static_cast<double>(ratio.size());
}

DeltaSweep sweep_delta(const std::vector<CorpusEntry>& corpus,
                       const Cluster& cluster) {
  DeltaSweep sweep;
  sweep.mindeltas = tuning_mindeltas();
  sweep.maxdeltas = tuning_maxdeltas();
  const auto reference = reference_makespans(corpus, cluster);

  sweep.best_value = std::numeric_limits<double>::infinity();
  for (double mindelta : sweep.mindeltas) {
    std::vector<double> row;
    for (double maxdelta : sweep.maxdeltas) {
      SchedulerOptions options;
      options.kind = SchedulerKind::RatsDelta;
      options.rats.mindelta = mindelta;
      options.rats.maxdelta = maxdelta;
      const double avg =
          average_relative_makespan(corpus, cluster, options, reference);
      row.push_back(avg);
      if (avg < sweep.best_value) {
        sweep.best_value = avg;
        sweep.best_mindelta = mindelta;
        sweep.best_maxdelta = maxdelta;
      }
    }
    sweep.avg_relative.push_back(std::move(row));
  }
  return sweep;
}

RhoSweep sweep_rho(const std::vector<CorpusEntry>& corpus,
                   const Cluster& cluster) {
  RhoSweep sweep;
  sweep.minrhos = tuning_minrhos();
  const auto reference = reference_makespans(corpus, cluster);

  sweep.best_value = std::numeric_limits<double>::infinity();
  for (double minrho : sweep.minrhos) {
    for (bool packing : {true, false}) {
      SchedulerOptions options;
      options.kind = SchedulerKind::RatsTimeCost;
      options.rats.minrho = minrho;
      options.rats.packing = packing;
      const double avg =
          average_relative_makespan(corpus, cluster, options, reference);
      (packing ? sweep.with_packing : sweep.without_packing).push_back(avg);
      if (packing && avg < sweep.best_value) {
        sweep.best_value = avg;
        sweep.best_minrho = minrho;
      }
    }
  }
  return sweep;
}

TunedParams tune(const std::vector<CorpusEntry>& corpus,
                 const Cluster& cluster) {
  const DeltaSweep ds = sweep_delta(corpus, cluster);
  const RhoSweep rs = sweep_rho(corpus, cluster);
  return TunedParams{ds.best_mindelta, ds.best_maxdelta, rs.best_minrho};
}

}  // namespace rats
